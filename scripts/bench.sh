#!/usr/bin/env bash
# bench.sh — run the bench_test.go suite, emit a schema-versioned
# BENCH_<n>.json snapshot, and compare it against the committed
# BENCH_0.json baseline (regression gates on BenchmarkFig7Throughput and
# BenchmarkFig5WeightSweep; see cmd/benchjson).
#
# Usage:
#   scripts/bench.sh                  # full run, next free BENCH_<n>.json
#   BENCH=Fig7 scripts/bench.sh       # only benchmarks matching a pattern
#   BENCHTIME=5x scripts/bench.sh     # more iterations for stabler numbers
#   OUT=BENCH_0.json scripts/bench.sh # regenerate the baseline in place
#
# The comparison step is skipped when regenerating BENCH_0.json itself.
set -euo pipefail
cd "$(dirname "$0")/.."

pattern=${BENCH:-.}
benchtime=${BENCHTIME:-1x}

out=${OUT:-}
if [ -z "$out" ]; then
    n=1
    while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
    out="BENCH_${n}.json"
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== go test -bench '$pattern' -benchtime $benchtime" >&2
go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" -timeout 60m . | tee "$raw"

go run ./cmd/benchjson parse < "$raw" > "$out"
echo "== wrote $out" >&2

if [ "$out" != "BENCH_0.json" ] && [ -e "BENCH_0.json" ]; then
    echo "== comparing against BENCH_0.json" >&2
    go run ./cmd/benchjson compare BENCH_0.json "$out"
fi
