module srcsim

go 1.22
