// Package nvme models the NVMe host-side queueing mechanics the paper
// manipulates (Sec. III-A): submission queues (SQs), completion queues
// (CQs), the queue-depth fetch window, and command-fetch arbitration.
//
// Two arbiters are provided:
//
//   - MultiRR — the default NVMe design of Fig. 4-a: one SQ per CPU,
//     FIFO within a queue, plain round-robin across queues;
//   - SSQ — the paper's separate-submission-queue mechanism of Fig. 4-b:
//     one read SQ and one write SQ sharing a CQ, weighted-round-robin
//     token arbitration, and an LBA consistency check that pins dependent
//     requests to the queue of the conflicting in-flight request.
//
// The SSD simulator (internal/ssd) consumes an Arbiter; SRC
// (internal/core) adjusts SSQ weights at run time.
package nvme

import (
	"fmt"

	"srcsim/internal/sim"
	"srcsim/internal/trace"
)

// Command is an NVMe command as seen by the device frontend.
type Command struct {
	ID        uint64
	Op        trace.Op
	LBA       uint64
	Size      int
	Submitted sim.Time
	// UserData carries upper-layer context (e.g. the NVMe-oF request)
	// through the device untouched.
	UserData any

	// queueHint is set by the SSQ consistency check: the queue the
	// command was placed in (may differ from its natural queue).
	queueHint int
}

// fifo is a simple slice-backed FIFO with an amortised-O(1) Pop.
type fifo struct {
	buf  []*Command
	head int
}

func (f *fifo) Len() int        { return len(f.buf) - f.head }
func (f *fifo) Empty() bool     { return f.Len() == 0 }
func (f *fifo) Push(c *Command) { f.buf = append(f.buf, c) }

func (f *fifo) Peek() *Command {
	if f.Empty() {
		return nil
	}
	return f.buf[f.head]
}

func (f *fifo) Pop() *Command {
	if f.Empty() {
		return nil
	}
	c := f.buf[f.head]
	f.buf[f.head] = nil
	f.head++
	if f.head > 64 && f.head*2 >= len(f.buf) {
		f.buf = append(f.buf[:0], f.buf[f.head:]...)
		f.head = 0
	}
	return c
}

// Arbiter is a command source for the SSD frontend: commands are
// submitted by the NVMe-oF target driver and fetched by the device
// whenever a queue-depth slot frees up.
type Arbiter interface {
	// Submit enqueues a command.
	Submit(c *Command)
	// Fetch removes and returns the next command per the arbitration
	// policy, or nil if no command is waiting.
	Fetch() *Command
	// Pending returns the number of waiting commands.
	Pending() int
	// PendingByOp returns waiting reads and writes separately.
	PendingByOp() (reads, writes int)
}

// MultiRR is the baseline multi-queue design (Fig. 4-a): numQueues SQs,
// submit spreads commands round-robin (standing in for per-CPU queues),
// fetch round-robins across non-empty queues.
type MultiRR struct {
	queues    []fifo
	submitIdx int
	fetchIdx  int
	pending   int
	pendingR  int
	pendingW  int
}

// NewMultiRR builds a baseline arbiter with numQueues submission queues.
func NewMultiRR(numQueues int) *MultiRR {
	if numQueues <= 0 {
		panic(fmt.Sprintf("nvme: MultiRR needs >= 1 queue, got %d", numQueues))
	}
	return &MultiRR{queues: make([]fifo, numQueues)}
}

// Submit implements Arbiter.
func (m *MultiRR) Submit(c *Command) {
	m.queues[m.submitIdx].Push(c)
	m.submitIdx = (m.submitIdx + 1) % len(m.queues)
	m.pending++
	if c.Op == trace.Read {
		m.pendingR++
	} else {
		m.pendingW++
	}
}

// Fetch implements Arbiter.
func (m *MultiRR) Fetch() *Command {
	if m.pending == 0 {
		return nil
	}
	for i := 0; i < len(m.queues); i++ {
		q := &m.queues[m.fetchIdx]
		m.fetchIdx = (m.fetchIdx + 1) % len(m.queues)
		if !q.Empty() {
			c := q.Pop()
			m.pending--
			if c.Op == trace.Read {
				m.pendingR--
			} else {
				m.pendingW--
			}
			return c
		}
	}
	return nil
}

// Pending implements Arbiter.
func (m *MultiRR) Pending() int { return m.pending }

// PendingByOp implements Arbiter.
func (m *MultiRR) PendingByOp() (int, int) { return m.pendingR, m.pendingW }
