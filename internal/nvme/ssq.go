package nvme

import (
	"fmt"

	"srcsim/internal/obs"
	"srcsim/internal/trace"
)

// Queue indices within the SSQ.
const (
	rsqIdx = 0 // read submission queue
	wsqIdx = 1 // write submission queue
)

// SSQ is the paper's separate-submission-queue mechanism (Sec. III-A,
// Fig. 4-b): a read SQ (RSQ) and a write SQ (WSQ) sharing one CQ, with
// weighted-round-robin token arbitration between them.
//
// Token semantics follow the paper:
//
//   - RSQ and WSQ are granted ReadWeight and WriteWeight tokens.
//   - Fetching a command consumes one token from the SQ matching the
//     command's I/O type (even if the consistency check physically placed
//     it in the other queue).
//   - When both token pools are exhausted, both reset.
//   - If one SQ is empty, commands are fetched from the other without
//     touching tokens — this is why WRR degrades to plain FIFO under
//     light load, the effect behind Fig. 5's flat bottom-left plots and
//     Table IV's 4:1 row.
//
// Consistency check: a command that overlaps the LBA range of a command
// still waiting in an SQ is routed to that same SQ, preserving
// write-after-read/read-after-write order between dependent requests.
type SSQ struct {
	queues [2]fifo

	readWeight, writeWeight int
	rTokens, wTokens        int

	pending  int
	pendingR int
	pendingW int

	// inQueue maps each 4 KiB-aligned block with at least one waiting
	// command to (queue index, waiter count) for the consistency check.
	// refSum mirrors the sum of all counts so the auditor never has to
	// walk the map on the hot path.
	inQueue map[uint64]blockRef
	refSum  int

	// Counters for tests and metrics.
	FetchedReads, FetchedWrites uint64
	Redirected                  uint64 // consistency-check queue overrides
	TokenResets                 uint64

	obs *ssqObs
}

// ssqObs holds registry handles resolved by Instrument; nil when
// observability is off.
type ssqObs struct {
	depth         *obs.Histogram // total SQ occupancy sampled per fetch
	depthR        *obs.Histogram // RSQ occupancy per fetch
	depthW        *obs.Histogram // WSQ occupancy per fetch
	fetchedReads  *obs.Counter
	fetchedWrites *obs.Counter
	redirects     *obs.Counter
	tokenResets   *obs.Counter
}

// Instrument resolves this SSQ's metric series from reg (nil reg is a
// no-op). Handles are registry-deduplicated, so SSQs across a flash
// array sharing labels aggregate into the same series.
func (s *SSQ) Instrument(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	s.obs = &ssqObs{
		depth:         reg.Histogram("nvme", "ssq_depth", labels...),
		depthR:        reg.Histogram("nvme", "rsq_depth", labels...),
		depthW:        reg.Histogram("nvme", "wsq_depth", labels...),
		fetchedReads:  reg.Counter("nvme", "ssq_fetched_reads", labels...),
		fetchedWrites: reg.Counter("nvme", "ssq_fetched_writes", labels...),
		redirects:     reg.Counter("nvme", "ssq_redirects", labels...),
		tokenResets:   reg.Counter("nvme", "ssq_token_resets", labels...),
	}
}

type blockRef struct {
	queue int
	count int
}

// blockShift aligns LBAs to 4 KiB blocks for dependency tracking.
const blockShift = 12

// NewSSQ builds an SSQ with the given initial weights (both must be >= 1;
// the paper constrains w = writeWeight/readWeight >= 1 but the mechanism
// itself accepts any positive weights).
func NewSSQ(readWeight, writeWeight int) *SSQ {
	s := &SSQ{inQueue: make(map[uint64]blockRef)}
	s.SetWeights(readWeight, writeWeight)
	return s
}

// SetWeights updates the WRR weights and resets both token pools; SRC
// calls this on every dynamic adjustment.
func (s *SSQ) SetWeights(readWeight, writeWeight int) {
	if readWeight < 1 || writeWeight < 1 {
		panic(fmt.Sprintf("nvme: SSQ weights must be >= 1, got %d/%d", readWeight, writeWeight))
	}
	s.readWeight, s.writeWeight = readWeight, writeWeight
	s.rTokens, s.wTokens = readWeight, writeWeight
}

// Weights returns the current (read, write) weights.
func (s *SSQ) Weights() (read, write int) { return s.readWeight, s.writeWeight }

// WeightRatio returns w = writeWeight / readWeight as used in the paper.
func (s *SSQ) WeightRatio() float64 {
	return float64(s.writeWeight) / float64(s.readWeight)
}

func blocksOf(c *Command) (first, last uint64) {
	first = c.LBA >> blockShift
	end := c.LBA + uint64(c.Size)
	if end == c.LBA {
		end = c.LBA + 1
	}
	last = (end - 1) >> blockShift
	return first, last
}

// Submit implements Arbiter, applying the consistency check.
func (s *SSQ) Submit(c *Command) {
	natural := rsqIdx
	if c.Op == trace.Write {
		natural = wsqIdx
	}
	target := natural

	first, last := blocksOf(c)
	for b := first; b <= last; b++ {
		if ref, ok := s.inQueue[b]; ok {
			target = ref.queue
			break
		}
	}
	if target != natural {
		s.Redirected++
		if s.obs != nil {
			s.obs.redirects.Inc()
		}
	}
	c.queueHint = target
	for b := first; b <= last; b++ {
		ref := s.inQueue[b]
		if ref.count == 0 {
			ref.queue = target
		}
		ref.count++
		s.refSum++
		// All same-block waiters sit in ref.queue by construction; keep
		// the original queue so later arrivals follow the chain.
		s.inQueue[b] = ref
	}

	s.queues[target].Push(c)
	s.pending++
	if c.Op == trace.Read {
		s.pendingR++
	} else {
		s.pendingW++
	}
}

// Fetch implements Arbiter with the WRR policy described above.
func (s *SSQ) Fetch() *Command {
	rEmpty := s.queues[rsqIdx].Empty()
	wEmpty := s.queues[wsqIdx].Empty()
	if rEmpty && wEmpty {
		return nil
	}
	if s.obs != nil {
		// Sample occupancy at the admission decision (SSQ depth, Fig. 5's
		// x-axis quantity).
		s.obs.depth.Observe(float64(s.pending))
		s.obs.depthR.Observe(float64(s.queues[rsqIdx].Len()))
		s.obs.depthW.Observe(float64(s.queues[wsqIdx].Len()))
	}

	var c *Command
	switch {
	case rEmpty:
		// Only writes waiting: bypass token accounting (paper: fetch
		// from the non-empty SQ "without manipulating the tokens").
		c = s.queues[wsqIdx].Pop()
	case wEmpty:
		c = s.queues[rsqIdx].Pop()
	default:
		// Both backlogged: true WRR. Reset tokens when exhausted.
		if s.rTokens <= 0 && s.wTokens <= 0 {
			s.rTokens, s.wTokens = s.readWeight, s.writeWeight
			s.TokenResets++
			if s.obs != nil {
				s.obs.tokenResets.Inc()
			}
		}
		// Pick the queue with the larger remaining token fraction for a
		// smooth interleave; ties favour writes (SRC's priority).
		rFrac := float64(s.rTokens) / float64(s.readWeight)
		wFrac := float64(s.wTokens) / float64(s.writeWeight)
		pick := wsqIdx
		if s.wTokens <= 0 || (s.rTokens > 0 && rFrac > wFrac) {
			pick = rsqIdx
		}
		c = s.queues[pick].Pop()
		// Consume a token from the SQ matching the command's own I/O
		// type, regardless of which queue held it.
		if c.Op == trace.Read {
			if s.rTokens > 0 {
				s.rTokens--
			}
		} else {
			if s.wTokens > 0 {
				s.wTokens--
			}
		}
	}

	s.release(c)
	s.pending--
	if c.Op == trace.Read {
		s.pendingR--
		s.FetchedReads++
		if s.obs != nil {
			s.obs.fetchedReads.Inc()
		}
	} else {
		s.pendingW--
		s.FetchedWrites++
		if s.obs != nil {
			s.obs.fetchedWrites.Inc()
		}
	}
	return c
}

// release drops the command's block references once it leaves the SQ.
func (s *SSQ) release(c *Command) {
	first, last := blocksOf(c)
	for b := first; b <= last; b++ {
		ref, ok := s.inQueue[b]
		if !ok {
			continue
		}
		ref.count--
		s.refSum--
		if ref.count <= 0 {
			delete(s.inQueue, b)
		} else {
			s.inQueue[b] = ref
		}
	}
}

// Pending implements Arbiter.
func (s *SSQ) Pending() int { return s.pending }

// PendingByOp implements Arbiter.
func (s *SSQ) PendingByOp() (int, int) { return s.pendingR, s.pendingW }

// QueueDepths returns the physical occupancy of (RSQ, WSQ); these can
// differ from PendingByOp when the consistency check redirected commands.
func (s *SSQ) QueueDepths() (rsq, wsq int) {
	return s.queues[rsqIdx].Len(), s.queues[wsqIdx].Len()
}
