package nvme

import "srcsim/internal/trace"

// Deadline is a block-layer-style read-preferring arbiter in the spirit
// of Linux's mq-deadline: reads are dispatched ahead of writes (they
// block applications) until WritesStarved consecutive read batches have
// bypassed waiting writes, at which point one write batch is dispatched.
//
// The paper's future work proposes moving SRC into the block-layer I/O
// scheduler; Deadline is the conventional scheduler that slot — it makes
// the read-congestion pathology *worse* (reads hog the device even
// harder), which is exactly why a congestion-aware policy like SRC is
// needed. internal/cluster exposes it as an ablation baseline.
type Deadline struct {
	// WritesStarved is how many reads may bypass waiting writes before a
	// write must be dispatched (Linux default: 2).
	WritesStarved int

	reads, writes fifo
	starved       int

	// Counters.
	DispatchedReads, DispatchedWrites uint64
}

// NewDeadline returns a deadline arbiter with the given starvation bound
// (<= 0 uses the Linux default of 2).
func NewDeadline(writesStarved int) *Deadline {
	if writesStarved <= 0 {
		writesStarved = 2
	}
	return &Deadline{WritesStarved: writesStarved}
}

// Submit implements Arbiter.
func (d *Deadline) Submit(c *Command) {
	if c.Op == trace.Read {
		d.reads.Push(c)
	} else {
		d.writes.Push(c)
	}
}

// Fetch implements Arbiter.
func (d *Deadline) Fetch() *Command {
	rEmpty, wEmpty := d.reads.Empty(), d.writes.Empty()
	switch {
	case rEmpty && wEmpty:
		return nil
	case rEmpty:
		d.starved = 0
		d.DispatchedWrites++
		return d.writes.Pop()
	case wEmpty:
		d.DispatchedReads++
		return d.reads.Pop()
	}
	// Both waiting: prefer reads until writes have starved long enough.
	if d.starved >= d.WritesStarved {
		d.starved = 0
		d.DispatchedWrites++
		return d.writes.Pop()
	}
	d.starved++
	d.DispatchedReads++
	return d.reads.Pop()
}

// Pending implements Arbiter.
func (d *Deadline) Pending() int { return d.reads.Len() + d.writes.Len() }

// PendingByOp implements Arbiter.
func (d *Deadline) PendingByOp() (int, int) { return d.reads.Len(), d.writes.Len() }
