package nvme

import (
	"testing"
	"testing/quick"

	"srcsim/internal/trace"
)

func rcmd(id uint64, lba uint64, size int) *Command {
	return &Command{ID: id, Op: trace.Read, LBA: lba, Size: size}
}

func wcmd(id uint64, lba uint64, size int) *Command {
	return &Command{ID: id, Op: trace.Write, LBA: lba, Size: size}
}

func TestFIFOOrder(t *testing.T) {
	var f fifo
	for i := uint64(0); i < 200; i++ {
		f.Push(rcmd(i, i<<12, 4096))
	}
	if f.Len() != 200 {
		t.Fatalf("len %d", f.Len())
	}
	for i := uint64(0); i < 200; i++ {
		if got := f.Pop(); got.ID != i {
			t.Fatalf("pop %d got %d", i, got.ID)
		}
	}
	if !f.Empty() || f.Pop() != nil || f.Peek() != nil {
		t.Fatal("drained fifo misbehaves")
	}
}

func TestFIFOCompaction(t *testing.T) {
	var f fifo
	// Interleave push/pop to force head past the compaction threshold.
	for i := uint64(0); i < 1000; i++ {
		f.Push(rcmd(i, 0, 4096))
		if i%2 == 1 {
			f.Pop()
		}
	}
	if f.Len() != 500 {
		t.Fatalf("len after interleave %d", f.Len())
	}
	want := uint64(500)
	for !f.Empty() {
		if got := f.Pop().ID; got != want {
			t.Fatalf("after compaction got %d want %d", got, want)
		}
		want++
	}
}

func TestMultiRRSpreadsAndCycles(t *testing.T) {
	m := NewMultiRR(4)
	for i := uint64(0); i < 8; i++ {
		m.Submit(rcmd(i, i<<12, 4096))
	}
	if m.Pending() != 8 {
		t.Fatalf("pending %d", m.Pending())
	}
	// Submit is round-robin, fetch is round-robin, so IDs come back in
	// submission order for equal-rate queues.
	for i := uint64(0); i < 8; i++ {
		c := m.Fetch()
		if c == nil || c.ID != i {
			t.Fatalf("fetch %d got %+v", i, c)
		}
	}
	if m.Fetch() != nil {
		t.Fatal("fetch from empty should be nil")
	}
}

func TestMultiRRPendingByOp(t *testing.T) {
	m := NewMultiRR(2)
	m.Submit(rcmd(0, 0, 4096))
	m.Submit(wcmd(1, 1<<20, 4096))
	m.Submit(wcmd(2, 2<<20, 4096))
	r, w := m.PendingByOp()
	if r != 1 || w != 2 {
		t.Fatalf("pending by op %d/%d", r, w)
	}
	m.Fetch()
	m.Fetch()
	m.Fetch()
	r, w = m.PendingByOp()
	if r != 0 || w != 0 {
		t.Fatalf("after drain %d/%d", r, w)
	}
}

func TestMultiRRPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("0 queues should panic")
		}
	}()
	NewMultiRR(0)
}

func TestSSQWeightValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("weight 0 should panic")
		}
	}()
	NewSSQ(0, 1)
}

func TestSSQFetchRatioFollowsWeights(t *testing.T) {
	for _, w := range []int{1, 2, 3, 5} {
		s := NewSSQ(1, w)
		// Deep backlogs on both sides; use disjoint LBAs.
		for i := uint64(0); i < 600; i++ {
			s.Submit(rcmd(i, i<<20, 4096))
			s.Submit(wcmd(1000+i, (1000+i)<<20, 4096))
		}
		reads, writes := 0, 0
		for i := 0; i < 300; i++ {
			c := s.Fetch()
			if c.Op == trace.Read {
				reads++
			} else {
				writes++
			}
		}
		got := float64(writes) / float64(reads)
		want := float64(w)
		if got < want*0.9 || got > want*1.1 {
			t.Fatalf("w=%d: fetched W/R ratio %.2f (R=%d W=%d)", w, got, reads, writes)
		}
	}
}

func TestSSQEmptyQueueBypassesTokens(t *testing.T) {
	s := NewSSQ(1, 4)
	// Only reads present: all fetches must serve reads and consume no
	// write tokens (WRR degrades to FIFO).
	for i := uint64(0); i < 10; i++ {
		s.Submit(rcmd(i, i<<20, 4096))
	}
	for i := 0; i < 10; i++ {
		c := s.Fetch()
		if c == nil || c.Op != trace.Read {
			t.Fatalf("fetch %d: %+v", i, c)
		}
	}
	if s.TokenResets != 0 {
		t.Fatalf("token resets %d during single-queue drain", s.TokenResets)
	}
	if s.wTokens != 4 || s.rTokens != 1 {
		t.Fatalf("tokens consumed on empty-queue bypass: r=%d w=%d", s.rTokens, s.wTokens)
	}
}

func TestSSQWeightRatio(t *testing.T) {
	s := NewSSQ(1, 3)
	if s.WeightRatio() != 3 {
		t.Fatalf("ratio %v", s.WeightRatio())
	}
	s.SetWeights(2, 5)
	if s.WeightRatio() != 2.5 {
		t.Fatalf("ratio %v", s.WeightRatio())
	}
	r, w := s.Weights()
	if r != 2 || w != 5 {
		t.Fatalf("weights %d/%d", r, w)
	}
}

func TestSSQSetWeightsResetsTokens(t *testing.T) {
	s := NewSSQ(1, 1)
	for i := uint64(0); i < 4; i++ {
		s.Submit(rcmd(i, i<<20, 4096))
		s.Submit(wcmd(100+i, (100+i)<<20, 4096))
	}
	s.Fetch()
	s.Fetch()
	s.SetWeights(1, 6)
	if s.rTokens != 1 || s.wTokens != 6 {
		t.Fatalf("tokens after SetWeights: %d/%d", s.rTokens, s.wTokens)
	}
}

func TestSSQConsistencyCheckSameQueue(t *testing.T) {
	s := NewSSQ(1, 1)
	// A read to LBA X waits in RSQ; a write to the same LBA must follow
	// it into RSQ so the write cannot overtake the read.
	s.Submit(rcmd(1, 0x1000, 4096))
	s.Submit(wcmd(2, 0x1000, 4096))
	if s.Redirected != 1 {
		t.Fatalf("redirected = %d, want 1", s.Redirected)
	}
	rsq, wsq := s.QueueDepths()
	if rsq != 2 || wsq != 0 {
		t.Fatalf("queue depths %d/%d, want 2/0", rsq, wsq)
	}
	// Order preserved: read first.
	if c := s.Fetch(); c.ID != 1 {
		t.Fatalf("first fetch %d", c.ID)
	}
	if c := s.Fetch(); c.ID != 2 {
		t.Fatalf("second fetch %d", c.ID)
	}
}

func TestSSQConsistencyChain(t *testing.T) {
	s := NewSSQ(1, 1)
	// W1 -> R2 (overlap W1) -> W3 (overlap R2): all chain into WSQ.
	s.Submit(wcmd(1, 0x10000, 8192))
	s.Submit(rcmd(2, 0x11000, 4096)) // overlaps second block of W1
	s.Submit(wcmd(3, 0x11000, 4096)) // overlaps R2
	rsq, wsq := s.QueueDepths()
	if rsq != 0 || wsq != 3 {
		t.Fatalf("chain should live in WSQ: %d/%d", rsq, wsq)
	}
	order := []uint64{}
	for c := s.Fetch(); c != nil; c = s.Fetch() {
		order = append(order, c.ID)
	}
	for i, want := range []uint64{1, 2, 3} {
		if order[i] != want {
			t.Fatalf("chain order %v", order)
		}
	}
}

func TestSSQConsistencyReleasedAfterFetch(t *testing.T) {
	s := NewSSQ(1, 1)
	s.Submit(rcmd(1, 0x2000, 4096))
	if c := s.Fetch(); c.ID != 1 {
		t.Fatal("fetch")
	}
	// The dependency only applies while the earlier command waits in an
	// SQ; once fetched, a new write to the same LBA goes to its natural
	// queue.
	s.Submit(wcmd(2, 0x2000, 4096))
	rsq, wsq := s.QueueDepths()
	if rsq != 0 || wsq != 1 {
		t.Fatalf("released dependency: depths %d/%d, want 0/1", rsq, wsq)
	}
	if s.Redirected != 0 {
		t.Fatalf("redirect count %d", s.Redirected)
	}
}

func TestSSQNonOverlappingNotRedirected(t *testing.T) {
	s := NewSSQ(1, 1)
	s.Submit(rcmd(1, 0x0000, 4096))
	s.Submit(wcmd(2, 0x1000, 4096)) // adjacent, not overlapping
	if s.Redirected != 0 {
		t.Fatal("adjacent ranges must not redirect")
	}
	rsq, wsq := s.QueueDepths()
	if rsq != 1 || wsq != 1 {
		t.Fatalf("depths %d/%d", rsq, wsq)
	}
}

func TestSSQRedirectedTokenFollowsOpType(t *testing.T) {
	s := NewSSQ(2, 2)
	// Write redirected into RSQ.
	s.Submit(rcmd(1, 0x3000, 4096))
	s.Submit(wcmd(2, 0x3000, 4096))
	// Independent write in WSQ so both queues are non-empty (WRR active).
	s.Submit(wcmd(3, 0x900000, 4096))

	first := s.Fetch() // read (RSQ head, higher remaining fraction tie -> write? both full: tie favours write queue)
	// Regardless of interleaving, after fetching the redirected write the
	// write token pool must have been debited.
	var fetched []*Command
	fetched = append(fetched, first)
	for c := s.Fetch(); c != nil; c = s.Fetch() {
		fetched = append(fetched, c)
	}
	if len(fetched) != 3 {
		t.Fatalf("fetched %d", len(fetched))
	}
	if s.FetchedReads != 1 || s.FetchedWrites != 2 {
		t.Fatalf("counters R=%d W=%d", s.FetchedReads, s.FetchedWrites)
	}
}

func TestSSQPendingByOpWithRedirect(t *testing.T) {
	s := NewSSQ(1, 1)
	s.Submit(rcmd(1, 0x5000, 4096))
	s.Submit(wcmd(2, 0x5000, 4096)) // redirected to RSQ
	r, w := s.PendingByOp()
	if r != 1 || w != 1 {
		t.Fatalf("pending by op %d/%d (redirect must not distort op counts)", r, w)
	}
}

// Property: the SSQ never loses or duplicates commands, and dependent
// pairs are always fetched in submission order.
func TestPropertySSQConservation(t *testing.T) {
	f := func(ops []bool, lbaSel []uint8) bool {
		n := len(ops)
		if len(lbaSel) < n {
			n = len(lbaSel)
		}
		if n == 0 {
			return true
		}
		s := NewSSQ(1, 3)
		type key struct{ lba uint64 }
		lastSubmit := map[key]uint64{}
		deps := map[uint64]uint64{} // id -> must-follow id
		for i := 0; i < n; i++ {
			id := uint64(i + 1)
			lba := uint64(lbaSel[i]%16) << 12 // 16 hot blocks force overlaps
			var c *Command
			if ops[i] {
				c = wcmd(id, lba, 4096)
			} else {
				c = rcmd(id, lba, 4096)
			}
			if prev, ok := lastSubmit[key{lba}]; ok {
				deps[id] = prev
			}
			lastSubmit[key{lba}] = id
			s.Submit(c)
		}
		fetchedAt := map[uint64]int{}
		cnt := 0
		for c := s.Fetch(); c != nil; c = s.Fetch() {
			if _, dup := fetchedAt[c.ID]; dup {
				return false
			}
			fetchedAt[c.ID] = cnt
			cnt++
		}
		if cnt != n {
			return false
		}
		for id, prev := range deps {
			if fetchedAt[id] < fetchedAt[prev] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSSQSubmitFetch(b *testing.B) {
	s := NewSSQ(1, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := uint64(i)
		if i%2 == 0 {
			s.Submit(rcmd(id, id<<14, 8192))
		} else {
			s.Submit(wcmd(id, id<<14, 8192))
		}
		if s.Pending() > 64 {
			s.Fetch()
		}
	}
}
