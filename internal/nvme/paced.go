package nvme

import (
	"fmt"

	"srcsim/internal/sim"
	"srcsim/internal/trace"
)

// Paced is a rate-limiting arbiter: reads dispatch through a byte-rate
// token bucket while writes pass freely. It is the "direct" alternative
// to the paper's SSQ+TPM design — instead of predicting which WRR weight
// ratio yields the demanded read throughput, the demanded rate is
// applied to read dispatch directly. internal/cluster exposes it as the
// SRCDirect ablation; EXPERIMENTS.md discusses the trade-off (the paper
// argues driver-level WRR is the NVMe-native mechanism and prediction
// avoids reactive lag; Paced needs a fine-grained rate limiter in the
// dispatch path instead).
//
// Reads exceeding the bucket stay queued; the device should Kick again
// when tokens accrue — Paced schedules that wake-up itself through the
// engine and the Kicker callback.
type Paced struct {
	eng *sim.Engine

	// Kicker, if set, is invoked when queued reads become dispatchable
	// after a token refill (wire it to Device.Kick).
	Kicker func()

	readBps    float64 // current read budget, bits/s (0 = unlimited)
	tokens     float64 // bits available
	lastRefill sim.Time
	burstBits  float64

	reads, writes fifo
	wake          sim.Handle
	fireKickFn    func()

	// Counters.
	DispatchedReads, DispatchedWrites uint64
	ReadStalls                        uint64
}

// NewPaced builds a paced arbiter. burstBytes bounds the token bucket
// (default 256 KiB).
func NewPaced(eng *sim.Engine, burstBytes int) *Paced {
	if burstBytes <= 0 {
		burstBytes = 256 << 10
	}
	p := &Paced{
		eng:       eng,
		burstBits: float64(burstBytes) * 8,
	}
	p.fireKickFn = p.fireKick
	return p
}

// SetReadRate updates the read dispatch budget in bits/s (0 disables
// pacing). The SRCDirect controller calls this with the demanded data
// sending rate.
func (p *Paced) SetReadRate(bps float64) {
	p.refill()
	if bps < 0 {
		bps = 0
	}
	p.readBps = bps
	if p.tokens > p.burstBits {
		p.tokens = p.burstBits
	}
	p.scheduleWake()
}

// ReadRate returns the current budget (0 = unlimited).
func (p *Paced) ReadRate() float64 { return p.readBps }

func (p *Paced) refill() {
	now := p.eng.Now()
	if p.readBps > 0 {
		p.tokens += float64(now-p.lastRefill) / float64(sim.Second) * p.readBps
		if p.tokens > p.burstBits {
			p.tokens = p.burstBits
		}
	}
	p.lastRefill = now
}

// Submit implements Arbiter.
func (p *Paced) Submit(c *Command) {
	if c.Op == trace.Read {
		p.reads.Push(c)
	} else {
		p.writes.Push(c)
	}
}

// Fetch implements Arbiter: writes free, reads against the bucket.
func (p *Paced) Fetch() *Command {
	if !p.writes.Empty() && (p.reads.Empty() || !p.readAllowed()) {
		p.DispatchedWrites++
		return p.writes.Pop()
	}
	if p.reads.Empty() {
		if p.writes.Empty() {
			return nil
		}
		p.DispatchedWrites++
		return p.writes.Pop()
	}
	if !p.readAllowed() {
		p.ReadStalls++
		p.scheduleWake()
		return nil
	}
	head := p.reads.Pop()
	if p.readBps > 0 {
		p.tokens -= float64(head.Size) * 8
	}
	p.DispatchedReads++
	return head
}

// readAllowed refills and checks the head read against the bucket. A
// read larger than the whole bucket dispatches once the bucket is full
// (the token debt then delays subsequent reads, preserving the long-term
// rate) — without this escape hatch an oversized request would wedge the
// queue forever.
func (p *Paced) readAllowed() bool {
	if p.readBps <= 0 {
		return true
	}
	p.refill()
	head := p.reads.Peek()
	if head == nil {
		return false
	}
	return p.tokens >= float64(head.Size)*8 || p.tokens >= p.burstBits
}

// scheduleWake arms a wake-up for when the head read's tokens arrive.
func (p *Paced) scheduleWake() {
	p.eng.Cancel(p.wake)
	if p.readBps <= 0 || p.reads.Empty() || p.Kicker == nil {
		return
	}
	head := p.reads.Peek()
	need := float64(head.Size)*8 - p.tokens
	if fill := p.burstBits - p.tokens; fill < need {
		need = fill // oversized head: dispatchable at full bucket
	}
	if need <= 0 {
		// Dispatchable now; poke the device asynchronously.
		p.wake = p.eng.After(0, p.fireKickFn)
		return
	}
	delay := sim.Time(need / p.readBps * float64(sim.Second))
	if delay < 1 {
		delay = 1
	}
	p.wake = p.eng.After(delay, p.fireKickFn)
}

func (p *Paced) fireKick() {
	if p.Kicker != nil {
		p.Kicker()
	}
	// Re-arm if reads remain stalled.
	if !p.reads.Empty() && !p.readAllowed() {
		p.scheduleWake()
	}
}

// Pending implements Arbiter.
func (p *Paced) Pending() int { return p.reads.Len() + p.writes.Len() }

// PendingByOp implements Arbiter.
func (p *Paced) PendingByOp() (int, int) { return p.reads.Len(), p.writes.Len() }

// String summarises the pacing state.
func (p *Paced) String() string {
	return fmt.Sprintf("Paced(readBps=%.3g, pendingR=%d, pendingW=%d)", p.readBps, p.reads.Len(), p.writes.Len())
}

// DebugState exposes internals for diagnostics.
func (p *Paced) DebugState() (tokens float64, lastRefill sim.Time, wakeArmed, hasKicker bool) {
	return p.tokens, p.lastRefill, !p.wake.Cancelled(), p.Kicker != nil
}
