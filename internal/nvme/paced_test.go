package nvme

import (
	"testing"

	"srcsim/internal/sim"
	"srcsim/internal/trace"
)

func TestPacedUnlimitedPassesReads(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPaced(eng, 0)
	for i := uint64(0); i < 5; i++ {
		p.Submit(rcmd(i, i<<20, 16<<10))
	}
	for i := 0; i < 5; i++ {
		if c := p.Fetch(); c == nil || c.Op != trace.Read {
			t.Fatalf("fetch %d with unlimited budget failed", i)
		}
	}
	if p.Fetch() != nil {
		t.Fatal("empty fetch")
	}
}

func TestPacedWritesBypassBucket(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPaced(eng, 4096)
	p.SetReadRate(1) // effectively zero read budget
	p.Submit(rcmd(1, 0, 1<<20))
	p.Submit(wcmd(2, 1<<20, 16<<10))
	c := p.Fetch()
	if c == nil || c.Op != trace.Write {
		t.Fatalf("write should bypass the read bucket, got %+v", c)
	}
	if p.Fetch() != nil {
		t.Fatal("starved read escaped the bucket")
	}
	if p.ReadStalls == 0 {
		t.Fatal("read stall not counted")
	}
}

func TestPacedRateEnforced(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPaced(eng, 32<<10)
	const rate = 1e9 // 1 Gbps
	p.SetReadRate(rate)

	dispatched := 0
	kick := func() {
		for {
			c := p.Fetch()
			if c == nil {
				return
			}
			dispatched++
		}
	}
	p.Kicker = kick
	for i := uint64(0); i < 100; i++ {
		p.Submit(rcmd(i, i<<20, 32<<10)) // 32 KiB = 262144 bits each
	}
	kick()
	eng.Run(100 * sim.Millisecond)
	// 1 Gbps x 100ms = 1e8 bits = ~381 commands worth; we only have 100,
	// but at 26.2ms they should all have dispatched; at 10ms only ~38.
	if dispatched != 100 {
		t.Fatalf("dispatched %d/100 within 100ms at 1Gbps", dispatched)
	}

	// Re-run tighter: fresh arbiter, 10ms window.
	eng2 := sim.NewEngine()
	p2 := NewPaced(eng2, 32<<10)
	p2.SetReadRate(rate)
	n2 := 0
	p2.Kicker = func() {
		for {
			if c := p2.Fetch(); c == nil {
				return
			}
			n2++
		}
	}
	for i := uint64(0); i < 100; i++ {
		p2.Submit(rcmd(i, i<<20, 32<<10))
	}
	p2.Kicker()
	eng2.Run(10 * sim.Millisecond)
	// 10ms at 1Gbps = 1e7 bits = ~38 commands (+1 burst allowance).
	if n2 < 30 || n2 > 50 {
		t.Fatalf("dispatched %d in 10ms at 1Gbps, want ~38", n2)
	}
}

func TestPacedRateChangeTakesEffect(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPaced(eng, 16<<10)
	p.SetReadRate(1e6) // trickle
	served := 0
	p.Kicker = func() {
		for {
			if c := p.Fetch(); c == nil {
				return
			}
			served++
		}
	}
	for i := uint64(0); i < 20; i++ {
		p.Submit(rcmd(i, i<<20, 16<<10))
	}
	p.Kicker()
	eng.Run(sim.Millisecond)
	if served > 2 {
		t.Fatalf("trickle budget served %d", served)
	}
	p.SetReadRate(0) // unlimited
	p.Kicker()
	eng.Run(2 * sim.Millisecond)
	if served != 20 {
		t.Fatalf("after unthrottle served %d/20", served)
	}
}

func TestPacedConservation(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPaced(eng, 64<<10)
	p.SetReadRate(5e9)
	got := map[uint64]bool{}
	p.Kicker = func() {
		for {
			c := p.Fetch()
			if c == nil {
				return
			}
			if got[c.ID] {
				t.Fatalf("duplicate %d", c.ID)
			}
			got[c.ID] = true
		}
	}
	for i := uint64(0); i < 200; i++ {
		if i%3 == 0 {
			p.Submit(wcmd(i, i<<20, 8<<10))
		} else {
			p.Submit(rcmd(i, i<<20, 8<<10))
		}
	}
	p.Kicker()
	eng.RunUntilIdle()
	if len(got) != 200 {
		t.Fatalf("served %d/200", len(got))
	}
	if p.Pending() != 0 {
		t.Fatalf("pending %d", p.Pending())
	}
}
