package nvme

import (
	"testing"

	"srcsim/internal/trace"
)

func TestDeadlinePrefersReads(t *testing.T) {
	d := NewDeadline(2)
	for i := uint64(0); i < 6; i++ {
		d.Submit(rcmd(i, i<<20, 4096))
		d.Submit(wcmd(100+i, (100+i)<<20, 4096))
	}
	// Pattern with writes_starved=2: R R W R R W ...
	want := []trace.Op{trace.Read, trace.Read, trace.Write, trace.Read, trace.Read, trace.Write}
	for i, op := range want {
		c := d.Fetch()
		if c.Op != op {
			t.Fatalf("dispatch %d: got %v want %v", i, c.Op, op)
		}
	}
	if d.DispatchedReads != 4 || d.DispatchedWrites != 2 {
		t.Fatalf("counters %d/%d", d.DispatchedReads, d.DispatchedWrites)
	}
}

func TestDeadlineDrainsSingleQueue(t *testing.T) {
	d := NewDeadline(0) // default bound
	for i := uint64(0); i < 5; i++ {
		d.Submit(wcmd(i, i<<20, 4096))
	}
	for i := 0; i < 5; i++ {
		if c := d.Fetch(); c == nil || c.Op != trace.Write {
			t.Fatalf("write-only drain failed at %d", i)
		}
	}
	if d.Fetch() != nil {
		t.Fatal("empty fetch should be nil")
	}
}

func TestDeadlineStarvationBoundResets(t *testing.T) {
	d := NewDeadline(1)
	d.Submit(rcmd(1, 1<<20, 4096))
	d.Submit(rcmd(2, 2<<20, 4096))
	d.Submit(wcmd(3, 3<<20, 4096))
	// R (starved=1), then write must go, then remaining read.
	if d.Fetch().Op != trace.Read {
		t.Fatal("first should be read")
	}
	if d.Fetch().Op != trace.Write {
		t.Fatal("starved write should dispatch")
	}
	if d.Fetch().Op != trace.Read {
		t.Fatal("remaining read")
	}
}

func TestDeadlinePending(t *testing.T) {
	d := NewDeadline(2)
	d.Submit(rcmd(1, 0, 4096))
	d.Submit(wcmd(2, 1<<20, 4096))
	d.Submit(wcmd(3, 2<<20, 4096))
	r, w := d.PendingByOp()
	if r != 1 || w != 2 || d.Pending() != 3 {
		t.Fatalf("pending %d/%d total %d", r, w, d.Pending())
	}
}
