package nvme

import (
	"testing"

	"srcsim/internal/trace"
)

// classifySize buckets: 0 = small reads, 1 = large reads, 2 = writes;
// urgent (-1) for 512B reads.
func classifySize(c *Command) int {
	if c.Op == trace.Write {
		return 2
	}
	if c.Size <= 512 {
		return -1
	}
	if c.Size <= 8192 {
		return 0
	}
	return 1
}

func TestWRRNValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"no classes":  func() { NewWRRN(nil, classifySize) },
		"zero weight": func() { NewWRRN([]int{1, 0}, classifySize) },
		"nil classes": func() { NewWRRN([]int{1}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestWRRNUrgentStrictPriority(t *testing.T) {
	a := NewWRRN([]int{1, 1, 1}, classifySize)
	a.Submit(&Command{ID: 1, Op: trace.Read, Size: 4096})
	a.Submit(&Command{ID: 2, Op: trace.Write, Size: 4096, LBA: 1 << 20})
	a.Submit(&Command{ID: 3, Op: trace.Read, Size: 512, LBA: 2 << 20}) // urgent
	if c := a.Fetch(); c.ID != 3 {
		t.Fatalf("urgent not served first: got %d", c.ID)
	}
	if a.FetchedUrgent != 1 {
		t.Fatalf("urgent counter %d", a.FetchedUrgent)
	}
}

func TestWRRNWeightRatios(t *testing.T) {
	a := NewWRRN([]int{1, 2, 4}, classifySize)
	// Deep backlog in all three weighted classes.
	for i := uint64(0); i < 400; i++ {
		a.Submit(&Command{ID: i, Op: trace.Read, Size: 4096, LBA: i << 20})            // class 0
		a.Submit(&Command{ID: 1000 + i, Op: trace.Read, Size: 64 << 10, LBA: i << 21}) // class 1
		a.Submit(&Command{ID: 2000 + i, Op: trace.Write, Size: 4096, LBA: i << 22})    // class 2
	}
	for i := 0; i < 700; i++ {
		if a.Fetch() == nil {
			t.Fatal("premature nil fetch")
		}
	}
	r0 := float64(a.Fetched[1]) / float64(a.Fetched[0])
	r1 := float64(a.Fetched[2]) / float64(a.Fetched[0])
	if r0 < 1.7 || r0 > 2.3 {
		t.Fatalf("class1/class0 ratio %.2f, want ~2", r0)
	}
	if r1 < 3.5 || r1 > 4.5 {
		t.Fatalf("class2/class0 ratio %.2f, want ~4", r1)
	}
}

func TestWRRNEmptyClassSkipped(t *testing.T) {
	a := NewWRRN([]int{1, 8}, func(c *Command) int {
		if c.Op == trace.Write {
			return 1
		}
		return 0
	})
	// Only class 0 (reads) present: every fetch must serve it even
	// though class 1 holds most tokens.
	for i := uint64(0); i < 10; i++ {
		a.Submit(&Command{ID: i, Op: trace.Read, Size: 4096, LBA: i << 20})
	}
	for i := 0; i < 10; i++ {
		if c := a.Fetch(); c == nil || c.Op != trace.Read {
			t.Fatalf("fetch %d failed on single-class backlog", i)
		}
	}
	if a.Fetch() != nil {
		t.Fatal("empty arbiter returned a command")
	}
}

func TestWRRNSetWeights(t *testing.T) {
	a := NewWRRN([]int{1, 1}, func(c *Command) int {
		if c.Op == trace.Write {
			return 1
		}
		return 0
	})
	for i := uint64(0); i < 300; i++ {
		a.Submit(&Command{ID: i, Op: trace.Read, Size: 4096, LBA: i << 20})
		a.Submit(&Command{ID: 1000 + i, Op: trace.Write, Size: 4096, LBA: i << 21})
	}
	a.SetWeights([]int{1, 5})
	for i := 0; i < 300; i++ {
		a.Fetch()
	}
	ratio := float64(a.Fetched[1]) / float64(a.Fetched[0])
	if ratio < 4.2 || ratio > 5.8 {
		t.Fatalf("post-SetWeights ratio %.2f, want ~5", ratio)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong weight count should panic")
		}
	}()
	a.SetWeights([]int{1})
}

func TestWRRNConservation(t *testing.T) {
	a := NewWRRN([]int{3, 2}, func(c *Command) int { return int(c.ID % 2) })
	const n = 500
	for i := uint64(0); i < n; i++ {
		a.Submit(&Command{ID: i, Op: trace.Read, Size: 4096, LBA: i << 14})
	}
	if a.Pending() != n {
		t.Fatalf("pending %d", a.Pending())
	}
	seen := map[uint64]bool{}
	for c := a.Fetch(); c != nil; c = a.Fetch() {
		if seen[c.ID] {
			t.Fatalf("duplicate %d", c.ID)
		}
		seen[c.ID] = true
	}
	if len(seen) != n {
		t.Fatalf("lost commands: %d/%d", len(seen), n)
	}
	if a.Pending() != 0 {
		t.Fatalf("pending %d after drain", a.Pending())
	}
}

func TestWRRNPendingByOp(t *testing.T) {
	a := NewWRRN([]int{1, 1, 1}, classifySize)
	a.Submit(&Command{ID: 1, Op: trace.Read, Size: 4096})
	a.Submit(&Command{ID: 2, Op: trace.Read, Size: 512, LBA: 1 << 20})
	a.Submit(&Command{ID: 3, Op: trace.Write, Size: 4096, LBA: 2 << 20})
	r, w := a.PendingByOp()
	if r != 2 || w != 1 {
		t.Fatalf("pending by op %d/%d", r, w)
	}
}
