package nvme

import "srcsim/internal/guard"

// AuditInvariants verifies the SSQ's token and queue accounting:
// tokens stay within [0, weight] (token non-negativity), the pending
// counters agree with the physical queue occupancy, and the
// consistency-check block map empties exactly when the queues do.
// Read-only and O(1) — the block-ref total is maintained incrementally
// (refSum) rather than scanned — so it is safe to run per-event on the
// live sim clock.
func (s *SSQ) AuditInvariants() []guard.Violation {
	var vs []guard.Violation
	if s.rTokens < 0 || s.rTokens > s.readWeight {
		vs = append(vs, guard.Violationf("nvme", "ssq-token-bounds",
			"read tokens %d outside [0,%d]", s.rTokens, s.readWeight))
	}
	if s.wTokens < 0 || s.wTokens > s.writeWeight {
		vs = append(vs, guard.Violationf("nvme", "ssq-token-bounds",
			"write tokens %d outside [0,%d]", s.wTokens, s.writeWeight))
	}
	rsq, wsq := s.QueueDepths()
	if s.pending != rsq+wsq {
		vs = append(vs, guard.Violationf("nvme", "ssq-pending-occupancy",
			"pending %d != rsq %d + wsq %d", s.pending, rsq, wsq))
	}
	if s.pending != s.pendingR+s.pendingW {
		vs = append(vs, guard.Violationf("nvme", "ssq-pending-by-op",
			"pending %d != reads %d + writes %d", s.pending, s.pendingR, s.pendingW))
	}
	if s.pendingR < 0 || s.pendingW < 0 {
		vs = append(vs, guard.Violationf("nvme", "ssq-pending-nonnegative",
			"reads %d writes %d", s.pendingR, s.pendingW))
	}
	if s.pending == 0 && len(s.inQueue) != 0 {
		vs = append(vs, guard.Violationf("nvme", "ssq-blockmap-leak",
			"queues empty but %d block refs remain", len(s.inQueue)))
	}
	// Every waiting command holds >= 1 block ref; a command spanning k
	// blocks holds k, so refSum < pending means release ran twice.
	// (Entries with count <= 0 cannot exist: release deletes them, so a
	// per-entry scan would only re-check what the ledger already proves.)
	if s.refSum < s.pending {
		vs = append(vs, guard.Violationf("nvme", "ssq-blockmap-underflow",
			"%d block refs for %d pending commands", s.refSum, s.pending))
	}
	return vs
}

// Tokens returns the current (read, write) token pools for diagnostics.
func (s *SSQ) Tokens() (read, write int) { return s.rTokens, s.wTokens }

// AuditInvariants verifies the baseline arbiter's pending accounting
// against its physical queues.
func (m *MultiRR) AuditInvariants() []guard.Violation {
	var vs []guard.Violation
	var occ int
	for i := range m.queues {
		occ += m.queues[i].Len()
	}
	if occ != m.pending {
		vs = append(vs, guard.Violationf("nvme", "multirr-pending-occupancy",
			"pending %d != queue occupancy %d", m.pending, occ))
	}
	if m.pending != m.pendingR+m.pendingW {
		vs = append(vs, guard.Violationf("nvme", "multirr-pending-by-op",
			"pending %d != reads %d + writes %d", m.pending, m.pendingR, m.pendingW))
	}
	if m.pendingR < 0 || m.pendingW < 0 {
		vs = append(vs, guard.Violationf("nvme", "multirr-pending-nonnegative",
			"reads %d writes %d", m.pendingR, m.pendingW))
	}
	return vs
}
