package nvme

import (
	"fmt"

	"srcsim/internal/trace"
)

// WRRN is the NVMe-specification weighted-round-robin arbitration with
// an urgent class: commands are classified into one strict-priority
// urgent queue plus N weighted queues. It generalises the paper's
// two-queue SSQ (which adds the LBA consistency check on top); WRRN is
// the building block for richer storage-side policies — e.g. separating
// latency-critical reads, bulk reads, and writes into three classes.
//
// Arbitration: the urgent queue is always served first. Among the
// weighted queues, tokens are granted per round in proportion to the
// class weights; fetching consumes one token, exhausted tokens reset
// when no class can be served, and an empty class's tokens are skipped
// without being consumed (as in the SSQ).
type WRRN struct {
	urgent  fifo
	queues  []fifo
	weights []int
	tokens  []int

	classify func(*Command) int
	pending  int

	// Fetched counts dispatches per class (urgent is index -1, mapped
	// to FetchedUrgent).
	Fetched       []uint64
	FetchedUrgent uint64
}

// NewWRRN builds an arbiter with the given per-class weights (all >= 1)
// and a classifier returning -1 for urgent or a class index in
// [0, len(weights)).
func NewWRRN(weights []int, classify func(*Command) int) *WRRN {
	if len(weights) == 0 {
		panic("nvme: WRRN needs at least one class")
	}
	for i, w := range weights {
		if w < 1 {
			panic(fmt.Sprintf("nvme: WRRN weight %d for class %d must be >= 1", w, i))
		}
	}
	if classify == nil {
		panic("nvme: WRRN needs a classifier")
	}
	a := &WRRN{
		queues:   make([]fifo, len(weights)),
		weights:  append([]int(nil), weights...),
		tokens:   make([]int, len(weights)),
		classify: classify,
		Fetched:  make([]uint64, len(weights)),
	}
	copy(a.tokens, weights)
	return a
}

// SetWeights replaces the class weights and resets tokens (dynamic
// policies adjust arbitration at run time, like SRC does with the SSQ).
func (a *WRRN) SetWeights(weights []int) {
	if len(weights) != len(a.weights) {
		panic(fmt.Sprintf("nvme: WRRN has %d classes, got %d weights", len(a.weights), len(weights)))
	}
	for i, w := range weights {
		if w < 1 {
			panic(fmt.Sprintf("nvme: WRRN weight %d for class %d must be >= 1", w, i))
		}
	}
	copy(a.weights, weights)
	copy(a.tokens, weights)
}

// Submit implements Arbiter.
func (a *WRRN) Submit(c *Command) {
	class := a.classify(c)
	if class < 0 {
		a.urgent.Push(c)
	} else {
		if class >= len(a.queues) {
			panic(fmt.Sprintf("nvme: classifier returned %d, have %d classes", class, len(a.queues)))
		}
		a.queues[class].Push(c)
	}
	a.pending++
}

// Fetch implements Arbiter.
func (a *WRRN) Fetch() *Command {
	if a.pending == 0 {
		return nil
	}
	if !a.urgent.Empty() {
		a.pending--
		a.FetchedUrgent++
		return a.urgent.Pop()
	}

	// Pick the non-empty class with the largest remaining token
	// fraction; if every non-empty class is out of tokens, reset.
	for attempt := 0; attempt < 2; attempt++ {
		best, bestFrac := -1, -1.0
		anyNonEmpty := false
		for i := range a.queues {
			if a.queues[i].Empty() {
				continue
			}
			anyNonEmpty = true
			if a.tokens[i] <= 0 {
				continue
			}
			frac := float64(a.tokens[i]) / float64(a.weights[i])
			if frac > bestFrac {
				best, bestFrac = i, frac
			}
		}
		if best >= 0 {
			a.tokens[best]--
			a.pending--
			a.Fetched[best]++
			return a.queues[best].Pop()
		}
		if !anyNonEmpty {
			return nil
		}
		copy(a.tokens, a.weights)
	}
	return nil
}

// Pending implements Arbiter.
func (a *WRRN) Pending() int { return a.pending }

// PendingByOp implements Arbiter by scanning queue heads; WRRN classes
// are policy-defined, so the op split is computed on demand.
func (a *WRRN) PendingByOp() (reads, writes int) {
	count := func(f *fifo) {
		for i := f.head; i < len(f.buf); i++ {
			if f.buf[i] == nil {
				continue
			}
			if f.buf[i].Op == trace.Read {
				reads++
			} else {
				writes++
			}
		}
	}
	count(&a.urgent)
	for i := range a.queues {
		count(&a.queues[i])
	}
	return reads, writes
}
