package scenario

import (
	"srcsim/internal/faults"
	"srcsim/internal/sim"
)

// LibraryScenario is one built-in scenario: a builder parameterised by
// seed and a request-scale knob, so the experiment registry and the
// sweep orchestrator can size it like any other experiment.
type LibraryScenario struct {
	Name  string
	Title string
	// Build constructs the spec. requests is the base per-direction
	// request count of the dominant phase; other phases scale from it.
	Build func(seed uint64, requests int) *Spec
}

// library lists the built-in scenarios in listing order. Fault events
// use only device-level kinds (ssd-slow, target-stall) so every
// scenario runs without arming retry policies; the congestion testbed
// (CongestionSpec) has one initiator and two targets on 10 Gbps links.
// Phase knobs keep offered loads in the moderately congested regime of
// the Fig. 7 operating point (reads ~2-4x link speed, writes around
// link speed) — far enough past capacity to exercise congestion
// control, close enough that completions land inside the measurement
// window. SRC-on vs SRC-off differentiation needs sustained contention,
// so scenarios are sized for base request counts around 800-1600.
var library = []LibraryScenario{
	{
		Name:  "vdi-boot-storm",
		Title: "steady VDI desktops + synchronized boot-storm read burst overlay",
		Build: func(seed uint64, requests int) *Spec {
			return &Spec{
				Name: "vdi-boot-storm",
				Seed: seed,
				Phases: []Phase{
					{
						Name:     "steady-desktops",
						Workload: &WorkloadRef{Kind: KindVDI, Count: requests},
					},
					{
						Name:    "boot-storm",
						Overlay: true,
						StartMS: 1,
						Workload: &WorkloadRef{
							Kind:  KindMicro,
							Reads: requests / 2, ReadIAUS: 8, ReadSize: 48 << 10,
						},
					},
				},
			}
		},
	},
	{
		Name:  "ai-checkpoint-burst",
		Title: "training reads interrupted by a bursty checkpoint write flood",
		Build: func(seed uint64, requests int) *Spec {
			return &Spec{
				Name: "ai-checkpoint-burst",
				Seed: seed,
				Phases: []Phase{
					{
						Name: "training-read",
						Workload: &WorkloadRef{
							Kind:  KindMicro,
							Reads: requests / 2, ReadIAUS: 8, ReadSize: 32 << 10,
						},
					},
					{
						// Checkpointing does not stop inference reads; the
						// phase carries both so the write burst contends with
						// read traffic the way Fig. 7's mixed window does.
						Name: "checkpoint",
						Workload: &WorkloadRef{
							Kind:  KindSynthetic,
							Reads: requests / 2, ReadIAUS: 16, ReadSize: 32 << 10,
							Writes: requests, WriteIAUS: 16, WriteSize: 64 << 10,
							IASCV: 4, SizeSCV: 1.5, ACF1: 0.2,
						},
					},
					{
						Name: "training-resume",
						Workload: &WorkloadRef{
							Kind:  KindMicro,
							Reads: requests / 2, ReadIAUS: 8, ReadSize: 32 << 10,
						},
					},
				},
			}
		},
	},
	{
		Name:  "backup-scan",
		Title: "large sequential backup reads overlaid on CBS-like OLTP traffic",
		Build: func(seed uint64, requests int) *Spec {
			return &Spec{
				Name: "backup-scan",
				Seed: seed,
				Phases: []Phase{
					{
						Name:     "oltp",
						Workload: &WorkloadRef{Kind: KindCBS, Count: requests},
					},
					{
						Name:    "scan",
						Overlay: true,
						Workload: &WorkloadRef{
							Kind:  KindMicro,
							Reads: requests / 2, ReadIAUS: 40, ReadSize: 128 << 10,
						},
					},
				},
			}
		},
	},
	{
		Name:  "failover-rehydration",
		Title: "target stall mid-run, then a read-heavy cache-rehydration flood",
		Build: func(seed uint64, requests int) *Spec {
			return &Spec{
				Name: "failover-rehydration",
				Seed: seed,
				Phases: []Phase{
					{
						Name: "normal",
						Workload: &WorkloadRef{
							Kind:  KindMicro,
							Reads: requests, Writes: requests,
							ReadIAUS: 10, WriteIAUS: 10,
							ReadSize: 44 << 10, WriteSize: 23 << 10,
						},
						Faults: []faults.Event{{
							At: 2 * sim.Millisecond, Kind: faults.TargetStall,
							Where: "target:0", Duration: 2 * sim.Millisecond,
						}},
					},
					{
						// Rehydration reads refill the cache while foreground
						// writes continue at a trickle.
						Name: "rehydration",
						Workload: &WorkloadRef{
							Kind:  KindMicro,
							Reads: requests, ReadIAUS: 16, ReadSize: 64 << 10,
							Writes: requests / 4, WriteIAUS: 40, WriteSize: 16 << 10,
						},
					},
				},
			}
		},
	},
	{
		Name:  "gc-write-flood",
		Title: "write-dominant flood with GC-like slow-device windows on both targets",
		Build: func(seed uint64, requests int) *Spec {
			return &Spec{
				Name: "gc-write-flood",
				Seed: seed,
				Phases: []Phase{
					{
						Name: "write-flood",
						Workload: &WorkloadRef{
							Kind:  KindSynthetic,
							Reads: requests, Writes: requests,
							ReadIAUS: 10, WriteIAUS: 14,
							ReadSize: 44 << 10, WriteSize: 32 << 10,
							IASCV: 5, SizeSCV: 2, ACF1: 0.25,
						},
						Faults: []faults.Event{
							{
								At: 2 * sim.Millisecond, Kind: faults.SSDSlow,
								Where: "target:0", Duration: 4 * sim.Millisecond, Factor: 3,
							},
							{
								At: 6 * sim.Millisecond, Kind: faults.SSDSlow,
								Where: "target:1", Duration: 4 * sim.Millisecond, Factor: 3,
							},
						},
					},
				},
			}
		},
	},
}

// Library returns the built-in scenarios in listing order. The
// returned slice is shared; do not mutate it.
func Library() []LibraryScenario { return library }

// Lookup finds a built-in scenario by name.
func Lookup(name string) (LibraryScenario, bool) {
	for _, sc := range library {
		if sc.Name == name {
			return sc, true
		}
	}
	return LibraryScenario{}, false
}

// Names returns the built-in scenario names in listing order.
func Names() []string {
	names := make([]string, len(library))
	for i, sc := range library {
		names[i] = sc.Name
	}
	return names
}
