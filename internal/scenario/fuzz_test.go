package scenario

import (
	"strings"
	"testing"
)

// FuzzScenarioSpec: the DSL parser must never panic, and every spec it
// accepts must survive validation invariants — phases present, named,
// uniquely named, exactly one workload/trace ref each — and compile
// deterministically or fail with an error (never panic). Trace-ref
// phases are skipped at the compile step (no filesystem in the fuzz
// loop).
func FuzzScenarioSpec(f *testing.F) {
	f.Add(`{"name":"s","phases":[{"name":"p","workload":{"kind":"micro","reads":10,"read_ia_us":10,"read_size":4096}}]}`)
	f.Add(`{"name":"s","seed":7,"phases":[{"name":"a","workload":{"kind":"vdi","count":20}},{"name":"b","overlay":true,"start_ms":1,"workload":{"kind":"micro","writes":10,"write_ia_us":5,"write_size":8192}}]}`)
	f.Add(`{"name":"s","phases":[{"name":"p","duration_ms":2,"requests":5,"intensity":2,"workload":{"kind":"synthetic","reads":10,"read_ia_us":10,"read_size":4096,"ia_scv":4,"acf1":0.2}}]}`)
	f.Add(`{"name":"s","phases":[{"name":"p","trace":{"path":"x.jsonl","format":"jsonl"}}]}`)
	f.Add(`{"name":"s","phases":[{"name":"p","workload":{"kind":"micro","reads":10,"read_ia_us":10,"read_size":4096},"faults":[{"at_ns":1000,"kind":"ssd-slow","where":"target:0","duration_ns":500,"factor":2}]}]}`)
	f.Add(`{"name":"","phases":[]}`)
	f.Add(`{"name":"s","phases":[{"name":"p"}]}`)
	f.Add(`{"name":"s","phases":[{"name":"p","overlay":true,"workload":{"kind":"micro","reads":1,"read_ia_us":1,"read_size":1}}]}`)
	f.Add(`not json`)
	f.Add(`{"name":"s","bogus":1}`)
	f.Fuzz(func(t *testing.T, data string) {
		s, err := ParseSpec(strings.NewReader(data))
		if err != nil {
			return
		}
		if s.Name == "" || len(s.Phases) == 0 {
			t.Fatalf("accepted spec without name/phases: %+v", s)
		}
		seen := map[string]bool{}
		for i, ph := range s.Phases {
			if ph.Name == "" {
				t.Fatalf("phase %d accepted without a name", i)
			}
			if seen[ph.Name] {
				t.Fatalf("duplicate phase name %q accepted", ph.Name)
			}
			seen[ph.Name] = true
			if (ph.Workload == nil) == (ph.Trace == nil) {
				t.Fatalf("phase %d accepted without exactly one ref", i)
			}
			if ph.Trace != nil {
				// Compiling would hit the filesystem; parsing/validation
				// coverage is enough for trace refs.
				return
			}
			// Generated phases stay small enough to compile in the loop.
			if ph.Workload.Count > 2000 || ph.Workload.Reads > 2000 || ph.Workload.Writes > 2000 {
				return
			}
		}
		// An accepted all-generated spec must compile cleanly or fail
		// with an error — never panic — and compile deterministically.
		a, errA := s.Compile(1)
		b, errB := s.Compile(1)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("compile determinism: %v vs %v", errA, errB)
		}
		if errA != nil {
			return
		}
		if a.Trace.Len() != b.Trace.Len() {
			t.Fatalf("compile lengths differ: %d vs %d", a.Trace.Len(), b.Trace.Len())
		}
		for i := range a.Trace.Requests {
			if a.Trace.Requests[i] != b.Trace.Requests[i] {
				t.Fatalf("request %d differs between identical compiles", i)
			}
		}
	})
}
