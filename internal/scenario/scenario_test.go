package scenario

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"srcsim/internal/faults"
	"srcsim/internal/sim"
	"srcsim/internal/trace"
	"srcsim/internal/workload"
)

// twoPhase is a minimal valid sequential spec.
func twoPhase() *Spec {
	return &Spec{
		Name: "t",
		Seed: 1,
		Phases: []Phase{
			{Name: "a", Workload: &WorkloadRef{Kind: KindMicro, Reads: 100, ReadIAUS: 10, ReadSize: 8 << 10}},
			{Name: "b", Workload: &WorkloadRef{Kind: KindMicro, Writes: 100, WriteIAUS: 10, WriteSize: 8 << 10}},
		},
	}
}

func TestValidateErrors(t *testing.T) {
	micro := &WorkloadRef{Kind: KindMicro, Reads: 10, ReadIAUS: 10, ReadSize: 4096}
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"missing name", func(s *Spec) { s.Name = "" }, "missing name"},
		{"no phases", func(s *Spec) { s.Phases = nil }, "no phases"},
		{"unnamed phase", func(s *Spec) { s.Phases[0].Name = "" }, "missing name"},
		{"duplicate phase", func(s *Spec) { s.Phases[1].Name = "a" }, "duplicate phase"},
		{"first overlay", func(s *Spec) { s.Phases[0].Overlay = true }, "first phase cannot be an overlay"},
		{"start_ms on sequential", func(s *Spec) { s.Phases[1].StartMS = 2 }, "only meaningful on overlay"},
		{"negative duration", func(s *Spec) { s.Phases[0].DurationMS = -1 }, "negative start_ms/duration_ms"},
		{"negative requests", func(s *Spec) { s.Phases[0].Requests = -5 }, "negative requests"},
		{"negative intensity", func(s *Spec) { s.Phases[0].Intensity = -2 }, "negative intensity"},
		{"both refs", func(s *Spec) { s.Phases[0].Trace = &TraceRef{Path: "x"} }, "exactly one of workload and trace"},
		{"neither ref", func(s *Spec) { s.Phases[0].Workload = nil }, "exactly one of workload and trace"},
		{"unknown kind", func(s *Spec) { s.Phases[0].Workload = &WorkloadRef{Kind: "nope", Reads: 1} }, "unknown kind"},
		{"missing kind", func(s *Spec) { s.Phases[0].Workload = &WorkloadRef{Reads: 1} }, "missing kind"},
		{"vdi without count", func(s *Spec) { s.Phases[0].Workload = &WorkloadRef{Kind: KindVDI} }, "positive count"},
		{"vdi with micro knobs", func(s *Spec) {
			s.Phases[0].Workload = &WorkloadRef{Kind: KindVDI, Count: 10, Reads: 5}
		}, "presets take only count"},
		{"micro with count", func(s *Spec) {
			s.Phases[0].Workload = &WorkloadRef{Kind: KindMicro, Count: 5, Reads: 10, ReadIAUS: 1, ReadSize: 4096}
		}, "count is a vdi/cbs knob"},
		{"micro no streams", func(s *Spec) { s.Phases[0].Workload = &WorkloadRef{Kind: KindMicro} }, "needs reads or writes"},
		{"micro read missing size", func(s *Spec) {
			s.Phases[0].Workload = &WorkloadRef{Kind: KindMicro, Reads: 10, ReadIAUS: 1}
		}, "read stream needs"},
		{"micro with scv", func(s *Spec) {
			s.Phases[0].Workload = &WorkloadRef{Kind: KindMicro, Reads: 10, ReadIAUS: 1, ReadSize: 4096, IASCV: 4}
		}, "synthetic knobs"},
		{"synthetic sub-1 scv", func(s *Spec) {
			s.Phases[0].Workload = &WorkloadRef{Kind: KindSynthetic, Reads: 10, ReadIAUS: 1, ReadSize: 4096, IASCV: 0.5}
		}, "ia_scv"},
		{"trace missing path", func(s *Spec) {
			s.Phases[0].Workload = nil
			s.Phases[0].Trace = &TraceRef{}
		}, "missing path"},
		{"trace bad format", func(s *Spec) {
			s.Phases[0].Workload = nil
			s.Phases[0].Trace = &TraceRef{Path: "x", Format: "xml"}
		}, "unknown format"},
		{"bad fault event", func(s *Spec) {
			s.Phases[0].Faults = []faults.Event{{Kind: faults.SSDSlow, Where: "nowhere", Factor: 2}}
		}, "where"},
		{"micro knobs on validate", func(s *Spec) { _ = micro }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := twoPhase()
			tc.mut(s)
			err := s.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseSpecStrict(t *testing.T) {
	if _, err := ParseSpec(strings.NewReader(`{"name":"x","bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseSpec(strings.NewReader(`{"name":"x","phases":[{"name":"p","workload":{"kind":"micro","reads":10,"read_ia_us":10,"read_size":4096},"typo":1}]}`)); err == nil {
		t.Fatal("unknown phase field accepted")
	}
	s, err := ParseSpec(strings.NewReader(`{"name":"x","phases":[{"name":"p","workload":{"kind":"vdi","count":50}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Phases[0].Workload.Count != 50 {
		t.Fatalf("parsed %+v", s.Phases[0].Workload)
	}
}

func TestCompileSequentialTimeline(t *testing.T) {
	s := twoPhase()
	// 100 reads at 10 us mean IA span ~1 ms; a 0.5 ms budget must cut.
	s.Phases[0].DurationMS = 0.5
	c, err := s.Compile(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Phases) != 2 {
		t.Fatalf("windows %d", len(c.Phases))
	}
	a, b := c.Phases[0], c.Phases[1]
	if a.Start != 0 || a.End != sim.Millisecond/2 {
		t.Fatalf("phase a window %v..%v", a.Start, a.End)
	}
	if b.Start != a.End {
		t.Fatalf("phase b starts at %v, want %v", b.Start, a.End)
	}
	// Stream tags partition the merged trace at the phase boundary.
	for _, r := range c.Trace.Requests {
		switch {
		case r.Arrival < a.End && r.Stream != "a":
			t.Fatalf("request at %v tagged %q", r.Arrival, r.Stream)
		case r.Arrival >= b.Start && r.Stream != "b":
			t.Fatalf("request at %v tagged %q", r.Arrival, r.Stream)
		}
	}
	// The duration budget dropped phase a requests past 2 ms.
	if a.Requests >= 100 {
		t.Fatalf("duration budget did not cut: %d requests", a.Requests)
	}
	// IDs sequential after merge.
	for i, r := range c.Trace.Requests {
		if r.ID != uint64(i) {
			t.Fatalf("ID %d at index %d", r.ID, i)
		}
	}
}

func TestCompileOverlayAnchoring(t *testing.T) {
	s := twoPhase()
	s.Phases[1].Workload.Writes = 300 // phase b spans ~3 ms
	s.Phases = append(s.Phases, Phase{
		Name: "c", Overlay: true, StartMS: 1,
		Workload: &WorkloadRef{Kind: KindMicro, Reads: 50, ReadIAUS: 10, ReadSize: 8 << 10},
	})
	c, err := s.Compile(0)
	if err != nil {
		t.Fatal(err)
	}
	b, ov := c.Phases[1], c.Phases[2]
	if !ov.Overlay {
		t.Fatal("overlay flag lost")
	}
	// The overlay anchors to phase b's start (the most recent
	// sequential phase), offset by start_ms.
	if want := b.Start + sim.Millisecond; ov.Start != want {
		t.Fatalf("overlay start %v, want %v", ov.Start, want)
	}
	// Overlay and anchor phases interleave in time.
	overlap := c.Trace.Window(ov.Start, b.End)
	streams := map[string]bool{}
	for _, r := range overlap.Requests {
		streams[r.Stream] = true
	}
	if !streams["b"] || !streams["c"] {
		t.Fatalf("no interleaving in overlap window: %v", streams)
	}
}

func TestCompileIntensityScalesRate(t *testing.T) {
	s := twoPhase()
	base, err := s.Compile(0)
	if err != nil {
		t.Fatal(err)
	}
	s2 := twoPhase()
	s2.Phases[0].Intensity = 2
	s2.Phases[1].Intensity = 2
	fast, err := s2.Compile(0)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Trace.Len() != base.Trace.Len() {
		t.Fatalf("intensity changed request count: %d vs %d", fast.Trace.Len(), base.Trace.Len())
	}
	ratio := float64(base.Trace.Duration()) / float64(fast.Trace.Duration())
	if math.Abs(ratio-2) > 0.2 {
		t.Fatalf("intensity 2 compressed time by %.2fx, want ~2x", ratio)
	}
}

func TestCompileRequestBudget(t *testing.T) {
	s := twoPhase()
	s.Phases[0].Requests = 10
	c, err := s.Compile(0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Phases[0].Requests != 10 {
		t.Fatalf("request budget not applied: %d", c.Phases[0].Requests)
	}
}

func TestCompileDeterministic(t *testing.T) {
	a, err := twoPhase().Compile(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := twoPhase().Compile(7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace.Len() != b.Trace.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Trace.Requests {
		if a.Trace.Requests[i] != b.Trace.Requests[i] {
			t.Fatalf("request %d differs between identical compiles", i)
		}
	}
	c, err := twoPhase().Compile(8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Trace.Requests {
		if a.Trace.Requests[i] != c.Trace.Requests[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical scenarios")
	}
}

func TestCompileFaultOffsets(t *testing.T) {
	s := twoPhase()
	s.Phases[0].DurationMS = 2
	s.Phases[1].Faults = []faults.Event{{
		At: sim.Millisecond, Kind: faults.TargetStall,
		Where: "target:0", Duration: sim.Millisecond,
	}}
	c, err := s.Compile(0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Faults == nil || len(c.Faults.Events) != 1 {
		t.Fatal("fault schedule missing")
	}
	// Phase b starts at 2 ms; its 1 ms-relative event lands at 3 ms.
	if want := 3 * sim.Millisecond; c.Faults.Events[0].At != want {
		t.Fatalf("event at %v, want %v", c.Faults.Events[0].At, want)
	}
}

func TestCompileRejectsCrossPhaseFaultOverlap(t *testing.T) {
	s := twoPhase()
	// Phase a's window persists past phase b's start: same kind + selector
	// overlapping in absolute time must fail schedule validation.
	s.Phases[0].DurationMS = 1
	s.Phases[0].Faults = []faults.Event{{
		At: 0, Kind: faults.SSDSlow, Where: "target:0",
		Duration: 5 * sim.Millisecond, Factor: 2,
	}}
	s.Phases[1].Faults = []faults.Event{{
		At: 0, Kind: faults.SSDSlow, Where: "target:0",
		Duration: sim.Millisecond, Factor: 3,
	}}
	if _, err := s.Compile(0); err == nil {
		t.Fatal("overlapping cross-phase windows accepted")
	} else if !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCompileEmptyTraceRejected(t *testing.T) {
	s := twoPhase()
	s.Phases[0].DurationMS = 0.000001
	s.Phases[1].DurationMS = 0.000001
	if _, err := s.Compile(0); err == nil {
		t.Fatal("empty compiled trace accepted")
	}
}

func TestCompileTraceRefReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "in.jsonl")
	src := &trace.Trace{Requests: []trace.Request{
		{ID: 0, Op: trace.Read, LBA: 0, Size: 8192, Arrival: 500},
		{ID: 1, Op: trace.Write, LBA: 8192, Size: 4096, Arrival: 1500},
	}}
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, src); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	s := &Spec{
		Name: "replay",
		Phases: []Phase{{
			Name:  "file",
			Trace: &TraceRef{Path: path},
		}},
	}
	c, err := s.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Trace.Len() != 2 {
		t.Fatalf("len %d", c.Trace.Len())
	}
	// Rebased: the first arrival moves to phase start (0).
	if c.Trace.Requests[0].Arrival != 0 || c.Trace.Requests[1].Arrival != 1000 {
		t.Fatalf("not rebased: %+v", c.Trace.Requests)
	}
	if c.Trace.Requests[0].Stream != "file" {
		t.Fatalf("stream tag %q", c.Trace.Requests[0].Stream)
	}
}

func TestFitReproducesStatistics(t *testing.T) {
	src, err := workload.Synthetic(workload.SyntheticConfig{
		Seed:      3,
		ReadCount: 20000, WriteCount: 20000,
		ReadInterArrival: 10 * sim.Microsecond, WriteInterArrival: 20 * sim.Microsecond,
		ReadInterArrivalSCV: 4, WriteInterArrivalSCV: 4,
		ReadACF1: 0.2, WriteACF1: 0.2,
		ReadMeanSize: 44 << 10, WriteMeanSize: 23 << 10,
		ReadSizeSCV: 1.5, WriteSizeSCV: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := Fit(src, 9)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 9 {
		t.Fatalf("seed %d", cfg.Seed)
	}
	relerr := func(got, want float64) float64 { return math.Abs(got-want) / want }
	if relerr(float64(cfg.ReadInterArrival), float64(10*sim.Microsecond)) > 0.15 {
		t.Fatalf("fitted read IA %v", cfg.ReadInterArrival)
	}
	if cfg.ReadInterArrivalSCV < 2 {
		t.Fatalf("fitted read IA SCV %v, want bursty", cfg.ReadInterArrivalSCV)
	}
	if cfg.ReadACF1 <= 0 || cfg.ReadACF1 > 0.45 {
		t.Fatalf("fitted ACF1 %v outside (0, 0.45]", cfg.ReadACF1)
	}
	// Feasibility: the clamp keeps (scv, acf1) inside FitMMPP2's region.
	if lim := (cfg.ReadInterArrivalSCV - 1) / (2 * cfg.ReadInterArrivalSCV); cfg.ReadACF1 > lim+1e-9 {
		t.Fatalf("ACF1 %v beyond feasible %v", cfg.ReadACF1, lim)
	}
	// Regenerating from the fit reproduces the statistics.
	regen, err := workload.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ss, rs := trace.Extract(src), trace.Extract(regen)
	if relerr(rs.Read.MeanSize, ss.Read.MeanSize) > 0.15 {
		t.Fatalf("regen read size %v vs %v", rs.Read.MeanSize, ss.Read.MeanSize)
	}
	if relerr(rs.Read.MeanInterArrival, ss.Read.MeanInterArrival) > 0.15 {
		t.Fatalf("regen read IA %v vs %v", rs.Read.MeanInterArrival, ss.Read.MeanInterArrival)
	}
}

func TestFitEmptyTrace(t *testing.T) {
	if _, err := Fit(&trace.Trace{}, 1); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestFitSubExponentialClampsToExponential(t *testing.T) {
	// Near-constant arrivals: SCV << 1 must clamp to 1 (the exponential
	// path of workload.Synthetic), not fail the MMPP fit.
	reqs := make([]trace.Request, 1000)
	for i := range reqs {
		reqs[i] = trace.Request{ID: uint64(i), Op: trace.Read, Size: 4096, Arrival: sim.Time(i) * 1000}
	}
	cfg, err := Fit(&trace.Trace{Requests: reqs}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ReadInterArrivalSCV != 1 || cfg.ReadACF1 != 0 {
		t.Fatalf("clamp failed: scv=%v acf1=%v", cfg.ReadInterArrivalSCV, cfg.ReadACF1)
	}
	if _, err := workload.Synthetic(cfg); err != nil {
		t.Fatalf("refit config not regenerable: %v", err)
	}
}

func TestLibraryScenariosCompile(t *testing.T) {
	if len(Library()) < 5 {
		t.Fatalf("library has %d scenarios", len(Library()))
	}
	for _, sc := range Library() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			spec := sc.Build(7, 120)
			if spec.Name != sc.Name {
				t.Fatalf("spec name %q", spec.Name)
			}
			c, err := spec.Compile(0)
			if err != nil {
				t.Fatal(err)
			}
			if c.Trace.Len() == 0 {
				t.Fatal("empty trace")
			}
			// Byte-determinism of the compiled trace across rebuilds.
			c2, err := sc.Build(7, 120).Compile(0)
			if err != nil {
				t.Fatal(err)
			}
			var a, b bytes.Buffer
			if err := trace.WriteJSONL(&a, c.Trace); err != nil {
				t.Fatal(err)
			}
			if err := trace.WriteJSONL(&b, c2.Trace); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatal("library scenario not byte-deterministic")
			}
		})
	}
	if _, ok := Lookup("vdi-boot-storm"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := Lookup("no-such"); ok {
		t.Fatal("bogus lookup succeeded")
	}
	if len(Names()) != len(Library()) {
		t.Fatal("names/library mismatch")
	}
}

func TestPhaseSeedIndependence(t *testing.T) {
	if phaseSeed(1, "a") == phaseSeed(1, "b") {
		t.Fatal("phase seeds collide across names")
	}
	if phaseSeed(1, "a") == phaseSeed(2, "a") {
		t.Fatal("phase seeds collide across masters")
	}
	if phaseSeed(1, "a") != phaseSeed(1, "a") {
		t.Fatal("phase seed not stable")
	}
}
