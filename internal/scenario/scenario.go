// Package scenario is the application-centric workload toolchain: a
// declarative JSON DSL that composes named workload phases — each a
// synthetic workload config or an ingested trace, with an intensity
// scale, request/duration budgets, and optional phase-local faults —
// into one deterministic merged trace.Trace plus a faults.Schedule.
//
// Phases compose two ways. A *sequential* phase starts where the
// previous sequential phase's window ended (its duration budget if set,
// else its realised trace span). An *overlay* phase runs concurrently:
// it anchors to the most recent sequential phase's start plus its own
// start_ms offset and does not advance the timeline cursor — a boot
// storm laid over a steady-state desktop workload, a backup scan over
// OLTP traffic. Phase-local fault events are written relative to the
// phase start and compiled to absolute cluster time, then validated as
// one faults.Schedule so cross-phase window overlaps fail loudly.
//
// The package also closes the loop from real traces back to reusable
// configs: Fit refits any ingested trace (open JSONL format, CSV, MSR)
// into a workload.SyntheticConfig via the same MMPP(2)/log-normal
// moment matching the paper uses for the Fujitsu VDI and Tencent CBS
// statistics (Sec. IV-A).
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"srcsim/internal/faults"
)

// Workload kinds a phase may reference.
const (
	KindMicro     = "micro"
	KindSynthetic = "synthetic"
	KindVDI       = "vdi"
	KindCBS       = "cbs"
)

// WorkloadRef declares a phase's generated workload. Micro phases use
// the per-direction count/inter-arrival/size knobs; synthetic phases
// additionally shape burstiness with ia_scv/size_scv/acf1; vdi and cbs
// reference the paper's refitted trace presets and take only count
// (requests per direction).
type WorkloadRef struct {
	Kind string `json:"kind"`
	// Count is the per-direction request count of the vdi/cbs presets.
	Count int `json:"count,omitempty"`
	// Reads/Writes are the micro/synthetic per-direction counts; a zero
	// count disables that direction.
	Reads  int `json:"reads,omitempty"`
	Writes int `json:"writes,omitempty"`
	// Mean inter-arrival per direction, microseconds.
	ReadIAUS  float64 `json:"read_ia_us,omitempty"`
	WriteIAUS float64 `json:"write_ia_us,omitempty"`
	// Mean request size per direction, bytes.
	ReadSize  int `json:"read_size,omitempty"`
	WriteSize int `json:"write_size,omitempty"`
	// Synthetic burstiness: inter-arrival SCV (>= 1), size SCV, and
	// inter-arrival lag-1 autocorrelation, applied to both directions.
	IASCV   float64 `json:"ia_scv,omitempty"`
	SizeSCV float64 `json:"size_scv,omitempty"`
	ACF1    float64 `json:"acf1,omitempty"`
}

// TraceRef replays (or refits) an ingested trace file as a phase.
type TraceRef struct {
	Path string `json:"path"`
	// Format of the file: jsonl (the open trace format, default), csv
	// (tracegen), or msr (MSR Cambridge / SNIA).
	Format string `json:"format,omitempty"`
	// Refit regenerates the phase from the trace's fitted statistics
	// (scenario.Fit) instead of replaying it verbatim, making the phase
	// reseedable and budget-scalable.
	Refit bool `json:"refit,omitempty"`
}

// Phase is one named segment of a scenario.
type Phase struct {
	Name string `json:"name"`
	// Overlay phases run concurrently with the surrounding sequential
	// timeline instead of advancing it; see the package comment.
	Overlay bool `json:"overlay,omitempty"`
	// StartMS offsets an overlay phase from its anchor phase's start,
	// milliseconds. Sequential phases must leave it zero.
	StartMS float64 `json:"start_ms,omitempty"`
	// DurationMS is the phase's duration budget: requests arriving past
	// it are dropped and the timeline advances by exactly this much
	// (sequential phases). Zero means the realised trace span.
	DurationMS float64 `json:"duration_ms,omitempty"`
	// Requests caps the phase's request count (after intensity scaling,
	// before the duration cut). Zero means no cap.
	Requests int `json:"requests,omitempty"`
	// Intensity scales the arrival rate: 2 doubles it, 0.5 halves it.
	// Zero means 1 (unscaled).
	Intensity float64 `json:"intensity,omitempty"`
	// Exactly one of Workload and Trace must be set.
	Workload *WorkloadRef `json:"workload,omitempty"`
	Trace    *TraceRef    `json:"trace,omitempty"`
	// Faults are phase-local fault events; at_ns is relative to the
	// phase start and compiled to absolute time.
	Faults []faults.Event `json:"faults,omitempty"`
}

// Spec is a full scenario: a name, a default seed, and the phase list.
type Spec struct {
	Name string `json:"name"`
	// Seed is the default workload seed; Compile's seed argument
	// overrides it when non-zero.
	Seed   uint64  `json:"seed,omitempty"`
	Phases []Phase `json:"phases"`
}

// ParseSpec reads a scenario from JSON, rejecting unknown fields (a
// typo'd knob in a scenario must fail loudly, not silently no-op) and
// validating the result.
func ParseSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSpec reads a scenario from a JSON file.
func LoadSpec(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	s, err := ParseSpec(f)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return s, nil
}

// Validate checks the spec's internal consistency with per-phase
// errors. Fault events are checked individually here; cross-phase
// window overlaps are caught at compile time once absolute times are
// known.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("scenario %s: no phases", s.Name)
	}
	seen := make(map[string]bool, len(s.Phases))
	for i, ph := range s.Phases {
		tag := fmt.Sprintf("scenario %s: phase %d (%s)", s.Name, i, ph.Name)
		if ph.Name == "" {
			return fmt.Errorf("scenario %s: phase %d: missing name", s.Name, i)
		}
		if seen[ph.Name] {
			return fmt.Errorf("%s: duplicate phase name", tag)
		}
		seen[ph.Name] = true
		if i == 0 && ph.Overlay {
			return fmt.Errorf("%s: first phase cannot be an overlay (nothing to anchor to)", tag)
		}
		if !ph.Overlay && ph.StartMS != 0 {
			return fmt.Errorf("%s: start_ms is only meaningful on overlay phases", tag)
		}
		if ph.StartMS < 0 || ph.DurationMS < 0 {
			return fmt.Errorf("%s: negative start_ms/duration_ms", tag)
		}
		if ph.Requests < 0 {
			return fmt.Errorf("%s: negative requests", tag)
		}
		if ph.Intensity < 0 {
			return fmt.Errorf("%s: negative intensity", tag)
		}
		if (ph.Workload == nil) == (ph.Trace == nil) {
			return fmt.Errorf("%s: exactly one of workload and trace must be set", tag)
		}
		if ph.Workload != nil {
			if err := ph.Workload.validate(); err != nil {
				return fmt.Errorf("%s: %w", tag, err)
			}
		}
		if ph.Trace != nil {
			if err := ph.Trace.validate(); err != nil {
				return fmt.Errorf("%s: %w", tag, err)
			}
		}
		// Per-event checks via the faults validator; relative times are
		// as strict as absolute ones.
		if len(ph.Faults) > 0 {
			probe := &faults.Schedule{Events: ph.Faults}
			if err := probe.Validate(); err != nil {
				return fmt.Errorf("%s: %w", tag, err)
			}
		}
	}
	return nil
}

func (w *WorkloadRef) validate() error {
	switch w.Kind {
	case KindVDI, KindCBS:
		if w.Count <= 0 {
			return fmt.Errorf("workload %s: needs a positive count", w.Kind)
		}
		if w.Reads != 0 || w.Writes != 0 || w.ReadIAUS != 0 || w.WriteIAUS != 0 ||
			w.ReadSize != 0 || w.WriteSize != 0 || w.IASCV != 0 || w.SizeSCV != 0 || w.ACF1 != 0 {
			return fmt.Errorf("workload %s: presets take only count", w.Kind)
		}
	case KindMicro, KindSynthetic:
		if w.Count != 0 {
			return fmt.Errorf("workload %s: count is a vdi/cbs knob; use reads/writes", w.Kind)
		}
		if w.Reads <= 0 && w.Writes <= 0 {
			return fmt.Errorf("workload %s: needs reads or writes > 0", w.Kind)
		}
		if w.Reads < 0 || w.Writes < 0 {
			return fmt.Errorf("workload %s: negative reads/writes", w.Kind)
		}
		if w.Reads > 0 && (w.ReadIAUS <= 0 || w.ReadSize <= 0) {
			return fmt.Errorf("workload %s: read stream needs read_ia_us and read_size > 0", w.Kind)
		}
		if w.Writes > 0 && (w.WriteIAUS <= 0 || w.WriteSize <= 0) {
			return fmt.Errorf("workload %s: write stream needs write_ia_us and write_size > 0", w.Kind)
		}
		if w.Kind == KindMicro && (w.IASCV != 0 || w.SizeSCV != 0 || w.ACF1 != 0) {
			return fmt.Errorf("workload micro: ia_scv/size_scv/acf1 are synthetic knobs")
		}
		if w.Kind == KindSynthetic {
			if w.IASCV != 0 && w.IASCV < 1 {
				return fmt.Errorf("workload synthetic: ia_scv %g < 1", w.IASCV)
			}
			if w.SizeSCV < 0 || w.ACF1 < 0 {
				return fmt.Errorf("workload synthetic: negative size_scv/acf1")
			}
		}
	case "":
		return fmt.Errorf("workload: missing kind")
	default:
		return fmt.Errorf("workload: unknown kind %q (want micro, synthetic, vdi, or cbs)", w.Kind)
	}
	return nil
}

func (t *TraceRef) validate() error {
	if t.Path == "" {
		return fmt.Errorf("trace: missing path")
	}
	switch t.Format {
	case "", "jsonl", "csv", "msr":
		return nil
	default:
		return fmt.Errorf("trace: unknown format %q (want jsonl, csv, or msr)", t.Format)
	}
}
