package scenario

import (
	"fmt"
	"os"

	"srcsim/internal/faults"
	"srcsim/internal/sim"
	"srcsim/internal/trace"
	"srcsim/internal/workload"
)

// PhaseWindow is one compiled phase's placement on the scenario
// timeline.
type PhaseWindow struct {
	Name string `json:"name"`
	// Start and End bound the phase's window in absolute scenario time.
	Start sim.Time `json:"start_ns"`
	End   sim.Time `json:"end_ns"`
	// Requests is the phase's contribution to the merged trace (after
	// intensity scaling and budget cuts).
	Requests int `json:"requests"`
	// Overlay mirrors the phase's composition mode.
	Overlay bool `json:"overlay,omitempty"`
}

// Compiled is a scenario realised at a seed: the merged trace (every
// request stream-tagged with its phase name), the absolute-time fault
// schedule (nil when no phase declares faults), and the phase windows
// for reporting.
type Compiled struct {
	Trace  *trace.Trace
	Faults *faults.Schedule
	Phases []PhaseWindow
}

// phaseSeed derives a phase's workload seed from the master seed and
// the phase name (FNV-1a then a splitmix64 finaliser), so phases draw
// independent streams and renaming a phase reshuffles only that phase.
func phaseSeed(master uint64, name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	h ^= master
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// msToSim converts a millisecond knob to simulation time.
func msToSim(ms float64) sim.Time { return sim.Time(ms * float64(sim.Millisecond)) }

// Compile validates the spec and realises it at the given seed (zero
// falls back to Spec.Seed). The result is a pure function of
// (spec, seed): trace files referenced by phases are read here, but
// generated phases and the composition itself are deterministic.
func (s *Spec) Compile(seed uint64) (*Compiled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if seed == 0 {
		seed = s.Seed
	}
	var (
		cursor, anchor sim.Time
		merged         []trace.Request
		events         []faults.Event
		windows        []PhaseWindow
	)
	for pi, ph := range s.Phases {
		base, err := s.buildPhase(&ph, phaseSeed(seed, ph.Name))
		if err != nil {
			return nil, fmt.Errorf("scenario %s: phase %s: %w", s.Name, ph.Name, err)
		}
		if ph.Intensity > 0 && ph.Intensity != 1 {
			base = base.ScaleTime(1 / ph.Intensity)
		}
		if ph.Requests > 0 && base.Len() > ph.Requests {
			base.Requests = base.Requests[:ph.Requests]
		}
		dur := base.Duration()
		if ph.DurationMS > 0 {
			limit := msToSim(ph.DurationMS)
			base = base.Window(0, limit)
			dur = limit
		}
		start := cursor
		if ph.Overlay {
			start = anchor + msToSim(ph.StartMS)
		} else {
			anchor = start
		}
		for _, r := range base.Requests {
			r.Arrival += start
			r.Stream = ph.Name
			// Pack the phase index into the ID so the final sort's
			// (Arrival, ID) tie-break is phase-ordered and deterministic;
			// sequential IDs are reassigned after the merge.
			r.ID = uint64(pi)<<40 | r.ID
			merged = append(merged, r)
		}
		for _, ev := range ph.Faults {
			ev.At += start
			events = append(events, ev)
		}
		if !ph.Overlay {
			cursor = start + dur
		}
		windows = append(windows, PhaseWindow{
			Name: ph.Name, Start: start, End: start + dur,
			Requests: base.Len(), Overlay: ph.Overlay,
		})
	}
	out := &trace.Trace{Requests: merged}
	out.Sort()
	for i := range out.Requests {
		out.Requests[i].ID = uint64(i)
	}
	if out.Len() == 0 {
		return nil, fmt.Errorf("scenario %s: compiled to an empty trace", s.Name)
	}
	var sched *faults.Schedule
	if len(events) > 0 {
		sched = &faults.Schedule{Events: events}
		if err := sched.Validate(); err != nil {
			return nil, fmt.Errorf("scenario %s: compiled fault schedule: %w", s.Name, err)
		}
	}
	return &Compiled{Trace: out, Faults: sched, Phases: windows}, nil
}

// buildPhase materialises one phase's base trace, rebased to start at
// zero and sorted.
func (s *Spec) buildPhase(ph *Phase, seed uint64) (*trace.Trace, error) {
	if ph.Workload != nil {
		return buildWorkload(ph.Workload, seed)
	}
	tr, err := loadTraceFile(ph.Trace)
	if err != nil {
		return nil, err
	}
	tr.Sort()
	tr = tr.Rebase()
	if ph.Trace.Refit {
		cfg, err := Fit(tr, seed)
		if err != nil {
			return nil, fmt.Errorf("refit: %w", err)
		}
		return workload.Synthetic(cfg)
	}
	return tr, nil
}

func buildWorkload(w *WorkloadRef, seed uint64) (*trace.Trace, error) {
	switch w.Kind {
	case KindVDI:
		return workload.VDILike(seed, w.Count)
	case KindCBS:
		return workload.CBSLike(seed, w.Count)
	case KindMicro:
		return workload.Micro(workload.MicroConfig{
			Seed:      seed,
			ReadCount: w.Reads, WriteCount: w.Writes,
			ReadInterArrival:  sim.Time(w.ReadIAUS * float64(sim.Microsecond)),
			WriteInterArrival: sim.Time(w.WriteIAUS * float64(sim.Microsecond)),
			ReadMeanSize:      w.ReadSize, WriteMeanSize: w.WriteSize,
		})
	case KindSynthetic:
		iaSCV := w.IASCV
		if iaSCV == 0 {
			iaSCV = 1
		}
		return workload.Synthetic(workload.SyntheticConfig{
			Seed:      seed,
			ReadCount: w.Reads, WriteCount: w.Writes,
			ReadInterArrival:    sim.Time(w.ReadIAUS * float64(sim.Microsecond)),
			WriteInterArrival:   sim.Time(w.WriteIAUS * float64(sim.Microsecond)),
			ReadInterArrivalSCV: iaSCV, WriteInterArrivalSCV: iaSCV,
			ReadACF1: w.ACF1, WriteACF1: w.ACF1,
			ReadMeanSize: w.ReadSize, WriteMeanSize: w.WriteSize,
			ReadSizeSCV: w.SizeSCV, WriteSizeSCV: w.SizeSCV,
		})
	default:
		return nil, fmt.Errorf("unknown workload kind %q", w.Kind)
	}
}

func loadTraceFile(ref *TraceRef) (*trace.Trace, error) {
	f, err := os.Open(ref.Path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch ref.Format {
	case "", "jsonl":
		return trace.ReadJSONL(f)
	case "csv":
		return trace.ReadCSV(f)
	case "msr":
		return trace.ReadMSR(f)
	default:
		return nil, fmt.Errorf("unknown trace format %q", ref.Format)
	}
}

// Fit refits an ingested trace into a reusable synthetic workload
// config: per-direction means, SCVs, and lag-1 autocorrelation from
// trace.Extract, clamped into the feasible region of the MMPP(2)
// moment-matching fit (dist.FitMMPP2) the same way the paper's
// KPC-Toolbox pipeline does (Sec. IV-A). Regenerating with
// workload.Synthetic reproduces the trace's statistics — not its exact
// requests — at any seed and count.
func Fit(tr *trace.Trace, seed uint64) (workload.SyntheticConfig, error) {
	if tr.Len() == 0 {
		return workload.SyntheticConfig{}, fmt.Errorf("scenario: cannot fit an empty trace")
	}
	st := trace.Extract(tr)
	dir := func(d trace.DirStats) (count int, meanIA sim.Time, iaSCV, acf1 float64, meanSize int, sizeSCV float64) {
		count = d.Count
		if count == 0 {
			return
		}
		meanIA = sim.Time(d.MeanInterArrival)
		if meanIA <= 0 {
			meanIA = 1
		}
		iaSCV = d.InterArrivalSCV
		if iaSCV < 1 {
			// MMPP(2) cannot express sub-exponential variability; the
			// exponential path of workload.Synthetic takes over at 1.
			iaSCV = 1
		}
		// Feasible lag-1 autocorrelation for the fitted SCV.
		acf1 = d.InterArrivalACF1
		if acf1 < 0 {
			acf1 = 0
		}
		if lim := (iaSCV - 1) / (2 * iaSCV); acf1 > lim {
			acf1 = lim
		}
		if acf1 > 0.45 {
			acf1 = 0.45
		}
		meanSize = int(d.MeanSize)
		if meanSize < 1 {
			meanSize = 1
		}
		sizeSCV = d.SizeSCV
		if sizeSCV < 0 {
			sizeSCV = 0
		}
		return
	}
	cfg := workload.SyntheticConfig{Seed: seed}
	cfg.ReadCount, cfg.ReadInterArrival, cfg.ReadInterArrivalSCV, cfg.ReadACF1, cfg.ReadMeanSize, cfg.ReadSizeSCV = dir(st.Read)
	cfg.WriteCount, cfg.WriteInterArrival, cfg.WriteInterArrivalSCV, cfg.WriteACF1, cfg.WriteMeanSize, cfg.WriteSizeSCV = dir(st.Write)
	return cfg, nil
}
