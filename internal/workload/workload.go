// Package workload generates the two trace families the paper evaluates
// with (Sec. IV-A):
//
//   - micro traces — inter-arrival times and request sizes drawn from
//     exponential distributions;
//   - synthetic traces — bursty arrivals from a fitted two-phase MMPP and
//     log-normal sizes, regenerating the statistics of real SNIA block
//     traces (Fujitsu VDI, Tencent CBS). The real traces themselves are
//     not redistributable, so the presets encode their published/derived
//     statistics; see DESIGN.md "Substitutions".
//
// A generated Trace is open-loop: arrival times are fixed up front and do
// not react to service completion, matching the simulators in the paper.
package workload

import (
	"fmt"

	"srcsim/internal/dist"
	"srcsim/internal/sim"
	"srcsim/internal/trace"
)

// Block is the LBA alignment granularity for generated requests.
const Block = 4096

// StreamConfig describes one I/O direction of a generated workload.
type StreamConfig struct {
	// Count is the number of requests to generate for this direction.
	Count int
	// InterArrival samples successive gaps in nanoseconds.
	InterArrival dist.Sampler
	// Size samples request sizes in bytes (rounded up to Block).
	Size dist.Sampler
}

// Config fully describes a two-direction workload.
type Config struct {
	Read, Write StreamConfig
	// AddressSpace is the byte size of the accessed LBA range.
	AddressSpace uint64
	// HotFraction, if positive, directs HotProb of requests at the first
	// HotFraction of the address space, creating LBA overlap (exercises
	// the SSQ consistency check).
	HotFraction float64
	HotProb     float64
	// MaxSize clamps request sizes (default 1 MiB — the block layer
	// splits larger transfers in real systems, and heavy-tailed size
	// samplers would otherwise emit unrealistic multi-MB requests).
	MaxSize int
	// RNG supplies address randomness; required.
	RNG *sim.RNG
}

// Generate produces a merged, time-ordered trace from cfg. A sampler
// that emits a non-positive size violates the dist.Sampler contract;
// Generate rejects it with an error naming the offending stream and
// request index rather than silently rounding it up to Block.
func Generate(cfg Config) (*trace.Trace, error) {
	if cfg.RNG == nil {
		panic("workload: Config.RNG is required")
	}
	if cfg.AddressSpace < Block {
		// Default footprint: 2 GiB, within the CMT coverage of every
		// Table II device so steady-state runs are not dominated by cold
		// mapping misses.
		cfg.AddressSpace = 2 << 30
	}
	if cfg.MaxSize <= 0 {
		cfg.MaxSize = 1 << 20
	}
	// Clamp ceiling on the Block grid so rounding up can never push a
	// request past MaxSize (a sub-Block MaxSize still yields one block).
	maxSize := cfg.MaxSize / Block * Block
	if maxSize < Block {
		maxSize = Block
	}
	out := &trace.Trace{}
	genDir := func(sc StreamConfig, op trace.Op) error {
		if sc.Count == 0 {
			return nil
		}
		if sc.InterArrival == nil || sc.Size == nil {
			panic(fmt.Sprintf("workload: %v stream missing samplers", op))
		}
		var now float64
		for i := 0; i < sc.Count; i++ {
			now += sc.InterArrival.Sample()
			s := sc.Size.Sample()
			if s <= 0 {
				return fmt.Errorf("workload: %v stream request %d: size sampler emitted non-positive value %v", op, i, s)
			}
			size := int(s)
			if size < Block {
				size = Block
			}
			size = (size + Block - 1) / Block * Block
			if size > maxSize {
				size = maxSize
			}
			out.Requests = append(out.Requests, trace.Request{
				Op:      op,
				LBA:     cfg.randomLBA(size),
				Size:    size,
				Arrival: sim.Time(now),
			})
		}
		return nil
	}
	if err := genDir(cfg.Read, trace.Read); err != nil {
		return nil, err
	}
	if err := genDir(cfg.Write, trace.Write); err != nil {
		return nil, err
	}
	out.Sort()
	for i := range out.Requests {
		out.Requests[i].ID = uint64(i)
	}
	return out, nil
}

func (cfg Config) randomLBA(size int) uint64 {
	space := cfg.AddressSpace
	if cfg.HotFraction > 0 && cfg.RNG.Float64() < cfg.HotProb {
		space = uint64(float64(cfg.AddressSpace) * cfg.HotFraction)
		if space < Block {
			space = Block
		}
	}
	blocks := space / Block
	if blocks == 0 {
		blocks = 1
	}
	lba := uint64(cfg.RNG.Intn(int(blocks))) * Block
	// Keep the request inside the address space.
	if lba+uint64(size) > cfg.AddressSpace {
		if uint64(size) >= cfg.AddressSpace {
			return 0
		}
		lba = cfg.AddressSpace - uint64(size)
		lba = lba / Block * Block
	}
	return lba
}

// MicroConfig parameterises the paper's micro traces: exponential
// inter-arrival and size per direction.
type MicroConfig struct {
	Seed uint64
	// Requests per direction.
	ReadCount, WriteCount int
	// Mean inter-arrival per direction.
	ReadInterArrival, WriteInterArrival sim.Time
	// Mean request size per direction, bytes.
	ReadMeanSize, WriteMeanSize int
	AddressSpace                uint64
}

// Micro generates a micro trace (exponential everything, SCV 1).
func Micro(mc MicroConfig) (*trace.Trace, error) {
	rng := sim.NewRNG(mc.Seed)
	cfg := Config{AddressSpace: mc.AddressSpace, RNG: rng}
	if mc.ReadCount > 0 {
		cfg.Read = StreamConfig{
			Count:        mc.ReadCount,
			InterArrival: dist.NewExponential(float64(mc.ReadInterArrival), rng.Split()),
			Size:         dist.NewExponential(float64(mc.ReadMeanSize), rng.Split()),
		}
	}
	if mc.WriteCount > 0 {
		cfg.Write = StreamConfig{
			Count:        mc.WriteCount,
			InterArrival: dist.NewExponential(float64(mc.WriteInterArrival), rng.Split()),
			Size:         dist.NewExponential(float64(mc.WriteMeanSize), rng.Split()),
		}
	}
	return Generate(cfg)
}

// SyntheticConfig parameterises a bursty synthetic trace: MMPP(2)
// arrivals fit to (mean, SCV, lag-1 autocorrelation) and log-normal sizes
// with a target SCV — the KPC-Toolbox pipeline of Sec. IV-A.
type SyntheticConfig struct {
	Seed                  uint64
	ReadCount, WriteCount int

	ReadInterArrival, WriteInterArrival sim.Time
	// InterArrivalSCV >= 1 and ACF1 in [0, 0.45] per direction.
	ReadInterArrivalSCV, WriteInterArrivalSCV float64
	ReadACF1, WriteACF1                       float64

	ReadMeanSize, WriteMeanSize int
	ReadSizeSCV, WriteSizeSCV   float64

	AddressSpace uint64
}

// Synthetic generates a bursty synthetic trace. It returns an error if
// the MMPP fit cannot match the requested arrival statistics.
func Synthetic(sc SyntheticConfig) (*trace.Trace, error) {
	rng := sim.NewRNG(sc.Seed)
	cfg := Config{AddressSpace: sc.AddressSpace, RNG: rng}
	build := func(count int, meanIA sim.Time, iaSCV, acf1 float64, meanSize int, sizeSCV float64) (StreamConfig, error) {
		var s StreamConfig
		if count == 0 {
			return s, nil
		}
		var ia dist.Sampler
		if iaSCV <= 1.001 && acf1 <= 0.001 {
			ia = dist.NewExponential(float64(meanIA), rng.Split())
		} else {
			params, err := dist.FitMMPP2(float64(meanIA), iaSCV, acf1)
			if err != nil {
				return s, fmt.Errorf("workload: arrival fit: %w", err)
			}
			ia = params.New(rng.Split())
		}
		var size dist.Sampler
		if sizeSCV <= 0 {
			size = dist.Constant{V: float64(meanSize)}
		} else {
			size = dist.NewLogNormal(float64(meanSize), sizeSCV, rng.Split())
		}
		return StreamConfig{Count: count, InterArrival: ia, Size: size}, nil
	}
	var err error
	if cfg.Read, err = build(sc.ReadCount, sc.ReadInterArrival, sc.ReadInterArrivalSCV, sc.ReadACF1, sc.ReadMeanSize, sc.ReadSizeSCV); err != nil {
		return nil, err
	}
	if cfg.Write, err = build(sc.WriteCount, sc.WriteInterArrival, sc.WriteInterArrivalSCV, sc.WriteACF1, sc.WriteMeanSize, sc.WriteSizeSCV); err != nil {
		return nil, err
	}
	return Generate(cfg)
}
