package workload

import (
	"srcsim/internal/sim"
	"srcsim/internal/trace"
)

// VDILike returns a synthetic trace matching the statistics the paper
// reports for the Fujitsu VDI trace (Sec. IV-D): read-intensive, average
// read size 44 KB, average write size 23 KB, ~10 µs mean inter-arrival in
// both directions, bursty arrivals. count is the number of requests per
// direction.
func VDILike(seed uint64, count int) (*trace.Trace, error) {
	return Synthetic(SyntheticConfig{
		Seed:      seed,
		ReadCount: count, WriteCount: count,
		ReadInterArrival: 10 * sim.Microsecond, WriteInterArrival: 10 * sim.Microsecond,
		ReadInterArrivalSCV: 3.0, WriteInterArrivalSCV: 2.5,
		ReadACF1: 0.2, WriteACF1: 0.15,
		ReadMeanSize: 44 << 10, WriteMeanSize: 23 << 10,
		ReadSizeSCV: 1.8, WriteSizeSCV: 1.4,
	})
}

// CBSLike returns a synthetic trace with Tencent-CBS-like statistics:
// write-dominant cloud block storage, smaller requests, strong bursts.
func CBSLike(seed uint64, count int) (*trace.Trace, error) {
	return Synthetic(SyntheticConfig{
		Seed:      seed,
		ReadCount: count / 2, WriteCount: count,
		ReadInterArrival: 40 * sim.Microsecond, WriteInterArrival: 20 * sim.Microsecond,
		ReadInterArrivalSCV: 4.0, WriteInterArrivalSCV: 5.0,
		ReadACF1: 0.25, WriteACF1: 0.3,
		ReadMeanSize: 12 << 10, WriteMeanSize: 16 << 10,
		ReadSizeSCV: 2.5, WriteSizeSCV: 2.0,
	})
}

// SCVClass identifies one of the paper's four Table III data subsets,
// crossing low/high request-size SCV with low/high inter-arrival SCV.
type SCVClass int

// The four Table III workload classes.
const (
	LowSizeLowIA SCVClass = iota
	LowSizeHighIA
	HighSizeLowIA
	HighSizeHighIA
)

// String implements fmt.Stringer using the paper's row labels.
func (c SCVClass) String() string {
	switch c {
	case LowSizeLowIA:
		return "low size SCV + low inter-arrival SCV"
	case LowSizeHighIA:
		return "low size SCV + high inter-arrival SCV"
	case HighSizeLowIA:
		return "high size SCV + low inter-arrival SCV"
	case HighSizeHighIA:
		return "high size SCV + high inter-arrival SCV"
	default:
		return "unknown SCV class"
	}
}

// SCVClasses lists all four classes in Table III order.
var SCVClasses = []SCVClass{LowSizeLowIA, LowSizeHighIA, HighSizeLowIA, HighSizeHighIA}

// ClassConfig builds a SyntheticConfig belonging to the given Table III
// class. meanIA and meanSize set the base intensity; the class picks the
// variability. Low SCV is ~1 (near-exponential), high SCV is ~4-6.
func ClassConfig(class SCVClass, seed uint64, count int, meanIA sim.Time, meanSize int) SyntheticConfig {
	cfg := SyntheticConfig{
		Seed:      seed,
		ReadCount: count, WriteCount: count,
		ReadInterArrival: meanIA, WriteInterArrival: meanIA,
		ReadMeanSize: meanSize, WriteMeanSize: meanSize,
	}
	lowIA, highIA := 1.0, 5.0
	lowSize, highSize := 0.3, 4.0
	switch class {
	case LowSizeLowIA:
		cfg.ReadInterArrivalSCV, cfg.WriteInterArrivalSCV = lowIA, lowIA
		cfg.ReadSizeSCV, cfg.WriteSizeSCV = lowSize, lowSize
	case LowSizeHighIA:
		cfg.ReadInterArrivalSCV, cfg.WriteInterArrivalSCV = highIA, highIA
		cfg.ReadACF1, cfg.WriteACF1 = 0.25, 0.25
		cfg.ReadSizeSCV, cfg.WriteSizeSCV = lowSize, lowSize
	case HighSizeLowIA:
		cfg.ReadInterArrivalSCV, cfg.WriteInterArrivalSCV = lowIA, lowIA
		cfg.ReadSizeSCV, cfg.WriteSizeSCV = highSize, highSize
	case HighSizeHighIA:
		cfg.ReadInterArrivalSCV, cfg.WriteInterArrivalSCV = highIA, highIA
		cfg.ReadACF1, cfg.WriteACF1 = 0.25, 0.25
		cfg.ReadSizeSCV, cfg.WriteSizeSCV = highSize, highSize
	}
	return cfg
}

// IntensityLevel labels the Fig. 10 sensitivity workloads.
type IntensityLevel int

// The three Fig. 10 intensity levels.
const (
	Light IntensityLevel = iota
	Moderate
	Heavy
)

// String implements fmt.Stringer.
func (l IntensityLevel) String() string {
	switch l {
	case Light:
		return "light"
	case Moderate:
		return "moderate"
	case Heavy:
		return "heavy"
	default:
		return "unknown intensity"
	}
}

// Intensity returns the paper's Fig. 10 micro workloads: light (22 KB at
// 60 req/ms), moderate (32 KB at 80 req/ms), heavy (44 KB at 100 req/ms),
// per direction.
func Intensity(level IntensityLevel, seed uint64, count int) (*trace.Trace, error) {
	var size int
	var ratePerMS float64
	switch level {
	case Light:
		size, ratePerMS = 22<<10, 60
	case Moderate:
		size, ratePerMS = 32<<10, 80
	case Heavy:
		size, ratePerMS = 44<<10, 100
	default:
		panic("workload: unknown intensity level")
	}
	interArrival := sim.Time(float64(sim.Millisecond) / ratePerMS)
	return Micro(MicroConfig{
		Seed:      seed,
		ReadCount: count, WriteCount: count,
		ReadInterArrival: interArrival, WriteInterArrival: interArrival,
		ReadMeanSize: size, WriteMeanSize: size,
	})
}
