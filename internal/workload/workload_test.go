package workload

import (
	"math"
	"strings"
	"testing"

	"srcsim/internal/dist"
	"srcsim/internal/sim"
	"srcsim/internal/trace"
)

// mustMicro generates a micro trace, failing the test on error.
func mustMicro(tb testing.TB, mc MicroConfig) *trace.Trace {
	tb.Helper()
	tr, err := Micro(mc)
	if err != nil {
		tb.Fatal(err)
	}
	return tr
}

func TestMicroStatistics(t *testing.T) {
	tr := mustMicro(t, MicroConfig{
		Seed:      1,
		ReadCount: 20000, WriteCount: 20000,
		ReadInterArrival: 10 * sim.Microsecond, WriteInterArrival: 20 * sim.Microsecond,
		ReadMeanSize: 44 << 10, WriteMeanSize: 23 << 10,
	})
	if tr.Len() != 40000 {
		t.Fatalf("len %d", tr.Len())
	}
	s := trace.Extract(tr)
	if math.Abs(s.Read.MeanInterArrival-float64(10*sim.Microsecond))/float64(10*sim.Microsecond) > 0.05 {
		t.Fatalf("read inter-arrival %v", s.Read.MeanInterArrival)
	}
	if math.Abs(s.Write.MeanInterArrival-float64(20*sim.Microsecond))/float64(20*sim.Microsecond) > 0.05 {
		t.Fatalf("write inter-arrival %v", s.Write.MeanInterArrival)
	}
	// Sizes are block-rounded so the realized mean shifts up slightly.
	if s.Read.MeanSize < 44<<10*0.95 || s.Read.MeanSize > 44<<10*1.15 {
		t.Fatalf("read mean size %v", s.Read.MeanSize)
	}
	// Exponential inter-arrivals: SCV near 1.
	if math.Abs(s.Read.InterArrivalSCV-1) > 0.1 {
		t.Fatalf("micro read inter-arrival SCV %v, want ~1", s.Read.InterArrivalSCV)
	}
	if s.ReadRatio != 0.5 {
		t.Fatalf("read ratio %v", s.ReadRatio)
	}
}

func TestMicroDeterminism(t *testing.T) {
	mc := MicroConfig{Seed: 7, ReadCount: 500, WriteCount: 500,
		ReadInterArrival: sim.Microsecond, WriteInterArrival: sim.Microsecond,
		ReadMeanSize: 4096, WriteMeanSize: 4096}
	a, b := mustMicro(t, mc), mustMicro(t, mc)
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs between identical seeds", i)
		}
	}
	mc.Seed = 8
	c := mustMicro(t, mc)
	same := true
	for i := range a.Requests {
		if a.Requests[i] != c.Requests[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateInvariants(t *testing.T) {
	tr := mustMicro(t, MicroConfig{Seed: 3, ReadCount: 5000, WriteCount: 5000,
		ReadInterArrival: 5 * sim.Microsecond, WriteInterArrival: 5 * sim.Microsecond,
		ReadMeanSize: 16 << 10, WriteMeanSize: 16 << 10,
		AddressSpace: 1 << 30})
	var prev sim.Time
	for i, r := range tr.Requests {
		if r.Arrival < prev {
			t.Fatalf("trace not time-ordered at %d", i)
		}
		prev = r.Arrival
		if r.Size < Block || r.Size%Block != 0 {
			t.Fatalf("size %d not block aligned", r.Size)
		}
		if r.LBA%Block != 0 {
			t.Fatalf("lba %d not block aligned", r.LBA)
		}
		if r.End() > 1<<30 {
			t.Fatalf("request %d exceeds address space: end=%d", i, r.End())
		}
		if r.ID != uint64(i) {
			t.Fatalf("IDs not sequential at %d", i)
		}
	}
}

func TestGenerateRequiresRNG(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("missing RNG should panic")
		}
	}()
	Generate(Config{}) //nolint:errcheck // panics before returning
}

func TestGenerateMissingSamplerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("missing sampler should panic")
		}
	}()
	Generate(Config{RNG: sim.NewRNG(1), Read: StreamConfig{Count: 5}}) //nolint:errcheck // panics before returning
}

func TestHotFractionCreatesOverlap(t *testing.T) {
	rng := sim.NewRNG(5)
	cfg := Config{
		Read: StreamConfig{
			Count:        5000,
			InterArrival: dist.Constant{V: 1000},
			Size:         dist.Constant{V: Block},
		},
		AddressSpace: 1 << 40,
		HotFraction:  0.0001,
		HotProb:      0.5,
		RNG:          rng,
	}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	dup := 0
	for _, r := range tr.Requests {
		seen[r.LBA]++
		if seen[r.LBA] == 2 {
			dup++
		}
	}
	if dup < 100 {
		t.Fatalf("hot fraction produced only %d duplicate LBAs", dup)
	}
}

func TestSyntheticMatchesTargets(t *testing.T) {
	tr, err := Synthetic(SyntheticConfig{
		Seed:      11,
		ReadCount: 30000, WriteCount: 30000,
		ReadInterArrival: 10 * sim.Microsecond, WriteInterArrival: 10 * sim.Microsecond,
		ReadInterArrivalSCV: 4, WriteInterArrivalSCV: 4,
		ReadACF1: 0.2, WriteACF1: 0.2,
		ReadMeanSize: 44 << 10, WriteMeanSize: 23 << 10,
		ReadSizeSCV: 1.5, WriteSizeSCV: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := trace.Extract(tr)
	if math.Abs(s.Read.MeanInterArrival-float64(10*sim.Microsecond))/float64(10*sim.Microsecond) > 0.1 {
		t.Fatalf("synthetic read inter-arrival %v", s.Read.MeanInterArrival)
	}
	if s.Read.InterArrivalSCV < 2.5 {
		t.Fatalf("synthetic read inter-arrival SCV %v, want bursty (~4)", s.Read.InterArrivalSCV)
	}
	if s.Read.InterArrivalACF1 < 0.08 {
		t.Fatalf("synthetic ACF1 %v, want positive correlation", s.Read.InterArrivalACF1)
	}
}

func TestVDILikeShape(t *testing.T) {
	tr, err := VDILike(1, 5000)
	if err != nil {
		t.Fatal(err)
	}
	s := trace.Extract(tr)
	// Read flow should clearly exceed write flow (44KB vs 23KB at equal rate).
	if s.Read.FlowSpeed <= 1.5*s.Write.FlowSpeed {
		t.Fatalf("VDI read flow %v not ~2x write flow %v", s.Read.FlowSpeed, s.Write.FlowSpeed)
	}
	if s.Read.MeanSize < 38<<10 || s.Read.MeanSize > 52<<10 {
		t.Fatalf("VDI read mean size %v", s.Read.MeanSize)
	}
}

func TestCBSLikeWriteDominant(t *testing.T) {
	tr, err := CBSLike(1, 4000)
	if err != nil {
		t.Fatal(err)
	}
	s := trace.Extract(tr)
	if s.ReadRatio >= 0.5 {
		t.Fatalf("CBS should be write-dominant, read ratio %v", s.ReadRatio)
	}
}

func TestSCVClassesSeparate(t *testing.T) {
	const count = 20000
	for _, class := range SCVClasses {
		cfg := ClassConfig(class, 9, count, 15*sim.Microsecond, 20<<10)
		tr, err := Synthetic(cfg)
		if err != nil {
			t.Fatalf("%v: %v", class, err)
		}
		s := trace.Extract(tr)
		highIA := class == LowSizeHighIA || class == HighSizeHighIA
		highSize := class == HighSizeLowIA || class == HighSizeHighIA
		if highIA && s.Read.InterArrivalSCV < 2 {
			t.Errorf("%v: inter-arrival SCV %v too low", class, s.Read.InterArrivalSCV)
		}
		if !highIA && s.Read.InterArrivalSCV > 1.5 {
			t.Errorf("%v: inter-arrival SCV %v too high", class, s.Read.InterArrivalSCV)
		}
		if highSize && s.Read.SizeSCV < 1.5 {
			t.Errorf("%v: size SCV %v too low", class, s.Read.SizeSCV)
		}
		if !highSize && s.Read.SizeSCV > 1 {
			t.Errorf("%v: size SCV %v too high", class, s.Read.SizeSCV)
		}
	}
}

func TestSCVClassStrings(t *testing.T) {
	for _, c := range SCVClasses {
		if c.String() == "unknown SCV class" {
			t.Fatalf("class %d missing label", c)
		}
	}
	if SCVClass(99).String() != "unknown SCV class" {
		t.Fatal("unknown class label")
	}
}

func TestIntensityOrdering(t *testing.T) {
	flows := map[IntensityLevel]float64{}
	for _, level := range []IntensityLevel{Light, Moderate, Heavy} {
		tr, err := Intensity(level, 3, 5000)
		if err != nil {
			t.Fatal(err)
		}
		s := trace.Extract(tr)
		flows[level] = s.Read.FlowSpeed + s.Write.FlowSpeed
	}
	if !(flows[Light] < flows[Moderate] && flows[Moderate] < flows[Heavy]) {
		t.Fatalf("intensity flows not ordered: %v", flows)
	}
	if Light.String() != "light" || Heavy.String() != "heavy" {
		t.Fatal("intensity labels")
	}
}

func TestIntensityPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown level should panic")
		}
	}()
	Intensity(IntensityLevel(42), 1, 10) //nolint:errcheck // panics before returning
}

func BenchmarkMicroGenerate(b *testing.B) {
	mc := MicroConfig{Seed: 1, ReadCount: 5000, WriteCount: 5000,
		ReadInterArrival: 10 * sim.Microsecond, WriteInterArrival: 10 * sim.Microsecond,
		ReadMeanSize: 44 << 10, WriteMeanSize: 23 << 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = Micro(mc)
	}
}

// negSampler violates the dist.Sampler contract after n good samples.
type negSampler struct {
	n int
	v float64
}

func (s *negSampler) Sample() float64 {
	if s.n > 0 {
		s.n--
		return 8192
	}
	return s.v
}

func (s *negSampler) Mean() float64 { return 8192 }

func TestGenerateRejectsNonPositiveSizes(t *testing.T) {
	for _, bad := range []float64{0, -512} {
		cfg := Config{
			Write: StreamConfig{
				Count:        5,
				InterArrival: dist.Constant{V: 1000},
				Size:         &negSampler{n: 3, v: bad},
			},
			RNG: sim.NewRNG(1),
		}
		_, err := Generate(cfg)
		if err == nil {
			t.Fatalf("sampler value %v accepted", bad)
		}
		// The error must attribute the offending stream and request.
		for _, want := range []string{"W stream", "request 3", "non-positive"} {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("error %q does not mention %q", err, want)
			}
		}
	}
}

func TestGenerateMaxSizeClampBoundary(t *testing.T) {
	gen := func(sample float64, maxSize int) int {
		t.Helper()
		tr, err := Generate(Config{
			Read: StreamConfig{
				Count:        1,
				InterArrival: dist.Constant{V: 1000},
				Size:         dist.Constant{V: sample},
			},
			MaxSize: maxSize,
			RNG:     sim.NewRNG(1),
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr.Requests[0].Size
	}
	cases := []struct {
		name    string
		sample  float64
		maxSize int
		want    int
	}{
		{"under max unrounded", 5000, 1 << 20, 2 * Block},
		{"exactly max", 1 << 20, 1 << 20, 1 << 20},
		{"one byte over max", 1<<20 + 1, 1 << 20, 1 << 20},
		{"just under max rounds to max", 1<<20 - 1, 1 << 20, 1 << 20},
		{"far over max", 64 << 20, 1 << 20, 1 << 20},
		// Unaligned ceiling: clamp lands on the block grid below it so
		// round-up can never exceed MaxSize.
		{"unaligned max", 3 << 20, 10000, 2 * Block},
		{"sub-block max still one block", 1 << 20, 100, Block},
	}
	for _, tc := range cases {
		if got := gen(tc.sample, tc.maxSize); got != tc.want {
			t.Errorf("%s: sample %v maxSize %d: got %d, want %d", tc.name, tc.sample, tc.maxSize, got, tc.want)
		}
	}
}
