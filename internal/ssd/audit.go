package ssd

import "srcsim/internal/guard"

// AuditInvariants verifies the device's occupancy and flash accounting.
// All checks are counter-level (O(blocks) per die, no per-page scans),
// read-only, and safe on the live sim clock:
//
//   - the queue-depth window: 0 <= outstanding <= QueueDepth, and parked
//     completions never exceed outstanding (a parked command still holds
//     its slot);
//   - write-cache slots: 0 <= used <= slots;
//   - per die: freePages equals totalPages minus programmed pages
//     (sum of block writePtr), every block's validCount sits within
//     [0, writePtr], and the summed valid pages equal the mapping-table
//     size (each logical page maps to exactly one valid physical page).
func (d *Device) AuditInvariants() []guard.Violation {
	var vs []guard.Violation
	if d.outstanding < 0 || d.outstanding > d.Cfg.QueueDepth {
		vs = append(vs, guard.Violationf("ssd", "queue-depth-window",
			"outstanding %d outside [0,%d]", d.outstanding, d.Cfg.QueueDepth))
	}
	if d.Parked() > d.outstanding {
		vs = append(vs, guard.Violationf("ssd", "parked-within-outstanding",
			"parked %d > outstanding %d", d.Parked(), d.outstanding))
	}
	if d.wcache.used < 0 || d.wcache.used > d.wcache.slots {
		vs = append(vs, guard.Violationf("ssd", "write-cache-slots",
			"used %d outside [0,%d]", d.wcache.used, d.wcache.slots))
	}
	for _, die := range d.dies {
		var programmed, valid int
		for bi := range die.blocks {
			b := &die.blocks[bi]
			if b.validCount < 0 || b.validCount > b.writePtr {
				vs = append(vs, guard.Violationf("ssd", "block-valid-count",
					"die %d block %d: validCount %d outside [0,%d]",
					die.index, bi, b.validCount, b.writePtr))
			}
			if b.writePtr < 0 || b.writePtr > die.pagesPerBlock {
				vs = append(vs, guard.Violationf("ssd", "block-write-ptr",
					"die %d block %d: writePtr %d outside [0,%d]",
					die.index, bi, b.writePtr, die.pagesPerBlock))
			}
			programmed += b.writePtr
			valid += b.validCount
		}
		if die.freePages != die.totalPages-programmed {
			vs = append(vs, guard.Violationf("ssd", "free-page-conservation",
				"die %d: freePages %d but totalPages %d - programmed %d = %d",
				die.index, die.freePages, die.totalPages, programmed,
				die.totalPages-programmed))
		}
		if valid != len(die.mapping) {
			vs = append(vs, guard.Violationf("ssd", "valid-page-mapping",
				"die %d: %d valid pages but %d mapping entries",
				die.index, valid, len(die.mapping)))
		}
	}
	return vs
}
