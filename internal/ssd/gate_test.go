package ssd

import (
	"testing"

	"srcsim/internal/nvme"
	"srcsim/internal/sim"
	"srcsim/internal/trace"
)

// creditGate admits reads while credit lasts; writes always pass the
// admission check (but still honour CQ FIFO order via parking).
type creditGate struct {
	credit int64
}

func (g *creditGate) Admit(c *nvme.Command) bool {
	if c.Op != trace.Read {
		return true
	}
	if g.credit >= int64(c.Size) {
		g.credit -= int64(c.Size)
		return true
	}
	return false
}

func TestGateParksCompletionsAndStallsDevice(t *testing.T) {
	arb := nvme.NewSSQ(1, 1)
	cfg := ConfigA()
	cfg.QueueDepth = 8
	eng, dev := testDevice(t, cfg, arb)
	gate := &creditGate{credit: 2 * 16 << 10} // room for two reads
	dev.Gate = gate

	completed := 0
	dev.OnComplete = func(*nvme.Command) { completed++ }
	for i := uint64(0); i < 20; i++ {
		arb.Submit(&nvme.Command{ID: i, Op: trace.Read, LBA: i << 20, Size: 16 << 10})
	}
	dev.Kick()
	eng.RunUntilIdle()

	if completed != 2 {
		t.Fatalf("completed %d, want 2 (credit-limited)", completed)
	}
	if dev.Parked() == 0 {
		t.Fatal("no parked completions")
	}
	// Device must be stalled: outstanding slots held by parked commands.
	if dev.Outstanding() != cfg.QueueDepth {
		t.Fatalf("outstanding %d, want full window %d", dev.Outstanding(), cfg.QueueDepth)
	}
	if dev.PeakParked == 0 {
		t.Fatal("peak parked not recorded")
	}

	// Return credit: parked completions drain in FIFO order and the
	// device resumes fetching.
	gate.credit = 1 << 30
	dev.ReleaseParked()
	eng.RunUntilIdle()
	if completed != 20 {
		t.Fatalf("completed %d after release, want 20", completed)
	}
	if dev.Parked() != 0 {
		t.Fatalf("%d still parked", dev.Parked())
	}
}

func TestGateFIFOBlocksWritesBehindReads(t *testing.T) {
	// The shared CQ is ordered: a write finishing after a blocked read
	// must not overtake it — the paper's write-collapse mechanism.
	arb := nvme.NewSSQ(1, 1)
	cfg := ConfigB()
	cfg.QueueDepth = 4
	eng, dev := testDevice(t, cfg, arb)
	dev.Gate = &creditGate{credit: 0} // no read may complete

	var order []trace.Op
	dev.OnComplete = func(c *nvme.Command) { order = append(order, c.Op) }

	// A read (fast on SSD-B) followed by a write.
	arb.Submit(&nvme.Command{ID: 1, Op: trace.Read, LBA: 0, Size: 16 << 10})
	arb.Submit(&nvme.Command{ID: 2, Op: trace.Write, LBA: 1 << 20, Size: 16 << 10})
	dev.Kick()
	eng.RunUntilIdle()

	if len(order) != 0 {
		t.Fatalf("completions escaped a zero-credit gate: %v", order)
	}
	if dev.Parked() != 2 {
		t.Fatalf("parked %d, want 2 (write queued behind read)", dev.Parked())
	}

	dev.Gate = nil // lift the gate entirely
	dev.ReleaseParked()
	if len(order) != 2 || order[0] != trace.Read || order[1] != trace.Write {
		t.Fatalf("FIFO release order wrong: %v", order)
	}
}

func TestPreconditionBoundsAndResetsStats(t *testing.T) {
	arb := nvme.NewSSQ(1, 1)
	cfg := ConfigA()
	_, dev := testDevice(t, cfg, arb)
	dev.Precondition(1 << 30) // 1 GiB footprint, within CMT coverage
	if dev.cmt.Hits != 0 || dev.cmt.Misses != 0 {
		t.Fatal("precondition must not count as workload accesses")
	}
	wantEntries := int((1 << 30) / cfg.PageSize)
	if dev.cmt.Len() != wantEntries {
		t.Fatalf("CMT entries %d, want %d", dev.cmt.Len(), wantEntries)
	}
	// A footprint beyond CMT capacity is clipped, not an error.
	dev.Precondition(1 << 40)
	if dev.cmt.Len() > int(cfg.CMTBytes/mapEntryBytes) {
		t.Fatalf("CMT overfilled: %d", dev.cmt.Len())
	}
}

func TestWriteBackBlocksWhenCacheFull(t *testing.T) {
	// Write-back acks are instant only while slots exist; once the cache
	// is full, further writes wait for destage.
	cfg := ConfigA()
	cfg.CacheMode = WriteBack
	cfg.WriteCacheBytes = int64(cfg.PageSize) * 4 // 4 slots
	arb := nvme.NewSSQ(1, 1)
	eng, dev := testDevice(t, cfg, arb)

	acks := 0
	dev.OnComplete = func(*nvme.Command) { acks++ }
	for i := uint64(0); i < 16; i++ {
		arb.Submit(&nvme.Command{ID: i, Op: trace.Write, LBA: i << 20, Size: cfg.PageSize})
	}
	dev.Kick()
	// Within the DRAM-ack horizon only the first 4 writes can be in
	// cache; run 3 DRAM latencies.
	eng.Run(3 * cfg.DRAMLatency)
	if acks > 4 {
		t.Fatalf("%d acks before any destage; cache holds 4", acks)
	}
	eng.RunUntilIdle()
	if acks != 16 {
		t.Fatalf("final acks %d", acks)
	}
}

func TestGCSlowsForegroundWrites(t *testing.T) {
	// With GC pressure (tiny device, sustained overwrites) the same
	// workload takes longer than on a fresh large device — GC erases and
	// relocations steal die time.
	mkCfg := func(blocks int) Config {
		return Config{
			Name: "gctest", QueueDepth: 8,
			Channels: 1, DiesPerChannel: 1,
			BlocksPerDie: blocks, PagesPerBlock: 8,
			PageSize:    4096,
			GCThreshold: 0.2,
		}
	}
	elapsed := func(cfg Config) sim.Time {
		arb := nvme.NewSSQ(1, 1)
		eng, dev := testDevice(t, cfg, arb)
		tr := &trace.Trace{}
		for i := 0; i < 500; i++ {
			tr.Requests = append(tr.Requests, trace.Request{
				ID: uint64(i), Op: trace.Write,
				LBA:     uint64(i%20) * 4096,
				Size:    4096,
				Arrival: sim.Time(i) * 10 * sim.Microsecond,
			})
		}
		driveTrace(eng, dev, arb, tr)
		return eng.Now()
	}
	small := elapsed(mkCfg(6))    // 48 pages: heavy GC churn
	large := elapsed(mkCfg(1024)) // effectively GC-free
	if small <= large {
		t.Fatalf("GC-pressured run (%v) should be slower than GC-free (%v)", small, large)
	}
}

func TestChannelUtilizationTracked(t *testing.T) {
	arb := nvme.NewSSQ(1, 1)
	eng, dev := testDevice(t, ConfigA(), arb)
	for i := uint64(0); i < 200; i++ {
		arb.Submit(&nvme.Command{ID: i, Op: trace.Read, LBA: i << 20, Size: 16 << 10})
	}
	dev.Kick()
	eng.RunUntilIdle()
	var busy sim.Time
	for _, ch := range dev.channels {
		busy += ch.BusyTime
	}
	if busy == 0 {
		t.Fatal("channels reported no busy time")
	}
}

func TestWriteAmplificationUnderGC(t *testing.T) {
	cfg := Config{
		Name: "wa", QueueDepth: 8,
		Channels: 1, DiesPerChannel: 1,
		BlocksPerDie: 8, PagesPerBlock: 8,
		PageSize:    4096,
		GCThreshold: 0.25,
	}
	arb := nvme.NewSSQ(1, 1)
	eng, dev := testDevice(t, cfg, arb)
	if dev.WriteAmplification() != 1 {
		t.Fatal("WA without writes should be 1")
	}
	// Working set near capacity (40 live pages of 64): GC victims then
	// always carry valid pages that must be relocated.
	tr := &trace.Trace{}
	for i := 0; i < 500; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			ID: uint64(i), Op: trace.Write,
			LBA:     uint64(i%40) * 4096,
			Size:    4096,
			Arrival: sim.Time(i) * 50 * sim.Microsecond,
		})
	}
	driveTrace(eng, dev, arb, tr)
	wa := dev.WriteAmplification()
	if wa <= 1 {
		t.Fatalf("sustained overwrites near capacity should amplify writes, WA=%v", wa)
	}
	if wa > 10 {
		t.Fatalf("implausible WA=%v", wa)
	}
}
