package ssd

import (
	"testing"

	"srcsim/internal/nvme"
	"srcsim/internal/sim"
	"srcsim/internal/trace"
	"srcsim/internal/workload"
)

// testDevice builds a device over an SSQ with the given config tweaks.
func testDevice(t testing.TB, cfg Config, arb nvme.Arbiter) (*sim.Engine, *Device) {
	t.Helper()
	eng := sim.NewEngine()
	dev, err := New(eng, cfg, arb)
	if err != nil {
		t.Fatal(err)
	}
	return eng, dev
}

// driveTrace submits every request of tr at its arrival time and runs to
// completion; returns completion times by command ID.
func driveTrace(eng *sim.Engine, dev *Device, arb nvme.Arbiter, tr *trace.Trace) map[uint64]sim.Time {
	completions := make(map[uint64]sim.Time, tr.Len())
	dev.OnComplete = func(c *nvme.Command) { completions[c.ID] = eng.Now() }
	for _, r := range tr.Requests {
		r := r
		eng.Schedule(r.Arrival, func() {
			arb.Submit(&nvme.Command{ID: r.ID, Op: r.Op, LBA: r.LBA, Size: r.Size, Submitted: r.Arrival})
			dev.Kick()
		})
	}
	eng.RunUntilIdle()
	return completions
}

func TestConfigPresets(t *testing.T) {
	for _, cfg := range []Config{ConfigA(), ConfigB(), ConfigC()} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
	}
	a := ConfigA()
	if a.QueueDepth != 128 || a.PageSize != 16<<10 || a.ReadLatency != 75*sim.Microsecond ||
		a.ProgramLatency != 300*sim.Microsecond || a.WriteCacheBytes != 256<<20 || a.CMTBytes != 2<<20 {
		t.Fatalf("SSD-A mismatch with Table II: %+v", a)
	}
	b := ConfigB()
	if b.QueueDepth != 512 || b.ReadLatency != 2*sim.Microsecond || b.ProgramLatency != 100*sim.Microsecond {
		t.Fatalf("SSD-B mismatch with Table II: %+v", b)
	}
	c := ConfigC()
	if c.QueueDepth != 512 || c.PageSize != 8<<10 || c.WriteCacheBytes != 512<<20 ||
		c.CMTBytes != 8<<20 || c.ReadLatency != 30*sim.Microsecond || c.ProgramLatency != 200*sim.Microsecond {
		t.Fatalf("SSD-C mismatch with Table II: %+v", c)
	}
}

func TestConfigDerived(t *testing.T) {
	cfg := ConfigA()
	wantPhys := int64(cfg.Dies()) * 256 * 256 * int64(16<<10)
	if cfg.PhysicalBytes() != wantPhys {
		t.Fatalf("physical %d, want %d", cfg.PhysicalBytes(), wantPhys)
	}
	if cfg.LogicalBytes() >= cfg.PhysicalBytes() {
		t.Fatal("logical must be below physical")
	}
	// 2MB CMT / 8B entries * 16KB pages = 4GB coverage.
	if cfg.CMTCoverageBytes() != 4<<30 {
		t.Fatalf("CMT coverage %d", cfg.CMTCoverageBytes())
	}
}

func TestConfigValidateErrors(t *testing.T) {
	bad := ConfigA()
	bad.PageSize = 1000
	if err := bad.Validate(); err == nil {
		t.Fatal("unaligned page size should fail")
	}
	bad = ConfigA()
	bad.OverProvision = 0.9
	if err := bad.Validate(); err == nil {
		t.Fatal("huge OP should fail")
	}
}

func TestSingleReadLatency(t *testing.T) {
	arb := nvme.NewSSQ(1, 1)
	eng, dev := testDevice(t, ConfigA(), arb)
	done := driveTrace(eng, dev, arb, &trace.Trace{Requests: []trace.Request{
		{ID: 1, Op: trace.Read, LBA: 0, Size: 4096, Arrival: 0},
	}})
	// Cold read: CMT miss (mapping read + transfer) then data read +
	// transfer: 2*(75us + ~19.5us) ≈ 189us.
	lat := done[1]
	if lat < 185*sim.Microsecond || lat > 195*sim.Microsecond {
		t.Fatalf("cold 4K read latency %v, want ~189us", lat)
	}
}

func TestWarmReadSkipsMappingFetch(t *testing.T) {
	arb := nvme.NewSSQ(1, 1)
	eng, dev := testDevice(t, ConfigA(), arb)
	done := driveTrace(eng, dev, arb, &trace.Trace{Requests: []trace.Request{
		{ID: 1, Op: trace.Read, LBA: 0, Size: 4096, Arrival: 0},
		{ID: 2, Op: trace.Read, LBA: 0, Size: 4096, Arrival: 10 * sim.Millisecond},
	}})
	warm := done[2] - 10*sim.Millisecond
	if warm < 90*sim.Microsecond || warm > 100*sim.Microsecond {
		t.Fatalf("warm 4K read latency %v, want ~94.5us", warm)
	}
	if dev.CMTHitRate() <= 0.4 {
		t.Fatalf("hit rate %v after repeat access", dev.CMTHitRate())
	}
}

func TestWriteThroughLatencyIncludesProgram(t *testing.T) {
	arb := nvme.NewSSQ(1, 1)
	eng, dev := testDevice(t, ConfigA(), arb)
	done := driveTrace(eng, dev, arb, &trace.Trace{Requests: []trace.Request{
		{ID: 1, Op: trace.Write, LBA: 0, Size: 4096, Arrival: 0},
	}})
	// Mapping miss (read+xfer) + data xfer + program ≈ 75+19.5+19.5+300.
	lat := done[1]
	if lat < 400*sim.Microsecond || lat > 425*sim.Microsecond {
		t.Fatalf("write-through 4K latency %v, want ~414us", lat)
	}
}

func TestWriteBackAcksFast(t *testing.T) {
	cfg := ConfigA()
	cfg.CacheMode = WriteBack
	arb := nvme.NewSSQ(1, 1)
	eng, dev := testDevice(t, cfg, arb)
	done := driveTrace(eng, dev, arb, &trace.Trace{Requests: []trace.Request{
		{ID: 1, Op: trace.Write, LBA: 0, Size: 4096, Arrival: 0},
	}})
	if done[1] > 5*sim.Microsecond {
		t.Fatalf("write-back ack latency %v, want ~1us", done[1])
	}
	// Background destage still reaches flash.
	var progs uint64
	for _, die := range dev.dies {
		progs += die.HostPrograms
	}
	if progs != 1 {
		t.Fatalf("programs after write-back = %d, want 1", progs)
	}
}

func TestMultiPageCommandCompletesOnce(t *testing.T) {
	arb := nvme.NewSSQ(1, 1)
	eng, dev := testDevice(t, ConfigA(), arb)
	// 44KB read spans 3 16K pages (LBA 0..45055).
	done := driveTrace(eng, dev, arb, &trace.Trace{Requests: []trace.Request{
		{ID: 7, Op: trace.Read, LBA: 0, Size: 44 << 10, Arrival: 0},
	}})
	if len(done) != 1 {
		t.Fatalf("%d completions for one command", len(done))
	}
	if dev.CompletedReads != 1 || dev.ReadBytes != 44<<10 {
		t.Fatalf("stats reads=%d bytes=%d", dev.CompletedReads, dev.ReadBytes)
	}
}

func TestQueueDepthWindowRespected(t *testing.T) {
	cfg := ConfigA()
	cfg.QueueDepth = 4
	arb := nvme.NewSSQ(1, 1)
	eng, dev := testDevice(t, cfg, arb)
	maxOut := 0
	dev.OnComplete = func(*nvme.Command) {
		if dev.Outstanding() > maxOut {
			maxOut = dev.Outstanding()
		}
	}
	for i := uint64(0); i < 64; i++ {
		arb.Submit(&nvme.Command{ID: i, Op: trace.Read, LBA: i << 20, Size: 4096})
	}
	dev.Kick()
	if dev.Outstanding() != 4 {
		t.Fatalf("outstanding after kick = %d, want QD=4", dev.Outstanding())
	}
	eng.RunUntilIdle()
	if dev.CompletedReads != 64 {
		t.Fatalf("completed %d", dev.CompletedReads)
	}
	if maxOut > 4 {
		t.Fatalf("outstanding exceeded QD: %d", maxOut)
	}
}

// mixedBacklogThroughput saturates the device with reads and writes at
// the given SSQ ratio and returns completed (reads, writes) in a window.
func mixedBacklogThroughput(t *testing.T, w int) (reads, writes uint64) {
	t.Helper()
	arb := nvme.NewSSQ(1, w)
	eng, dev := testDevice(t, ConfigA(), arb)
	// Deep pre-loaded backlog; disjoint 1MB-spaced LBAs avoid redirects.
	for i := uint64(0); i < 3000; i++ {
		arb.Submit(&nvme.Command{ID: i, Op: trace.Read, LBA: i << 20, Size: 16 << 10})
		arb.Submit(&nvme.Command{ID: 100000 + i, Op: trace.Write, LBA: (100000 + i) << 20, Size: 16 << 10})
	}
	dev.Kick()
	eng.Run(300 * sim.Millisecond)
	return dev.CompletedReads, dev.CompletedWrites
}

func TestWRRShapesDeviceThroughput(t *testing.T) {
	// w=1: read and write completion counts should be close (the Fig. 5
	// observation at weight ratio 1).
	r1, w1 := mixedBacklogThroughput(t, 1)
	ratio1 := float64(w1) / float64(r1)
	if ratio1 < 0.85 || ratio1 > 1.15 {
		t.Fatalf("w=1: W/R completion ratio %.2f (R=%d W=%d), want ~1", ratio1, r1, w1)
	}
	// w=4: writes should complete ~4x as often as reads.
	r4, w4 := mixedBacklogThroughput(t, 4)
	ratio4 := float64(w4) / float64(r4)
	if ratio4 < 3.0 || ratio4 > 5.0 {
		t.Fatalf("w=4: W/R completion ratio %.2f (R=%d W=%d), want ~4", ratio4, r4, w4)
	}
	if r4 >= r1 {
		t.Fatalf("raising w must cut read throughput: r1=%d r4=%d", r1, r4)
	}
	if w4 <= w1 {
		t.Fatalf("raising w must boost write throughput: w1=%d w4=%d", w1, w4)
	}
}

func TestCMTThrashingLowersHitRate(t *testing.T) {
	cfg := ConfigA()
	cfg.CMTBytes = 8 * 64 // only 64 mapping entries
	arb := nvme.NewSSQ(1, 1)
	eng, dev := testDevice(t, cfg, arb)
	tr, err := workload.Micro(workload.MicroConfig{
		Seed: 3, ReadCount: 2000,
		ReadInterArrival: 100 * sim.Microsecond, ReadMeanSize: 16 << 10,
		AddressSpace: 2 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	driveTrace(eng, dev, arb, tr)
	if hr := dev.CMTHitRate(); hr > 0.2 {
		t.Fatalf("tiny CMT hit rate %v, want thrashing", hr)
	}
}

func TestWriteCacheLimitsInflight(t *testing.T) {
	cfg := ConfigA()
	cfg.WriteCacheBytes = int64(cfg.PageSize) * 2 // 2 slots
	arb := nvme.NewSSQ(1, 1)
	eng, dev := testDevice(t, cfg, arb)
	for i := uint64(0); i < 100; i++ {
		arb.Submit(&nvme.Command{ID: i, Op: trace.Write, LBA: i << 20, Size: 16 << 10})
	}
	dev.Kick()
	if dev.wcache.PeakUsed > 2 {
		t.Fatalf("cache peak %d exceeds 2 slots", dev.wcache.PeakUsed)
	}
	eng.RunUntilIdle()
	if dev.CompletedWrites != 100 {
		t.Fatalf("completed %d writes", dev.CompletedWrites)
	}
	if dev.wcache.PeakUsed > 2 {
		t.Fatalf("cache peak %d exceeds 2 slots", dev.wcache.PeakUsed)
	}
}

func TestGarbageCollectionReclaimsSpace(t *testing.T) {
	// Tiny device: 1 die, 8 blocks x 8 pages = 64 pages. Overwrite a
	// 16-page working set repeatedly to force GC.
	cfg := Config{
		Name: "tiny", QueueDepth: 4,
		Channels: 1, DiesPerChannel: 1,
		BlocksPerDie: 8, PagesPerBlock: 8,
		PageSize:    16 << 10,
		GCThreshold: 0.2,
	}
	arb := nvme.NewSSQ(1, 1)
	eng, dev := testDevice(t, cfg, arb)
	tr := &trace.Trace{}
	for i := 0; i < 400; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			ID: uint64(i), Op: trace.Write,
			LBA:     uint64(i%16) * uint64(cfg.PageSize),
			Size:    cfg.PageSize,
			Arrival: sim.Time(i) * 100 * sim.Microsecond,
		})
	}
	driveTrace(eng, dev, arb, tr)
	if dev.CompletedWrites != 400 {
		t.Fatalf("completed %d writes", dev.CompletedWrites)
	}
	collections, relocations, erases := dev.GCStats()
	if collections == 0 || erases == 0 {
		t.Fatalf("GC never ran: collections=%d erases=%d", collections, erases)
	}
	_ = relocations
	die := dev.dies[0]
	if die.freePages < 0 || die.freePages > die.totalPages {
		t.Fatalf("free pages %d out of range", die.freePages)
	}
	// All 16 live LPNs must still map somewhere valid.
	if len(die.mapping) != 16 {
		t.Fatalf("mapping size %d, want 16", len(die.mapping))
	}
	for lpn, loc := range die.mapping {
		if !die.blocks[loc.block].valid[loc.page] {
			t.Fatalf("lpn %d maps to invalid page", lpn)
		}
		if die.blocks[loc.block].lpns[loc.page] != lpn {
			t.Fatalf("reverse map mismatch for lpn %d", lpn)
		}
	}
}

func TestGCAccountingInvariant(t *testing.T) {
	// Free pages + programmed pages must always equal total pages.
	cfg := Config{
		Name: "tiny2", QueueDepth: 8,
		Channels: 1, DiesPerChannel: 1,
		BlocksPerDie: 16, PagesPerBlock: 4,
		PageSize:    4096,
		GCThreshold: 0.25,
	}
	arb := nvme.NewSSQ(1, 1)
	eng, dev := testDevice(t, cfg, arb)
	tr := &trace.Trace{}
	for i := 0; i < 600; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			ID: uint64(i), Op: trace.Write,
			LBA:     uint64(i%24) * 4096,
			Size:    4096,
			Arrival: sim.Time(i) * 50 * sim.Microsecond,
		})
	}
	driveTrace(eng, dev, arb, tr)
	die := dev.dies[0]
	programmed := 0
	validTotal := 0
	for b := range die.blocks {
		programmed += die.blocks[b].writePtr
		validTotal += die.blocks[b].validCount
	}
	if programmed+die.freePages != die.totalPages {
		t.Fatalf("accounting: programmed %d + free %d != total %d", programmed, die.freePages, die.totalPages)
	}
	if validTotal != len(die.mapping) {
		t.Fatalf("valid pages %d != mapped lpns %d", validTotal, len(die.mapping))
	}
}

func TestDeterministicCompletionTimes(t *testing.T) {
	run := func() map[uint64]sim.Time {
		arb := nvme.NewSSQ(1, 2)
		eng, dev := testDevice(t, ConfigB(), arb)
		tr, err := workload.Micro(workload.MicroConfig{
			Seed: 42, ReadCount: 800, WriteCount: 800,
			ReadInterArrival: 20 * sim.Microsecond, WriteInterArrival: 20 * sim.Microsecond,
			ReadMeanSize: 16 << 10, WriteMeanSize: 16 << 10,
			AddressSpace: 1 << 30,
		})
		if err != nil {
			t.Fatal(err)
		}
		return driveTrace(eng, dev, arb, tr)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different completion counts")
	}
	for id, ta := range a {
		if b[id] != ta {
			t.Fatalf("completion time for %d differs: %v vs %v", id, ta, b[id])
		}
	}
}

func TestReadLatencyOrderingAcrossConfigs(t *testing.T) {
	// SSD-B (2us reads) must finish a read burst far sooner than SSD-A
	// (75us reads).
	elapsed := func(cfg Config) sim.Time {
		arb := nvme.NewSSQ(1, 1)
		eng, dev := testDevice(t, cfg, arb)
		tr := &trace.Trace{}
		for i := 0; i < 200; i++ {
			tr.Requests = append(tr.Requests, trace.Request{
				ID: uint64(i), Op: trace.Read, LBA: uint64(i) << 20, Size: 16 << 10,
			})
		}
		driveTrace(eng, dev, arb, tr)
		return eng.Now()
	}
	ta, tb := elapsed(ConfigA()), elapsed(ConfigB())
	if tb >= ta {
		t.Fatalf("SSD-B (%v) should beat SSD-A (%v) on reads", tb, ta)
	}
}

func TestDieUtilizationReported(t *testing.T) {
	arb := nvme.NewSSQ(1, 1)
	eng, dev := testDevice(t, ConfigA(), arb)
	for i := uint64(0); i < 100; i++ {
		arb.Submit(&nvme.Command{ID: i, Op: trace.Read, LBA: i << 20, Size: 16 << 10})
	}
	dev.Kick()
	eng.RunUntilIdle()
	utils := dev.DieUtilizations()
	var any bool
	for _, u := range utils {
		if u < 0 || u > 1 {
			t.Fatalf("utilization %v out of range", u)
		}
		if u > 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("no die reported utilization")
	}
}

func TestZeroSizeCommandPanics(t *testing.T) {
	arb := nvme.NewSSQ(1, 1)
	_, dev := testDevice(t, ConfigA(), arb)
	arb.Submit(&nvme.Command{ID: 1, Op: trace.Read, LBA: 0, Size: 0})
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size command should panic")
		}
	}()
	dev.Kick()
}

func BenchmarkDeviceMixedLoad(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		arb := nvme.NewSSQ(1, 2)
		eng := sim.NewEngine()
		dev, err := New(eng, ConfigA(), arb)
		if err != nil {
			b.Fatal(err)
		}
		for j := uint64(0); j < 2000; j++ {
			op := trace.Read
			if j%2 == 1 {
				op = trace.Write
			}
			arb.Submit(&nvme.Command{ID: j, Op: op, LBA: j << 20, Size: 16 << 10})
		}
		dev.Kick()
		eng.RunUntilIdle()
	}
}
