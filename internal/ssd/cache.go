package ssd

// lruCache is the cached mapping table (CMT): a fixed-capacity LRU set of
// logical page numbers whose mapping entries are resident in DRAM. A miss
// costs a mapping-page read on the owning die (charged by the caller).
//
// Nodes live in a pointer-free arena addressed by index: Access runs on
// every mapping lookup, so the cache must be invisible to the garbage
// collector (a pointer-linked list this size makes every GC scan walk
// the whole table).
type lruCache struct {
	capacity int
	entries  map[uint64]int32 // key -> arena index
	arena    []lruNode
	head     int32 // most recent, -1 when empty
	tail     int32 // least recent, -1 when empty

	Hits, Misses uint64
}

type lruNode struct {
	key        uint64
	prev, next int32
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{
		capacity: capacity,
		entries:  make(map[uint64]int32, capacity),
		head:     -1,
		tail:     -1,
	}
}

// Access touches key and reports whether it was resident. On a miss the
// key is inserted (evicting the LRU entry if full). At capacity — the
// steady state — the evicted node is reused for the inserted key, so a
// warm cache allocates nothing per miss.
func (c *lruCache) Access(key uint64) (hit bool) {
	if i, ok := c.entries[key]; ok {
		c.Hits++
		c.moveToFront(i)
		return true
	}
	c.Misses++
	var i int32
	if len(c.arena) >= c.capacity {
		i = c.tail
		c.unlink(i)
		delete(c.entries, c.arena[i].key)
		c.arena[i].key = key
	} else {
		i = int32(len(c.arena))
		c.arena = append(c.arena, lruNode{key: key})
	}
	c.entries[key] = i
	c.pushFront(i)
	return false
}

// Len returns the resident entry count.
func (c *lruCache) Len() int { return len(c.entries) }

// HitRate returns hits / (hits+misses), or 0 before any access.
func (c *lruCache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

func (c *lruCache) pushFront(i int32) {
	n := &c.arena[i]
	n.prev = -1
	n.next = c.head
	if c.head >= 0 {
		c.arena[c.head].prev = i
	}
	c.head = i
	if c.tail < 0 {
		c.tail = i
	}
}

func (c *lruCache) unlink(i int32) {
	n := &c.arena[i]
	if n.prev >= 0 {
		c.arena[n.prev].next = n.next
	} else {
		c.head = n.next
	}
	if n.next >= 0 {
		c.arena[n.next].prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = -1, -1
}

func (c *lruCache) moveToFront(i int32) {
	if c.head == i {
		return
	}
	c.unlink(i)
	c.pushFront(i)
}

// slotPool is a counting semaphore over DRAM write-cache slots: acquire
// runs the continuation immediately when a slot is free, otherwise queues
// it FIFO until release. Continuations are (fn, arg) pairs rather than
// closures so queueing a waiter does not allocate.
type slotPool struct {
	slots   int
	used    int
	waiters []slotWaiter
	whead   int

	// PeakUsed tracks the high-water mark for metrics.
	PeakUsed int
}

type slotWaiter struct {
	fn  func(any)
	arg any
}

func newSlotPool(slots int) *slotPool {
	if slots < 1 {
		slots = 1
	}
	return &slotPool{slots: slots}
}

// Acquire grants a slot to fn(arg) now or when one frees up.
func (p *slotPool) Acquire(fn func(any), arg any) {
	if p.used < p.slots {
		p.used++
		if p.used > p.PeakUsed {
			p.PeakUsed = p.used
		}
		fn(arg)
		return
	}
	p.waiters = append(p.waiters, slotWaiter{fn: fn, arg: arg})
}

// Release frees a slot, handing it to the oldest waiter if any.
func (p *slotPool) Release() {
	if p.whead < len(p.waiters) {
		w := p.waiters[p.whead]
		p.waiters[p.whead] = slotWaiter{}
		p.whead++
		if p.whead > 64 && p.whead*2 >= len(p.waiters) {
			p.waiters = append(p.waiters[:0], p.waiters[p.whead:]...)
			p.whead = 0
		}
		w.fn(w.arg)
		return
	}
	if p.used == 0 {
		panic("ssd: slotPool.Release without Acquire")
	}
	p.used--
}

// InUse returns occupied slots; Waiting returns queued acquisitions.
func (p *slotPool) InUse() int   { return p.used }
func (p *slotPool) Waiting() int { return len(p.waiters) - p.whead }
