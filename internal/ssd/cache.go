package ssd

// lruCache is the cached mapping table (CMT): a fixed-capacity LRU set of
// logical page numbers whose mapping entries are resident in DRAM. A miss
// costs a mapping-page read on the owning die (charged by the caller).
type lruCache struct {
	capacity int
	entries  map[uint64]*lruNode
	head     *lruNode // most recent
	tail     *lruNode // least recent

	Hits, Misses uint64
}

type lruNode struct {
	key        uint64
	prev, next *lruNode
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{capacity: capacity, entries: make(map[uint64]*lruNode, capacity)}
}

// Access touches key and reports whether it was resident. On a miss the
// key is inserted (evicting the LRU entry if full).
func (c *lruCache) Access(key uint64) (hit bool) {
	if n, ok := c.entries[key]; ok {
		c.Hits++
		c.moveToFront(n)
		return true
	}
	c.Misses++
	n := &lruNode{key: key}
	c.entries[key] = n
	c.pushFront(n)
	if len(c.entries) > c.capacity {
		evict := c.tail
		c.unlink(evict)
		delete(c.entries, evict.key)
	}
	return false
}

// Len returns the resident entry count.
func (c *lruCache) Len() int { return len(c.entries) }

// HitRate returns hits / (hits+misses), or 0 before any access.
func (c *lruCache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

func (c *lruCache) pushFront(n *lruNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *lruCache) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *lruCache) moveToFront(n *lruNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

// slotPool is a counting semaphore over DRAM write-cache slots: acquire
// runs the continuation immediately when a slot is free, otherwise queues
// it FIFO until release.
type slotPool struct {
	slots   int
	used    int
	waiters []func()

	// PeakUsed tracks the high-water mark for metrics.
	PeakUsed int
}

func newSlotPool(slots int) *slotPool {
	if slots < 1 {
		slots = 1
	}
	return &slotPool{slots: slots}
}

// Acquire grants a slot to fn now or when one frees up.
func (p *slotPool) Acquire(fn func()) {
	if p.used < p.slots {
		p.used++
		if p.used > p.PeakUsed {
			p.PeakUsed = p.used
		}
		fn()
		return
	}
	p.waiters = append(p.waiters, fn)
}

// Release frees a slot, handing it to the oldest waiter if any.
func (p *slotPool) Release() {
	if len(p.waiters) > 0 {
		fn := p.waiters[0]
		p.waiters[0] = nil
		p.waiters = p.waiters[1:]
		fn()
		return
	}
	if p.used == 0 {
		panic("ssd: slotPool.Release without Acquire")
	}
	p.used--
}

// InUse returns occupied slots; Waiting returns queued acquisitions.
func (p *slotPool) InUse() int   { return p.used }
func (p *slotPool) Waiting() int { return len(p.waiters) }
