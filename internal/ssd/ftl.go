package ssd

import "fmt"

// pageLoc addresses a physical page within one die.
type pageLoc struct {
	block int32
	page  int32
}

// blockMeta tracks one erase block's programmed pages and validity.
type blockMeta struct {
	lpns       []uint64
	valid      []bool
	validCount int
	writePtr   int
}

func (b *blockMeta) full(pagesPerBlock int) bool { return b.writePtr >= pagesPerBlock }

// die couples one flash die's timing resource with its slice of the FTL:
// page mapping, active block, free lists, and garbage collection state.
// LPNs are striped across dies (lpn mod dies), so each die owns a
// disjoint logical subspace and needs no cross-die coordination.
type die struct {
	index   int
	res     *resource
	channel *resource

	pagesPerBlock int
	blocks        []blockMeta
	freeBlocks    []int
	active        int
	freePages     int
	totalPages    int
	gcThreshold   float64

	mapping map[uint64]pageLoc

	// writeWaiters are program attempts (parked pageOps) stalled on
	// free-space exhaustion; GC releases them after each erase.
	writeWaiters []*pageOp
	gcRunning    bool

	// Stats.
	GCCollections uint64
	GCRelocations uint64
	GCErases      uint64
	HostPrograms  uint64
}

func newDie(index int, res, channel *resource, blocksPerDie, pagesPerBlock int, gcThreshold float64) *die {
	d := &die{
		index:         index,
		res:           res,
		channel:       channel,
		pagesPerBlock: pagesPerBlock,
		blocks:        make([]blockMeta, blocksPerDie),
		totalPages:    blocksPerDie * pagesPerBlock,
		freePages:     blocksPerDie * pagesPerBlock,
		gcThreshold:   gcThreshold,
		mapping:       make(map[uint64]pageLoc),
	}
	for i := range d.blocks {
		d.blocks[i].lpns = make([]uint64, pagesPerBlock)
		d.blocks[i].valid = make([]bool, pagesPerBlock)
	}
	// Block 0 starts active; the rest are free.
	d.active = 0
	for i := 1; i < blocksPerDie; i++ {
		d.freeBlocks = append(d.freeBlocks, i)
	}
	return d
}

// allocate reserves the next physical page for lpn, updating the mapping
// and invalidating any previous version. It returns false when no free
// page exists (caller must wait for GC).
func (d *die) allocate(lpn uint64) bool {
	if d.blocks[d.active].full(d.pagesPerBlock) {
		if len(d.freeBlocks) == 0 {
			return false
		}
		d.active = d.freeBlocks[len(d.freeBlocks)-1]
		d.freeBlocks = d.freeBlocks[:len(d.freeBlocks)-1]
	}
	blk := &d.blocks[d.active]
	p := blk.writePtr
	blk.writePtr++
	blk.lpns[p] = lpn
	blk.valid[p] = true
	blk.validCount++
	d.freePages--

	if old, ok := d.mapping[lpn]; ok {
		ob := &d.blocks[old.block]
		if ob.valid[old.page] {
			ob.valid[old.page] = false
			ob.validCount--
		}
	}
	d.mapping[lpn] = pageLoc{block: int32(d.active), page: int32(p)}
	return true
}

// gcNeeded reports whether free space is below the GC watermark.
func (d *die) gcNeeded() bool {
	return float64(d.freePages) < d.gcThreshold*float64(d.totalPages)
}

// pickVictim returns the full, non-active block with the fewest valid
// pages, or -1 when no block would yield free space.
func (d *die) pickVictim() int {
	best, bestValid := -1, d.pagesPerBlock
	for i := range d.blocks {
		b := &d.blocks[i]
		if i == d.active || !b.full(d.pagesPerBlock) {
			continue
		}
		if b.validCount < bestValid {
			best, bestValid = i, b.validCount
		}
	}
	if best >= 0 && bestValid >= d.pagesPerBlock {
		return -1 // relocating a fully valid block gains nothing
	}
	return best
}

// liveLPNs snapshots the still-valid logical pages of a block.
func (d *die) liveLPNs(block int) []uint64 {
	b := &d.blocks[block]
	out := make([]uint64, 0, b.validCount)
	for p := 0; p < b.writePtr; p++ {
		if b.valid[p] {
			out = append(out, b.lpns[p])
		}
	}
	return out
}

// stillIn reports whether lpn currently maps into the given block — a
// host overwrite during GC can invalidate a snapshot entry.
func (d *die) stillIn(lpn uint64, block int) bool {
	loc, ok := d.mapping[lpn]
	return ok && int(loc.block) == block
}

// finishErase recycles a block after its erase completes.
func (d *die) finishErase(block int) {
	b := &d.blocks[block]
	if b.validCount != 0 {
		panic(fmt.Sprintf("ssd: erasing block %d with %d valid pages", block, b.validCount))
	}
	d.freePages += b.writePtr
	b.writePtr = 0
	for p := range b.valid {
		b.valid[p] = false
	}
	d.freeBlocks = append(d.freeBlocks, block)
	d.GCErases++
}

// drainWaiters re-runs stalled program attempts (after GC freed space).
func (d *die) drainWaiters() {
	waiters := d.writeWaiters
	d.writeWaiters = nil
	for _, w := range waiters {
		w.step()
	}
}

// Utilization returns the physical-page occupancy fraction.
func (d *die) Utilization() float64 {
	return 1 - float64(d.freePages)/float64(d.totalPages)
}
