package ssd

import "srcsim/internal/sim"

// resource is a non-preemptive FIFO server (a die or a channel bus).
// acquire serialises work: the k-th acquisition starts when the (k-1)-th
// finishes. Because nothing is ever cancelled, the server is modelled by
// a single busy-until horizon rather than an explicit queue.
type resource struct {
	eng       *sim.Engine
	busyUntil sim.Time
	// BusyTime accumulates total service time for utilisation metrics.
	BusyTime sim.Time
}

func newResource(eng *sim.Engine) *resource { return &resource{eng: eng} }

// acquire schedules fn to run after holding the resource for dur,
// queueing behind all previously accepted work.
func (r *resource) acquire(dur sim.Time, fn func()) {
	start := r.eng.Now()
	if r.busyUntil > start {
		start = r.busyUntil
	}
	r.busyUntil = start + dur
	r.BusyTime += dur
	r.eng.Schedule(r.busyUntil, fn)
}

// acquireArg is acquire for arg-carrying continuations: the hot command
// pipeline passes its pooled page-op state here instead of allocating a
// closure per step.
func (r *resource) acquireArg(dur sim.Time, fn func(any), arg any) {
	start := r.eng.Now()
	if r.busyUntil > start {
		start = r.busyUntil
	}
	r.busyUntil = start + dur
	r.BusyTime += dur
	r.eng.ScheduleArg(r.busyUntil, fn, arg)
}

// queueDelay returns how long new work would wait before starting.
func (r *resource) queueDelay() sim.Time {
	if r.busyUntil <= r.eng.Now() {
		return 0
	}
	return r.busyUntil - r.eng.Now()
}

// utilization returns the busy fraction over elapsed simulated time.
func (r *resource) utilization() float64 {
	now := r.eng.Now()
	if now == 0 {
		return 0
	}
	return float64(r.BusyTime) / float64(now)
}
