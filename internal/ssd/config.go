// Package ssd is an MQSim-style multi-queue SSD simulator: an NVMe
// frontend that fetches commands from an nvme.Arbiter under a
// queue-depth window, a page-mapping FTL with a cached mapping table
// (CMT), a write cache, greedy garbage collection, and a backend of
// channels × dies with per-page read/program/erase latencies and bus
// transfer times.
//
// The paper evaluates three devices (Table II); Config reproduces every
// listed parameter and fills the unlisted geometry with MQSim-like
// defaults.
package ssd

import (
	"fmt"

	"srcsim/internal/sim"
)

// WriteCacheMode selects when a write command completes.
type WriteCacheMode int

const (
	// WriteThrough completes a write only after all its pages are
	// programmed to flash; the cache acts as a staging buffer bounding
	// in-flight write data. This matches the steady-state behaviour the
	// paper measures (write throughput tracks flash program bandwidth)
	// and is the default for experiments.
	WriteThrough WriteCacheMode = iota
	// WriteBack completes a write once its pages are accepted into the
	// DRAM cache; dirty pages destage in the background and writes block
	// only when the cache is full. Provided for ablations.
	WriteBack
)

// String implements fmt.Stringer.
func (m WriteCacheMode) String() string {
	switch m {
	case WriteThrough:
		return "write-through"
	case WriteBack:
		return "write-back"
	default:
		return "unknown-cache-mode"
	}
}

// Config describes one simulated SSD.
type Config struct {
	Name string

	// QueueDepth is the maximum number of fetched-but-incomplete
	// commands (Table II "Queue Depth").
	QueueDepth int

	// Geometry.
	Channels       int
	DiesPerChannel int
	BlocksPerDie   int
	PagesPerBlock  int
	PageSize       int // bytes (Table II "Page Capacity")

	// Latencies (Table II).
	ReadLatency    sim.Time // flash array read
	ProgramLatency sim.Time // flash array program ("Write Latency")
	EraseLatency   sim.Time

	// ChannelBandwidth is the per-channel bus rate in bytes/second.
	ChannelBandwidth float64

	// WriteCacheBytes is the DRAM write-cache size (Table II "Write
	// Cache"); CacheMode selects its completion semantics.
	WriteCacheBytes int64
	CacheMode       WriteCacheMode
	// DRAMLatency is the cache-insert latency for write-back acks.
	DRAMLatency sim.Time

	// CMTBytes is the cached-mapping-table size (Table II "CMT"); one
	// entry (mapEntryBytes) covers one logical page.
	CMTBytes int64

	// OverProvision is the fraction of physical capacity hidden from
	// the logical space; GCThreshold is the free-page fraction below
	// which garbage collection runs.
	OverProvision float64
	GCThreshold   float64
}

// mapEntryBytes is the size of one CMT mapping entry (LPN -> PPN).
const mapEntryBytes = 8

// defaults fills unset geometry/latency fields with MQSim-like values.
func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.Channels <= 0 {
		c.Channels = 8
	}
	if c.DiesPerChannel <= 0 {
		c.DiesPerChannel = 4
	}
	if c.BlocksPerDie <= 0 {
		c.BlocksPerDie = 256
	}
	if c.PagesPerBlock <= 0 {
		c.PagesPerBlock = 256
	}
	if c.PageSize <= 0 {
		c.PageSize = 16 << 10
	}
	if c.ReadLatency <= 0 {
		c.ReadLatency = 75 * sim.Microsecond
	}
	if c.ProgramLatency <= 0 {
		c.ProgramLatency = 300 * sim.Microsecond
	}
	if c.EraseLatency <= 0 {
		c.EraseLatency = 3 * sim.Millisecond
	}
	if c.ChannelBandwidth <= 0 {
		c.ChannelBandwidth = 800 << 20 // 800 MiB/s ONFI-like bus
	}
	if c.WriteCacheBytes <= 0 {
		c.WriteCacheBytes = 256 << 20
	}
	if c.DRAMLatency <= 0 {
		c.DRAMLatency = sim.Microsecond
	}
	if c.CMTBytes <= 0 {
		c.CMTBytes = 2 << 20
	}
	if c.OverProvision <= 0 {
		c.OverProvision = 0.07
	}
	if c.GCThreshold <= 0 {
		c.GCThreshold = 0.05
	}
	return c
}

// Validate reports configuration errors after defaulting.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.PageSize%512 != 0 {
		return fmt.Errorf("ssd: page size %d not a multiple of 512", c.PageSize)
	}
	if c.OverProvision >= 0.5 {
		return fmt.Errorf("ssd: over-provisioning %v unreasonably high", c.OverProvision)
	}
	if c.GCThreshold >= 0.5 {
		return fmt.Errorf("ssd: GC threshold %v unreasonably high", c.GCThreshold)
	}
	return nil
}

// Dies returns the total die count.
func (c Config) Dies() int { return c.Channels * c.DiesPerChannel }

// PhysicalBytes returns raw flash capacity.
func (c Config) PhysicalBytes() int64 {
	return int64(c.Dies()) * int64(c.BlocksPerDie) * int64(c.PagesPerBlock) * int64(c.PageSize)
}

// LogicalBytes returns the user-visible capacity after over-provisioning.
func (c Config) LogicalBytes() int64 {
	return int64(float64(c.PhysicalBytes()) * (1 - c.OverProvision))
}

// CMTCoverageBytes returns how much logical space the CMT can map at
// once; workloads within this footprint see few mapping misses.
func (c Config) CMTCoverageBytes() int64 {
	return c.CMTBytes / mapEntryBytes * int64(c.PageSize)
}

// ConfigA returns Table II column SSD-A: a mainstream TLC-like device.
func ConfigA() Config {
	return Config{
		Name:            "SSD-A",
		QueueDepth:      128,
		WriteCacheBytes: 256 << 20,
		CMTBytes:        2 << 20,
		PageSize:        16 << 10,
		ReadLatency:     75 * sim.Microsecond,
		ProgramLatency:  300 * sim.Microsecond,
	}.withDefaults()
}

// ConfigB returns Table II column SSD-B: a low-read-latency device
// (Z-NAND-like, 2 µs reads).
func ConfigB() Config {
	return Config{
		Name:            "SSD-B",
		QueueDepth:      512,
		WriteCacheBytes: 256 << 20,
		CMTBytes:        2 << 20,
		PageSize:        16 << 10,
		ReadLatency:     2 * sim.Microsecond,
		ProgramLatency:  100 * sim.Microsecond,
	}.withDefaults()
}

// ConfigC returns Table II column SSD-C: small pages, larger caches.
func ConfigC() Config {
	return Config{
		Name:            "SSD-C",
		QueueDepth:      512,
		WriteCacheBytes: 512 << 20,
		CMTBytes:        8 << 20,
		PageSize:        8 << 10,
		ReadLatency:     30 * sim.Microsecond,
		ProgramLatency:  200 * sim.Microsecond,
	}.withDefaults()
}
