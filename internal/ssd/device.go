package ssd

import (
	"fmt"

	"srcsim/internal/nvme"
	"srcsim/internal/obs"
	"srcsim/internal/sim"
	"srcsim/internal/trace"
)

// Device is one simulated SSD. It pulls commands from an nvme.Arbiter
// whenever a queue-depth slot is free, translates them into page-level
// flash operations, and invokes OnComplete when a command finishes.
//
// The command path mirrors MQSim's pipeline:
//
//	fetch (QD window) → address translation (CMT hit/miss) →
//	backend scheduling (die array op + channel transfer) →
//	completion (CQ entry)
//
// Writes pass through the DRAM write cache according to Config.CacheMode;
// garbage collection runs per die when free space drops below the
// watermark and steals die time from host operations.
type Device struct {
	Cfg Config

	// OnComplete, if set, is called for every finished command after
	// internal accounting. The engine clock is at the completion time.
	OnComplete func(*nvme.Command)

	// Trace, if set, records GC spans and completion-queue congestion
	// instants on the run timeline; TraceName distinguishes devices
	// (e.g. "t0/d1"). Nil-safe.
	Trace     *obs.Scope
	TraceName string

	// Gate, if set, models completion-queue backpressure: a finished
	// command is only completed when Gate.Admit accepts it; otherwise it
	// parks in a FIFO completion queue WITHOUT freeing its queue-depth
	// slot, stalling the device once the window fills — the paper's
	// Sec. II-B bottleneck, where read data stuck in the RDMA TXQ clogs
	// the shared CQ and drags write throughput down with it. Call
	// ReleaseParked when the gate may admit again.
	Gate Gate

	eng      *sim.Engine
	arb      nvme.Arbiter
	channels []*resource
	dies     []*die
	cmt      *lruCache
	wcache   *slotPool

	outstanding int
	xferTime    sim.Time
	parked      []*nvme.Command
	parkedHead  int

	// Free lists for the per-command and per-page pipeline state (see
	// pageOp); poolOn is sim.PoolingEnabled() captured at construction.
	csFree []*cmdState
	opFree []*pageOp
	poolOn bool

	// slowFactor scales die-operation latencies (fault injection); see
	// SetSlowFactor. Zero or one means nominal speed.
	slowFactor float64
	// halted freezes command fetching (a target stall); see SetHalted.
	halted bool

	// Metrics.
	CompletedReads  uint64
	CompletedWrites uint64
	ReadBytes       int64
	WriteBytes      int64
	FetchedCommands uint64
	PeakParked      int
}

// New builds a Device on the given engine, fed by arb.
func New(eng *sim.Engine, cfg Config, arb nvme.Arbiter) (*Device, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		Cfg:      cfg,
		eng:      eng,
		arb:      arb,
		cmt:      newLRUCache(int(cfg.CMTBytes / mapEntryBytes)),
		wcache:   newSlotPool(int(cfg.WriteCacheBytes / int64(cfg.PageSize))),
		xferTime: sim.Time(float64(cfg.PageSize) / cfg.ChannelBandwidth * float64(sim.Second)),
		poolOn:   sim.PoolingEnabled(),
	}
	for c := 0; c < cfg.Channels; c++ {
		ch := newResource(eng)
		d.channels = append(d.channels, ch)
		for k := 0; k < cfg.DiesPerChannel; k++ {
			res := newResource(eng)
			idx := len(d.dies)
			d.dies = append(d.dies, newDie(idx, res, ch, cfg.BlocksPerDie, cfg.PagesPerBlock, cfg.GCThreshold))
		}
	}
	return d, nil
}

// Engine returns the device's event engine.
func (d *Device) Engine() *sim.Engine { return d.eng }

// Arbiter returns the command source.
func (d *Device) Arbiter() nvme.Arbiter { return d.arb }

// Outstanding returns fetched-but-incomplete commands.
func (d *Device) Outstanding() int { return d.outstanding }

// CMTHitRate returns the mapping-cache hit rate so far.
func (d *Device) CMTHitRate() float64 { return d.cmt.HitRate() }

// WriteCacheInUse returns occupied write-cache slots.
func (d *Device) WriteCacheInUse() int { return d.wcache.InUse() }

// WriteAmplification returns (host programs + GC relocations) divided by
// host programs — the flash write-amplification factor. Returns 1 with
// no writes.
func (d *Device) WriteAmplification() float64 {
	var host, reloc uint64
	for _, die := range d.dies {
		host += die.HostPrograms
		reloc += die.GCRelocations
	}
	if host == 0 {
		return 1
	}
	return float64(host+reloc) / float64(host)
}

// GCStats sums garbage-collection activity across dies.
func (d *Device) GCStats() (collections, relocations, erases uint64) {
	for _, die := range d.dies {
		collections += die.GCCollections
		relocations += die.GCRelocations
		erases += die.GCErases
	}
	return collections, relocations, erases
}

// DieUtilizations returns per-die busy fractions.
func (d *Device) DieUtilizations() []float64 {
	out := make([]float64, len(d.dies))
	for i, die := range d.dies {
		out[i] = die.res.utilization()
	}
	return out
}

// CollectMetrics folds the device's end-of-run counters into a metrics
// registry. Counters accumulate across devices sharing the same labels
// (a flash array reports as one series set); gauges keep watermarks.
// Nil reg is a no-op.
func (d *Device) CollectMetrics(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	reg.Counter("ssd", "completed_reads", labels...).Add(float64(d.CompletedReads))
	reg.Counter("ssd", "completed_writes", labels...).Add(float64(d.CompletedWrites))
	reg.Counter("ssd", "read_bytes", labels...).Add(float64(d.ReadBytes))
	reg.Counter("ssd", "write_bytes", labels...).Add(float64(d.WriteBytes))
	reg.Counter("ssd", "fetched_commands", labels...).Add(float64(d.FetchedCommands))
	reg.Counter("ssd", "cmt_hits", labels...).Add(float64(d.cmt.Hits))
	reg.Counter("ssd", "cmt_misses", labels...).Add(float64(d.cmt.Misses))
	gcColl, gcReloc, gcErase := d.GCStats()
	reg.Counter("ssd", "gc_collections", labels...).Add(float64(gcColl))
	reg.Counter("ssd", "gc_relocations", labels...).Add(float64(gcReloc))
	reg.Counter("ssd", "gc_erases", labels...).Add(float64(gcErase))
	reg.Gauge("ssd", "write_amplification", labels...).SetMax(d.WriteAmplification())
	reg.Gauge("ssd", "cq_parked_peak", labels...).SetMax(float64(d.PeakParked))
	reg.Gauge("ssd", "write_cache_peak_slots", labels...).SetMax(float64(d.wcache.PeakUsed))
}

// Precondition simulates MQSim-style preconditioning for a workload that
// accesses the first span bytes of the logical space: the mapping
// entries of that footprint are installed in the CMT (up to its
// capacity), so steady-state runs do not pay cold mapping-read misses.
// Call before submitting traffic.
func (d *Device) Precondition(span uint64) {
	pages := span / uint64(d.Cfg.PageSize)
	limit := uint64(d.cmt.capacity)
	if pages > limit {
		pages = limit
	}
	for lpn := uint64(0); lpn < pages; lpn++ {
		d.cmt.Access(lpn)
	}
	// Preconditioning accesses are setup, not workload.
	d.cmt.Hits, d.cmt.Misses = 0, 0
}

// SetSlowFactor scales the device's die-operation latencies (read,
// program, erase) by f — the fault model's slow-die spike (retention
// retries, thermal throttling). Bus transfers are unaffected. f of 0 or
// 1 restores nominal speed; negative f panics. Operations already in
// flight keep the latency they were issued with.
func (d *Device) SetSlowFactor(f float64) {
	if f < 0 {
		panic(fmt.Sprintf("ssd: negative slow factor %g", f))
	}
	d.slowFactor = f
}

// lat applies the slow-die factor to a die-operation latency.
func (d *Device) lat(base sim.Time) sim.Time {
	if d.slowFactor > 0 && d.slowFactor != 1 {
		return sim.Time(float64(base) * d.slowFactor)
	}
	return base
}

// SetHalted freezes (true) or thaws (false) command fetching — the
// fault model's target stall. In-flight operations drain normally;
// thawing re-kicks the fetch loop.
func (d *Device) SetHalted(h bool) {
	if d.halted == h {
		return
	}
	d.halted = h
	if !h {
		d.Kick()
	}
}

// Kick pulls commands from the arbiter while queue-depth slots are free.
// Call after submitting new commands; completions re-kick automatically.
func (d *Device) Kick() {
	if d.halted {
		return
	}
	for d.outstanding < d.Cfg.QueueDepth {
		c := d.arb.Fetch()
		if c == nil {
			return
		}
		d.outstanding++
		d.FetchedCommands++
		d.process(c)
	}
}

func (d *Device) dieOf(lpn uint64) *die { return d.dies[lpn%uint64(len(d.dies))] }

// pageSpan returns the logical page numbers a command touches.
func (d *Device) pageSpan(c *nvme.Command) (first, last uint64) {
	ps := uint64(d.Cfg.PageSize)
	first = c.LBA / ps
	end := c.LBA + uint64(c.Size)
	if end == c.LBA {
		end = c.LBA + 1
	}
	last = (end - 1) / ps
	return first, last
}

// cmdState is one in-flight command's pipeline join: each page operation
// calls done() once, and the last one completes the command. Pooled.
type cmdState struct {
	d         *Device
	c         *nvme.Command
	remaining int
}

// done retires one page of the command.
func (cs *cmdState) done() {
	cs.remaining--
	if cs.remaining == 0 {
		d, c := cs.d, cs.c
		d.freeCS(cs)
		d.complete(c)
	}
}

// cmdPageDone is the arg-event trampoline for the write-back DRAM ack.
func cmdPageDone(x any) { x.(*cmdState).done() }

// pageOp is the per-page flash state machine: one pooled object carries a
// page through address translation, bus transfers, array operations, and
// the write cache, replacing what used to be a chain of per-step closure
// allocations on the hot path.
type pageOp struct {
	d   *Device
	cs  *cmdState
	die *die
	lpn uint64
	st  int8
	fin int8
}

// pageOp states: each names the pipeline stage that just finished; step()
// performs the next one.
const (
	stReadMapXfer int8 = iota // mapping array read done: bus-transfer the mapping page
	stReadData                // mapping page transferred: start the data array read
	stReadXfer                // data array read done: bus-transfer the data
	stReadDone                // data transferred: page finished
	stWriteSlot               // write-cache slot granted: ack (write-back) and destage
	stDestageXfer             // mapping array read done: bus-transfer the mapping page
	stProgXfer                // mapping ready: bus-transfer the page data to the die
	stProgAttempt             // data at the die: allocate a physical page and program
	stProgDone                // program done: GC check, then finish
)

// pageOp finish actions (write path).
const (
	finNone        int8 = iota
	finRelease          // write-back: release the cache slot (ack already sent)
	finReleaseDone      // write-through: release the slot, then retire the page
)

// pageStep is the shared arg-event trampoline for every pageOp stage.
func pageStep(x any) { x.(*pageOp).step() }

func (op *pageOp) step() {
	d := op.d
	switch op.st {
	case stReadMapXfer:
		op.st = stReadData
		op.die.channel.acquireArg(d.xferTime, pageStep, op)
	case stReadData:
		op.st = stReadXfer
		op.die.res.acquireArg(d.lat(d.Cfg.ReadLatency), pageStep, op)
	case stReadXfer:
		op.st = stReadDone
		op.die.channel.acquireArg(d.xferTime, pageStep, op)
	case stReadDone:
		cs := op.cs
		d.freeOp(op)
		cs.done()
	case stWriteSlot:
		if d.Cfg.CacheMode == WriteBack {
			// Ack once the page is in DRAM; destage in the background.
			d.eng.AfterArg(d.Cfg.DRAMLatency, cmdPageDone, op.cs)
			op.cs = nil
			op.fin = finRelease
		} else { // WriteThrough
			op.fin = finReleaseDone
		}
		if d.cmt.Access(op.lpn) {
			op.st = stProgAttempt
			op.die.channel.acquireArg(d.xferTime, pageStep, op)
		} else {
			op.st = stDestageXfer
			op.die.res.acquireArg(d.lat(d.Cfg.ReadLatency), pageStep, op)
		}
	case stDestageXfer:
		op.st = stProgXfer
		op.die.channel.acquireArg(d.xferTime, pageStep, op)
	case stProgXfer:
		op.st = stProgAttempt
		op.die.channel.acquireArg(d.xferTime, pageStep, op)
	case stProgAttempt:
		die := op.die
		if !die.allocate(op.lpn) {
			// Out of space: wait for GC to free a block.
			die.writeWaiters = append(die.writeWaiters, op)
			d.maybeGC(die)
			return
		}
		die.HostPrograms++
		op.st = stProgDone
		die.res.acquireArg(d.lat(d.Cfg.ProgramLatency), pageStep, op)
	case stProgDone:
		die, fin, cs := op.die, op.fin, op.cs
		d.freeOp(op)
		d.maybeGC(die)
		if fin != finNone {
			d.wcache.Release()
		}
		if fin == finReleaseDone {
			cs.done()
		}
	default:
		panic(fmt.Sprintf("ssd: pageOp in impossible state %d", op.st))
	}
}

func (d *Device) allocCS() *cmdState {
	if n := len(d.csFree); n > 0 {
		cs := d.csFree[n-1]
		d.csFree[n-1] = nil
		d.csFree = d.csFree[:n-1]
		return cs
	}
	return &cmdState{d: d}
}

func (d *Device) freeCS(cs *cmdState) {
	cs.c = nil
	cs.remaining = 0
	if d.poolOn {
		d.csFree = append(d.csFree, cs)
	}
}

func (d *Device) allocOp() *pageOp {
	if n := len(d.opFree); n > 0 {
		op := d.opFree[n-1]
		d.opFree[n-1] = nil
		d.opFree = d.opFree[:n-1]
		return op
	}
	return &pageOp{d: d}
}

func (d *Device) freeOp(op *pageOp) {
	op.cs, op.die, op.lpn, op.st, op.fin = nil, nil, 0, 0, finNone
	if d.poolOn {
		d.opFree = append(d.opFree, op)
	}
}

func (d *Device) process(c *nvme.Command) {
	if c.Size <= 0 {
		panic(fmt.Sprintf("ssd: command %d with size %d", c.ID, c.Size))
	}
	first, last := d.pageSpan(c)
	cs := d.allocCS()
	cs.c = c
	cs.remaining = int(last-first) + 1
	for lpn := first; lpn <= last; lpn++ {
		if c.Op == trace.Read {
			d.readPage(lpn, cs)
		} else {
			d.writePage(lpn, cs)
		}
	}
}

// Gate admits or defers command completions (see Device.Gate).
type Gate interface {
	Admit(*nvme.Command) bool
}

func (d *Device) complete(c *nvme.Command) {
	if d.Gate != nil && (d.Parked() > 0 || !d.Gate.Admit(c)) {
		// FIFO completion queue: nothing may overtake a parked entry.
		d.parked = append(d.parked, c)
		if d.Parked() > d.PeakParked {
			d.PeakParked = d.Parked()
			// Only new high-water marks are traced, bounding event volume
			// while still pinpointing when CQ congestion deepened.
			if d.Trace.Enabled() {
				d.Trace.Instant(d.eng.Now(), "ssd", "cq_park "+d.TraceName,
					obs.Num("parked", float64(d.Parked())))
			}
		}
		return
	}
	d.finish(c)
}

func (d *Device) finish(c *nvme.Command) {
	d.outstanding--
	if c.Op == trace.Read {
		d.CompletedReads++
		d.ReadBytes += int64(c.Size)
	} else {
		d.CompletedWrites++
		d.WriteBytes += int64(c.Size)
	}
	if d.OnComplete != nil {
		d.OnComplete(c)
	}
	d.Kick()
}

// Parked returns the number of finished-but-unadmitted completions.
func (d *Device) Parked() int { return len(d.parked) - d.parkedHead }

// ReleaseParked re-offers parked completions to the gate in FIFO order,
// stopping at the first one it still refuses.
func (d *Device) ReleaseParked() {
	for d.Parked() > 0 {
		head := d.parked[d.parkedHead]
		if d.Gate != nil && !d.Gate.Admit(head) {
			return
		}
		d.parked[d.parkedHead] = nil
		d.parkedHead++
		if d.parkedHead > 64 && d.parkedHead*2 >= len(d.parked) {
			d.parked = append(d.parked[:0], d.parked[d.parkedHead:]...)
			d.parkedHead = 0
		}
		d.finish(head)
	}
}

// readPage performs address translation then the array read and bus
// transfer. Reads of never-written pages behave like preconditioned
// reads (the usual MQSim setup): full array latency, no mapping change.
func (d *Device) readPage(lpn uint64, cs *cmdState) {
	op := d.allocOp()
	op.cs, op.die, op.lpn = cs, d.dieOf(lpn), lpn
	if d.cmt.Access(lpn) {
		op.st = stReadXfer
	} else {
		// CMT miss: read the mapping page from flash first.
		op.st = stReadMapXfer
	}
	op.die.res.acquireArg(d.lat(d.Cfg.ReadLatency), pageStep, op)
}

// writePage routes one page write through the write cache; the pipeline
// continues in pageOp.step from stWriteSlot once a slot is granted.
func (d *Device) writePage(lpn uint64, cs *cmdState) {
	op := d.allocOp()
	op.cs, op.die, op.lpn = cs, d.dieOf(lpn), lpn
	op.st = stWriteSlot
	d.wcache.Acquire(pageStep, op)
}

// maybeGC starts the per-die garbage-collection loop when the free-space
// watermark is crossed.
func (d *Device) maybeGC(die *die) {
	if die.gcRunning || !die.gcNeeded() {
		return
	}
	die.gcRunning = true
	d.gcStep(die)
}

func (d *Device) gcStep(die *die) {
	victim := die.pickVictim()
	if victim < 0 {
		die.gcRunning = false
		if len(die.writeWaiters) > 0 && len(die.freeBlocks) == 0 && die.blocks[die.active].full(die.pagesPerBlock) {
			// Every block is fully valid yet writes are stalled: the
			// logical space overcommits the physical space.
			panic(fmt.Sprintf("ssd: die %d wedged: writes waiting but no reclaimable space", die.index))
		}
		die.drainWaiters()
		return
	}
	die.GCCollections++
	gcStart := d.eng.Now()
	var relocated int
	live := die.liveLPNs(victim)
	var relocate func(i int)
	relocate = func(i int) {
		// Skip entries invalidated by host writes since the snapshot.
		for i < len(live) && !die.stillIn(live[i], victim) {
			i++
		}
		if i >= len(live) {
			// All live data moved: erase and recycle.
			die.res.acquire(d.lat(d.Cfg.EraseLatency), func() {
				die.finishErase(victim)
				if d.Trace.Enabled() {
					d.Trace.Span("ssd", "gc "+d.TraceName, gcStart, d.eng.Now(),
						obs.Num("die", float64(die.index)),
						obs.Num("relocations", float64(relocated)))
				}
				die.drainWaiters()
				if die.gcNeeded() {
					d.gcStep(die)
				} else {
					die.gcRunning = false
				}
			})
			return
		}
		lpn := live[i]
		if !die.allocate(lpn) {
			panic(fmt.Sprintf("ssd: die %d has no space for GC relocation", die.index))
		}
		die.GCRelocations++
		relocated++
		// Copy-back: array read + program on the same die, no bus.
		die.res.acquire(d.lat(d.Cfg.ReadLatency+d.Cfg.ProgramLatency), func() {
			relocate(i + 1)
		})
	}
	relocate(0)
}
