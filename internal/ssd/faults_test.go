package ssd

import (
	"testing"

	"srcsim/internal/nvme"
	"srcsim/internal/sim"
	"srcsim/internal/trace"
)

// readOne submits a single uncached read and returns its completion time.
func readOne(t *testing.T, cfg Config, prep func(*sim.Engine, *Device)) sim.Time {
	t.Helper()
	arb := nvme.NewSSQ(1, 1)
	eng, dev := testDevice(t, cfg, arb)
	if prep != nil {
		prep(eng, dev)
	}
	var done sim.Time
	dev.OnComplete = func(*nvme.Command) { done = eng.Now() }
	arb.Submit(&nvme.Command{ID: 1, Op: trace.Read, LBA: 0, Size: 4 << 10})
	dev.Kick()
	eng.RunUntilIdle()
	if done == 0 {
		t.Fatal("read never completed")
	}
	return done
}

// TestSlowFactorStretchesDieOps: a slow-die spike must stretch read
// latency, and restoring factor 1 must restore the baseline exactly.
func TestSlowFactorStretchesDieOps(t *testing.T) {
	cfg := ConfigA()
	base := readOne(t, cfg, nil)
	slow := readOne(t, cfg, func(_ *sim.Engine, d *Device) { d.SetSlowFactor(4) })
	restored := readOne(t, cfg, func(_ *sim.Engine, d *Device) {
		d.SetSlowFactor(4)
		d.SetSlowFactor(1)
	})

	// Die read latency is 75us of the baseline; x4 adds 3*75us = 225us.
	if slow <= base+200*sim.Microsecond {
		t.Fatalf("slow read %v not stretched vs baseline %v", slow, base)
	}
	if restored != base {
		t.Fatalf("restored read %v != baseline %v", restored, base)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("negative slow factor accepted")
		}
	}()
	arb := nvme.NewSSQ(1, 1)
	_, dev := testDevice(t, cfg, arb)
	dev.SetSlowFactor(-1)
}

// TestHaltStallsFetchUntilThawed: a halted device must fetch nothing,
// and thawing must drain the queued command.
func TestHaltStallsFetchUntilThawed(t *testing.T) {
	arb := nvme.NewSSQ(1, 1)
	eng, dev := testDevice(t, ConfigA(), arb)
	var done sim.Time
	dev.OnComplete = func(*nvme.Command) { done = eng.Now() }

	dev.SetHalted(true)
	arb.Submit(&nvme.Command{ID: 1, Op: trace.Read, LBA: 0, Size: 4 << 10})
	dev.Kick()
	eng.RunUntilIdle()
	if done != 0 || dev.FetchedCommands != 0 {
		t.Fatalf("halted device fetched: done=%v fetched=%d", done, dev.FetchedCommands)
	}

	const stall = 5 * sim.Millisecond
	eng.After(stall, func() { dev.SetHalted(false) })
	eng.RunUntilIdle()
	if done < stall {
		t.Fatalf("completion at %v, want after thaw at %v", done, stall)
	}
	if dev.FetchedCommands != 1 {
		t.Fatalf("fetched %d commands, want 1", dev.FetchedCommands)
	}
	// Redundant transitions are no-ops.
	dev.SetHalted(false)
}
