package core

import (
	"bytes"
	"math"
	"testing"

	"srcsim/internal/ml"
	"srcsim/internal/nvme"
	"srcsim/internal/sim"
	"srcsim/internal/trace"
)

func TestFeatureVectorLayout(t *testing.T) {
	us := sim.Microsecond
	tr := &trace.Trace{Requests: []trace.Request{
		{Op: trace.Read, Size: 10000, Arrival: 0},
		{Op: trace.Read, Size: 10000, Arrival: 10 * us},
		{Op: trace.Write, Size: 20000, Arrival: 5 * us},
		{Op: trace.Write, Size: 20000, Arrival: 15 * us},
	}}
	tr.Sort()
	ch := FeatureVector(trace.Extract(tr))
	if len(ch) != NumFeatures {
		t.Fatalf("feature vector length %d, want %d", len(ch), NumFeatures)
	}
	if ch[FeatReadRatio] != 0.5 {
		t.Fatalf("read ratio %v", ch[FeatReadRatio])
	}
	if ch[FeatReadMeanSize] != 10000 || ch[FeatWriteMeanSize] != 20000 {
		t.Fatalf("mean sizes %v / %v", ch[FeatReadMeanSize], ch[FeatWriteMeanSize])
	}
	if ch[FeatReadMeanIA] != float64(10*us) {
		t.Fatalf("read inter-arrival %v", ch[FeatReadMeanIA])
	}
	if ch[FeatReadFlowSpeed] <= 0 || ch[FeatWriteFlowSpeed] <= 0 {
		t.Fatal("flow speeds must be positive")
	}
	if len(FeatureNames) != NumFeatures {
		t.Fatal("FeatureNames out of sync")
	}
}

func TestMonitorWindowing(t *testing.T) {
	m := NewMonitor(10 * sim.Millisecond)
	for i := 0; i < 100; i++ {
		m.Record(trace.Request{Op: trace.Read, Size: 4096}, sim.Time(i)*sim.Millisecond)
	}
	// At t=99ms the window [89,99] holds ~11 entries.
	if c := m.Count(); c < 10 || c > 12 {
		t.Fatalf("window count %d, want ~11", c)
	}
	ch := m.Snapshot(99 * sim.Millisecond)
	if ch[FeatReadRatio] != 1 {
		t.Fatalf("read-only window ratio %v", ch[FeatReadRatio])
	}
	if ch[FeatReadMeanIA] != float64(sim.Millisecond) {
		t.Fatalf("window inter-arrival %v", ch[FeatReadMeanIA])
	}
}

func TestMonitorEmptyWindow(t *testing.T) {
	m := NewMonitor(5 * sim.Millisecond)
	m.Record(trace.Request{Op: trace.Write, Size: 4096}, 0)
	ch := m.Snapshot(sim.Second) // far past the entry
	for i, v := range ch {
		if v != 0 {
			t.Fatalf("empty window feature %d = %v", i, v)
		}
	}
	if m.Count() != 0 {
		t.Fatalf("count %d", m.Count())
	}
}

func TestMonitorDefaultWindow(t *testing.T) {
	if NewMonitor(0).Window() != 10*sim.Millisecond {
		t.Fatal("default window should be 10ms")
	}
}

// synthSamples builds training data from a known throughput law:
// tputR = S/(1+w) * 2, tputW = S*w/(1+w) * 2, with S derived from flow
// speed so the model must actually use the features.
func synthSamples(n int, seed uint64) []Sample {
	rng := sim.NewRNG(seed)
	samples := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		flow := 2e9 + rng.Float64()*8e9 // bits/s scale hidden in bytes/s feature
		w := float64(1 + rng.Intn(8))
		ch := make([]float64, NumFeatures)
		ch[FeatReadRatio] = 0.5
		ch[FeatReadMeanSize] = 30000
		ch[FeatWriteMeanSize] = 30000
		ch[FeatReadMeanIA] = 10000
		ch[FeatWriteMeanIA] = 10000
		ch[FeatReadFlowSpeed] = flow / 8
		ch[FeatWriteFlowSpeed] = flow / 8
		noise := 1 + rng.Norm(0, 0.01)
		samples = append(samples, Sample{
			Ch: ch, W: w,
			TputR: 2 * flow / (1 + w) * noise,
			TputW: 2 * flow * w / (1 + w) * noise,
		})
	}
	return samples
}

func TestTPMTrainPredict(t *testing.T) {
	train := synthSamples(2000, 1)
	test := synthSamples(400, 2)
	tpm := NewTPM()
	if err := tpm.Train(train); err != nil {
		t.Fatal(err)
	}
	if !tpm.Trained() {
		t.Fatal("Trained() false after Train")
	}
	// The default forest uses Breiman d/3 feature subsampling; on this
	// synthetic set (9 of 12 inputs are dead features) that costs a few
	// points of R² versus all-feature splits, so the bar is 0.75.
	if acc := tpm.Accuracy(test); acc < 0.75 {
		t.Fatalf("TPM accuracy %v, want > 0.75", acc)
	}
	// Monotonicity: predicted read throughput decreases in w.
	ch := test[0].Ch
	r1, w1 := tpm.Predict(ch, 1)
	r4, w4 := tpm.Predict(ch, 4)
	if r4 >= r1 {
		t.Fatalf("read prediction should fall with w: %v -> %v", r1, r4)
	}
	if w4 <= w1 {
		t.Fatalf("write prediction should rise with w: %v -> %v", w1, w4)
	}
}

func TestTPMErrors(t *testing.T) {
	tpm := NewTPM()
	if err := tpm.Train(nil); err == nil {
		t.Fatal("empty training set should error")
	}
	bad := synthSamples(10, 3)
	bad[5].Ch = bad[5].Ch[:3]
	if err := tpm.Train(bad); err == nil {
		t.Fatal("ragged features should error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Predict before Train should panic")
		}
	}()
	tpm.Predict(make([]float64, NumFeatures), 1)
}

func TestTPMFeatureImportanceHighlightsFlowSpeed(t *testing.T) {
	// In the synthetic law, throughput scales with flow speed; the
	// forest should put dominant weight on the flow-speed features (the
	// paper reports 0.39 for arrival flow speed).
	tpm := NewTPM()
	if err := tpm.Train(synthSamples(2000, 4)); err != nil {
		t.Fatal(err)
	}
	names, weights, ok := tpm.FeatureImportances()
	if !ok {
		t.Fatal("forest importances unavailable")
	}
	if len(names) != NumFeatures+1 {
		t.Fatalf("names length %d", len(names))
	}
	var flowWeight, total float64
	for i, n := range names {
		total += weights[i]
		if n == "read_flow_speed" || n == "write_flow_speed" {
			flowWeight += weights[i]
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("importances sum %v", total)
	}
	if flowWeight < 0.3 {
		t.Fatalf("flow-speed importance %v, want dominant (paper: 0.39)", flowWeight)
	}
}

func TestTPMCustomRegressor(t *testing.T) {
	tpm := &TPM{NewRegressor: func() ml.Regressor { return &ml.LinearRegression{} }}
	if err := tpm.Train(synthSamples(500, 5)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := tpm.FeatureImportances(); ok {
		t.Fatal("linear TPM should not report forest importances")
	}
}

// fakeReg lets controller tests pin the exact prediction law.
type fakeReg struct {
	fn func(x []float64) float64
}

func (f *fakeReg) Fit([][]float64, []float64) error { return nil }
func (f *fakeReg) Predict(x []float64) float64      { return f.fn(x) }
func (f *fakeReg) Name() string                     { return "fake" }

// lawTPM builds a trained TPM where tputR(w) = 20e9/(1+w) exactly.
func lawTPM(t *testing.T) *TPM {
	t.Helper()
	n := 0
	tpm := &TPM{NewRegressor: func() ml.Regressor {
		n++
		read := n == 1
		return &fakeReg{fn: func(x []float64) float64 {
			w := x[len(x)-1]
			if read {
				return 20e9 / (1 + w)
			}
			return 20e9 * w / (1 + w)
		}}
	}}
	if err := tpm.Train(synthSamples(10, 6)); err != nil {
		t.Fatal(err)
	}
	return tpm
}

func TestPredictWeightRatioSearch(t *testing.T) {
	tpm := lawTPM(t)
	ssq := nvme.NewSSQ(1, 1)
	c := NewController(ControllerConfig{Tau: 0.01, MaxW: 64}, tpm, ssq)
	ch := make([]float64, NumFeatures)
	// tputR(1)=10e9 > 5e9 demanded; law hits exactly 5e9 at w=3.
	if w := c.PredictWeightRatio(5e9, ch); w != 3 {
		t.Fatalf("PredictWeightRatio(5G) = %d, want 3", w)
	}
	// Demand 2e9: 20/(1+w)=2 -> w=9.
	if w := c.PredictWeightRatio(2e9, ch); w != 9 {
		t.Fatalf("PredictWeightRatio(2G) = %d, want 9", w)
	}
	// Already below demand at w=1: return 1 (Alg. 1 lines 15-17).
	if w := c.PredictWeightRatio(15e9, ch); w != 1 {
		t.Fatalf("PredictWeightRatio(15G) = %d, want 1", w)
	}
}

func TestPredictWeightRatioConvergenceStopsSearch(t *testing.T) {
	// With a large tau the search should stop early (convergence
	// criterion), yielding a smaller w than the exact optimum.
	tpm := lawTPM(t)
	c := NewController(ControllerConfig{Tau: 0.5, MaxW: 64}, tpm, nvme.NewSSQ(1, 1))
	ch := make([]float64, NumFeatures)
	w := c.PredictWeightRatio(0.5e9, ch)
	if w >= 39 {
		t.Fatalf("tau=0.5 should stop the search early, got w=%d", w)
	}
}

func TestPredictWeightRatioRespectsMaxW(t *testing.T) {
	tpm := lawTPM(t)
	c := NewController(ControllerConfig{Tau: 1e-9, MaxW: 8}, tpm, nvme.NewSSQ(1, 1))
	ch := make([]float64, NumFeatures)
	if w := c.PredictWeightRatio(1, ch); w > 8 {
		t.Fatalf("w=%d exceeds MaxW", w)
	}
}

func TestOnRateEventAppliesWeights(t *testing.T) {
	tpm := lawTPM(t)
	ssq := nvme.NewSSQ(1, 1)
	c := NewController(ControllerConfig{Tau: 0.01, MaxW: 64}, tpm, ssq)
	for i := 0; i < 100; i++ {
		c.Monitor.Record(trace.Request{Op: trace.Read, Size: 30000}, sim.Time(i)*100*sim.Microsecond)
	}
	c.OnRateEvent(10*sim.Millisecond, 5e9)
	if got := ssq.WeightRatio(); got != 3 {
		t.Fatalf("SSQ ratio %v after pause event, want 3", got)
	}
	if len(c.Events) != 1 || c.Events[0].WeightRatio != 3 || c.Events[0].DemandedBps != 5e9 {
		t.Fatalf("event log %+v", c.Events)
	}
	// Retrieval event: rate back up -> smaller w.
	c.OnRateEvent(20*sim.Millisecond, 15e9)
	if got := ssq.WeightRatio(); got != 1 {
		t.Fatalf("SSQ ratio %v after retrieval event, want 1", got)
	}
}

func TestOnRateEventRateLimiting(t *testing.T) {
	tpm := lawTPM(t)
	ssq := nvme.NewSSQ(1, 1)
	c := NewController(ControllerConfig{Tau: 0.01, MaxW: 64, MinEventGap: sim.Millisecond, RateEpsilon: 0.05}, tpm, ssq)
	c.OnRateEvent(0, 5e9)
	// Too soon: ignored.
	c.OnRateEvent(100*sim.Microsecond, 2e9)
	if len(c.Events) != 1 {
		t.Fatalf("event within MinEventGap not suppressed: %d events", len(c.Events))
	}
	// Later but nearly identical demand: ignored.
	c.OnRateEvent(5*sim.Millisecond, 5.1e9)
	if len(c.Events) != 1 {
		t.Fatalf("negligible demand change not suppressed: %d events", len(c.Events))
	}
	// Later and materially different: applied.
	c.OnRateEvent(10*sim.Millisecond, 2e9)
	if len(c.Events) != 2 {
		t.Fatalf("real event suppressed: %d events", len(c.Events))
	}
}

func TestControllerDefaults(t *testing.T) {
	c := NewController(ControllerConfig{}, NewTPM(), nvme.NewSSQ(1, 1))
	if c.Cfg.Window != 10*sim.Millisecond || c.Cfg.Tau != 0.10 || c.Cfg.MaxW != 32 {
		t.Fatalf("defaults %+v", c.Cfg)
	}
	if c.CurrentWeightRatio() != 1 {
		t.Fatalf("initial ratio %v", c.CurrentWeightRatio())
	}
}

func BenchmarkMonitorSnapshot(b *testing.B) {
	m := NewMonitor(10 * sim.Millisecond)
	for i := 0; i < 5000; i++ {
		m.Record(trace.Request{Op: trace.Read, Size: 4096}, sim.Time(i)*2*sim.Microsecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Snapshot(10 * sim.Millisecond)
	}
}

func BenchmarkPredictWeightRatio(b *testing.B) {
	tpm := NewTPM()
	if err := tpm.Train(synthSamples(1000, 7)); err != nil {
		b.Fatal(err)
	}
	c := NewController(ControllerConfig{}, tpm, nvme.NewSSQ(1, 1))
	ch := synthSamples(1, 8)[0].Ch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.PredictWeightRatio(3e9, ch)
	}
}

// Property: PredictWeightRatio is antitone in the demanded rate — a
// tighter demand never selects a smaller weight ratio (Alg. 1 searches a
// monotone-decreasing predicted read curve).
func TestPropertyPredictWeightRatioAntitone(t *testing.T) {
	tpm := lawTPM(t)
	c := NewController(ControllerConfig{Tau: 0.01, MaxW: 64}, tpm, nvme.NewSSQ(1, 1))
	ch := make([]float64, NumFeatures)
	prevW := 0
	for _, demandG := range []float64{15, 10, 8, 6, 5, 4, 3, 2, 1, 0.5} {
		w := c.PredictWeightRatio(demandG*1e9, ch)
		if w < prevW {
			t.Fatalf("demand %vG chose w=%d below previous w=%d", demandG, w, prevW)
		}
		prevW = w
	}
}

func TestSSQGroupFansOut(t *testing.T) {
	g := SSQGroup{nvme.NewSSQ(1, 1), nvme.NewSSQ(1, 1)}
	g.SetWeights(1, 7)
	for i, s := range g {
		if s.WeightRatio() != 7 {
			t.Fatalf("member %d ratio %v", i, s.WeightRatio())
		}
	}
	if g.WeightRatio() != 7 {
		t.Fatalf("group ratio %v", g.WeightRatio())
	}
	if (SSQGroup{}).WeightRatio() != 1 {
		t.Fatal("empty group ratio should default to 1")
	}
}

func TestTPMSaveLoadRoundTrip(t *testing.T) {
	tpm := NewTPM()
	if err := tpm.Train(synthSamples(600, 51)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tpm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTPM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Trained() {
		t.Fatal("loaded TPM not trained")
	}
	ch := synthSamples(1, 52)[0].Ch
	for w := 1; w <= 8; w++ {
		r0, w0 := tpm.Predict(ch, float64(w))
		r1, w1 := back.Predict(ch, float64(w))
		if r0 != r1 || w0 != w1 {
			t.Fatalf("w=%d predictions changed after round trip", w)
		}
	}
}

func TestTPMSaveErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTPM().Save(&buf); err == nil {
		t.Fatal("Save before Train should error")
	}
	linTPM := &TPM{NewRegressor: func() ml.Regressor { return &ml.LinearRegression{} }}
	if err := linTPM.Train(synthSamples(200, 53)); err != nil {
		t.Fatal(err)
	}
	if err := linTPM.Save(&buf); err == nil {
		t.Fatal("non-forest TPM save should error")
	}
	if _, err := LoadTPM(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("junk load should error")
	}
}
