package core

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"srcsim/internal/ml"
)

// Sample is one TPM training observation: a workload characterisation, a
// weight ratio, and the measured steady-state throughputs (bits/s).
type Sample struct {
	Ch    []float64
	W     float64
	TputR float64
	TputW float64
	// Group optionally labels the sample's source workload class for
	// grouped cross-validation (Table III).
	Group int
}

// TPM is the throughput prediction model of Eq. 1:
//
//	TPUT_{R,W} = F(Ch, w)
//
// implemented as two single-output regressions (reads and writes) over
// the concatenated input [Ch..., w]. The regressor factory defaults to
// the paper's choice, random forest (Table I).
type TPM struct {
	// NewRegressor constructs the estimator used for each output. When
	// nil, a 100-tree random forest is used.
	NewRegressor func() ml.Regressor

	regR, regW ml.Regressor
	trained    bool
}

// NewTPM returns an untrained TPM with the default (random forest)
// regressor.
func NewTPM() *TPM { return &TPM{} }

// inputVector concatenates Ch and w.
func inputVector(ch []float64, w float64) []float64 {
	x := make([]float64, len(ch)+1)
	copy(x, ch)
	x[len(ch)] = w
	return x
}

// Train fits the model on samples.
func (t *TPM) Train(samples []Sample) error {
	if len(samples) == 0 {
		return errors.New("core: TPM.Train with no samples")
	}
	d := len(samples[0].Ch)
	X := make([][]float64, len(samples))
	yR := make([]float64, len(samples))
	yW := make([]float64, len(samples))
	for i, s := range samples {
		if len(s.Ch) != d {
			return fmt.Errorf("core: sample %d has %d features, want %d", i, len(s.Ch), d)
		}
		X[i] = inputVector(s.Ch, s.W)
		yR[i] = s.TputR
		yW[i] = s.TputW
	}
	factory := t.NewRegressor
	if factory == nil {
		// The paper's model: a random forest with classic Breiman
		// feature subsampling (d/3 of the 12 inputs per split), which
		// also spreads split credit across the correlated workload
		// features the way the paper's importance analysis reports.
		factory = func() ml.Regressor {
			return &ml.RandomForestRegressor{Trees: 100, MaxFeatures: (NumFeatures + 1) / 3, Seed: 1}
		}
	}
	t.regR, t.regW = factory(), factory()
	if err := t.regR.Fit(X, yR); err != nil {
		return fmt.Errorf("core: TPM read model: %w", err)
	}
	if err := t.regW.Fit(X, yW); err != nil {
		return fmt.Errorf("core: TPM write model: %w", err)
	}
	t.trained = true
	return nil
}

// Trained reports whether Train has succeeded.
func (t *TPM) Trained() bool { return t.trained }

// Predict returns the predicted read and write throughput (bits/s) for a
// workload characterisation and weight ratio.
func (t *TPM) Predict(ch []float64, w float64) (tputR, tputW float64) {
	if !t.trained {
		panic("core: TPM.Predict before Train")
	}
	x := inputVector(ch, w)
	return t.regR.Predict(x), t.regW.Predict(x)
}

// Accuracy evaluates R² of both outputs on held-out samples and returns
// their mean — the paper's Table I/III "accuracy" metric.
func (t *TPM) Accuracy(samples []Sample) float64 {
	if !t.trained {
		panic("core: TPM.Accuracy before Train")
	}
	yR := make([]float64, len(samples))
	yW := make([]float64, len(samples))
	pR := make([]float64, len(samples))
	pW := make([]float64, len(samples))
	for i, s := range samples {
		yR[i], yW[i] = s.TputR, s.TputW
		pR[i], pW[i] = t.Predict(s.Ch, s.W)
	}
	return (ml.R2(yR, pR) + ml.R2(yW, pW)) / 2
}

// tpmFile is the persisted form: magic + feature count guard the layout.
type tpmFile struct {
	Magic    string
	Features int
	Read     *ml.RandomForestRegressor
	Write    *ml.RandomForestRegressor
}

// tpmMagic identifies srcsim TPM files.
const tpmMagic = "srcsim-tpm-v1"

// Save persists a trained TPM (random-forest models only) so CLIs can
// skip retraining: a header followed by the read and write forests.
func (t *TPM) Save(w io.Writer) error {
	if !t.trained {
		return errors.New("core: TPM.Save before Train")
	}
	fr, okR := t.regR.(*ml.RandomForestRegressor)
	fw, okW := t.regW.(*ml.RandomForestRegressor)
	if !okR || !okW {
		return fmt.Errorf("core: TPM.Save supports random-forest models, have %s", t.regR.Name())
	}
	file := tpmFile{Magic: tpmMagic, Features: NumFeatures, Read: fr, Write: fw}
	if err := gob.NewEncoder(w).Encode(file); err != nil {
		return fmt.Errorf("core: TPM encode: %w", err)
	}
	return nil
}

// ErrBadTPMFile is wrapped by every LoadTPM failure, so callers can
// distinguish a corrupt/truncated/mismatched model file (recoverable:
// retrain or fall back) from I/O plumbing errors with errors.Is.
var ErrBadTPMFile = errors.New("core: bad TPM file")

// LoadTPM restores a TPM written by Save. Corrupt, truncated, or
// dimension-mismatched input returns an error wrapping ErrBadTPMFile —
// never a panic or a zero-value model (the forest decoder validates
// tree structure, so a loaded model is always safe to Predict with).
func LoadTPM(r io.Reader) (*TPM, error) {
	var file tpmFile
	if err := gob.NewDecoder(r).Decode(&file); err != nil {
		return nil, fmt.Errorf("%w: decode: %w", ErrBadTPMFile, err)
	}
	if file.Magic != tpmMagic {
		return nil, fmt.Errorf("%w: not a TPM file (magic %q)", ErrBadTPMFile, file.Magic)
	}
	if file.Features != NumFeatures {
		return nil, fmt.Errorf("%w: has %d features, this build expects %d", ErrBadTPMFile, file.Features, NumFeatures)
	}
	if file.Read == nil || file.Write == nil {
		return nil, fmt.Errorf("%w: missing models", ErrBadTPMFile)
	}
	// The models must accept this build's input vector [Ch..., w]; a
	// dimension mismatch would otherwise panic on the first Predict.
	if d := NumFeatures + 1; file.Read.Dim() != d || file.Write.Dim() != d {
		return nil, fmt.Errorf("%w: model dimensions (%d, %d), want %d",
			ErrBadTPMFile, file.Read.Dim(), file.Write.Dim(), d)
	}
	return &TPM{regR: file.Read, regW: file.Write, trained: true}, nil
}

// FeatureImportances returns the Breiman importance of each input
// averaged across the two output models, labelled by FeatureNames plus
// "weight_ratio". Only available when the underlying regressors are
// random forests.
func (t *TPM) FeatureImportances() (names []string, weights []float64, ok bool) {
	fr, okR := t.regR.(*ml.RandomForestRegressor)
	fw, okW := t.regW.(*ml.RandomForestRegressor)
	if !okR || !okW {
		return nil, nil, false
	}
	ir, iw := fr.FeatureImportances(), fw.FeatureImportances()
	weights = make([]float64, len(ir))
	var total float64
	for i := range ir {
		weights[i] = (ir[i] + iw[i]) / 2
		total += weights[i]
	}
	if total > 0 {
		for i := range weights {
			weights[i] /= total
		}
	}
	names = append([]string{}, FeatureNames[:]...)
	names = append(names, "weight_ratio")
	return names, weights, true
}
