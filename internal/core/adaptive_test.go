package core

// Ladder property tests (ISSUE 7 satellite 3): under an adversarial
// drive — telemetry that goes silent in stretches, measured throughput
// that swings wildly against the model — the ladder must stay a
// consistent state chain and must never ascend faster than DwellTime
// after the previous transition. Descents are deliberately exempt: they
// are safety reactions and apply immediately.

import (
	"testing"

	"srcsim/internal/nvme"
	"srcsim/internal/sim"
	"srcsim/internal/trace"
)

// adversarialLadderConfig is a deliberately twitchy tuning: tiny error
// ring, hair-trigger thresholds, short dwell. Retraining is disabled by
// an unreachable MinRetrainSamples so the test isolates ladder motion.
func adversarialLadderConfig() ControllerConfig {
	return ControllerConfig{
		Tau: 0.01, MaxW: 64,
		StaleAfter: 400 * sim.Microsecond,
		Adaptive: AdaptiveConfig{
			Enabled:           true,
			ObserveEvery:      100 * sim.Microsecond,
			WindowSamples:     32,
			MinRetrainSamples: 1 << 30,
			ErrWindow:         3,
			ErrDegrade:        0.30,
			ErrHard:           0.50,
			ErrHealthy:        0.20,
			DwellTime:         650 * sim.Microsecond,
			RecoverAfter:      2,
		},
	}
}

// driveAdversarial runs steps observation intervals against a
// controller, with an LCG deciding per step whether telemetry flows,
// how far measured throughput lands from the model, and whether a rate
// event fires. Silent stretches are long enough to trip StaleAfter.
func driveAdversarial(c *Controller, steps int) {
	const q = 100 * sim.Microsecond
	x := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		x = x*6364136223846793005 + 1442695040888963407
		return x >> 33
	}
	silent := 0
	for i := 1; i <= steps; i++ {
		at := sim.Time(i) * q
		r := next()
		if silent > 0 {
			silent--
		} else if r%11 == 0 {
			silent = 6 // ~600 µs of silence: trips the 400 µs watchdog
		} else {
			for j := 0; j < 3; j++ {
				c.Monitor.Record(trace.Request{Op: trace.Read, Size: 30000}, at)
				c.Monitor.Record(trace.Request{Op: trace.Write, Size: 20000}, at)
			}
		}
		measured := float64(2+r%19) * 1e9 // 2..20 Gb/s, swinging
		c.Observe(at, measured, measured/3)
		if r%3 == 0 {
			c.OnRateEvent(at, float64(1+r%15)*1e9)
		}
	}
}

// TestLadderDwellProperty: every ascent is at least DwellTime after the
// previous transition, the transition log is a consistent chain, and
// the adversarial drive genuinely exercises the whole ladder (so the
// property is not vacuously true).
func TestLadderDwellProperty(t *testing.T) {
	cfg := adversarialLadderConfig()
	c := NewController(cfg, lawTPM(t), nvme.NewSSQ(1, 1))
	driveAdversarial(c, 600)

	steps := c.Ladder()
	if len(steps) < 6 {
		t.Fatalf("adversarial drive produced only %d transitions; drive is too tame to test the property", len(steps))
	}
	visited := map[LadderState]bool{}
	ascents := 0
	state := LadderPredictive
	var lastAt sim.Time
	for i, tr := range steps {
		if tr.From != state {
			t.Fatalf("transition %d: From=%v, but ladder was %v", i, tr.From, state)
		}
		if tr.To == tr.From {
			t.Fatalf("transition %d: self-loop %v", i, tr.To)
		}
		if tr.At < lastAt {
			t.Fatalf("transition %d: time went backwards (%v after %v)", i, tr.At, lastAt)
		}
		if tr.To < tr.From { // ascent
			ascents++
			if i == 0 {
				t.Fatalf("first transition is an ascent from the top rung: %+v", tr)
			}
			if gap := tr.At - lastAt; gap < cfg.Adaptive.DwellTime {
				t.Fatalf("transition %d: ascent %v->%v only %v after previous transition (dwell %v)",
					i, tr.From, tr.To, gap, cfg.Adaptive.DwellTime)
			}
		}
		state = tr.To
		lastAt = tr.At
		visited[tr.To] = true
	}
	if ascents == 0 {
		t.Fatal("no ascents recorded; the dwell property was never exercised")
	}
	if !visited[LadderStatic] || !visited[LadderModelFree] {
		t.Fatalf("drive never reached the lower rungs (visited %v)", visited)
	}
}

// TestLadderFreeze: after FreezeAdaptation the ladder must not move and
// observations must not accumulate, no matter how adversarial the
// input.
func TestLadderFreeze(t *testing.T) {
	c := NewController(adversarialLadderConfig(), lawTPM(t), nvme.NewSSQ(1, 1))
	driveAdversarial(c, 300)
	n := len(c.Ladder())
	c.FreezeAdaptation()
	driveAdversarial(c, 300)
	if got := len(c.Ladder()); got != n {
		t.Fatalf("ladder moved after freeze: %d -> %d transitions", n, got)
	}
}

// TestObserveWithoutAdaptive: Observe on a non-adaptive controller is a
// no-op, and the ladder accessors report the top rung.
func TestObserveWithoutAdaptive(t *testing.T) {
	c := NewController(ControllerConfig{Tau: 0.01, MaxW: 64}, lawTPM(t), nvme.NewSSQ(1, 1))
	c.Observe(sim.Millisecond, 5e9, 2e9)
	if c.Adaptive() || c.LadderState() != LadderPredictive || c.Ladder() != nil {
		t.Fatalf("non-adaptive controller leaked adaptive state: %v %v %v",
			c.Adaptive(), c.LadderState(), c.Ladder())
	}
	r, p, j := c.AdaptStats()
	if r != 0 || p != 0 || j != 0 {
		t.Fatalf("non-adaptive controller reported retrain stats %d/%d/%d", r, p, j)
	}
}
