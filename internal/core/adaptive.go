package core

// Adaptive SRC: a resilience state machine layered over the controller.
// The paper trains the TPM offline and assumes the device stays in its
// trained regime and telemetry stays fresh; this file handles the runs
// where neither holds. Two mechanisms:
//
//   - In-run retraining. The controller accumulates (Ch, w) → measured
//     throughput samples into a SampleWindow and periodically refits a
//     small random forest on the sim clock. The candidate is promoted
//     only if its windowed accuracy beats the incumbent by PromoteMargin
//     (hysteresis — a noisy tie never thrashes the model), with typed
//     obs events for train/promote/reject.
//
//   - A degradation ladder, Predictive → Retraining → ModelFree →
//     Static. Windowed prediction error drives the upper rungs;
//     telemetry staleness (the PR 2 machinery) drops straight to
//     Static. ModelFree is an AIMD weight controller in the shape of a
//     classic rate controller (cap + multiplicative backoff): the read
//     share rises additively toward the demanded rate while healthy and
//     is cut multiplicatively on congestion pressure. Descents are
//     immediate (they are safety reactions); ascents require both
//     sustained healthy windows and a DwellTime gap, so the ladder can
//     never oscillate faster than the dwell.
//
// Everything runs on the simulation clock off deterministic inputs
// (forest fitting is internally parallel but a pure function of the
// samples and seed), so adaptive runs stay byte-reproducible.

import (
	"bytes"
	"math"

	"srcsim/internal/ml"
	"srcsim/internal/obs"
	"srcsim/internal/sim"
	"srcsim/internal/sweep/cache"
)

// LadderState names one rung of the adaptive degradation ladder, best
// (fully predictive) first.
type LadderState int

const (
	// LadderPredictive: the trained TPM drives weight decisions (Alg. 1)
	// and its windowed prediction error is trusted.
	LadderPredictive LadderState = iota
	// LadderRetraining: prediction error crossed ErrDegrade; the
	// incumbent TPM still drives decisions while retraining works to
	// produce a better model.
	LadderRetraining
	// LadderModelFree: the model is not trustworthy (error crossed
	// ErrHard or retraining kept rejecting); an AIMD controller adjusts
	// weights from observed signals alone. Retraining continues in the
	// background so a promoted model can win the rung back.
	LadderModelFree
	// LadderStatic: telemetry is stale — even AIMD's observations
	// describe traffic that no longer exists — so the conservative
	// static FallbackWeight is pinned until commands flow again.
	LadderStatic
)

// String implements fmt.Stringer.
func (s LadderState) String() string {
	switch s {
	case LadderPredictive:
		return "Predictive"
	case LadderRetraining:
		return "Retraining"
	case LadderModelFree:
		return "ModelFree"
	case LadderStatic:
		return "Static"
	default:
		return "unknown-ladder-state"
	}
}

// LadderTransition records one ladder move for the run ledger.
type LadderTransition struct {
	At     sim.Time
	From   LadderState
	To     LadderState
	Reason string
}

// AdaptiveConfig arms and tunes adaptive SRC. The zero value disables
// adaptation entirely and preserves the controller's pre-adaptive
// behaviour byte for byte.
type AdaptiveConfig struct {
	// Enabled arms the ladder and in-run retraining.
	Enabled bool

	// ObserveEvery is the cadence of measured-throughput observations
	// fed by the cluster (default 1 ms).
	ObserveEvery sim.Time
	// WindowSamples caps the sliding training window (default 128).
	WindowSamples int

	// MinRetrainSamples gates the first retrain (default 24).
	MinRetrainSamples int
	// RetrainEvery is the minimum sim-time gap between retrains
	// (default 10 ms).
	RetrainEvery sim.Time
	// RetrainTrees sizes the in-run forest — smaller than the offline
	// 100-tree model so refits stay cheap (default 20).
	RetrainTrees int
	// PromoteMargin is the accuracy hysteresis: a candidate must beat
	// the incumbent's windowed accuracy by this much (default 0.02).
	PromoteMargin float64
	// MaxRejects demotes Retraining → ModelFree after this many
	// consecutive rejected candidates (default 4).
	MaxRejects int

	// ErrWindow is the number of observations in the calibration ring
	// (default 6); transitions fire on the ring's aggregate error —
	// |Σpred − Σmeas| / max(Σpred, Σmeas) — once it has filled. The ring
	// resets on every descent, so consecutive descents are at least a
	// ring-fill apart; ascents keep it (the model being judged did not
	// change), and a promotion rebuilds it by replaying the recent
	// sample tail through the promoted model.
	ErrWindow int
	// ErrDegrade demotes Predictive → Retraining (default 0.35).
	ErrDegrade float64
	// ErrHard demotes Retraining → ModelFree (default 0.60).
	ErrHard float64
	// ErrHealthy is the aggregate-error ceiling for an observation to
	// count toward recovery (default 0.25).
	ErrHealthy float64

	// DwellTime is the minimum gap after any transition before an
	// ascent may fire (default 3 ms) — the anti-oscillation hysteresis.
	DwellTime sim.Time
	// RecoverAfter is the consecutive healthy observations required
	// before ascending one rung (default 4).
	RecoverAfter int

	// AIMDStep is ModelFree's additive decrease of the write weight per
	// healthy rate event — the read share rises toward demand (default 1).
	AIMDStep float64
	// AIMDBackoff is ModelFree's multiplicative raise of the write
	// weight on congestion pressure — consecutive pressure events
	// compound exponentially, capped at ControllerConfig.MaxW
	// (default 1.5).
	AIMDBackoff float64

	// Cache, when non-nil, warm-starts retraining: candidate models are
	// content-addressed by their window samples, so a re-run (or a
	// resumed sweep) loads instead of refitting. Loading is
	// byte-equivalent to training — the key covers every input — so the
	// cache never changes results.
	Cache *cache.Cache
}

// withDefaults fills unset fields.
func (a AdaptiveConfig) withDefaults() AdaptiveConfig {
	if a.ObserveEvery <= 0 {
		a.ObserveEvery = sim.Millisecond
	}
	if a.WindowSamples <= 0 {
		a.WindowSamples = 128
	}
	if a.MinRetrainSamples <= 0 {
		a.MinRetrainSamples = 24
	}
	if a.RetrainEvery <= 0 {
		a.RetrainEvery = 10 * sim.Millisecond
	}
	if a.RetrainTrees <= 0 {
		a.RetrainTrees = 20
	}
	if a.PromoteMargin <= 0 {
		a.PromoteMargin = 0.02
	}
	if a.MaxRejects <= 0 {
		a.MaxRejects = 4
	}
	if a.ErrWindow <= 0 {
		a.ErrWindow = 6
	}
	if a.ErrDegrade <= 0 {
		a.ErrDegrade = 0.35
	}
	if a.ErrHard <= 0 {
		a.ErrHard = 0.60
	}
	if a.ErrHealthy <= 0 {
		a.ErrHealthy = 0.25
	}
	if a.DwellTime <= 0 {
		a.DwellTime = 3 * sim.Millisecond
	}
	if a.RecoverAfter <= 0 {
		a.RecoverAfter = 4
	}
	if a.AIMDStep <= 0 {
		a.AIMDStep = 1
	}
	if a.AIMDBackoff <= 1 {
		a.AIMDBackoff = 1.5
	}
	return a
}

// adaptiveTrainEpoch versions the in-run retraining pipeline for cache
// keys (bump on any change to the candidate hyperparameters or the
// sample layout).
const adaptiveTrainEpoch = 1

// adaptiveState is the controller's ladder + retraining state; nil when
// adaptation is disabled.
type adaptiveState struct {
	cfg AdaptiveConfig

	state          LadderState
	ladder         []LadderTransition
	lastTransition sim.Time

	window  *SampleWindow
	errs    *errRing
	healthy int // consecutive healthy observations toward an ascent

	lastRetrain sim.Time
	haveRetrain bool
	rejects     int // consecutive rejected candidates (Retraining rung)

	aimdW    float64
	pressure int // consecutive pressure events (exponential backoff depth)
	// AIMD adjusts at most once per ObserveEvery quantum (DCQCN rate
	// events fire at RTT scale — reacting to each one would thrash the
	// weight several times inside one measured interval, corrupting
	// both the control and the shadow scoring that decides recovery).
	lastAimd       sim.Time
	lastAimdDemand float64
	haveAimd       bool

	// frozen stops all ladder motion and retraining once the cluster
	// reports the workload fully accounted (see FreezeAdaptation).
	frozen bool

	retrains, promotions, rejections uint64
}

// newAdaptiveState builds ladder state from a resolved config.
func newAdaptiveState(cfg AdaptiveConfig) *adaptiveState {
	return &adaptiveState{
		cfg:    cfg,
		state:  LadderPredictive,
		window: NewSampleWindow(cfg.WindowSamples),
		errs:   newErrRing(cfg.ErrWindow),
		aimdW:  1,
	}
}

// Adaptive reports whether the adaptive ladder is armed.
func (c *Controller) Adaptive() bool { return c.adaptive != nil }

// LadderState returns the current rung (LadderPredictive when
// adaptation is disabled).
func (c *Controller) LadderState() LadderState {
	if c.adaptive == nil {
		return LadderPredictive
	}
	return c.adaptive.state
}

// Ladder returns the transition ledger (nil when adaptation is
// disabled or nothing ever transitioned). The slice is shared; do not
// mutate it.
func (c *Controller) Ladder() []LadderTransition {
	if c.adaptive == nil {
		return nil
	}
	return c.adaptive.ladder
}

// AdaptStats returns the retraining counters.
func (c *Controller) AdaptStats() (retrains, promotions, rejections uint64) {
	if c.adaptive == nil {
		return 0, 0, 0
	}
	return c.adaptive.retrains, c.adaptive.promotions, c.adaptive.rejections
}

// FreezeAdaptation stops ladder transitions, observation intake, and
// retraining. The cluster calls it once every submitted request is
// accounted: during the post-workload drain telemetry goes legitimately
// silent and throughput trickles toward zero, signals that describe the
// end of the workload rather than the system's health — feeding them to
// the ladder would thrash it against phantom degradation. The rung in
// force keeps steering whatever late traffic remains.
func (c *Controller) FreezeAdaptation() {
	if c.adaptive != nil {
		c.adaptive.frozen = true
	}
}

// telemetryStale reports whether the monitor has gone silent past
// StaleAfter (always false when the watchdog is disarmed).
func (c *Controller) telemetryStale(at sim.Time) bool {
	if c.Cfg.StaleAfter <= 0 {
		return false
	}
	last, ok := c.Monitor.LastRecordAt()
	return !ok || at-last > c.Cfg.StaleAfter
}

// Observe feeds one measured-throughput interval (bits/s over the last
// ObserveEvery, at array scale) into the adaptive machinery: it appends
// a training sample, scores the incumbent model's shadow prediction at
// the applied weight, drives ladder transitions, and retrains when due.
// A no-op when adaptation is disabled.
func (c *Controller) Observe(at sim.Time, readBps, writeBps float64) {
	a := c.adaptive
	if a == nil || a.frozen {
		return
	}
	if c.telemetryStale(at) {
		c.ladderTo(at, LadderStatic, "telemetry-stale")
		return
	}
	if a.state == LadderStatic {
		// Telemetry is fresh again: count healthy intervals toward the
		// ascent back to ModelFree. The feature window may still be
		// sparse, so nothing is sampled from this rung.
		a.healthy++
		if a.healthy >= a.cfg.RecoverAfter {
			c.ladderTo(at, LadderModelFree, "telemetry-fresh")
		}
		return
	}
	if readBps <= 0 && writeBps <= 0 {
		return // idle interval: nothing measured, nothing to learn
	}
	ch := c.Monitor.Snapshot(at)
	live := false
	for _, v := range ch {
		if v != 0 {
			live = true
			break
		}
	}
	if !live {
		return // empty feature window: the sample would be garbage
	}
	w := c.SSQ.WeightRatio()
	scale := c.Cfg.Scale
	measuredR, measuredW := readBps/scale, writeBps/scale
	a.window.Push(Sample{Ch: ch, W: w, TputR: measuredR, TputW: measuredW})

	// Shadow prediction at the applied weight: in Predictive/Retraining
	// this is (approximately) the decision the TPM just made; in
	// ModelFree it asks whether the incumbent model has become
	// trustworthy again. The ring aggregates over ErrWindow intervals
	// so bursty arrival noise cancels and only persistent calibration
	// bias moves the ladder.
	predR, _ := c.TPM.Predict(ch, w)
	if predR < 0 {
		predR = 0
	}
	a.errs.Push(predR, measuredR)
	full := a.errs.Full()
	aggErr := a.errs.AggErr()

	// While the ring is refilling (a descent reset it) there is no
	// verdict either way, so the healthy streak is left alone rather
	// than zeroed — an unfilled ring must not wipe ascent progress.
	switch a.state {
	case LadderPredictive:
		if full && aggErr >= a.cfg.ErrDegrade {
			c.ladderTo(at, LadderRetraining, "prediction-error")
		}
	case LadderRetraining:
		if full && aggErr >= a.cfg.ErrHard {
			c.ladderTo(at, LadderModelFree, "prediction-error-hard")
		} else if full && aggErr <= a.cfg.ErrHealthy {
			a.healthy++
			if a.healthy >= a.cfg.RecoverAfter {
				c.ladderTo(at, LadderPredictive, "healthy")
			}
		} else if full {
			a.healthy = 0
		}
	case LadderModelFree:
		if full && aggErr <= a.cfg.ErrHealthy {
			a.healthy++
			if a.healthy >= a.cfg.RecoverAfter {
				c.ladderTo(at, LadderRetraining, "model-trustworthy")
			}
		} else if full {
			a.healthy = 0
		}
	}

	// Periodic retraining runs on every rung but Static — in ModelFree
	// a promoted candidate is how the model wins its rung back after a
	// lasting regime change.
	due := !a.haveRetrain || at-a.lastRetrain >= a.cfg.RetrainEvery
	if due && a.window.Len() >= a.cfg.MinRetrainSamples {
		c.retrainNow(at)
	}
}

// ladderTo moves the ladder to rung to. Descents apply immediately
// (they are safety reactions); ascents are refused until DwellTime has
// passed since the last transition, which bounds oscillation.
func (c *Controller) ladderTo(at sim.Time, to LadderState, reason string) {
	a := c.adaptive
	if a.frozen || a.state == to {
		return
	}
	if to < a.state && at-a.lastTransition < a.cfg.DwellTime {
		return // ascent inside the dwell window: hold the rung
	}
	from := a.state
	a.state = to
	a.lastTransition = at
	a.healthy = 0
	a.rejects = 0
	a.pressure = 0
	if to > from {
		// A descent judges the lower rung on fresh evidence — and spaces
		// consecutive descents at least a ring-fill apart. Ascents keep
		// the ring: the model it scores did not change, and the full ring
		// of healthy verdicts that earned this rung is exactly the
		// evidence the next rung starts from.
		a.errs.Reset()
	}
	a.ladder = append(a.ladder, LadderTransition{At: at, From: from, To: to, Reason: reason})

	switch to {
	case LadderStatic:
		c.degraded = true
		w := c.Cfg.FallbackWeight
		c.SSQ.SetWeights(1, w)
		c.Events = append(c.Events, AdjustEvent{
			At: at, DemandedBps: c.lastDemand, WeightRatio: w, Degraded: true,
		})
	case LadderModelFree:
		c.degraded = false
		// Seed AIMD from the weight in force so the hand-off is smooth.
		a.aimdW = c.SSQ.WeightRatio()
		if a.aimdW < 1 {
			a.aimdW = 1
		}
		a.haveAimd = false
	default:
		c.degraded = false
	}
	if o := c.obs; o != nil {
		o.ladderMoves.Inc()
		o.ladderState.Set(float64(to))
		o.sc.Instant(at, "core", "ladder "+o.name+" "+from.String()+">"+to.String()+" ("+reason+")",
			obs.Num("from", float64(from)),
			obs.Num("to", float64(to)))
	}
}

// adaptiveRateEvent dispatches a (non-suppressed) congestion event by
// ladder rung. Predictive and Retraining keep the paper's Alg. 1 TPM
// path; ModelFree runs AIMD; Static holds the fallback weight.
func (c *Controller) adaptiveRateEvent(at sim.Time, demandedBps float64) {
	a := c.adaptive
	if c.telemetryStale(at) {
		c.ladderTo(at, LadderStatic, "telemetry-stale")
		return
	}
	switch a.state {
	case LadderStatic:
		// The fallback weight is pinned by the transition; ascents are
		// driven by Observe, which watches telemetry freshness.
		return
	case LadderModelFree:
		c.aimdAdjust(at, demandedBps)
	default:
		c.tpmAdjust(at, demandedBps)
	}
}

// aimdAdjust is the ModelFree weight controller: a congestion pressure
// event (DCQCN demanding less than at the previous adjustment — its
// reaction to ECN/CNP feedback) cuts the read share multiplicatively by
// raising the write weight, compounding over consecutive pressure
// events; a healthy event lowers the write weight additively so the
// read share climbs back toward demand. Capped at MaxW, floor at fair
// round-robin. Adjustments are paced to one per ObserveEvery quantum —
// rate events arrive at RTT scale, and reacting to each would thrash
// the weight several times inside one measured interval.
func (c *Controller) aimdAdjust(at sim.Time, demandedBps float64) {
	a := c.adaptive
	if a.haveAimd && at-a.lastAimd < a.cfg.ObserveEvery {
		return // hold inside the quantum
	}
	pressure := a.haveAimd && demandedBps < a.lastAimdDemand
	a.lastAimd, a.lastAimdDemand, a.haveAimd = at, demandedBps, true
	if pressure {
		a.pressure++
		a.aimdW *= a.cfg.AIMDBackoff
		if maxW := float64(c.Cfg.MaxW); a.aimdW > maxW {
			a.aimdW = maxW
		}
	} else {
		a.pressure = 0
		a.aimdW -= a.cfg.AIMDStep
		if a.aimdW < 1 {
			a.aimdW = 1
		}
	}
	w := int(math.Round(a.aimdW))
	if w < 1 {
		w = 1
	}
	c.SSQ.SetWeights(1, w)
	c.Events = append(c.Events, AdjustEvent{
		At: at, DemandedBps: demandedBps, WeightRatio: w, Degraded: true,
	})
	if o := c.obs; o != nil {
		o.adjustments.Inc()
		o.weightRatio.Set(float64(w))
		o.sc.Instant(at, "core", "aimd "+o.name,
			obs.Num("w", float64(w)),
			obs.Num("demanded_gbps", demandedBps/1e9),
			obs.Num("pressure_run", float64(a.pressure)))
		o.sc.Counter(at, "core", "weight_ratio "+o.name, float64(w))
	}
}

// retrainNow fits a candidate model on the sliding window and promotes
// it only if its windowed accuracy beats the incumbent by
// PromoteMargin. With a cache armed, candidates are content-addressed
// by (epoch, hyperparameters, samples) for warm starts.
func (c *Controller) retrainNow(at sim.Time) {
	a := c.adaptive
	a.lastRetrain = at
	a.haveRetrain = true
	a.retrains++
	samples := a.window.Samples()

	trees := a.cfg.RetrainTrees
	cand := &TPM{NewRegressor: func() ml.Regressor {
		return &ml.RandomForestRegressor{Trees: trees, MaxFeatures: (NumFeatures + 1) / 3, Seed: 1}
	}}
	var key string
	loaded := false
	if a.cfg.Cache != nil {
		key = cache.Key("adaptive-tpm", adaptiveTrainEpoch, NumFeatures, trees, samples)
		if b, ok := a.cfg.Cache.Get(key); ok {
			if m, err := LoadTPM(bytes.NewReader(b)); err == nil {
				cand = m
				loaded = true
			}
		}
	}
	if !loaded {
		if err := cand.Train(samples); err != nil {
			// Degenerate window: count a rejection and move on.
			c.noteReject(at)
			return
		}
		if a.cfg.Cache != nil {
			a.cfg.Cache.Put(key, cand.Save) //nolint:errcheck // cache is advisory
		}
	}
	if o := c.obs; o != nil {
		o.retrains.Inc()
		o.sc.Instant(at, "core", "retrain "+o.name,
			obs.Num("window_samples", float64(len(samples))))
	}

	candAcc := cand.Accuracy(samples)
	incAcc := c.TPM.Accuracy(samples)
	if candAcc > incAcc+a.cfg.PromoteMargin {
		c.TPM = cand
		a.promotions++
		a.rejects = 0
		// The ring scored the retired model; rebuild it by replaying the
		// recent sample tail through the promoted one. An empty ring
		// would cost a full refill before any verdict — racing the next
		// retrain — when the evidence to judge the new model is already
		// in the window.
		a.errs.Reset()
		tail := samples
		if len(tail) > a.cfg.ErrWindow {
			tail = tail[len(tail)-a.cfg.ErrWindow:]
		}
		for _, s := range tail {
			p, _ := cand.Predict(s.Ch, s.W)
			if p < 0 {
				p = 0
			}
			a.errs.Push(p, s.TputR)
		}
		if o := c.obs; o != nil {
			o.promotions.Inc()
			o.sc.Instant(at, "core", "promote "+o.name,
				obs.Num("candidate_acc", candAcc),
				obs.Num("incumbent_acc", incAcc))
		}
		return
	}
	c.noteReject(at)
	if o := c.obs; o != nil {
		o.sc.Instant(at, "core", "reject "+o.name,
			obs.Num("candidate_acc", candAcc),
			obs.Num("incumbent_acc", incAcc))
	}
}

// noteReject counts a rejected candidate and demotes Retraining →
// ModelFree after MaxRejects consecutive rejections.
func (c *Controller) noteReject(at sim.Time) {
	a := c.adaptive
	a.rejections++
	if o := c.obs; o != nil {
		o.rejections.Inc()
	}
	if a.state == LadderRetraining {
		a.rejects++
		if a.rejects >= a.cfg.MaxRejects {
			c.ladderTo(at, LadderModelFree, "retrain-rejected")
		}
	}
}
