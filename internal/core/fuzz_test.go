package core

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"srcsim/internal/ml"
)

// tinyTrainedTPM fits a deliberately small forest (2 trees, 8 samples)
// so fuzz seeds stay compact while exercising the full Save format.
func tinyTrainedTPM(tb testing.TB) *TPM {
	tb.Helper()
	tpm := &TPM{NewRegressor: func() ml.Regressor {
		return &ml.RandomForestRegressor{Trees: 2, MaxFeatures: 4, Seed: 1}
	}}
	samples := make([]Sample, 0, 8)
	for i := 0; i < 8; i++ {
		ch := make([]float64, NumFeatures)
		for j := range ch {
			ch[j] = float64((i*NumFeatures+j)%7) + 0.5
		}
		samples = append(samples, Sample{
			Ch: ch, W: float64(1 + i%4),
			TputR: 1e9 + float64(i)*1e8,
			TputW: 5e8 + float64(i)*1e7,
		})
	}
	if err := tpm.Train(samples); err != nil {
		tb.Fatal(err)
	}
	return tpm
}

// FuzzLoadTPM: LoadTPM must never panic or hand back an unusable model.
// Every rejection must wrap ErrBadTPMFile; every accepted model must
// Predict finite values (the decoder validates tree structure — child
// indexes strictly preorder, split features inside the dimension,
// finite thresholds/leaves — so nothing corrupt survives to Predict).
func FuzzLoadTPM(f *testing.F) {
	var buf bytes.Buffer
	if err := tinyTrainedTPM(f).Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(append([]byte(nil), valid...))
	f.Add(valid[:len(valid)/2]) // truncated mid-forest
	f.Add(valid[:8])            // truncated inside the gob header
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))
	flip := append([]byte(nil), valid...)
	flip[len(flip)/3] ^= 0xff // single corrupt byte
	f.Add(flip)
	smear := append([]byte(nil), valid...)
	for i := range smear {
		if i%7 == 0 {
			smear[i] ^= 0x55
		}
	}
	f.Add(smear)

	f.Fuzz(func(t *testing.T, data []byte) {
		tpm, err := LoadTPM(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadTPMFile) {
				t.Fatalf("LoadTPM error does not wrap ErrBadTPMFile: %v", err)
			}
			return
		}
		if !tpm.Trained() {
			t.Fatal("LoadTPM returned an untrained model without error")
		}
		ch := make([]float64, NumFeatures)
		for i := range ch {
			ch[i] = 1
		}
		for _, w := range []float64{1, 2, 32} {
			r, wr := tpm.Predict(ch, w)
			if math.IsNaN(r) || math.IsInf(r, 0) || math.IsNaN(wr) || math.IsInf(wr, 0) {
				t.Fatalf("accepted model predicts non-finite (%v, %v) at w=%v", r, wr, w)
			}
		}
	})
}

// TestLoadTPMRejectsCorrupt pins the typed-error contract without
// needing the fuzzer: truncations, garbage, and a dimension-mismatched
// forest all return ErrBadTPMFile (no panics, no zero-value models).
func TestLoadTPMRejectsCorrupt(t *testing.T) {
	var buf bytes.Buffer
	if err := tinyTrainedTPM(t).Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"garbage":   []byte("garbage garbage garbage"),
		"truncated": valid[:len(valid)-10],
		"header":    valid[:6],
	}
	for name, data := range cases {
		if _, err := LoadTPM(bytes.NewReader(data)); !errors.Is(err, ErrBadTPMFile) {
			t.Errorf("%s: want ErrBadTPMFile, got %v", name, err)
		}
	}

	// Round trip still works and predicts identically.
	re, err := LoadTPM(bytes.NewReader(valid))
	if err != nil {
		t.Fatal(err)
	}
	orig := tinyTrainedTPM(t)
	ch := make([]float64, NumFeatures)
	for i := range ch {
		ch[i] = 2
	}
	or, ow := orig.Predict(ch, 3)
	rr, rw := re.Predict(ch, 3)
	if or != rr || ow != rw {
		t.Fatalf("round-trip prediction drift: (%v,%v) vs (%v,%v)", or, ow, rr, rw)
	}
}
