// Package core implements the paper's contribution: Storage-side Rate
// Control (SRC). It contains the three pieces of Sec. III wired together:
//
//   - Monitor — the workload monitor that profiles the request stream in
//     a sliding prediction window and extracts the feature vector Ch;
//   - TPM — the throughput prediction model, a regression (random forest
//     by default, per Table I) mapping (Ch, w) to read and write
//     throughput;
//   - Controller — Algorithm 1, which reacts to congestion events
//     (pause/retrieval rate notifications from DCQCN) by choosing the
//     SSQ weight ratio whose predicted read throughput is closest to the
//     demanded data sending rate.
package core

import (
	"srcsim/internal/sim"
	"srcsim/internal/trace"
)

// Feature indexes into the Ch vector. The order is fixed: training
// samples and prediction inputs must agree.
const (
	FeatReadRatio = iota
	FeatReadMeanSize
	FeatReadSizeSCV
	FeatReadMeanIA
	FeatReadIASCV
	FeatReadFlowSpeed
	FeatWriteMeanSize
	FeatWriteSizeSCV
	FeatWriteMeanIA
	FeatWriteIASCV
	FeatWriteFlowSpeed
	NumFeatures
)

// FeatureNames labels the Ch vector entries for reporting (feature
// importance, debugging).
var FeatureNames = [NumFeatures]string{
	"read_ratio",
	"read_mean_size",
	"read_size_scv",
	"read_mean_interarrival",
	"read_interarrival_scv",
	"read_flow_speed",
	"write_mean_size",
	"write_size_scv",
	"write_mean_interarrival",
	"write_interarrival_scv",
	"write_flow_speed",
}

// FeatureVector flattens trace statistics into the Ch vector of Eq. 1:
// the read/write ratio, per-direction size and inter-arrival statistics
// (mean and SCV), and per-direction arrival flow speed (bytes/s).
func FeatureVector(s trace.Stats) []float64 {
	return []float64{
		s.ReadRatio,
		s.Read.MeanSize,
		s.Read.SizeSCV,
		s.Read.MeanInterArrival,
		s.Read.InterArrivalSCV,
		s.Read.FlowSpeed,
		s.Write.MeanSize,
		s.Write.SizeSCV,
		s.Write.MeanInterArrival,
		s.Write.InterArrivalSCV,
		s.Write.FlowSpeed,
	}
}

// Monitor is the workload monitor of Fig. 6: it records arriving
// commands and characterises the most recent prediction window.
type Monitor struct {
	window  sim.Time
	maxKeep int

	reqs []trace.Request // time-ordered arrivals
	head int

	lastRecordAt sim.Time
	haveRecord   bool
}

// NewMonitor returns a monitor with the given prediction window (the
// paper uses ~10 ms).
func NewMonitor(window sim.Time) *Monitor {
	if window <= 0 {
		window = 10 * sim.Millisecond
	}
	return &Monitor{window: window, maxKeep: 1 << 20}
}

// Window returns the configured prediction window.
func (m *Monitor) Window() sim.Time { return m.window }

// Record notes one arriving request at time at.
func (m *Monitor) Record(req trace.Request, at sim.Time) {
	req.Arrival = at
	m.lastRecordAt = at
	m.haveRecord = true
	m.reqs = append(m.reqs, req)
	m.prune(at)
}

// LastRecordAt returns the arrival time of the most recent Record call,
// and whether any record has been seen — the controller's telemetry
// liveness signal.
func (m *Monitor) LastRecordAt() (sim.Time, bool) {
	return m.lastRecordAt, m.haveRecord
}

// prune drops entries older than the window (lazily, amortised O(1)).
func (m *Monitor) prune(now sim.Time) {
	cutoff := now - m.window
	for m.head < len(m.reqs) && m.reqs[m.head].Arrival < cutoff {
		m.head++
	}
	if m.head > 4096 && m.head*2 >= len(m.reqs) {
		m.reqs = append(m.reqs[:0], m.reqs[m.head:]...)
		m.head = 0
	}
}

// Count returns the number of requests currently inside the window.
func (m *Monitor) Count() int { return len(m.reqs) - m.head }

// Snapshot extracts the feature vector for the window ending at now
// ([now-δ, now], Alg. 1 line 5). With no traffic in the window it
// returns the zero vector.
func (m *Monitor) Snapshot(now sim.Time) []float64 {
	m.prune(now)
	live := m.reqs[m.head:]
	if len(live) == 0 {
		return make([]float64, NumFeatures)
	}
	tr := &trace.Trace{Requests: live}
	return FeatureVector(trace.Extract(tr))
}
