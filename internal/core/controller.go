package core

import (
	"math"

	"srcsim/internal/nvme"
	"srcsim/internal/obs"
	"srcsim/internal/obs/timeseries"
	"srcsim/internal/sim"
)

// ControllerConfig tunes the SRC dynamic adjustment (Alg. 1).
type ControllerConfig struct {
	// Window is the prediction window δ (default 10 ms).
	Window sim.Time
	// Tau is the convergence threshold on relative read-throughput
	// change between successive weight ratios (default 0.10).
	Tau float64
	// MaxW bounds the weight-ratio search (default 32).
	MaxW int
	// MinEventGap rate-limits adjustments: congestion notifications
	// arriving closer than this reuse the previous decision (default
	// 1 ms; DCQCN emits rate changes far faster than the SSD's
	// throughput moves, so reacting to each one just thrashes weights).
	MinEventGap sim.Time
	// RateEpsilon suppresses reactions to negligible demanded-rate
	// changes, as a fraction of the previous demand (default 0.05).
	RateEpsilon float64
	// Scale multiplies TPM predictions before comparison with the
	// demanded rate; set it to the number of identical SSD instances
	// when the target runs a flash array and the TPM was trained on a
	// single device (default 1).
	Scale float64
	// StaleAfter, when positive, arms the stale-telemetry watchdog: if a
	// congestion event arrives and the monitor has seen no command for
	// longer than StaleAfter, the controller stops trusting the TPM (its
	// feature window describes traffic that no longer exists) and falls
	// back to the conservative static FallbackWeight until telemetry
	// resumes. Zero (the default) disables degradation and preserves
	// pre-fault behaviour exactly.
	StaleAfter sim.Time
	// FallbackWeight is the static read:write weight ratio applied while
	// degraded (default 1 — the fair round-robin baseline).
	FallbackWeight int
	// Adaptive arms online adaptation (in-run TPM retraining plus the
	// Predictive→Retraining→ModelFree→Static degradation ladder; see
	// adaptive.go). The zero value keeps the controller byte-identical
	// to its pre-adaptive behaviour.
	Adaptive AdaptiveConfig
}

// withDefaults fills unset fields.
func (c ControllerConfig) withDefaults() ControllerConfig {
	if c.Window <= 0 {
		c.Window = 10 * sim.Millisecond
	}
	if c.Tau <= 0 {
		c.Tau = 0.10
	}
	if c.MaxW <= 0 {
		c.MaxW = 32
	}
	if c.MinEventGap <= 0 {
		c.MinEventGap = sim.Millisecond
	}
	if c.RateEpsilon <= 0 {
		c.RateEpsilon = 0.05
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.FallbackWeight <= 0 {
		c.FallbackWeight = 1
	}
	if c.Adaptive.Enabled {
		c.Adaptive = c.Adaptive.withDefaults()
	}
	return c
}

// AdjustEvent records one applied weight adjustment for analysis
// (Fig. 9's vertical dashed lines).
type AdjustEvent struct {
	At           sim.Time
	DemandedBps  float64
	WeightRatio  int
	PredictedRBp float64 // predicted read throughput at the chosen w
	// Degraded marks a fallback decision: the stale-telemetry watchdog
	// applied the static FallbackWeight instead of a TPM prediction.
	Degraded bool
}

// WeightSink is where the controller applies its decisions: a single
// SSQ, or an SSQGroup spanning a target's flash array.
type WeightSink interface {
	SetWeights(read, write int)
	WeightRatio() float64
}

// SSQGroup fans weight updates out to every SSQ of a flash array.
type SSQGroup []*nvme.SSQ

// SetWeights implements WeightSink.
func (g SSQGroup) SetWeights(read, write int) {
	for _, s := range g {
		s.SetWeights(read, write)
	}
}

// WeightRatio implements WeightSink (all members share one ratio).
func (g SSQGroup) WeightRatio() float64 {
	if len(g) == 0 {
		return 1
	}
	return g[0].WeightRatio()
}

// Controller is the SRC decision loop: it owns the monitor, consults the
// TPM, and adjusts the SSQ weights on congestion events.
type Controller struct {
	Cfg     ControllerConfig
	TPM     *TPM
	Monitor *Monitor
	SSQ     WeightSink

	// Events logs every applied adjustment.
	Events []AdjustEvent

	lastEventAt sim.Time
	lastDemand  float64
	haveEvent   bool
	degraded    bool

	// adaptive holds the degradation ladder and in-run retraining state;
	// nil unless Cfg.Adaptive.Enabled (see adaptive.go).
	adaptive *adaptiveState

	obs *ctlObs
}

// ctlObs holds observability handles resolved by Instrument; nil when
// observability is off.
type ctlObs struct {
	sc             *obs.Scope
	name           string
	rateEvents     *obs.Counter
	suppressed     *obs.Counter
	adjustments    *obs.Counter
	predictions    *obs.Counter
	weightRatio    *obs.Gauge
	degradedEnters *obs.Counter
	recoveries     *obs.Counter
	degraded       *obs.Gauge

	// Adaptive-only handles (nil unless the ladder is armed — keeping
	// non-adaptive metric snapshots byte-identical to earlier builds).
	ladderMoves *obs.Counter
	ladderState *obs.Gauge
	retrains    *obs.Counter
	promotions  *obs.Counter
	rejections  *obs.Counter
}

// Instrument attaches a metrics registry and/or trace scope to the
// controller (either may be nil). name distinguishes controllers when a
// cluster runs several targets; it prefixes trace track names.
func (c *Controller) Instrument(reg *obs.Registry, sc *obs.Scope, name string, labels ...obs.Label) {
	if reg == nil && !sc.Enabled() {
		return
	}
	c.obs = &ctlObs{
		sc:             sc,
		name:           name,
		rateEvents:     reg.Counter("core", "rate_events", labels...),
		suppressed:     reg.Counter("core", "rate_events_suppressed", labels...),
		adjustments:    reg.Counter("core", "adjustments", labels...),
		predictions:    reg.Counter("core", "tpm_predictions", labels...),
		weightRatio:    reg.Gauge("core", "weight_ratio_last", labels...),
		degradedEnters: reg.Counter("core", "degraded_entries", labels...),
		recoveries:     reg.Counter("core", "recoveries", labels...),
		degraded:       reg.Gauge("core", "degraded", labels...),
	}
	if c.adaptive != nil {
		c.obs.ladderMoves = reg.Counter("core", "ladder_transitions", labels...)
		c.obs.ladderState = reg.Gauge("core", "ladder_state", labels...)
		c.obs.retrains = reg.Counter("core", "retrains", labels...)
		c.obs.promotions = reg.Counter("core", "retrain_promotions", labels...)
		c.obs.rejections = reg.Counter("core", "retrain_rejections", labels...)
	}
}

// NewController wires a controller around a trained TPM and a target's
// SSQ (or SSQGroup for arrays).
func NewController(cfg ControllerConfig, tpm *TPM, ssq WeightSink) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{
		Cfg:     cfg,
		TPM:     tpm,
		Monitor: NewMonitor(cfg.Window),
		SSQ:     ssq,
	}
	if cfg.Adaptive.Enabled {
		c.adaptive = newAdaptiveState(cfg.Adaptive)
	}
	return c
}

// PredictWeightRatio implements the paper's Alg. 1 "PredictWeightRatio":
// search w ≥ 1 for the predicted read throughput closest to the demanded
// data sending rate r (bits/s), stopping when predictions converge
// (relative change < Tau) or MaxW is reached.
func (c *Controller) PredictWeightRatio(rBps float64, ch []float64) int {
	w := 1
	best := 1
	tputR, _ := c.predict(ch, float64(w))
	tputR *= c.Cfg.Scale
	if tputR < rBps {
		return 1
	}
	minDis := math.Abs(tputR - rBps)
	preTput := tputR
	for {
		w++
		if w > c.Cfg.MaxW {
			break
		}
		tputR, _ = c.predict(ch, float64(w))
		tputR *= c.Cfg.Scale
		if dis := math.Abs(tputR - rBps); dis < minDis {
			minDis = dis
			best = w
		}
		curTput := tputR
		if preTput > 0 && math.Abs(preTput-curTput)/preTput < c.Cfg.Tau {
			break
		}
		preTput = curTput
	}
	return best
}

// predict wraps TPM.Predict with the prediction counter.
func (c *Controller) predict(ch []float64, w float64) (tputR, tputW float64) {
	if c.obs != nil {
		c.obs.predictions.Inc()
	}
	return c.TPM.Predict(ch, w)
}

// OnRateEvent is the "DynamicAdjustment" entry point: DCQCN notifies a
// new demanded data sending rate (bits/s) at time at — a pause event when
// lower than before, a retrieval event when higher. The controller
// profiles the preceding window, picks w, and applies it to the SSQ.
func (c *Controller) OnRateEvent(at sim.Time, demandedBps float64) {
	if c.obs != nil {
		c.obs.rateEvents.Inc()
	}
	if c.haveEvent {
		if at-c.lastEventAt < c.Cfg.MinEventGap {
			if c.obs != nil {
				c.obs.suppressed.Inc()
			}
			return
		}
		if c.lastDemand > 0 && math.Abs(demandedBps-c.lastDemand)/c.lastDemand < c.Cfg.RateEpsilon {
			if c.obs != nil {
				c.obs.suppressed.Inc()
			}
			return
		}
	}
	c.lastEventAt = at
	c.lastDemand = demandedBps
	c.haveEvent = true

	if c.adaptive != nil {
		c.adaptiveRateEvent(at, demandedBps)
		return
	}

	if c.Cfg.StaleAfter > 0 {
		if last, ok := c.Monitor.LastRecordAt(); !ok || at-last > c.Cfg.StaleAfter {
			// Telemetry stalled: the monitor window describes traffic
			// that no longer exists, so a TPM prediction would steer on
			// stale features. Fall back to the conservative static
			// weight until commands flow again.
			c.degrade(at, demandedBps)
			return
		}
		if c.degraded {
			c.recoverTelemetry(at)
		}
	}

	c.tpmAdjust(at, demandedBps)
}

// tpmAdjust is the TPM-driven adjustment body (Alg. 1): profile the
// preceding window, pick w, apply it. Shared by the legacy path and the
// adaptive ladder's Predictive/Retraining rungs.
func (c *Controller) tpmAdjust(at sim.Time, demandedBps float64) {
	ch := c.Monitor.Snapshot(at)
	w := c.PredictWeightRatio(demandedBps, ch)
	pr, _ := c.predict(ch, float64(w))
	pr *= c.Cfg.Scale
	c.SSQ.SetWeights(1, w)
	c.Events = append(c.Events, AdjustEvent{
		At: at, DemandedBps: demandedBps, WeightRatio: w, PredictedRBp: pr,
	})
	if o := c.obs; o != nil {
		o.adjustments.Inc()
		o.weightRatio.Set(float64(w))
		o.sc.Instant(at, "core", "adjust "+o.name,
			obs.Num("w", float64(w)),
			obs.Num("demanded_gbps", demandedBps/1e9),
			obs.Num("predicted_read_gbps", pr/1e9))
		o.sc.Counter(at, "core", "weight_ratio "+o.name, float64(w))
	}
}

// degrade enters (or stays in) the stale-telemetry fallback: apply the
// static FallbackWeight and log the transition.
func (c *Controller) degrade(at sim.Time, demandedBps float64) {
	if c.degraded {
		return
	}
	c.degraded = true
	w := c.Cfg.FallbackWeight
	c.SSQ.SetWeights(1, w)
	c.Events = append(c.Events, AdjustEvent{
		At: at, DemandedBps: demandedBps, WeightRatio: w, Degraded: true,
	})
	if o := c.obs; o != nil {
		o.degradedEnters.Inc()
		o.degraded.Set(1)
		o.weightRatio.Set(float64(w))
		o.sc.Instant(at, "core", "degraded "+o.name,
			obs.Num("w", float64(w)),
			obs.Num("demanded_gbps", demandedBps/1e9))
	}
}

// recoverTelemetry leaves the fallback once monitor data is fresh again;
// the caller proceeds to a normal TPM-driven adjustment.
func (c *Controller) recoverTelemetry(at sim.Time) {
	c.degraded = false
	if o := c.obs; o != nil {
		o.recoveries.Inc()
		o.degraded.Set(0)
		o.sc.Instant(at, "core", "recovered "+o.name)
	}
}

// Degraded reports whether the stale-telemetry fallback is active.
func (c *Controller) Degraded() bool { return c.degraded }

// SampleSeries is the controller's flight-recorder probe: the active
// SSQ weight ratio, the degraded flag, the cumulative adjustment count,
// and the last demanded data sending rate. Read-only.
func (c *Controller) SampleSeries(track string, emit timeseries.Emit) {
	emit(track, "src_weight_ratio", timeseries.Gauge, c.SSQ.WeightRatio())
	degraded := 0.0
	if c.degraded {
		degraded = 1
	}
	emit(track, "src_degraded", timeseries.Gauge, degraded)
	emit(track, "src_adjustments", timeseries.Counter, float64(len(c.Events)))
	emit(track, "src_demand_gbps", timeseries.Gauge, c.lastDemand/1e9)
	if a := c.adaptive; a != nil {
		// Adaptive-only series: emitted only when the ladder is armed so
		// recorder output on non-adaptive runs is unchanged.
		emit(track, "src_ladder_state", timeseries.Gauge, float64(a.state))
		emit(track, "src_retrains", timeseries.Counter, float64(a.retrains))
		emit(track, "src_promotions", timeseries.Counter, float64(a.promotions))
		emit(track, "src_window_samples", timeseries.Gauge, float64(a.window.Len()))
		emit(track, "src_pred_err_mean", timeseries.Gauge, a.errs.AggErr())
	}
}

// CurrentWeightRatio returns the SSQ's active w.
func (c *Controller) CurrentWeightRatio() float64 { return c.SSQ.WeightRatio() }
