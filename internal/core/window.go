package core

// Sliding windows for the adaptive controller (see adaptive.go): a ring
// of recent (Ch, w) → measured-throughput observations that in-run
// retraining fits against, and a short ring of relative prediction
// errors that drives the degradation-ladder transitions. Both are plain
// fixed-capacity rings — no allocation after construction — so the
// observation path stays cheap and deterministic.

// SampleWindow is a fixed-capacity sliding window of TPM training
// samples, oldest evicted first.
type SampleWindow struct {
	buf  []Sample
	next int // overwrite position once the ring is full
}

// NewSampleWindow returns a window holding up to capacity samples.
func NewSampleWindow(capacity int) *SampleWindow {
	if capacity <= 0 {
		capacity = 128
	}
	return &SampleWindow{buf: make([]Sample, 0, capacity)}
}

// Push records one observation, evicting the oldest when full.
func (w *SampleWindow) Push(s Sample) {
	if len(w.buf) < cap(w.buf) {
		w.buf = append(w.buf, s)
		return
	}
	w.buf[w.next] = s
	w.next = (w.next + 1) % len(w.buf)
}

// Len returns the number of samples currently held.
func (w *SampleWindow) Len() int { return len(w.buf) }

// Samples returns the window contents oldest-first. The slice is a
// fresh copy; retraining may hold it across later pushes.
func (w *SampleWindow) Samples() []Sample {
	out := make([]Sample, 0, len(w.buf))
	if len(w.buf) == cap(w.buf) {
		out = append(out, w.buf[w.next:]...)
		out = append(out, w.buf[:w.next]...)
	} else {
		out = append(out, w.buf...)
	}
	return out
}

// errRing is a fixed-capacity ring of (predicted, measured) throughput
// pairs. The ladder reads the aggregate calibration error over the full
// ring — |Σpred − Σmeas| / max(Σpred, Σmeas) — rather than a mean of
// per-observation errors: bursty arrivals make single intervals swing
// far from any steady-state prediction, but that noise is roughly
// symmetric and cancels in the sums, while a genuinely miscalibrated
// model (an aged device, an out-of-envelope workload) biases every
// interval the same way and survives the aggregation.
type errRing struct {
	pred, meas []float64
	next       int
}

func newErrRing(capacity int) *errRing {
	if capacity <= 0 {
		capacity = 6
	}
	return &errRing{
		pred: make([]float64, 0, capacity),
		meas: make([]float64, 0, capacity),
	}
}

// Push records one (predicted, measured) observation pair.
func (r *errRing) Push(pred, meas float64) {
	if len(r.pred) < cap(r.pred) {
		r.pred = append(r.pred, pred)
		r.meas = append(r.meas, meas)
		return
	}
	r.pred[r.next] = pred
	r.meas[r.next] = meas
	r.next = (r.next + 1) % len(r.pred)
}

// Full reports whether the ring holds capacity entries.
func (r *errRing) Full() bool { return len(r.pred) == cap(r.pred) }

// AggErr returns the aggregate relative calibration error over the
// held window (0 when empty or when both sums are zero). Always in
// [0, 1] for non-negative throughputs.
func (r *errRing) AggErr() float64 {
	var sp, sm float64
	for i := range r.pred {
		sp += r.pred[i]
		sm += r.meas[i]
	}
	denom := sp
	if sm > denom {
		denom = sm
	}
	if denom <= 0 {
		return 0
	}
	d := sp - sm
	if d < 0 {
		d = -d
	}
	return d / denom
}

// Reset empties the ring — on model promotion (the recorded pairs
// scored the retired model) and on every ladder transition (each rung
// should judge the new regime on fresh evidence, which also adds
// fill-time hysteresis between consecutive transitions).
func (r *errRing) Reset() {
	r.pred = r.pred[:0]
	r.meas = r.meas[:0]
	r.next = 0
}
