package stats

import (
	"math"
	"testing"
	"testing/quick"

	"srcsim/internal/sim"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestMomentsBasic(t *testing.T) {
	var m Moments
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if m.Count() != 8 {
		t.Fatalf("Count = %d", m.Count())
	}
	if !almostEqual(m.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", m.Mean())
	}
	if !almostEqual(m.Variance(), 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", m.Variance())
	}
	if !almostEqual(m.StdDev(), 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", m.StdDev())
	}
	if m.Min() != 2 || m.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", m.Min(), m.Max())
	}
}

func TestMomentsEmpty(t *testing.T) {
	var m Moments
	if m.Mean() != 0 || m.Variance() != 0 || m.SCV() != 0 || m.Skewness() != 0 {
		t.Fatal("empty Moments should report zeros")
	}
}

func TestSampleVariance(t *testing.T) {
	var m Moments
	m.AddAll([]float64{1, 2, 3})
	if !almostEqual(m.SampleVariance(), 1, 1e-12) {
		t.Fatalf("SampleVariance = %v, want 1", m.SampleVariance())
	}
	var one Moments
	one.Add(5)
	if one.SampleVariance() != 0 {
		t.Fatal("single-sample variance should be 0")
	}
}

func TestSCVConstantSeries(t *testing.T) {
	var m Moments
	for i := 0; i < 10; i++ {
		m.Add(3)
	}
	if m.SCV() != 0 {
		t.Fatalf("constant series SCV = %v, want 0", m.SCV())
	}
}

func TestSCVExponentialIsOne(t *testing.T) {
	r := sim.NewRNG(5)
	var m Moments
	for i := 0; i < 100000; i++ {
		m.Add(r.Exp(42))
	}
	if math.Abs(m.SCV()-1) > 0.05 {
		t.Fatalf("exponential SCV = %v, want ~1", m.SCV())
	}
}

func TestSkewnessSigns(t *testing.T) {
	// Right-skewed data has positive skewness; symmetric ~0.
	right := []float64{1, 1, 1, 1, 2, 2, 3, 10}
	if Skewness(right) <= 0 {
		t.Fatalf("right-skewed skewness = %v, want > 0", Skewness(right))
	}
	sym := []float64{-2, -1, 0, 1, 2}
	if math.Abs(Skewness(sym)) > 1e-9 {
		t.Fatalf("symmetric skewness = %v, want 0", Skewness(sym))
	}
}

func TestKurtosisNormalIsZero(t *testing.T) {
	r := sim.NewRNG(5)
	var m Moments
	for i := 0; i < 300000; i++ {
		m.Add(r.Norm(0, 1))
	}
	if math.Abs(m.Kurtosis()) > 0.1 {
		t.Fatalf("normal excess kurtosis = %v, want ~0", m.Kurtosis())
	}
}

func TestMomentsMatchBatchFunctions(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				continue
			}
			xs = append(xs, v)
		}
		if len(xs) < 2 {
			return true
		}
		var m Moments
		m.AddAll(xs)
		return almostEqual(m.Mean(), Mean(xs), 1e-6) &&
			almostEqual(m.Variance(), Variance(xs), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAutocorrelation(t *testing.T) {
	// A strongly alternating series has negative lag-1 autocorrelation.
	alt := make([]float64, 100)
	for i := range alt {
		alt[i] = float64(i % 2)
	}
	if ac := Autocorrelation(alt, 1); ac > -0.9 {
		t.Fatalf("alternating lag-1 autocorr = %v, want near -1", ac)
	}
	// A slowly varying series has positive lag-1 autocorrelation.
	slow := make([]float64, 100)
	for i := range slow {
		slow[i] = math.Sin(float64(i) / 10)
	}
	if ac := Autocorrelation(slow, 1); ac < 0.9 {
		t.Fatalf("slow lag-1 autocorr = %v, want near 1", ac)
	}
	// Degenerate inputs.
	if Autocorrelation(nil, 1) != 0 || Autocorrelation([]float64{1, 1, 1}, 1) != 0 {
		t.Fatal("degenerate autocorrelation should be 0")
	}
	if Autocorrelation(alt, 0) != 0 || Autocorrelation(alt, 200) != 0 {
		t.Fatal("invalid lag should yield 0")
	}
}

func TestAutocorrelationIIDNearZero(t *testing.T) {
	r := sim.NewRNG(77)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	if ac := Autocorrelation(xs, 1); math.Abs(ac) > 0.02 {
		t.Fatalf("iid lag-1 autocorr = %v, want ~0", ac)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	if Percentile([]float64{7}, 99) != 7 {
		t.Fatal("single-element percentile")
	}
	// Out-of-range p clamps.
	if Percentile(xs, -5) != 1 || Percentile(xs, 300) != 5 {
		t.Fatal("percentile clamping failed")
	}
	if Median(xs) != 3 {
		t.Fatal("median")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Percentile mutated input: %v", xs)
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(sim.Millisecond)
	ts.Add(0, 10)
	ts.Add(sim.Millisecond-1, 5)
	ts.Add(sim.Millisecond, 7)
	ts.Add(3*sim.Millisecond+500, 1)
	if ts.Len() != 4 {
		t.Fatalf("Len = %d, want 4", ts.Len())
	}
	if ts.Sum(0) != 15 || ts.Sum(1) != 7 || ts.Sum(2) != 0 || ts.Sum(3) != 1 {
		t.Fatalf("bucket sums wrong: %v", ts.Sums())
	}
	if ts.Count(0) != 2 {
		t.Fatalf("Count(0) = %d", ts.Count(0))
	}
	if ts.Total() != 23 {
		t.Fatalf("Total = %v", ts.Total())
	}
}

func TestTimeSeriesRate(t *testing.T) {
	ts := NewTimeSeries(10 * sim.Millisecond)
	ts.Add(0, 1e6) // 1e6 bits in 10ms = 1e8 bits/s
	rates := ts.Rate()
	if !almostEqual(rates[0], 1e8, 1e-9) {
		t.Fatalf("Rate = %v, want 1e8", rates[0])
	}
}

func TestTimeSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero bucket width should panic")
		}
	}()
	NewTimeSeries(0)
}

func TestTrimFraction(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	trimmed := TrimFraction(xs, 0.1)
	if len(trimmed) != 8 || trimmed[0] != 2 || trimmed[7] != 9 {
		t.Fatalf("TrimFraction(0.1) = %v", trimmed)
	}
	if got := TrimFraction(xs, 0); len(got) != 10 {
		t.Fatal("zero trim should be identity")
	}
	// Over-trimming never empties the slice.
	if got := TrimFraction([]float64{1, 2}, 0.9); len(got) == 0 {
		t.Fatalf("over-trim emptied slice: %v", got)
	}
	if got := TrimFraction(nil, 0.5); len(got) != 0 {
		t.Fatal("nil input should stay empty")
	}
}

func BenchmarkMomentsAdd(b *testing.B) {
	var m Moments
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Add(float64(i % 1000))
	}
}
