package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-memory log₂-bucketed histogram for positive
// values (latencies, sizes). Bucket i covers [2^i, 2^(i+1)); values
// below 1 land in bucket 0. Quantiles are estimated by linear
// interpolation between each bucket's observed extremes: every bucket
// tracks the smallest and largest value it received, so the
// interpolation span is the range values actually occupied rather than
// the full power-of-two width. That keeps tail quantiles (p99/p999)
// tight when a bucket holds a narrow cluster, and because bucket ranges
// never overlap the estimates stay monotone in q.
type Histogram struct {
	counts [64]uint64
	// Per-bucket observed extremes; valid only where counts[i] > 0.
	// Bucket value ranges are disjoint and ordered (the edge buckets
	// absorb underflow/overflow but stay below/above every other
	// bucket), so bmax[i] <= bmin[j] for occupied i < j — the
	// monotonicity invariant Quantile relies on.
	bmin, bmax [64]float64
	total      uint64
	sum        float64
	min        float64
	max        float64
}

// Add folds one observation in; non-positive values count into bucket 0.
func (h *Histogram) Add(v float64) {
	idx := 0
	if v >= 1 {
		// Ilogb extracts the binary exponent exactly, where Log2+truncate
		// can round values just below a power of two (e.g. the largest
		// float64 under 2^50) up into the next bucket.
		idx = math.Ilogb(v)
		if idx > 63 {
			idx = 63
		}
	}
	if h.counts[idx] == 0 || v < h.bmin[idx] {
		h.bmin[idx] = v
	}
	if h.counts[idx] == 0 || v > h.bmax[idx] {
		h.bmax[idx] = v
	}
	h.counts[idx]++
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if h.total == 0 || v > h.max {
		h.max = v
	}
	h.total++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the exact running mean.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min and Max return the exact observed extremes.
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest observation.
func (h *Histogram) Max() float64 { return h.max }

// Quantile estimates the q-th (0..1) quantile.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.total)
	var seen float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if seen+float64(c) >= rank {
			// Interpolate across the values the bucket actually saw, not
			// its full power-of-two span.
			lo, hi := h.bmin[i], h.bmax[i]
			frac := (rank - seen) / float64(c)
			return lo + (hi-lo)*frac
		}
		seen += float64(c)
	}
	return h.max
}

// String summarises the distribution.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.4g p50=%.4g p99=%.4g max=%.4g",
		h.total, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.max)
	return b.String()
}
