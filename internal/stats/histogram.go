package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-memory log₂-bucketed histogram for positive
// values (latencies, sizes). Bucket i covers [2^i, 2^(i+1)); values
// below 1 land in bucket 0. Quantiles are estimated by linear
// interpolation inside the containing bucket, giving ≤ 50% relative
// error at any scale with 64 counters — the usual trade for streaming
// latency percentiles.
type Histogram struct {
	counts [64]uint64
	total  uint64
	sum    float64
	min    float64
	max    float64
}

// Add folds one observation in; non-positive values count into bucket 0.
func (h *Histogram) Add(v float64) {
	idx := 0
	if v >= 1 {
		// Ilogb extracts the binary exponent exactly, where Log2+truncate
		// can round values just below a power of two (e.g. the largest
		// float64 under 2^50) up into the next bucket.
		idx = math.Ilogb(v)
		if idx > 63 {
			idx = 63
		}
	}
	h.counts[idx]++
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if h.total == 0 || v > h.max {
		h.max = v
	}
	h.total++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the exact running mean.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min and Max return the exact observed extremes.
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest observation.
func (h *Histogram) Max() float64 { return h.max }

// Quantile estimates the q-th (0..1) quantile.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.total)
	var seen float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if seen+float64(c) >= rank {
			lo := math.Exp2(float64(i))
			hi := math.Exp2(float64(i + 1))
			if i == 0 {
				lo = 0
			}
			frac := (rank - seen) / float64(c)
			v := lo + (hi-lo)*frac
			// Clamp to the observed range for edge buckets.
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		seen += float64(c)
	}
	return h.max
}

// String summarises the distribution.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.4g p50=%.4g p99=%.4g max=%.4g",
		h.total, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.max)
	return b.String()
}
