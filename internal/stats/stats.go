// Package stats provides the descriptive statistics used throughout the
// reproduction: streaming moment accumulators, squared coefficient of
// variation (SCV), skewness, lag-k autocorrelation, percentiles, and
// fixed-width time-series bucketing for throughput/pause plots.
//
// The paper's workload feature vector (Sec. III-B) is built from these
// quantities: per-direction mean and SCV of request size and inter-arrival
// time, and arrival flow speed.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Moments accumulates count, mean, and central moments incrementally
// (Welford / Terriberry update), so callers never need to retain samples.
// The zero value is ready to use.
type Moments struct {
	n          int64
	mean       float64
	m2, m3, m4 float64
	min, max   float64
}

// Add folds one observation into the accumulator.
func (m *Moments) Add(x float64) {
	if m.n == 0 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	n1 := float64(m.n)
	m.n++
	n := float64(m.n)
	delta := x - m.mean
	deltaN := delta / n
	deltaN2 := deltaN * deltaN
	term1 := delta * deltaN * n1
	m.mean += deltaN
	m.m4 += term1*deltaN2*(n*n-3*n+3) + 6*deltaN2*m.m2 - 4*deltaN*m.m3
	m.m3 += term1*deltaN*(n-2) - 3*deltaN*m.m2
	m.m2 += term1
}

// AddAll folds every value of xs into the accumulator.
func (m *Moments) AddAll(xs []float64) {
	for _, x := range xs {
		m.Add(x)
	}
}

// Count returns the number of observations.
func (m *Moments) Count() int64 { return m.n }

// Mean returns the sample mean, or 0 with no observations.
func (m *Moments) Mean() float64 { return m.mean }

// Min returns the smallest observation, or 0 with no observations.
func (m *Moments) Min() float64 { return m.min }

// Max returns the largest observation, or 0 with no observations.
func (m *Moments) Max() float64 { return m.max }

// Variance returns the population variance (n denominator).
func (m *Moments) Variance() float64 {
	if m.n == 0 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// SampleVariance returns the unbiased sample variance (n-1 denominator).
func (m *Moments) SampleVariance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the population standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// SCV returns the squared coefficient of variation, Var/Mean².
// An exponential stream has SCV 1; SCV > 1 indicates burstiness.
func (m *Moments) SCV() float64 {
	if m.mean == 0 {
		return 0
	}
	return m.Variance() / (m.mean * m.mean)
}

// Skewness returns the standardized third central moment.
func (m *Moments) Skewness() float64 {
	if m.n == 0 || m.m2 == 0 {
		return 0
	}
	n := float64(m.n)
	return math.Sqrt(n) * m.m3 / math.Pow(m.m2, 1.5)
}

// Kurtosis returns excess kurtosis (normal = 0).
func (m *Moments) Kurtosis() float64 {
	if m.n == 0 || m.m2 == 0 {
		return 0
	}
	n := float64(m.n)
	return n*m.m4/(m.m2*m.m2) - 3
}

// String summarises the accumulator for logs.
func (m *Moments) String() string {
	return fmt.Sprintf("n=%d mean=%.4g scv=%.4g skew=%.4g", m.n, m.Mean(), m.SCV(), m.Skewness())
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mu := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - mu
		s += d * d
	}
	return s / float64(len(xs))
}

// SCV returns the squared coefficient of variation of xs.
func SCV(xs []float64) float64 {
	mu := Mean(xs)
	if mu == 0 {
		return 0
	}
	return Variance(xs) / (mu * mu)
}

// Skewness returns the standardized skewness of xs.
func Skewness(xs []float64) float64 {
	var m Moments
	m.AddAll(xs)
	return m.Skewness()
}

// Autocorrelation returns the lag-k sample autocorrelation of xs, the
// burstiness statistic the paper extracts from real traces before MMPP
// fitting. It returns 0 when the series is too short or constant.
func Autocorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag <= 0 || n <= lag {
		return 0
	}
	mu := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - mu
		den += d * d
	}
	if den == 0 {
		return 0
	}
	for i := 0; i < n-lag; i++ {
		num += (xs[i] - mu) * (xs[i+lag] - mu)
	}
	return num / den
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }
