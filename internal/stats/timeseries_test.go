package stats

import (
	"strings"
	"testing"

	"srcsim/internal/sim"
)

// A value landing exactly on a bucket boundary belongs to the bucket it
// opens, not the one it closes.
func TestTimeSeriesBucketBoundary(t *testing.T) {
	ts := NewTimeSeries(sim.Millisecond)
	ts.Add(0, 1)                  // bucket 0 start
	ts.Add(sim.Millisecond-1, 2)  // last instant of bucket 0
	ts.Add(sim.Millisecond, 4)    // first instant of bucket 1
	ts.Add(2*sim.Millisecond, 8)  // opens bucket 2
	ts.Add(2*sim.Millisecond, 16) // same boundary instant accumulates

	if ts.Len() != 3 {
		t.Fatalf("len %d, want 3", ts.Len())
	}
	if ts.Sum(0) != 3 || ts.Count(0) != 2 {
		t.Fatalf("bucket 0 sum/count %v/%d, want 3/2", ts.Sum(0), ts.Count(0))
	}
	if ts.Sum(1) != 4 || ts.Count(1) != 1 {
		t.Fatalf("bucket 1 sum/count %v/%d, want 4/1", ts.Sum(1), ts.Count(1))
	}
	if ts.Sum(2) != 24 || ts.Count(2) != 2 {
		t.Fatalf("bucket 2 sum/count %v/%d, want 24/2", ts.Sum(2), ts.Count(2))
	}
}

// Out-of-order Adds must accumulate identically to sorted Adds, leaving
// interior gaps as zero-valued buckets.
func TestTimeSeriesOutOfOrderAdd(t *testing.T) {
	ts := NewTimeSeries(sim.Millisecond)
	ts.Add(5*sim.Millisecond, 10) // grows to 6 buckets
	ts.Add(sim.Millisecond, 2)    // earlier bucket, after the growth
	ts.Add(5*sim.Millisecond, 1)
	ts.Add(0, 7)

	if ts.Len() != 6 {
		t.Fatalf("len %d, want 6", ts.Len())
	}
	want := []float64{7, 2, 0, 0, 0, 11}
	for i, w := range want {
		if ts.Sum(i) != w {
			t.Fatalf("bucket %d sum %v, want %v (sums %v)", i, ts.Sum(i), w, ts.Sums())
		}
	}
	if ts.Total() != 20 {
		t.Fatalf("total %v, want 20", ts.Total())
	}
}

func TestTimeSeriesSumsIsACopy(t *testing.T) {
	ts := NewTimeSeries(sim.Millisecond)
	ts.Add(0, 1)
	sums := ts.Sums()
	sums[0] = 999
	if ts.Sum(0) != 1 {
		t.Fatal("Sums() aliases internal storage")
	}
}

func TestTimeSeriesRateAndTrim(t *testing.T) {
	ts := NewTimeSeries(100 * sim.Millisecond)
	for i := 0; i < 10; i++ {
		ts.Add(sim.Time(i)*100*sim.Millisecond, float64(i))
	}
	rates := ts.Rate()
	if len(rates) != 10 {
		t.Fatalf("rate len %d", len(rates))
	}
	// Bucket 3 holds 3 units over 0.1 s = 30 units/s.
	if rates[3] != 30 {
		t.Fatalf("rate[3] = %v, want 30", rates[3])
	}
	trimmed := ts.TrimFraction(0.1)
	if len(trimmed) != 8 || trimmed[0] != 1 || trimmed[7] != 8 {
		t.Fatalf("TrimFraction(0.1) = %v", trimmed)
	}
	// Over-trimming never empties a non-empty series.
	if got := ts.TrimFraction(0.9); len(got) < 1 {
		t.Fatal("TrimFraction over-trimmed to empty")
	}
}

func TestTimeSeriesRendering(t *testing.T) {
	ts := NewTimeSeries(2 * sim.Millisecond)
	ts.Add(sim.Millisecond, 5)
	ts.Add(3*sim.Millisecond, 7)
	s := ts.String()
	for _, frag := range []string{"bucket=2ms", "n=2", "total=12"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() = %q, missing %q", s, frag)
		}
	}
	if ts.Bucket() != 2*sim.Millisecond {
		t.Fatalf("bucket %v", ts.Bucket())
	}
}

func TestTimeSeriesNegativeTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add time did not panic")
		}
	}()
	NewTimeSeries(sim.Millisecond).Add(-1, 1)
}
