package stats

import (
	"fmt"
	"strings"

	"srcsim/internal/sim"
)

// TimeSeries accumulates values into fixed-width time buckets. It backs
// the paper's runtime plots: per-millisecond read/write throughput
// (Figs. 7, 9, 10) and pause counts (Fig. 8).
type TimeSeries struct {
	bucket  sim.Time
	sums    []float64
	counts  []int64
	maxSeen sim.Time
}

// NewTimeSeries returns a series with the given bucket width.
func NewTimeSeries(bucket sim.Time) *TimeSeries {
	if bucket <= 0 {
		panic("stats: non-positive time-series bucket")
	}
	return &TimeSeries{bucket: bucket}
}

// Bucket returns the configured bucket width.
func (ts *TimeSeries) Bucket() sim.Time { return ts.bucket }

// Add accumulates v into the bucket containing time at.
func (ts *TimeSeries) Add(at sim.Time, v float64) {
	if at < 0 {
		panic("stats: negative time in TimeSeries.Add")
	}
	i := int(at / ts.bucket)
	for len(ts.sums) <= i {
		ts.sums = append(ts.sums, 0)
		ts.counts = append(ts.counts, 0)
	}
	ts.sums[i] += v
	ts.counts[i]++
	if at > ts.maxSeen {
		ts.maxSeen = at
	}
}

// Len returns the number of buckets (including empty interior ones).
func (ts *TimeSeries) Len() int { return len(ts.sums) }

// Sum returns the accumulated value of bucket i.
func (ts *TimeSeries) Sum(i int) float64 { return ts.sums[i] }

// Count returns the number of Add calls that landed in bucket i.
func (ts *TimeSeries) Count(i int) int64 { return ts.counts[i] }

// Sums returns a copy of all bucket sums.
func (ts *TimeSeries) Sums() []float64 { return append([]float64(nil), ts.sums...) }

// Rate returns bucket sums divided by the bucket width in seconds — i.e.
// if values are bits, Rate yields bits/second per bucket.
func (ts *TimeSeries) Rate() []float64 {
	sec := ts.bucket.Seconds()
	out := make([]float64, len(ts.sums))
	for i, s := range ts.sums {
		out[i] = s / sec
	}
	return out
}

// TrimFraction returns bucket sums with the first and last frac of buckets
// removed, the paper's warm-up/wrap-up trimming (10% each side).
func (ts *TimeSeries) TrimFraction(frac float64) []float64 {
	return TrimFraction(ts.Sums(), frac)
}

// TrimFraction removes the first and last frac of xs (rounded down each
// side). The slice shrinks but never to below a single element unless xs
// is empty.
func TrimFraction(xs []float64, frac float64) []float64 {
	if len(xs) == 0 || frac <= 0 {
		return xs
	}
	k := int(float64(len(xs)) * frac)
	if 2*k >= len(xs) {
		k = (len(xs) - 1) / 2
	}
	return xs[k : len(xs)-k]
}

// Total returns the sum over all buckets.
func (ts *TimeSeries) Total() float64 {
	var t float64
	for _, s := range ts.sums {
		t += s
	}
	return t
}

// String renders a compact summary.
func (ts *TimeSeries) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TimeSeries(bucket=%v, n=%d, total=%.4g)", ts.bucket, len(ts.sums), ts.Total())
	return b.String()
}
