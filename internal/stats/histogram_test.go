package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"srcsim/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for _, v := range []float64{1, 2, 4, 8} {
		h.Add(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Mean() != 3.75 {
		t.Fatalf("mean %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 8 {
		t.Fatalf("min/max %v/%v", h.Min(), h.Max())
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != 8 {
		t.Fatal("quantile endpoints")
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Against exact percentiles on a log-uniform sample: log buckets
	// guarantee bounded relative error.
	rng := sim.NewRNG(3)
	var h Histogram
	xs := make([]float64, 20000)
	for i := range xs {
		v := math.Exp2(rng.Float64() * 20) // 1 .. ~1e6
		xs[i] = v
		h.Add(v)
	}
	sort.Float64s(xs)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		exact := xs[int(q*float64(len(xs)))]
		est := h.Quantile(q)
		rel := math.Abs(est-exact) / exact
		if rel > 0.5 {
			t.Fatalf("q=%v: estimate %v vs exact %v (rel %v)", q, est, exact, rel)
		}
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	var h Histogram
	h.Add(0)
	h.Add(-5) // clamps into bucket 0
	h.Add(0.25)
	if h.Count() != 3 {
		t.Fatalf("count %d", h.Count())
	}
	if q := h.Quantile(0.5); q < -5 || q > 1 {
		t.Fatalf("sub-unit quantile %v", q)
	}
	// Gigantic values cap at the top bucket without panicking.
	h.Add(math.MaxFloat64)
	if h.Max() != math.MaxFloat64 {
		t.Fatal("max not tracked")
	}
}

// Property: quantile estimates are monotone in q and within [min, max].
func TestPropertyHistogramMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		var h Histogram
		for _, v := range raw {
			h.Add(float64(v) + 1)
		}
		if h.Count() == 0 {
			return true
		}
		prev := h.Quantile(0)
		for q := 0.05; q <= 1.0; q += 0.05 {
			cur := h.Quantile(q)
			if cur < prev-1e-9 {
				return false
			}
			if cur < h.Min()-1e-9 || cur > h.Max()+1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Bucket boundaries must be exact: 2^i opens bucket i, and the largest
// float64 strictly below 2^i must stay in bucket i-1. The former
// int(math.Log2(v)) indexing failed the second property for large i
// because Log2 rounds to the nearest representable float.
func TestHistogramBucketBoundaries(t *testing.T) {
	for i := 1; i <= 62; i++ {
		pow := math.Exp2(float64(i))

		var at Histogram
		at.Add(pow)
		if at.counts[i] != 1 {
			t.Fatalf("2^%d landed outside bucket %d", i, i)
		}

		var below Histogram
		below.Add(math.Nextafter(pow, 0))
		if below.counts[i-1] != 1 {
			// Locate where it went for the failure message.
			got := -1
			for b, c := range below.counts {
				if c == 1 {
					got = b
				}
			}
			t.Fatalf("nextafter(2^%d) landed in bucket %d, want %d", i, got, i-1)
		}
	}
	// Exactly 1 is the first value of bucket 0.
	var one Histogram
	one.Add(1)
	if one.counts[0] != 1 {
		t.Fatal("1 not in bucket 0")
	}
	// Values at or above 2^63 clamp into the top bucket.
	var top Histogram
	top.Add(math.Exp2(64))
	top.Add(math.MaxFloat64)
	if top.counts[63] != 2 {
		t.Fatal("huge values not clamped into bucket 63")
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Add(10)
	if s := h.String(); len(s) == 0 {
		t.Fatal("empty String()")
	}
}

// Tail quantiles must interpolate across the values a bucket actually
// received, not its full power-of-two span. A tight cluster deep inside
// a wide bucket is the worst case for full-span interpolation (up to 2x
// error at the top buckets); per-bucket extremes recover it exactly.
func TestHistogramTailPrecisionTightCluster(t *testing.T) {
	var h Histogram
	// 1% of mass low, 99% at exactly 1500 (inside [1024, 2048)).
	for i := 0; i < 10; i++ {
		h.Add(3)
	}
	for i := 0; i < 990; i++ {
		h.Add(1500)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if got := h.Quantile(q); got != 1500 {
			t.Fatalf("p%g = %g, want exactly 1500", q*100, got)
		}
	}

	// A narrow band [1500, 1510] bounds every tail estimate to the band.
	var b Histogram
	for i := 0; i < 1000; i++ {
		b.Add(1500 + float64(i%11))
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 0.999} {
		got := b.Quantile(q)
		if got < 1500 || got > 1510 {
			t.Fatalf("p%g = %g outside observed band [1500, 1510]", q*100, got)
		}
	}
}

// Per-bucket extremes must respect bucket boundaries so that the
// disjoint-ranges invariant (and with it quantile monotonicity) holds,
// including the underflow bucket (which absorbs v < 1, even negative)
// and the overflow bucket (v >= 2^63).
func TestHistogramBucketExtremes(t *testing.T) {
	var h Histogram
	h.Add(-5)
	h.Add(0.25)
	h.Add(1)
	h.Add(math.Nextafter(2, 0)) // still bucket 0: [1, 2) plus underflow
	h.Add(2)
	h.Add(3)
	h.Add(1024)
	h.Add(2047)
	h.Add(math.Exp2(64))

	if h.bmin[0] != -5 || h.bmax[0] != math.Nextafter(2, 0) {
		t.Fatalf("bucket 0 extremes [%g, %g], want [-5, nextafter(2))", h.bmin[0], h.bmax[0])
	}
	if h.bmin[1] != 2 || h.bmax[1] != 3 {
		t.Fatalf("bucket 1 extremes [%g, %g], want [2, 3]", h.bmin[1], h.bmax[1])
	}
	if h.bmin[10] != 1024 || h.bmax[10] != 2047 {
		t.Fatalf("bucket 10 extremes [%g, %g], want [1024, 2047]", h.bmin[10], h.bmax[10])
	}
	if h.bmin[63] != math.Exp2(64) {
		t.Fatalf("overflow bucket min %g", h.bmin[63])
	}

	// Occupied buckets have disjoint, ordered value ranges.
	last := math.Inf(-1)
	for i := range h.counts {
		if h.counts[i] == 0 {
			continue
		}
		if h.bmin[i] < last {
			t.Fatalf("bucket %d min %g below previous bucket max %g", i, h.bmin[i], last)
		}
		if h.bmax[i] < h.bmin[i] {
			t.Fatalf("bucket %d inverted extremes [%g, %g]", i, h.bmin[i], h.bmax[i])
		}
		last = h.bmax[i]
	}
}

// Quantiles with per-bucket extremes stay monotone and within the
// observed range on adversarial inputs mixing sub-1 underflow values,
// exact powers of two, and near-boundary values.
func TestPropertyHistogramQuantileWithinObserved(t *testing.T) {
	f := func(raw []int16, shifts []uint8) bool {
		var h Histogram
		var vals []float64
		add := func(v float64) {
			h.Add(v)
			vals = append(vals, v)
		}
		for _, v := range raw {
			add(float64(v) / 16) // mixes negatives and sub-1 values
		}
		for _, s := range shifts {
			pow := math.Exp2(float64(s % 40))
			add(pow)
			add(math.Nextafter(pow, 0))
		}
		if h.Count() == 0 {
			return true
		}
		sort.Float64s(vals)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.01 {
			cur := h.Quantile(q)
			if cur < prev-1e-9 {
				return false
			}
			if cur < vals[0]-1e-9 || cur > vals[len(vals)-1]+1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
