package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"srcsim/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for _, v := range []float64{1, 2, 4, 8} {
		h.Add(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Mean() != 3.75 {
		t.Fatalf("mean %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 8 {
		t.Fatalf("min/max %v/%v", h.Min(), h.Max())
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != 8 {
		t.Fatal("quantile endpoints")
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Against exact percentiles on a log-uniform sample: log buckets
	// guarantee bounded relative error.
	rng := sim.NewRNG(3)
	var h Histogram
	xs := make([]float64, 20000)
	for i := range xs {
		v := math.Exp2(rng.Float64() * 20) // 1 .. ~1e6
		xs[i] = v
		h.Add(v)
	}
	sort.Float64s(xs)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		exact := xs[int(q*float64(len(xs)))]
		est := h.Quantile(q)
		rel := math.Abs(est-exact) / exact
		if rel > 0.5 {
			t.Fatalf("q=%v: estimate %v vs exact %v (rel %v)", q, est, exact, rel)
		}
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	var h Histogram
	h.Add(0)
	h.Add(-5) // clamps into bucket 0
	h.Add(0.25)
	if h.Count() != 3 {
		t.Fatalf("count %d", h.Count())
	}
	if q := h.Quantile(0.5); q < -5 || q > 1 {
		t.Fatalf("sub-unit quantile %v", q)
	}
	// Gigantic values cap at the top bucket without panicking.
	h.Add(math.MaxFloat64)
	if h.Max() != math.MaxFloat64 {
		t.Fatal("max not tracked")
	}
}

// Property: quantile estimates are monotone in q and within [min, max].
func TestPropertyHistogramMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		var h Histogram
		for _, v := range raw {
			h.Add(float64(v) + 1)
		}
		if h.Count() == 0 {
			return true
		}
		prev := h.Quantile(0)
		for q := 0.05; q <= 1.0; q += 0.05 {
			cur := h.Quantile(q)
			if cur < prev-1e-9 {
				return false
			}
			if cur < h.Min()-1e-9 || cur > h.Max()+1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Bucket boundaries must be exact: 2^i opens bucket i, and the largest
// float64 strictly below 2^i must stay in bucket i-1. The former
// int(math.Log2(v)) indexing failed the second property for large i
// because Log2 rounds to the nearest representable float.
func TestHistogramBucketBoundaries(t *testing.T) {
	for i := 1; i <= 62; i++ {
		pow := math.Exp2(float64(i))

		var at Histogram
		at.Add(pow)
		if at.counts[i] != 1 {
			t.Fatalf("2^%d landed outside bucket %d", i, i)
		}

		var below Histogram
		below.Add(math.Nextafter(pow, 0))
		if below.counts[i-1] != 1 {
			// Locate where it went for the failure message.
			got := -1
			for b, c := range below.counts {
				if c == 1 {
					got = b
				}
			}
			t.Fatalf("nextafter(2^%d) landed in bucket %d, want %d", i, got, i-1)
		}
	}
	// Exactly 1 is the first value of bucket 0.
	var one Histogram
	one.Add(1)
	if one.counts[0] != 1 {
		t.Fatal("1 not in bucket 0")
	}
	// Values at or above 2^63 clamp into the top bucket.
	var top Histogram
	top.Add(math.Exp2(64))
	top.Add(math.MaxFloat64)
	if top.counts[63] != 2 {
		t.Fatal("huge values not clamped into bucket 63")
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Add(10)
	if s := h.String(); len(s) == 0 {
		t.Fatal("empty String()")
	}
}
