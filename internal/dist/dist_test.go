package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"srcsim/internal/sim"
	"srcsim/internal/stats"
)

func sampleMoments(s Sampler, n int) *stats.Moments {
	var m stats.Moments
	for i := 0; i < n; i++ {
		m.Add(s.Sample())
	}
	return &m
}

func TestExponentialMoments(t *testing.T) {
	s := NewExponential(12, sim.NewRNG(1))
	m := sampleMoments(s, 200000)
	if math.Abs(m.Mean()-12)/12 > 0.02 {
		t.Fatalf("mean = %v, want ~12", m.Mean())
	}
	if math.Abs(m.SCV()-1) > 0.05 {
		t.Fatalf("SCV = %v, want ~1", m.SCV())
	}
	if s.Mean() != 12 {
		t.Fatalf("Mean() = %v", s.Mean())
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive mean should panic")
		}
	}()
	NewExponential(0, sim.NewRNG(1))
}

func TestConstant(t *testing.T) {
	c := Constant{V: 7}
	for i := 0; i < 10; i++ {
		if c.Sample() != 7 {
			t.Fatal("Constant sample changed")
		}
	}
	if c.Mean() != 7 {
		t.Fatal("Constant mean")
	}
}

func TestUniform(t *testing.T) {
	u := NewUniform(10, 20, sim.NewRNG(2))
	m := sampleMoments(u, 100000)
	if math.Abs(m.Mean()-15) > 0.1 {
		t.Fatalf("uniform mean = %v, want ~15", m.Mean())
	}
	if m.Min() < 10 || m.Max() >= 20 {
		t.Fatalf("uniform range violated: [%v, %v]", m.Min(), m.Max())
	}
	if u.Mean() != 15 {
		t.Fatal("Mean()")
	}
}

func TestLogNormalMoments(t *testing.T) {
	for _, scv := range []float64{0.25, 1, 4} {
		l := NewLogNormal(100, scv, sim.NewRNG(3))
		m := sampleMoments(l, 300000)
		if math.Abs(m.Mean()-100)/100 > 0.05 {
			t.Fatalf("scv=%v: mean = %v, want ~100", scv, m.Mean())
		}
		if math.Abs(m.SCV()-scv)/scv > 0.15 {
			t.Fatalf("scv=%v: got SCV %v", scv, m.SCV())
		}
	}
}

func TestBoundedParetoRangeAndMean(t *testing.T) {
	p := NewBoundedPareto(4, 4096, 1.3, sim.NewRNG(4))
	m := sampleMoments(p, 200000)
	if m.Min() < 4 || m.Max() > 4096 {
		t.Fatalf("pareto out of bounds: [%v, %v]", m.Min(), m.Max())
	}
	if math.Abs(m.Mean()-p.Mean())/p.Mean() > 0.05 {
		t.Fatalf("pareto mean = %v, analytic %v", m.Mean(), p.Mean())
	}
}

func TestEmpirical(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	e := NewEmpirical(vals, sim.NewRNG(5))
	if e.Mean() != 2.5 {
		t.Fatalf("empirical mean = %v", e.Mean())
	}
	seen := map[float64]bool{}
	for i := 0; i < 1000; i++ {
		v := e.Sample()
		seen[v] = true
		if v < 1 || v > 4 {
			t.Fatalf("sample %v outside source values", v)
		}
	}
	if len(seen) != 4 {
		t.Fatalf("not all source values drawn: %v", seen)
	}
	if e.Quantile(0) != 1 || e.Quantile(1) != 4 {
		t.Fatal("quantile endpoints")
	}
	// Mutating the input must not affect the sampler.
	vals[0] = 1000
	if e.Quantile(0) != 1 {
		t.Fatal("empirical sampler aliases caller slice")
	}
}

func TestSamplersAlwaysPositive(t *testing.T) {
	rng := sim.NewRNG(6)
	samplers := []Sampler{
		NewExponential(5, rng),
		NewLogNormal(5, 2, rng),
		NewBoundedPareto(1, 100, 1.5, rng),
		NewMMPP2(1, 0.1, 0.01, 0.01, rng),
	}
	for _, s := range samplers {
		for i := 0; i < 5000; i++ {
			if v := s.Sample(); v <= 0 {
				t.Fatalf("%T produced non-positive sample %v", s, v)
			}
		}
	}
}

func TestMMPP2MomentsAnalyticVsSimulated(t *testing.T) {
	// Empirical statistics of a generated stream must match the closed
	// forms from the MAP representation.
	cases := []MMPP2Params{
		{Lambda1: 2, Lambda2: 0.2, R1: 0.05, R2: 0.05},
		{Lambda1: 1, Lambda2: 1, R1: 1, R2: 1}, // Poisson degenerate
		{Lambda1: 5, Lambda2: 0.5, R1: 0.2, R2: 0.02},
	}
	for _, p := range cases {
		gen := p.New(sim.NewRNG(7))
		am, ascv, arho := gen.Moments()
		const n = 400000
		xs := make([]float64, n)
		var mom stats.Moments
		for i := range xs {
			xs[i] = gen.Sample()
			mom.Add(xs[i])
		}
		if math.Abs(mom.Mean()-am)/am > 0.03 {
			t.Fatalf("%+v: sim mean %v vs analytic %v", p, mom.Mean(), am)
		}
		if math.Abs(mom.SCV()-ascv)/math.Max(ascv, 1) > 0.08 {
			t.Fatalf("%+v: sim SCV %v vs analytic %v", p, mom.SCV(), ascv)
		}
		srho := stats.Autocorrelation(xs, 1)
		if math.Abs(srho-arho) > 0.03 {
			t.Fatalf("%+v: sim rho1 %v vs analytic %v", p, srho, arho)
		}
	}
}

func TestMMPP2PoissonDegenerate(t *testing.T) {
	m := NewMMPP2(3, 3, 1, 1, sim.NewRNG(8))
	mean, scv, rho := m.Moments()
	if math.Abs(mean-1.0/3) > 1e-9 {
		t.Fatalf("degenerate mean = %v, want 1/3", mean)
	}
	if math.Abs(scv-1) > 1e-9 || math.Abs(rho) > 1e-9 {
		t.Fatalf("degenerate scv=%v rho=%v, want 1, 0", scv, rho)
	}
}

func TestMMPP2InterruptedPoisson(t *testing.T) {
	// Lambda2 = 0 (no arrivals in the off state) must still generate.
	m := NewMMPP2(2, 0, 0.1, 0.1, sim.NewRNG(9))
	mom := sampleMoments(m, 50000)
	am, ascv, _ := m.Moments()
	if math.Abs(mom.Mean()-am)/am > 0.05 {
		t.Fatalf("IPP mean %v vs analytic %v", mom.Mean(), am)
	}
	if ascv <= 1 {
		t.Fatalf("IPP SCV %v should exceed 1", ascv)
	}
}

func TestMMPP2Panics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative lambda": func() { NewMMPP2(-1, 1, 1, 1, sim.NewRNG(1)) },
		"zero r1":         func() { NewMMPP2(1, 1, 0, 1, sim.NewRNG(1)) },
		"no arrivals":     func() { NewMMPP2(0, 0, 1, 1, sim.NewRNG(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFitMMPP2MatchesTargets(t *testing.T) {
	cases := []struct{ mean, scv, rho float64 }{
		{10, 2, 0.1},
		{10, 4, 0.2},
		{25, 8, 0.3},
		{1, 1.5, 0.05},
		{100, 3, 0},
	}
	for _, c := range cases {
		p, err := FitMMPP2(c.mean, c.scv, c.rho)
		if err != nil {
			t.Fatalf("fit(%v) error: %v", c, err)
		}
		m := &MMPP2{Lambda1: p.Lambda1, Lambda2: p.Lambda2, R1: p.R1, R2: p.R2}
		gm, gs, gr := m.Moments()
		if math.Abs(gm-c.mean)/c.mean > 0.05 {
			t.Errorf("fit(%v): mean %v", c, gm)
		}
		if math.Abs(gs-c.scv)/c.scv > 0.1 {
			t.Errorf("fit(%v): scv %v", c, gs)
		}
		if math.Abs(gr-c.rho) > 0.05 {
			t.Errorf("fit(%v): rho %v", c, gr)
		}
	}
}

func TestFitMMPP2PoissonTarget(t *testing.T) {
	p, err := FitMMPP2(5, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Lambda1-p.Lambda2) > 1e-9 {
		t.Fatalf("scv=1 should give equal rates, got %+v", p)
	}
	m := p.New(sim.NewRNG(1))
	if math.Abs(m.Mean()-5)/5 > 1e-6 {
		t.Fatalf("poisson-degenerate mean %v", m.Mean())
	}
}

func TestFitMMPP2ClampsInfeasible(t *testing.T) {
	// scv < 1 and negative rho are infeasible for MMPP2; the fit clamps
	// rather than failing.
	if _, err := FitMMPP2(10, 0.5, -0.3); err != nil {
		t.Fatalf("clamped fit errored: %v", err)
	}
	if _, err := FitMMPP2(0, 2, 0.1); err == nil {
		t.Fatal("non-positive mean must error")
	}
}

// Property: fitted processes always generate positive inter-arrivals with
// mean close to target across a random selection of targets, including
// combinations beyond the ACF1 feasibility frontier (which the fit
// clamps). The quick source is seeded so CI never rolls fresh dice.
func TestPropertyFitMMPP2(t *testing.T) {
	f := func(seedRaw uint32, scvRaw, rhoRaw uint8) bool {
		mean := 1 + float64(seedRaw%1000)
		scv := 1.2 + float64(scvRaw%60)/10 // 1.2 .. 7.1
		rho := float64(rhoRaw%35) / 100    // 0 .. 0.34
		p, err := FitMMPP2(mean, scv, rho)
		if err != nil {
			t.Logf("fit failed for mean=%v scv=%v rho=%v: %v", mean, scv, rho, err)
			return false
		}
		m := &MMPP2{Lambda1: p.Lambda1, Lambda2: p.Lambda2, R1: p.R1, R2: p.R2}
		gm, _, _ := m.Moments()
		return math.Abs(gm-mean)/mean < 0.1
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
	// The exact input that used to fail: rho 0.30 demanded at scv 1.3,
	// whose frontier is ~0.115 — the fit must clamp and still converge.
	if !f(0x3c766baf, 0x79, 0x64) {
		t.Fatal("frontier-clamped fit did not converge")
	}
}

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + (x[1]+2)*(x[1]+2) + 1
	}
	x, v := nelderMead(f, []float64{0, 0}, 2000)
	if math.Abs(x[0]-3) > 1e-4 || math.Abs(x[1]+2) > 1e-4 || math.Abs(v-1) > 1e-6 {
		t.Fatalf("nelderMead got x=%v v=%v", x, v)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	x, v := nelderMead(f, []float64{-1, 1}, 10000)
	if v > 1e-4 {
		t.Fatalf("Rosenbrock residual %v at %v", v, x)
	}
}

func BenchmarkMMPP2Sample(b *testing.B) {
	m := NewMMPP2(2, 0.2, 0.05, 0.05, sim.NewRNG(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Sample()
	}
}

func BenchmarkFitMMPP2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = FitMMPP2(10, 4, 0.2)
	}
}
