package dist

import "sort"

// nelderMead minimises f over R^n starting from x0 using the classic
// downhill-simplex method (reflection 1, expansion 2, contraction 0.5,
// shrink 0.5). It is dependency-free and adequate for the low-dimensional
// moment-matching fits in this package. Returns the best point and value.
func nelderMead(f func([]float64) float64, x0 []float64, maxIter int) ([]float64, float64) {
	n := len(x0)
	// Initial simplex: x0 plus a perturbation along each axis.
	pts := make([][]float64, n+1)
	vals := make([]float64, n+1)
	for i := range pts {
		p := append([]float64(nil), x0...)
		if i > 0 {
			p[i-1] += 0.5
		}
		pts[i] = p
		vals[i] = f(p)
	}
	order := make([]int, n+1)

	centroid := make([]float64, n)
	trial := make([]float64, n)

	for iter := 0; iter < maxIter; iter++ {
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return vals[order[a]] < vals[order[b]] })
		best, worst := order[0], order[n]

		if vals[worst]-vals[best] < 1e-12 {
			break
		}

		// Centroid of all but worst.
		for j := 0; j < n; j++ {
			centroid[j] = 0
		}
		for _, i := range order[:n] {
			for j := 0; j < n; j++ {
				centroid[j] += pts[i][j]
			}
		}
		for j := 0; j < n; j++ {
			centroid[j] /= float64(n)
		}

		// Reflect.
		for j := 0; j < n; j++ {
			trial[j] = centroid[j] + (centroid[j] - pts[worst][j])
		}
		fr := f(trial)
		switch {
		case fr < vals[best]:
			// Expand.
			exp := make([]float64, n)
			for j := 0; j < n; j++ {
				exp[j] = centroid[j] + 2*(centroid[j]-pts[worst][j])
			}
			fe := f(exp)
			if fe < fr {
				copy(pts[worst], exp)
				vals[worst] = fe
			} else {
				copy(pts[worst], trial)
				vals[worst] = fr
			}
		case fr < vals[order[n-1]]:
			copy(pts[worst], trial)
			vals[worst] = fr
		default:
			// Contract toward centroid.
			for j := 0; j < n; j++ {
				trial[j] = centroid[j] + 0.5*(pts[worst][j]-centroid[j])
			}
			fc := f(trial)
			if fc < vals[worst] {
				copy(pts[worst], trial)
				vals[worst] = fc
			} else {
				// Shrink toward best.
				for _, i := range order[1:] {
					for j := 0; j < n; j++ {
						pts[i][j] = pts[best][j] + 0.5*(pts[i][j]-pts[best][j])
					}
					vals[i] = f(pts[i])
				}
			}
		}
	}

	bi := 0
	for i, v := range vals {
		if v < vals[bi] {
			bi = i
		}
		_ = v
	}
	return pts[bi], vals[bi]
}
