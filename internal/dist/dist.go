// Package dist provides the random-variate samplers used by the workload
// generators: memoryless (exponential) draws for the paper's "micro"
// traces, heavy-tailed and empirical alternatives, and a two-phase
// Markov-modulated Poisson process (MMPP) with a KPC-Toolbox-style
// moment-matching fit for the paper's "synthetic" traces (Sec. IV-A).
package dist

import (
	"fmt"
	"math"
	"sort"

	"srcsim/internal/sim"
)

// Sampler produces positive random variates (inter-arrival times in
// microseconds, request sizes in bytes, ...). Implementations draw from
// the RNG passed at construction, so identical seeds give identical
// streams.
type Sampler interface {
	// Sample returns the next variate. Values are always > 0.
	Sample() float64
	// Mean returns the theoretical mean of the distribution.
	Mean() float64
}

// Exponential is a memoryless sampler. Exponential inter-arrivals and
// sizes define the paper's micro traces.
type Exponential struct {
	mean float64
	rng  *sim.RNG
}

// NewExponential returns an exponential sampler with the given mean.
func NewExponential(mean float64, rng *sim.RNG) *Exponential {
	if mean <= 0 {
		panic(fmt.Sprintf("dist: exponential mean %v must be positive", mean))
	}
	return &Exponential{mean: mean, rng: rng}
}

// Sample implements Sampler.
func (e *Exponential) Sample() float64 {
	v := e.rng.Exp(e.mean)
	if v <= 0 {
		v = e.mean * 1e-9
	}
	return v
}

// Mean implements Sampler.
func (e *Exponential) Mean() float64 { return e.mean }

// Constant always returns the same value; useful for deterministic tests
// and fixed-size workloads.
type Constant struct{ V float64 }

// Sample implements Sampler.
func (c Constant) Sample() float64 { return c.V }

// Mean implements Sampler.
func (c Constant) Mean() float64 { return c.V }

// Uniform samples uniformly from [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
	rng    *sim.RNG
}

// NewUniform returns a uniform sampler on [lo, hi).
func NewUniform(lo, hi float64, rng *sim.RNG) *Uniform {
	if hi <= lo {
		panic(fmt.Sprintf("dist: uniform range [%v,%v) empty", lo, hi))
	}
	return &Uniform{Lo: lo, Hi: hi, rng: rng}
}

// Sample implements Sampler.
func (u *Uniform) Sample() float64 { return u.Lo + (u.Hi-u.Lo)*u.rng.Float64() }

// Mean implements Sampler.
func (u *Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// LogNormal samples a log-normal with the given (linear-space) mean and
// squared coefficient of variation; request-size distributions in block
// traces are commonly log-normal-like.
type LogNormal struct {
	mu, sigma float64
	mean      float64
	rng       *sim.RNG
}

// NewLogNormal builds a log-normal sampler with target mean and SCV.
func NewLogNormal(mean, scv float64, rng *sim.RNG) *LogNormal {
	if mean <= 0 || scv <= 0 {
		panic(fmt.Sprintf("dist: lognormal mean %v scv %v must be positive", mean, scv))
	}
	sigma2 := math.Log(1 + scv)
	mu := math.Log(mean) - sigma2/2
	return &LogNormal{mu: mu, sigma: math.Sqrt(sigma2), mean: mean, rng: rng}
}

// Sample implements Sampler.
func (l *LogNormal) Sample() float64 { return math.Exp(l.rng.Norm(l.mu, l.sigma)) }

// Mean implements Sampler.
func (l *LogNormal) Mean() float64 { return l.mean }

// BoundedPareto samples a Pareto truncated to [Lo, Hi] with shape Alpha;
// a standard model for heavy-tailed request sizes.
type BoundedPareto struct {
	Lo, Hi, Alpha float64
	rng           *sim.RNG
}

// NewBoundedPareto returns a bounded Pareto sampler.
func NewBoundedPareto(lo, hi, alpha float64, rng *sim.RNG) *BoundedPareto {
	if lo <= 0 || hi <= lo || alpha <= 0 {
		panic(fmt.Sprintf("dist: bounded pareto params lo=%v hi=%v alpha=%v invalid", lo, hi, alpha))
	}
	return &BoundedPareto{Lo: lo, Hi: hi, Alpha: alpha, rng: rng}
}

// Sample implements Sampler (inverse-CDF method).
func (p *BoundedPareto) Sample() float64 {
	u := p.rng.Float64()
	la := math.Pow(p.Lo, p.Alpha)
	ha := math.Pow(p.Hi, p.Alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/p.Alpha)
}

// Mean implements Sampler.
func (p *BoundedPareto) Mean() float64 {
	a := p.Alpha
	if a == 1 {
		return p.Lo * p.Hi / (p.Hi - p.Lo) * math.Log(p.Hi/p.Lo)
	}
	la := math.Pow(p.Lo, a)
	return la / (1 - math.Pow(p.Lo/p.Hi, a)) * a / (a - 1) *
		(1/math.Pow(p.Lo, a-1) - 1/math.Pow(p.Hi, a-1))
}

// Empirical samples with replacement from observed values; used to replay
// the marginal distribution of an existing trace.
type Empirical struct {
	values []float64
	mean   float64
	rng    *sim.RNG
}

// NewEmpirical returns a sampler over a copy of values.
func NewEmpirical(values []float64, rng *sim.RNG) *Empirical {
	if len(values) == 0 {
		panic("dist: empirical sampler needs at least one value")
	}
	cp := append([]float64(nil), values...)
	var s float64
	for _, v := range cp {
		s += v
	}
	return &Empirical{values: cp, mean: s / float64(len(cp)), rng: rng}
}

// Sample implements Sampler.
func (e *Empirical) Sample() float64 { return e.values[e.rng.Intn(len(e.values))] }

// Mean implements Sampler.
func (e *Empirical) Mean() float64 { return e.mean }

// Quantile returns the q-th (0..1) quantile of the empirical data.
func (e *Empirical) Quantile(q float64) float64 {
	sorted := append([]float64(nil), e.values...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	return sorted[int(q*float64(len(sorted)))]
}
