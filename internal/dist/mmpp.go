package dist

import (
	"fmt"
	"math"

	"srcsim/internal/sim"
)

// MMPP2 is a two-phase Markov-modulated Poisson process: a continuous-time
// Markov chain alternating between two states with arrival rates Lambda1
// and Lambda2 and switching rates R1 (state 1 → 2) and R2 (state 2 → 1).
// It is the bursty arrival model the paper uses ("a two-phase MAP process
// that can be used to generate inter-arrival time and request size with
// bursts") to regenerate SNIA traces from their statistics.
//
// All rates are per unit time; Sample returns inter-arrival times in the
// same unit.
type MMPP2 struct {
	Lambda1, Lambda2 float64
	R1, R2           float64

	state int // 0 or 1
	rng   *sim.RNG
}

// NewMMPP2 returns a generator with the given rates, starting from the
// stationary state distribution.
func NewMMPP2(lambda1, lambda2, r1, r2 float64, rng *sim.RNG) *MMPP2 {
	if lambda1 < 0 || lambda2 < 0 || r1 <= 0 || r2 <= 0 {
		panic(fmt.Sprintf("dist: invalid MMPP2 rates λ=(%v,%v) r=(%v,%v)", lambda1, lambda2, r1, r2))
	}
	if lambda1 == 0 && lambda2 == 0 {
		panic("dist: MMPP2 with no arrivals in either state")
	}
	m := &MMPP2{Lambda1: lambda1, Lambda2: lambda2, R1: r1, R2: r2, rng: rng}
	// Start from the stationary distribution of the modulating chain.
	if rng.Float64() < r1/(r1+r2) {
		m.state = 1
	}
	return m
}

// Sample implements Sampler: it returns the time until the next arrival,
// advancing the modulating chain through any state switches in between.
func (m *MMPP2) Sample() float64 {
	var elapsed float64
	for {
		lambda, r := m.Lambda1, m.R1
		if m.state == 1 {
			lambda, r = m.Lambda2, m.R2
		}
		tSwitch := m.rng.Exp(1 / r)
		if lambda <= 0 {
			// No arrivals in this state: wait out the sojourn.
			elapsed += tSwitch
			m.state = 1 - m.state
			continue
		}
		tArrive := m.rng.Exp(1 / lambda)
		if tArrive < tSwitch {
			elapsed += tArrive
			if elapsed <= 0 {
				elapsed = 1e-12
			}
			return elapsed
		}
		elapsed += tSwitch
		m.state = 1 - m.state
	}
}

// Mean implements Sampler: the stationary mean inter-arrival time.
func (m *MMPP2) Mean() float64 {
	mean, _, _ := m.Moments()
	return mean
}

// Moments returns the exact stationary inter-arrival mean, SCV, and lag-1
// autocorrelation of the process, computed from the MAP representation
// (D0, D1) with 2×2 linear algebra:
//
//	E[X]     = πa·M·1          M  = (−D0)⁻¹
//	E[X²]    = 2·πa·M²·1       πa = φ·D1 / λ̄
//	E[X0·X1] = πa·M·P·M·1      P  = M·D1
func (m *MMPP2) Moments() (mean, scv, rho1 float64) {
	l1, l2, r1, r2 := m.Lambda1, m.Lambda2, m.R1, m.R2
	// Stationary distribution of the modulating chain.
	phi := vec2{r2 / (r1 + r2), r1 / (r1 + r2)}
	lbar := phi[0]*l1 + phi[1]*l2
	if lbar <= 0 {
		return 0, 0, 0
	}
	d0 := mat2{-(l1 + r1), r1, r2, -(l2 + r2)}
	d1 := mat2{l1, 0, 0, l2}
	minusD0 := mat2{-d0[0], -d0[1], -d0[2], -d0[3]}
	M, ok := minusD0.inverse()
	if !ok {
		return 0, 0, 0
	}
	pa := vec2{phi[0] * l1 / lbar, phi[1] * l2 / lbar}
	one := vec2{1, 1}
	ex := pa.dot(M.mulVec(one))
	ex2 := 2 * pa.dot(M.mulMat(M).mulVec(one))
	variance := ex2 - ex*ex
	if variance <= 0 {
		return ex, 0, 0
	}
	scv = variance / (ex * ex)
	P := M.mulMat(d1)
	ex0x1 := pa.dot(M.mulMat(P).mulMat(M).mulVec(one))
	rho1 = (ex0x1 - ex*ex) / variance
	return ex, scv, rho1
}

// vec2 and mat2 are minimal fixed-size linear algebra helpers; mat2 is
// row-major [a b; c d].
type vec2 [2]float64
type mat2 [4]float64

func (v vec2) dot(w vec2) float64 { return v[0]*w[0] + v[1]*w[1] }

func (a mat2) mulVec(v vec2) vec2 {
	return vec2{a[0]*v[0] + a[1]*v[1], a[2]*v[0] + a[3]*v[1]}
}

func (a mat2) mulMat(b mat2) mat2 {
	return mat2{
		a[0]*b[0] + a[1]*b[2], a[0]*b[1] + a[1]*b[3],
		a[2]*b[0] + a[3]*b[2], a[2]*b[1] + a[3]*b[3],
	}
}

func (a mat2) inverse() (mat2, bool) {
	det := a[0]*a[3] - a[1]*a[2]
	if det == 0 || math.IsNaN(det) || math.IsInf(det, 0) {
		return mat2{}, false
	}
	return mat2{a[3] / det, -a[1] / det, -a[2] / det, a[0] / det}, true
}

// MMPP2Params carries fitted process rates.
type MMPP2Params struct {
	Lambda1, Lambda2, R1, R2 float64
}

// New instantiates a generator from the fitted parameters.
func (p MMPP2Params) New(rng *sim.RNG) *MMPP2 {
	return NewMMPP2(p.Lambda1, p.Lambda2, p.R1, p.R2, rng)
}

// FitMMPP2 finds MMPP(2) rates whose stationary inter-arrival process
// matches the target mean, SCV, and lag-1 autocorrelation. This is the
// KPC-Toolbox workflow the paper cites: extract statistics from a real
// trace, then regenerate a bursty synthetic trace from the fitted MAP.
//
// Feasibility: an MMPP(2) cannot represent scv < 1 or negative
// correlation, and its lag-1 autocorrelation is bounded by
// (scv-1)/(2·scv) — the MAP(2) frontier, which vanishes as scv → 1.
// Targets are clamped to scv ≥ 1 and rho1 ∈ [0, min(0.45, frontier)].
// For scv very close to 1 the fit degenerates to (nearly) a Poisson
// process.
func FitMMPP2(mean, scv, rho1 float64) (MMPP2Params, error) {
	if mean <= 0 {
		return MMPP2Params{}, fmt.Errorf("dist: FitMMPP2 mean %v must be positive", mean)
	}
	if scv < 1.001 {
		// Effectively Poisson: equal rates, arbitrary fast switching.
		l := 1 / mean
		return MMPP2Params{Lambda1: l, Lambda2: l, R1: 10 * l, R2: 10 * l}, nil
	}
	if rho1 < 0 {
		rho1 = 0
	}
	if max := (scv - 1) / (2 * scv); rho1 > max {
		rho1 = max
	}
	if rho1 > 0.45 {
		rho1 = 0.45
	}

	target := [3]float64{mean, scv, rho1}
	objective := func(x []float64) float64 {
		// Parameters live in log space to stay positive.
		p := MMPP2Params{
			Lambda1: math.Exp(x[0]), Lambda2: math.Exp(x[1]),
			R1: math.Exp(x[2]), R2: math.Exp(x[3]),
		}
		m := &MMPP2{Lambda1: p.Lambda1, Lambda2: p.Lambda2, R1: p.R1, R2: p.R2}
		gm, gs, gr := m.Moments()
		if gm <= 0 || math.IsNaN(gs) || math.IsNaN(gr) {
			return 1e12
		}
		em := (gm - target[0]) / target[0]
		es := (gs - target[1]) / target[1]
		er := gr - target[2]
		return em*em + es*es + 4*er*er
	}

	// Heuristic start: a fast bursty state and a slow background state
	// with sojourns long relative to the mean inter-arrival.
	l := 1 / mean
	burst := l * (1 + scv)
	slow := l / (1 + scv)
	start := []float64{math.Log(burst), math.Log(slow), math.Log(l / 20), math.Log(l / 20)}

	best, bestVal := nelderMead(objective, start, 3000)
	// Restart from a couple of alternative seeds; the surface is mildly
	// multimodal for high-correlation targets.
	for _, scale := range []float64{5, 50} {
		alt := []float64{math.Log(burst * 2), math.Log(slow / 2),
			math.Log(l / scale), math.Log(l / scale)}
		cand, v := nelderMead(objective, alt, 3000)
		if v < bestVal {
			best, bestVal = cand, v
		}
	}
	if bestVal > 0.05 {
		return MMPP2Params{}, fmt.Errorf("dist: FitMMPP2 failed to converge (residual %.4g) for mean=%v scv=%v rho1=%v", bestVal, mean, scv, rho1)
	}
	return MMPP2Params{
		Lambda1: math.Exp(best[0]), Lambda2: math.Exp(best[1]),
		R1: math.Exp(best[2]), R2: math.Exp(best[3]),
	}, nil
}
