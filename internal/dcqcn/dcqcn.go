// Package dcqcn implements the DCQCN congestion-control algorithm (Zhu et
// al., SIGCOMM 2015) used as the paper's baseline network congestion
// control: the reaction point (RP) rate state machine at senders, the
// notification point (NP) CNP pacing at receivers, and the congestion
// point (CP) RED-style ECN marking at switch queues.
//
// The RP exposes a rate-change callback; internal/core treats every rate
// decrease as a "pause" event and every increase as a "retrieval" event —
// the congestion signals SRC consumes (Alg. 1).
package dcqcn

import (
	"fmt"

	"srcsim/internal/obs"
	"srcsim/internal/obs/timeseries"
	"srcsim/internal/sim"
)

// Config holds the DCQCN constants. Defaults (via WithDefaults) follow
// the values commonly used in the DCQCN paper and its NS3 model.
type Config struct {
	// G is the alpha EWMA gain (default 1/256).
	G float64
	// LineRate is the NIC line rate in bits/s (default 40 Gbps).
	LineRate float64
	// MinRate is the rate floor in bits/s (default 40 Mbps).
	MinRate float64
	// AlphaTimer is the alpha-decay period without CNPs (default 55 µs).
	AlphaTimer sim.Time
	// IncreaseTimer drives time-based rate increase (default 300 µs).
	IncreaseTimer sim.Time
	// ByteCounter drives byte-based rate increase (default 10 MB).
	ByteCounter int64
	// FastRecoverySteps is F, the stages of fast recovery (default 5).
	FastRecoverySteps int
	// RaiBps is the additive increase step (default 40 Mbps).
	RaiBps float64
	// RhaiBps is the hyper increase step (default 200 Mbps).
	RhaiBps float64
	// CNPInterval is the NP's minimum gap between CNPs (default 50 µs).
	CNPInterval sim.Time
	// ECNKmin/ECNKmax/ECNPmax parameterise CP marking: below Kmin bytes
	// no marks, above Kmax always mark, linear Pmax ramp in between
	// (defaults 64 KiB / 512 KiB / 0.2).
	ECNKmin int64
	ECNKmax int64
	ECNPmax float64
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.G <= 0 {
		c.G = 1.0 / 256
	}
	if c.LineRate <= 0 {
		c.LineRate = 40e9
	}
	if c.MinRate <= 0 {
		c.MinRate = 40e6
	}
	if c.AlphaTimer <= 0 {
		c.AlphaTimer = 55 * sim.Microsecond
	}
	if c.IncreaseTimer <= 0 {
		c.IncreaseTimer = 300 * sim.Microsecond
	}
	if c.ByteCounter <= 0 {
		c.ByteCounter = 10 << 20
	}
	if c.FastRecoverySteps <= 0 {
		c.FastRecoverySteps = 5
	}
	if c.RaiBps <= 0 {
		c.RaiBps = 40e6
	}
	if c.RhaiBps <= 0 {
		c.RhaiBps = 200e6
	}
	if c.CNPInterval <= 0 {
		c.CNPInterval = 50 * sim.Microsecond
	}
	if c.ECNKmin <= 0 {
		c.ECNKmin = 64 << 10
	}
	if c.ECNKmax <= 0 {
		c.ECNKmax = 512 << 10
	}
	if c.ECNPmax <= 0 {
		c.ECNPmax = 0.2
	}
	return c
}

// Validate reports nonsensical parameter combinations.
func (c Config) Validate() error {
	c = c.WithDefaults()
	if c.MinRate > c.LineRate {
		return fmt.Errorf("dcqcn: MinRate %v exceeds LineRate %v", c.MinRate, c.LineRate)
	}
	if c.ECNKmin >= c.ECNKmax {
		return fmt.Errorf("dcqcn: Kmin %d >= Kmax %d", c.ECNKmin, c.ECNKmax)
	}
	if c.ECNPmax <= 0 || c.ECNPmax > 1 {
		return fmt.Errorf("dcqcn: Pmax %v outside (0,1]", c.ECNPmax)
	}
	return nil
}

// MarkProbability is the CP function: the ECN marking probability for a
// packet arriving at a queue holding queueBytes.
func (c Config) MarkProbability(queueBytes int64) float64 {
	switch {
	case queueBytes <= c.ECNKmin:
		return 0
	case queueBytes >= c.ECNKmax:
		return 1
	default:
		return c.ECNPmax * float64(queueBytes-c.ECNKmin) / float64(c.ECNKmax-c.ECNKmin)
	}
}

// RP is the per-flow reaction point at a sender. It tracks the current
// rate Rc, target rate Rt, and congestion estimate alpha, and invokes
// OnRate on every rate change.
type RP struct {
	cfg Config
	eng *sim.Engine

	// OnRate, if set, observes every rate change (old, new in bits/s).
	OnRate func(oldRate, newRate float64)

	// Obs, if set, feeds the observability layer (metrics + timeline);
	// nil costs one pointer test per rate change.
	Obs *RPObs

	rc, rt float64
	alpha  float64

	cnpSinceAlpha bool
	bytesSinceInc int64
	timeStage     int
	byteStage     int

	alphaEv    sim.Handle
	increaseEv sim.Handle
	// Tick callbacks bound once so timer re-arms do not allocate a
	// method-value closure per period.
	alphaTickFn    func()
	increaseTickFn func()
	active         bool

	// Counters.
	CNPs          uint64
	RateDecreases uint64
	RateIncreases uint64
}

// NewRP returns a reaction point starting at line rate.
func NewRP(eng *sim.Engine, cfg Config) *RP {
	cfg = cfg.WithDefaults()
	rp := &RP{
		cfg:   cfg,
		eng:   eng,
		rc:    cfg.LineRate,
		rt:    cfg.LineRate,
		alpha: 1,
	}
	rp.alphaTickFn = rp.alphaTick
	rp.increaseTickFn = rp.increaseTick
	return rp
}

// Rate returns the current sending rate Rc in bits/s.
func (rp *RP) Rate() float64 { return rp.rc }

// TargetRate returns Rt in bits/s.
func (rp *RP) TargetRate() float64 { return rp.rt }

// Alpha returns the congestion estimate.
func (rp *RP) Alpha() float64 { return rp.alpha }

// notify reports a rate change.
func (rp *RP) notify(old float64) {
	if rp.rc == old {
		return
	}
	if rp.OnRate != nil {
		rp.OnRate(old, rp.rc)
	}
	if rp.Obs != nil {
		rp.Obs.onRate(rp, old)
	}
}

// RPObs is the per-RP instrumentation hookup: shared counters from the
// metrics registry plus a trace scope for the rate timeline. The fabric
// attaches one per flow when observability is on.
type RPObs struct {
	// Scope receives the rate counter track, CNP instants, and
	// "throttled" spans (line-rate departure to full recovery).
	Scope *obs.Scope
	// Name labels this RP's trace events, e.g. "flow3 t0>i0".
	Name string

	// CNPs, RateCuts, and RateIncreases are registry counters, usually
	// shared across every flow of a fabric.
	CNPs          *obs.Counter
	RateCuts      *obs.Counter
	RateIncreases *obs.Counter
	// CutDepth observes the percentage of rate removed per CNP.
	CutDepth *obs.Histogram

	throttled      bool
	throttledSince sim.Time
}

// onCNP records the congestion signal itself; rate movement is handled
// by onRate via notify.
func (o *RPObs) onCNP(rp *RP, old float64) {
	o.CNPs.Inc()
	if old > 0 {
		o.CutDepth.Observe((1 - rp.rc/old) * 100)
	}
	if o.Scope.Enabled() {
		o.Scope.Instant(rp.eng.Now(), "dcqcn", "cnp "+o.Name)
	}
}

// onRate tracks cut/increase counters, the rate timeline, and the
// throttled span covering each congestion episode.
func (o *RPObs) onRate(rp *RP, old float64) {
	if rp.rc < old {
		o.RateCuts.Inc()
	} else {
		o.RateIncreases.Inc()
	}
	now := rp.eng.Now()
	if o.Scope.Enabled() {
		o.Scope.Counter(now, "dcqcn", "rate_gbps "+o.Name, rp.rc/1e9)
	}
	line := rp.cfg.LineRate
	switch {
	case !o.throttled && rp.rc < old && old >= line:
		o.throttled = true
		o.throttledSince = now
	case o.throttled && rp.rc >= line:
		o.throttled = false
		if o.Scope.Enabled() {
			o.Scope.Span("dcqcn", "throttled "+o.Name, o.throttledSince, now)
		}
	}
}

// OnCongestionSignal implements netsim.RateController: DCQCN reacts to
// CNPs.
func (rp *RP) OnCongestionSignal() { rp.OnCNP() }

// OnAck implements netsim.RateController; DCQCN is ECN-driven and
// ignores RTT samples.
func (rp *RP) OnAck(sim.Time) {}

// NeedsAck implements netsim.RateController: DCQCN needs no per-packet
// acknowledgements.
func (rp *RP) NeedsAck() bool { return false }

// SetRateListener implements netsim.RateController.
func (rp *RP) SetRateListener(fn func(oldRate, newRate float64)) { rp.OnRate = fn }

// OnCNP applies the DCQCN rate-decrease step for one received CNP.
func (rp *RP) OnCNP() {
	rp.CNPs++
	old := rp.rc
	rp.alpha = (1-rp.cfg.G)*rp.alpha + rp.cfg.G
	rp.rt = rp.rc
	rp.rc = rp.rc * (1 - rp.alpha/2)
	if rp.rc < rp.cfg.MinRate {
		rp.rc = rp.cfg.MinRate
	}
	rp.cnpSinceAlpha = true
	rp.timeStage, rp.byteStage = 0, 0
	rp.bytesSinceInc = 0
	rp.RateDecreases++
	if rp.Obs != nil {
		rp.Obs.onCNP(rp, old)
	}
	rp.armTimers()
	rp.notify(old)
}

// OnBytesSent feeds the byte counter that drives byte-based increases.
func (rp *RP) OnBytesSent(n int) {
	if !rp.active {
		return
	}
	rp.bytesSinceInc += int64(n)
	for rp.bytesSinceInc >= rp.cfg.ByteCounter {
		rp.bytesSinceInc -= rp.cfg.ByteCounter
		rp.byteStage++
		rp.increase()
	}
}

// armTimers (re)starts the alpha-decay and rate-increase timers; they
// stop themselves once the flow returns to line rate.
func (rp *RP) armTimers() {
	rp.active = true
	if rp.alphaEv.Cancelled() {
		rp.alphaEv = rp.eng.After(rp.cfg.AlphaTimer, rp.alphaTickFn)
	}
	if rp.increaseEv.Cancelled() {
		rp.increaseEv = rp.eng.After(rp.cfg.IncreaseTimer, rp.increaseTickFn)
	}
}

func (rp *RP) alphaTick() {
	if !rp.cnpSinceAlpha {
		rp.alpha = (1 - rp.cfg.G) * rp.alpha
	}
	rp.cnpSinceAlpha = false
	if rp.active {
		rp.alphaEv = rp.eng.After(rp.cfg.AlphaTimer, rp.alphaTickFn)
	}
}

func (rp *RP) increaseTick() {
	rp.timeStage++
	rp.increase()
	if rp.active {
		rp.increaseEv = rp.eng.After(rp.cfg.IncreaseTimer, rp.increaseTickFn)
	}
}

// increase applies one DCQCN rate-increase step. Stage selection follows
// the algorithm: fast recovery until either counter passes F, additive
// when one has, hyper when both have.
func (rp *RP) increase() {
	old := rp.rc
	f := rp.cfg.FastRecoverySteps
	switch {
	case rp.timeStage < f && rp.byteStage < f:
		// Fast recovery: halve the gap to the target.
	case rp.timeStage >= f && rp.byteStage >= f:
		rp.rt += rp.cfg.RhaiBps
	default:
		rp.rt += rp.cfg.RaiBps
	}
	if rp.rt > rp.cfg.LineRate {
		rp.rt = rp.cfg.LineRate
	}
	rp.rc = (rp.rt + rp.rc) / 2
	if rp.rc > rp.cfg.LineRate {
		rp.rc = rp.cfg.LineRate
	}
	if rp.rc > old {
		rp.RateIncreases++
	}
	// Idle the timers once fully recovered and calm.
	if rp.rc >= rp.cfg.LineRate && rp.alpha < 1e-3 {
		rp.active = false
	}
	rp.notify(old)
}

// NP is the per-flow notification point at a receiver: it decides
// whether an arriving ECN-marked packet should trigger a CNP, enforcing
// the minimum CNP interval.
type NP struct {
	cfg     Config
	lastCNP sim.Time
	hasSent bool

	// CNPsSent counts emitted CNPs.
	CNPsSent uint64
}

// NewNP returns a notification point.
func NewNP(cfg Config) *NP {
	return &NP{cfg: cfg.WithDefaults()}
}

// OnMarkedPacket reports whether a CNP should be sent for an ECN-marked
// packet arriving at time now.
func (np *NP) OnMarkedPacket(now sim.Time) bool {
	if np.hasSent && now-np.lastCNP < np.cfg.CNPInterval {
		return false
	}
	np.lastCNP = now
	np.hasSent = true
	np.CNPsSent++
	return true
}

// SampleSeries is the reaction point's flight-recorder probe: the
// current/target sending rates and the congestion estimate, emitted
// under per-flow names built from prefix. Read-only.
func (rp *RP) SampleSeries(track, prefix string, emit timeseries.Emit) {
	emit(track, prefix+"_rate_gbps", timeseries.Gauge, rp.rc/1e9)
	emit(track, prefix+"_target_gbps", timeseries.Gauge, rp.rt/1e9)
	emit(track, prefix+"_alpha", timeseries.Gauge, rp.alpha)
}
