package dcqcn

import (
	"math"
	"testing"

	"srcsim/internal/sim"
)

func TestConfigDefaultsAndValidate(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.G != 1.0/256 || c.LineRate != 40e9 || c.FastRecoverySteps != 5 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := c
	bad.MinRate = 80e9
	if err := bad.Validate(); err == nil {
		t.Fatal("MinRate > LineRate should fail")
	}
	bad = c
	bad.ECNKmin, bad.ECNKmax = 100, 50
	if err := bad.Validate(); err == nil {
		t.Fatal("Kmin >= Kmax should fail")
	}
	bad = c
	bad.ECNPmax = 2
	if err := bad.Validate(); err == nil {
		t.Fatal("Pmax > 1 should fail")
	}
}

func TestMarkProbabilityRamp(t *testing.T) {
	c := Config{ECNKmin: 100, ECNKmax: 300, ECNPmax: 0.5}.WithDefaults()
	if p := c.MarkProbability(50); p != 0 {
		t.Fatalf("below Kmin p=%v", p)
	}
	if p := c.MarkProbability(100); p != 0 {
		t.Fatalf("at Kmin p=%v", p)
	}
	if p := c.MarkProbability(200); math.Abs(p-0.25) > 1e-12 {
		t.Fatalf("midpoint p=%v, want 0.25", p)
	}
	if p := c.MarkProbability(300); p != 1 {
		t.Fatalf("at Kmax p=%v, want 1", p)
	}
	if p := c.MarkProbability(1 << 30); p != 1 {
		t.Fatalf("above Kmax p=%v", p)
	}
}

func TestRPStartsAtLineRate(t *testing.T) {
	eng := sim.NewEngine()
	rp := NewRP(eng, Config{LineRate: 10e9})
	if rp.Rate() != 10e9 || rp.TargetRate() != 10e9 {
		t.Fatalf("initial rates %v/%v", rp.Rate(), rp.TargetRate())
	}
}

func TestCNPCutsRate(t *testing.T) {
	eng := sim.NewEngine()
	rp := NewRP(eng, Config{LineRate: 40e9})
	var events []float64
	rp.OnRate = func(_, newRate float64) { events = append(events, newRate) }
	rp.OnCNP()
	// First CNP: alpha = (1-g)*1+g = 1 -> Rc cut by alpha/2 = 50%.
	want := 40e9 * 0.5
	if math.Abs(rp.Rate()-want)/want > 1e-9 {
		t.Fatalf("rate after first CNP %v, want %v", rp.Rate(), want)
	}
	if rp.TargetRate() != 40e9 {
		t.Fatalf("target after CNP %v, want old rate", rp.TargetRate())
	}
	if len(events) != 1 || events[0] != want {
		t.Fatalf("rate events %v", events)
	}
	if rp.CNPs != 1 || rp.RateDecreases != 1 {
		t.Fatalf("counters %d/%d", rp.CNPs, rp.RateDecreases)
	}
}

func TestRepeatedCNPsFloorAtMinRate(t *testing.T) {
	eng := sim.NewEngine()
	rp := NewRP(eng, Config{LineRate: 40e9, MinRate: 100e6})
	for i := 0; i < 100; i++ {
		rp.OnCNP()
	}
	if rp.Rate() != 100e6 {
		t.Fatalf("rate %v, want MinRate floor", rp.Rate())
	}
}

func TestFastRecoveryHalvesGap(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{LineRate: 40e9, IncreaseTimer: 100 * sim.Microsecond}
	rp := NewRP(eng, cfg)
	rp.OnCNP() // rc=20G, rt=40G
	eng.Run(100 * sim.Microsecond)
	// One fast-recovery step: rc = (rt+rc)/2 = 30G.
	if math.Abs(rp.Rate()-30e9)/30e9 > 1e-9 {
		t.Fatalf("after 1 FR step rate %v, want 30e9", rp.Rate())
	}
	eng.Run(200 * sim.Microsecond)
	if math.Abs(rp.Rate()-35e9)/35e9 > 1e-9 {
		t.Fatalf("after 2 FR steps rate %v, want 35e9", rp.Rate())
	}
}

func TestRecoveryConvergesToLineRate(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{LineRate: 40e9, IncreaseTimer: 55 * sim.Microsecond}
	rp := NewRP(eng, cfg)
	for i := 0; i < 10; i++ {
		rp.OnCNP()
	}
	if rp.Rate() >= 1e9 {
		t.Fatalf("rate after 10 CNPs %v should be well below line", rp.Rate())
	}
	eng.Run(2 * sim.Second)
	if rp.Rate() < 40e9*0.999 {
		t.Fatalf("rate %v did not recover to line rate", rp.Rate())
	}
	if rp.Rate() > 40e9 {
		t.Fatalf("rate %v exceeds line rate", rp.Rate())
	}
}

func TestTimersIdleAfterRecovery(t *testing.T) {
	eng := sim.NewEngine()
	rp := NewRP(eng, Config{LineRate: 40e9, IncreaseTimer: 55 * sim.Microsecond})
	rp.OnCNP()
	eng.Run(5 * sim.Second)
	if rp.active {
		t.Fatal("RP timers still active long after recovery")
	}
	pendingBefore := eng.Pending()
	eng.Run(6 * sim.Second)
	if eng.Pending() > pendingBefore {
		t.Fatal("idle RP keeps scheduling events")
	}
}

func TestAlphaDecaysWithoutCNPs(t *testing.T) {
	eng := sim.NewEngine()
	rp := NewRP(eng, Config{LineRate: 40e9})
	rp.OnCNP()
	a0 := rp.Alpha()
	eng.Run(50 * sim.Millisecond)
	if rp.Alpha() >= a0*0.5 {
		t.Fatalf("alpha %v did not decay from %v", rp.Alpha(), a0)
	}
}

func TestAlphaRisesUnderSustainedCNPs(t *testing.T) {
	eng := sim.NewEngine()
	rp := NewRP(eng, Config{LineRate: 40e9})
	// Let the initial alpha=1 decay during a calm period first.
	rp.OnCNP()
	eng.Run(50 * sim.Millisecond)
	low := rp.Alpha()
	if low >= 0.5 {
		t.Fatalf("setup: alpha %v should have decayed", low)
	}
	// Sustained congestion: alpha climbs back toward 1.
	stop := eng.Ticker(20*sim.Microsecond, rp.OnCNP)
	eng.Run(60 * sim.Millisecond)
	stop()
	if rp.Alpha() <= low*2 {
		t.Fatalf("alpha %v did not rise from %v under sustained CNPs", rp.Alpha(), low)
	}
}

func TestByteCounterTriggersIncrease(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{LineRate: 40e9, ByteCounter: 1 << 20, IncreaseTimer: sim.Second}
	rp := NewRP(eng, cfg)
	rp.OnCNP() // 20G
	before := rp.Rate()
	rp.OnBytesSent(2 << 20) // two byte-counter stages
	if rp.Rate() <= before {
		t.Fatalf("byte-counter increase did not raise rate: %v", rp.Rate())
	}
}

func TestHyperIncreaseAfterBothCountersPassF(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{LineRate: 40e9, ByteCounter: 1 << 10, IncreaseTimer: 10 * sim.Microsecond,
		RaiBps: 40e6, RhaiBps: 1e9}
	rp := NewRP(eng, cfg)
	rp.OnCNP()
	// Push both counters past F=5.
	rp.OnBytesSent(10 << 10)
	eng.Run(100 * sim.Microsecond)
	// Target rate should have grown by hyper steps (>= 1G somewhere).
	if rp.TargetRate() <= 20e9+5*40e6 {
		t.Fatalf("hyper increase not engaged: rt=%v", rp.TargetRate())
	}
}

func TestNPPacesCNPs(t *testing.T) {
	np := NewNP(Config{CNPInterval: 50 * sim.Microsecond})
	if !np.OnMarkedPacket(0) {
		t.Fatal("first marked packet must trigger CNP")
	}
	if np.OnMarkedPacket(10 * sim.Microsecond) {
		t.Fatal("CNP within interval must be suppressed")
	}
	if np.OnMarkedPacket(49 * sim.Microsecond) {
		t.Fatal("CNP within interval must be suppressed")
	}
	if !np.OnMarkedPacket(50 * sim.Microsecond) {
		t.Fatal("CNP after interval must fire")
	}
	if np.CNPsSent != 2 {
		t.Fatalf("CNPsSent = %d", np.CNPsSent)
	}
}

func TestRateNeverExceedsLineOrFallsBelowMin(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{LineRate: 10e9, MinRate: 50e6, IncreaseTimer: 30 * sim.Microsecond}
	rp := NewRP(eng, cfg)
	rng := sim.NewRNG(5)
	violations := 0
	rp.OnRate = func(_, newRate float64) {
		if newRate > 10e9+1 || newRate < 50e6-1 {
			violations++
		}
	}
	// Random CNP storms interleaved with recovery periods.
	var storm func()
	storm = func() {
		if eng.Now() > 500*sim.Millisecond {
			return
		}
		if rng.Float64() < 0.4 {
			rp.OnCNP()
		}
		rp.OnBytesSent(rng.Intn(1 << 20))
		eng.After(sim.Time(rng.Intn(int(200*sim.Microsecond)))+1, storm)
	}
	eng.After(0, storm)
	eng.RunUntilIdle()
	if violations > 0 {
		t.Fatalf("%d rate bound violations", violations)
	}
}

func BenchmarkRPCNPAndRecovery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		rp := NewRP(eng, Config{})
		for j := 0; j < 10; j++ {
			rp.OnCNP()
		}
		eng.Run(50 * sim.Millisecond)
	}
}
