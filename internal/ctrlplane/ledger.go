package ctrlplane

import (
	"srcsim/internal/guard"
	"srcsim/internal/obs"
	"srcsim/internal/obs/timeseries"
	"srcsim/internal/sim"
)

// EpochStep is one entry of the epoch ledger: boot, crash, failover,
// restart, restart-fenced, and reconverged (the first directive of a
// new epoch applied at an agent — the moment the new controller is
// demonstrably steering again).
type EpochStep struct {
	AtMs   float64 `json:"at_ms"`
	Epoch  uint64  `json:"epoch"`
	Reason string  `json:"reason"`
}

// Ledger is the control plane's message and liveness accounting. The
// channel-conservation invariant is Sent == Delivered + Dropped +
// InFlight; the directive invariant is DirectivesDelivered ==
// DirectivesApplied + StaleRejected + DupsAcked.
type Ledger struct {
	Epoch     uint64 `json:"epoch"`
	Sent      uint64 `json:"sent"`
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped,omitempty"`
	InFlight  uint64 `json:"in_flight,omitempty"`

	TelemetryBatches          uint64 `json:"telemetry_batches,omitempty"`
	TelemetryDropped          uint64 `json:"telemetry_dropped,omitempty"`
	TelemetryReorderedDropped uint64 `json:"telemetry_reordered_dropped,omitempty"`
	RateEvents                uint64 `json:"rate_events,omitempty"`

	DirectivesSent      uint64 `json:"directives_sent,omitempty"`
	DirectivesDelivered uint64 `json:"directives_delivered,omitempty"`
	DirectivesApplied   uint64 `json:"directives_applied,omitempty"`
	DirectiveRetries    uint64 `json:"directive_retries,omitempty"`
	DirectivesAbandoned uint64 `json:"directives_abandoned,omitempty"`
	StaleRejected       uint64 `json:"stale_rejected,omitempty"`
	StaleHeartbeats     uint64 `json:"stale_heartbeats,omitempty"`
	DupsAcked           uint64 `json:"dups_acked,omitempty"`

	LeaseExpiries   uint64 `json:"lease_expiries,omitempty"`
	Fallbacks       uint64 `json:"fallbacks,omitempty"`
	LeaseRecoveries uint64 `json:"lease_recoveries,omitempty"`
	Crashes         uint64 `json:"crashes,omitempty"`
	Failovers       uint64 `json:"failovers,omitempty"`

	Epochs []EpochStep `json:"epochs,omitempty"`
}

// epochStep appends one epoch-ledger entry at sim time now.
func (p *Plane) epochStep(now sim.Time, reason string) {
	p.led.Epochs = append(p.led.Epochs, EpochStep{
		AtMs: now.Millis(), Epoch: p.epoch, Reason: reason,
	})
}

// noteApplied records reconvergence: the first directive of an epoch
// later than any previously applied marks the moment the (new)
// controller demonstrably steers the data plane again. The initial
// epoch's first directive is ordinary startup, not a reconvergence.
func (p *Plane) noteApplied(now sim.Time, epoch uint64) {
	if epoch <= p.appliedEpochMax {
		return
	}
	first := p.appliedEpochMax == 0
	p.appliedEpochMax = epoch
	if !first || epoch > 1 {
		p.epochStep(now, "reconverged")
	}
}

// LedgerSnapshot returns the ledger with the instantaneous channel
// occupancy and epoch filled in.
func (p *Plane) LedgerSnapshot() Ledger {
	led := p.led
	led.Epoch = p.epoch
	led.InFlight = p.chInFlight
	return led
}

// AuditInvariants implements guard.Auditable: channel conservation, the
// directive disposition ledger, and the epoch guard (no agent ever runs
// ahead of the plane's epoch; epoch-ledger entries are monotone).
// Read-only, called on the live audit ticker and at drain.
func (p *Plane) AuditInvariants() []guard.Violation {
	var vs []guard.Violation
	if p.led.Sent != p.led.Delivered+p.led.Dropped+p.chInFlight {
		vs = append(vs, guard.Violationf("ctrlplane", "channel-conservation",
			"sent %d != delivered %d + dropped %d + in-flight %d",
			p.led.Sent, p.led.Delivered, p.led.Dropped, p.chInFlight))
	}
	if p.led.DirectivesDelivered != p.led.DirectivesApplied+p.led.StaleRejected+p.led.DupsAcked {
		vs = append(vs, guard.Violationf("ctrlplane", "directive-disposition",
			"delivered %d != applied %d + stale %d + dups %d",
			p.led.DirectivesDelivered, p.led.DirectivesApplied, p.led.StaleRejected, p.led.DupsAcked))
	}
	for t, a := range p.agents {
		if a != nil && a.epoch > p.epoch {
			vs = append(vs, guard.Violationf("ctrlplane", "epoch-guard",
				"agent %d epoch %d ahead of plane epoch %d", t, a.epoch, p.epoch))
		}
	}
	if p.pendingDirs < 0 {
		vs = append(vs, guard.Violationf("ctrlplane", "pending-directives",
			"pending directive count %d negative", p.pendingDirs))
	}
	return vs
}

// planeObs holds live metric handles; nil when observability is off.
type planeObs struct {
	sent          *obs.Counter
	delivered     *obs.Counter
	dropped       *obs.Counter
	applied       *obs.Counter
	retries       *obs.Counter
	staleRejected *obs.Counter
	leaseExpiries *obs.Counter
	fallbacks     *obs.Counter
	failovers     *obs.Counter
	epoch         *obs.Gauge
}

// Instrument attaches live metric counters (nil registry keeps every
// hook a no-op).
func (p *Plane) Instrument(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	p.o = &planeObs{
		sent:          reg.Counter("ctrlplane", "msgs_sent", labels...),
		delivered:     reg.Counter("ctrlplane", "msgs_delivered", labels...),
		dropped:       reg.Counter("ctrlplane", "msgs_dropped", labels...),
		applied:       reg.Counter("ctrlplane", "directives_applied", labels...),
		retries:       reg.Counter("ctrlplane", "directive_retries", labels...),
		staleRejected: reg.Counter("ctrlplane", "stale_rejected", labels...),
		leaseExpiries: reg.Counter("ctrlplane", "lease_expiries", labels...),
		fallbacks:     reg.Counter("ctrlplane", "fallbacks", labels...),
		failovers:     reg.Counter("ctrlplane", "failovers", labels...),
		epoch:         reg.Gauge("ctrlplane", "epoch", labels...),
	}
	p.o.epoch.Set(float64(p.epoch))
}

// SampleSeries is the plane's flight-recorder probe: channel occupancy,
// unacknowledged directives, the epoch, the loss/retry counters, and
// each agent's lease age and state — control-plane lag rendered against
// the same timeline as queue growth. Read-only.
func (p *Plane) SampleSeries(now sim.Time, track string, emit timeseries.Emit) {
	emit(track, "ctrl_epoch", timeseries.Gauge, float64(p.epoch))
	emit(track, "ctrl_inflight_msgs", timeseries.Gauge, float64(p.chInFlight))
	emit(track, "ctrl_pending_directives", timeseries.Gauge, float64(p.pendingDirs))
	emit(track, "ctrl_msgs_sent", timeseries.Counter, float64(p.led.Sent))
	emit(track, "ctrl_msgs_dropped", timeseries.Counter, float64(p.led.Dropped))
	emit(track, "ctrl_directive_retries", timeseries.Counter, float64(p.led.DirectiveRetries))
	emit(track, "ctrl_directives_applied", timeseries.Counter, float64(p.led.DirectivesApplied))
	emit(track, "ctrl_stale_rejected", timeseries.Counter, float64(p.led.StaleRejected))
	up := 0.0
	if p.controllerUp() {
		up = 1
	}
	emit(track, "ctrl_controller_up", timeseries.Gauge, up)
	for t, a := range p.agents {
		if a == nil {
			continue
		}
		emit(track, p.ageNames[t], timeseries.Gauge, float64(a.leaseAge(now))/1e3)
		emit(track, p.stateNames[t], timeseries.Gauge, float64(a.state))
	}
}
