package ctrlplane

import (
	"srcsim/internal/sim"
	"srcsim/internal/trace"
)

// Lease states of an agent, in degradation order.
const (
	leaseLive = iota
	// leaseHeld: the lease expired; the agent holds its last-known-good
	// weight for the grace window.
	leaseHeld
	// leaseFallback: the grace window also passed; the static fallback
	// weight is applied until the controller is heard from again.
	leaseFallback
)

// agent is the target-resident weight applier: it owns the target's
// real weight sink, enforces the (epoch, seq) guard on incoming
// directives, acknowledges them, and runs the lease state machine.
type agent struct {
	p    *Plane
	t    int
	sink interface {
		SetWeights(read, write int)
	}

	epoch   uint64 // highest epoch adopted
	lastSeq uint64 // highest seq applied within epoch

	lastGoodR, lastGoodW int
	haveGood             bool

	lastSeen sim.Time // last heartbeat or directive delivery
	state    int
}

// onDirective enforces the epoch/seq guard and applies the weights.
//
//   - epoch below the adopted one: the sender is fenced (a dead
//     primary); reject without acking so its retries die on the retry
//     budget, never on our cooperation.
//   - same epoch, seq not above the last applied: a duplicate (a
//     retransmission whose original landed, or a reordered copy). The
//     weights are already in place; re-ack so the sender stops
//     retransmitting, but do not touch the sink — applying it would
//     move weights backwards.
//   - otherwise: adopt and apply.
func (a *agent) onDirective(now sim.Time, epoch, seq uint64, read, write int) {
	switch {
	case epoch < a.epoch:
		a.p.led.StaleRejected++
		if a.p.o != nil {
			a.p.o.staleRejected.Inc()
		}
		return
	case epoch == a.epoch && seq <= a.lastSeq:
		a.p.led.DupsAcked++
		a.renewLease(now)
		a.ack(epoch, seq)
		return
	}
	if epoch > a.epoch {
		a.epoch = epoch
	}
	a.lastSeq = seq
	a.sink.SetWeights(read, write)
	a.lastGoodR, a.lastGoodW = read, write
	a.haveGood = true
	a.p.led.DirectivesApplied++
	if a.p.o != nil {
		a.p.o.applied.Inc()
	}
	a.renewLease(now)
	a.ack(epoch, seq)
	a.p.noteApplied(now, epoch)
}

// onHeartbeat renews the lease; heartbeats from a fenced epoch are
// ignored entirely (a dead primary must not keep leases alive).
func (a *agent) onHeartbeat(now sim.Time, epoch uint64) {
	if epoch < a.epoch {
		a.p.led.StaleHeartbeats++
		return
	}
	if epoch > a.epoch {
		a.epoch = epoch
	}
	a.renewLease(now)
}

// renewLease marks the controller live; recovering from the fallback
// state re-applies the last-known-good weight (the fallback clobbered
// it, and the controller will take a while to issue a fresh directive).
func (a *agent) renewLease(now sim.Time) {
	a.lastSeen = now
	if a.state == leaseFallback && a.haveGood {
		a.sink.SetWeights(a.lastGoodR, a.lastGoodW)
		a.p.led.LeaseRecoveries++
	}
	a.state = leaseLive
}

// checkLease is the agent's periodic liveness check: Live -> Held at
// LeaseTimeout, Held -> Fallback (static weight) after GraceWindow
// more.
func (a *agent) checkLease() {
	age := a.p.eng.Now() - a.lastSeen
	switch a.state {
	case leaseLive:
		if age > a.p.Cfg.LeaseTimeout {
			a.state = leaseHeld
			a.p.led.LeaseExpiries++
			if a.p.o != nil {
				a.p.o.leaseExpiries.Inc()
			}
		}
	case leaseHeld:
		if age > a.p.Cfg.LeaseTimeout+a.p.Cfg.GraceWindow {
			a.state = leaseFallback
			a.sink.SetWeights(1, a.p.Cfg.FallbackWeight)
			a.p.led.Fallbacks++
			if a.p.o != nil {
				a.p.o.fallbacks.Inc()
			}
		}
	}
}

// ack sends the acknowledgement for one (epoch, seq) back to the
// controller over the same lossy channel.
func (a *agent) ack(epoch, seq uint64) {
	a.p.send(message{kind: msgAck, target: a.t, epoch: epoch, seq: seq})
}

// leaseAge returns the time since the agent last heard the controller.
func (a *agent) leaseAge(now sim.Time) sim.Time { return now - a.lastSeen }

// publisher is the data-plane side of one target's telemetry feed: it
// buffers monitored requests and flushes them as one batched message
// per TelemetryEvery, and forwards demanded-rate events immediately.
// Both are fire-and-forget — telemetry is dense enough that loss is
// absorbed by the monitor window, unlike directives.
type publisher struct {
	p   *Plane
	t   int
	buf []telemetryRec
}

// Record buffers one monitored request (the in-band replacement for the
// direct Monitor.Record call).
func (pb *publisher) Record(req trace.Request, at sim.Time) {
	pb.buf = append(pb.buf, telemetryRec{req: req, at: at})
}

// RateEvent forwards one demanded-rate notification (the in-band
// replacement for the direct OnRateEvent call).
func (pb *publisher) RateEvent(demand float64) {
	p := pb.p
	p.led.RateEvents++
	p.send(message{kind: msgRate, target: pb.t, demand: demand})
}

// flush ships the buffered batch.
func (pb *publisher) flush() {
	if len(pb.buf) == 0 {
		return
	}
	recs := pb.buf
	pb.buf = nil
	pb.p.led.TelemetryBatches++
	pb.p.send(message{kind: msgTelemetry, target: pb.t, recs: recs})
}

// dirSink is the core.WeightSink handed to every controller
// incarnation: SetWeights becomes an epoch/seq-stamped directive on the
// channel instead of a direct call, and WeightRatio answers with the
// last ratio the controller commanded (its own view — the agent's
// actual weights may lag or diverge under loss, which is the point).
type dirSink struct {
	p            *Plane
	t            int
	lastR, lastW int
}

// SetWeights implements core.WeightSink by emitting a directive.
func (s *dirSink) SetWeights(read, write int) {
	s.lastR, s.lastW = read, write
	s.p.sendDirective(s.t, read, write)
}

// WeightRatio implements core.WeightSink (write/read, matching
// nvme.SSQ.WeightRatio).
func (s *dirSink) WeightRatio() float64 {
	return float64(s.lastW) / float64(s.lastR)
}
