package ctrlplane

import (
	"encoding/json"
	"testing"

	"srcsim/internal/core"
	"srcsim/internal/sim"
	"srcsim/internal/trace"
)

// recSink records every applied weight with its plane state at apply
// time, standing in for the target's real SSQ group.
type recSink struct {
	r, w    int
	applies []struct{ r, w int }
}

func (s *recSink) SetWeights(read, write int) {
	s.r, s.w = read, write
	s.applies = append(s.applies, struct{ r, w int }{read, write})
}
func (s *recSink) WeightRatio() float64 { return float64(s.w) / float64(s.r) }

// testPlane builds a plane with one registered target over a fresh
// engine. The controller is a real core.Controller with a nil TPM —
// safe as long as the test sends no rate events.
func testPlane(t *testing.T, cfg Config, targets int) (*sim.Engine, *Plane, []*recSink) {
	t.Helper()
	eng := sim.NewEngine()
	cfg.Enabled = true
	p := New(eng, cfg, targets, nil)
	sinks := make([]*recSink, targets)
	for i := 0; i < targets; i++ {
		sinks[i] = &recSink{r: 1, w: 1}
		p.Register(i, sinks[i], func(sink core.WeightSink) *core.Controller {
			return core.NewController(core.ControllerConfig{}, nil, sink)
		})
	}
	return eng, p, sinks
}

// TestDirectiveGuardProperty: an adversarial stream of reordered,
// duplicated, and cross-epoch directives must never move the applied
// (epoch, seq) backwards — every apply is strictly newer than the
// last, and every delivered directive is accounted as exactly one of
// applied/stale/duplicate.
func TestDirectiveGuardProperty(t *testing.T) {
	eng, p, sinks := testPlane(t, Config{}, 1)
	a := p.agents[0]
	rng := sim.NewRNG(99)

	type stamp struct{ epoch, seq uint64 }
	var appliedOrder []stamp
	prevApplies := 0

	total := 0
	// Epochs arrive out of order and interleaved; within each epoch the
	// seqs are shuffled and duplicated. The plane's own epoch is bumped
	// along the way so higher-epoch directives are plausible.
	p.epoch = 3
	for i := 0; i < 2000; i++ {
		ep := uint64(1 + rng.Intn(3))
		sq := uint64(1 + rng.Intn(40))
		rd := 1 + rng.Intn(3)
		wr := 1 + rng.Intn(8)
		// Route through deliver so the disposition ledger stays honest;
		// count the injection as sent so channel conservation holds.
		p.led.Sent++
		p.chInFlight++
		p.deliver(message{kind: msgDirective, target: 0, epoch: ep, seq: sq, read: rd, write: wr})
		total++
		if len(sinks[0].applies) > prevApplies {
			prevApplies = len(sinks[0].applies)
			appliedOrder = append(appliedOrder, stamp{a.epoch, a.lastSeq})
		}
	}

	// Drain the acks the agent emitted in response before auditing.
	eng.RunUntilIdle()

	for i := 1; i < len(appliedOrder); i++ {
		prev, cur := appliedOrder[i-1], appliedOrder[i]
		if cur.epoch < prev.epoch || (cur.epoch == prev.epoch && cur.seq <= prev.seq) {
			t.Fatalf("apply %d moved (epoch,seq) backwards: %v -> %v", i, prev, cur)
		}
	}
	led := p.led
	if led.DirectivesDelivered != uint64(total) {
		t.Fatalf("delivered %d, want %d", led.DirectivesDelivered, total)
	}
	if led.DirectivesApplied+led.StaleRejected+led.DupsAcked != uint64(total) {
		t.Fatalf("disposition leak: %d + %d + %d != %d",
			led.DirectivesApplied, led.StaleRejected, led.DupsAcked, total)
	}
	if vs := p.AuditInvariants(); len(vs) > 0 {
		t.Fatalf("invariants violated: %v", vs)
	}
}

// TestChannelConservationUnderLoss: with heavy seeded loss and
// reordering, the channel ledger must conserve at every audit and the
// retry machinery must resolve every directive (acked or abandoned).
func TestChannelConservationUnderLoss(t *testing.T) {
	cfg := Config{
		LossProb:       0.4,
		ReorderProb:    0.5,
		BaseDelay:      10 * sim.Microsecond,
		AckTimeout:     50 * sim.Microsecond,
		HeartbeatEvery: 100 * sim.Microsecond,
	}
	eng, p, _ := testPlane(t, cfg, 2)
	stop := p.Start()
	defer stop()

	for i := 0; i < 50; i++ {
		i := i
		eng.Schedule(sim.Time(i)*20*sim.Microsecond, func() {
			p.sendDirective(i%2, 1, 1+i%8)
		})
		// Audit mid-flight, not just at drain.
		eng.Schedule(sim.Time(i)*20*sim.Microsecond+sim.Microsecond, func() {
			if vs := p.AuditInvariants(); len(vs) > 0 {
				t.Errorf("mid-run invariants violated: %v", vs)
			}
		})
	}
	eng.Run(20 * sim.Millisecond)

	led := p.LedgerSnapshot()
	if led.Dropped == 0 {
		t.Fatal("40% loss dropped nothing")
	}
	if led.Sent != led.Delivered+led.Dropped+led.InFlight {
		t.Fatalf("conservation: %d != %d + %d + %d", led.Sent, led.Delivered, led.Dropped, led.InFlight)
	}
	if p.pendingDirs != 0 {
		t.Fatalf("%d directives still pending after drain", p.pendingDirs)
	}
	if led.DirectiveRetries == 0 {
		t.Fatal("heavy loss triggered no retransmissions")
	}
}

// TestLeaseLifecycle: crash silences heartbeats; the agent walks Live
// -> Held -> Fallback (static weight applied), and a primary restart
// renews the lease and re-applies the last-known-good weight.
func TestLeaseLifecycle(t *testing.T) {
	cfg := Config{
		BaseDelay:      5 * sim.Microsecond,
		AckTimeout:     40 * sim.Microsecond,
		HeartbeatEvery: 100 * sim.Microsecond,
		LeaseTimeout:   300 * sim.Microsecond,
		GraceWindow:    300 * sim.Microsecond,
		FallbackWeight: 1,
	}
	eng, p, sinks := testPlane(t, cfg, 1)
	stop := p.Start()
	defer stop()

	// A directive establishes last-known-good (2, 5).
	eng.Schedule(50*sim.Microsecond, func() { p.sinks[0].SetWeights(2, 5) })
	eng.Run(200 * sim.Microsecond)
	if sinks[0].r != 2 || sinks[0].w != 5 {
		t.Fatalf("directive not applied: %d/%d", sinks[0].r, sinks[0].w)
	}

	// Crash: no heartbeats. Lease expires at +300µs, fallback at +600µs.
	p.Crash()
	eng.Run(1500 * sim.Microsecond)
	if p.agents[0].state != leaseFallback {
		t.Fatalf("agent state %d, want fallback", p.agents[0].state)
	}
	if sinks[0].r != 1 || sinks[0].w != 1 {
		t.Fatalf("fallback weight not applied: %d/%d", sinks[0].r, sinks[0].w)
	}
	if p.led.LeaseExpiries == 0 || p.led.Fallbacks == 0 {
		t.Fatalf("ledger: expiries %d fallbacks %d", p.led.LeaseExpiries, p.led.Fallbacks)
	}

	// Restart (no standby): epoch bumps, heartbeats resume, the lease
	// renews and last-known-good is re-applied.
	p.Restart()
	eng.Run(2500 * sim.Microsecond)
	if p.agents[0].state != leaseLive {
		t.Fatalf("agent state %d after restart, want live", p.agents[0].state)
	}
	if sinks[0].r != 2 || sinks[0].w != 5 {
		t.Fatalf("last-known-good not restored: %d/%d", sinks[0].r, sinks[0].w)
	}
	if p.led.LeaseRecoveries == 0 {
		t.Fatal("no lease recovery recorded")
	}
	if p.epoch != 2 {
		t.Fatalf("epoch %d after restart, want 2", p.epoch)
	}
	if vs := p.AuditInvariants(); len(vs) > 0 {
		t.Fatalf("invariants violated: %v", vs)
	}
}

// TestFailoverFencesPrimary: with a standby armed, a crash triggers
// takeover under a bumped epoch; directives stamped with the dead
// primary's epoch are rejected without an ack, and the restarted
// primary stays fenced.
func TestFailoverFencesPrimary(t *testing.T) {
	cfg := Config{
		BaseDelay:      5 * sim.Microsecond,
		AckTimeout:     40 * sim.Microsecond,
		HeartbeatEvery: 100 * sim.Microsecond,
		LeaseTimeout:   400 * sim.Microsecond,
		FailoverAfter:  600 * sim.Microsecond,
		Standby:        true,
	}
	eng, p, sinks := testPlane(t, cfg, 1)
	stop := p.Start()
	defer stop()

	eng.Schedule(50*sim.Microsecond, func() { p.sinks[0].SetWeights(3, 7) })
	eng.Schedule(200*sim.Microsecond, func() { p.Crash() })
	eng.Run(3 * sim.Millisecond)

	if !p.tookOver {
		t.Fatal("standby never took over")
	}
	if p.epoch != 2 || p.led.Failovers != 1 {
		t.Fatalf("epoch %d failovers %d", p.epoch, p.led.Failovers)
	}
	if len(p.Controllers(0)) != 2 {
		t.Fatalf("%d controller incarnations, want 2", len(p.Controllers(0)))
	}

	// A straggler directive from the fenced epoch 1: rejected, no sink
	// change, no ack (delivered via the channel to keep ledgers honest).
	before := sinks[0].applies
	eng.Schedule(eng.Now()+10*sim.Microsecond, func() {
		p.led.Sent++
		p.chInFlight++
		p.deliver(message{kind: msgDirective, target: 0, epoch: 1, seq: 9999, read: 9, write: 9})
	})
	eng.Run(eng.Now() + sim.Millisecond)
	if len(sinks[0].applies) != len(before) {
		t.Fatal("fenced directive reached the sink")
	}
	if p.led.StaleRejected == 0 {
		t.Fatal("fenced directive not counted stale")
	}

	// The primary restarts after the takeover: fenced, not active.
	p.Restart()
	if !p.fenced || p.epoch != 2 {
		t.Fatalf("restart after takeover: fenced=%v epoch=%d", p.fenced, p.epoch)
	}
	if vs := p.AuditInvariants(); len(vs) > 0 {
		t.Fatalf("invariants violated: %v", vs)
	}
	steps := map[string]bool{}
	for _, st := range p.led.Epochs {
		steps[st.Reason] = true
	}
	for _, want := range []string{"boot", "crash", "failover", "restart-fenced"} {
		if !steps[want] {
			t.Fatalf("epoch ledger missing %q: %+v", want, p.led.Epochs)
		}
	}
}

// TestPlaneDeterminism: identical seed and schedule produce a
// byte-identical ledger (drops, reorder jitter, retransmissions and
// all) across independent plane instances.
func TestPlaneDeterminism(t *testing.T) {
	run := func() []byte {
		cfg := Config{
			LossProb:       0.3,
			ReorderProb:    0.5,
			BaseDelay:      10 * sim.Microsecond,
			AckTimeout:     60 * sim.Microsecond,
			HeartbeatEvery: 100 * sim.Microsecond,
		}
		eng, p, _ := testPlane(t, cfg, 2)
		stop := p.Start()
		defer stop()
		for i := 0; i < 40; i++ {
			i := i
			eng.Schedule(sim.Time(i)*30*sim.Microsecond, func() {
				p.sinks[i%2].SetWeights(1, 1+i%6)
				p.Publisher(i%2).Record(trace.Request{ID: uint64(i), Size: 4096}, eng.Now())
			})
		}
		eng.Schedule(600*sim.Microsecond, func() { p.Crash() })
		eng.Schedule(900*sim.Microsecond, func() { p.Restart() })
		eng.Run(10 * sim.Millisecond)
		b, err := json.Marshal(p.LedgerSnapshot())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("ledgers diverged:\n%s\n%s", a, b)
	}
}

// TestConfigDefaults: the zero config stays disabled; negative
// MaxRetries disables retransmission; defaults chain off BaseDelay.
func TestConfigDefaults(t *testing.T) {
	var zero Config
	if zero.Enabled {
		t.Fatal("zero config enabled")
	}
	c := Config{MaxRetries: -1}.withDefaults()
	if c.MaxRetries != 0 {
		t.Fatalf("MaxRetries = %d, want 0", c.MaxRetries)
	}
	if c.BaseDelay <= 0 || c.AckTimeout <= 0 || c.LeaseTimeout <= 0 || c.GraceWindow <= 0 || c.FailoverAfter <= 0 {
		t.Fatalf("defaults not filled: %+v", c)
	}
	if c.LeaseTimeout <= c.HeartbeatEvery {
		t.Fatal("lease must outlive a heartbeat period")
	}
}
