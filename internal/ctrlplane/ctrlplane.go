// Package ctrlplane is the in-band SRC control plane: the telemetry
// reports and weight directives that internal/cluster used to hand the
// controller as direct function calls become simulated messages on a
// configurable channel with a fixed base delay, a congestion-coupled
// delay component derived from fabric load, and seeded deterministic
// loss and reordering.
//
// The plane hosts one logical controller process (a primary and an
// optional standby) for a cluster's per-target core.Controller
// instances. Each target gets a Publisher (the data-plane side that
// batches telemetry and forwards rate events) and an Agent (the
// target-resident weight applier that owns the real SSQ sink). Weight
// directives carry (epoch, seq) numbers so stale or reordered
// directives are rejected; they are acknowledged and retransmitted with
// deterministic exponential backoff up to a capped retry budget.
// Heartbeats maintain a lease at every agent: on lease expiry the agent
// holds its last-known-good weight for a grace window and then falls
// back to the static fallback weight. A controller crash triggers
// failover to the standby, which re-seeds its monitor window (fresh
// controllers) and bumps the epoch, fencing directives and acks from
// the dead primary.
//
// The zero Config disables everything: cluster wiring falls back to the
// historical direct calls, so control-plane-off runs stay byte-identical
// to earlier builds.
package ctrlplane

import (
	"fmt"

	"srcsim/internal/core"
	"srcsim/internal/sim"
	"srcsim/internal/trace"
)

// Config tunes the control channel and the liveness machinery. The zero
// value means "no control plane" (direct calls); every other field has
// a default filled by withDefaults.
type Config struct {
	// Enabled turns the in-band control plane on. False (the zero
	// value) keeps the historical direct-call wiring byte-for-byte.
	Enabled bool `json:"enabled,omitempty"`

	// BaseDelay is the fixed one-way message delay (default 20 µs).
	BaseDelay sim.Time `json:"base_delay_ns,omitempty"`
	// DelayPerQueuedKB couples the channel to fabric congestion: every
	// KiB of switch-queued bytes (the load probe) adds this much delay
	// (default 50 ns). Zero-load fabrics add nothing.
	DelayPerQueuedKB sim.Time `json:"delay_per_queued_kb_ns,omitempty"`
	// LossProb is the per-message drop probability (seeded,
	// deterministic). Zero consumes no randomness.
	LossProb float64 `json:"loss_prob,omitempty"`
	// ReorderProb adds a uniform extra delay in [0, ReorderJitter) to a
	// message, letting later sends overtake it.
	ReorderProb   float64  `json:"reorder_prob,omitempty"`
	ReorderJitter sim.Time `json:"reorder_jitter_ns,omitempty"`
	// Seed seeds the channel RNG (default 0xC791).
	Seed uint64 `json:"seed,omitempty"`

	// TelemetryEvery is the publisher's batch-flush period (default
	// 200 µs). Telemetry and rate events are fire-and-forget; only
	// directives are acknowledged.
	TelemetryEvery sim.Time `json:"telemetry_every_ns,omitempty"`

	// AckTimeout is the first directive retransmission delay; later
	// retries back off exponentially (AckTimeout << n) up to BackoffCap.
	// MaxRetries bounds retransmissions (default 5; -1 disables them).
	AckTimeout sim.Time `json:"ack_timeout_ns,omitempty"`
	MaxRetries int      `json:"max_retries,omitempty"`
	BackoffCap sim.Time `json:"backoff_cap_ns,omitempty"`

	// HeartbeatEvery is the controller's heartbeat period (default
	// 1 ms); LeaseTimeout is how long an agent's lease survives without
	// a heartbeat or directive (default 4x HeartbeatEvery). After lease
	// expiry the agent holds its last-known-good weight for GraceWindow
	// (default 2x LeaseTimeout) and then applies the static
	// FallbackWeight (default 1).
	HeartbeatEvery sim.Time `json:"heartbeat_every_ns,omitempty"`
	LeaseTimeout   sim.Time `json:"lease_timeout_ns,omitempty"`
	GraceWindow    sim.Time `json:"grace_window_ns,omitempty"`
	FallbackWeight int      `json:"fallback_weight,omitempty"`

	// Standby arms a warm standby controller that watches the primary's
	// heartbeats and takes over — bumping the epoch and re-seeding its
	// monitor windows — when it hears nothing for FailoverAfter
	// (default 2x LeaseTimeout).
	Standby       bool     `json:"standby,omitempty"`
	FailoverAfter sim.Time `json:"failover_after_ns,omitempty"`
}

func (c Config) withDefaults() Config {
	if c.BaseDelay <= 0 {
		c.BaseDelay = 20 * sim.Microsecond
	}
	if c.DelayPerQueuedKB < 0 {
		c.DelayPerQueuedKB = 0
	} else if c.DelayPerQueuedKB == 0 {
		c.DelayPerQueuedKB = 50 * sim.Nanosecond
	}
	if c.ReorderJitter <= 0 {
		c.ReorderJitter = 4 * c.BaseDelay
	}
	if c.Seed == 0 {
		c.Seed = 0xC791
	}
	if c.TelemetryEvery <= 0 {
		c.TelemetryEvery = 200 * sim.Microsecond
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 8 * c.BaseDelay
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 5
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 8 * c.AckTimeout
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = sim.Millisecond
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 4 * c.HeartbeatEvery
	}
	if c.GraceWindow <= 0 {
		c.GraceWindow = 2 * c.LeaseTimeout
	}
	if c.FallbackWeight <= 0 {
		c.FallbackWeight = 1
	}
	if c.FailoverAfter <= 0 {
		c.FailoverAfter = 2 * c.LeaseTimeout
	}
	return c
}

// msgKind classifies channel messages.
type msgKind int

const (
	msgTelemetry msgKind = iota // publisher -> controller, batched
	msgRate                     // publisher -> controller
	msgDirective                // controller -> agent
	msgAck                      // agent -> controller
	msgHeartbeat                // controller -> agent
	msgHBStandby                // primary -> standby
)

// telemetryRec is one monitored request in a telemetry batch.
type telemetryRec struct {
	req trace.Request
	at  sim.Time
}

// message is one in-flight control-plane message.
type message struct {
	kind   msgKind
	target int // agent/publisher index; -1 for the standby link

	recs   []telemetryRec // telemetry
	demand float64        // rate
	epoch  uint64         // directive / ack / heartbeat
	seq    uint64         // directive / ack
	read   int            // directive
	write  int            // directive
}

// pending is an unacknowledged directive awaiting ack or retransmit.
type pending struct {
	epoch      uint64
	seq        uint64
	read, next int // next is the write weight (read/next mirrors SetWeights args)
	retries    int
}

// Plane is the built control plane for one cluster.
type Plane struct {
	Cfg Config

	eng  *sim.Engine
	rng  *sim.RNG
	load func() int64 // switch-queued-bytes probe; nil = unloaded

	epoch uint64 // current controller epoch (starts at 1)
	seq   uint64 // plane-wide directive sequence

	crashed  bool // primary down
	fenced   bool // primary fenced after a standby takeover
	tookOver bool // standby is the active controller
	sbLastHB sim.Time

	agents  []*agent
	pubs    []*publisher
	sinks   []*dirSink
	active  []*core.Controller
	history [][]*core.Controller
	mk      []func() *core.Controller

	pend        []map[uint64]*pending
	lastTelemAt []sim.Time

	// Per-target fault state (ctrl-drop / ctrl-delay / ctrl-partition).
	lossBoost   []float64
	delayFactor []float64
	partitioned []bool

	led             Ledger
	chInFlight      uint64
	pendingDirs     int
	appliedEpochMax uint64

	o       *planeObs
	started bool

	// Precomputed per-target sample-series names (the per-sample path
	// must not format strings).
	ageNames   []string
	stateNames []string
}

// New builds a plane for targets agents. load, when non-nil, reports
// total switch-queued bytes for the congestion-coupled delay component.
// Register must be called once per target before Start.
func New(eng *sim.Engine, cfg Config, targets int, load func() int64) *Plane {
	cfg = cfg.withDefaults()
	p := &Plane{
		Cfg:         cfg,
		eng:         eng,
		rng:         sim.NewRNG(cfg.Seed ^ 0xC021201A11E),
		load:        load,
		epoch:       1,
		agents:      make([]*agent, targets),
		pubs:        make([]*publisher, targets),
		sinks:       make([]*dirSink, targets),
		active:      make([]*core.Controller, targets),
		history:     make([][]*core.Controller, targets),
		mk:          make([]func() *core.Controller, targets),
		pend:        make([]map[uint64]*pending, targets),
		lastTelemAt: make([]sim.Time, targets),
		lossBoost:   make([]float64, targets),
		delayFactor: make([]float64, targets),
		partitioned: make([]bool, targets),
		ageNames:    make([]string, targets),
		stateNames:  make([]string, targets),
	}
	for t := 0; t < targets; t++ {
		p.delayFactor[t] = 1
		p.pend[t] = make(map[uint64]*pending)
		p.lastTelemAt[t] = -1
		p.ageNames[t] = fmt.Sprintf("ctrl_t%d_lease_age_us", t)
		p.stateNames[t] = fmt.Sprintf("ctrl_t%d_lease_state", t)
	}
	return p
}

// Targets returns the number of registered agent slots (the
// faults.CtrlPlane selector range).
func (p *Plane) Targets() int { return len(p.agents) }

// Register wires target t into the plane: real is the target's actual
// weight sink (the SSQ group the agent applies directives to), and mk
// builds one controller instance around the plane-provided directive
// sink — called once now for the primary and again on every failover or
// restart, so each incarnation re-seeds its monitor window. Returns the
// primary's controller.
func (p *Plane) Register(t int, real core.WeightSink, mk func(sink core.WeightSink) *core.Controller) *core.Controller {
	ds := &dirSink{p: p, t: t, lastR: 1, lastW: 1}
	p.sinks[t] = ds
	p.agents[t] = &agent{p: p, t: t, sink: real}
	p.pubs[t] = &publisher{p: p, t: t}
	p.mk[t] = func() *core.Controller { return mk(ds) }
	ctl := p.mk[t]()
	p.active[t] = ctl
	p.history[t] = append(p.history[t], ctl)
	return ctl
}

// Publisher returns target t's data-plane telemetry publisher.
func (p *Plane) Publisher(t int) *publisher { return p.pubs[t] }

// Active returns target t's currently live controller instance, or nil
// while the controller process is down (crashed primary, no takeover
// yet).
func (p *Plane) Active(t int) *core.Controller {
	if !p.controllerUp() {
		return nil
	}
	return p.active[t]
}

// Controllers returns every controller incarnation target t has seen
// (primary first, then takeover/restart replacements), for end-of-run
// ledger collection.
func (p *Plane) Controllers(t int) []*core.Controller { return p.history[t] }

// controllerUp reports whether a controller process is serving: the
// primary (not crashed, not fenced) or the standby after takeover.
func (p *Plane) controllerUp() bool {
	if p.tookOver {
		return true
	}
	return !p.crashed && !p.fenced
}

// Start schedules the plane's tickers (telemetry flush, heartbeats,
// lease checks, the standby watchdog) and records the boot epoch. It
// returns a stop function detaching everything.
func (p *Plane) Start() (stop func()) {
	now := p.eng.Now()
	p.started = true
	p.epochStep(now, "boot")
	for _, a := range p.agents {
		a.lastSeen = now
	}
	p.sbLastHB = now

	var stops []func()
	for _, pb := range p.pubs {
		pb := pb
		stops = append(stops, p.eng.Ticker(p.Cfg.TelemetryEvery, pb.flush))
	}
	stops = append(stops, p.eng.Ticker(p.Cfg.HeartbeatEvery, p.heartbeat))
	leaseEvery := p.Cfg.LeaseTimeout / 4
	if leaseEvery < 10*sim.Microsecond {
		leaseEvery = 10 * sim.Microsecond
	}
	for _, a := range p.agents {
		a := a
		stops = append(stops, p.eng.Ticker(leaseEvery, a.checkLease))
	}
	if p.Cfg.Standby {
		stops = append(stops, p.eng.Ticker(p.Cfg.HeartbeatEvery, p.standbyWatch))
	}
	return func() {
		for _, s := range stops {
			s()
		}
	}
}

// delay computes one message's channel delay: the per-target base delay
// (scaled by any ctrl-delay fault), the congestion-coupled component,
// and — with ReorderProb armed — an occasional extra jitter that lets
// later sends overtake this message.
func (p *Plane) delay(target int) sim.Time {
	d := p.Cfg.BaseDelay
	if target >= 0 {
		d = sim.Time(float64(d) * p.delayFactor[target])
	}
	if p.load != nil && p.Cfg.DelayPerQueuedKB > 0 {
		if q := p.load(); q > 0 {
			d += p.Cfg.DelayPerQueuedKB * sim.Time(q>>10)
		}
	}
	if p.Cfg.ReorderProb > 0 && p.rng.Float64() < p.Cfg.ReorderProb {
		d += sim.Time(p.rng.Float64() * float64(p.Cfg.ReorderJitter))
	}
	return d
}

// send puts one message on the channel: accounting, the partition gate,
// the seeded loss draw, then a delayed delivery event. Every send
// attempt (including retransmissions) counts toward Sent, so the
// channel-conservation audit (sent == delivered + dropped + in-flight)
// holds at any instant.
func (p *Plane) send(m message) {
	p.led.Sent++
	if p.o != nil {
		p.o.sent.Inc()
	}
	if m.target >= 0 && p.partitioned[m.target] {
		p.drop(m)
		return
	}
	lp := p.Cfg.LossProb
	if m.target >= 0 {
		lp += p.lossBoost[m.target]
	}
	if lp > 0 {
		if lp > 1 {
			lp = 1
		}
		if p.rng.Float64() < lp {
			p.drop(m)
			return
		}
	}
	p.chInFlight++
	p.eng.After(p.delay(m.target), func() { p.deliver(m) })
}

// drop accounts one lost message.
func (p *Plane) drop(m message) {
	p.led.Dropped++
	if m.kind == msgTelemetry {
		p.led.TelemetryDropped++
	}
	if p.o != nil {
		p.o.dropped.Inc()
	}
}

// deliver dispatches one message at its delayed arrival time. Messages
// bound for a dead controller are destination-down drops: the process
// they address no longer exists.
func (p *Plane) deliver(m message) {
	p.chInFlight--
	now := p.eng.Now()
	switch m.kind {
	case msgTelemetry, msgRate, msgAck:
		if !p.controllerUp() {
			p.drop(m)
			return
		}
		p.led.Delivered++
		if p.o != nil {
			p.o.delivered.Inc()
		}
		switch m.kind {
		case msgTelemetry:
			p.deliverTelemetry(m)
		case msgRate:
			p.active[m.target].OnRateEvent(now, m.demand)
		default:
			p.deliverAck(m)
		}
	case msgDirective:
		p.led.Delivered++
		p.led.DirectivesDelivered++
		if p.o != nil {
			p.o.delivered.Inc()
		}
		p.agents[m.target].onDirective(now, m.epoch, m.seq, m.read, m.write)
	case msgHeartbeat:
		p.led.Delivered++
		if p.o != nil {
			p.o.delivered.Inc()
		}
		p.agents[m.target].onHeartbeat(now, m.epoch)
	case msgHBStandby:
		p.led.Delivered++
		if p.o != nil {
			p.o.delivered.Inc()
		}
		p.sbLastHB = now
	}
}

// deliverTelemetry replays a batch into the active controller's
// monitor, preserving the original observation timestamps so staleness
// ages naturally with channel delay. Records older than ones already
// delivered for this target are discarded: the monitor window assumes
// in-order arrivals, and a reordered stale batch describes traffic a
// fresher batch has already superseded.
func (p *Plane) deliverTelemetry(m message) {
	ctl := p.active[m.target]
	for _, r := range m.recs {
		if r.at < p.lastTelemAt[m.target] {
			p.led.TelemetryReorderedDropped++
			continue
		}
		p.lastTelemAt[m.target] = r.at
		ctl.Monitor.Record(r.req, r.at)
	}
}

// deliverAck resolves a pending directive. Acks for directives from a
// fenced epoch (or unknown seq — already acked or abandoned) are
// ignored; re-acked duplicates land here too and find nothing pending.
func (p *Plane) deliverAck(m message) {
	pd := p.pend[m.target][m.seq]
	if pd == nil || pd.epoch != m.epoch {
		return
	}
	delete(p.pend[m.target], m.seq)
	p.pendingDirs--
}

// sendDirective emits one epoch/seq-stamped weight directive from the
// active controller to target t's agent and arms its retransmit timer.
func (p *Plane) sendDirective(t, read, write int) {
	p.seq++
	pd := &pending{epoch: p.epoch, seq: p.seq, read: read, next: write}
	p.pend[t][pd.seq] = pd
	p.pendingDirs++
	p.led.DirectivesSent++
	p.send(message{kind: msgDirective, target: t, epoch: pd.epoch, seq: pd.seq, read: read, write: write})
	p.armRetransmit(t, pd, p.Cfg.AckTimeout)
}

// armRetransmit schedules the next retransmission check for pd.
func (p *Plane) armRetransmit(t int, pd *pending, wait sim.Time) {
	p.eng.After(wait, func() { p.retransmit(t, pd) })
}

// retransmit re-sends an unacknowledged directive with exponential
// backoff, abandoning it when the sender's epoch has been fenced, the
// controller is down, or the retry budget is spent.
func (p *Plane) retransmit(t int, pd *pending) {
	if p.pend[t][pd.seq] != pd {
		return // acked (or already abandoned) meanwhile
	}
	if pd.epoch != p.epoch || !p.controllerUp() || pd.retries >= p.Cfg.MaxRetries {
		delete(p.pend[t], pd.seq)
		p.pendingDirs--
		p.led.DirectivesAbandoned++
		return
	}
	pd.retries++
	p.led.DirectiveRetries++
	if p.o != nil {
		p.o.retries.Inc()
	}
	p.send(message{kind: msgDirective, target: t, epoch: pd.epoch, seq: pd.seq, read: pd.read, write: pd.next})
	wait := p.Cfg.AckTimeout << uint(pd.retries)
	if wait > p.Cfg.BackoffCap {
		wait = p.Cfg.BackoffCap
	}
	p.armRetransmit(t, pd, wait)
}

// heartbeat is the active controller's liveness beacon: one message per
// agent, plus one to the standby while the primary still runs.
func (p *Plane) heartbeat() {
	if !p.controllerUp() {
		return
	}
	for t := range p.agents {
		p.send(message{kind: msgHeartbeat, target: t, epoch: p.epoch})
	}
	if p.Cfg.Standby && !p.tookOver {
		p.send(message{kind: msgHBStandby, target: -1})
	}
}

// standbyWatch is the standby's failover watchdog: when the primary's
// heartbeats have been silent for FailoverAfter, take over — bump the
// epoch (fencing every directive and ack still in flight from the dead
// primary), rebuild each target's controller so the monitor window
// re-seeds from live telemetry only, and start heartbeating as the new
// active controller.
func (p *Plane) standbyWatch() {
	if p.tookOver {
		return
	}
	now := p.eng.Now()
	if now-p.sbLastHB <= p.Cfg.FailoverAfter {
		return
	}
	p.tookOver = true
	if p.crashed {
		p.fenced = true // a later primary restart must stay fenced
	}
	p.epoch++
	p.led.Failovers++
	p.epochStep(now, "failover")
	if p.o != nil {
		p.o.failovers.Inc()
		p.o.epoch.Set(float64(p.epoch))
	}
	p.rebuildControllers()
	p.heartbeat() // announce the new epoch promptly
}

// Crash kills the primary controller process (the controller-crash
// fault). In-flight messages to it become destination-down drops;
// pending directive retransmissions abandon on their next timer. After
// a takeover the standby is the controller, so a crash of the
// already-dead primary changes nothing.
func (p *Plane) Crash() {
	if p.crashed {
		return
	}
	p.crashed = true
	p.led.Crashes++
	p.epochStep(p.eng.Now(), "crash")
}

// Restart revives the primary. If the standby took over meanwhile the
// primary comes back fenced — its epoch is dead, and the epoch guard at
// every agent rejects anything it might still emit. Otherwise it
// resumes as the active controller under a bumped epoch with re-seeded
// monitor windows (its pre-crash feature state described traffic it
// never saw complete).
func (p *Plane) Restart() {
	if !p.crashed {
		return
	}
	p.crashed = false
	now := p.eng.Now()
	if p.tookOver {
		p.fenced = true
		p.epochStep(now, "restart-fenced")
		return
	}
	p.epoch++
	p.epochStep(now, "restart")
	if p.o != nil {
		p.o.epoch.Set(float64(p.epoch))
	}
	p.rebuildControllers()
}

// rebuildControllers replaces every target's active controller with a
// fresh incarnation (empty monitor window, clean adaptive state).
func (p *Plane) rebuildControllers() {
	for t := range p.active {
		if p.mk[t] == nil {
			continue
		}
		ctl := p.mk[t]()
		p.active[t] = ctl
		p.history[t] = append(p.history[t], ctl)
	}
}

// SetLoss applies a ctrl-drop fault: an additional message-loss
// probability on target t's control channel (composes with the
// configured base LossProb).
func (p *Plane) SetLoss(t int, prob float64) { p.lossBoost[t] = prob }

// SetDelayFactor applies a ctrl-delay fault: multiplies the base delay
// of target t's control channel.
func (p *Plane) SetDelayFactor(t int, f float64) { p.delayFactor[t] = f }

// SetPartition applies a ctrl-partition fault: cuts target t's control
// channel in both directions.
func (p *Plane) SetPartition(t int, on bool) { p.partitioned[t] = on }
