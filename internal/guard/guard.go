// Package guard is the run-governance layer: it supervises a simulation
// run so that silent failure modes — a deadlocked coupling that stops
// completing I/O, a zero-delay event livelock that freezes the clock, a
// slow conservation leak that drains throughput — surface as typed
// errors with diagnostics instead of a wedged process or a subtly wrong
// result.
//
// Three mechanisms, all opt-in (the zero Config is fully inert, so
// unguarded runs stay byte-identical to their historical output):
//
//   - A liveness watchdog on two axes. The sim-time axis trips when the
//     oldest in-flight command exceeds Config.StallHorizon with no
//     completion progress between checks. The wall-clock axis trips when
//     the engine keeps processing events while simulated time stops
//     advancing (a zero-delay cycle). Both produce a *StallError
//     carrying a Dump of engine, fabric, and device state.
//   - A conservation auditor: components implement Auditable and are
//     polled on the sim clock (and at drain); any Violation fails the
//     run with a *ViolationError.
//   - Graceful cancellation: a Stopper handle (safe to fire from signal
//     handlers or timers on other goroutines) plus a wall-clock budget;
//     either drains the run at the next event boundary and marks the
//     partial result truncated, with the full metric and fault ledger
//     intact.
//
// The cluster package wires all three into cluster.Run via Spec.Guard;
// cmd/srcsim exposes them as -stall-horizon, -audit, and -max-wall.
package guard

import (
	"fmt"
	"sync/atomic"
	"time"

	"srcsim/internal/sim"
)

// Config selects which governance mechanisms supervise a run. The zero
// value disables everything: no events are scheduled, no engine hooks
// installed, and the run behaves byte-for-byte as if the package did
// not exist.
type Config struct {
	// StallHorizon arms the liveness watchdog: if the oldest in-flight
	// command is older than this and no command completed or failed
	// since the previous check, the run fails with a *StallError. Zero
	// disables the watchdog.
	StallHorizon sim.Time
	// CheckEvery is the watchdog poll period on the sim clock (default
	// StallHorizon/4, at least 1 ms).
	CheckEvery sim.Time

	// Audit arms the conservation auditor: every layer's
	// AuditInvariants runs each AuditEvery of sim time and once more at
	// drain; any violation fails the run with a *ViolationError.
	Audit bool
	// AuditEvery is the audit period on the sim clock (default 1 ms).
	AuditEvery sim.Time

	// WallBudget bounds the run's wall-clock time. When exceeded the
	// run is truncated gracefully (not failed): Run returns a partial
	// result marked Truncated. Zero means unlimited.
	WallBudget time.Duration
	// Stop, when non-nil, is polled at event boundaries; once fired the
	// run drains and returns a truncated partial result. One Stopper
	// may be shared by several sequential runs (a SIGINT truncates the
	// current run and every later one immediately).
	Stop *Stopper

	// InterruptEvery is how many engine events pass between wall-clock
	// and cancellation checks (default 8192). Smaller reacts faster;
	// larger costs less.
	InterruptEvery uint64
	// MaxEventsPerInstant trips the wall-clock stall axis: this many
	// consecutive events with the simulated clock frozen at one instant
	// is declared a livelock (default 4M). Only armed when StallHorizon
	// is set.
	MaxEventsPerInstant uint64
}

// Enabled reports whether any governance mechanism is armed.
func (c Config) Enabled() bool {
	return c.StallHorizon > 0 || c.Audit || c.WallBudget > 0 || c.Stop != nil
}

// WithDefaults fills derived fields of an armed config; a fully
// disabled config is returned unchanged.
func (c Config) WithDefaults() Config {
	if !c.Enabled() {
		return c
	}
	if c.StallHorizon > 0 && c.CheckEvery <= 0 {
		c.CheckEvery = c.StallHorizon / 4
		if c.CheckEvery < sim.Millisecond {
			c.CheckEvery = sim.Millisecond
		}
	}
	if c.Audit && c.AuditEvery <= 0 {
		c.AuditEvery = sim.Millisecond
	}
	if c.InterruptEvery == 0 {
		c.InterruptEvery = 8192
	}
	if c.MaxEventsPerInstant == 0 {
		c.MaxEventsPerInstant = 4 << 20
	}
	return c
}

// Stopper is an external cancellation handle: Stop may be called from
// any goroutine (signal handlers, wall-clock timers); the supervised
// run observes it at the next event boundary and drains cleanly.
type Stopper struct {
	fired  atomic.Bool
	reason atomic.Pointer[string]
}

// NewStopper returns an unfired Stopper.
func NewStopper() *Stopper { return &Stopper{} }

// Stop requests cancellation. The first call wins; later calls are
// no-ops. Safe for concurrent use.
func (s *Stopper) Stop(reason string) {
	if s.fired.CompareAndSwap(false, true) {
		s.reason.Store(&reason)
	}
}

// Stopped reports whether Stop has been called.
func (s *Stopper) Stopped() bool { return s.fired.Load() }

// Reason returns the first Stop call's reason ("" if unfired).
func (s *Stopper) Reason() string {
	if r := s.reason.Load(); r != nil {
		return *r
	}
	return ""
}

// Violation is one broken invariant found by an audit.
type Violation struct {
	// Layer names the subsystem ("netsim", "nvmeof", "nvme", "ssd",
	// "cluster").
	Layer string `json:"layer"`
	// Name identifies the invariant, e.g. "txq-credit-conservation".
	Name string `json:"name"`
	// Detail is a human-readable account of the observed inconsistency.
	Detail string `json:"detail"`
}

// String renders "layer/name: detail".
func (v Violation) String() string {
	return fmt.Sprintf("%s/%s: %s", v.Layer, v.Name, v.Detail)
}

// Violationf builds a Violation with a formatted detail.
func Violationf(layer, name, format string, args ...any) Violation {
	return Violation{Layer: layer, Name: name, Detail: fmt.Sprintf(format, args...)}
}

// Auditable is implemented by components that can cheaply verify their
// internal conservation invariants. AuditInvariants must be read-only
// (it runs on the live sim clock and must not perturb determinism) and
// return nil when everything holds.
type Auditable interface {
	AuditInvariants() []Violation
}

// Tag appends context (e.g. "target 1") to every violation's detail,
// so per-instance reports stay attributable after aggregation.
func Tag(vs []Violation, context string) []Violation {
	for i := range vs {
		vs[i].Detail += " [" + context + "]"
	}
	return vs
}

// Audit runs every auditable (nil entries are skipped) and concatenates
// the violations.
func Audit(as ...Auditable) []Violation {
	var out []Violation
	for _, a := range as {
		if a == nil {
			continue
		}
		out = append(out, a.AuditInvariants()...)
	}
	return out
}

// ViolationError is the typed failure of the conservation auditor.
type ViolationError struct {
	// At is the simulated time of the failing audit.
	At sim.Time
	// Violations is non-empty.
	Violations []Violation
}

// Error implements error.
func (e *ViolationError) Error() string {
	msg := fmt.Sprintf("guard: %d invariant violation(s) at t=%v", len(e.Violations), e.At)
	for i, v := range e.Violations {
		if i == 4 {
			msg += fmt.Sprintf("; and %d more", len(e.Violations)-i)
			break
		}
		msg += "; " + v.String()
	}
	return msg
}

// StallError is the typed failure of the liveness watchdog.
type StallError struct {
	// Axis is "sim-time" (in-flight command exceeded the horizon with
	// no progress) or "event-storm" (events processing, clock frozen).
	Axis string
	// Horizon is the configured StallHorizon.
	Horizon sim.Time
	// Dump is the diagnostic state snapshot taken at the trip.
	Dump *Dump
}

// Error implements error.
func (e *StallError) Error() string {
	d := e.Dump
	if d == nil {
		return fmt.Sprintf("guard: %s stall (horizon %v)", e.Axis, e.Horizon)
	}
	return fmt.Sprintf("guard: %s stall at t=%v (horizon %v): %d in-flight, oldest age %v",
		e.Axis, d.SimTime, e.Horizon, d.InFlightTotal, d.OldestAge)
}
