package guard

import (
	"fmt"
	"io"
	"strings"

	"srcsim/internal/sim"
)

// Dump is the structured diagnostic snapshot the watchdog takes when it
// trips. Every field is derived from simulation state only (no
// wall-clock readings), so rendering a dump from a deterministic run is
// itself byte-deterministic.
type Dump struct {
	// SimTime is the clock at the trip.
	SimTime sim.Time `json:"sim_time_ns"`
	// EventsProcessed is the engine's lifetime callback count.
	EventsProcessed uint64 `json:"events_processed"`
	// PendingEvents is the engine heap size at the trip.
	PendingEvents int `json:"pending_events"`
	// NextEventAt is the head of the engine heap (-1 rendered as "none"
	// when the heap is empty).
	NextEventAt sim.Time `json:"next_event_at_ns"`
	// HeapEmpty distinguishes an empty heap from one whose head is 0.
	HeapEmpty bool `json:"heap_empty"`

	// Submitted/Completed/Failed is the cluster-level command ledger.
	Submitted int `json:"submitted"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`

	// InFlightTotal counts all outstanding commands; InFlight holds the
	// oldest MaxDumpCommands of them, oldest first.
	InFlightTotal int           `json:"in_flight_total"`
	OldestAge     sim.Time      `json:"oldest_age_ns"`
	InFlight      []CommandInfo `json:"in_flight,omitempty"`

	Initiators []InitiatorState `json:"initiators,omitempty"`
	Targets    []TargetState    `json:"targets,omitempty"`
	Links      []LinkState      `json:"links,omitempty"`
}

// MaxDumpCommands caps the per-dump in-flight census so a 64k-deep
// stall doesn't emit megabytes of diagnostics.
const MaxDumpCommands = 16

// CommandInfo identifies one stuck in-flight command.
type CommandInfo struct {
	ID          uint64   `json:"id"`
	Initiator   int      `json:"initiator"`
	Target      int      `json:"target"`
	Write       bool     `json:"write"`
	Bytes       int64    `json:"bytes"`
	SubmittedAt sim.Time `json:"submitted_at_ns"`
	Age         sim.Time `json:"age_ns"`
}

// InitiatorState is the per-initiator census at the trip.
type InitiatorState struct {
	ID int `json:"id"`
	// InFlight counts commands submitted but not completed/failed.
	InFlight int `json:"in_flight"`
	// RetryPending counts commands awaiting a retransmit decision.
	RetryPending int `json:"retry_pending"`
}

// TargetState is the per-target census at the trip.
type TargetState struct {
	ID int `json:"id"`
	// Inflight is the target-side dedup window population.
	Inflight int `json:"inflight"`
	// TXQCredit/TXQCap is the transmit-queue credit gate state.
	TXQCredit int64 `json:"txq_credit"`
	TXQCap    int64 `json:"txq_cap"`
	// TXQWaiting counts responses blocked on credit.
	TXQWaiting int `json:"txq_waiting"`
	// DevOutstanding/DevParked is the SSD device occupancy.
	DevOutstanding int `json:"dev_outstanding"`
	DevParked      int `json:"dev_parked"`
	// ArbPending is total commands queued in the target's arbiters.
	ArbPending int `json:"arb_pending"`
	// SSQs is the per-scheduler token/queue state.
	SSQs []SSQState `json:"ssqs,omitempty"`
}

// SSQState is one SSQ arbiter's token and queue state.
type SSQState struct {
	RTokens  int `json:"r_tokens"`
	WTokens  int `json:"w_tokens"`
	PendingR int `json:"pending_r"`
	PendingW int `json:"pending_w"`
}

// LinkState is one fabric port's state at the trip.
type LinkState struct {
	Name       string `json:"name"`
	Down       bool   `json:"down"`
	Paused     bool   `json:"paused"`
	QueueBytes int64  `json:"queue_bytes"`
	QueuePkts  int    `json:"queue_pkts"`
}

// WriteTo renders the dump as an indented human-readable report. The
// output is a pure function of the dump contents.
func (d *Dump) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	fmt.Fprintf(cw, "guard dump at t=%v\n", d.SimTime)
	next := "none"
	if !d.HeapEmpty {
		next = fmt.Sprint(d.NextEventAt)
	}
	fmt.Fprintf(cw, "  engine: %d events processed, %d pending, next at %s\n",
		d.EventsProcessed, d.PendingEvents, next)
	fmt.Fprintf(cw, "  ledger: submitted %d, completed %d, failed %d, in-flight %d (oldest age %v)\n",
		d.Submitted, d.Completed, d.Failed, d.InFlightTotal, d.OldestAge)
	for _, c := range d.InFlight {
		op := "read"
		if c.Write {
			op = "write"
		}
		fmt.Fprintf(cw, "  stuck: cmd %d ini %d -> tgt %d %s %dB submitted t=%v age %v\n",
			c.ID, c.Initiator, c.Target, op, c.Bytes, c.SubmittedAt, c.Age)
	}
	if d.InFlightTotal > len(d.InFlight) && len(d.InFlight) > 0 {
		fmt.Fprintf(cw, "  ... and %d more in-flight commands\n", d.InFlightTotal-len(d.InFlight))
	}
	for _, ini := range d.Initiators {
		fmt.Fprintf(cw, "  initiator %d: in-flight %d, retry-pending %d\n",
			ini.ID, ini.InFlight, ini.RetryPending)
	}
	for _, t := range d.Targets {
		fmt.Fprintf(cw, "  target %d: inflight %d, txq credit %d/%d (%d waiting), dev outstanding %d parked %d, arb pending %d\n",
			t.ID, t.Inflight, t.TXQCredit, t.TXQCap, t.TXQWaiting,
			t.DevOutstanding, t.DevParked, t.ArbPending)
		for i, q := range t.SSQs {
			fmt.Fprintf(cw, "    ssq %d: tokens r=%d w=%d pending r=%d w=%d\n",
				i, q.RTokens, q.WTokens, q.PendingR, q.PendingW)
		}
	}
	for _, l := range d.Links {
		state := "up"
		if l.Down {
			state = "DOWN"
		}
		pause := ""
		if l.Paused {
			pause = " PAUSED"
		}
		fmt.Fprintf(cw, "  link %s: %s%s, queue %dB (%d pkts)\n",
			l.Name, state, pause, l.QueueBytes, l.QueuePkts)
	}
	return cw.n, cw.err
}

// String renders the dump report as a string.
func (d *Dump) String() string {
	var sb strings.Builder
	d.WriteTo(&sb)
	return sb.String()
}

type countWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}
