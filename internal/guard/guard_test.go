package guard

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"srcsim/internal/sim"
)

func TestZeroConfigDisabled(t *testing.T) {
	var cfg Config
	if cfg.Enabled() {
		t.Fatal("zero Config reports enabled")
	}
	if got := cfg.WithDefaults(); got != cfg {
		t.Fatalf("WithDefaults changed a disabled config: %+v", got)
	}
}

func TestWithDefaults(t *testing.T) {
	cfg := Config{StallHorizon: 100 * sim.Millisecond, Audit: true}
	got := cfg.WithDefaults()
	if got.CheckEvery != 25*sim.Millisecond {
		t.Fatalf("CheckEvery = %v, want StallHorizon/4", got.CheckEvery)
	}
	if got.AuditEvery != sim.Millisecond {
		t.Fatalf("AuditEvery = %v, want 1ms", got.AuditEvery)
	}
	if got.InterruptEvery != 8192 || got.MaxEventsPerInstant != 4<<20 {
		t.Fatalf("interrupt defaults: %+v", got)
	}
	// A tiny horizon still polls at >= 1 ms.
	tiny := Config{StallHorizon: sim.Microsecond}.WithDefaults()
	if tiny.CheckEvery != sim.Millisecond {
		t.Fatalf("CheckEvery floor = %v, want 1ms", tiny.CheckEvery)
	}
	// Explicit values are kept.
	kept := Config{StallHorizon: sim.Second, CheckEvery: 7 * sim.Millisecond}.WithDefaults()
	if kept.CheckEvery != 7*sim.Millisecond {
		t.Fatalf("explicit CheckEvery overridden: %v", kept.CheckEvery)
	}
}

func TestEnabledAxes(t *testing.T) {
	for _, c := range []Config{
		{StallHorizon: 1},
		{Audit: true},
		{WallBudget: time.Second},
		{Stop: NewStopper()},
	} {
		if !c.Enabled() {
			t.Fatalf("config %+v should be enabled", c)
		}
	}
}

func TestStopperFirstReasonWins(t *testing.T) {
	s := NewStopper()
	if s.Stopped() || s.Reason() != "" {
		t.Fatal("fresh stopper already fired")
	}
	s.Stop("first")
	s.Stop("second")
	if !s.Stopped() || s.Reason() != "first" {
		t.Fatalf("Reason() = %q, want first call to win", s.Reason())
	}
}

func TestStopperConcurrent(t *testing.T) {
	s := NewStopper()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Stop("concurrent")
		}()
	}
	wg.Wait()
	if !s.Stopped() || s.Reason() != "concurrent" {
		t.Fatalf("stopper state after concurrent fires: %q", s.Reason())
	}
}

func TestViolationFormatting(t *testing.T) {
	v := Violationf("nvmeof", "txq-credit-conservation", "credit %d != cap %d", 3, 4)
	if v.String() != "nvmeof/txq-credit-conservation: credit 3 != cap 4" {
		t.Fatalf("String() = %q", v.String())
	}
	tagged := Tag([]Violation{v}, "target 1")
	if !strings.HasSuffix(tagged[0].Detail, " [target 1]") {
		t.Fatalf("Tag missing context: %q", tagged[0].Detail)
	}
}

type fakeAuditable []Violation

func (f fakeAuditable) AuditInvariants() []Violation { return f }

func TestAuditAggregates(t *testing.T) {
	a := fakeAuditable{{Layer: "a", Name: "x", Detail: "1"}}
	b := fakeAuditable(nil)
	c := fakeAuditable{{Layer: "c", Name: "y", Detail: "2"}, {Layer: "c", Name: "z", Detail: "3"}}
	got := Audit(a, nil, b, c)
	if len(got) != 3 {
		t.Fatalf("Audit aggregated %d violations, want 3", len(got))
	}
	if got[0].Layer != "a" || got[2].Name != "z" {
		t.Fatalf("Audit order wrong: %v", got)
	}
}

func TestViolationErrorTruncatesList(t *testing.T) {
	var vs []Violation
	for i := 0; i < 7; i++ {
		vs = append(vs, Violationf("ssd", "leak", "n=%d", i))
	}
	err := &ViolationError{At: 5 * sim.Millisecond, Violations: vs}
	msg := err.Error()
	if !strings.Contains(msg, "7 invariant violation(s)") {
		t.Fatalf("missing count: %q", msg)
	}
	if !strings.Contains(msg, "and 3 more") {
		t.Fatalf("missing truncation note: %q", msg)
	}
	if strings.Contains(msg, "n=5") {
		t.Fatalf("message lists more than 4 violations: %q", msg)
	}
}

func TestStallErrorMessages(t *testing.T) {
	bare := &StallError{Axis: "sim-time", Horizon: 100 * sim.Millisecond}
	if !strings.Contains(bare.Error(), "sim-time stall") {
		t.Fatalf("bare message: %q", bare.Error())
	}
	full := &StallError{
		Axis:    "event-storm",
		Horizon: 100 * sim.Millisecond,
		Dump:    &Dump{SimTime: 7 * sim.Millisecond, InFlightTotal: 3, OldestAge: 200 * sim.Millisecond},
	}
	msg := full.Error()
	for _, want := range []string{"event-storm", "3 in-flight", "oldest age"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("message %q missing %q", msg, want)
		}
	}
}

// sampleDump builds a fully-populated dump from sim-state values only.
func sampleDump() *Dump {
	return &Dump{
		SimTime:         152 * sim.Millisecond,
		EventsProcessed: 123456,
		PendingEvents:   42,
		NextEventAt:     153 * sim.Millisecond,
		Submitted:       900,
		Completed:       512,
		Failed:          1,
		InFlightTotal:   387,
		OldestAge:       150 * sim.Millisecond,
		InFlight: []CommandInfo{
			{ID: 17, Initiator: 0, Target: 1, Write: false, Bytes: 44 << 10,
				SubmittedAt: 2 * sim.Millisecond, Age: 150 * sim.Millisecond},
			{ID: 21, Initiator: 0, Target: 0, Write: true, Bytes: 23 << 10,
				SubmittedAt: 2100 * sim.Microsecond, Age: 149900 * sim.Microsecond},
		},
		Initiators: []InitiatorState{{ID: 0, InFlight: 387, RetryPending: 0}},
		Targets: []TargetState{{
			ID: 0, Inflight: 200, TXQCredit: 0, TXQCap: 1 << 20, TXQWaiting: 3,
			DevOutstanding: 64, DevParked: 3, ArbPending: 136,
			SSQs: []SSQState{{RTokens: 1, WTokens: 0, PendingR: 90, PendingW: 46}},
		}},
		Links: []LinkState{{Name: "sw:p0->ini0", Down: false, Paused: true, QueueBytes: 1 << 16, QueuePkts: 12}},
	}
}

// TestDumpRenderDeterministic renders the same dump repeatedly: the
// report must be byte-identical (no wall-clock, no map iteration).
func TestDumpRenderDeterministic(t *testing.T) {
	first := sampleDump().String()
	for i := 0; i < 5; i++ {
		if got := sampleDump().String(); got != first {
			t.Fatalf("dump render not deterministic:\n%s\nvs\n%s", first, got)
		}
	}
	for _, want := range []string{"cmd 17", "tgt 1", "oldest age", "PAUSED"} {
		if !strings.Contains(first, want) {
			t.Fatalf("dump report missing %q:\n%s", want, first)
		}
	}
}

// TestDumpJSONRoundTrip keeps the dump machine-readable: every field
// survives a JSON round trip.
func TestDumpJSONRoundTrip(t *testing.T) {
	d := sampleDump()
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Dump
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != d.String() {
		t.Fatalf("dump changed across JSON round trip:\n%s\nvs\n%s", d.String(), back.String())
	}
}
