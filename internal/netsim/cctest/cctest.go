// Package cctest is the shared conformance suite every congestion-
// control scheme registered in netsim's CC registry must pass. It
// drives a scheme's reaction point through the RateController surface
// alone — plus the optional INT/ECN-echo capabilities, fed benign
// inputs — and checks the properties the rest of the stack depends on:
//
//   - the rate stays within (0, LineRate] at all times;
//   - back-to-back congestion signals never increase the rate, and the
//     first signal strictly decreases it for signal-driven schemes;
//   - a signal-free window of benign feedback recovers the rate toward
//     line rate;
//   - the rate listener fires on every change with old != new, chained
//     (each event's old equals the previous event's new), and the rate
//     never moves without an event — SRC's rate-event source must not
//     miss transitions;
//   - the same input sequence yields a byte-identical rate trajectory
//     (math.Float64bits) across fresh runs: determinism.
//
// Tests invoke Conformance once per registry entry, so a newly
// registered scheme is covered without writing any scheme-specific
// test code.
package cctest

import (
	"math"
	"testing"

	"srcsim/internal/hpcc"
	"srcsim/internal/netsim"
	"srcsim/internal/sim"
)

// lineRate is the fabric line rate every conformance controller runs
// at; small enough that signal bursts reach scheme floors quickly.
const lineRate = 10e9

// newController builds a fresh engine and reaction point for the
// scheme exactly the way the NIC does: through the registry
// constructor with a defaulted fabric config.
func newController(sch *netsim.CCScheme) (*sim.Engine, netsim.RateController) {
	eng := sim.NewEngine()
	cfg := netsim.Config{CC: sch.Alg}
	cfg.DCQCN.LineRate = lineRate
	cfg = cfg.WithDefaults()
	return eng, sch.New(netsim.CCEnv{Eng: eng, Cfg: &cfg})
}

// feedBenign drives steps of congestion-free feedback appropriate to
// whatever capabilities the controller exposes — sent bytes, low-RTT
// acks, unmarked ECN echo, idle-path INT samples — advancing the
// engine between steps, then drains all pending timers.
func feedBenign(eng *sim.Engine, rc netsim.RateController, steps int) {
	intRP, _ := rc.(netsim.INTObserver)
	ecnRP, _ := rc.(netsim.ECNEchoObserver)
	txBytes := uint64(0)
	tsNs := uint64(eng.Now())
	for i := 0; i < steps; i++ {
		rc.OnBytesSent(4096)
		if rc.NeedsAck() {
			rc.OnAck(10 * sim.Microsecond)
		}
		if ecnRP != nil {
			ecnRP.OnAckECN(false)
		}
		if intRP != nil {
			// An idle bottleneck: empty queue, ~5% port utilisation.
			txBytes += 1250
			tsNs += 20000
			intRP.OnINTAck(&hpcc.INTHeader{Hops: []hpcc.INTHop{
				{Node: 1, Queue: 0, TxBytes: txBytes, TsNs: tsNs, RateBps: lineRate},
			}})
		}
		eng.Run(eng.Now() + 20*sim.Microsecond)
	}
	eng.RunUntilIdle()
}

// Conformance runs the full property suite against one registered
// scheme.
func Conformance(t *testing.T, sch *netsim.CCScheme) {
	t.Run("Bounds", func(t *testing.T) {
		eng, rc := newController(sch)
		if r := rc.Rate(); r <= 0 || r > lineRate {
			t.Fatalf("initial rate %v outside (0, %v]", r, float64(lineRate))
		}
		rc.SetRateListener(func(_, new float64) {
			if new <= 0 || new > lineRate {
				t.Fatalf("rate moved to %v, outside (0, %v]", new, float64(lineRate))
			}
		})
		for i := 0; i < 50; i++ {
			rc.OnCongestionSignal()
		}
		feedBenign(eng, rc, 100)
	})

	t.Run("MonotoneDecreaseOnSignals", func(t *testing.T) {
		_, rc := newController(sch)
		prev := rc.Rate()
		for i := 0; i < 50; i++ {
			rc.OnCongestionSignal()
			if rc.Rate() > prev {
				t.Fatalf("signal %d increased rate %v -> %v", i, prev, rc.Rate())
			}
			prev = rc.Rate()
		}
		if sch.SignalDriven && rc.Rate() >= lineRate {
			t.Fatalf("signal-driven scheme held %v, want a strict decrease", rc.Rate())
		}
	})

	t.Run("RecoveryWhenSignalFree", func(t *testing.T) {
		eng, rc := newController(sch)
		for i := 0; i < 20; i++ {
			rc.OnCongestionSignal()
		}
		throttled := rc.Rate()
		if sch.SignalDriven && throttled >= lineRate {
			t.Fatalf("signals did not throttle (%v)", throttled)
		}
		feedBenign(eng, rc, 200)
		if got := rc.Rate(); got > lineRate {
			t.Fatalf("recovered past line rate: %v", got)
		} else if sch.SignalDriven && got <= throttled {
			t.Fatalf("rate %v did not recover from %v in a signal-free window", got, throttled)
		}
	})

	t.Run("ListenerCompleteness", func(t *testing.T) {
		eng, rc := newController(sch)
		last := rc.Rate()
		rc.SetRateListener(func(old, new float64) {
			if old == new {
				t.Fatalf("listener fired with old == new == %v", old)
			}
			if old != last {
				t.Fatalf("listener old %v does not chain from last reported %v", old, last)
			}
			last = new
		})
		check := func(ctx string) {
			if rc.Rate() != last {
				t.Fatalf("%s: rate %v moved without a listener event (last %v)", ctx, rc.Rate(), last)
			}
		}
		for i := 0; i < 10; i++ {
			rc.OnCongestionSignal()
			check("signal")
		}
		intRP, _ := rc.(netsim.INTObserver)
		ecnRP, _ := rc.(netsim.ECNEchoObserver)
		for i := 0; i < 50; i++ {
			rc.OnBytesSent(4096)
			if rc.NeedsAck() {
				rc.OnAck(10 * sim.Microsecond)
			}
			if ecnRP != nil {
				ecnRP.OnAckECN(i%4 == 0)
			}
			if intRP != nil {
				intRP.OnINTAck(&hpcc.INTHeader{Hops: []hpcc.INTHop{
					{Node: 1, Queue: uint64(i%3) * 1 << 18, TxBytes: uint64(i) * 2500, TsNs: uint64(i+1) * 20000, RateBps: lineRate},
				}})
			}
			check("feedback")
			eng.Run(eng.Now() + 20*sim.Microsecond)
			check("tick")
		}
		eng.RunUntilIdle()
		check("drain")
	})

	t.Run("Determinism", func(t *testing.T) {
		a := trajectory(sch)
		b := trajectory(sch)
		if len(a) != len(b) {
			t.Fatalf("trajectory lengths differ: %d != %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trajectories diverge at event %d: %x != %x",
					i, a[i], b[i])
			}
		}
	})
}

// trajectory runs one fixed congest-recover-congest scenario on a
// fresh controller and returns every reported rate as raw float bits.
func trajectory(sch *netsim.CCScheme) []uint64 {
	eng, rc := newController(sch)
	traj := []uint64{math.Float64bits(rc.Rate())}
	rc.SetRateListener(func(_, new float64) {
		traj = append(traj, math.Float64bits(new))
	})
	for i := 0; i < 5; i++ {
		rc.OnCongestionSignal()
	}
	feedBenign(eng, rc, 50)
	for i := 0; i < 3; i++ {
		rc.OnCongestionSignal()
	}
	feedBenign(eng, rc, 50)
	return append(traj, math.Float64bits(rc.Rate()))
}
