package cctest

import (
	"testing"

	"srcsim/internal/netsim"
)

// TestAllRegisteredSchemes runs the conformance suite over every
// scheme in the CC registry, so registering a scheme is what opts it
// into coverage.
func TestAllRegisteredSchemes(t *testing.T) {
	schemes := netsim.CCSchemes()
	if len(schemes) < 6 {
		t.Fatalf("registry holds %d schemes, want at least the 6 built-ins", len(schemes))
	}
	for _, sch := range schemes {
		t.Run(sch.Name, func(t *testing.T) { Conformance(t, sch) })
	}
}
