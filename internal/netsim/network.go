package netsim

import (
	"fmt"

	"srcsim/internal/hpcc"
	"srcsim/internal/obs"
	"srcsim/internal/sim"
)

// Network owns the nodes, links, flows, and global counters of one
// simulated fabric.
type Network struct {
	Cfg Config

	eng   *sim.Engine
	rng   *sim.RNG
	nodes []*Node
	flows []*Flow // indexed by Flow.ID

	// pktFree recycles Packets: a frame is freed at each terminal point
	// (host delivery, pause/resume consumption, drop, corruption discard)
	// and reused for the next transmission, so the steady-state wire path
	// allocates nothing. Gated by sim.PoolingEnabled at construction.
	pktFree []*Packet
	poolOn  bool

	// chaosRNG drives injected packet loss/corruption. It is created
	// lazily on the first SetLoss/SeedChaos call and drawn from only when
	// a port has a non-zero loss probability, so fault-free runs never
	// touch it and stay byte-identical to pre-fault output.
	chaosRNG *sim.RNG

	obs *netObs

	// Global counters.
	ECNMarks   uint64
	PFCPauses  uint64
	PFCResumes uint64
	CNPsSent   uint64

	// Fault and recovery counters (all zero unless faults are injected
	// or the PFC watchdog is enabled).
	DroppedPackets   uint64 // lost to injected drop probability or dead links
	CorruptedPackets uint64 // damaged by injected corruption (discarded downstream)
	RouteDrops       uint64 // forwarded packets with no surviving route
	WatchdogTrips    uint64 // PFC pauses force-resumed by the watchdog
	ForcedPauses     uint64 // adversarial pauses injected via ForcePause
	LinkDowns        uint64
	LinkUps          uint64
}

// netObs holds the fabric's resolved instrumentation handles; nil when
// observability is off, so hot paths pay a single pointer test.
type netObs struct {
	sc *obs.Scope

	ecnMarks      *obs.Counter
	pfcPauses     *obs.Counter
	pfcResumes    *obs.Counter
	cnpsSent      *obs.Counter
	queuePeak     *obs.Gauge
	watchdogTrips *obs.Counter

	// Shared DCQCN per-flow handles (see dcqcn.RPObs).
	rpCNPs      *obs.Counter
	rpCuts      *obs.Counter
	rpIncreases *obs.Counter
	rpCutDepth  *obs.Histogram
}

// Instrument attaches the fabric to a metrics registry and trace scope.
// Either may be nil. Call before traffic starts: flows created after
// this call inherit DCQCN instrumentation; flows created before do not.
// With both arguments nil the call is a no-op and the fabric stays on
// its zero-overhead path.
func (n *Network) Instrument(reg *obs.Registry, sc *obs.Scope, labels ...obs.Label) {
	if reg == nil && !sc.Enabled() {
		return
	}
	n.obs = &netObs{
		sc:            sc,
		ecnMarks:      reg.Counter("netsim", "ecn_marks", labels...),
		pfcPauses:     reg.Counter("netsim", "pfc_pauses", labels...),
		pfcResumes:    reg.Counter("netsim", "pfc_resumes", labels...),
		cnpsSent:      reg.Counter("netsim", "cnps_sent", labels...),
		queuePeak:     reg.Gauge("netsim", "port_queue_peak_bytes", labels...),
		watchdogTrips: reg.Counter("netsim", "pfc_watchdog_trips", labels...),
		rpCNPs:        reg.Counter("dcqcn", "cnps_received", labels...),
		rpCuts:        reg.Counter("dcqcn", "rate_cuts", labels...),
		rpIncreases:   reg.Counter("dcqcn", "rate_increases", labels...),
		rpCutDepth:    reg.Histogram("dcqcn", "cut_depth_pct", labels...),
	}
}

// NewNetwork builds an empty fabric on eng.
func NewNetwork(eng *sim.Engine, cfg Config) (*Network, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Network{
		Cfg:    cfg,
		eng:    eng,
		rng:    sim.NewRNG(cfg.Seed ^ 0x6e7374),
		poolOn: sim.PoolingEnabled(),
	}, nil
}

// allocPkt takes a zeroed Packet from the free list (or the heap).
func (n *Network) allocPkt() *Packet {
	if k := len(n.pktFree); k > 0 {
		pkt := n.pktFree[k-1]
		n.pktFree[k-1] = nil
		n.pktFree = n.pktFree[:k-1]
		return pkt
	}
	return &Packet{}
}

// freePkt returns a packet that has reached a terminal point. The packet
// is zeroed here so a recycled frame can never leak ECN/Corrupted/Payload
// state into its next flight.
func (n *Network) freePkt(pkt *Packet) {
	*pkt = Packet{}
	if n.poolOn {
		n.pktFree = append(n.pktFree, pkt)
	}
}

// Engine returns the event engine.
func (n *Network) Engine() *sim.Engine { return n.eng }

// chaos returns the loss RNG, creating it from the fabric seed on first
// use. Kept separate from the ECN stream so enabling faults never
// perturbs marking decisions of the fault-free portions of a run.
func (n *Network) chaos() *sim.RNG {
	if n.chaosRNG == nil {
		n.chaosRNG = sim.NewRNG(n.Cfg.Seed ^ 0x63686173)
	}
	return n.chaosRNG
}

// SeedChaos (re)seeds the loss RNG, pinning injected packet loss to a
// fault-schedule seed independent of the fabric seed.
func (n *Network) SeedChaos(seed uint64) { n.chaosRNG = sim.NewRNG(seed ^ 0x63686173) }

// Node is a host or switch.
type Node struct {
	ID       NodeID
	Name     string
	IsSwitch bool

	net      *Network
	ports    []*Port
	nextHops [][]int16 // per destination: candidate egress port indexes

	// Hosts only.
	NIC *HostNIC

	// PFC ingress accounting (switches and hosts alike).
	ingressBytes []int64
	xoffSent     []bool

	// Counters.
	PFCPausesRx uint64
	ForwardedPk uint64
}

// AddHost adds a host node with an attached NIC.
func (n *Network) AddHost(name string) *Node {
	node := &Node{ID: NodeID(len(n.nodes)), Name: name, net: n}
	node.NIC = newHostNIC(node)
	n.nodes = append(n.nodes, node)
	return node
}

// AddSwitch adds a switch node.
func (n *Network) AddSwitch(name string) *Node {
	node := &Node{ID: NodeID(len(n.nodes)), Name: name, IsSwitch: true, net: n}
	n.nodes = append(n.nodes, node)
	return node
}

// Nodes returns all nodes in creation order.
func (n *Network) Nodes() []*Node { return n.nodes }

// Node returns the node with the given ID.
func (n *Network) Node(id NodeID) *Node { return n.nodes[id] }

// Port is one direction of attachment of a node to a link: it owns the
// egress queue toward its peer.
type Port struct {
	node  *Node
	index int
	peer  *Port

	rate  float64  // bits/s
	delay sim.Time // propagation

	ctrlQ        []*Packet
	ctrlHead     int
	dataQ        []*Packet
	dataHead     int
	QueueBytes   int64
	transmitting bool
	paused       bool

	// Fault state (see SetLinkState / SetLoss).
	down        bool
	downAt      sim.Time
	dropProb    float64
	corruptProb float64

	// Counters.
	TxPackets, TxBytes uint64
	PausedTime         sim.Time
	pausedAt           sim.Time
}

// Peer returns the other end of this port's link.
func (p *Port) Peer() *Port { return p.peer }

// Down reports whether the link this port belongs to is failed.
func (p *Port) Down() bool { return p.down }

// SetLoss sets this egress direction's per-packet drop and corruption
// probabilities, breaking the fabric's lossless assumption (fault
// injection). Zero/zero restores perfect delivery.
func (p *Port) SetLoss(drop, corrupt float64) {
	if drop < 0 || drop > 1 || corrupt < 0 || corrupt > 1 {
		panic(fmt.Sprintf("netsim: loss probabilities %v/%v out of [0,1]", drop, corrupt))
	}
	if drop > 0 || corrupt > 0 {
		p.node.net.chaos() // materialise the RNG before traffic draws from it
	}
	p.dropProb, p.corruptProb = drop, corrupt
}

// SetLinkState fails or restores the full-duplex link owned by p (both
// directions; either end may be passed). A down link stops transmitting —
// queued packets wait, frames already on the wire still deliver — and is
// excluded from routing: ComputeRoutes runs on every transition, so
// traffic fails over to surviving paths where the topology has them and
// is dropped (counted in RouteDrops) where it does not.
func (n *Network) SetLinkState(p *Port, up bool) {
	if p.down == !up {
		return
	}
	now := n.eng.Now()
	if up {
		p.down, p.peer.down = false, false
		n.LinkUps++
		if o := n.obs; o != nil && o.sc.Enabled() {
			o.sc.Span("netsim", fmt.Sprintf("link_down %s<>%s", p.node.Name, p.peer.node.Name),
				p.downAt, now)
		}
	} else {
		p.down, p.peer.down = true, true
		p.downAt, p.peer.downAt = now, now
		n.LinkDowns++
	}
	n.ComputeRoutes()
	if up {
		p.trySend()
		p.peer.trySend()
	}
}

// Connect links two nodes with a full-duplex link of the given rate
// (bits/s; 0 uses the configured line rate) and propagation delay.
func (n *Network) Connect(a, b *Node, rate float64, delay sim.Time) (ab, ba *Port) {
	if rate <= 0 {
		rate = n.Cfg.DCQCN.LineRate
	}
	if delay < 0 {
		panic("netsim: negative link delay")
	}
	pa := &Port{node: a, index: len(a.ports), rate: rate, delay: delay}
	pb := &Port{node: b, index: len(b.ports), rate: rate, delay: delay}
	pa.peer, pb.peer = pb, pa
	a.ports = append(a.ports, pa)
	a.ingressBytes = append(a.ingressBytes, 0)
	a.xoffSent = append(a.xoffSent, false)
	b.ports = append(b.ports, pb)
	b.ingressBytes = append(b.ingressBytes, 0)
	b.xoffSent = append(b.xoffSent, false)
	return pa, pb
}

// ComputeRoutes builds per-destination ECMP next-hop tables with BFS.
// Call after the topology is final and before any traffic.
func (n *Network) ComputeRoutes() {
	total := len(n.nodes)
	for _, node := range n.nodes {
		node.nextHops = make([][]int16, total)
	}
	for _, dst := range n.nodes {
		// BFS from dst over reverse edges (links are symmetric).
		dist := make([]int, total)
		for i := range dist {
			dist[i] = -1
		}
		dist[dst.ID] = 0
		queue := []*Node{dst}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, p := range cur.ports {
				if p.down {
					continue
				}
				nb := p.peer.node
				if dist[nb.ID] < 0 {
					dist[nb.ID] = dist[cur.ID] + 1
					queue = append(queue, nb)
				}
			}
		}
		for _, node := range n.nodes {
			if node.ID == dst.ID || dist[node.ID] < 0 {
				continue
			}
			for i, p := range node.ports {
				if p.down {
					continue
				}
				if d := dist[p.peer.node.ID]; d >= 0 && d == dist[node.ID]-1 {
					node.nextHops[dst.ID] = append(node.nextHops[dst.ID], int16(i))
				}
			}
		}
	}
}

// pickEgress selects the ECMP next hop for a packet at node. It returns
// nil when the routing tables are computed but no path survives (links
// down): the caller drops the packet. A nil table still panics — that is
// a wiring bug, not a fault.
func (node *Node) pickEgress(pkt *Packet) *Port {
	if node.nextHops == nil {
		panic(fmt.Sprintf("netsim: no route from %s to node %d (ComputeRoutes missing?)", node.Name, pkt.Dst))
	}
	hops := node.nextHops[pkt.Dst]
	if len(hops) == 0 {
		return nil
	}
	if len(hops) == 1 {
		return node.ports[hops[0]]
	}
	// Deterministic flow hash keeps a flow on one path (no reordering).
	h := uint64(pkt.FlowID)*0x9e3779b97f4a7c15 ^ uint64(pkt.Src)<<32 ^ uint64(pkt.Dst)
	h ^= h >> 29
	return node.ports[hops[h%uint64(len(hops))]]
}

// enqueueCtrl queues a control frame (CNP/PFC) at highest priority;
// control traffic ignores PFC pause and never gets ECN-marked.
func (p *Port) enqueueCtrl(pkt *Packet) {
	p.ctrlQ = append(p.ctrlQ, pkt)
	p.trySend()
}

// enqueueData queues a data packet, applying ECN marking at switches and
// PFC ingress accounting.
func (p *Port) enqueueData(pkt *Packet) {
	net := p.node.net
	if p.node.IsSwitch && !net.Cfg.DisableECN && !pkt.ECN {
		if net.rng.Float64() < net.Cfg.DCQCN.MarkProbability(p.QueueBytes) {
			pkt.ECN = true
			net.ECNMarks++
			if o := net.obs; o != nil {
				o.ecnMarks.Inc()
				if o.sc.Enabled() {
					o.sc.Instant(net.eng.Now(), "netsim", "ecn_mark "+p.node.Name,
						obs.Num("queue_bytes", float64(p.QueueBytes)))
				}
			}
		}
	}
	p.dataQ = append(p.dataQ, pkt)
	p.QueueBytes += int64(pkt.Size)
	if o := net.obs; o != nil {
		o.queuePeak.SetMax(float64(p.QueueBytes))
	}
	if pkt.ingress != nil {
		node := p.node
		in := pkt.ingress.index
		node.ingressBytes[in] += int64(pkt.Size)
		if !net.Cfg.DisablePFC && !node.xoffSent[in] && node.ingressBytes[in] > net.Cfg.PFCXoff {
			node.xoffSent[in] = true
			node.sendPFC(pkt.ingress, PauseFrame)
		}
	}
	p.trySend()
}

// sendPFC emits a pause/resume frame out of the given ingress port to the
// upstream neighbour.
func (node *Node) sendPFC(in *Port, kind Kind) {
	net := node.net
	if kind == PauseFrame {
		net.PFCPauses++
		if net.obs != nil {
			net.obs.pfcPauses.Inc()
		}
	} else {
		net.PFCResumes++
		if net.obs != nil {
			net.obs.pfcResumes.Inc()
		}
	}
	pkt := net.allocPkt()
	pkt.Src, pkt.Dst = node.ID, in.peer.node.ID
	pkt.Size, pkt.Kind = net.Cfg.CtrlPacketSize, kind
	in.enqueueCtrl(pkt)
}

// trySend starts transmitting the next eligible packet, if idle. A down
// link transmits nothing: queued packets wait for SetLinkState to
// restore it.
func (p *Port) trySend() {
	if p.transmitting || p.down {
		return
	}
	var pkt *Packet
	switch {
	case p.ctrlHead < len(p.ctrlQ):
		pkt = p.ctrlQ[p.ctrlHead]
		p.ctrlQ[p.ctrlHead] = nil
		p.ctrlHead++
		if p.ctrlHead > 64 && p.ctrlHead*2 >= len(p.ctrlQ) {
			p.ctrlQ = append(p.ctrlQ[:0], p.ctrlQ[p.ctrlHead:]...)
			p.ctrlHead = 0
		}
	case p.dataHead < len(p.dataQ) && !p.paused:
		pkt = p.dataQ[p.dataHead]
		p.dataQ[p.dataHead] = nil
		p.dataHead++
		if p.dataHead > 64 && p.dataHead*2 >= len(p.dataQ) {
			p.dataQ = append(p.dataQ[:0], p.dataQ[p.dataHead:]...)
			p.dataHead = 0
		}
		p.QueueBytes -= int64(pkt.Size)
		if pkt.ingress != nil {
			node := p.node
			in := pkt.ingress.index
			node.ingressBytes[in] -= int64(pkt.Size)
			net := p.node.net
			if node.xoffSent[in] && node.ingressBytes[in] < net.Cfg.PFCXon {
				node.xoffSent[in] = false
				node.sendPFC(pkt.ingress, ResumeFrame)
			}
			pkt.ingress = nil
		}
	default:
		return
	}

	p.transmitting = true
	eng := p.node.net.eng
	txTime := sim.Time(float64(pkt.Size*8) / p.rate * float64(sim.Second))
	if txTime < 1 {
		txTime = 1
	}
	pkt.tx = p
	eng.AfterArg(txTime, portTxDone, pkt)
}

// portTxDone resumes a frame whose serialisation just finished on pkt.tx.
func portTxDone(x any) {
	pkt := x.(*Packet)
	p := pkt.tx
	pkt.tx = nil
	p.txDone(pkt)
}

// deliverPkt hands a propagated frame to the node behind pkt.rx.
func deliverPkt(x any) {
	pkt := x.(*Packet)
	in := pkt.rx
	pkt.rx = nil
	in.node.receive(pkt, in)
}

// txDone completes one frame's serialisation: account it, apply injected
// faults, and put it on the wire toward the peer.
func (p *Port) txDone(pkt *Packet) {
	p.transmitting = false
	p.TxPackets++
	p.TxBytes += uint64(pkt.Size)
	net := p.node.net
	if p.down {
		// The link failed while the frame was being serialised.
		net.DroppedPackets++
		net.freePkt(pkt)
		return
	}
	if p.dropProb > 0 && net.chaos().Float64() < p.dropProb {
		net.DroppedPackets++
		net.freePkt(pkt)
		p.trySend()
		return
	}
	if p.corruptProb > 0 && net.chaos().Float64() < p.corruptProb {
		pkt.Corrupted = true
		net.CorruptedPackets++
	}
	pkt.rx = p.peer
	net.eng.AfterArg(p.delay, deliverPkt, pkt)
	p.trySend()
}

// DataQueueLen returns the number of waiting data packets.
func (p *Port) DataQueueLen() int { return len(p.dataQ) - p.dataHead }

// Paused reports whether PFC has silenced this port's data traffic.
func (p *Port) Paused() bool { return p.paused }

// receive handles a packet arriving at node on port in.
func (node *Node) receive(pkt *Packet, in *Port) {
	net := node.net
	if pkt.Corrupted {
		// Failed FCS check: the frame is discarded at line ingress, so it
		// neither pauses, resumes, nor delivers anything.
		net.freePkt(pkt)
		return
	}
	switch pkt.Kind {
	case PauseFrame:
		node.PFCPausesRx++
		in.pause()
		net.freePkt(pkt)
		return
	case ResumeFrame:
		in.resume()
		net.freePkt(pkt)
		return
	}
	if pkt.Dst == node.ID {
		if node.NIC == nil {
			panic(fmt.Sprintf("netsim: packet addressed to switch %s", node.Name))
		}
		node.NIC.receive(pkt)
		net.freePkt(pkt)
		return
	}
	// Forward.
	node.ForwardedPk++
	egress := node.pickEgress(pkt)
	if egress == nil {
		// No surviving path (links down): the fabric sheds the packet and
		// end-to-end recovery (NVMe-oF retry) takes over.
		net.RouteDrops++
		net.DroppedPackets++
		net.freePkt(pkt)
		return
	}
	if pkt.Kind == Data {
		pkt.ingress = in
		if pkt.INT != nil {
			// Stamp this hop's telemetry (CCHPCC flows only): the egress
			// queue depth before this packet joins it, the port's
			// cumulative TxBytes (consecutive samples yield its output
			// rate), and the port rate.
			pkt.INT.AddHop(hpcc.INTHop{
				Node:    uint32(node.ID),
				Queue:   uint64(egress.QueueBytes),
				TxBytes: egress.TxBytes,
				TsNs:    uint64(net.eng.Now()),
				RateBps: uint64(egress.rate),
			})
		}
		egress.enqueueData(pkt)
	} else {
		egress.enqueueCtrl(pkt)
	}
}

// pause silences the port's data traffic (a PFC pause frame arrived) and
// arms the storm watchdog when configured.
func (p *Port) pause() {
	if p.paused {
		return
	}
	p.paused = true
	p.pausedAt = p.node.net.eng.Now()
	p.armWatchdog()
}

// resume lifts a PFC pause, accounting the paused interval and restarting
// transmission. Safe to call on an unpaused port.
func (p *Port) resume() {
	if !p.paused {
		return
	}
	p.paused = false
	net := p.node.net
	now := net.eng.Now()
	p.PausedTime += now - p.pausedAt
	if o := net.obs; o != nil && o.sc.Enabled() {
		o.sc.Span("netsim", fmt.Sprintf("pfc_pause %s:p%d", p.node.Name, p.index),
			p.pausedAt, now)
	}
	p.trySend()
}

// armWatchdog schedules a PFC storm check for the pause episode that just
// began. If the same episode is still in force when the check fires, the
// watchdog trips: the trip is counted, surfaced as a trace instant, and
// the port is force-resumed — recovery from pause storms and lost resume
// frames. No-op unless Config.PFCWatchdog is positive.
func (p *Port) armWatchdog() {
	net := p.node.net
	wd := net.Cfg.PFCWatchdog
	if wd <= 0 {
		return
	}
	started := p.pausedAt
	net.eng.After(wd, func() {
		if !p.paused || p.pausedAt != started {
			return
		}
		net.WatchdogTrips++
		if o := net.obs; o != nil {
			o.watchdogTrips.Inc()
			if o.sc.Enabled() {
				o.sc.Instant(net.eng.Now(), "netsim",
					fmt.Sprintf("pfc_watchdog_trip %s:p%d", p.node.Name, p.index),
					obs.Num("paused_us", (net.eng.Now()-started).Micros()))
			}
		}
		p.resume()
	})
}

// ForcePause injects an adversarial PFC pause on the port's data traffic,
// as if a rogue peer emitted a pause storm. With d > 0 the pause lifts
// after d; with d == 0 it persists until a genuine resume frame arrives or
// the PFC watchdog trips.
func (n *Network) ForcePause(p *Port, d sim.Time) {
	n.ForcedPauses++
	p.pause()
	if d > 0 {
		started := p.pausedAt
		n.eng.After(d, func() {
			if p.paused && p.pausedAt == started {
				p.resume()
			}
		})
	}
}

// Ports returns the node's ports (for inspection in tests/metrics).
func (node *Node) Ports() []*Port { return node.ports }
