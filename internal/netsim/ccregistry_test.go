package netsim

import (
	"strings"
	"testing"

	"srcsim/internal/ccaimd"
	"srcsim/internal/hpcc"
	"srcsim/internal/pfconly"
	"srcsim/internal/sim"
	"srcsim/internal/timely"
)

// TestValidateRejectsUnknownCC pins the fix for the silent DCQCN
// fallthrough: an unregistered algorithm value is a configuration
// error, both at Validate and at fabric construction.
func TestValidateRejectsUnknownCC(t *testing.T) {
	cfg := Config{CC: CCAlg(99)}
	err := cfg.Validate()
	if err == nil {
		t.Fatal("Validate accepted an unknown CC algorithm")
	}
	if !strings.Contains(err.Error(), "unknown congestion-control") {
		t.Fatalf("error %q does not name the unknown algorithm", err)
	}
	if _, err := NewNetwork(sim.NewEngine(), cfg); err == nil {
		t.Fatal("NewNetwork accepted an unknown CC algorithm")
	}
}

// TestValidateSchemeBlocks checks that every scheme's config block is
// validated uniformly through the registry, with the line rate
// resolved from the fabric default.
func TestValidateSchemeBlocks(t *testing.T) {
	cases := map[string]Config{
		"timely tlow above thigh": {CC: CCTIMELY,
			TIMELY: timely.Config{Tlow: 200 * sim.Microsecond, Thigh: 100 * sim.Microsecond}},
		"timely min above resolved line": {CC: CCTIMELY,
			TIMELY: timely.Config{MinRate: 80e9}}, // fabric line defaults to 40e9
		"aimd gain above one": {CC: CCAIMD,
			AIMD: ccaimd.Config{Gain: 1.5}},
		"aimd min above resolved line": {CC: CCAIMD,
			AIMD: ccaimd.Config{MinRate: 80e9}},
		"hpcc eta above one": {CC: CCHPCC,
			HPCC: hpcc.Config{Eta: 1.5}},
		"hpcc min above resolved line": {CC: CCHPCC,
			HPCC: hpcc.Config{MinRate: 80e9}},
		"pfc cut factor one": {CC: CCPFC,
			PFC: pfconly.Config{CutFactor: 1}},
		"pfc min above resolved line": {CC: CCPFC,
			PFC: pfconly.Config{MinRate: 80e9}},
	}
	for name, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	// Defaulted blocks validate for every registered scheme.
	for _, sch := range CCSchemes() {
		if err := (Config{CC: sch.Alg}).Validate(); err != nil {
			t.Errorf("%s: default config rejected: %v", sch.Name, err)
		}
	}
}

// TestParseCCAlgRoundTrip: every registered name parses to its own
// algorithm value; unknown names fail and list the registry.
func TestParseCCAlgRoundTrip(t *testing.T) {
	for _, name := range CCNames() {
		alg, err := ParseCCAlg(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sch, ok := LookupCC(alg)
		if !ok || sch.Name != name {
			t.Fatalf("%s resolved to %v (%v)", name, alg, sch)
		}
	}
	_, err := ParseCCAlg("bbr")
	if err == nil || !strings.Contains(err.Error(), "dcqcn") {
		t.Fatalf("unknown name error %v should list registered schemes", err)
	}
}

// TestRegistryCapabilities pins the capability bits the NIC wires
// from: CNP generation stays on for the pre-registry schemes (their
// goldens depend on it) and off for the ack-echo schemes.
func TestRegistryCapabilities(t *testing.T) {
	wantCNP := map[string]bool{
		"dcqcn": true, "timely": true, "none": true, "pfc": true,
		"aimd": false, "hpcc": false,
	}
	for _, sch := range CCSchemes() {
		want, ok := wantCNP[sch.Name]
		if !ok {
			continue // a future scheme; nothing pinned here
		}
		if sch.WantsCNP != want {
			t.Errorf("%s: WantsCNP %v, want %v", sch.Name, sch.WantsCNP, want)
		}
		if sch.SignalDriven == (sch.Name == "none") {
			t.Errorf("%s: SignalDriven %v", sch.Name, sch.SignalDriven)
		}
	}
}

// TestFabricSmokeAllSchemes runs a small incast under every registered
// scheme: delivery must stay lossless, signal-driven controllers must
// cut under congestion, and INT headers must ride data packets exactly
// for schemes whose controller consumes them.
func TestFabricSmokeAllSchemes(t *testing.T) {
	for _, sch := range CCSchemes() {
		t.Run(sch.Name, func(t *testing.T) {
			cfg := Config{CC: sch.Alg, Seed: 11}
			cfg.DCQCN.LineRate = 10e9
			eng, net := newTestNet(t, cfg)
			hosts := BuildRack(net, 3, 10e9, sim.Microsecond)
			f0 := net.NewFlow(hosts[0], hosts[2])
			f1 := net.NewFlow(hosts[1], hosts[2])

			_, wantsINT := f0.RP.(INTObserver)
			if f0.needsINT != wantsINT {
				t.Fatalf("needsINT %v but controller INT capability %v", f0.needsINT, wantsINT)
			}
			if wantsINT != (sch.Name == "hpcc") {
				t.Fatalf("INT capability on %s is %v", sch.Name, wantsINT)
			}

			var cuts int
			f0.RP.SetRateListener(func(old, new float64) {
				if new < old {
					cuts++
				}
			})
			var sent uint64
			for i := 0; i < 40; i++ {
				f0.Send(1<<20, nil)
				f1.Send(1<<20, nil)
				sent += 2 << 20
			}
			eng.RunUntilIdle()
			if hosts[2].NIC.BytesReceived != sent {
				t.Fatalf("lost bytes: %d/%d", hosts[2].NIC.BytesReceived, sent)
			}
			if sch.SignalDriven && cuts == 0 {
				t.Fatalf("%s never cut the rate under incast", sch.Name)
			}
			if !sch.SignalDriven && f0.RP.Rate() != 10e9 {
				t.Fatalf("uncontrolled baseline moved to %v", f0.RP.Rate())
			}
		})
	}
}
