package netsim

import (
	"fmt"

	"srcsim/internal/dcqcn"
	"srcsim/internal/sim"
	"srcsim/internal/timely"
)

// HostNIC terminates flows at a host: it paces per-flow transmission
// under a DCQCN reaction point, reassembles received messages, generates
// CNPs for ECN-marked arrivals (notification point), and dispatches CNPs
// back to the owning flow's RP.
type HostNIC struct {
	node *Node

	// OnMessage is invoked when a complete message arrives, with the
	// delivering flow, the message size, and the sender-attached payload.
	OnMessage func(flow *Flow, msgID uint64, size int, payload any)

	flows []*Flow // flows originating here

	recv map[recvKey]int // bytes received per in-flight message

	// Counters.
	CNPsReceived  uint64
	BytesSent     uint64
	BytesReceived uint64
	MsgsDelivered uint64
}

type recvKey struct {
	flow int
	msg  uint64
}

func newHostNIC(node *Node) *HostNIC {
	return &HostNIC{node: node, recv: make(map[recvKey]int)}
}

// Node returns the owning host node.
func (nic *HostNIC) Node() *Node { return nic.node }

// Flow is a unidirectional RDMA-like data stream between two hosts with
// its own DCQCN state. Messages sent on a flow are segmented into MTU
// packets, paced at the RP's current rate, and delivered in order.
type Flow struct {
	ID  int
	Src *Node
	Dst *Node

	// RP is the flow's reaction point (DCQCN by default; selected by
	// Config.CC).
	RP RateController
	NP *dcqcn.NP

	nic *HostNIC

	sendq    []*outMsg
	headSent int // bytes of the head message already transmitted
	pacing   bool
	nextFree sim.Time
	nextMsg  uint64

	// QueuedBytes counts bytes accepted by Send but not yet handed to
	// the port — together with the port queue this is the paper's "TXQ"
	// backlog on targets.
	QueuedBytes int64
}

type outMsg struct {
	id      uint64
	size    int
	payload any
}

// staticRC is the CCNone controller: a fixed line-rate pacer.
type staticRC struct{ rate float64 }

func (s *staticRC) Rate() float64                          { return s.rate }
func (s *staticRC) OnBytesSent(int)                        {}
func (s *staticRC) OnCongestionSignal()                    {}
func (s *staticRC) OnAck(sim.Time)                         {}
func (s *staticRC) NeedsAck() bool                         { return false }
func (s *staticRC) SetRateListener(func(old, new float64)) {}

// newRateController builds the configured reaction point.
func (n *Network) newRateController() RateController {
	switch n.Cfg.CC {
	case CCTIMELY:
		tc := n.Cfg.TIMELY
		if tc.LineRate <= 0 {
			tc.LineRate = n.Cfg.DCQCN.LineRate
		}
		return timely.NewRP(tc)
	case CCNone:
		return &staticRC{rate: n.Cfg.DCQCN.LineRate}
	default:
		return dcqcn.NewRP(n.eng, n.Cfg.DCQCN)
	}
}

// NewFlow creates a flow from src to dst. Rate-change notifications can
// be observed via flow.RP.SetRateListener.
func (n *Network) NewFlow(src, dst *Node) *Flow {
	if src.NIC == nil || dst.NIC == nil {
		panic("netsim: flows connect hosts, not switches")
	}
	if src == dst {
		panic("netsim: flow to self")
	}
	f := &Flow{
		ID:  n.nextF,
		Src: src, Dst: dst,
		RP:  n.newRateController(),
		NP:  dcqcn.NewNP(n.Cfg.DCQCN),
		nic: src.NIC,
	}
	n.nextF++
	n.flows[f.ID] = f
	src.NIC.flows = append(src.NIC.flows, f)
	if o := n.obs; o != nil {
		if rp, ok := f.RP.(*dcqcn.RP); ok {
			rp.Obs = &dcqcn.RPObs{
				Scope:         o.sc,
				Name:          fmt.Sprintf("flow%d %s>%s", f.ID, src.Name, dst.Name),
				CNPs:          o.rpCNPs,
				RateCuts:      o.rpCuts,
				RateIncreases: o.rpIncreases,
				CutDepth:      o.rpCutDepth,
			}
		}
	}
	return f
}

// Flow returns a flow by ID.
func (n *Network) Flow(id int) *Flow { return n.flows[id] }

// Send queues a message of size bytes on the flow; payload is delivered
// with the receiver's OnMessage callback. Returns the message ID.
func (f *Flow) Send(size int, payload any) uint64 {
	if size <= 0 {
		panic(fmt.Sprintf("netsim: message size %d", size))
	}
	id := f.nextMsg
	f.nextMsg++
	f.sendq = append(f.sendq, &outMsg{id: id, size: size, payload: payload})
	f.QueuedBytes += int64(size)
	f.pump()
	return id
}

// Backlog returns bytes accepted by Send but not yet paced out to the
// host port. Together with the port queue (HostNIC.TXQBytes) this is the
// paper's "TXQ" backlog on targets.
func (f *Flow) Backlog() int64 { return f.QueuedBytes }

// TXQBytes returns the bytes waiting in this host's port queues — data
// that DCQCN or PFC is holding back from the wire.
func (nic *HostNIC) TXQBytes() int64 {
	var total int64
	for _, p := range nic.node.ports {
		total += p.QueueBytes
	}
	return total
}

// pump emits the next MTU chunk of the head message, paced at the RP
// rate. Exactly one pacing event is in flight per flow.
func (f *Flow) pump() {
	if f.pacing || len(f.sendq) == 0 {
		return
	}
	f.pacing = true
	net := f.Src.net
	eng := net.eng
	at := eng.Now()
	if f.nextFree > at {
		at = f.nextFree
	}
	eng.Schedule(at, func() {
		msg := f.sendq[0]
		chunk := msg.size - f.headSent
		mtu := net.Cfg.MTU
		last := chunk <= mtu
		if chunk > mtu {
			chunk = mtu
		}
		pkt := &Packet{
			Src: f.Src.ID, Dst: f.Dst.ID,
			FlowID: f.ID, MsgID: msg.id, MsgSize: msg.size,
			Size: chunk, Kind: Data, Last: last,
			SentAt: eng.Now(),
		}
		if last {
			pkt.Payload = msg.payload
			f.sendq[0] = nil
			f.sendq = f.sendq[1:]
			f.headSent = 0
		} else {
			f.headSent += chunk
		}
		f.QueuedBytes -= int64(chunk)
		f.nic.BytesSent += uint64(chunk)

		if len(f.Src.ports) == 0 {
			panic(fmt.Sprintf("netsim: host %s has no link", f.Src.Name))
		}
		f.Src.ports[0].enqueueData(pkt)
		f.RP.OnBytesSent(chunk)

		rate := f.RP.Rate()
		gap := sim.Time(float64(chunk*8) / rate * float64(sim.Second))
		if gap < 1 {
			gap = 1
		}
		f.nextFree = at + gap
		f.pacing = false
		f.pump()
	})
}

// sendCtrl routes a control frame toward dst.
func (nic *HostNIC) sendCtrl(pkt *Packet, dst NodeID) {
	if len(nic.node.ports) == 0 {
		return
	}
	if nic.node.nextHops != nil && len(nic.node.nextHops[dst]) > 0 {
		nic.node.pickEgress(pkt).enqueueCtrl(pkt)
		return
	}
	nic.node.ports[0].enqueueCtrl(pkt)
}

// receive handles data, ack, and CNP packets addressed to this host.
func (nic *HostNIC) receive(pkt *Packet) {
	net := nic.node.net
	switch pkt.Kind {
	case CNP:
		nic.CNPsReceived++
		if f, ok := net.flows[pkt.FlowID]; ok {
			f.RP.OnCongestionSignal()
		}
		return
	case Ack:
		if f, ok := net.flows[pkt.FlowID]; ok {
			f.RP.OnAck(net.eng.Now() - pkt.SentAt)
		}
		return
	case Data:
		flow := net.flows[pkt.FlowID]
		if pkt.ECN && flow != nil && flow.NP.OnMarkedPacket(net.eng.Now()) {
			// Send a CNP back to the sender.
			net.CNPsSent++
			if net.obs != nil {
				net.obs.cnpsSent.Inc()
			}
			cnp := &Packet{
				Src: nic.node.ID, Dst: pkt.Src,
				FlowID: pkt.FlowID, Size: net.Cfg.CtrlPacketSize, Kind: CNP,
			}
			nic.sendCtrl(cnp, pkt.Src)
		}
		if flow != nil && flow.RP.NeedsAck() {
			// Echo an RTT probe back to the sender.
			ack := &Packet{
				Src: nic.node.ID, Dst: pkt.Src,
				FlowID: pkt.FlowID, Size: net.Cfg.CtrlPacketSize,
				Kind: Ack, SentAt: pkt.SentAt,
			}
			nic.sendCtrl(ack, pkt.Src)
		}
		nic.BytesReceived += uint64(pkt.Size)
		key := recvKey{flow: pkt.FlowID, msg: pkt.MsgID}
		got := nic.recv[key] + pkt.Size
		if got < pkt.MsgSize {
			nic.recv[key] = got
			return
		}
		delete(nic.recv, key)
		nic.MsgsDelivered++
		if nic.OnMessage != nil {
			nic.OnMessage(flow, pkt.MsgID, pkt.MsgSize, pkt.Payload)
		}
	default:
		panic(fmt.Sprintf("netsim: NIC received %v frame", pkt.Kind))
	}
}
