package netsim

import (
	"fmt"

	"srcsim/internal/dcqcn"
	"srcsim/internal/hpcc"
	"srcsim/internal/sim"
)

// HostNIC terminates flows at a host: it paces per-flow transmission
// under a DCQCN reaction point, reassembles received messages, generates
// CNPs for ECN-marked arrivals (notification point), and dispatches CNPs
// back to the owning flow's RP.
type HostNIC struct {
	node *Node

	// OnMessage is invoked when a complete message arrives, with the
	// delivering flow, the message size, and the sender-attached payload.
	OnMessage func(flow *Flow, msgID uint64, size int, payload any)

	flows []*Flow // flows originating here

	// recv holds reassembly byte counts only for messages that were
	// interrupted by reordering (possible during routing failover). The
	// common in-order case lives in the owning Flow's recvMsg/recvGot
	// fields, so fault-free runs never touch this map.
	recv map[recvKey]int

	// Counters.
	CNPsReceived  uint64
	BytesSent     uint64
	BytesReceived uint64
	MsgsDelivered uint64
}

type recvKey struct {
	flow int
	msg  uint64
}

func newHostNIC(node *Node) *HostNIC {
	return &HostNIC{node: node}
}

// Node returns the owning host node.
func (nic *HostNIC) Node() *Node { return nic.node }

// Flow is a unidirectional RDMA-like data stream between two hosts with
// its own DCQCN state. Messages sent on a flow are segmented into MTU
// packets, paced at the RP's current rate, and delivered in order.
type Flow struct {
	ID  int
	Src *Node
	Dst *Node

	// RP is the flow's reaction point (DCQCN by default; selected by
	// Config.CC through the CC registry).
	RP RateController
	NP *dcqcn.NP

	nic *HostNIC

	// Scheme capabilities, resolved once at flow creation so the
	// per-packet paths pay a field test instead of a registry lookup and
	// type assertion: wantsCNP gates the receiver's notification point,
	// intRP/ecnRP are the controller's optional INT and ECN-echo hooks
	// (needsINT mirrors intRP != nil for the sender side).
	wantsCNP bool
	needsINT bool
	intRP    INTObserver
	ecnRP    ECNEchoObserver

	sendq    []outMsg
	sendHead int // consumed prefix of sendq (compacted as it grows)
	headSent int // bytes of the head message already transmitted
	pacing   bool
	nextFree sim.Time
	nextMsg  uint64

	// Receiver-side reassembly state for the (at most one, under in-order
	// delivery) in-flight inbound message on this flow.
	recvMsg uint64
	recvGot int

	// QueuedBytes counts bytes accepted by Send but not yet handed to
	// the port — together with the port queue this is the paper's "TXQ"
	// backlog on targets.
	QueuedBytes int64
}

type outMsg struct {
	id      uint64
	size    int
	payload any
}

// staticRC is the CCNone controller: a fixed line-rate pacer.
type staticRC struct{ rate float64 }

func (s *staticRC) Rate() float64                          { return s.rate }
func (s *staticRC) OnBytesSent(int)                        {}
func (s *staticRC) OnCongestionSignal()                    {}
func (s *staticRC) OnAck(sim.Time)                         {}
func (s *staticRC) NeedsAck() bool                         { return false }
func (s *staticRC) SetRateListener(func(old, new float64)) {}

// ccScheme resolves the configured scheme; Config.Validate rejected
// unknown values at NewNetwork, so a miss here is a wiring bug.
func (n *Network) ccScheme() *CCScheme {
	sch, ok := LookupCC(n.Cfg.CC)
	if !ok {
		panic(fmt.Sprintf("netsim: unregistered CC algorithm %v (Validate skipped?)", n.Cfg.CC))
	}
	return sch
}

// newRateController builds the configured reaction point through the CC
// registry.
func (n *Network) newRateController() RateController {
	return n.ccScheme().New(CCEnv{Eng: n.eng, Cfg: &n.Cfg})
}

// NewFlow creates a flow from src to dst. Rate-change notifications can
// be observed via flow.RP.SetRateListener.
func (n *Network) NewFlow(src, dst *Node) *Flow {
	if src.NIC == nil || dst.NIC == nil {
		panic("netsim: flows connect hosts, not switches")
	}
	if src == dst {
		panic("netsim: flow to self")
	}
	sch := n.ccScheme()
	f := &Flow{
		ID:  len(n.flows),
		Src: src, Dst: dst,
		RP:  n.newRateController(),
		NP:  dcqcn.NewNP(n.Cfg.DCQCN),
		nic: src.NIC,

		wantsCNP: sch.WantsCNP,
	}
	f.intRP, _ = f.RP.(INTObserver)
	f.ecnRP, _ = f.RP.(ECNEchoObserver)
	f.needsINT = f.intRP != nil
	n.flows = append(n.flows, f)
	src.NIC.flows = append(src.NIC.flows, f)
	if o := n.obs; o != nil {
		if rp, ok := f.RP.(*dcqcn.RP); ok {
			rp.Obs = &dcqcn.RPObs{
				Scope:         o.sc,
				Name:          fmt.Sprintf("flow%d %s>%s", f.ID, src.Name, dst.Name),
				CNPs:          o.rpCNPs,
				RateCuts:      o.rpCuts,
				RateIncreases: o.rpIncreases,
				CutDepth:      o.rpCutDepth,
			}
		}
	}
	return f
}

// Flow returns a flow by ID, or nil for an unknown ID.
func (n *Network) Flow(id int) *Flow {
	if id < 0 || id >= len(n.flows) {
		return nil
	}
	return n.flows[id]
}

// Send queues a message of size bytes on the flow; payload is delivered
// with the receiver's OnMessage callback. Returns the message ID.
func (f *Flow) Send(size int, payload any) uint64 {
	if size <= 0 {
		panic(fmt.Sprintf("netsim: message size %d", size))
	}
	id := f.nextMsg
	f.nextMsg++
	f.sendq = append(f.sendq, outMsg{id: id, size: size, payload: payload})
	f.QueuedBytes += int64(size)
	f.pump()
	return id
}

// Backlog returns bytes accepted by Send but not yet paced out to the
// host port. Together with the port queue (HostNIC.TXQBytes) this is the
// paper's "TXQ" backlog on targets.
func (f *Flow) Backlog() int64 { return f.QueuedBytes }

// TXQBytes returns the bytes waiting in this host's port queues — data
// that DCQCN or PFC is holding back from the wire.
func (nic *HostNIC) TXQBytes() int64 {
	var total int64
	for _, p := range nic.node.ports {
		total += p.QueueBytes
	}
	return total
}

// pump emits the next MTU chunk of the head message, paced at the RP
// rate. Exactly one pacing event is in flight per flow; the event carries
// the flow itself, so pacing allocates nothing.
func (f *Flow) pump() {
	if f.pacing || f.sendHead >= len(f.sendq) {
		return
	}
	f.pacing = true
	eng := f.Src.net.eng
	at := eng.Now()
	if f.nextFree > at {
		at = f.nextFree
	}
	eng.ScheduleArg(at, flowEmit, f)
}

func flowEmit(x any) { x.(*Flow).emit() }

// emit transmits one MTU chunk of the head message at the paced instant.
func (f *Flow) emit() {
	net := f.Src.net
	eng := net.eng
	at := eng.Now()
	msg := &f.sendq[f.sendHead]
	chunk := msg.size - f.headSent
	mtu := net.Cfg.MTU
	last := chunk <= mtu
	if chunk > mtu {
		chunk = mtu
	}
	pkt := net.allocPkt()
	pkt.Src, pkt.Dst = f.Src.ID, f.Dst.ID
	pkt.FlowID, pkt.MsgID, pkt.MsgSize = f.ID, msg.id, msg.size
	pkt.Size, pkt.Kind, pkt.Last = chunk, Data, last
	pkt.SentAt = at
	if f.needsINT {
		pkt.INT = &hpcc.INTHeader{}
	}
	if last {
		pkt.Payload = msg.payload
		*msg = outMsg{}
		f.sendHead++
		if f.sendHead > 64 && f.sendHead*2 >= len(f.sendq) {
			f.sendq = append(f.sendq[:0], f.sendq[f.sendHead:]...)
			f.sendHead = 0
		}
		f.headSent = 0
	} else {
		f.headSent += chunk
	}
	f.QueuedBytes -= int64(chunk)
	f.nic.BytesSent += uint64(chunk)

	if len(f.Src.ports) == 0 {
		panic(fmt.Sprintf("netsim: host %s has no link", f.Src.Name))
	}
	f.Src.ports[0].enqueueData(pkt)
	f.RP.OnBytesSent(chunk)

	rate := f.RP.Rate()
	gap := sim.Time(float64(chunk*8) / rate * float64(sim.Second))
	if gap < 1 {
		gap = 1
	}
	f.nextFree = at + gap
	f.pacing = false
	f.pump()
}

// sendCtrl routes a control frame toward dst.
func (nic *HostNIC) sendCtrl(pkt *Packet, dst NodeID) {
	if len(nic.node.ports) == 0 {
		return
	}
	if nic.node.nextHops != nil && len(nic.node.nextHops[dst]) > 0 {
		nic.node.pickEgress(pkt).enqueueCtrl(pkt)
		return
	}
	nic.node.ports[0].enqueueCtrl(pkt)
}

// receive handles data, ack, and CNP packets addressed to this host.
func (nic *HostNIC) receive(pkt *Packet) {
	net := nic.node.net
	switch pkt.Kind {
	case CNP:
		nic.CNPsReceived++
		if f := net.Flow(pkt.FlowID); f != nil {
			f.RP.OnCongestionSignal()
		}
		return
	case Ack:
		if f := net.Flow(pkt.FlowID); f != nil {
			if f.intRP != nil && pkt.INT != nil {
				f.intRP.OnINTAck(pkt.INT)
			}
			if f.ecnRP != nil {
				f.ecnRP.OnAckECN(pkt.ECN)
			}
			f.RP.OnAck(net.eng.Now() - pkt.SentAt)
		}
		return
	case Data:
		flow := net.Flow(pkt.FlowID)
		if pkt.ECN && flow != nil && flow.wantsCNP && flow.NP.OnMarkedPacket(net.eng.Now()) {
			// Send a CNP back to the sender.
			net.CNPsSent++
			if net.obs != nil {
				net.obs.cnpsSent.Inc()
			}
			cnp := net.allocPkt()
			cnp.Src, cnp.Dst = nic.node.ID, pkt.Src
			cnp.FlowID, cnp.Size, cnp.Kind = pkt.FlowID, net.Cfg.CtrlPacketSize, CNP
			nic.sendCtrl(cnp, pkt.Src)
		}
		if flow != nil && flow.RP.NeedsAck() {
			// Echo an RTT probe back to the sender. Schemes that consume
			// INT or per-ack ECN get the data packet's telemetry moved or
			// copied onto the acknowledgement.
			ack := net.allocPkt()
			ack.Src, ack.Dst = nic.node.ID, pkt.Src
			ack.FlowID, ack.Size = pkt.FlowID, net.Cfg.CtrlPacketSize
			ack.Kind, ack.SentAt = Ack, pkt.SentAt
			if flow.intRP != nil {
				ack.INT, pkt.INT = pkt.INT, nil
			}
			if flow.ecnRP != nil {
				ack.ECN = pkt.ECN
			}
			nic.sendCtrl(ack, pkt.Src)
		}
		nic.BytesReceived += uint64(pkt.Size)
		var got int
		if flow != nil {
			// Fast path: the flow's in-flight message accumulates in two
			// flow-local fields. A message interrupted mid-reassembly (only
			// possible when routing failover reorders packets) spills into
			// the recv map and is restored when its packets resume.
			if flow.recvMsg != pkt.MsgID {
				if flow.recvGot > 0 {
					if nic.recv == nil {
						nic.recv = make(map[recvKey]int)
					}
					nic.recv[recvKey{flow: pkt.FlowID, msg: flow.recvMsg}] = flow.recvGot
				}
				flow.recvMsg = pkt.MsgID
				flow.recvGot = 0
				if len(nic.recv) > 0 {
					key := recvKey{flow: pkt.FlowID, msg: pkt.MsgID}
					if v, ok := nic.recv[key]; ok {
						flow.recvGot = v
						delete(nic.recv, key)
					}
				}
			}
			got = flow.recvGot + pkt.Size
			if got < pkt.MsgSize {
				flow.recvGot = got
				return
			}
			flow.recvGot = 0
		} else {
			if nic.recv == nil {
				nic.recv = make(map[recvKey]int)
			}
			key := recvKey{flow: pkt.FlowID, msg: pkt.MsgID}
			got = nic.recv[key] + pkt.Size
			if got < pkt.MsgSize {
				nic.recv[key] = got
				return
			}
			delete(nic.recv, key)
		}
		nic.MsgsDelivered++
		if nic.OnMessage != nil {
			nic.OnMessage(flow, pkt.MsgID, pkt.MsgSize, pkt.Payload)
		}
	default:
		panic(fmt.Sprintf("netsim: NIC received %v frame", pkt.Kind))
	}
}
