package netsim

import (
	"fmt"

	"srcsim/internal/sim"
)

// ClosSpec describes the multistage switching fabric of the paper's
// testbed (Sec. IV-A): pods of leaf and top-of-rack switches with hosts
// under the ToRs and a spine layer joining the pods.
type ClosSpec struct {
	Pods        int // default 4
	LeafPerPod  int // default 2
	TorPerPod   int // default 4
	HostsPerTor int // default 16 (64 hosts per pod)
	Spines      int // default 4
	// LinkRate (bits/s) and LinkDelay apply to every link; the paper
	// uses 40 Gbps and 1 µs.
	LinkRate  float64
	LinkDelay sim.Time
}

// WithDefaults fills unset fields with the paper's topology.
func (s ClosSpec) WithDefaults() ClosSpec {
	if s.Pods <= 0 {
		s.Pods = 4
	}
	if s.LeafPerPod <= 0 {
		s.LeafPerPod = 2
	}
	if s.TorPerPod <= 0 {
		s.TorPerPod = 4
	}
	if s.HostsPerTor <= 0 {
		s.HostsPerTor = 16
	}
	if s.Spines <= 0 {
		s.Spines = 4
	}
	if s.LinkRate <= 0 {
		s.LinkRate = 40e9
	}
	if s.LinkDelay <= 0 {
		s.LinkDelay = sim.Microsecond
	}
	return s
}

// Hosts returns the total host count of the spec.
func (s ClosSpec) Hosts() int {
	s = s.WithDefaults()
	return s.Pods * s.TorPerPod * s.HostsPerTor
}

// BuildClos constructs the Clos fabric in net and returns the hosts in
// (pod, tor, index) order. It computes routes before returning.
func BuildClos(net *Network, spec ClosSpec) []*Node {
	spec = spec.WithDefaults()
	spines := make([]*Node, spec.Spines)
	for i := range spines {
		spines[i] = net.AddSwitch(fmt.Sprintf("spine%d", i))
	}
	var hosts []*Node
	for p := 0; p < spec.Pods; p++ {
		leaves := make([]*Node, spec.LeafPerPod)
		for l := range leaves {
			leaves[l] = net.AddSwitch(fmt.Sprintf("pod%d-leaf%d", p, l))
			for _, sp := range spines {
				net.Connect(leaves[l], sp, spec.LinkRate, spec.LinkDelay)
			}
		}
		for t := 0; t < spec.TorPerPod; t++ {
			tor := net.AddSwitch(fmt.Sprintf("pod%d-tor%d", p, t))
			for _, leaf := range leaves {
				net.Connect(tor, leaf, spec.LinkRate, spec.LinkDelay)
			}
			for h := 0; h < spec.HostsPerTor; h++ {
				host := net.AddHost(fmt.Sprintf("pod%d-tor%d-host%d", p, t, h))
				net.Connect(host, tor, spec.LinkRate, spec.LinkDelay)
				hosts = append(hosts, host)
			}
		}
	}
	net.ComputeRoutes()
	return hosts
}

// BuildRack constructs the minimal topology for the paper's small-scale
// experiments: n hosts under a single ToR switch. Routes are computed
// before returning.
func BuildRack(net *Network, n int, linkRate float64, delay sim.Time) []*Node {
	if n < 2 {
		panic(fmt.Sprintf("netsim: rack needs >= 2 hosts, got %d", n))
	}
	if delay <= 0 {
		delay = sim.Microsecond
	}
	tor := net.AddSwitch("tor")
	hosts := make([]*Node, n)
	for i := range hosts {
		hosts[i] = net.AddHost(fmt.Sprintf("host%d", i))
		net.Connect(hosts[i], tor, linkRate, delay)
	}
	net.ComputeRoutes()
	return hosts
}
