package netsim

import (
	"testing"

	"srcsim/internal/sim"
)

// TestClosFailoverOnLinkDown: with one spine fully failed, cross-pod
// traffic must recompute onto the surviving spine, and restoring the
// links must be accounted without disturbing delivery.
func TestClosFailoverOnLinkDown(t *testing.T) {
	eng, net := newTestNet(t, Config{})
	hosts := BuildClos(net, ClosSpec{Pods: 2, LeafPerPod: 2, TorPerPod: 1, HostsPerTor: 2, Spines: 2})
	src, dst := hosts[0], hosts[3]
	f := net.NewFlow(src, dst)
	got := 0
	dst.NIC.OnMessage = func(_ *Flow, _ uint64, _ int, _ any) { got++ }

	send := func(n int) {
		for i := 0; i < n; i++ {
			f.Send(1000, nil)
		}
		eng.RunUntilIdle()
	}
	send(10)
	if got != 10 {
		t.Fatalf("baseline delivered %d/10", got)
	}

	var used, other *Node
	for _, n := range net.Nodes() {
		switch n.Name {
		case "spine0", "spine1":
			if n.ForwardedPk > 0 {
				used = n
			} else {
				other = n
			}
		}
	}
	if used == nil || other == nil {
		t.Fatal("could not identify used/idle spine")
	}

	for _, p := range used.Ports() {
		net.SetLinkState(p, false)
	}
	if net.LinkDowns != uint64(len(used.Ports())) {
		t.Fatalf("LinkDowns = %d, want %d", net.LinkDowns, len(used.Ports()))
	}
	send(10)
	if got != 20 {
		t.Fatalf("failover delivered %d/20", got)
	}
	if other.ForwardedPk == 0 {
		t.Fatal("surviving spine forwarded nothing after failover")
	}

	for _, p := range used.Ports() {
		net.SetLinkState(p, true)
	}
	if net.LinkUps != uint64(len(used.Ports())) {
		t.Fatalf("LinkUps = %d, want %d", net.LinkUps, len(used.Ports()))
	}
	send(10)
	if got != 30 {
		t.Fatalf("post-restore delivered %d/30", got)
	}
}

// TestLinkDownWithoutAltPathDrops: when the only path to the
// destination is down, forwarded packets are shed and counted as route
// drops; restoring the link restores delivery.
func TestLinkDownWithoutAltPathDrops(t *testing.T) {
	eng, net := newTestNet(t, Config{})
	hosts := BuildRack(net, 2, 40e9, sim.Microsecond)
	f := net.NewFlow(hosts[0], hosts[1])
	got := 0
	hosts[1].NIC.OnMessage = func(_ *Flow, _ uint64, _ int, _ any) { got++ }

	dstUplink := hosts[1].Ports()[0]
	net.SetLinkState(dstUplink, false)
	f.Send(1000, nil)
	eng.RunUntilIdle()
	if got != 0 {
		t.Fatal("message delivered over a dead link")
	}
	if net.RouteDrops != 1 || net.DroppedPackets != 1 {
		t.Fatalf("RouteDrops=%d DroppedPackets=%d, want 1/1", net.RouteDrops, net.DroppedPackets)
	}

	net.SetLinkState(dstUplink, true)
	f.Send(1000, nil)
	eng.RunUntilIdle()
	if got != 1 {
		t.Fatalf("delivery did not recover after link restore: got %d", got)
	}
}

// TestQueuedPacketsWaitForLinkRestore: packets queued behind a failed
// egress are not lost — they hold in the port queue and transmit once
// SetLinkState restores the link.
func TestQueuedPacketsWaitForLinkRestore(t *testing.T) {
	eng, net := newTestNet(t, Config{})
	hosts := BuildRack(net, 2, 40e9, sim.Microsecond)
	f := net.NewFlow(hosts[0], hosts[1])
	got := 0
	hosts[1].NIC.OnMessage = func(_ *Flow, _ uint64, _ int, _ any) { got++ }

	srcUplink := hosts[0].Ports()[0]
	net.SetLinkState(srcUplink, false)
	f.Send(1000, nil)
	eng.RunUntilIdle()
	if got != 0 {
		t.Fatal("message crossed a down link")
	}
	if net.DroppedPackets != 0 {
		t.Fatalf("queued packet was dropped: DroppedPackets=%d", net.DroppedPackets)
	}

	net.SetLinkState(srcUplink, true)
	eng.RunUntilIdle()
	if got != 1 {
		t.Fatalf("queued packet not delivered after restore: got %d", got)
	}
}

// TestPFCPauseResumeAcrossLinkCycle: a forced PFC pause must survive a
// link down/up cycle in the middle of the pause window, lift on
// schedule, account the paused interval, and release the queued data.
func TestPFCPauseResumeAcrossLinkCycle(t *testing.T) {
	eng, net := newTestNet(t, Config{})
	hosts := BuildRack(net, 2, 40e9, sim.Microsecond)
	f := net.NewFlow(hosts[0], hosts[1])
	got := 0
	hosts[1].NIC.OnMessage = func(_ *Flow, _ uint64, _ int, _ any) { got++ }

	torPort := hosts[1].Ports()[0].Peer() // ToR egress toward the destination
	const pauseFor = 200 * sim.Microsecond
	net.ForcePause(torPort, pauseFor)
	if !torPort.Paused() {
		t.Fatal("ForcePause did not pause the port")
	}
	eng.After(50*sim.Microsecond, func() { net.SetLinkState(hosts[1].Ports()[0], false) })
	eng.After(100*sim.Microsecond, func() { net.SetLinkState(hosts[1].Ports()[0], true) })
	f.Send(1000, nil)
	eng.RunUntilIdle()

	if got != 1 {
		t.Fatalf("message lost across pause + link cycle: got %d", got)
	}
	if torPort.Paused() {
		t.Fatal("port still paused after the window")
	}
	if torPort.PausedTime != pauseFor {
		t.Fatalf("PausedTime = %v, want %v", torPort.PausedTime, pauseFor)
	}
	if net.ForcedPauses != 1 || net.LinkDowns != 1 || net.LinkUps != 1 {
		t.Fatalf("counters ForcedPauses=%d LinkDowns=%d LinkUps=%d, want 1/1/1",
			net.ForcedPauses, net.LinkDowns, net.LinkUps)
	}
}

// TestWatchdogBreaksPauseStorm: an indefinite forced pause (a storm with
// the resume frame lost) must be broken by the PFC watchdog, after which
// traffic flows again.
func TestWatchdogBreaksPauseStorm(t *testing.T) {
	eng, net := newTestNet(t, Config{PFCWatchdog: 100 * sim.Microsecond})
	hosts := BuildRack(net, 2, 40e9, sim.Microsecond)
	f := net.NewFlow(hosts[0], hosts[1])
	got := 0
	hosts[1].NIC.OnMessage = func(_ *Flow, _ uint64, _ int, _ any) { got++ }

	torPort := hosts[1].Ports()[0].Peer()
	net.ForcePause(torPort, 0) // no scheduled lift: only the watchdog can save us
	f.Send(1000, nil)
	eng.RunUntilIdle()

	if net.WatchdogTrips == 0 {
		t.Fatal("watchdog never tripped")
	}
	if torPort.Paused() {
		t.Fatal("port still paused after watchdog trip")
	}
	if got != 1 {
		t.Fatalf("message not delivered after watchdog recovery: got %d", got)
	}
}

// TestLossCountersAccount: certain drop and certain corruption are
// counted exactly, and clearing the loss restores perfect delivery.
func TestLossCountersAccount(t *testing.T) {
	eng, net := newTestNet(t, Config{})
	hosts := BuildRack(net, 2, 40e9, sim.Microsecond)
	f := net.NewFlow(hosts[0], hosts[1])
	got := 0
	hosts[1].NIC.OnMessage = func(_ *Flow, _ uint64, _ int, _ any) { got++ }

	p := hosts[0].Ports()[0]
	p.SetLoss(1, 0)
	f.Send(1000, nil)
	eng.RunUntilIdle()
	if got != 0 || net.DroppedPackets != 1 {
		t.Fatalf("certain drop: got=%d DroppedPackets=%d, want 0/1", got, net.DroppedPackets)
	}

	p.SetLoss(0, 1)
	f.Send(1000, nil)
	eng.RunUntilIdle()
	if got != 0 || net.CorruptedPackets != 1 {
		t.Fatalf("certain corruption: got=%d CorruptedPackets=%d, want 0/1", got, net.CorruptedPackets)
	}

	p.SetLoss(0, 0)
	f.Send(1000, nil)
	eng.RunUntilIdle()
	if got != 1 {
		t.Fatalf("delivery did not recover after clearing loss: got %d", got)
	}
}
