package netsim

import (
	"testing"

	"srcsim/internal/dcqcn"
	"srcsim/internal/sim"
)

func TestECMPSpreadsManyFlows(t *testing.T) {
	// Many flows between two pods should use more than one spine.
	eng, net := newTestNet(t, Config{})
	hosts := BuildClos(net, ClosSpec{Pods: 2, LeafPerPod: 1, TorPerPod: 1, HostsPerTor: 2, Spines: 4})
	src, dst := hosts[0], hosts[2]
	done := 0
	dst.NIC.OnMessage = func(*Flow, uint64, int, any) { done++ }
	const flows = 32
	for i := 0; i < flows; i++ {
		f := net.NewFlow(src, dst)
		f.Send(64<<10, nil)
	}
	eng.RunUntilIdle()
	if done != flows {
		t.Fatalf("delivered %d/%d", done, flows)
	}
	spinesUsed := 0
	for _, n := range net.Nodes() {
		if n.IsSwitch && len(n.Name) >= 5 && n.Name[:5] == "spine" && n.ForwardedPk > 0 {
			spinesUsed++
		}
	}
	if spinesUsed < 2 {
		t.Fatalf("ECMP used %d spines for %d flows, want >= 2", spinesUsed, flows)
	}
}

func TestPausedTimeAccounted(t *testing.T) {
	// Overload with ECN disabled: PFC pauses accumulate measurable
	// paused time on some port.
	eng, net := newTestNet(t, Config{DisableECN: true, Seed: 21})
	hosts := BuildRack(net, 4, 5e9, sim.Microsecond)
	for i := 0; i < 3; i++ {
		f := net.NewFlow(hosts[i], hosts[3])
		for j := 0; j < 15; j++ {
			f.Send(1<<20, nil)
		}
	}
	eng.RunUntilIdle()
	var paused sim.Time
	for _, n := range net.Nodes() {
		for _, p := range n.Ports() {
			paused += p.PausedTime
		}
	}
	if net.PFCPauses == 0 {
		t.Fatal("no PFC pauses under overload")
	}
	if paused == 0 {
		t.Fatal("pauses happened but no paused time accumulated")
	}
}

func TestPortCounters(t *testing.T) {
	eng, net := newTestNet(t, Config{})
	hosts := BuildRack(net, 2, 10e9, sim.Microsecond)
	f := net.NewFlow(hosts[0], hosts[1])
	f.Send(1<<20, nil)
	eng.RunUntilIdle()
	// Host 0's uplink transmitted 256 MTU packets of the message.
	up := hosts[0].Ports()[0]
	if up.TxBytes != 1<<20 {
		t.Fatalf("uplink TxBytes %d", up.TxBytes)
	}
	if up.TxPackets != 256 {
		t.Fatalf("uplink TxPackets %d, want 256", up.TxPackets)
	}
	if up.DataQueueLen() != 0 {
		t.Fatalf("residual queue %d", up.DataQueueLen())
	}
	if up.Paused() {
		t.Fatal("port paused after idle")
	}
}

func TestCNPRoutedAcrossClos(t *testing.T) {
	// Congestion in a multi-hop fabric: CNPs must find their way back to
	// the sender across pods.
	eng, net := newTestNet(t, Config{Seed: 31})
	hosts := BuildClos(net, ClosSpec{Pods: 2, LeafPerPod: 2, TorPerPod: 2, HostsPerTor: 2, Spines: 2, LinkRate: 5e9})
	dst := hosts[len(hosts)-1]
	src0, src1 := hosts[0], hosts[1]
	f0 := net.NewFlow(src0, dst)
	f1 := net.NewFlow(src1, dst)
	for i := 0; i < 60; i++ {
		f0.Send(1<<20, nil)
		f1.Send(1<<20, nil)
	}
	eng.RunUntilIdle()
	if net.CNPsSent == 0 {
		t.Fatal("no CNPs under cross-fabric incast")
	}
	if src0.NIC.CNPsReceived+src1.NIC.CNPsReceived == 0 {
		t.Fatal("CNPs never reached the senders")
	}
	rp0 := f0.RP.(*dcqcn.RP)
	rp1 := f1.RP.(*dcqcn.RP)
	if rp0.CNPs+rp1.CNPs == 0 {
		t.Fatal("CNPs not dispatched to flow RPs")
	}
}

func TestConnectValidation(t *testing.T) {
	eng, net := newTestNet(t, Config{})
	_ = eng
	a := net.AddHost("a")
	b := net.AddHost("b")
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay should panic")
		}
	}()
	net.Connect(a, b, 1e9, -1)
}

func TestRouteMissingPanics(t *testing.T) {
	eng, net := newTestNet(t, Config{})
	a := net.AddHost("a")
	sw := net.AddSwitch("sw")
	b := net.AddHost("b")
	net.Connect(a, sw, 1e9, sim.Microsecond)
	net.Connect(sw, b, 1e9, sim.Microsecond)
	// No ComputeRoutes: the switch cannot forward and must panic.
	f := net.NewFlow(a, b)
	defer func() {
		if recover() == nil {
			t.Fatal("missing routes should panic")
		}
	}()
	f.Send(4096, nil)
	eng.RunUntilIdle()
}

func TestBuildRackValidation(t *testing.T) {
	eng, net := newTestNet(t, Config{})
	_ = eng
	defer func() {
		if recover() == nil {
			t.Fatal("rack with 1 host should panic")
		}
	}()
	BuildRack(net, 1, 1e9, sim.Microsecond)
}

func TestClosSpecHosts(t *testing.T) {
	if (ClosSpec{}).Hosts() != 256 {
		t.Fatalf("default Clos hosts %d, want 256", (ClosSpec{}).Hosts())
	}
	if (ClosSpec{Pods: 2, TorPerPod: 3, HostsPerTor: 4}).Hosts() != 24 {
		t.Fatal("custom Clos host count")
	}
}

func TestTwoPriorityQueuesCtrlFirst(t *testing.T) {
	// Control frames (CNPs) jump ahead of queued data.
	eng, net := newTestNet(t, Config{})
	hosts := BuildRack(net, 2, 1e9, sim.Microsecond) // slow: data queues up
	f := net.NewFlow(hosts[0], hosts[1])
	f.Send(1<<20, nil)
	// Give the port a backlog, then enqueue a control frame directly.
	eng.Run(100 * sim.Microsecond)
	port := hosts[0].Ports()[0]
	if port.DataQueueLen() == 0 {
		t.Fatal("setup: expected data backlog")
	}
	got := false
	// A CNP from host0 to host1 (flow id unused by the NIC's CNP path
	// since there is no flow registered for it — count arrival at the
	// switch instead by checking it was transmitted promptly).
	before := port.TxPackets
	port.enqueueCtrl(&Packet{Src: hosts[0].ID, Dst: hosts[1].ID, FlowID: 999999, Size: 64, Kind: CNP})
	eng.Run(200 * sim.Microsecond)
	_ = got
	// The ctrl frame plus at most a handful of data packets were sent in
	// 100us at 1G (one 4KiB packet takes ~32.8us): if the ctrl frame had
	// waited behind the whole megabyte it could not have gone out yet.
	if port.TxPackets <= before {
		t.Fatal("control frame not transmitted")
	}
	eng.RunUntilIdle()
}
