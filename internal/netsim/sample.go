package netsim

import (
	"strconv"

	"srcsim/internal/obs/timeseries"
)

// seriesSampler is the optional flight-recorder probe a RateController
// exposes; all registered schemes except the CCNone stub implement it.
type seriesSampler interface {
	SampleSeries(track, prefix string, emit timeseries.Emit)
}

// SwitchQueuedBytes returns the total bytes queued at switch egress
// ports — the fabric-load probe behind the control plane's
// congestion-coupled message delay.
func (n *Network) SwitchQueuedBytes() int64 {
	var total int64
	for _, node := range n.nodes {
		if !node.IsSwitch {
			continue
		}
		for _, p := range node.ports {
			total += p.QueueBytes
		}
	}
	return total
}

// SampleSeries is the fabric's flight-recorder probe: switch queue
// occupancy, PFC pause state, the global congestion-signal counters,
// and per-flow congestion-control state (rate, and for DCQCN target
// rate and alpha). Read-only; called from the recorder's sample events.
func (n *Network) SampleSeries(track string, emit timeseries.Emit) {
	var qTotal, qMax int64
	pausedPorts := 0
	for _, node := range n.nodes {
		for _, p := range node.ports {
			if p.paused {
				pausedPorts++
			}
			if !node.IsSwitch {
				continue
			}
			qTotal += p.QueueBytes
			if p.QueueBytes > qMax {
				qMax = p.QueueBytes
			}
		}
	}
	emit(track, "switch_queue_bytes_total", timeseries.Gauge, float64(qTotal))
	emit(track, "switch_queue_bytes_max", timeseries.Gauge, float64(qMax))
	emit(track, "ports_paused", timeseries.Gauge, float64(pausedPorts))
	emit(track, "ecn_marks", timeseries.Counter, float64(n.ECNMarks))
	emit(track, "pfc_pauses", timeseries.Counter, float64(n.PFCPauses))
	emit(track, "cnps_sent", timeseries.Counter, float64(n.CNPsSent))
	emit(track, "dropped_packets", timeseries.Counter, float64(n.DroppedPackets))

	for _, f := range n.flows {
		prefix := "flow" + strconv.Itoa(f.ID)
		emit(track, prefix+"_queued_bytes", timeseries.Gauge, float64(f.QueuedBytes))
		if rp, ok := f.RP.(seriesSampler); ok {
			rp.SampleSeries(track, prefix, emit)
		} else {
			emit(track, prefix+"_rate_gbps", timeseries.Gauge, f.RP.Rate()/1e9)
		}
	}
}
