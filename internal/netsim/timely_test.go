package netsim

import (
	"testing"

	"srcsim/internal/sim"
	"srcsim/internal/timely"
)

// (CCNone inherits its fixed rate from DCQCN.LineRate, which the cluster
// layer sets to the host link speed.)

func TestTIMELYFlowDeliversAndAcks(t *testing.T) {
	eng, net := newTestNet(t, Config{CC: CCTIMELY})
	hosts := BuildRack(net, 2, 10e9, sim.Microsecond)
	f := net.NewFlow(hosts[0], hosts[1])
	if _, ok := f.RP.(*timely.RP); !ok {
		t.Fatalf("flow controller is %T, want *timely.RP", f.RP)
	}
	var recv int64
	hosts[1].NIC.OnMessage = func(_ *Flow, _ uint64, size int, _ any) { recv += int64(size) }
	for i := 0; i < 10; i++ {
		f.Send(1<<20, nil)
	}
	eng.RunUntilIdle()
	if recv != 10<<20 {
		t.Fatalf("received %d", recv)
	}
	rp := f.RP.(*timely.RP)
	if rp.Acks == 0 {
		t.Fatal("no RTT acks delivered to TIMELY")
	}
}

func TestTIMELYIncastThrottles(t *testing.T) {
	// Two TIMELY senders into one receiver: queueing delay rises, the
	// gradient/Thigh logic must cut rates, and delivery stays lossless.
	cfg := Config{CC: CCTIMELY, DisableECN: true, Seed: 5}
	eng, net := newTestNet(t, cfg)
	hosts := BuildRack(net, 3, 10e9, sim.Microsecond)
	f0 := net.NewFlow(hosts[0], hosts[2])
	f1 := net.NewFlow(hosts[1], hosts[2])
	var recv int64
	hosts[2].NIC.OnMessage = func(_ *Flow, _ uint64, size int, _ any) { recv += int64(size) }
	var sent int64
	for i := 0; i < 100; i++ {
		f0.Send(1<<20, nil)
		f1.Send(1<<20, nil)
		sent += 2 << 20
	}
	var drops int
	f0.RP.SetRateListener(func(old, new float64) {
		if new < old {
			drops++
		}
	})
	eng.RunUntilIdle()
	if recv != sent {
		t.Fatalf("lost bytes: %d/%d", recv, sent)
	}
	if drops == 0 {
		t.Fatal("TIMELY never cut the rate under incast")
	}
	rp0 := f0.RP.(*timely.RP)
	if rp0.RateDecreases == 0 {
		t.Fatal("no decreases recorded")
	}
}

func TestCCNoneFixedRate(t *testing.T) {
	cfg := Config{CC: CCNone, Seed: 6}
	cfg.DCQCN.LineRate = 5e9
	eng, net := newTestNet(t, cfg)
	hosts := BuildRack(net, 3, 5e9, sim.Microsecond)
	f0 := net.NewFlow(hosts[0], hosts[2])
	f1 := net.NewFlow(hosts[1], hosts[2])
	for i := 0; i < 20; i++ {
		f0.Send(1<<20, nil)
		f1.Send(1<<20, nil)
	}
	eng.RunUntilIdle()
	// No rate control: flows stay at line rate; PFC kept it lossless.
	if f0.RP.Rate() != 5e9 || f1.RP.Rate() != 5e9 {
		t.Fatalf("CCNone rates %v/%v, want fixed", f0.RP.Rate(), f1.RP.Rate())
	}
	if hosts[2].NIC.BytesReceived != 40<<20 {
		t.Fatalf("received %d", hosts[2].NIC.BytesReceived)
	}
}

func TestCCAlgStrings(t *testing.T) {
	if CCDCQCN.String() != "DCQCN" || CCTIMELY.String() != "TIMELY" || CCNone.String() != "none" {
		t.Fatal("CCAlg labels")
	}
	if Ack.String() != "ack" {
		t.Fatal("ack kind label")
	}
}
