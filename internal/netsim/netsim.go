// Package netsim is a packet-level network simulator in the spirit of the
// NS3-RDMA models used by the DCQCN line of work and by the paper's
// evaluation: store-and-forward switches with per-egress-port FIFO
// queues, RED-style ECN marking (the DCQCN congestion point), PFC
// XOFF/XON flow control for losslessness, ECMP routing over arbitrary
// topologies (a Clos builder matching the paper's testbed is provided),
// and host NICs that pace per-flow traffic under DCQCN reaction-point
// control.
//
// The unit conventions: rates are bits/second, sizes are bytes, time is
// sim.Time (nanoseconds).
package netsim

import (
	"fmt"

	"srcsim/internal/ccaimd"
	"srcsim/internal/dcqcn"
	"srcsim/internal/hpcc"
	"srcsim/internal/pfconly"
	"srcsim/internal/sim"
	"srcsim/internal/timely"
)

// CCAlg selects the congestion-control algorithm new flows run. Each
// value resolves through the CC registry (ccregistry.go) to a
// registered CCScheme.
type CCAlg int

const (
	// CCDCQCN is the paper's baseline (ECN/CNP-driven), the default.
	CCDCQCN CCAlg = iota
	// CCTIMELY is the delay-based alternative; flows request per-packet
	// acknowledgements for RTT sampling.
	CCTIMELY
	// CCNone disables rate control: flows pace at line rate and only
	// PFC restrains them (ablation baseline).
	CCNone
	// CCAIMD is the ECN-fraction AIMD "oversubscribed CC" (REPS-style):
	// per-ack ECN echo feeds an EWMA congestion level, decreases are
	// proportional to the overshoot above the target level.
	CCAIMD
	// CCHPCC is the in-network-telemetry scheme: data packets carry an
	// INT header stamped at every switch hop, and the sender aligns to
	// the bottleneck hop's measured utilisation.
	CCHPCC
	// CCPFC is the PFC/RCM baseline: a static rate-control module
	// (fixed cut, linear recovery) with PFC doing the heavy lifting.
	CCPFC
)

// String implements fmt.Stringer.
func (a CCAlg) String() string {
	switch a {
	case CCDCQCN:
		return "DCQCN"
	case CCTIMELY:
		return "TIMELY"
	case CCNone:
		return "none"
	case CCAIMD:
		return "AIMD"
	case CCHPCC:
		return "HPCC"
	case CCPFC:
		return "PFC"
	default:
		return fmt.Sprintf("CCAlg(%d)", int(a))
	}
}

// RateController is the per-flow reaction point a sender paces from.
// dcqcn.RP and timely.RP implement it; CCNone uses a fixed-rate stub.
type RateController interface {
	// Rate returns the current pacing rate in bits/s.
	Rate() float64
	// OnBytesSent feeds transmitted payload bytes (byte-counter clocks).
	OnBytesSent(n int)
	// OnCongestionSignal delivers an explicit congestion notification
	// (a CNP for this flow).
	OnCongestionSignal()
	// OnAck delivers one RTT sample (only called when NeedsAck).
	OnAck(rtt sim.Time)
	// NeedsAck reports whether the receiver should acknowledge every
	// data packet for RTT measurement.
	NeedsAck() bool
	// SetRateListener registers the observer invoked on every rate
	// change (old, new in bits/s) — SRC's congestion-event source.
	SetRateListener(fn func(oldRate, newRate float64))
}

// Config parameterises the fabric.
type Config struct {
	// DCQCN carries the congestion-control constants (CP marking, RP/NP
	// behaviour). DCQCN.LineRate is used as the default link rate.
	DCQCN dcqcn.Config
	// CC selects the congestion-control algorithm for new flows
	// (default CCDCQCN), resolved through the CC registry; the TIMELY,
	// AIMD, HPCC, and PFC blocks carry the per-scheme constants. A
	// scheme block's unset LineRate defaults to DCQCN.LineRate.
	CC     CCAlg
	TIMELY timely.Config
	AIMD   ccaimd.Config
	HPCC   hpcc.Config
	PFC    pfconly.Config
	// MTU is the data-packet payload size in bytes (default 4096).
	MTU int
	// PFCXoff and PFCXon are the per-ingress pause thresholds in bytes
	// (defaults 128 KiB / 96 KiB). EnablePFC defaults to true via
	// WithDefaults.
	PFCXoff int64
	PFCXon  int64
	// CtrlPacketSize is the wire size of CNP/PFC frames (default 64).
	CtrlPacketSize int
	// DisablePFC and DisableECN switch off the respective mechanisms
	// (for ablations).
	DisablePFC bool
	DisableECN bool
	// Seed drives ECN marking randomness.
	Seed uint64
	// PFCWatchdog, when positive, bounds how long a port may stay
	// PFC-paused: a pause persisting beyond the threshold (a storm or
	// deadlock signal, e.g. a lost resume frame) trips the watchdog,
	// which counts the trip and force-resumes the port — the recovery
	// real NICs implement as a PFC storm watchdog. Zero (the default)
	// disables the watchdog and preserves pre-fault behaviour exactly.
	PFCWatchdog sim.Time
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	c.DCQCN = c.DCQCN.WithDefaults()
	if c.MTU <= 0 {
		c.MTU = 4096
	}
	if c.PFCXoff <= 0 {
		c.PFCXoff = 128 << 10
	}
	if c.PFCXon <= 0 {
		c.PFCXon = 96 << 10
	}
	if c.CtrlPacketSize <= 0 {
		c.CtrlPacketSize = 64
	}
	return c
}

// Validate reports inconsistent settings. An unknown CC algorithm is an
// error here (not a silent fallthrough to DCQCN), and the selected
// scheme's own config block is validated with its LineRate resolved
// uniformly from DCQCN.LineRate.
func (c Config) Validate() error {
	c = c.WithDefaults()
	if err := c.DCQCN.Validate(); err != nil {
		return err
	}
	if c.PFCXon >= c.PFCXoff {
		return fmt.Errorf("netsim: PFC Xon %d must be below Xoff %d", c.PFCXon, c.PFCXoff)
	}
	sch, ok := LookupCC(c.CC)
	if !ok {
		return fmt.Errorf("netsim: unknown congestion-control algorithm %v (registered: %v)", c.CC, CCNames())
	}
	if sch.Validate != nil {
		if err := sch.Validate(&c); err != nil {
			return err
		}
	}
	return nil
}

// NodeID identifies a node within one Network.
type NodeID int

// Kind labels a packet's role.
type Kind uint8

// Packet kinds.
const (
	Data Kind = iota
	CNP
	Ack
	PauseFrame
	ResumeFrame
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case CNP:
		return "cnp"
	case Ack:
		return "ack"
	case PauseFrame:
		return "pause"
	case ResumeFrame:
		return "resume"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Packet is one unit on the wire. A single Packet value moves hop by hop
// (the simulator never duplicates it).
type Packet struct {
	Src, Dst NodeID
	FlowID   int
	MsgID    uint64
	MsgSize  int
	Size     int
	Kind     Kind
	ECN      bool
	Last     bool
	// SentAt is the transmission timestamp for RTT measurement (echoed
	// in Ack frames).
	SentAt sim.Time
	// Corrupted marks a frame damaged on the wire (fault injection); the
	// next hop discards it on the FCS check instead of processing it.
	Corrupted bool
	// Payload rides only on the last packet of a message and is handed
	// to the receiver's OnMessage callback.
	Payload any
	// INT is the in-network-telemetry header (CCHPCC flows only):
	// attached by the sender to data packets, stamped with one hop
	// record per switch, moved onto the acknowledgement by the
	// receiver, and consumed by the sender's INTObserver. It rides as
	// metadata — Size is unchanged, so reassembly and queue accounting
	// are unaffected.
	INT *hpcc.INTHeader

	ingress *Port // per-hop PFC attribution at the current switch

	// tx and rx carry the packet's current port through the two hot-path
	// engine events (serialisation done, propagation done) so those
	// continuations are static functions taking the packet itself instead
	// of per-packet closures.
	tx *Port
	rx *Port
}
