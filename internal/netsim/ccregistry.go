package netsim

// The congestion-control registry: every transport scheme a flow can
// run is registered as an enumerable descriptor — constructor, config
// validator, and the capability bits the NIC wires from — so Config.CC
// resolves through a lookup instead of a hardcoded switch, and
// front-ends (cmd/srcsim -cc, the cc-matrix campaign, the cctest
// conformance suite) can enumerate schemes the way internal/harness
// enumerates experiments. A new scheme registers itself here and gets
// the NIC hook, SRC's rate-event plumbing, the flight-recorder probes,
// and the shared conformance suite for free.

import (
	"fmt"
	"io"
	"strings"

	"srcsim/internal/ccaimd"
	"srcsim/internal/dcqcn"
	"srcsim/internal/hpcc"
	"srcsim/internal/pfconly"
	"srcsim/internal/sim"
	"srcsim/internal/timely"
)

// INTObserver is the capability a RateController implements to consume
// echoed in-network-telemetry headers; the NIC attaches INT headers to
// a flow's data packets exactly when its controller implements it.
type INTObserver interface {
	// OnINTAck delivers the INT header echoed on one acknowledgement.
	OnINTAck(h *hpcc.INTHeader)
}

// ECNEchoObserver is the capability a RateController implements to
// consume per-ack ECN echo; the NIC copies the data packet's ECN mark
// onto the acknowledgement exactly when the controller implements it.
type ECNEchoObserver interface {
	// OnAckECN delivers one acknowledgement's echoed ECN mark state.
	OnAckECN(marked bool)
}

// CCEnv is the construction context a scheme's New receives: the event
// engine and the resolved fabric config (for the scheme's own config
// block and the DCQCN.LineRate default).
type CCEnv struct {
	Eng *sim.Engine
	Cfg *Config
}

// CCScheme describes one registered congestion-control algorithm.
type CCScheme struct {
	// Alg is the enum value Config.CC selects the scheme by.
	Alg CCAlg
	// Name is the CLI/campaign identifier (e.g. "dcqcn").
	Name string
	// Title is a one-line synopsis for listings.
	Title string
	// SignalDriven reports that an explicit congestion signal cuts the
	// rate (false only for the uncontrolled baseline); the conformance
	// suite asserts a strict decrease exactly for signal-driven schemes.
	SignalDriven bool
	// WantsCNP makes the receiver NIC generate CNPs for ECN-marked
	// arrivals on this scheme's flows (the DCQCN notification point).
	WantsCNP bool
	// New builds one per-flow reaction point starting at line rate.
	New func(env CCEnv) RateController
	// Validate checks the scheme's config block within cfg (nil means
	// nothing beyond the shared fabric validation).
	Validate func(cfg *Config) error
}

// ccSchemes is the registry, in listing order.
var ccSchemes []*CCScheme

// RegisterCC adds a scheme at package init. Duplicate names or enum
// values are a wiring bug.
func RegisterCC(s *CCScheme) {
	for _, have := range ccSchemes {
		if have.Name == s.Name || have.Alg == s.Alg {
			panic("netsim: duplicate CC scheme " + s.Name)
		}
	}
	ccSchemes = append(ccSchemes, s)
}

// CCSchemes returns the registered schemes in listing order. The
// returned slice is shared; do not mutate it.
func CCSchemes() []*CCScheme { return ccSchemes }

// LookupCC finds a registered scheme by algorithm value.
func LookupCC(alg CCAlg) (*CCScheme, bool) {
	for _, s := range ccSchemes {
		if s.Alg == alg {
			return s, true
		}
	}
	return nil, false
}

// LookupCCName finds a registered scheme by name.
func LookupCCName(name string) (*CCScheme, bool) {
	for _, s := range ccSchemes {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// CCNames returns the registered scheme names in listing order.
func CCNames() []string {
	names := make([]string, len(ccSchemes))
	for i, s := range ccSchemes {
		names[i] = s.Name
	}
	return names
}

// FprintCCSchemes renders the registry: every scheme name with its
// synopsis and capability bits (the output of `srcsim -list-cc`).
func FprintCCSchemes(w io.Writer) {
	fmt.Fprintln(w, "registered congestion-control schemes:")
	for _, s := range ccSchemes {
		caps := make([]string, 0, 2)
		if s.SignalDriven {
			caps = append(caps, "signal-driven")
		}
		if s.WantsCNP {
			caps = append(caps, "cnp")
		}
		fmt.Fprintf(w, "  %-7s %s", s.Name, s.Title)
		if len(caps) > 0 {
			fmt.Fprintf(w, " [%s]", strings.Join(caps, ", "))
		}
		fmt.Fprintln(w)
	}
}

// ParseCCAlg maps a scheme name to its algorithm value.
func ParseCCAlg(name string) (CCAlg, error) {
	if s, ok := LookupCCName(name); ok {
		return s.Alg, nil
	}
	return 0, fmt.Errorf("netsim: unknown congestion control %q (registered: %s)",
		name, strings.Join(CCNames(), ", "))
}

func init() {
	RegisterCC(&CCScheme{
		Alg: CCDCQCN, Name: "dcqcn",
		Title:        "DCQCN (ECN/CNP-driven, the paper's baseline)",
		SignalDriven: true, WantsCNP: true,
		New: func(env CCEnv) RateController {
			return dcqcn.NewRP(env.Eng, env.Cfg.DCQCN)
		},
		// DCQCN's block doubles as the fabric config (CP marking, line
		// rate), so Config.Validate always checks it; nothing extra here.
	})
	RegisterCC(&CCScheme{
		Alg: CCTIMELY, Name: "timely",
		Title:        "TIMELY (RTT-gradient, per-packet acks)",
		SignalDriven: true, WantsCNP: true,
		New: func(env CCEnv) RateController {
			return timely.NewRP(env.Cfg.timelyResolved())
		},
		Validate: func(cfg *Config) error { return cfg.timelyResolved().Validate() },
	})
	RegisterCC(&CCScheme{
		Alg: CCNone, Name: "none",
		Title:        "no rate control (line-rate pacing, PFC only restrains; ablation)",
		SignalDriven: false, WantsCNP: true,
		New: func(env CCEnv) RateController {
			return &staticRC{rate: env.Cfg.DCQCN.LineRate}
		},
	})
	RegisterCC(&CCScheme{
		Alg: CCAIMD, Name: "aimd",
		Title:        "ECN-fraction AIMD (REPS-style oversubscribed CC)",
		SignalDriven: true, WantsCNP: false,
		New: func(env CCEnv) RateController {
			return ccaimd.NewRP(env.Eng, env.Cfg.aimdResolved())
		},
		Validate: func(cfg *Config) error { return cfg.aimdResolved().Validate() },
	})
	RegisterCC(&CCScheme{
		Alg: CCHPCC, Name: "hpcc",
		Title:        "HPCC (in-network telemetry, per-hop queue/txRate)",
		SignalDriven: true, WantsCNP: false,
		New: func(env CCEnv) RateController {
			return hpcc.NewRP(env.Cfg.hpccResolved())
		},
		Validate: func(cfg *Config) error { return cfg.hpccResolved().Validate() },
	})
	RegisterCC(&CCScheme{
		Alg: CCPFC, Name: "pfc",
		Title:        "PFC/RCM baseline (static cut + linear recovery)",
		SignalDriven: true, WantsCNP: true,
		New: func(env CCEnv) RateController {
			return pfconly.NewRP(env.Eng, env.Cfg.pfcResolved())
		},
		Validate: func(cfg *Config) error { return cfg.pfcResolved().Validate() },
	})
}

// The *Resolved helpers default a scheme config's unset LineRate from
// the fabric line rate (DCQCN.LineRate), so every scheme resolves —
// and validates — the line rate uniformly.

func (c *Config) timelyResolved() timely.Config {
	tc := c.TIMELY
	if tc.LineRate <= 0 {
		tc.LineRate = c.DCQCN.LineRate
	}
	return tc
}

func (c *Config) aimdResolved() ccaimd.Config {
	ac := c.AIMD
	if ac.LineRate <= 0 {
		ac.LineRate = c.DCQCN.LineRate
	}
	return ac
}

func (c *Config) hpccResolved() hpcc.Config {
	hc := c.HPCC
	if hc.LineRate <= 0 {
		hc.LineRate = c.DCQCN.LineRate
	}
	return hc
}

func (c *Config) pfcResolved() pfconly.Config {
	pc := c.PFC
	if pc.LineRate <= 0 {
		pc.LineRate = c.DCQCN.LineRate
	}
	return pc
}
