package netsim

import (
	"fmt"

	"srcsim/internal/guard"
)

// AuditInvariants verifies the fabric's conservation invariants. It is
// read-only and cheap (linear in ports + routing-table entries), so the
// guard can run it periodically on the sim clock without perturbing the
// run. Checked per port:
//
//   - byte conservation: QueueBytes equals the sum of queued data-packet
//     sizes (the compacted-deque accounting cannot drift);
//   - PFC ingress accounting never goes negative;
//   - link-state symmetry: both directions of a link agree on down;
//   - no packet is routed onto a down link: next-hop tables, which are
//     recomputed on every link transition, never reference a down port;
//   - a down port is never left mid-transmission pause accounting, and
//     fabric-wide PFC resumes never exceed pauses.
func (n *Network) AuditInvariants() []guard.Violation {
	var vs []guard.Violation
	for _, node := range n.nodes {
		for pi, p := range node.ports {
			// Port tags are formatted inside the violation branches only:
			// the clean-path poll must stay allocation-free.
			var sum int64
			for _, pkt := range p.dataQ[p.dataHead:] {
				sum += int64(pkt.Size)
			}
			if sum != p.QueueBytes {
				vs = append(vs, guard.Violationf("netsim", "queue-byte-conservation",
					"%s:p%d: QueueBytes %d but queued packets sum to %d", node.Name, pi, p.QueueBytes, sum))
			}
			if node.ingressBytes[pi] < 0 {
				vs = append(vs, guard.Violationf("netsim", "pfc-ingress-nonnegative",
					"%s:p%d: ingressBytes %d < 0", node.Name, pi, node.ingressBytes[pi]))
			}
			if p.down != p.peer.down {
				vs = append(vs, guard.Violationf("netsim", "link-state-symmetry",
					"%s:p%d: down=%v but peer %s:p%d down=%v",
					node.Name, pi, p.down, p.peer.node.Name, p.peer.index, p.peer.down))
			}
		}
		for dst, hops := range node.nextHops {
			for _, hi := range hops {
				if node.ports[hi].down {
					vs = append(vs, guard.Violationf("netsim", "no-route-via-down-link",
						"%s: next hop to node %d uses down port p%d", node.Name, dst, hi))
				}
			}
		}
	}
	if n.PFCResumes > n.PFCPauses {
		vs = append(vs, guard.Violationf("netsim", "pfc-pause-resume-balance",
			"resumes %d > pauses %d", n.PFCResumes, n.PFCPauses))
	}
	return vs
}

// LinkStates snapshots every port for the guard's diagnostic dump,
// in deterministic (node, port) order.
func (n *Network) LinkStates() []guard.LinkState {
	var out []guard.LinkState
	for _, node := range n.nodes {
		for pi, p := range node.ports {
			out = append(out, guard.LinkState{
				Name:       fmt.Sprintf("%s:p%d->%s", node.Name, pi, p.peer.node.Name),
				Down:       p.down,
				Paused:     p.paused,
				QueueBytes: p.QueueBytes,
				QueuePkts:  p.DataQueueLen(),
			})
		}
	}
	return out
}
