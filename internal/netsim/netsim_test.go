package netsim

import (
	"math"
	"testing"

	"srcsim/internal/dcqcn"
	"srcsim/internal/sim"
)

func newTestNet(t testing.TB, cfg Config) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine()
	net, err := NewNetwork(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, net
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Config{PFCXoff: 10, PFCXon: 20}
	if err := bad.Validate(); err == nil {
		t.Fatal("Xon >= Xoff should fail")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Data: "data", CNP: "cnp", PauseFrame: "pause", ResumeFrame: "resume"} {
		if k.String() != want {
			t.Fatalf("%v", k)
		}
	}
}

func TestSingleMessageDelivery(t *testing.T) {
	eng, net := newTestNet(t, Config{})
	hosts := BuildRack(net, 2, 40e9, sim.Microsecond)
	flow := net.NewFlow(hosts[0], hosts[1])

	var gotPayload any
	var gotSize int
	var at sim.Time
	hosts[1].NIC.OnMessage = func(f *Flow, id uint64, size int, payload any) {
		if f != flow {
			t.Errorf("wrong flow %d", f.ID)
		}
		gotPayload, gotSize, at = payload, size, eng.Now()
	}
	flow.Send(4096, "hello")
	eng.RunUntilIdle()
	if gotSize != 4096 || gotPayload != "hello" {
		t.Fatalf("delivery size=%d payload=%v", gotSize, gotPayload)
	}
	// 2 hops at 40G: ~0.82us tx each + 2x 1us propagation ≈ 3.6us.
	if at < 3*sim.Microsecond || at > 6*sim.Microsecond {
		t.Fatalf("delivery at %v, want ~3.6us", at)
	}
}

func TestLargeMessageSegmentedAndReassembled(t *testing.T) {
	eng, net := newTestNet(t, Config{})
	hosts := BuildRack(net, 2, 40e9, sim.Microsecond)
	flow := net.NewFlow(hosts[0], hosts[1])
	deliveries := 0
	hosts[1].NIC.OnMessage = func(_ *Flow, id uint64, size int, payload any) {
		deliveries++
		if size != 1<<20 {
			t.Errorf("size %d", size)
		}
		if payload != 42 {
			t.Errorf("payload %v", payload)
		}
	}
	flow.Send(1<<20, 42)
	eng.RunUntilIdle()
	if deliveries != 1 {
		t.Fatalf("deliveries = %d", deliveries)
	}
	// 1MB in 4096B MTU = 256 packets.
	if hosts[0].NIC.BytesSent != 1<<20 {
		t.Fatalf("bytes sent %d", hosts[0].NIC.BytesSent)
	}
	if hosts[1].NIC.BytesReceived != 1<<20 {
		t.Fatalf("bytes received %d", hosts[1].NIC.BytesReceived)
	}
}

func TestMessagesDeliveredInOrderPerFlow(t *testing.T) {
	eng, net := newTestNet(t, Config{})
	hosts := BuildRack(net, 2, 40e9, sim.Microsecond)
	flow := net.NewFlow(hosts[0], hosts[1])
	var order []uint64
	hosts[1].NIC.OnMessage = func(_ *Flow, id uint64, _ int, _ any) {
		order = append(order, id)
	}
	for i := 0; i < 50; i++ {
		flow.Send(10000, nil)
	}
	eng.RunUntilIdle()
	if len(order) != 50 {
		t.Fatalf("delivered %d/50", len(order))
	}
	for i, id := range order {
		if id != uint64(i) {
			t.Fatalf("out of order delivery: %v", order)
		}
	}
}

func TestUncongestedFlowReachesLineRate(t *testing.T) {
	eng, net := newTestNet(t, Config{})
	hosts := BuildRack(net, 2, 10e9, sim.Microsecond)
	flow := net.NewFlow(hosts[0], hosts[1])
	var recvBytes int64
	hosts[1].NIC.OnMessage = func(_ *Flow, _ uint64, size int, _ any) {
		recvBytes += int64(size)
	}
	// Offer exactly 50ms of traffic at 10G = 62.5MB.
	for i := 0; i < 60; i++ {
		flow.Send(1<<20, nil)
	}
	eng.Run(100 * sim.Millisecond)
	// Single flow, no competition: should sustain near line rate, so
	// 60MB takes ~48ms < 100ms.
	if recvBytes != 60<<20 {
		t.Fatalf("received %d of %d bytes in 100ms at 10G", recvBytes, 60<<20)
	}
	if net.ECNMarks > 0 {
		t.Fatalf("uncongested run produced %d ECN marks", net.ECNMarks)
	}
}

func TestIncastTriggersDCQCN(t *testing.T) {
	eng, net := newTestNet(t, Config{Seed: 1})
	// 3 hosts on a 10G rack: two senders incast one receiver.
	hosts := BuildRack(net, 3, 10e9, sim.Microsecond)
	cfgLine := net.Cfg.DCQCN.LineRate
	_ = cfgLine
	f0 := net.NewFlow(hosts[0], hosts[2])
	f1 := net.NewFlow(hosts[1], hosts[2])

	var recv int64
	hosts[2].NIC.OnMessage = func(_ *Flow, _ uint64, size int, _ any) { recv += int64(size) }
	var rateDrops int
	f0.RP.SetRateListener(func(old, new float64) {
		if new < old {
			rateDrops++
		}
	})
	// Keep both senders saturated.
	for i := 0; i < 200; i++ {
		f0.Send(1<<20, nil)
		f1.Send(1<<20, nil)
	}
	eng.Run(80 * sim.Millisecond)

	if net.ECNMarks == 0 {
		t.Fatal("incast produced no ECN marks")
	}
	if net.CNPsSent == 0 {
		t.Fatal("no CNPs sent")
	}
	if hosts[0].NIC.CNPsReceived == 0 && hosts[1].NIC.CNPsReceived == 0 {
		t.Fatal("senders received no CNPs")
	}
	if rateDrops == 0 {
		t.Fatal("DCQCN never cut the rate")
	}
	if f0.RP.Rate() >= 10e9*0.99 && f1.RP.Rate() >= 10e9*0.99 {
		t.Fatalf("both flows still at line rate under incast: %v / %v", f0.RP.Rate(), f1.RP.Rate())
	}
	// The bottleneck still carries close to line rate in aggregate.
	gbps := float64(recv*8) / (80e-3) / 1e9
	if gbps < 6 || gbps > 10.1 {
		t.Fatalf("aggregate goodput %.2f Gbps, want near 10", gbps)
	}
}

func TestLosslessUnderOverload(t *testing.T) {
	// With rate control disabled incentives (huge Kmin disables ECN),
	// PFC alone must prevent loss: every sent byte is delivered.
	cfg := Config{DisableECN: true, Seed: 2}
	eng, net := newTestNet(t, cfg)
	hosts := BuildRack(net, 4, 5e9, sim.Microsecond)
	var recv int64
	hosts[3].NIC.OnMessage = func(_ *Flow, _ uint64, size int, _ any) { recv += int64(size) }
	var sent int64
	for i := 0; i < 3; i++ {
		f := net.NewFlow(hosts[i], hosts[3])
		for j := 0; j < 20; j++ {
			f.Send(1<<20, nil)
			sent += 1 << 20
		}
	}
	eng.RunUntilIdle()
	if recv != sent {
		t.Fatalf("lost bytes: sent %d received %d", sent, recv)
	}
	if net.PFCPauses == 0 {
		t.Fatal("overload without ECN should trigger PFC pauses")
	}
	if net.PFCResumes == 0 {
		t.Fatal("pauses never resumed")
	}
}

func TestPFCDisabled(t *testing.T) {
	cfg := Config{DisableECN: true, DisablePFC: true, Seed: 3}
	eng, net := newTestNet(t, cfg)
	hosts := BuildRack(net, 3, 5e9, sim.Microsecond)
	f := net.NewFlow(hosts[0], hosts[2])
	g := net.NewFlow(hosts[1], hosts[2])
	for j := 0; j < 10; j++ {
		f.Send(1<<20, nil)
		g.Send(1<<20, nil)
	}
	eng.RunUntilIdle()
	if net.PFCPauses != 0 {
		t.Fatalf("PFC disabled but %d pauses", net.PFCPauses)
	}
}

func TestClosTopologyShape(t *testing.T) {
	eng, net := newTestNet(t, Config{})
	_ = eng
	hosts := BuildClos(net, ClosSpec{})
	// Paper topology: 4 pods x 4 ToR x 16 hosts = 256 hosts.
	if len(hosts) != 256 {
		t.Fatalf("hosts = %d, want 256", len(hosts))
	}
	switches := 0
	for _, n := range net.Nodes() {
		if n.IsSwitch {
			switches++
		}
	}
	// 4 spines + 4 pods x (2 leaves + 4 ToRs) = 28.
	if switches != 28 {
		t.Fatalf("switches = %d, want 28", switches)
	}
}

func TestClosAllPairsReachable(t *testing.T) {
	eng, net := newTestNet(t, Config{})
	hosts := BuildClos(net, ClosSpec{Pods: 2, LeafPerPod: 2, TorPerPod: 2, HostsPerTor: 2, Spines: 2})
	// Cross-pod message.
	src, dst := hosts[0], hosts[len(hosts)-1]
	f := net.NewFlow(src, dst)
	got := 0
	dst.NIC.OnMessage = func(_ *Flow, _ uint64, _ int, _ any) { got++ }
	f.Send(100000, nil)
	eng.RunUntilIdle()
	if got != 1 {
		t.Fatal("cross-pod message lost")
	}
}

func TestECMPKeepsFlowOnOnePath(t *testing.T) {
	eng, net := newTestNet(t, Config{})
	hosts := BuildClos(net, ClosSpec{Pods: 2, LeafPerPod: 2, TorPerPod: 1, HostsPerTor: 2, Spines: 2})
	src, dst := hosts[0], hosts[3]
	f := net.NewFlow(src, dst)
	done := 0
	dst.NIC.OnMessage = func(_ *Flow, _ uint64, _ int, _ any) { done++ }
	for i := 0; i < 20; i++ {
		f.Send(4096, nil)
	}
	eng.RunUntilIdle()
	if done != 20 {
		t.Fatalf("delivered %d/20", done)
	}
	// In-order arrival (checked elsewhere) plus a single-path invariant:
	// exactly one spine saw this flow's packets.
	spinesUsed := 0
	for _, n := range net.Nodes() {
		if n.IsSwitch && n.ForwardedPk > 0 && (n.Name == "spine0" || n.Name == "spine1") {
			spinesUsed++
		}
	}
	if spinesUsed != 1 {
		t.Fatalf("flow used %d spines, want 1", spinesUsed)
	}
}

func TestRateListenerSeesPauseAndRetrieval(t *testing.T) {
	eng, net := newTestNet(t, Config{Seed: 4})
	hosts := BuildRack(net, 3, 10e9, sim.Microsecond)
	f0 := net.NewFlow(hosts[0], hosts[2])
	f1 := net.NewFlow(hosts[1], hosts[2])
	var drops, rises int
	f0.RP.SetRateListener(func(old, new float64) {
		if new < old {
			drops++
		} else {
			rises++
		}
	})
	for i := 0; i < 100; i++ {
		f0.Send(1<<20, nil)
		f1.Send(1<<20, nil)
	}
	eng.RunUntilIdle()
	if drops == 0 || rises == 0 {
		t.Fatalf("rate listener drops=%d rises=%d, want both > 0", drops, rises)
	}
}

func TestFlowValidation(t *testing.T) {
	eng, net := newTestNet(t, Config{})
	hosts := BuildRack(net, 2, 40e9, sim.Microsecond)
	_ = eng
	defer func() {
		if recover() == nil {
			t.Fatal("flow to self should panic")
		}
	}()
	net.NewFlow(hosts[0], hosts[0])
}

func TestSendZeroPanics(t *testing.T) {
	eng, net := newTestNet(t, Config{})
	hosts := BuildRack(net, 2, 40e9, sim.Microsecond)
	_ = eng
	f := net.NewFlow(hosts[0], hosts[1])
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size send should panic")
		}
	}()
	f.Send(0, nil)
}

func TestBacklogTracksTXQ(t *testing.T) {
	eng, net := newTestNet(t, Config{})
	hosts := BuildRack(net, 2, 1e9, sim.Microsecond) // slow 1G link
	f := net.NewFlow(hosts[0], hosts[1])
	f.Send(10<<20, nil)
	if f.Backlog() != 10<<20 {
		t.Fatalf("initial backlog %d", f.Backlog())
	}
	eng.Run(10 * sim.Millisecond)
	// Pacing runs at the DCQCN line rate (40G default) while the link is
	// 1G, so undelivered bytes accumulate in the host port queue: the
	// combined flow backlog + TXQ must reflect the ~1.25MB drained.
	combined := f.Backlog() + hosts[0].NIC.TXQBytes()
	if combined <= 8<<20 || combined >= 10<<20 {
		t.Fatalf("combined backlog after partial drain %d", combined)
	}
	eng.RunUntilIdle()
	if f.Backlog() != 0 || hosts[0].NIC.TXQBytes() != 0 {
		t.Fatalf("final backlog %d / txq %d", f.Backlog(), hosts[0].NIC.TXQBytes())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (uint64, uint64, sim.Time) {
		eng, net := newTestNet(t, Config{Seed: 9})
		hosts := BuildRack(net, 3, 10e9, sim.Microsecond)
		f0 := net.NewFlow(hosts[0], hosts[2])
		f1 := net.NewFlow(hosts[1], hosts[2])
		for i := 0; i < 50; i++ {
			f0.Send(1<<20, nil)
			f1.Send(1<<20, nil)
		}
		eng.RunUntilIdle()
		return net.ECNMarks, net.CNPsSent, eng.Now()
	}
	m1, c1, t1 := run()
	m2, c2, t2 := run()
	if m1 != m2 || c1 != c2 || t1 != t2 {
		t.Fatalf("nondeterministic: (%d,%d,%v) vs (%d,%d,%v)", m1, c1, t1, m2, c2, t2)
	}
}

func TestFairnessBetweenTwoFlows(t *testing.T) {
	eng, net := newTestNet(t, Config{Seed: 5})
	hosts := BuildRack(net, 3, 10e9, sim.Microsecond)
	f0 := net.NewFlow(hosts[0], hosts[2])
	f1 := net.NewFlow(hosts[1], hosts[2])
	perFlow := map[int]int64{}
	hosts[2].NIC.OnMessage = func(f *Flow, _ uint64, size int, _ any) {
		perFlow[f.ID] += int64(size)
	}
	for i := 0; i < 400; i++ {
		f0.Send(1<<20, nil)
		f1.Send(1<<20, nil)
	}
	eng.Run(150 * sim.Millisecond)
	a, b := float64(perFlow[f0.ID]), float64(perFlow[f1.ID])
	if a == 0 || b == 0 {
		t.Fatalf("starved flow: %v %v", a, b)
	}
	imbalance := math.Abs(a-b) / (a + b)
	if imbalance > 0.25 {
		t.Fatalf("unfair split: %v vs %v (imbalance %.2f)", a, b, imbalance)
	}
}

func TestCustomDCQCNConfigPropagates(t *testing.T) {
	cfg := Config{DCQCN: dcqcn.Config{LineRate: 25e9}}
	eng, net := newTestNet(t, cfg)
	hosts := BuildRack(net, 2, 0, sim.Microsecond) // 0 -> default = LineRate
	f := net.NewFlow(hosts[0], hosts[1])
	_ = eng
	if f.RP.Rate() != 25e9 {
		t.Fatalf("flow initial rate %v, want 25e9", f.RP.Rate())
	}
}

func BenchmarkIncast(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		net, err := NewNetwork(eng, Config{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		hosts := BuildRack(net, 3, 10e9, sim.Microsecond)
		f0 := net.NewFlow(hosts[0], hosts[2])
		f1 := net.NewFlow(hosts[1], hosts[2])
		for j := 0; j < 20; j++ {
			f0.Send(1<<20, nil)
			f1.Send(1<<20, nil)
		}
		eng.RunUntilIdle()
	}
}
