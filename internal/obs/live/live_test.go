package live

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"srcsim/internal/obs"
	"srcsim/internal/obs/timeseries"
)

func testSnapshot() obs.Snapshot {
	reg := obs.NewRegistry()
	reg.Counter("netsim", "ecn_marks", obs.L("mode", "DCQCN-SRC")).Add(42)
	reg.Counter("netsim", "ecn_marks", obs.L("mode", "DCQCN-Only")).Add(7)
	reg.Gauge("nvmeof", "txq_credit_low", obs.L("mode", "DCQCN-SRC")).Set(-3)
	h := reg.Histogram("ssd", "read_latency_us")
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	return reg.Snapshot()
}

func TestWritePrometheusFormat(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, testSnapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"srcsim_up 1",
		"# TYPE srcsim_netsim_ecn_marks counter",
		`srcsim_netsim_ecn_marks{mode="DCQCN-SRC"} 42`,
		`srcsim_netsim_ecn_marks{mode="DCQCN-Only"} 7`,
		"# TYPE srcsim_nvmeof_txq_credit_low gauge",
		"# TYPE srcsim_ssd_read_latency_us summary",
		`srcsim_ssd_read_latency_us{quantile="0.999"}`,
		"srcsim_ssd_read_latency_us_count 1000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic rendering.
	var b2 strings.Builder
	if err := WritePrometheus(&b2, testSnapshot()); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Fatal("exposition not deterministic")
	}
	// Every non-comment line is "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, " ") {
			t.Fatalf("malformed line %q", line)
		}
	}
}

func TestPromEscape(t *testing.T) {
	name, labels := promKey("core/weight ratio{site=a/b.c,mode=X}")
	if name != "srcsim_core_weight_ratio" {
		t.Fatalf("name %q", name)
	}
	joined := strings.Join(labels, ",")
	if !strings.Contains(joined, `site="a/b.c"`) || !strings.Contains(joined, `mode="X"`) {
		t.Fatalf("labels %q", joined)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	b := NewBoard()
	h := Handler(b)

	// Empty board: valid, empty responses.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "srcsim_up 1") {
		t.Fatalf("empty /metrics: %q", rec.Body.String())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/progress", nil))
	var empty map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &empty); err != nil {
		t.Fatalf("empty /progress not JSON: %v", err)
	}

	// Published state shows up.
	b.PublishSnapshot(testSnapshot())
	b.PublishSeries([]timeseries.SeriesDump{
		{Track: "DCQCN-SRC/net", Name: "ecn_marks", Kind: "counter", T: []int64{1, 2, 3}, V: []float64{1, 1, 2}},
		{Track: "DCQCN-Only/net", Name: "queue", Kind: "gauge", T: []int64{5}, V: []float64{9}},
	})
	b.PublishProgress(CampaignProgress{Campaign: "smoke", Total: 7, Done: 3, Pending: 4})

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "srcsim_netsim_ecn_marks") {
		t.Fatal("/metrics missing published counter")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/series?track=SRC&last=2", nil))
	var ds []timeseries.SeriesDump
	if err := json.Unmarshal(rec.Body.Bytes(), &ds); err != nil {
		t.Fatalf("/series: %v", err)
	}
	if len(ds) != 1 || ds[0].Track != "DCQCN-SRC/net" {
		t.Fatalf("/series filter: %+v", ds)
	}
	if len(ds[0].T) != 2 || ds[0].T[0] != 2 {
		t.Fatalf("/series last window: %+v", ds[0])
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/progress", nil))
	var p CampaignProgress
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if p.Campaign != "smoke" || p.Done != 3 {
		t.Fatalf("/progress: %+v", p)
	}
}

func TestServeAndClose(t *testing.T) {
	b := NewBoard()
	s, err := Serve("127.0.0.1:0", b)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Addr() == "" {
		t.Fatal("no bound address")
	}
}

func TestNilBoardSafe(t *testing.T) {
	var b *Board
	b.PublishSnapshot(obs.Snapshot{})
	b.PublishSeries(nil)
	b.PublishProgress(CampaignProgress{})
	if s := b.Snapshot(); s.NumSeries() != 0 {
		t.Fatal("nil board snapshot")
	}
	if b.Series() != nil {
		t.Fatal("nil board series")
	}
	if _, ok := b.Progress(); ok {
		t.Fatal("nil board progress")
	}
}
