// Package live is the read-only live inspector for running simulations
// and campaigns: an opt-in HTTP endpoint serving the wall-clock-latest
// metrics snapshot (Prometheus text exposition), flight-recorder
// timeseries windows (JSON), and campaign progress.
//
// The simulation engine is single-threaded by design, so the inspector
// never touches it: the engine (or the sweep runner) periodically
// publishes immutable copies into a Board, and HTTP handlers serve only
// those copies through atomic pointers. Publishing with no server
// attached is cheap; serving with no publisher yields empty-but-valid
// responses.
package live

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"srcsim/internal/obs"
	"srcsim/internal/obs/timeseries"
)

// CampaignProgress is the /progress view over a sweep campaign: the
// manifest's job states plus an ETA extrapolated from completed-job
// wall times. It is also the payload of each progress.jsonl line, so
// headless runs expose the same data.
type CampaignProgress struct {
	Campaign  string   `json:"campaign"`
	Total     int      `json:"total"`
	Done      int      `json:"done"`
	Failed    int      `json:"failed"`
	Resumed   int      `json:"resumed"`
	CacheHits int      `json:"cache_hits"`
	Running   []string `json:"running,omitempty"`
	Pending   int      `json:"pending"`
	ElapsedMs float64  `json:"elapsed_ms"`
	// EtaMs extrapolates the remaining wall time from the mean wall
	// time of jobs executed in this process (0 until one completes).
	EtaMs float64 `json:"eta_ms"`
}

// Board is the handoff point between a publisher (the engine thread or
// the sweep runner) and the HTTP server: latest-value mailboxes behind
// atomic pointers. All methods are nil-safe and safe for concurrent
// use; published values must not be mutated afterwards.
type Board struct {
	snap     atomic.Pointer[obs.Snapshot]
	series   atomic.Pointer[[]timeseries.SeriesDump]
	progress atomic.Pointer[CampaignProgress]
}

// NewBoard returns an empty board.
func NewBoard() *Board { return &Board{} }

// PublishSnapshot installs the latest metrics snapshot.
func (b *Board) PublishSnapshot(s obs.Snapshot) {
	if b == nil {
		return
	}
	b.snap.Store(&s)
}

// PublishSeries installs the latest flight-recorder window.
func (b *Board) PublishSeries(ds []timeseries.SeriesDump) {
	if b == nil {
		return
	}
	b.series.Store(&ds)
}

// PublishProgress installs the latest campaign progress.
func (b *Board) PublishProgress(p CampaignProgress) {
	if b == nil {
		return
	}
	b.progress.Store(&p)
}

// Snapshot returns the latest published snapshot (zero value when none).
func (b *Board) Snapshot() obs.Snapshot {
	if b == nil {
		return obs.Snapshot{}
	}
	if p := b.snap.Load(); p != nil {
		return *p
	}
	return obs.Snapshot{}
}

// Series returns the latest published recorder window (nil when none).
func (b *Board) Series() []timeseries.SeriesDump {
	if b == nil {
		return nil
	}
	if p := b.series.Load(); p != nil {
		return *p
	}
	return nil
}

// Progress returns the latest campaign progress and whether one was
// ever published.
func (b *Board) Progress() (CampaignProgress, bool) {
	if b == nil {
		return CampaignProgress{}, false
	}
	if p := b.progress.Load(); p != nil {
		return *p, true
	}
	return CampaignProgress{}, false
}

// promEscape sanitises a metric-name fragment: Prometheus names admit
// [a-zA-Z0-9_:] (colons are reserved for rules, so we map to '_').
func promEscape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// labelValueEscaper escapes label values per the exposition format.
var labelValueEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// promKey splits a registry series key "component/name{k=v,...}" into a
// Prometheus metric name ("srcsim_component_name") and label pairs.
func promKey(key string) (name string, labels []string) {
	base := key
	if i := strings.IndexByte(key, '{'); i >= 0 {
		base = key[:i]
		body := strings.TrimSuffix(key[i+1:], "}")
		for _, kv := range strings.Split(body, ",") {
			if k, v, ok := strings.Cut(kv, "="); ok {
				labels = append(labels, promEscape(k)+`="`+labelValueEscaper.Replace(v)+`"`)
			}
		}
	}
	comp, rest, ok := strings.Cut(base, "/")
	if !ok {
		rest, comp = base, "series"
	}
	return "srcsim_" + promEscape(comp) + "_" + promEscape(rest), labels
}

// renderLabels joins label pairs into a {...} clause ("" when empty).
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	return "{" + strings.Join(labels, ",") + "}"
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4). Output is deterministic: families and series
// are sorted. Histograms are rendered as summaries (quantile label plus
// _sum/_count).
func WritePrometheus(w io.Writer, snap obs.Snapshot) error {
	type family struct {
		typ   string
		lines []string
	}
	fams := map[string]*family{}
	add := func(name, typ, line string) {
		f := fams[name]
		if f == nil {
			f = &family{typ: typ}
			fams[name] = f
		}
		f.lines = append(f.lines, line)
	}
	num := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for k, v := range snap.Counters {
		name, labels := promKey(k)
		add(name, "counter", name+renderLabels(labels)+" "+num(v))
	}
	for k, v := range snap.Gauges {
		name, labels := promKey(k)
		add(name, "gauge", name+renderLabels(labels)+" "+num(v))
	}
	for k, h := range snap.Histograms {
		name, labels := promKey(k)
		for _, q := range []struct {
			q string
			v float64
		}{{"0.5", h.P50}, {"0.99", h.P99}, {"0.999", h.P999}} {
			ql := append(append([]string{}, labels...), `quantile="`+q.q+`"`)
			add(name, "summary", name+renderLabels(ql)+" "+num(q.v))
		}
		add(name, "summary", name+"_sum"+renderLabels(labels)+" "+num(h.Mean*float64(h.Count)))
		add(name, "summary", name+"_count"+renderLabels(labels)+" "+strconv.FormatUint(h.Count, 10))
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("# HELP srcsim_up Inspector endpoint liveness.\n# TYPE srcsim_up gauge\nsrcsim_up 1\n")
	for _, name := range names {
		f := fams[name]
		sort.Strings(f.lines)
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, f.typ)
		for _, line := range f.lines {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Server is the inspector's HTTP server. Close stops it.
type Server struct {
	lis net.Listener
	srv *http.Server
}

// Handler returns the inspector's routes over a board:
//
//	/metrics   Prometheus text exposition of the latest snapshot
//	/series    JSON recorder window; ?track=&name= filter (substring),
//	           ?last=N trims each series to its newest N samples
//	/progress  JSON campaign progress (sweep), {} until published
func Handler(b *Board) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, b.Snapshot())
	})
	mux.HandleFunc("/series", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		ds := b.Series()
		track, name := r.URL.Query().Get("track"), r.URL.Query().Get("name")
		last, _ := strconv.Atoi(r.URL.Query().Get("last"))
		out := make([]timeseries.SeriesDump, 0, len(ds))
		for _, d := range ds {
			if track != "" && !strings.Contains(d.Track, track) {
				continue
			}
			if name != "" && !strings.Contains(d.Name, name) {
				continue
			}
			if last > 0 && len(d.T) > last {
				d.T = d.T[len(d.T)-last:]
				d.V = d.V[len(d.V)-last:]
			}
			out = append(out, d)
		}
		_ = json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		p, ok := b.Progress()
		if !ok {
			io.WriteString(w, "{}\n")
			return
		}
		_ = json.NewEncoder(w).Encode(p)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		io.WriteString(w, "srcsim live inspector\n/metrics  Prometheus text\n/series   recorder timeseries (track=, name=, last=)\n/progress campaign progress\n")
	})
	return mux
}

// Serve starts the inspector on addr (e.g. ":8080", "127.0.0.1:0") in a
// background goroutine. The returned server's Addr reports the bound
// address.
func Serve(addr string, b *Board) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(b), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(lis) }()
	return &Server{lis: lis, srv: srv}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }
