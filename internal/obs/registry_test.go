package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestNilRegistryAndHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "c")
	g := r.Gauge("x", "g")
	h := r.Histogram("x", "h")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	// None of these may panic.
	c.Add(1)
	c.Inc()
	g.Set(3)
	g.SetMax(4)
	g.SetMin(2)
	h.Observe(5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if r.NumSeries() != 0 {
		t.Fatal("nil registry has no series")
	}
	if snap := r.Snapshot(); snap.NumSeries() != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestRegistryHandleIdentityAndLabels(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("netsim", "ecn_marks", L("mode", "base"))
	b := r.Counter("netsim", "ecn_marks", L("mode", "base"))
	if a != b {
		t.Fatal("same series must resolve to the same handle")
	}
	other := r.Counter("netsim", "ecn_marks", L("mode", "src"))
	if a == other {
		t.Fatal("different labels must be different series")
	}
	// Label order must not matter.
	x := r.Gauge("c", "g", L("a", "1"), L("b", "2"))
	y := r.Gauge("c", "g", L("b", "2"), L("a", "1"))
	if x != y {
		t.Fatal("label order changed series identity")
	}
	a.Add(2)
	a.Inc()
	if a.Value() != 3 {
		t.Fatalf("counter value %v, want 3", a.Value())
	}
	if r.NumSeries() != 3 {
		t.Fatalf("series count %d, want 3", r.NumSeries())
	}
}

func TestGaugeWatermarks(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("x", "hw")
	g.SetMax(5)
	g.SetMax(3)
	if g.Value() != 5 {
		t.Fatalf("SetMax kept %v, want 5", g.Value())
	}
	lo := r.Gauge("x", "lw")
	lo.SetMin(5)
	lo.SetMin(7)
	if lo.Value() != 5 {
		t.Fatalf("SetMin kept %v, want 5", lo.Value())
	}
	// First SetMin must latch even if larger than zero value.
	lo2 := r.Gauge("x", "lw2")
	lo2.SetMin(9)
	if lo2.Value() != 9 {
		t.Fatalf("first SetMin %v, want 9", lo2.Value())
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("a", "c1").Add(1)
		r.Counter("b", "c2", L("k", "v")).Add(2)
		r.Gauge("a", "g").Set(4.5)
		h := r.Histogram("a", "h")
		for i := 1; i <= 100; i++ {
			h.Observe(float64(i))
		}
		return r
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("snapshot JSON not deterministic")
	}
	var snap Snapshot
	if err := json.Unmarshal(b1.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot not valid JSON: %v", err)
	}
	if snap.Counters["b/c2{k=v}"] != 2 {
		t.Fatalf("labelled counter missing from snapshot: %+v", snap.Counters)
	}
	hs, ok := snap.Histograms["a/h"]
	if !ok || hs.Count != 100 || hs.Max != 100 {
		t.Fatalf("histogram snapshot wrong: %+v", hs)
	}
	if snap.NumSeries() != 4 {
		t.Fatalf("snapshot series %d, want 4", snap.NumSeries())
	}
}

func TestWithoutComponentDropsOnlyThatComponent(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim", "events_processed").Add(10)
	r.Gauge("sim", "heap_high_water").Set(5)
	r.Counter("netsim", "ecn_marks").Add(3)
	r.Histogram("ssd", "gc_ms").Observe(2)
	snap := r.Snapshot().WithoutComponent("sim")
	if snap.NumSeries() != 2 {
		t.Fatalf("%d series after filter, want 2", snap.NumSeries())
	}
	if _, ok := snap.Counters["sim/events_processed"]; ok {
		t.Fatal("sim counter survived")
	}
	if snap.Gauges != nil {
		t.Fatal("empty gauge map should collapse to nil for stable JSON")
	}
	if snap.Counters["netsim/ecn_marks"] != 3 {
		t.Fatal("unrelated counter lost")
	}
	if snap.Histograms["ssd/gc_ms"].Count != 1 {
		t.Fatal("unrelated histogram lost")
	}
}

func TestMergeSnapshotsSemantics(t *testing.T) {
	ra, rb := NewRegistry(), NewRegistry()
	ra.Counter("netsim", "cnps").Add(2)
	rb.Counter("netsim", "cnps").Add(5)
	ra.Gauge("nvme", "occupancy").Set(7)
	rb.Gauge("nvme", "occupancy").Set(3)
	for _, v := range []float64{1, 2, 3} {
		ra.Histogram("lat", "ms").Observe(v)
	}
	rb.Histogram("lat", "ms").Observe(9)
	m := MergeSnapshots(ra.Snapshot(), rb.Snapshot())
	if m.Counters["netsim/cnps"] != 7 {
		t.Fatalf("counter merge = %v, want sum 7", m.Counters["netsim/cnps"])
	}
	if m.Gauges["nvme/occupancy"] != 7 {
		t.Fatalf("gauge merge = %v, want max 7", m.Gauges["nvme/occupancy"])
	}
	h := m.Histograms["lat/ms"]
	if h.Count != 4 || h.Min != 1 || h.Max != 9 {
		t.Fatalf("histogram merge = %+v", h)
	}
	if want := (1.0 + 2 + 3 + 9) / 4; h.Mean != want {
		t.Fatalf("merged mean %v, want %v", h.Mean, want)
	}
	// A series present in only one snapshot carries over untouched.
	if MergeSnapshots(ra.Snapshot()).Counters["netsim/cnps"] != 2 {
		t.Fatal("single-snapshot merge changed values")
	}
	if got := MergeSnapshots(); got.NumSeries() != 0 {
		t.Fatal("empty merge should be empty")
	}
}

// Merging is order-independent for everything except the quantile
// approximation: counters, gauges, histogram count/mean/min/max must
// not depend on which campaign job finished first.
func TestMergeSnapshotsOrderIndependence(t *testing.T) {
	mk := func(c float64, g float64, obsv []float64) Snapshot {
		r := NewRegistry()
		r.Counter("netsim", "cnps").Add(c)
		r.Gauge("nvme", "occupancy").Set(g)
		h := r.Histogram("lat", "ms")
		for _, v := range obsv {
			h.Observe(v)
		}
		return r.Snapshot()
	}
	a := mk(2, 7, []float64{1, 2, 3})
	b := mk(5, 3, []float64{9})
	c := mk(1, 9, []float64{0.5, 20})

	ab := MergeSnapshots(a, b, c)
	ba := MergeSnapshots(c, b, a)
	if ab.Counters["netsim/cnps"] != ba.Counters["netsim/cnps"] {
		t.Fatal("counter merge order-dependent")
	}
	if ab.Gauges["nvme/occupancy"] != ba.Gauges["nvme/occupancy"] {
		t.Fatal("gauge merge order-dependent")
	}
	ha, hb := ab.Histograms["lat/ms"], ba.Histograms["lat/ms"]
	if ha.Count != hb.Count || ha.Min != hb.Min || ha.Max != hb.Max {
		t.Fatalf("histogram exact fields order-dependent: %+v vs %+v", ha, hb)
	}
	if diff := ha.Mean - hb.Mean; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("histogram mean order-dependent: %v vs %v", ha.Mean, hb.Mean)
	}
}

// The sweep's metrics.json pipeline — strip the wall-clock "sim"
// component per job, then merge in job order — must be byte-stable
// under JSON round-trips of the intermediate snapshots, which is
// exactly what resuming from on-disk artifacts does.
func TestMergeAfterWithoutComponentByteStable(t *testing.T) {
	mk := func(seed float64) Snapshot {
		r := NewRegistry()
		r.Counter("sim", "events_processed").Add(seed * 100)
		r.Gauge("sim", "heap_high_water").Set(seed)
		r.Counter("netsim", "ecn_marks").Add(seed)
		r.Gauge("core", "weight_ratio").Set(seed + 1)
		h := r.Histogram("ssd", "lat_us")
		for i := 0; i < int(seed)+3; i++ {
			h.Observe(seed*10 + float64(i))
		}
		return r.Snapshot().WithoutComponent("sim")
	}

	encode := func(s Snapshot) []byte {
		b, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	direct := MergeSnapshots(mk(1), mk(2), mk(3))
	for k := range direct.Counters {
		if k == "sim/events_processed" {
			t.Fatal("sim component leaked through merge")
		}
	}

	// Round-trip each per-job snapshot through JSON (artifact files),
	// re-merge, and require identical bytes.
	var rt []Snapshot
	for _, s := range []Snapshot{mk(1), mk(2), mk(3)} {
		var back Snapshot
		if err := json.Unmarshal(encode(s), &back); err != nil {
			t.Fatal(err)
		}
		rt = append(rt, back)
	}
	resumed := MergeSnapshots(rt...)
	if !bytes.Equal(encode(direct), encode(resumed)) {
		t.Fatalf("merge not byte-stable across artifact round-trip:\n%s\n---\n%s",
			encode(direct), encode(resumed))
	}

	// Repeating the whole pipeline is deterministic byte-for-byte.
	again := MergeSnapshots(mk(1), mk(2), mk(3))
	if !bytes.Equal(encode(direct), encode(again)) {
		t.Fatal("merge pipeline not deterministic")
	}
}
