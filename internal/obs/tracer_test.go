package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"srcsim/internal/sim"
)

func TestNilTracerAndScopeAreNoOps(t *testing.T) {
	var tr *Tracer
	sc := tr.Scope("run")
	if sc != nil {
		t.Fatal("nil tracer must yield nil scope")
	}
	if sc.Enabled() {
		t.Fatal("nil scope reports enabled")
	}
	// None of these may panic.
	sc.Instant(0, "a", "b")
	sc.Span("a", "b", 0, 1)
	sc.Counter(0, "a", "b", 1)
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must read as empty")
	}
}

func TestTracerRecordsAndOrders(t *testing.T) {
	tr := NewTracer(16)
	sc := tr.Scope("base")
	sc.Instant(5*sim.Microsecond, "netsim", "ecn", Num("q", 42))
	sc.Span("ssd", "gc", 2*sim.Microsecond, 9*sim.Microsecond, Num("relocs", 3))
	sc.Counter(7*sim.Microsecond, "dcqcn", "rate", 10)
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[0].Phase != PhaseInstant || evs[0].Name != "ecn" || evs[0].Pid != 1 {
		t.Fatalf("instant event wrong: %+v", evs[0])
	}
	if evs[1].Phase != PhaseSpan || evs[1].Start != 2*sim.Microsecond || evs[1].Dur != 7*sim.Microsecond {
		t.Fatalf("span event wrong: %+v", evs[1])
	}
	// Reversed span endpoints normalise.
	sc.Span("ssd", "swap", 9, 2)
	evs = tr.Events()
	if last := evs[len(evs)-1]; last.Start != 2 || last.Dur != 7 {
		t.Fatalf("reversed span not normalised: %+v", last)
	}
}

func TestTracerRingOverflowKeepsNewest(t *testing.T) {
	tr := NewTracer(4)
	sc := tr.Scope("p")
	for i := 0; i < 10; i++ {
		sc.Instant(sim.Time(i), "t", "e", Num("i", float64(i)))
	}
	if tr.Len() != 4 {
		t.Fatalf("ring length %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	for i, ev := range evs {
		if want := sim.Time(6 + i); ev.Start != want {
			t.Fatalf("event %d at %v, want %v (oldest-first newest-kept)", i, ev.Start, want)
		}
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer(64)
	base := tr.Scope("DCQCN-Only")
	src := tr.Scope("DCQCN-SRC")
	base.Instant(1000, "netsim", "ecn_mark", Num("queue_bytes", 128))
	base.Span("ssd", "gc", 2000, 5000)
	src.Counter(1500, "dcqcn", "rate_gbps", 7.5)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if file.Unit != "ms" {
		t.Fatalf("displayTimeUnit %q", file.Unit)
	}
	var procs, threads, spans, instants, counters int
	for _, ev := range file.TraceEvents {
		switch ev["ph"] {
		case "M":
			switch ev["name"] {
			case "process_name":
				procs++
			case "thread_name":
				threads++
			}
		case "X":
			spans++
			if ev["dur"].(float64) != 3.0 { // 3000 ns = 3 µs
				t.Fatalf("span dur %v µs, want 3", ev["dur"])
			}
		case "i":
			instants++
			if ev["ts"].(float64) != 1.0 { // 1000 ns = 1 µs
				t.Fatalf("instant ts %v µs, want 1", ev["ts"])
			}
		case "C":
			counters++
		}
	}
	if procs != 2 || threads != 3 || spans != 1 || instants != 1 || counters != 1 {
		t.Fatalf("event mix procs=%d threads=%d spans=%d instants=%d counters=%d",
			procs, threads, spans, instants, counters)
	}
}
