// Package obs is the simulation-wide observability layer: a
// zero-dependency metrics registry (counters, gauges, log₂ histograms)
// and a sim-time event tracer exportable as Chrome trace-event JSON
// (chrome://tracing / Perfetto).
//
// Every entry point is nil-safe: a nil *Registry hands out nil handles,
// and nil handles ignore updates, so components can be instrumented
// unconditionally and pay only a pointer test when observability is off.
// This is the layer's hard guarantee — with no registry and no tracer
// attached, instrumented code takes the exact same decisions in the
// exact same order, preserving the engine's determinism invariant.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"srcsim/internal/stats"
)

// Label is one key=value dimension of a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// seriesKey renders component/name{k=v,...} with labels sorted by key,
// so the same logical series always resolves to the same handle.
func seriesKey(component, name string, labels []Label) string {
	if len(labels) == 0 {
		return component + "/" + name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(component)
	b.WriteByte('/')
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically accumulating series. The zero value is
// usable; a nil Counter ignores updates.
type Counter struct {
	v float64
}

// Add folds delta in; no-op on a nil handle.
func (c *Counter) Add(delta float64) {
	if c == nil {
		return
	}
	c.v += delta
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the accumulated total (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value series with high/low-water convenience setters.
// A nil Gauge ignores updates.
type Gauge struct {
	v   float64
	set bool
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
	g.set = true
}

// SetMax keeps the largest value ever offered (high-water mark).
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	if !g.set || v > g.v {
		g.v = v
		g.set = true
	}
}

// SetMin keeps the smallest value ever offered (low-water mark).
func (g *Gauge) SetMin(v float64) {
	if g == nil {
		return
	}
	if !g.set || v < g.v {
		g.v = v
		g.set = true
	}
}

// Value returns the current value (0 on nil or never-set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a log₂-bucketed distribution series backed by
// stats.Histogram. A nil Histogram ignores observations.
type Histogram struct {
	h stats.Histogram
}

// Observe folds one sample in.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.h.Add(v)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.h.Count()
}

// Quantile estimates the q-th quantile (0 on nil).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.h.Quantile(q)
}

// Registry resolves metric series to handles by component/name/labels.
// Handle resolution is mutex-guarded; handle updates are not — the
// simulation kernel is single-threaded by design, and handles must only
// be touched from event callbacks.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter resolves (creating if absent) a counter series. Returns nil on
// a nil registry.
func (r *Registry) Counter(component, name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	k := seriesKey(component, name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge resolves (creating if absent) a gauge series. Returns nil on a
// nil registry.
func (r *Registry) Gauge(component, name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	k := seriesKey(component, name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram resolves (creating if absent) a histogram series. Returns
// nil on a nil registry.
func (r *Registry) Histogram(component, name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	k := seriesKey(component, name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[k]
	if !ok {
		h = &Histogram{}
		r.hists[k] = h
	}
	return h
}

// NumSeries returns the number of distinct series (0 on nil).
func (r *Registry) NumSeries() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.counters) + len(r.gauges) + len(r.hists)
}

// HistogramSnapshot is the JSON digest of one histogram series.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// Snapshot is a point-in-time copy of every series in a registry.
// encoding/json sorts map keys, so marshalling a snapshot is
// deterministic.
type Snapshot struct {
	Counters   map[string]float64           `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// NumSeries returns the number of series captured in the snapshot.
func (s Snapshot) NumSeries() int {
	return len(s.Counters) + len(s.Gauges) + len(s.Histograms)
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		snap.Counters = make(map[string]float64, len(r.counters))
		for k, c := range r.counters {
			snap.Counters[k] = c.v
		}
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]float64, len(r.gauges))
		for k, g := range r.gauges {
			snap.Gauges[k] = g.v
		}
	}
	if len(r.hists) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for k, h := range r.hists {
			snap.Histograms[k] = HistogramSnapshot{
				Count: h.h.Count(),
				Mean:  h.h.Mean(),
				P50:   h.h.Quantile(0.5),
				P99:   h.h.Quantile(0.99),
				P999:  h.h.Quantile(0.999),
				Min:   h.h.Min(),
				Max:   h.h.Max(),
			}
		}
	}
	return snap
}

// WithoutComponent returns a copy of the snapshot with every series of
// the named component removed (keys are "component/name{labels}"). The
// sweep orchestrator drops the "sim" component before persisting
// per-job snapshots: engine profiling gauges are wall-clock-derived and
// would break the byte-identity of otherwise deterministic artifacts.
func (s Snapshot) WithoutComponent(component string) Snapshot {
	prefix := component + "/"
	var out Snapshot
	keep := func(k string) bool { return !strings.HasPrefix(k, prefix) }
	if len(s.Counters) > 0 {
		out.Counters = make(map[string]float64)
		for k, v := range s.Counters {
			if keep(k) {
				out.Counters[k] = v
			}
		}
		if len(out.Counters) == 0 {
			out.Counters = nil
		}
	}
	if len(s.Gauges) > 0 {
		out.Gauges = make(map[string]float64)
		for k, v := range s.Gauges {
			if keep(k) {
				out.Gauges[k] = v
			}
		}
		if len(out.Gauges) == 0 {
			out.Gauges = nil
		}
	}
	if len(s.Histograms) > 0 {
		out.Histograms = make(map[string]HistogramSnapshot)
		for k, v := range s.Histograms {
			if keep(k) {
				out.Histograms[k] = v
			}
		}
		if len(out.Histograms) == 0 {
			out.Histograms = nil
		}
	}
	return out
}

// MergeSnapshots folds snapshots from independent runs (e.g. the jobs
// of one sweep campaign) into a cross-run aggregate:
//
//   - counters sum — they are totals of countable events;
//   - gauges keep the maximum — registry gauges are levels and
//     high-water marks, so the merged value is the worst case observed
//     by any run;
//   - histogram digests combine exactly for count/min/max, exactly for
//     the mean (count-weighted), and approximately for the quantiles
//     (count-weighted mean of the per-run estimates — adequate for a
//     campaign overview; per-job snapshots keep the precise values).
//
// Merging is order-independent for every field except the quantile
// approximation, so callers that need byte-stable output must merge in
// a deterministic order (the sweep runner merges in job-ID order).
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	var out Snapshot
	for _, s := range snaps {
		for k, v := range s.Counters {
			if out.Counters == nil {
				out.Counters = make(map[string]float64)
			}
			out.Counters[k] += v
		}
		for k, v := range s.Gauges {
			if out.Gauges == nil {
				out.Gauges = make(map[string]float64)
			}
			if cur, ok := out.Gauges[k]; !ok || v > cur {
				out.Gauges[k] = v
			}
		}
		for k, h := range s.Histograms {
			if out.Histograms == nil {
				out.Histograms = make(map[string]HistogramSnapshot)
			}
			cur, ok := out.Histograms[k]
			if !ok {
				out.Histograms[k] = h
				continue
			}
			out.Histograms[k] = mergeHistDigest(cur, h)
		}
	}
	return out
}

// mergeHistDigest combines two histogram digests (see MergeSnapshots
// for the semantics).
func mergeHistDigest(a, b HistogramSnapshot) HistogramSnapshot {
	if a.Count == 0 {
		return b
	}
	if b.Count == 0 {
		return a
	}
	total := a.Count + b.Count
	wa := float64(a.Count) / float64(total)
	wb := float64(b.Count) / float64(total)
	m := HistogramSnapshot{
		Count: total,
		Mean:  a.Mean*wa + b.Mean*wb,
		P50:   a.P50*wa + b.P50*wb,
		P99:   a.P99*wa + b.P99*wb,
		P999:  a.P999*wa + b.P999*wb,
		Min:   a.Min,
		Max:   a.Max,
	}
	if b.Min < m.Min {
		m.Min = b.Min
	}
	if b.Max > m.Max {
		m.Max = b.Max
	}
	return m
}

// WriteJSON writes the current snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Snapshot()); err != nil {
		return fmt.Errorf("obs: snapshot encode: %w", err)
	}
	return nil
}
