package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"srcsim/internal/sim"
)

// DefaultTraceCapacity bounds the tracer's ring buffer when the caller
// passes no explicit capacity: the newest quarter-million events are
// kept, older ones are dropped (and counted).
const DefaultTraceCapacity = 1 << 18

// Phase discriminates event kinds, mirroring the Chrome trace-event
// phases the exporter emits.
type Phase byte

const (
	// PhaseInstant is a point event ("i").
	PhaseInstant Phase = 'i'
	// PhaseSpan is a complete duration event ("X").
	PhaseSpan Phase = 'X'
	// PhaseCounter is a counter-track sample ("C").
	PhaseCounter Phase = 'C'
)

// Arg is one numeric argument attached to an event.
type Arg struct {
	Key string
	Val float64
}

// Num is shorthand for constructing an Arg.
func Num(key string, v float64) Arg { return Arg{Key: key, Val: v} }

// Event is one recorded trace entry. Start/Dur are simulated time; the
// exporter converts to microseconds for the trace viewer.
type Event struct {
	Pid   int    // process id: one per Scope (one per run/mode)
	Track string // rendered as the thread name (component)
	Name  string
	Phase Phase
	Start sim.Time
	Dur   sim.Time // spans only
	Args  []Arg
}

// Tracer records typed events into a bounded ring buffer. Create one
// with NewTracer; a nil *Tracer (and any Scope cut from it) is a no-op.
//
// The ring keeps the newest events: when full, the oldest entry is
// overwritten and Dropped is incremented. Recording is mutex-guarded so
// sequential runs sharing a tracer — and race-detector test runs — stay
// safe, but the expected usage is single-threaded like the engine.
type Tracer struct {
	mu      sync.Mutex
	events  []Event
	next    int
	wrapped bool
	dropped uint64
	procs   []string
}

// NewTracer returns a tracer holding at most capacity events
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{events: make([]Event, 0, capacity)}
}

// Scope registers a named process (a run, a mode, a subsystem) and
// returns a handle stamping its events with that process id. Nil-safe:
// a nil tracer yields a nil scope, and nil scopes drop everything.
func (t *Tracer) Scope(process string) *Scope {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.procs = append(t.procs, process)
	return &Scope{t: t, pid: len(t.procs)}
}

// record appends one event, overwriting the oldest when full.
func (t *Tracer) record(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) < cap(t.events) {
		t.events = append(t.events, ev)
		return
	}
	t.events[t.next] = ev
	t.next++
	if t.next == len(t.events) {
		t.next = 0
	}
	t.wrapped = true
	t.dropped++
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events were evicted by ring overflow.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns the buffered events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.events))
	if t.wrapped {
		out = append(out, t.events[t.next:]...)
		out = append(out, t.events[:t.next]...)
	} else {
		out = append(out, t.events...)
	}
	return out
}

// Scope stamps events with one process id. All methods are nil-safe and
// guarded by Enabled, so instrumented code can hold a nil *Scope and
// pay a single pointer test per site when tracing is off.
type Scope struct {
	t   *Tracer
	pid int
}

// Enabled reports whether events recorded through this scope are kept.
// The canonical call pattern around any non-trivial argument
// construction is:
//
//	if sc.Enabled() { sc.Instant(...) }
func (s *Scope) Enabled() bool { return s != nil }

// Instant records a point event on the given track.
func (s *Scope) Instant(at sim.Time, track, name string, args ...Arg) {
	if s == nil {
		return
	}
	s.t.record(Event{Pid: s.pid, Track: track, Name: name, Phase: PhaseInstant, Start: at, Args: args})
}

// Span records a complete duration event covering [from, to].
func (s *Scope) Span(track, name string, from, to sim.Time, args ...Arg) {
	if s == nil {
		return
	}
	if to < from {
		from, to = to, from
	}
	s.t.record(Event{Pid: s.pid, Track: track, Name: name, Phase: PhaseSpan, Start: from, Dur: to - from, Args: args})
}

// Counter records a counter-track sample; the viewer renders the series
// as a stacked area chart per (process, name).
func (s *Scope) Counter(at sim.Time, track, name string, v float64) {
	if s == nil {
		return
	}
	s.t.record(Event{Pid: s.pid, Track: track, Name: name, Phase: PhaseCounter, Start: at, Args: []Arg{{Key: "value", Val: v}}})
}

// chromeEvent is the trace-event JSON wire form.
type chromeEvent struct {
	Name  string             `json:"name"`
	Phase string             `json:"ph"`
	Ts    float64            `json:"ts"` // microseconds
	Dur   *float64           `json:"dur,omitempty"`
	Pid   int                `json:"pid"`
	Tid   int                `json:"tid"`
	Args  map[string]float64 `json:"args,omitempty"`
}

// chromeFile is the JSON object format (preferred over the bare array —
// it tolerates trailing metadata and declares the display unit).
type chromeFile struct {
	TraceEvents     []json.RawMessage `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the buffer as Chrome trace-event JSON,
// loadable in chrome://tracing and ui.perfetto.dev. Tracks become named
// threads; scopes become named processes.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: WriteChromeTrace on nil tracer")
	}
	events := t.Events()
	t.mu.Lock()
	procs := append([]string(nil), t.procs...)
	t.mu.Unlock()

	var out []json.RawMessage
	add := func(v any) error {
		raw, err := json.Marshal(v)
		if err != nil {
			return err
		}
		out = append(out, raw)
		return nil
	}

	// Process metadata.
	type metaEvent struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Pid  int               `json:"pid"`
		Tid  int               `json:"tid"`
		Args map[string]string `json:"args"`
	}
	for i, name := range procs {
		if err := add(metaEvent{Name: "process_name", Ph: "M", Pid: i + 1, Args: map[string]string{"name": name}}); err != nil {
			return err
		}
	}

	// Track (thread) numbering per process, in order of first appearance.
	type trackKey struct {
		pid   int
		track string
	}
	tids := make(map[trackKey]int)
	nextTid := make(map[int]int)
	for _, ev := range events {
		k := trackKey{ev.Pid, ev.Track}
		if _, ok := tids[k]; ok {
			continue
		}
		nextTid[ev.Pid]++
		tids[k] = nextTid[ev.Pid]
		if err := add(metaEvent{Name: "thread_name", Ph: "M", Pid: ev.Pid, Tid: tids[k], Args: map[string]string{"name": ev.Track}}); err != nil {
			return err
		}
	}

	for _, ev := range events {
		ce := chromeEvent{
			Name:  ev.Name,
			Phase: string(rune(ev.Phase)),
			Ts:    float64(ev.Start) / 1e3,
			Pid:   ev.Pid,
			Tid:   tids[trackKey{ev.Pid, ev.Track}],
		}
		if ev.Phase == PhaseSpan {
			d := float64(ev.Dur) / 1e3
			ce.Dur = &d
		}
		if len(ev.Args) > 0 {
			ce.Args = make(map[string]float64, len(ev.Args))
			for _, a := range ev.Args {
				ce.Args[a.Key] = a.Val
			}
		}
		if err := add(ce); err != nil {
			return err
		}
	}

	enc := json.NewEncoder(w)
	if err := enc.Encode(chromeFile{TraceEvents: out, DisplayTimeUnit: "ms"}); err != nil {
		return fmt.Errorf("obs: trace encode: %w", err)
	}
	return nil
}
