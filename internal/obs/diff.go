package obs

import (
	"math"
	"sort"
	"strconv"
)

// FlattenSnapshot lowers a snapshot into one scalar per comparable
// quantity: counters and gauges keep their series key; each histogram
// expands into key:count, :mean, :p50, :p99, :p999, :min, :max. This is
// the common currency of cross-run metric diffing — two flattened
// snapshots can be compared key by key regardless of series type.
func FlattenSnapshot(s Snapshot) map[string]float64 {
	out := make(map[string]float64, len(s.Counters)+len(s.Gauges)+7*len(s.Histograms))
	for k, v := range s.Counters {
		out[k] = v
	}
	for k, v := range s.Gauges {
		out[k] = v
	}
	for k, h := range s.Histograms {
		out[k+":count"] = float64(h.Count)
		out[k+":mean"] = h.Mean
		out[k+":p50"] = h.P50
		out[k+":p99"] = h.P99
		out[k+":p999"] = h.P999
		out[k+":min"] = h.Min
		out[k+":max"] = h.Max
	}
	return out
}

// DiffEntry is one compared quantity across two runs. When a side is
// missing the corresponding Present flag is false and its value 0.
type DiffEntry struct {
	Key      string  `json:"key"`
	A        float64 `json:"a"`
	B        float64 `json:"b"`
	PresentA bool    `json:"present_a"`
	PresentB bool    `json:"present_b"`
	// Abs is |B-A|; Rel is |B-A| / max(|A|,|B|) (0 when both zero,
	// 1 when a side is missing).
	Abs float64 `json:"abs"`
	Rel float64 `json:"rel"`
	// Breach marks the entry as exceeding the configured thresholds.
	Breach bool `json:"breach"`
}

// DiffOptions configures breach detection. The zero value is the
// strictest gate: any difference at all (including a series present on
// only one side) is a breach.
type DiffOptions struct {
	// Rel is the relative-change tolerance: entries with
	// Rel <= this never breach.
	Rel float64
	// Abs is the absolute-change tolerance: entries with
	// Abs <= this never breach (applied after Rel — both must be
	// exceeded).
	Abs float64
	// IgnoreMissing downgrades series present on only one side from
	// breach to informational.
	IgnoreMissing bool
}

// Diff is the result of comparing two flattened snapshots.
type Diff struct {
	Entries  []DiffEntry `json:"entries"`
	Breaches int         `json:"breaches"`
}

// DiffSnapshots compares run A against run B. Identical entries are
// omitted; the rest are sorted most-divergent first (by Rel, then Abs,
// then key), with missing-on-one-side entries ranked as fully divergent.
func DiffSnapshots(a, b Snapshot, opt DiffOptions) Diff {
	fa, fb := FlattenSnapshot(a), FlattenSnapshot(b)
	keys := make(map[string]struct{}, len(fa)+len(fb))
	for k := range fa {
		keys[k] = struct{}{}
	}
	for k := range fb {
		keys[k] = struct{}{}
	}

	var d Diff
	for k := range keys {
		va, oka := fa[k]
		vb, okb := fb[k]
		e := DiffEntry{Key: k, A: va, B: vb, PresentA: oka, PresentB: okb}
		switch {
		case !oka || !okb:
			e.Abs = math.Abs(vb - va)
			e.Rel = 1
			e.Breach = !opt.IgnoreMissing
		default:
			e.Abs = math.Abs(vb - va)
			if e.Abs == 0 {
				continue // identical; not worth reporting
			}
			if m := math.Max(math.Abs(va), math.Abs(vb)); m > 0 {
				e.Rel = e.Abs / m
			}
			e.Breach = e.Rel > opt.Rel && e.Abs > opt.Abs
		}
		if e.Breach {
			d.Breaches++
		}
		d.Entries = append(d.Entries, e)
	}
	sort.Slice(d.Entries, func(i, j int) bool {
		x, y := d.Entries[i], d.Entries[j]
		if x.Rel != y.Rel {
			return x.Rel > y.Rel
		}
		if x.Abs != y.Abs {
			return x.Abs > y.Abs
		}
		return x.Key < y.Key
	})
	return d
}

// FormatValue renders a diff value compactly ("-" for a missing side).
func FormatValue(v float64, present bool) string {
	if !present {
		return "-"
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}
