package timeseries

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"srcsim/internal/obs"
	"srcsim/internal/sim"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	eng := sim.NewEngine()
	stop := r.Start(eng, nil)
	eng.Schedule(10, func() {})
	eng.RunUntilIdle()
	stop()
	if r.NumSeries() != 0 || r.Ticks() != 0 {
		t.Fatal("nil recorder recorded something")
	}
	if d := r.Dump(0); d != nil {
		t.Fatalf("nil recorder dump %v", d)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil recorder CSV: %v %q", err, buf.String())
	}
	if err := r.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil recorder JSONL: %v %q", err, buf.String())
	}
}

func TestRecorderSamplesOnSimClock(t *testing.T) {
	eng := sim.NewEngine()
	reg := obs.NewRegistry()
	cnt := reg.Counter("c", "events")
	g := reg.Gauge("c", "level")

	// Model traffic: bump the counter every 7 ticks, move the gauge once.
	eng.Ticker(7, func() { cnt.Inc() })
	g.Set(3)
	eng.Schedule(25, func() { g.Set(8) })
	eng.Schedule(60, func() { eng.Stop() })

	r := New(10, 0)
	stop := r.Start(eng, reg)
	eng.RunUntilIdle()
	stop()

	if r.Ticks() == 0 {
		t.Fatal("no sample ticks")
	}
	dump := r.Dump(0)
	byName := map[string]SeriesDump{}
	for _, d := range dump {
		byName[d.Name] = d
	}
	ev, ok := byName["c/events"]
	if !ok {
		t.Fatalf("counter series missing; have %v", names(dump))
	}
	if ev.Kind != "counter" {
		t.Fatalf("kind %q", ev.Kind)
	}
	var total float64
	for _, v := range ev.V {
		if v <= 0 {
			t.Fatalf("counter delta %v not positive", v)
		}
		total += v
	}
	if total != cnt.Value() {
		t.Fatalf("deltas sum to %v, counter at %v", total, cnt.Value())
	}
	lv, ok := byName["c/level"]
	if !ok {
		t.Fatal("gauge series missing")
	}
	// Change-driven: exactly two gauge samples (3 at start, 8 after t=25).
	if len(lv.V) != 2 || lv.V[0] != 3 || lv.V[1] != 8 {
		t.Fatalf("gauge samples %v, want [3 8]", lv.V)
	}
	// Timestamps non-decreasing everywhere.
	for _, d := range dump {
		for i := 1; i < len(d.T); i++ {
			if d.T[i] < d.T[i-1] {
				t.Fatalf("%s/%s: t[%d]=%d < t[%d]=%d", d.Track, d.Name, i, d.T[i], i-1, d.T[i-1])
			}
		}
	}
}

func TestRecorderProbesAndFinalFlush(t *testing.T) {
	eng := sim.NewEngine()
	level := 0.0
	eng.Schedule(5, func() { level = 1 })
	eng.Schedule(34, func() { level = 2 }) // between ticks; caught by the stop() flush
	eng.Schedule(35, func() { eng.Stop() })

	r := New(10, 0)
	stop := r.Start(eng, nil, func(now sim.Time, emit Emit) {
		emit("probe", "level", Gauge, level)
	})
	eng.RunUntilIdle()
	stop()

	d := r.Dump(0)
	if len(d) != 1 {
		t.Fatalf("series %v", names(d))
	}
	vs := d[0].V
	if len(vs) != 3 || vs[0] != 0 || vs[1] != 1 || vs[2] != 2 {
		t.Fatalf("probe samples %v, want [0 1 2]", vs)
	}
	if last := d[0].T[len(d[0].T)-1]; last != 35 {
		t.Fatalf("flush sample at %d, want 35 (drain time)", last)
	}
}

func TestRingEviction(t *testing.T) {
	eng := sim.NewEngine()
	v := 0.0
	eng.Ticker(1, func() { v++ })
	eng.Schedule(100, func() { eng.Stop() })
	r := New(1, 8)
	stop := r.Start(eng, nil, func(now sim.Time, emit Emit) {
		emit("p", "v", Gauge, v)
	})
	eng.RunUntilIdle()
	stop()
	d := r.Dump(0)[0]
	if len(d.V) != 8 {
		t.Fatalf("ring kept %d samples, want 8", len(d.V))
	}
	if d.Dropped == 0 {
		t.Fatal("no drops counted")
	}
	// The retained window is the most recent one, in order.
	for i := 1; i < len(d.V); i++ {
		if d.V[i] != d.V[i-1]+1 {
			t.Fatalf("ring order broken: %v", d.V)
		}
	}
	if d.V[len(d.V)-1] != v {
		t.Fatalf("last sample %v, want %v", d.V[len(d.V)-1], v)
	}
	// Dump with a cap trims from the front.
	trimmed := r.Dump(3)[0]
	if len(trimmed.V) != 3 || trimmed.V[2] != d.V[len(d.V)-1] {
		t.Fatalf("Dump(3) = %v", trimmed.V)
	}
}

func TestExportsDeterministicAndParseable(t *testing.T) {
	run := func() (*Recorder, string, string) {
		eng := sim.NewEngine()
		reg := obs.NewRegistry()
		a := reg.Counter("x", "a", obs.L("mode", "m"))
		h := reg.Histogram("x", "lat")
		eng.Ticker(3, func() { a.Inc(); h.Observe(float64(eng.Now())) })
		eng.Schedule(30, func() { eng.Stop() })
		r := New(5, 0)
		stop := r.Start(eng, reg, func(now sim.Time, emit Emit) {
			emit("z", "probe", Gauge, float64(now))
		})
		eng.RunUntilIdle()
		stop()
		var csv, jsonl bytes.Buffer
		if err := r.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteJSONL(&jsonl); err != nil {
			t.Fatal(err)
		}
		return r, csv.String(), jsonl.String()
	}
	r1, csv1, jsonl1 := run()
	_, csv2, jsonl2 := run()
	if csv1 != csv2 {
		t.Fatal("CSV export not deterministic across identical runs")
	}
	if jsonl1 != jsonl2 {
		t.Fatal("JSONL export not deterministic across identical runs")
	}
	if !strings.HasPrefix(csv1, "track,name,kind,t_ns,value\n") {
		t.Fatalf("CSV header: %q", csv1[:40])
	}
	for _, line := range strings.Split(strings.TrimSpace(jsonl1), "\n") {
		var d SeriesDump
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("JSONL line %q: %v", line, err)
		}
	}
	// Histogram quantile sub-series present.
	found := false
	for _, d := range r1.Dump(0) {
		if strings.HasSuffix(d.Name, ":p999") {
			found = true
		}
	}
	if !found {
		t.Fatal("no :p999 sub-series recorded")
	}
}

func TestChromeCounterExport(t *testing.T) {
	eng := sim.NewEngine()
	total := 0.0
	eng.Ticker(2, func() { total += 4 })
	eng.Schedule(20, func() { eng.Stop() })
	r := New(10, 0)
	stop := r.Start(eng, nil, func(now sim.Time, emit Emit) {
		emit("net", "bytes", Counter, total)
	})
	eng.RunUntilIdle()
	stop()

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	counters := 0
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "C" {
			counters++
		}
	}
	if counters == 0 {
		t.Fatal("no ph:\"C\" counter events in chrome trace")
	}
}

func names(ds []SeriesDump) []string {
	var out []string
	for _, d := range ds {
		out = append(out, d.Track+"/"+d.Name)
	}
	return out
}
