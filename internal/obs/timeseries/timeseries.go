// Package timeseries is the flight recorder: the time dimension of the
// observability layer. A Recorder samples the simulation periodically —
// on the sim clock, as ordinary engine events, so recording is
// deterministic and replayable — and stores what it sees in
// fixed-capacity ring-buffered series: every registry counter and gauge,
// selected histogram quantiles, and whatever pull-probes the model
// layers register (queue depth, ECN mark rate, DCQCN rate and alpha,
// SRC weight, in-flight NVMe-oF commands).
//
// Recording is change-driven: a sample is stored only when the value
// differs from the previously stored one (for counters, only when the
// per-interval delta is nonzero). Idle series therefore cost nothing,
// and reconstruction is step interpolation — exactly how Perfetto
// renders counter tracks.
//
// Like the rest of obs, every entry point is nil-safe: a nil *Recorder
// is a no-op, so model code can be wired unconditionally and a run with
// recording off takes the exact same decisions in the exact same order.
// The Recorder itself is single-threaded engine-side state; exports and
// Dump produce copies safe to hand to other goroutines.
package timeseries

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"srcsim/internal/obs"
	"srcsim/internal/sim"
)

// Kind classifies a series' sampling semantics.
type Kind uint8

const (
	// Gauge series store the sampled value itself.
	Gauge Kind = iota
	// Counter series store the per-interval delta of a monotonically
	// accumulating total (rates, once divided by the sample interval).
	Counter
)

// String renders the kind for exports.
func (k Kind) String() string {
	if k == Counter {
		return "counter"
	}
	return "gauge"
}

// Emit records one observation into the recorder. Probes receive an
// Emit bound to the current sample instant.
type Emit func(track, name string, kind Kind, v float64)

// Sampler is a pull-probe: called at every sample instant with the
// current sim time and an Emit sink. Probes must be read-only — they
// run as engine events and anything they mutate perturbs the run.
type Sampler func(now sim.Time, emit Emit)

// DefaultInterval is the sample period when the Recorder leaves it zero.
const DefaultInterval = 100 * sim.Microsecond

// DefaultCapacity is the per-series ring capacity when unset.
const DefaultCapacity = 1 << 14

// Series is one recorded timeline. Timestamps are non-decreasing within
// a series; when the ring wraps, the oldest samples are dropped and
// counted.
type Series struct {
	Track string
	Name  string
	Kind  Kind

	t       []int64 // sim-time nanoseconds, ring-ordered
	v       []float64
	next    int
	wrapped bool
	dropped uint64
}

// Len returns the number of retained samples.
func (s *Series) Len() int {
	if s.wrapped {
		return len(s.t)
	}
	return s.next
}

// Dropped returns the number of samples evicted by ring wrap.
func (s *Series) Dropped() uint64 { return s.dropped }

// append stores one sample, evicting the oldest on a full ring.
func (s *Series) append(at sim.Time, v float64) {
	if s.next < cap(s.t) && !s.wrapped {
		s.t = append(s.t, int64(at))
		s.v = append(s.v, v)
		s.next++
		if s.next == cap(s.t) {
			s.next = 0
			s.wrapped = true
		}
		return
	}
	s.t[s.next] = int64(at)
	s.v[s.next] = v
	s.next++
	s.dropped++
	if s.next == len(s.t) {
		s.next = 0
	}
}

// Samples returns retained (time, value) pairs in chronological order,
// as copies.
func (s *Series) Samples() (ts []int64, vs []float64) {
	n := s.Len()
	ts = make([]int64, 0, n)
	vs = make([]float64, 0, n)
	if s.wrapped {
		ts = append(ts, s.t[s.next:]...)
		vs = append(vs, s.v[s.next:]...)
		ts = append(ts, s.t[:s.next]...)
		vs = append(vs, s.v[:s.next]...)
		return ts, vs
	}
	ts = append(ts, s.t[:s.next]...)
	vs = append(vs, s.v[:s.next]...)
	return ts, vs
}

// Recorder is the flight recorder. The zero value records with defaults;
// a nil *Recorder is a no-op everywhere.
type Recorder struct {
	// Interval is the sample period in sim time (default 100 µs).
	Interval sim.Time
	// Capacity bounds each series' ring (default 16384 samples).
	Capacity int

	series map[string]*Series
	// prev holds each series' last raw observation — the subtrahend for
	// counter deltas and the change filter for gauges.
	prev map[string]float64

	// Session state while attached to an engine via Start.
	eng      *sim.Engine
	reg      *obs.Registry
	samplers []Sampler
	ticks    uint64
}

// New returns a Recorder with the given sample interval and per-series
// ring capacity (zero values pick the defaults).
func New(interval sim.Time, capacity int) *Recorder {
	return &Recorder{Interval: interval, Capacity: capacity}
}

// interval returns the effective sample period.
func (r *Recorder) interval() sim.Time {
	if r.Interval > 0 {
		return r.Interval
	}
	return DefaultInterval
}

// capacity returns the effective ring capacity.
func (r *Recorder) capacity() int {
	if r.Capacity > 0 {
		return r.Capacity
	}
	return DefaultCapacity
}

// Ticks returns the number of sample instants executed so far.
func (r *Recorder) Ticks() uint64 {
	if r == nil {
		return 0
	}
	return r.ticks
}

// NumSeries returns the number of distinct recorded series.
func (r *Recorder) NumSeries() int {
	if r == nil {
		return 0
	}
	return len(r.series)
}

// Start attaches the recorder to an engine: a sample fires immediately
// (capturing the t=0 state) and then every Interval, as ordinary engine
// events. reg, when non-nil, is snapshotted at every sample — each
// counter/gauge becomes a series under track "metrics", each histogram
// contributes count/mean/p50/p99/p999 sub-series. samplers are the model
// layers' pull-probes for the same session. The returned stop cancels
// the periodic event and takes one final sample at the current instant,
// so the end-of-run state is always recorded. Nil-safe: a nil recorder
// returns a no-op stop.
func (r *Recorder) Start(eng *sim.Engine, reg *obs.Registry, samplers ...Sampler) (stop func()) {
	if r == nil {
		return func() {}
	}
	if r.series == nil {
		r.series = make(map[string]*Series)
		r.prev = make(map[string]float64)
	}
	r.eng, r.reg, r.samplers = eng, reg, samplers
	cancel := eng.Sampler(r.interval(), r.tick)
	return func() {
		cancel()
		r.tick() // flush: record the drain-time state
		r.eng, r.reg, r.samplers = nil, nil, nil
	}
}

// tick is one sample instant: registry sweep plus every probe.
func (r *Recorder) tick() {
	now := r.eng.Now()
	r.ticks++
	emit := func(track, name string, kind Kind, v float64) {
		r.observe(now, track, name, kind, v)
	}
	if r.reg != nil {
		r.sampleRegistry(now)
	}
	for _, s := range r.samplers {
		s(now, emit)
	}
}

// observe applies the change filter and stores one observation.
func (r *Recorder) observe(at sim.Time, track, name string, kind Kind, raw float64) {
	key := track + "\x00" + name
	s, ok := r.series[key]
	if !ok {
		s = &Series{Track: track, Name: name, Kind: kind}
		s.t = make([]int64, 0, r.capacity())
		s.v = make([]float64, 0, r.capacity())
		r.series[key] = s
	}
	switch kind {
	case Counter:
		delta := raw - r.prev[key]
		if delta == 0 {
			return
		}
		r.prev[key] = raw
		s.append(at, delta)
	default:
		if prev, seen := r.prev[key]; seen && prev == raw {
			return
		}
		r.prev[key] = raw
		s.append(at, raw)
	}
}

// sampleRegistry sweeps a registry snapshot into series under the
// "metrics" track. Registry keys already carry the component and mode
// labels, so CompareModes legs sharing one recorder land in distinct
// series.
func (r *Recorder) sampleRegistry(now sim.Time) {
	snap := r.reg.Snapshot()
	for k, v := range snap.Counters {
		r.observe(now, "metrics", k, Counter, v)
	}
	for k, v := range snap.Gauges {
		r.observe(now, "metrics", k, Gauge, v)
	}
	for k, h := range snap.Histograms {
		r.observe(now, "metrics", k+":count", Counter, float64(h.Count))
		r.observe(now, "metrics", k+":mean", Gauge, h.Mean)
		r.observe(now, "metrics", k+":p50", Gauge, h.P50)
		r.observe(now, "metrics", k+":p99", Gauge, h.P99)
		r.observe(now, "metrics", k+":p999", Gauge, h.P999)
	}
}

// sorted returns the recorded series ordered by (track, name) — the
// deterministic export order, independent of map iteration.
func (r *Recorder) sorted() []*Series {
	out := make([]*Series, 0, len(r.series))
	for _, s := range r.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Track != out[j].Track {
			return out[i].Track < out[j].Track
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// SeriesDump is one exported series with chronological samples — a copy,
// safe to share across goroutines (the live inspector serves these).
type SeriesDump struct {
	Track   string    `json:"track"`
	Name    string    `json:"name"`
	Kind    string    `json:"kind"`
	T       []int64   `json:"t_ns"`
	V       []float64 `json:"v"`
	Dropped uint64    `json:"dropped,omitempty"`
}

// Dump copies every series (sorted by track then name), keeping at most
// the last max samples per series (max <= 0 keeps all). Nil-safe.
func (r *Recorder) Dump(max int) []SeriesDump {
	if r == nil {
		return nil
	}
	out := make([]SeriesDump, 0, len(r.series))
	for _, s := range r.sorted() {
		ts, vs := s.Samples()
		if max > 0 && len(ts) > max {
			ts, vs = ts[len(ts)-max:], vs[len(vs)-max:]
		}
		out = append(out, SeriesDump{
			Track: s.Track, Name: s.Name, Kind: s.Kind.String(),
			T: ts, V: vs, Dropped: s.dropped,
		})
	}
	return out
}

// WriteCSV writes every sample in long format — one row per sample,
// sorted by (track, name, time) — ready for any columnar tool:
//
//	track,name,kind,t_ns,value
func (r *Recorder) WriteCSV(w io.Writer) error {
	if r == nil {
		return nil
	}
	if _, err := io.WriteString(w, "track,name,kind,t_ns,value\n"); err != nil {
		return err
	}
	var b strings.Builder
	for _, s := range r.sorted() {
		ts, vs := s.Samples()
		for i := range ts {
			b.Reset()
			fmt.Fprintf(&b, "%s,%s,%s,%d,%g\n", s.Track, s.Name, s.Kind, ts[i], vs[i])
			if _, err := io.WriteString(w, b.String()); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSONL writes one JSON object per series (columnar: parallel
// timestamp and value arrays), sorted by (track, name).
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, d := range r.Dump(0) {
		if err := enc.Encode(d); err != nil {
			return err
		}
	}
	return nil
}

// EmitChromeCounters folds every recorded series into a trace scope as
// Chrome counter events (ph:"C"), so Perfetto renders the rate and
// queue curves as counter tracks beside the tracer's existing spans.
// Counter series are emitted as per-second rates (delta over the sample
// interval), gauges as sampled values. Nil-safe on both sides.
func (r *Recorder) EmitChromeCounters(sc *obs.Scope) {
	if r == nil || !sc.Enabled() {
		return
	}
	perSec := 1.0 / r.interval().Seconds()
	for _, s := range r.sorted() {
		ts, vs := s.Samples()
		for i := range ts {
			v := vs[i]
			if s.Kind == Counter {
				v *= perSec
			}
			sc.Counter(sim.Time(ts[i]), s.Track, s.Name, v)
		}
	}
}

// WriteChromeTrace writes the recorder's series as a standalone Chrome
// trace-event JSON file of counter tracks (open in chrome://tracing or
// Perfetto).
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		return nil
	}
	n := 16
	for _, s := range r.series {
		n += s.Len()
	}
	tr := obs.NewTracer(n)
	r.EmitChromeCounters(tr.Scope("recorder"))
	return tr.WriteChromeTrace(w)
}
