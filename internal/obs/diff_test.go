package obs

import (
	"testing"
)

func diffSnapA() Snapshot {
	return Snapshot{
		Counters: map[string]float64{
			"netsim/ecn_marks":  100,
			"netsim/pfc_pauses": 5,
		},
		Gauges: map[string]float64{"core/weight_ratio": 4},
		Histograms: map[string]HistogramSnapshot{
			"ssd/read_latency_us": {Count: 1000, Mean: 50, P50: 40, P99: 200, P999: 400, Min: 1, Max: 500},
		},
	}
}

// TestFlattenSnapshot: every series type lowers into scalars, with
// histograms expanding into their digest fields.
func TestFlattenSnapshot(t *testing.T) {
	f := FlattenSnapshot(diffSnapA())
	want := map[string]float64{
		"netsim/ecn_marks":          100,
		"netsim/pfc_pauses":         5,
		"core/weight_ratio":         4,
		"ssd/read_latency_us:count": 1000,
		"ssd/read_latency_us:mean":  50,
		"ssd/read_latency_us:p50":   40,
		"ssd/read_latency_us:p99":   200,
		"ssd/read_latency_us:p999":  400,
		"ssd/read_latency_us:min":   1,
		"ssd/read_latency_us:max":   500,
	}
	if len(f) != len(want) {
		t.Fatalf("flattened %d series, want %d: %v", len(f), len(want), f)
	}
	for k, v := range want {
		if f[k] != v {
			t.Fatalf("%s = %g, want %g", k, f[k], v)
		}
	}
}

// TestDiffIdentical: identical snapshots produce an empty diff.
func TestDiffIdentical(t *testing.T) {
	d := DiffSnapshots(diffSnapA(), diffSnapA(), DiffOptions{})
	if len(d.Entries) != 0 || d.Breaches != 0 {
		t.Fatalf("identical snapshots diff: %+v", d)
	}
}

// TestDiffThresholds: the zero options breach on any change; rel/abs
// tolerances suppress small drift; both gates must be exceeded.
func TestDiffThresholds(t *testing.T) {
	b := diffSnapA()
	b.Counters["netsim/ecn_marks"] = 101 // +1%

	d := DiffSnapshots(diffSnapA(), b, DiffOptions{})
	if d.Breaches != 1 || len(d.Entries) != 1 {
		t.Fatalf("strict diff: %+v", d)
	}
	e := d.Entries[0]
	if e.Key != "netsim/ecn_marks" || e.Abs != 1 || !e.Breach {
		t.Fatalf("entry: %+v", e)
	}
	wantRel := 1.0 / 101.0
	if e.Rel < wantRel-1e-12 || e.Rel > wantRel+1e-12 {
		t.Fatalf("rel %g, want %g", e.Rel, wantRel)
	}

	// 2% relative tolerance absorbs a 1% change (entry still reported).
	d = DiffSnapshots(diffSnapA(), b, DiffOptions{Rel: 0.02})
	if d.Breaches != 0 || len(d.Entries) != 1 {
		t.Fatalf("tolerant diff: %+v", d)
	}
	// An absolute floor above the delta also absorbs it.
	d = DiffSnapshots(diffSnapA(), b, DiffOptions{Abs: 1})
	if d.Breaches != 0 {
		t.Fatalf("abs-tolerant diff: %+v", d)
	}
	// Both thresholds exceeded -> breach.
	d = DiffSnapshots(diffSnapA(), b, DiffOptions{Rel: 0.005, Abs: 0.5})
	if d.Breaches != 1 {
		t.Fatalf("both-exceeded diff: %+v", d)
	}
}

// TestDiffMissingSeries: one-sided series are fully divergent breaches
// unless IgnoreMissing downgrades them.
func TestDiffMissingSeries(t *testing.T) {
	b := diffSnapA()
	delete(b.Counters, "netsim/pfc_pauses")
	b.Gauges["core/degraded"] = 1

	d := DiffSnapshots(diffSnapA(), b, DiffOptions{})
	if d.Breaches != 2 || len(d.Entries) != 2 {
		t.Fatalf("missing diff: %+v", d)
	}
	for _, e := range d.Entries {
		if e.Rel != 1 || !e.Breach {
			t.Fatalf("missing entry not fully divergent: %+v", e)
		}
		if e.PresentA && e.PresentB {
			t.Fatalf("entry claims both sides present: %+v", e)
		}
	}

	d = DiffSnapshots(diffSnapA(), b, DiffOptions{IgnoreMissing: true})
	if d.Breaches != 0 || len(d.Entries) != 2 {
		t.Fatalf("ignore-missing diff: %+v", d)
	}
}

// TestDiffOrdering: entries sort most-divergent first (rel, then abs,
// then key), so the report leads with the biggest regressions.
func TestDiffOrdering(t *testing.T) {
	a := Snapshot{Counters: map[string]float64{"x/small": 1000, "x/big": 10, "x/gone": 1}}
	b := Snapshot{Counters: map[string]float64{"x/small": 1001, "x/big": 20}}
	d := DiffSnapshots(a, b, DiffOptions{})
	want := []string{"x/gone", "x/big", "x/small"} // rel 1, 0.5, ~0.001
	if len(d.Entries) != len(want) {
		t.Fatalf("entries: %+v", d.Entries)
	}
	for i, k := range want {
		if d.Entries[i].Key != k {
			t.Fatalf("order %d = %s, want %s (%+v)", i, d.Entries[i].Key, k, d.Entries)
		}
	}
}
