// Package pfconly implements the PFC/RCM baseline from the OMNeT++
// RoCEv2 simulation line of work: losslessness comes from PFC alone,
// and the sender runs only a static rate-control module (RCM) — a fixed
// multiplicative cut per congestion notification and a fixed linear
// timer-driven recovery, with none of DCQCN's adaptive alpha state.
// It is the weakest transport in the zoo: the congestion reaction is
// blunt, so PFC pause storms do most of the throttling — exactly the
// regime where storage-side rate control has the most to recover.
//
// It implements the same reaction-point surface as dcqcn.RP / timely.RP
// (netsim's RateController), so the whole SRC stack runs unchanged on
// top of it.
package pfconly

import (
	"fmt"

	"srcsim/internal/obs/timeseries"
	"srcsim/internal/sim"
)

// Config holds the static RCM constants.
type Config struct {
	// LineRate is the NIC line rate in bits/s (default 40 Gbps).
	LineRate float64
	// MinRate is the rate floor (default 40 Mbps).
	MinRate float64
	// CutFactor is the fixed multiplicative cut per congestion signal
	// (default 0.5).
	CutFactor float64
	// RecoverEvery is the linear-recovery timer period (default 100 µs).
	RecoverEvery sim.Time
	// RecoverBps is the additive rate restored per period (default
	// 200 Mbps).
	RecoverBps float64
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.LineRate <= 0 {
		c.LineRate = 40e9
	}
	if c.MinRate <= 0 {
		c.MinRate = 40e6
	}
	if c.CutFactor <= 0 {
		c.CutFactor = 0.5
	}
	if c.RecoverEvery <= 0 {
		c.RecoverEvery = 100 * sim.Microsecond
	}
	if c.RecoverBps <= 0 {
		c.RecoverBps = 200e6
	}
	return c
}

// Validate reports inconsistent settings.
func (c Config) Validate() error {
	c = c.WithDefaults()
	if c.MinRate > c.LineRate {
		return fmt.Errorf("pfconly: MinRate %v exceeds LineRate %v", c.MinRate, c.LineRate)
	}
	if c.CutFactor >= 1 {
		return fmt.Errorf("pfconly: CutFactor %v outside (0,1)", c.CutFactor)
	}
	return nil
}

// RP is the static rate-control module: per-flow rate state with a
// fixed cut and a fixed linear recovery. It satisfies
// netsim.RateController.
type RP struct {
	cfg Config
	eng *sim.Engine

	// OnRate, if set, observes every rate change (old, new in bits/s).
	OnRate func(oldRate, newRate float64)

	rate float64

	recoverEv sim.Handle
	recoverFn func()
	active    bool

	// Counters.
	Signals       uint64
	RateDecreases uint64
	RateIncreases uint64
}

// NewRP returns a static RCM starting at line rate. The engine drives
// the linear-recovery timer.
func NewRP(eng *sim.Engine, cfg Config) *RP {
	cfg = cfg.WithDefaults()
	rp := &RP{cfg: cfg, eng: eng, rate: cfg.LineRate}
	rp.recoverFn = rp.recoverTick
	return rp
}

// Rate implements netsim.RateController.
func (rp *RP) Rate() float64 { return rp.rate }

// OnBytesSent implements netsim.RateController (no byte clock).
func (rp *RP) OnBytesSent(int) {}

// OnAck implements netsim.RateController (no RTT signal).
func (rp *RP) OnAck(sim.Time) {}

// NeedsAck implements netsim.RateController: the static RCM needs no
// per-packet acknowledgements.
func (rp *RP) NeedsAck() bool { return false }

// SetRateListener implements netsim.RateController.
func (rp *RP) SetRateListener(fn func(oldRate, newRate float64)) { rp.OnRate = fn }

// OnCongestionSignal implements netsim.RateController: the fixed cut.
func (rp *RP) OnCongestionSignal() {
	rp.Signals++
	rp.setRate(rp.rate * rp.cfg.CutFactor)
	rp.active = true
	if rp.recoverEv.Cancelled() {
		rp.recoverEv = rp.eng.After(rp.cfg.RecoverEvery, rp.recoverFn)
	}
}

// recoverTick restores one linear step, idling the timer once the flow
// is back at line rate.
func (rp *RP) recoverTick() {
	rp.setRate(rp.rate + rp.cfg.RecoverBps)
	if rp.rate >= rp.cfg.LineRate {
		rp.active = false
	}
	if rp.active {
		rp.recoverEv = rp.eng.After(rp.cfg.RecoverEvery, rp.recoverFn)
	}
}

func (rp *RP) setRate(newRate float64) {
	if newRate > rp.cfg.LineRate {
		newRate = rp.cfg.LineRate
	}
	if newRate < rp.cfg.MinRate {
		newRate = rp.cfg.MinRate
	}
	if newRate == rp.rate {
		return
	}
	old := rp.rate
	rp.rate = newRate
	if newRate < old {
		rp.RateDecreases++
	} else {
		rp.RateIncreases++
	}
	if rp.OnRate != nil {
		rp.OnRate(old, newRate)
	}
}

// SampleSeries is the reaction point's flight-recorder probe. Read-only.
func (rp *RP) SampleSeries(track, prefix string, emit timeseries.Emit) {
	emit(track, prefix+"_rate_gbps", timeseries.Gauge, rp.rate/1e9)
}
