package pfconly

import (
	"testing"

	"srcsim/internal/obs/timeseries"
	"srcsim/internal/sim"
)

func TestFixedCutAndLinearRecovery(t *testing.T) {
	eng := sim.NewEngine()
	rp := NewRP(eng, Config{LineRate: 10e9})
	rp.OnCongestionSignal()
	if rp.Rate() != 5e9 {
		t.Fatalf("rate %v after one signal, want the fixed half cut", rp.Rate())
	}
	// One recovery period restores exactly RecoverBps.
	eng.Run(eng.Now() + rp.cfg.RecoverEvery)
	if rp.Rate() != 5e9+rp.cfg.RecoverBps {
		t.Fatalf("rate %v after one period, want %v", rp.Rate(), 5e9+rp.cfg.RecoverBps)
	}
	// Linear recovery reaches line rate and the timer idles.
	eng.RunUntilIdle()
	if rp.Rate() != rp.cfg.LineRate {
		t.Fatalf("rate %v did not recover to line rate", rp.Rate())
	}
	if rp.RateDecreases != 1 || rp.RateIncreases == 0 {
		t.Fatalf("counters: %d decreases, %d increases", rp.RateDecreases, rp.RateIncreases)
	}
}

func TestSignalsFloorAtMinRate(t *testing.T) {
	eng := sim.NewEngine()
	rp := NewRP(eng, Config{LineRate: 10e9})
	prev := rp.Rate()
	for i := 0; i < 100; i++ {
		rp.OnCongestionSignal()
		if rp.Rate() > prev {
			t.Fatalf("signal %d increased rate %v -> %v", i, prev, rp.Rate())
		}
		prev = rp.Rate()
	}
	if rp.Rate() != rp.cfg.MinRate {
		t.Fatalf("rate %v did not floor at MinRate %v", rp.Rate(), rp.cfg.MinRate)
	}
	if rp.Signals != 100 {
		t.Fatalf("signal counter %d, want 100", rp.Signals)
	}
}

func TestListenerFiresOnEveryChange(t *testing.T) {
	eng := sim.NewEngine()
	rp := NewRP(eng, Config{LineRate: 10e9})
	last := rp.Rate()
	rp.SetRateListener(func(old, new float64) {
		if old == new {
			t.Fatalf("listener fired with old == new == %v", old)
		}
		if old != last {
			t.Fatalf("listener old %v does not chain from last reported %v", old, last)
		}
		last = new
	})
	rp.OnCongestionSignal()
	eng.RunUntilIdle()
	if rp.Rate() != last || last != rp.cfg.LineRate {
		t.Fatalf("rate %v / last reported %v, want line rate", rp.Rate(), last)
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	for name, cfg := range map[string]Config{
		"min above line": {LineRate: 1e9, MinRate: 2e9},
		"cut above one":  {CutFactor: 1},
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

func TestSampleSeriesAndSurface(t *testing.T) {
	eng := sim.NewEngine()
	rp := NewRP(eng, Config{LineRate: 10e9})
	if rp.NeedsAck() {
		t.Fatal("the static RCM needs no per-packet acks")
	}
	rp.OnBytesSent(4096)
	rp.OnAck(10 * sim.Microsecond)
	got := map[string]float64{}
	rp.SampleSeries("net", "flow0", func(track, name string, k timeseries.Kind, v float64) {
		got[name] = v
	})
	if got["flow0_rate_gbps"] != 10 {
		t.Fatalf("rate series %v, want 10", got["flow0_rate_gbps"])
	}
}
