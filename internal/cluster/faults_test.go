package cluster

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"srcsim/internal/faults"
	"srcsim/internal/nvmeof"
	"srcsim/internal/obs"
	"srcsim/internal/sim"
)

// TestEmptyScheduleMatchesGolden is the fault-layer determinism
// regression: the seeded congestion run must stay byte-identical to the
// pre-fault-injection golden summary — with no schedule at all, and
// with an empty schedule plus every recovery mechanism armed (timers
// that never fire must not perturb the run).
func TestEmptyScheduleMatchesGolden(t *testing.T) {
	golden, err := os.ReadFile("testdata/summary_golden.json")
	if err != nil {
		t.Fatal(err)
	}
	plain := runSummaryJSON(t, nil)
	if !bytes.Equal(plain, golden) {
		t.Fatalf("fault-free run diverged from pre-PR golden:\ngolden: %s\ngot:    %s", golden, plain)
	}

	armed := runSummaryJSON(t, func(s *Spec) {
		s.Faults = &faults.Schedule{}
		// Long enough that no timer fires within the ~47 ms run.
		s.Retry = nvmeof.RetryPolicy{Timeout: 300 * sim.Millisecond}
		s.Net.PFCWatchdog = 50 * sim.Millisecond
	})
	if !bytes.Equal(armed, golden) {
		t.Fatalf("armed-but-idle recovery perturbed the run:\ngolden: %s\ngot:    %s", golden, armed)
	}
}

// TestSRCDegradationAndRecovery stalls the SRC telemetry feed mid-run:
// the controllers must fall back to the conservative static weight
// while the monitor is blind and recover once commands flow again —
// asserted through the obs counters (the acceptance criterion).
func TestSRCDegradationAndRecovery(t *testing.T) {
	reg := obs.NewRegistry()
	out := runSummaryJSON(t, func(s *Spec) {
		s.Metrics = reg
		s.SRC.StaleAfter = sim.Millisecond
		s.SRC.FallbackWeight = 8
		// The trace's arrivals span ~10 ms; stall early so telemetry (and
		// with it, recovery) resumes while traffic is still flowing.
		s.Faults = &faults.Schedule{Events: []faults.Event{
			{At: 2 * sim.Millisecond, Kind: faults.TelemetryStall, Where: "target:0",
				Duration: 4 * sim.Millisecond},
			{At: 2 * sim.Millisecond, Kind: faults.TelemetryStall, Where: "target:1",
				Duration: 4 * sim.Millisecond},
		}}
	})

	snap := reg.Snapshot()
	sum := func(prefix string) (v float64) {
		for k, c := range snap.Counters {
			if strings.HasPrefix(k, prefix) {
				v += c
			}
		}
		return v
	}
	if got := sum("core/degraded_entries"); got < 1 {
		t.Fatalf("controller never entered degraded mode (degraded_entries=%g)", got)
	}
	if got := sum("core/recoveries"); got < 1 {
		t.Fatalf("controller never recovered from degraded mode (recoveries=%g)", got)
	}

	var summary struct {
		FaultsInjected uint64 `json:"faults_injected"`
		Completed      int    `json:"completed"`
		Submitted      int    `json:"submitted"`
	}
	if err := json.Unmarshal(out, &summary); err != nil {
		t.Fatal(err)
	}
	if summary.FaultsInjected != 4 { // 2 stalls x (start + end)
		t.Fatalf("faults_injected = %d, want 4", summary.FaultsInjected)
	}
	if summary.Completed != summary.Submitted {
		t.Fatalf("telemetry stall lost I/O: completed %d != submitted %d",
			summary.Completed, summary.Submitted)
	}
}
