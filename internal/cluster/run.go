package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"srcsim/internal/atomicio"
	"srcsim/internal/core"
	"srcsim/internal/ctrlplane"
	"srcsim/internal/guard"
	"srcsim/internal/obs"
	"srcsim/internal/obs/timeseries"
	"srcsim/internal/sim"
	"srcsim/internal/stats"
	"srcsim/internal/trace"
)

// Assign routes a request to (initiator, target) indexes. The default
// policy stripes requests round-robin over both sets, which splits the
// workload evenly across targets as in the paper's experiments.
type Assign func(req trace.Request, idx int, initiators, targets int) (int, int)

// DefaultAssign is the round-robin policy.
func DefaultAssign(req trace.Request, idx int, initiators, targets int) (int, int) {
	return idx % initiators, idx % targets
}

// Result summarises one run.
type Result struct {
	Mode     Mode
	Duration sim.Time

	// Per-bucket series in Gbps (reads measured at initiators, writes at
	// targets) and raw pause counts per bucket.
	ReadGbps  []float64
	WriteGbps []float64
	Pauses    []float64

	// Steady-state aggregates (Gbps) over the active window: the trace's
	// arrival span with the first and last TrimFrac removed (Sec. IV-B's
	// warm-up/wrap-up trimming). The post-arrival drain tail is excluded
	// so runs of different lengths compare like the paper's timelines.
	MeanReadGbps   float64
	MeanWriteGbps  float64
	AggregatedGbps float64

	Completed, Submitted int
	// Failed counts requests abandoned after exhausting their retry
	// budget; the accounting invariant under faults is
	// Completed + Failed == Submitted.
	Failed int
	// Truncated marks a run cut short by graceful cancellation (a
	// guard.Stopper fired or the wall budget ran out) rather than by
	// completing its workload; the metric and fault ledgers cover the
	// portion that ran. TruncateReason says why.
	Truncated      bool
	TruncateReason string
	TotalCNPs      uint64
	TotalECNMarks  uint64
	TotalPFCPauses uint64

	// Fault-injection and recovery counters (all zero on fault-free
	// runs).
	FaultsInjected   uint64
	Retries          uint64
	Timeouts         uint64
	StaleResponses   uint64
	DupsDropped      uint64
	DroppedPackets   uint64
	CorruptedPackets uint64
	RouteDrops       uint64
	WatchdogTrips    uint64
	ForcedPauses     uint64
	LinkDowns        uint64

	// End-to-end request latency percentiles (submission at the
	// initiator to completion at the initiator), in milliseconds.
	ReadLatencyP50Ms  float64
	ReadLatencyP99Ms  float64
	WriteLatencyP50Ms float64
	WriteLatencyP99Ms float64

	// WeightEvents merges all SRC adjustments (empty unless DCQCN-SRC).
	WeightEvents []core.AdjustEvent

	// Adaptive-ladder ledger (empty unless Spec.SRC.Adaptive is armed):
	// every per-target ladder transition merged in time order, the
	// retraining counters summed across targets, and the run's
	// time-to-recover — from the first severe descent (ModelFree or
	// Static: the model is out of the loop) until every target that left
	// Predictive is back on it (AdaptRecovered false when the run ends
	// still degraded).
	Ladder         []LadderStep
	Retrains       uint64
	Promotions     uint64
	Rejections     uint64
	AdaptRecovered bool
	AdaptRecoverMs float64

	// Ctrl is the in-band control plane's message/liveness ledger; nil
	// unless Spec.Ctrl was enabled.
	Ctrl *ctrlplane.Ledger

	// Metrics is the registry snapshot taken after the end-of-run flush;
	// nil unless Spec.Metrics was set.
	Metrics *obs.Snapshot
}

// LadderStep is one adaptive-ladder transition in the run ledger,
// timestamped in run milliseconds.
type LadderStep struct {
	Target int     `json:"target"`
	AtMs   float64 `json:"at_ms"`
	From   string  `json:"from"`
	To     string  `json:"to"`
	Reason string  `json:"reason"`
}

// Run drives the trace through the cluster and collects metrics. It can
// be called once per cluster.
func (c *Cluster) Run(tr *trace.Trace, assign Assign) (*Result, error) {
	if tr.Len() == 0 {
		return nil, fmt.Errorf("cluster: empty trace")
	}
	if assign == nil {
		assign = DefaultAssign
	}
	spec := c.Spec
	c.total = tr.Len()
	submitTimes := make(map[uint64]sim.Time, tr.Len())
	var readLats, writeLats []float64
	for i := range c.Initiators {
		ini := c.Initiators[i]
		prev := ini.OnComplete
		ini.OnComplete = func(req trace.Request, readData bool, at sim.Time) {
			if t0, ok := submitTimes[req.ID]; ok {
				lat := (at - t0).Millis()
				if readData {
					readLats = append(readLats, lat)
				} else {
					writeLats = append(writeLats, lat)
				}
			}
			delete(c.flight, req.ID)
			prev(req, readData, at)
		}
		if prevFail := ini.OnFailed; prevFail != nil {
			ini.OnFailed = func(req trace.Request, at sim.Time) {
				delete(c.flight, req.ID)
				prevFail(req, at)
			}
		}
	}

	// MQSim-style preconditioning: install the workload footprint's
	// mapping entries so runs measure steady-state behaviour.
	var span uint64
	for _, r := range tr.Requests {
		if r.End() > span {
			span = r.End()
		}
	}
	for _, t := range c.Targets {
		for _, dev := range t.Devs {
			dev.Precondition(span)
		}
	}

	for idx, r := range tr.Requests {
		r := r
		iniIdx, tgtIdx := assign(r, idx, len(c.Initiators), len(c.Targets))
		ini := c.Initiators[iniIdx]
		tgt := c.Targets[tgtIdx]
		r.Initiator, r.Target = iniIdx, tgtIdx
		c.Eng.Schedule(r.Arrival, func() {
			submitTimes[r.ID] = c.Eng.Now()
			if c.flight != nil {
				c.flight[r.ID] = flightRec{req: r, submittedAt: c.Eng.Now()}
			}
			ini.Submit(r, tgt.T.Node)
		})
	}

	// Arm the governance hooks (no-op and event-free when Spec.Guard is
	// the zero config). Must precede the first event so the in-flight
	// ledger exists before any submission fires.
	unguard := c.installGuard()

	// In-band control plane: telemetry flushes, heartbeats, lease checks
	// and the standby watchdog run as ordinary engine tickers. Started
	// before the first submission so leases are live from t=0.
	stopPlane := func() {}
	if c.plane != nil {
		stopPlane = c.plane.Start()
	}

	// Flight recorder: read-only per-layer probes sampled on the sim
	// clock, plus the registry sweep. Started before the first model
	// event so the t=0 state is in the timeline.
	stopRecorder := func() {}
	if spec.Recorder != nil {
		stopRecorder = spec.Recorder.Start(c.Eng, spec.Metrics, c.recorderProbe())
	}
	// Live-inspector publishing: copies of the latest snapshot and
	// recorder window, handed to the board for the HTTP goroutine. The
	// engine thread only ever writes copies, never shares live state.
	publish := func() {
		spec.Board.PublishSnapshot(spec.Metrics.Snapshot())
		if spec.Recorder != nil {
			spec.Board.PublishSeries(spec.Recorder.Dump(2048))
		}
	}
	stopPublish := func() {}
	if spec.Board != nil {
		every := spec.PublishEvery
		if every <= 0 {
			every = 10 * sim.Millisecond
		}
		stopPublish = c.Eng.Ticker(every, publish)
	}

	// Pause-number sampling (Fig. 8): delta of CNPs received by targets
	// per metric bucket.
	var lastCNPs uint64
	stopPause := c.Eng.Ticker(spec.MetricBucket, func() {
		var cur uint64
		for _, t := range c.Targets {
			cur += t.T.Node.NIC.CNPsReceived
		}
		c.pauses.Add(c.Eng.Now()-1, float64(cur-lastCNPs))
		lastCNPs = cur
	})

	// Adaptive observation feed: every ObserveEvery, hand each target's
	// measured read/write throughput over the elapsed interval to its
	// controller (training samples + shadow-prediction scoring + ladder
	// transitions + due retrains). Absent entirely on non-adaptive runs,
	// so their event sequence is unchanged.
	stopObserve := func() {}
	if c.adaptReadBits != nil {
		every := c.Targets[0].Ctl.Cfg.Adaptive.ObserveEvery
		secs := float64(every) / 1e9
		arrivalEnd := tr.Duration()
		lastR := make([]float64, len(c.Targets))
		lastW := make([]float64, len(c.Targets))
		stopObserve = c.Eng.Ticker(every, func() {
			now := c.Eng.Now()
			if now >= arrivalEnd || c.completed+c.failed >= c.total {
				// The arrival span has ended (or every request is already
				// accounted): the remaining drain carries no signal about
				// system health — throughput winds down to zero and
				// telemetry goes legitimately silent as the finite trace
				// runs out, which is exactly the signature of degradation.
				// Freeze the ladder instead of thrashing it against that
				// phantom. This mirrors the measurement methodology: all
				// summary metrics cover the (trimmed) arrival span too.
				for i := range c.Targets {
					if ctl := c.activeCtl(i); ctl != nil {
						ctl.FreezeAdaptation()
					}
				}
				return
			}
			for i := range c.Targets {
				dr := c.adaptReadBits[i] - lastR[i]
				dw := c.adaptWriteBits[i] - lastW[i]
				lastR[i], lastW[i] = c.adaptReadBits[i], c.adaptWriteBits[i]
				// Observations address the live controller incarnation; none
				// while the controller process is down (crash, pre-failover).
				if ctl := c.activeCtl(i); ctl != nil {
					ctl.Observe(now, dr/secs, dw/secs)
				}
			}
		})
	}

	// Periodic progress line (stderr by convention). Pure reporting: it
	// reads counters but never mutates sim state, so it cannot perturb
	// determinism of the run itself.
	stopProgress := func() {}
	if spec.Progress != nil {
		every := spec.ProgressEvery
		if every <= 0 {
			every = 100 * sim.Millisecond
		}
		stopProgress = c.Eng.Ticker(every, func() {
			fmt.Fprintf(spec.Progress,
				"srcsim: [%s] t=%.0fms %d/%d done events=%d heap=%d cnps=%d\n",
				spec.Mode, c.Eng.Now().Millis(), c.completed, c.total,
				c.Eng.Processed, c.Eng.HeapHighWater(), c.Net.CNPsSent)
		})
	}

	horizon := spec.Horizon
	if horizon <= 0 {
		horizon = 3*tr.Duration() + 200*sim.Millisecond
	}
	if st := spec.Guard.Stop; st != nil && st.Stopped() {
		// Cancellation fired before this run started (e.g. a SIGINT during
		// an earlier CompareModes leg): drain immediately with an empty
		// partial result instead of simulating work nobody will read.
		c.truncated = true
		c.truncateReason = st.Reason()
	} else {
		c.Eng.Run(horizon)
	}
	stopPause()
	stopObserve()
	stopProgress()
	stopRecorder() // flushes one final sample at drain time
	stopPublish()
	stopPlane()
	unguard()
	// Always audit once at drain: a leak that emerged after the last
	// periodic check still fails the run.
	if spec.Guard.Audit && c.guardErr == nil {
		if vs := c.auditAll(); len(vs) > 0 {
			c.guardErr = &guard.ViolationError{At: c.Eng.Now(), Violations: vs}
		}
	}
	if c.guardErr != nil {
		return nil, c.guardErr
	}
	duration := c.Eng.Now()

	res := &Result{
		Mode:           spec.Mode,
		Duration:       duration,
		Completed:      c.completed,
		Failed:         c.failed,
		Submitted:      tr.Len(),
		Truncated:      c.truncated,
		TruncateReason: c.truncateReason,
	}
	for _, ini := range c.Initiators {
		res.Retries += ini.Retries
		res.Timeouts += ini.Timeouts
		res.StaleResponses += ini.StaleResponses
	}
	for _, t := range c.Targets {
		res.DupsDropped += t.T.DupsDropped
	}
	res.DroppedPackets = c.Net.DroppedPackets
	res.CorruptedPackets = c.Net.CorruptedPackets
	res.RouteDrops = c.Net.RouteDrops
	res.WatchdogTrips = c.Net.WatchdogTrips
	res.ForcedPauses = c.Net.ForcedPauses
	res.LinkDowns = c.Net.LinkDowns
	if c.Injector != nil {
		res.FaultsInjected = c.Injector.Injected
	}
	toGbps := func(ts *stats.TimeSeries) []float64 {
		rates := ts.Rate()
		out := make([]float64, len(rates))
		for i, r := range rates {
			out[i] = r / 1e9
		}
		return out
	}
	res.ReadGbps = toGbps(c.readBits)
	res.WriteGbps = toGbps(c.writeBits)
	res.Pauses = c.pauses.Sums()

	// Align series lengths for aggregate math.
	n := len(res.ReadGbps)
	if len(res.WriteGbps) > n {
		n = len(res.WriteGbps)
	}
	pad := func(xs []float64) []float64 {
		for len(xs) < n {
			xs = append(xs, 0)
		}
		return xs
	}
	res.ReadGbps = pad(res.ReadGbps)
	res.WriteGbps = pad(res.WriteGbps)

	// Active measurement window: the trimmed arrival span.
	lo := int(sim.Time(float64(tr.Duration())*spec.TrimFrac) / spec.MetricBucket)
	hi := int(sim.Time(float64(tr.Duration())*(1-spec.TrimFrac)) / spec.MetricBucket)
	if hi > n {
		hi = n
	}
	window := func(xs []float64) []float64 {
		if lo >= hi || lo >= len(xs) {
			return xs
		}
		return xs[lo:hi]
	}
	res.MeanReadGbps = stats.Mean(window(res.ReadGbps))
	res.MeanWriteGbps = stats.Mean(window(res.WriteGbps))
	agg := make([]float64, n)
	for i := range agg {
		agg[i] = res.ReadGbps[i] + res.WriteGbps[i]
	}
	res.AggregatedGbps = stats.Mean(window(agg))

	res.ReadLatencyP50Ms = stats.Percentile(readLats, 50)
	res.ReadLatencyP99Ms = stats.Percentile(readLats, 99)
	res.WriteLatencyP50Ms = stats.Percentile(writeLats, 50)
	res.WriteLatencyP99Ms = stats.Percentile(writeLats, 99)

	for tIdx, t := range c.Targets {
		res.TotalCNPs += t.T.Node.NIC.CNPsReceived
		// Under the control plane a target may have seen several controller
		// incarnations (failover/restart re-seed fresh ones); merge every
		// incarnation's ledgers in succession order.
		ctls := []*core.Controller{t.Ctl}
		if c.plane != nil {
			ctls = c.plane.Controllers(tIdx)
		}
		for _, ctl := range ctls {
			if ctl == nil {
				continue
			}
			res.WeightEvents = append(res.WeightEvents, ctl.Events...)
			for _, lt := range ctl.Ladder() {
				res.Ladder = append(res.Ladder, LadderStep{
					Target: tIdx, AtMs: lt.At.Millis(),
					From: lt.From.String(), To: lt.To.String(), Reason: lt.Reason,
				})
			}
			rt, pm, rj := ctl.AdaptStats()
			res.Retrains += rt
			res.Promotions += pm
			res.Rejections += rj
		}
	}
	if c.plane != nil {
		led := c.plane.LedgerSnapshot()
		res.Ctrl = &led
	}
	// Time order; targets appended in index order make the sort's ties
	// deterministic under SliceStable.
	sort.SliceStable(res.Ladder, func(i, j int) bool {
		return res.Ladder[i].AtMs < res.Ladder[j].AtMs
	})
	res.AdaptRecovered, res.AdaptRecoverMs = ladderRecovery(res.Ladder)
	res.TotalECNMarks = c.Net.ECNMarks
	res.TotalPFCPauses = c.Net.PFCPauses

	if reg := spec.Metrics; reg != nil {
		c.flushMetrics(reg)
		snap := reg.Snapshot()
		res.Metrics = &snap
	}
	if spec.Board != nil {
		// Final publish after the end-of-run metric flush, so the
		// inspector's last word matches the written artifacts.
		publish()
	}
	return res, nil
}

// ladderRecovery walks the merged ladder ledger and returns the run's
// time-to-recover: the span from the first severe descent — ModelFree
// or Static, the rungs where the model is out of the decision loop —
// until the first moment every target that left Predictive is back on
// it. Predictive↔Retraining churn alone is normal adaptive operation
// (the model still steers) and does not start the clock. Later
// re-descents do not erase a completed recovery — the metric answers
// "how long did the first disruption take to absorb".
func ladderRecovery(steps []LadderStep) (recovered bool, ms float64) {
	severe := map[string]bool{
		core.LadderModelFree.String(): true,
		core.LadderStatic.String():    true,
	}
	non := make(map[int]bool)
	var firstSevere float64
	haveSevere := false
	for _, st := range steps {
		if st.To == core.LadderPredictive.String() {
			delete(non, st.Target)
			if haveSevere && len(non) == 0 && !recovered {
				recovered = true
				ms = st.AtMs - firstSevere
			}
			continue
		}
		non[st.Target] = true
		if severe[st.To] && !haveSevere {
			firstSevere = st.AtMs
			haveSevere = true
		}
	}
	return recovered, ms
}

// recorderProbe builds the cluster's pull-probe for the flight
// recorder: every layer's congestion state under mode-prefixed tracks.
// Track names are precomputed so the per-sample path does not format
// strings.
func (c *Cluster) recorderProbe() timeseries.Sampler {
	mode := c.Spec.Mode.String()
	netTrack := mode + "/net"
	clusterTrack := mode + "/cluster"
	tgtTracks := make([]string, len(c.Targets))
	for i := range c.Targets {
		tgtTracks[i] = fmt.Sprintf("%s/t%d", mode, i)
	}
	iniTracks := make([]string, len(c.Initiators))
	for i := range c.Initiators {
		iniTracks[i] = fmt.Sprintf("%s/i%d", mode, i)
	}
	ctrlTrack := mode + "/ctrl"
	return func(now sim.Time, emit timeseries.Emit) {
		c.Net.SampleSeries(netTrack, emit)
		if c.plane != nil {
			c.plane.SampleSeries(now, ctrlTrack, emit)
		}
		for i, tn := range c.Targets {
			tn.T.SampleSeries(tgtTracks[i], emit)
			if tn.Ctl != nil {
				tn.Ctl.SampleSeries(tgtTracks[i], emit)
			}
		}
		for i, ini := range c.Initiators {
			ini.SampleSeries(iniTracks[i], emit)
		}
		emit(clusterTrack, "completed", timeseries.Counter, float64(c.completed))
		emit(clusterTrack, "failed", timeseries.Counter, float64(c.failed))
		emit(clusterTrack, "read_bits", timeseries.Counter, c.readBits.Total())
		emit(clusterTrack, "write_bits", timeseries.Counter, c.writeBits.Total())
	}
}

// flushMetrics folds end-of-run component counters and the engine
// profile into the registry (live hot-path series were already fed
// during the run).
func (c *Cluster) flushMetrics(reg *obs.Registry) {
	modeL := obs.L("mode", c.Spec.Mode.String())
	for _, t := range c.Targets {
		for _, dev := range t.Devs {
			dev.CollectMetrics(reg, modeL)
		}
		t.T.CollectMetrics(reg, modeL)
	}
	for _, ini := range c.Initiators {
		ini.CollectMetrics(reg, modeL)
	}
	reg.Counter("netsim", "dropped_packets", modeL).Add(float64(c.Net.DroppedPackets))
	reg.Counter("netsim", "corrupted_packets", modeL).Add(float64(c.Net.CorruptedPackets))
	reg.Counter("netsim", "route_drops", modeL).Add(float64(c.Net.RouteDrops))
	reg.Counter("netsim", "link_downs", modeL).Add(float64(c.Net.LinkDowns))
	reg.Counter("netsim", "forced_pauses", modeL).Add(float64(c.Net.ForcedPauses))
	c.Injector.CollectMetrics(reg, modeL)
	var sent, recvd, delivered uint64
	for _, ini := range c.Initiators {
		sent += ini.Node.NIC.BytesSent
		recvd += ini.Node.NIC.BytesReceived
		delivered += ini.Node.NIC.MsgsDelivered
	}
	for _, t := range c.Targets {
		sent += t.T.Node.NIC.BytesSent
		recvd += t.T.Node.NIC.BytesReceived
		delivered += t.T.Node.NIC.MsgsDelivered
	}
	reg.Counter("netsim", "nic_bytes_sent", modeL).Add(float64(sent))
	reg.Counter("netsim", "nic_bytes_received", modeL).Add(float64(recvd))
	reg.Counter("netsim", "nic_msgs_delivered", modeL).Add(float64(delivered))

	ps := c.Eng.ProfileStats()
	reg.Counter("sim", "events_processed", modeL).Add(float64(ps.EventsProcessed))
	reg.Gauge("sim", "heap_high_water", modeL).SetMax(float64(ps.HeapHighWater))
	reg.Gauge("sim", "wall_per_sim_second", modeL).Set(ps.WallPerSimSecond)
	// Per-callback-site timings, bounded to the top sites by wall time.
	sites := ps.Sites
	if len(sites) > 10 {
		sites = sites[:10]
	}
	for _, s := range sites {
		l := []obs.Label{modeL, obs.L("site", s.Name)}
		reg.Counter("sim", "site_calls", l...).Add(float64(s.Count))
		reg.Gauge("sim", "site_wall_ms", l...).Set(s.Wall.Seconds() * 1e3)
	}
}

// Summary is the machine-readable digest of a Result.
type Summary struct {
	Mode           string  `json:"mode"`
	DurationMs     float64 `json:"duration_ms"`
	ReadGbps       float64 `json:"read_gbps"`
	WriteGbps      float64 `json:"write_gbps"`
	AggregatedGbps float64 `json:"aggregated_gbps"`
	Completed      int     `json:"completed"`
	Submitted      int     `json:"submitted"`
	CNPs           uint64  `json:"cnps"`
	ECNMarks       uint64  `json:"ecn_marks"`
	PFCPauses      uint64  `json:"pfc_pauses"`
	ReadLatP50Ms   float64 `json:"read_latency_p50_ms"`
	ReadLatP99Ms   float64 `json:"read_latency_p99_ms"`
	WriteLatP50Ms  float64 `json:"write_latency_p50_ms"`
	WriteLatP99Ms  float64 `json:"write_latency_p99_ms"`
	WeightEvents   int     `json:"weight_events"`

	// Truncation markers, omitted on complete runs so their JSON shape
	// is unchanged. A truncated summary is still fully valid JSON with
	// every ledger intact — it just covers a shorter run.
	Truncated      bool   `json:"truncated,omitempty"`
	TruncateReason string `json:"truncate_reason,omitempty"`

	// Fault/recovery counters, omitted when zero so fault-free runs keep
	// their historical JSON shape byte-for-byte.
	Failed           int    `json:"failed,omitempty"`
	FaultsInjected   uint64 `json:"faults_injected,omitempty"`
	Retries          uint64 `json:"retries,omitempty"`
	Timeouts         uint64 `json:"timeouts,omitempty"`
	StaleResponses   uint64 `json:"stale_responses,omitempty"`
	DupsDropped      uint64 `json:"dups_dropped,omitempty"`
	DroppedPackets   uint64 `json:"dropped_packets,omitempty"`
	CorruptedPackets uint64 `json:"corrupted_packets,omitempty"`
	RouteDrops       uint64 `json:"route_drops,omitempty"`
	WatchdogTrips    uint64 `json:"watchdog_trips,omitempty"`
	ForcedPauses     uint64 `json:"forced_pauses,omitempty"`
	LinkDowns        uint64 `json:"link_downs,omitempty"`

	// Adaptive-ladder ledger, omitted entirely (empty/zero) when
	// Spec.SRC.Adaptive is off so non-adaptive summaries keep their
	// historical JSON shape byte-for-byte.
	Ladder         []LadderStep `json:"ladder,omitempty"`
	Retrains       uint64       `json:"adapt_retrains,omitempty"`
	Promotions     uint64       `json:"adapt_promotions,omitempty"`
	Rejections     uint64       `json:"adapt_rejections,omitempty"`
	AdaptRecovered bool         `json:"adapt_recovered,omitempty"`
	AdaptRecoverMs float64      `json:"adapt_recover_ms,omitempty"`

	// Ctrl is the in-band control plane's ledger, omitted entirely when
	// Spec.Ctrl is off so plane-less summaries keep their historical JSON
	// shape byte-for-byte.
	Ctrl *ctrlplane.Ledger `json:"ctrl,omitempty"`

	// Metrics is present only when the run had a registry attached, so
	// uninstrumented runs keep their historical JSON shape byte-for-byte.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// Summary digests the result for JSON output.
func (r *Result) Summary() Summary {
	return Summary{
		Mode:           r.Mode.String(),
		DurationMs:     r.Duration.Millis(),
		ReadGbps:       r.MeanReadGbps,
		WriteGbps:      r.MeanWriteGbps,
		AggregatedGbps: r.AggregatedGbps,
		Completed:      r.Completed,
		Submitted:      r.Submitted,
		CNPs:           r.TotalCNPs,
		ECNMarks:       r.TotalECNMarks,
		PFCPauses:      r.TotalPFCPauses,
		ReadLatP50Ms:   r.ReadLatencyP50Ms,
		ReadLatP99Ms:   r.ReadLatencyP99Ms,
		WriteLatP50Ms:  r.WriteLatencyP50Ms,
		WriteLatP99Ms:  r.WriteLatencyP99Ms,
		WeightEvents:   len(r.WeightEvents),

		Truncated:      r.Truncated,
		TruncateReason: r.TruncateReason,

		Failed:           r.Failed,
		FaultsInjected:   r.FaultsInjected,
		Retries:          r.Retries,
		Timeouts:         r.Timeouts,
		StaleResponses:   r.StaleResponses,
		DupsDropped:      r.DupsDropped,
		DroppedPackets:   r.DroppedPackets,
		CorruptedPackets: r.CorruptedPackets,
		RouteDrops:       r.RouteDrops,
		WatchdogTrips:    r.WatchdogTrips,
		ForcedPauses:     r.ForcedPauses,
		LinkDowns:        r.LinkDowns,

		Ladder:         r.Ladder,
		Retrains:       r.Retrains,
		Promotions:     r.Promotions,
		Rejections:     r.Rejections,
		AdaptRecovered: r.AdaptRecovered,
		AdaptRecoverMs: r.AdaptRecoverMs,

		Ctrl: r.Ctrl,

		Metrics: r.Metrics,
	}
}

// Digest is the deterministic machine-readable core of a Result: the
// summary plus the raw per-bucket series, which catch divergence the
// aggregated digest would average away. The metrics snapshot is
// excluded — it carries wall-clock profiling series, so it is reported
// beside the digest (not inside it) by callers that need byte-stable
// artifacts: the determinism matrix and the sweep orchestrator both
// compare digests byte for byte.
type Digest struct {
	Summary   Summary   `json:"summary"`
	ReadGbps  []float64 `json:"read_gbps_series"`
	WriteGbps []float64 `json:"write_gbps_series"`
	Pauses    []float64 `json:"pauses_series"`
}

// Digest extracts the deterministic digest of the result.
func (r *Result) Digest() Digest {
	s := r.Summary()
	s.Metrics = nil
	return Digest{
		Summary:   s,
		ReadGbps:  r.ReadGbps,
		WriteGbps: r.WriteGbps,
		Pauses:    r.Pauses,
	}
}

// WriteJSON writes the result summary as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Summary())
}

// WriteJSONFile writes the summary to path crash-safely (temp file +
// atomic rename): an interrupt mid-write can never leave a truncated
// JSON artifact at the destination.
func (r *Result) WriteJSONFile(path string) error {
	return atomicio.WriteFile(path, r.WriteJSON)
}

// CompareModes runs the same trace under DCQCN-only and DCQCN-SRC
// cluster specs (identical otherwise) and returns both results — the
// paper's standard A/B protocol (Sec. IV-B). Optional mods run on each
// finalized spec (mode already set), letting callers attach
// observability or progress output to both runs without changing the
// experiment.
func CompareModes(spec Spec, tpm *core.TPM, tr *trace.Trace, assign Assign, mods ...func(*Spec)) (baseline, src *Result, err error) {
	b := spec
	b.Mode = DCQCNOnly
	for _, m := range mods {
		m(&b)
	}
	cb, err := New(b)
	if err != nil {
		return nil, nil, err
	}
	if baseline, err = cb.Run(tr, assign); err != nil {
		return nil, nil, err
	}
	s := spec
	s.Mode = DCQCNSRC
	s.TPM = tpm
	for _, m := range mods {
		m(&s)
	}
	cs, err := New(s)
	if err != nil {
		return nil, nil, err
	}
	if src, err = cs.Run(tr, assign); err != nil {
		return nil, nil, err
	}
	return baseline, src, nil
}
