package cluster

import (
	"testing"

	"srcsim/internal/netsim"
	"srcsim/internal/sim"
	"srcsim/internal/trace"
)

// TestTXQBackpressureAblation verifies the paper's Sec. II-B degradation
// mechanism is really what SRC exploits: with the TXQ/CQ backpressure
// disabled (infinite TXQ), the baseline's writes no longer collapse under
// read congestion, so the gap SRC closes mostly disappears.
func TestTXQBackpressureAblation(t *testing.T) {
	tr := vdiTrace(t, 1200)

	run := func(txqCap int64) *Result {
		spec := congestionSpec()
		spec.TXQCap = txqCap
		c, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	withBackpressure := run(0)     // default 1 MiB cap
	withoutBackpressure := run(-1) // unbounded TXQ

	// Without the CQ bottleneck the device never stalls, so baseline
	// writes flow at device speed.
	if withoutBackpressure.MeanWriteGbps <= withBackpressure.MeanWriteGbps {
		t.Fatalf("unbounded TXQ writes %.2f should beat bounded %.2f",
			withoutBackpressure.MeanWriteGbps, withBackpressure.MeanWriteGbps)
	}
}

// TestStaticSSQSweep is the ablation DESIGN.md calls out: fixed weight
// ratios without the dynamic controller. A static w raises write
// throughput but holds the read cut even when the network is not
// congested, so dynamic SRC — which releases the weights on retrieval
// events — beats any of the static settings on aggregate. This is the
// case for Alg. 1 over an intuitive static prioritisation.
func TestStaticSSQSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("three full static-weight runs; skipped with -short")
	}
	tr := vdiTrace(t, 1200)
	aggs := map[int]float64{}
	writes := map[int]float64{}
	for _, w := range []int{1, 3, 16} {
		spec := congestionSpec()
		spec.Mode = SSQStatic
		spec.StaticWeight = w
		c, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		aggs[w] = res.AggregatedGbps
		writes[w] = res.MeanWriteGbps
	}
	// Raising w must raise write throughput on this write-starved setup.
	if writes[3] <= writes[1] {
		t.Fatalf("static w=3 writes %.2f should beat w=1 %.2f", writes[3], writes[1])
	}
	if writes[16] <= writes[1] {
		t.Fatalf("static w=16 writes %.2f should beat w=1 %.2f", writes[16], writes[1])
	}

	// Dynamic SRC must beat every static setting on aggregate: it only
	// pays the read cut while congestion actually demands it.
	tpm := sharedTPM(t)
	spec := congestionSpec()
	spec.Mode = DCQCNSRC
	spec.TPM = tpm
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := c.Run(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	for w, agg := range aggs {
		if dyn.AggregatedGbps <= agg*0.98 {
			t.Fatalf("dynamic SRC aggregate %.2f should not lose to static w=%d (%.2f)",
				dyn.AggregatedGbps, w, agg)
		}
	}
}

// TestECNDisabledAblation: with ECN marking off, DCQCN receives no CNPs,
// so only PFC paces the fabric and no SRC rate events fire.
func TestECNDisabledAblation(t *testing.T) {
	spec := congestionSpec()
	spec.Net.DisableECN = true
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(vdiTrace(t, 600), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCNPs != 0 {
		t.Fatalf("CNPs %d with ECN disabled", res.TotalCNPs)
	}
	if res.Completed != res.Submitted {
		t.Fatalf("lossless delivery violated: %d/%d", res.Completed, res.Submitted)
	}
	if res.TotalPFCPauses == 0 {
		t.Fatal("PFC should engage when ECN cannot pace the senders")
	}
}

// TestDevicesStallWhenTXQFull exercises the parked-completion plumbing
// directly: under heavy read congestion the devices report parked
// completions at some point.
func TestDevicesStallWhenTXQFull(t *testing.T) {
	spec := congestionSpec()
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	// All reads, heavily exceeding the network: the TXQ credit must run
	// out and park completions.
	tr := &trace.Trace{}
	for i := 0; i < 4000; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			ID: uint64(i), Op: trace.Read,
			LBA:     uint64(i%1000) << 16,
			Size:    44 << 10,
			Arrival: sim.Time(i) * 5 * sim.Microsecond,
		})
	}
	res, err := c.Run(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	peak := 0
	for _, tn := range c.Targets {
		for _, dev := range tn.Devs {
			if dev.PeakParked > peak {
				peak = dev.PeakParked
			}
		}
	}
	if peak == 0 {
		t.Fatal("read flood never parked a completion")
	}
	if res.Completed != res.Submitted {
		t.Fatalf("parked completions lost requests: %d/%d", res.Completed, res.Submitted)
	}
}

// TestDeadlineBaselineWorsensWriteStarvation: a conventional
// read-preferring block scheduler makes the congestion pathology worse
// than plain round-robin — reads hog the device even harder while their
// data is stranded in the TXQ, so writes see even less service.
func TestDeadlineBaselineWorsensWriteStarvation(t *testing.T) {
	tr := vdiTrace(t, 1200)
	run := func(mode Mode) *Result {
		spec := congestionSpec()
		spec.Mode = mode
		c, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rr := run(DCQCNOnly)
	dl := run(DeadlineBaseline)
	if dl.Completed != dl.Submitted {
		t.Fatalf("deadline run incomplete: %d/%d", dl.Completed, dl.Submitted)
	}
	if dl.MeanWriteGbps >= rr.MeanWriteGbps {
		t.Fatalf("read-preferring deadline writes %.2f should not beat round-robin %.2f",
			dl.MeanWriteGbps, rr.MeanWriteGbps)
	}
	if DeadlineBaseline.String() != "Deadline" {
		t.Fatal("mode label")
	}
}

// TestSRCUnderTIMELY: the SRC controller consumes only rate-change
// events, so it runs unchanged on a delay-based congestion control.
// Under TIMELY the read flows still get throttled on incast and SRC
// still converts the stranded device bandwidth into writes.
func TestSRCUnderTIMELY(t *testing.T) {
	tpm := sharedTPM(t)
	tr := vdiTrace(t, 1200)
	spec := congestionSpec()
	spec.Net.CC = netsim.CCTIMELY
	base, src, err := CompareModes(spec, tpm, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if base.Completed != base.Submitted || src.Completed != src.Submitted {
		t.Fatalf("incomplete TIMELY runs: %d/%d and %d/%d",
			base.Completed, base.Submitted, src.Completed, src.Submitted)
	}
	if len(src.WeightEvents) == 0 {
		t.Fatal("SRC received no rate events under TIMELY")
	}
	if src.MeanWriteGbps <= base.MeanWriteGbps {
		t.Fatalf("SRC under TIMELY writes %.2f should beat baseline %.2f",
			src.MeanWriteGbps, base.MeanWriteGbps)
	}
}

// TestSRCDirectAblation: applying the demanded rate directly to read
// dispatch (no TPM) also rescues write throughput — quantifying how much
// of SRC's win comes from the principle (cut device reads to the network
// rate) versus the specific SSQ+TPM mechanism. The paper's WRR approach
// is the NVMe-native control; the direct pacer needs a fine-grained rate
// limiter in the dispatch path instead.
func TestSRCDirectAblation(t *testing.T) {
	tpm := sharedTPM(t)
	tr := vdiTrace(t, 1200)

	run := func(mode Mode) *Result {
		spec := congestionSpec()
		spec.Mode = mode
		if mode == DCQCNSRC {
			spec.TPM = tpm
		}
		c, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	base := run(DCQCNOnly)
	direct := run(SRCDirect)
	src := run(DCQCNSRC)

	if direct.Completed != direct.Submitted {
		t.Fatalf("SRC-Direct incomplete: %d/%d", direct.Completed, direct.Submitted)
	}
	if direct.MeanWriteGbps <= base.MeanWriteGbps {
		t.Fatalf("SRC-Direct writes %.2f should beat baseline %.2f",
			direct.MeanWriteGbps, base.MeanWriteGbps)
	}
	// Both SRC variants should land in the same ballpark on aggregate.
	lo, hi := src.AggregatedGbps*0.8, src.AggregatedGbps*1.25
	if direct.AggregatedGbps < lo || direct.AggregatedGbps > hi {
		t.Logf("note: SRC-Direct %.2f vs SRC %.2f aggregated (outside ±20%%)",
			direct.AggregatedGbps, src.AggregatedGbps)
	}
	if SRCDirect.String() != "SRC-Direct" {
		t.Fatal("mode label")
	}
}
