// Package cluster assembles the full disaggregated storage testbed of
// Sec. IV: a fabric (rack or Clos) of initiators and targets, each
// target a flash array behind the baseline NVMe arbitration or the
// paper's SSQ, optionally controlled by SRC — and collects the paper's
// metrics: per-millisecond read throughput at initiators, write
// throughput at targets, pause (congestion-signal) counts, and SRC
// weight adjustments.
package cluster

import (
	"fmt"
	"io"

	"srcsim/internal/core"
	"srcsim/internal/ctrlplane"
	"srcsim/internal/faults"
	"srcsim/internal/guard"
	"srcsim/internal/netsim"
	"srcsim/internal/nvme"
	"srcsim/internal/nvmeof"
	"srcsim/internal/obs"
	"srcsim/internal/obs/live"
	"srcsim/internal/obs/timeseries"
	"srcsim/internal/sim"
	"srcsim/internal/ssd"
	"srcsim/internal/stats"
	"srcsim/internal/trace"
)

// Mode selects the target-side configuration under test.
type Mode int

const (
	// DCQCNOnly is the baseline: default NVMe multi-queue arbitration
	// (Fig. 4-a); only the network throttles reads.
	DCQCNOnly Mode = iota
	// DCQCNSRC adds the paper's SSQ + TPM + dynamic adjustment on every
	// target.
	DCQCNSRC
	// SSQStatic uses the separate submission queues at a fixed weight
	// ratio without dynamic control (for ablations).
	SSQStatic
	// DeadlineBaseline uses a block-layer-style read-preferring deadline
	// scheduler (the conventional occupant of the slot the paper's
	// future work targets); it aggravates read congestion and serves as
	// a second ablation baseline.
	DeadlineBaseline
	// SRCDirect replaces the SSQ+TPM pipeline with direct read-rate
	// pacing at the device (nvme.Paced): the demanded data sending rate
	// is applied to read dispatch as a token bucket, no prediction model
	// involved. The ablation that asks "do you need the TPM?".
	SRCDirect
)

// String implements fmt.Stringer using the paper's labels.
func (m Mode) String() string {
	switch m {
	case DCQCNOnly:
		return "DCQCN-Only"
	case DCQCNSRC:
		return "DCQCN-SRC"
	case SSQStatic:
		return "SSQ-Static"
	case DeadlineBaseline:
		return "Deadline"
	case SRCDirect:
		return "SRC-Direct"
	default:
		return "unknown-mode"
	}
}

// Spec describes one experiment setup.
type Spec struct {
	Initiators int
	Targets    int

	SSD              ssd.Config
	DevicesPerTarget int // flash-array width (default 1)

	Mode Mode
	// TPM must be a trained model when Mode is DCQCNSRC.
	TPM *core.TPM
	SRC core.ControllerConfig
	// Ctrl, when Enabled and Mode is DCQCNSRC, routes SRC telemetry and
	// weight directives through the in-band control plane (lossy delayed
	// messaging, epoch-guarded directives, lease liveness, controller
	// failover; see internal/ctrlplane). The zero value keeps the
	// historical direct-call wiring byte-for-byte.
	Ctrl ctrlplane.Config
	// StaticWeight is the fixed write weight for SSQStatic (default 1).
	StaticWeight int

	// Net carries fabric parameters; LinkRate (bits/s) is the host link
	// speed and defaults to Net.DCQCN.LineRate (or 40 Gbps). The paper
	// uses 1 µs link delay.
	Net       netsim.Config
	LinkRate  float64
	LinkDelay sim.Time
	// UseClos builds the paper's full Clos fabric and places initiators
	// and targets on distinct ToRs; otherwise a single-rack topology is
	// used (the paper's small-scale experiments).
	UseClos bool
	Clos    netsim.ClosSpec

	// MetricBucket is the time-series resolution (default 1 ms, as in
	// Figs. 7-10).
	MetricBucket sim.Time
	// Horizon bounds the simulation (default 3x trace duration plus
	// 200 ms of drain).
	Horizon sim.Time
	// TrimFrac is the warm-up/wrap-up trim (default 0.10, Sec. IV-B).
	TrimFrac float64
	// TXQCap bounds in-flight read data per target in bytes (0 uses
	// nvmeof.DefaultTXQCap; negative disables CQ backpressure).
	TXQCap int64

	// Faults, when non-nil, installs the fault schedule into the built
	// cluster (see internal/faults). Its Recovery block fills any of the
	// recovery knobs below the caller left unset. Nil keeps the fabric
	// perfect and all recovery machinery disarmed — the pre-fault
	// behaviour, byte for byte.
	Faults *faults.Schedule
	// Retry arms per-command expiry and retransmission at every
	// initiator, and (via its Timeout) the targets' TXQ credit-leak
	// recovery. The zero value disables timeouts.
	Retry nvmeof.RetryPolicy

	// Guard configures run governance: the liveness watchdog, the
	// conservation auditor, graceful cancellation, and the wall-clock
	// budget (see internal/guard). The zero value disables everything
	// and keeps runs byte-identical to ungoverned output.
	Guard guard.Config

	// Metrics, when non-nil, receives counters/gauges/histograms from
	// every instrumented component and enables engine profiling; the
	// snapshot lands in Result.Metrics. Nil (the default) keeps all hooks
	// no-ops.
	Metrics *obs.Registry
	// Trace, when non-nil, records sim-time events (ECN marks, PFC
	// pauses, DCQCN throttle spans, SSD GC, SRC adjustments) for Chrome
	// trace export. The run appears as one trace "process" named after
	// the mode. Nil disables tracing with zero overhead.
	Trace *obs.Tracer
	// Recorder, when non-nil, attaches the flight recorder: periodic
	// sim-clock sampling of the registry plus per-layer congestion
	// probes (queue depth, DCQCN rate/alpha, SRC weight, TXQ credit,
	// in-flight commands), under mode-prefixed tracks so CompareModes
	// legs sharing a recorder stay distinct. Nil records nothing and
	// changes no behaviour.
	Recorder *timeseries.Recorder
	// Board, when non-nil, receives wall-clock-latest copies of the
	// registry snapshot and recorder window every PublishEvery of sim
	// time (default 10 ms) for the live inspector. Publishing runs as
	// ordinary engine events and is read-only.
	Board        *live.Board
	PublishEvery sim.Time
	// Progress, when non-nil, gets a one-line status report every
	// ProgressEvery of sim time (default 100 ms) during Run.
	Progress      io.Writer
	ProgressEvery sim.Time
}

func (s Spec) withDefaults() Spec {
	if s.Initiators <= 0 {
		s.Initiators = 1
	}
	if s.Targets <= 0 {
		s.Targets = 1
	}
	if s.DevicesPerTarget <= 0 {
		s.DevicesPerTarget = 1
	}
	if s.StaticWeight <= 0 {
		s.StaticWeight = 1
	}
	if s.SSD.Name == "" {
		s.SSD = ssd.ConfigA()
	}
	if s.LinkRate <= 0 {
		if s.Net.DCQCN.LineRate > 0 {
			s.LinkRate = s.Net.DCQCN.LineRate
		} else {
			s.LinkRate = 40e9
		}
	}
	// The NIC line rate must match the host link.
	s.Net.DCQCN.LineRate = s.LinkRate
	if s.LinkDelay <= 0 {
		s.LinkDelay = sim.Microsecond
	}
	if s.MetricBucket <= 0 {
		s.MetricBucket = sim.Millisecond
	}
	if s.TrimFrac <= 0 {
		s.TrimFrac = 0.10
	}
	s.Guard = s.Guard.WithDefaults()
	// A schedule's Recovery block arms any recovery knob the caller left
	// unset; explicit Spec settings win.
	if s.Faults != nil && s.Faults.Recovery != nil {
		r := s.Faults.Recovery
		if !s.Retry.Enabled() && r.Timeout > 0 {
			s.Retry = nvmeof.RetryPolicy{
				Timeout: r.Timeout, MaxRetries: r.MaxRetries,
				BackoffBase: r.BackoffBase, BackoffCap: r.BackoffCap,
			}
		}
		if s.Net.PFCWatchdog <= 0 && r.PFCWatchdog > 0 {
			s.Net.PFCWatchdog = r.PFCWatchdog
		}
		if s.SRC.StaleAfter <= 0 && r.StaleAfter > 0 {
			s.SRC.StaleAfter = r.StaleAfter
			s.SRC.FallbackWeight = r.FallbackWeight
		}
	}
	return s
}

// TargetNode bundles one storage node's pieces.
type TargetNode struct {
	T    *nvmeof.Target
	Devs []*ssd.Device
	SSQs []*nvme.SSQ // nil entries when Mode is DCQCNOnly
	Ctl  *core.Controller
}

// Cluster is a built, ready-to-run testbed.
type Cluster struct {
	Spec Spec
	Eng  *sim.Engine
	Net  *netsim.Network

	Initiators []*nvmeof.Initiator
	Targets    []*TargetNode

	// Injector is the installed fault schedule (inert when Spec.Faults
	// is nil).
	Injector *faults.Injector

	readBits  *stats.TimeSeries
	writeBits *stats.TimeSeries
	pauses    *stats.TimeSeries

	// Per-target cumulative bit counters feeding the adaptive
	// controllers' measured-throughput observations; nil unless
	// Spec.SRC.Adaptive is armed (so non-adaptive runs pay nothing).
	adaptReadBits  []float64
	adaptWriteBits []float64

	completed int
	failed    int
	total     int

	// Guard state: the in-flight ledger (watchdog only), the fatal
	// verdict (stall or violation), and the graceful-truncation marker.
	flight         map[uint64]flightRec
	guardErr       error
	truncated      bool
	truncateReason string

	// telemetryStalled gates the SRC monitor feed per target (the
	// telemetry-stall fault). Both the direct path and the in-band
	// control plane pass through this same gate (feedTelemetry), so
	// stall faults and channel loss degrade the controller identically.
	telemetryStalled []bool

	// plane is the in-band control plane; nil unless Spec.Ctrl.Enabled
	// with Mode DCQCNSRC.
	plane *ctrlplane.Plane

	// sc is the run's trace scope (nil when Spec.Trace is nil).
	sc *obs.Scope
}

// New builds a cluster from the spec.
func New(spec Spec) (*Cluster, error) {
	spec = spec.withDefaults()
	if spec.Mode == DCQCNSRC && (spec.TPM == nil || !spec.TPM.Trained()) {
		return nil, fmt.Errorf("cluster: mode %v requires a trained TPM", spec.Mode)
	}
	if err := spec.SSD.Validate(); err != nil {
		return nil, err
	}

	eng := sim.NewEngine()
	if spec.Metrics != nil {
		eng.EnableProfiling()
	}
	net, err := netsim.NewNetwork(eng, spec.Net)
	if err != nil {
		return nil, err
	}
	// One trace process per run, named after the mode, so CompareModes
	// runs sharing a tracer land in distinct Chrome processes.
	sc := spec.Trace.Scope(spec.Mode.String())
	modeL := obs.L("mode", spec.Mode.String())
	net.Instrument(spec.Metrics, sc, modeL)

	var hosts []*netsim.Node
	need := spec.Initiators + spec.Targets
	if spec.UseClos {
		hosts = netsim.BuildClos(net, spec.Clos)
		if len(hosts) < need {
			return nil, fmt.Errorf("cluster: Clos provides %d hosts, need %d", len(hosts), need)
		}
		// Spread across ToRs: initiators first, then targets from the
		// far end so traffic crosses the fabric.
		sel := make([]*netsim.Node, 0, need)
		sel = append(sel, hosts[:spec.Initiators]...)
		sel = append(sel, hosts[len(hosts)-spec.Targets:]...)
		hosts = sel
	} else {
		hosts = netsim.BuildRack(net, need, spec.LinkRate, spec.LinkDelay)
	}

	c := &Cluster{
		Spec: spec, Eng: eng, Net: net,
		readBits:         stats.NewTimeSeries(spec.MetricBucket),
		writeBits:        stats.NewTimeSeries(spec.MetricBucket),
		pauses:           stats.NewTimeSeries(spec.MetricBucket),
		telemetryStalled: make([]bool, spec.Targets),
		sc:               sc,
	}
	if spec.Mode == DCQCNSRC && spec.SRC.Adaptive.Enabled {
		c.adaptReadBits = make([]float64, spec.Targets)
		c.adaptWriteBits = make([]float64, spec.Targets)
	}
	if spec.Mode == DCQCNSRC && spec.Ctrl.Enabled {
		c.plane = ctrlplane.New(eng, spec.Ctrl, spec.Targets, net.SwitchQueuedBytes)
		c.plane.Instrument(spec.Metrics, modeL)
	}

	for i := 0; i < spec.Initiators; i++ {
		ini := nvmeof.NewInitiator(net, eng, hosts[i])
		ini.OnComplete = func(req trace.Request, readData bool, at sim.Time) {
			if readData {
				c.readBits.Add(at, float64(req.Size)*8)
				if c.adaptReadBits != nil {
					c.adaptReadBits[req.Target] += float64(req.Size) * 8
				}
			}
			c.completed++
			if c.completed+c.failed >= c.total && c.total > 0 {
				eng.Stop()
			}
		}
		if spec.Retry.Enabled() {
			ini.SetRetryPolicy(spec.Retry)
			ini.OnFailed = func(req trace.Request, at sim.Time) {
				c.failed++
				if c.completed+c.failed >= c.total && c.total > 0 {
					eng.Stop()
				}
			}
		}
		c.Initiators = append(c.Initiators, ini)
	}

	for tIdx := 0; tIdx < spec.Targets; tIdx++ {
		node := hosts[spec.Initiators+tIdx]
		tn := &TargetNode{}
		units := make([]nvmeof.Unit, 0, spec.DevicesPerTarget)
		for d := 0; d < spec.DevicesPerTarget; d++ {
			var arb nvme.Arbiter
			switch spec.Mode {
			case DCQCNOnly:
				arb = nvme.NewMultiRR(4)
				tn.SSQs = append(tn.SSQs, nil)
			case DCQCNSRC:
				ssq := nvme.NewSSQ(1, 1)
				tn.SSQs = append(tn.SSQs, ssq)
				arb = ssq
			case SSQStatic:
				ssq := nvme.NewSSQ(1, spec.StaticWeight)
				tn.SSQs = append(tn.SSQs, ssq)
				arb = ssq
			case DeadlineBaseline:
				arb = nvme.NewDeadline(0)
				tn.SSQs = append(tn.SSQs, nil)
			case SRCDirect:
				arb = nvme.NewPaced(eng, 0)
				tn.SSQs = append(tn.SSQs, nil)
			default:
				return nil, fmt.Errorf("cluster: unknown mode %d", spec.Mode)
			}
			dev, err := ssd.New(eng, spec.SSD, arb)
			if err != nil {
				return nil, err
			}
			dev.Trace = sc
			dev.TraceName = fmt.Sprintf("t%d/d%d", tIdx, d)
			if ssq := tn.SSQs[d]; ssq != nil {
				ssq.Instrument(spec.Metrics, modeL)
			}
			tn.Devs = append(tn.Devs, dev)
			units = append(units, nvmeof.Unit{Dev: dev, Arb: arb})
		}
		tn.T = nvmeof.NewTarget(net, node, units, spec.TXQCap)
		if spec.Retry.Enabled() {
			tn.T.SetCreditTimeout(spec.Retry.Timeout)
		}
		if spec.Mode == SRCDirect {
			// Wire pacing wake-ups and the rate listener: every DCQCN
			// rate change is applied directly as the per-device read
			// dispatch budget.
			paced := make([]*nvme.Paced, 0, len(units))
			for d, u := range units {
				pa := u.Arb.(*nvme.Paced)
				dev := tn.Devs[d]
				pa.Kicker = dev.Kick
				paced = append(paced, pa)
			}
			target := tn.T
			share := float64(len(units))
			tn.T.OnReadRate = func(_ *netsim.Flow, _, _ float64) {
				per := target.ReadSendRate() / share
				for _, pa := range paced {
					pa.SetReadRate(per)
				}
			}
		}
		wIdx := tIdx
		tn.T.OnWriteComplete = func(req trace.Request, at sim.Time) {
			c.writeBits.Add(at, float64(req.Size)*8)
			if c.adaptWriteBits != nil {
				c.adaptWriteBits[wIdx] += float64(req.Size) * 8
			}
		}

		if spec.Mode == DCQCNSRC {
			srcCfg := spec.SRC
			if srcCfg.Scale <= 0 {
				srcCfg.Scale = float64(spec.DevicesPerTarget)
			}
			group := make(core.SSQGroup, 0, len(tn.SSQs))
			for _, s := range tn.SSQs {
				group = append(group, s)
			}
			target := tn.T
			tIdx := tIdx
			mk := func(sink core.WeightSink) *core.Controller {
				ctl := core.NewController(srcCfg, spec.TPM, sink)
				ctl.Instrument(spec.Metrics, sc, fmt.Sprintf("t%d", tIdx), modeL)
				return ctl
			}
			if c.plane != nil {
				// In-band: the controller drives a plane directive sink;
				// the agent owns the real SSQ group.
				tn.Ctl = c.plane.Register(tIdx, group, mk)
			} else {
				tn.Ctl = mk(group)
			}
			tn.T.OnCommandArrive = func(req trace.Request, at sim.Time) {
				c.feedTelemetry(tIdx, req, at)
			}
			tn.T.OnReadRate = func(_ *netsim.Flow, _, _ float64) {
				c.feedRate(tIdx, target.ReadSendRate())
			}
		}
		c.Targets = append(c.Targets, tn)
	}

	if spec.Faults != nil {
		b := faults.Binding{
			Eng: eng, Net: net,
			Metrics: spec.Metrics, Scope: sc,
			StallTelemetry: func(t int, stalled bool) { c.telemetryStalled[t] = stalled },
		}
		if c.plane != nil {
			b.Ctrl = c.plane
		}
		b.Initiators = append(b.Initiators, hosts[:spec.Initiators]...)
		for _, tn := range c.Targets {
			b.Targets = append(b.Targets, tn.T.Node)
			b.TargetDevices = append(b.TargetDevices, tn.Devs)
		}
		inj, err := faults.Install(spec.Faults, b)
		if err != nil {
			return nil, err
		}
		c.Injector = inj
	}
	return c, nil
}

// feedTelemetry routes one monitored request to target t's SRC
// controller: through the in-band control plane's publisher when one is
// enabled, directly into the monitor otherwise. Both paths share the
// telemetry-stall gate, so the telemetry-stall fault and in-band channel
// loss starve the controller through the same staleness watchdog and
// produce consistent Degraded() semantics.
func (c *Cluster) feedTelemetry(t int, req trace.Request, at sim.Time) {
	if c.telemetryStalled[t] {
		return
	}
	if c.plane != nil {
		c.plane.Publisher(t).Record(req, at)
		return
	}
	c.Targets[t].Ctl.Monitor.Record(req, at)
}

// feedRate routes one demanded-rate event to target t's SRC controller
// (in-band when the plane is enabled, direct otherwise). Rate events are
// deliberately not gated by telemetryStalled, matching the historical
// direct wiring: a stalled monitor feed still hears rate changes and
// degrades via staleness, not silence.
// activeCtl returns target t's currently live controller: the plane's
// active incarnation when the control plane is on (nil while the
// controller process is down), the fixed direct controller otherwise.
func (c *Cluster) activeCtl(t int) *core.Controller {
	if c.plane != nil {
		return c.plane.Active(t)
	}
	return c.Targets[t].Ctl
}

func (c *Cluster) feedRate(t int, rate float64) {
	if c.plane != nil {
		c.plane.Publisher(t).RateEvent(rate)
		return
	}
	c.Targets[t].Ctl.OnRateEvent(c.Eng.Now(), rate)
}
