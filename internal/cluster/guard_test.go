package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"srcsim/internal/guard"
	"srcsim/internal/sim"
)

// TestGuardFullyArmedMatchesGolden is the pure-observer regression: a
// fault-free run with every guard mechanism armed (auditor, watchdog,
// an unfired stopper) must stay byte-identical to the unguarded golden
// summary. Audits and watchdog checks are read-only, so arming them can
// never perturb a run's result.
func TestGuardFullyArmedMatchesGolden(t *testing.T) {
	golden, err := os.ReadFile("testdata/summary_golden.json")
	if err != nil {
		t.Fatal(err)
	}
	armed := runSummaryJSON(t, func(s *Spec) {
		s.Guard = guard.Config{
			Audit:        true,
			StallHorizon: 500 * sim.Millisecond,
			Stop:         guard.NewStopper(),
		}
	})
	if !bytes.Equal(armed, golden) {
		t.Fatalf("armed guard perturbed the run:\ngolden: %s\ngot:    %s", golden, armed)
	}
}

// TestAuditCatchesCreditLeak injects a TXQ credit leak mid-run and
// requires the conservation auditor to fail the run within one audit
// period of the leak.
func TestAuditCatchesCreditLeak(t *testing.T) {
	spec := congestionSpec()
	spec.Guard = guard.Config{Audit: true, AuditEvery: sim.Millisecond}
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	const leakAt = 3 * sim.Millisecond
	c.Eng.Schedule(leakAt, func() { c.Targets[0].T.InjectCreditLeak(4 << 10) })
	res, err := c.Run(vdiTrace(t, 300), nil)
	if err == nil {
		t.Fatal("leaked credit went undetected")
	}
	if res != nil {
		t.Fatal("failed run still returned a result")
	}
	var ve *guard.ViolationError
	if !errors.As(err, &ve) {
		t.Fatalf("error type %T, want *guard.ViolationError", err)
	}
	if !strings.Contains(err.Error(), "txq-credit-conservation") {
		t.Fatalf("violation does not name the leaked invariant: %v", err)
	}
	if ve.At < leakAt || ve.At > leakAt+spec.Guard.AuditEvery {
		t.Fatalf("leak at %v caught at %v, want within one audit period (%v)",
			leakAt, ve.At, spec.Guard.AuditEvery)
	}
}

// TestStopperMidRunTruncates fires the cancellation handle from a
// scheduled sim event (the deterministic analogue of a SIGINT): the run
// must drain at the next interrupt boundary and return a partial result
// marked truncated, with a valid JSON summary — byte-identically across
// repeats.
func TestStopperMidRunTruncates(t *testing.T) {
	run := func() []byte {
		t.Helper()
		spec := congestionSpec()
		st := guard.NewStopper()
		spec.Guard = guard.Config{Stop: st, InterruptEvery: 64}
		c, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		c.Eng.Schedule(3*sim.Millisecond, func() { st.Stop("test interrupt") })
		res, err := c.Run(vdiTrace(t, 300), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Truncated || res.TruncateReason != "test interrupt" {
			t.Fatalf("Truncated=%v reason=%q, want truncation by the stopper",
				res.Truncated, res.TruncateReason)
		}
		if res.Completed >= res.Submitted {
			t.Fatalf("truncation at 3ms should leave work undone: %d/%d",
				res.Completed, res.Submitted)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := run()
	var sum struct {
		Truncated      bool   `json:"truncated"`
		TruncateReason string `json:"truncate_reason"`
		Completed      int    `json:"completed"`
		Submitted      int    `json:"submitted"`
	}
	if err := json.Unmarshal(a, &sum); err != nil {
		t.Fatalf("truncated summary is not valid JSON: %v\n%s", err, a)
	}
	if !sum.Truncated || sum.TruncateReason != "test interrupt" {
		t.Fatalf("summary JSON truncation fields: %+v", sum)
	}
	if b := run(); !bytes.Equal(a, b) {
		t.Fatalf("deterministic stop produced differing summaries:\n%s\nvs\n%s", a, b)
	}
}

// TestPreFiredStopperTruncatesImmediately: a stopper that fired before
// Run (SIGINT between runs of a multi-run experiment) truncates the run
// before its first event.
func TestPreFiredStopperTruncatesImmediately(t *testing.T) {
	spec := congestionSpec()
	st := guard.NewStopper()
	st.Stop("signal: interrupt")
	spec.Guard = guard.Config{Stop: st}
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(vdiTrace(t, 50), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.Completed != 0 {
		t.Fatalf("pre-fired stopper: Truncated=%v Completed=%d", res.Truncated, res.Completed)
	}
	if res.TruncateReason != "signal: interrupt" {
		t.Fatalf("reason %q", res.TruncateReason)
	}
}

// TestWallBudgetTruncates arms an already-exhausted wall budget: the
// run must come back truncated (not failed) with the ledger intact.
func TestWallBudgetTruncates(t *testing.T) {
	spec := congestionSpec()
	spec.Guard = guard.Config{WallBudget: time.Nanosecond, InterruptEvery: 64}
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(vdiTrace(t, 300), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("exhausted wall budget did not truncate the run")
	}
	if !strings.Contains(res.TruncateReason, "wall budget") {
		t.Fatalf("reason %q", res.TruncateReason)
	}
	if res.Completed > res.Submitted {
		t.Fatalf("ledger inconsistent after truncation: %d/%d", res.Completed, res.Submitted)
	}
}

// TestWriteJSONFileAtomic writes a summary through the atomic file
// helper and reads it back.
func TestWriteJSONFileAtomic(t *testing.T) {
	spec := congestionSpec()
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(vdiTrace(t, 50), nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "summary.json")
	if err := res.WriteJSONFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var sum map[string]any
	if err := json.Unmarshal(raw, &sum); err != nil {
		t.Fatalf("written summary is not valid JSON: %v", err)
	}
	if _, ok := sum["submitted"]; !ok {
		t.Fatalf("summary missing ledger fields: %s", raw)
	}
}
