package cluster

// Summary-shape tests for the adaptive ladder ledger (ISSUE 7
// satellite 6, cluster side): with adaptation off, summaries must not
// contain any ladder/adapt key — the pre-adaptive JSON shape is golden
// — and an armed run that transitions must surface its ledger.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"srcsim/internal/core"
	"srcsim/internal/sim"
)

// TestSummaryShapeWithoutAdaptation: a DCQCN-SRC run with adaptation
// disabled must marshal without any adaptive key, byte-preserving the
// pre-adaptive golden shape.
func TestSummaryShapeWithoutAdaptation(t *testing.T) {
	spec := congestionSpec()
	spec.Mode = DCQCNSRC
	spec.TPM = sharedTPM(t)
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(vdiTrace(t, 300), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"ladder"`, `"adapt_`} {
		if strings.Contains(buf.String(), key) {
			t.Errorf("adaptation-off summary contains %s:\n%s", key, buf.String())
		}
	}
	if res.Ladder != nil || res.Retrains != 0 || res.AdaptRecovered {
		t.Errorf("adaptation-off result carries ladder state: %+v %d %v",
			res.Ladder, res.Retrains, res.AdaptRecovered)
	}
}

// TestSummaryLedgerWithAdaptation: arming the ladder with a
// hair-trigger staleness watchdog forces a Static descent, which must
// appear in the summary's ladder ledger (and therefore in its JSON).
func TestSummaryLedgerWithAdaptation(t *testing.T) {
	spec := congestionSpec()
	spec.Mode = DCQCNSRC
	spec.TPM = sharedTPM(t)
	spec.SRC.StaleAfter = sim.Nanosecond
	spec.SRC.Adaptive = core.AdaptiveConfig{
		Enabled:      true,
		ObserveEvery: 100 * sim.Microsecond,
	}
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(vdiTrace(t, 300), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ladder) == 0 {
		t.Fatal("hair-trigger staleness produced no ladder transitions")
	}
	if res.Ladder[0].To != core.LadderStatic.String() {
		t.Fatalf("first transition %+v, want a Static descent", res.Ladder[0])
	}
	b, err := json.Marshal(res.Summary())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"ladder"`)) {
		t.Fatalf("adaptive summary lost its ladder ledger: %s", b)
	}
	if got := res.Completed + res.Failed; got != res.Submitted {
		t.Fatalf("accounting leak under adaptation: %d+%d != %d", res.Completed, res.Failed, res.Submitted)
	}
}
