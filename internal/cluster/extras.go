package cluster

import (
	"fmt"

	"srcsim/internal/netsim"
	"srcsim/internal/sim"
	"srcsim/internal/trace"
)

// BackgroundFlow describes cross traffic that shares the fabric with the
// storage workload: a persistent sender pushing fixed-size messages at a
// target offered rate between two extra hosts. Background traffic
// tightens the congestion regime without touching the storage stack —
// useful for studying SRC under contended fabrics (the paper's full Clos
// carries 256 hosts of such traffic).
type BackgroundFlow struct {
	// RateGbps is the offered rate; MsgBytes the message size
	// (default 1 MiB).
	RateGbps float64
	MsgBytes int
}

// AddBackground installs background flows on extra rack hosts. Call
// after New and before Run. Each flow gets its own source and sink host
// appended to the fabric, so storage hosts keep their link capacity —
// only the shared switch is contended.
//
// Only rack topologies support background flows (the Clos builder wires
// hosts at construction time).
func (c *Cluster) AddBackground(flows []BackgroundFlow) error {
	if c.Spec.UseClos {
		return fmt.Errorf("cluster: background flows require the rack topology")
	}
	for i, bf := range flows {
		if bf.RateGbps <= 0 {
			return fmt.Errorf("cluster: background flow %d has no rate", i)
		}
		msg := bf.MsgBytes
		if msg <= 0 {
			msg = 1 << 20
		}
		src := c.Net.AddHost(fmt.Sprintf("bg-src%d", i))
		dst := c.Net.AddHost(fmt.Sprintf("bg-dst%d", i))
		// The rack's switch is node 0 (BuildRack adds it first).
		var tor *netsim.Node
		for _, n := range c.Net.Nodes() {
			if n.IsSwitch {
				tor = n
				break
			}
		}
		if tor == nil {
			return fmt.Errorf("cluster: no switch found for background traffic")
		}
		c.Net.Connect(src, tor, c.Spec.LinkRate, c.Spec.LinkDelay)
		c.Net.Connect(dst, tor, c.Spec.LinkRate, c.Spec.LinkDelay)
		c.Net.ComputeRoutes()

		flow := c.Net.NewFlow(src, dst)
		interval := sim.Time(float64(msg*8) / (bf.RateGbps * 1e9) * float64(sim.Second))
		if interval < 1 {
			interval = 1
		}
		// Paced open-loop sender for the lifetime of the run.
		var tick func()
		tick = func() {
			flow.Send(msg, nil)
			c.Eng.After(interval, tick)
		}
		c.Eng.After(sim.Time(i+1), tick)
	}
	return nil
}

// ClosedLoopSpec drives the cluster like fio with a bounded iodepth:
// each initiator keeps QueueDepth requests outstanding per target,
// resubmitting on completion, for the given duration. Request parameters
// are sampled from the template trace's empirical distribution.
type ClosedLoopSpec struct {
	// QueueDepth is the per-initiator, per-target outstanding bound.
	QueueDepth int
	// Duration of the measured run.
	Duration sim.Time
	// ReadFraction of issued requests (0..1).
	ReadFraction float64
	// SizeBytes of each request (block-aligned by the caller).
	SizeBytes int
	// AddressSpace for generated LBAs.
	AddressSpace uint64
	// Seed drives the request generator.
	Seed uint64
}

func (s ClosedLoopSpec) withDefaults() ClosedLoopSpec {
	if s.QueueDepth <= 0 {
		s.QueueDepth = 32
	}
	if s.Duration <= 0 {
		s.Duration = 50 * sim.Millisecond
	}
	if s.ReadFraction <= 0 {
		s.ReadFraction = 0.5
	}
	if s.SizeBytes <= 0 {
		s.SizeBytes = 16 << 10
	}
	if s.AddressSpace == 0 {
		s.AddressSpace = 2 << 30
	}
	return s
}

// ClosedLoopResult summarises a closed-loop run.
type ClosedLoopResult struct {
	ReadGbps, WriteGbps float64
	ReadIOPS, WriteIOPS float64
	Completed           int
}

// RunClosedLoop drives the cluster closed-loop (see ClosedLoopSpec) and
// reports sustained throughput. It can be called once per cluster, like
// Run.
func (c *Cluster) RunClosedLoop(spec ClosedLoopSpec) (*ClosedLoopResult, error) {
	spec = spec.withDefaults()
	rng := sim.NewRNG(spec.Seed ^ 0xc105ed)
	for _, t := range c.Targets {
		for _, dev := range t.Devs {
			dev.Precondition(spec.AddressSpace)
		}
	}

	var readBytes, writeBytes int64
	var completed int
	nextID := uint64(0)

	newReq := func() trace.Request {
		op := trace.Read
		if rng.Float64() >= spec.ReadFraction {
			op = trace.Write
		}
		id := nextID
		nextID++
		blocks := spec.AddressSpace / 4096
		return trace.Request{
			ID: id, Op: op,
			LBA:  uint64(rng.Intn(int(blocks))) * 4096,
			Size: spec.SizeBytes,
		}
	}

	// c.total stays 0 so the trace-run completion stop never triggers;
	// guard Run from being mixed with RunClosedLoop.
	if c.completed != 0 {
		return nil, fmt.Errorf("cluster: RunClosedLoop on a used cluster")
	}

	for ii, ini := range c.Initiators {
		ini := ini
		ini.OnComplete = func(req trace.Request, readData bool, at sim.Time) {
			if at <= spec.Duration {
				completed++
				if readData {
					readBytes += int64(req.Size)
				} else {
					writeBytes += int64(req.Size)
				}
			}
			// Resubmit to keep the queue depth (stop issuing after the
			// horizon so the run drains).
			if at < spec.Duration {
				tgt := c.Targets[int(req.ID)%len(c.Targets)]
				r := newReq()
				ini.Submit(r, tgt.T.Node)
			}
		}
		// Prime the pipeline.
		for q := 0; q < spec.QueueDepth; q++ {
			for ti := range c.Targets {
				r := newReq()
				_ = ii
				c.Eng.Schedule(sim.Time(q+ti+1), func() {
					ini.Submit(r, c.Targets[ti%len(c.Targets)].T.Node)
				})
			}
		}
	}

	c.Eng.Run(spec.Duration + 100*sim.Millisecond)

	secs := spec.Duration.Seconds()
	res := &ClosedLoopResult{
		ReadGbps:  float64(readBytes*8) / secs / 1e9,
		WriteGbps: float64(writeBytes*8) / secs / 1e9,
		Completed: completed,
	}
	if secs > 0 {
		res.ReadIOPS = float64(readBytes) / float64(spec.SizeBytes) / secs
		res.WriteIOPS = float64(writeBytes) / float64(spec.SizeBytes) / secs
	}
	return res, nil
}
