package cluster

import (
	"sync"
	"testing"

	"srcsim/internal/core"
	"srcsim/internal/devrun"
	"srcsim/internal/ml"
	"srcsim/internal/sim"
	"srcsim/internal/ssd"
	"srcsim/internal/trace"
	"srcsim/internal/workload"
)

// targetArray is the per-target device sizing used by the congestion
// experiments (see DESIGN.md calibration notes).
func targetArray(cfg ssd.Config) ssd.Config {
	cfg.Channels = 4
	cfg.DiesPerChannel = 4
	return cfg
}

var (
	tpmOnce sync.Once
	tpmA    *core.TPM
	tpmErr  error
)

// sharedTPM trains one moderate-size TPM for all tests in this package.
func sharedTPM(t *testing.T) *core.TPM {
	t.Helper()
	tpmOnce.Do(func() {
		tpmA, _, tpmErr = devrun.TrainTPM(targetArray(ssd.ConfigA()), 1000, 42)
	})
	if tpmErr != nil {
		t.Fatal(tpmErr)
	}
	return tpmA
}

// vdiTrace is a small VDI-scale congestion workload.
func vdiTrace(t *testing.T, perDir int) *trace.Trace {
	t.Helper()
	tr, err := workload.Synthetic(workload.SyntheticConfig{
		Seed:      7,
		ReadCount: 2 * perDir, WriteCount: perDir,
		ReadInterArrival: 10 * sim.Microsecond, WriteInterArrival: 20 * sim.Microsecond,
		ReadInterArrivalSCV: 3.0, WriteInterArrivalSCV: 2.5,
		ReadACF1: 0.2, WriteACF1: 0.15,
		ReadMeanSize: 44 << 10, WriteMeanSize: 23 << 10,
		ReadSizeSCV: 1.8, WriteSizeSCV: 1.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func congestionSpec() Spec {
	return Spec{
		Initiators: 1, Targets: 2,
		SSD:      targetArray(ssd.ConfigA()),
		LinkRate: 10e9,
	}
}

func TestModeStrings(t *testing.T) {
	if DCQCNOnly.String() != "DCQCN-Only" || DCQCNSRC.String() != "DCQCN-SRC" || SSQStatic.String() != "SSQ-Static" {
		t.Fatal("mode labels")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Spec{Mode: DCQCNSRC}); err == nil {
		t.Fatal("SRC without TPM should fail")
	}
	bad := congestionSpec()
	bad.SSD.PageSize = 1000
	if _, err := New(bad); err == nil {
		t.Fatal("invalid SSD config should fail")
	}
}

func TestRunEmptyTrace(t *testing.T) {
	c, err := New(congestionSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(&trace.Trace{}, nil); err == nil {
		t.Fatal("empty trace should error")
	}
}

func TestBaselineRunCompletes(t *testing.T) {
	c, err := New(congestionSpec())
	if err != nil {
		t.Fatal(err)
	}
	tr := vdiTrace(t, 600)
	res, err := c.Run(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Submitted {
		t.Fatalf("completed %d/%d", res.Completed, res.Submitted)
	}
	if res.MeanReadGbps <= 0 || res.MeanWriteGbps <= 0 {
		t.Fatalf("throughputs %v/%v", res.MeanReadGbps, res.MeanWriteGbps)
	}
	if res.TotalCNPs == 0 {
		t.Fatal("congestion workload produced no CNPs")
	}
	if len(res.Pauses) == 0 {
		t.Fatal("pause series empty")
	}
	if len(res.WeightEvents) != 0 {
		t.Fatal("baseline must not adjust weights")
	}
}

// TestSRCImprovesAggregateThroughput is the repo's headline check: the
// Fig. 7 / Table IV result that DCQCN-SRC beats DCQCN-only on aggregated
// throughput under read-side congestion, by boosting writes while the
// network throttles reads.
func TestSRCImprovesAggregateThroughput(t *testing.T) {
	tpm := sharedTPM(t)
	tr := vdiTrace(t, 1500)
	base, src, err := CompareModes(congestionSpec(), tpm, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if base.Completed != base.Submitted || src.Completed != src.Submitted {
		t.Fatalf("incomplete runs: %d/%d and %d/%d", base.Completed, base.Submitted, src.Completed, src.Submitted)
	}
	if len(src.WeightEvents) == 0 {
		t.Fatal("SRC never adjusted weights")
	}
	if src.MeanWriteGbps <= base.MeanWriteGbps*1.2 {
		t.Fatalf("SRC write throughput %.2f should clearly beat baseline %.2f",
			src.MeanWriteGbps, base.MeanWriteGbps)
	}
	if src.AggregatedGbps <= base.AggregatedGbps*1.05 {
		t.Fatalf("SRC aggregate %.2f should beat baseline %.2f",
			src.AggregatedGbps, base.AggregatedGbps)
	}
}

func TestSSQStaticMode(t *testing.T) {
	spec := congestionSpec()
	spec.Mode = SSQStatic
	spec.StaticWeight = 4
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range c.Targets {
		for _, s := range tn.SSQs {
			if s == nil || s.WeightRatio() != 4 {
				t.Fatal("static SSQ weights not applied")
			}
		}
	}
	res, err := c.Run(vdiTrace(t, 300), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Submitted {
		t.Fatalf("completed %d/%d", res.Completed, res.Submitted)
	}
}

func TestDevicesPerTargetArray(t *testing.T) {
	spec := congestionSpec()
	spec.DevicesPerTarget = 2
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Targets[0].Devs) != 2 {
		t.Fatalf("devices %d", len(c.Targets[0].Devs))
	}
	res, err := c.Run(vdiTrace(t, 300), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Both devices should have seen work (LBA striping).
	for ti, tn := range c.Targets {
		for di, dev := range tn.Devs {
			if dev.FetchedCommands == 0 {
				t.Fatalf("target %d device %d idle", ti, di)
			}
		}
	}
	_ = res
}

func TestClosPlacementRuns(t *testing.T) {
	spec := congestionSpec()
	spec.UseClos = true
	spec.Clos.LinkRate = 10e9
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(vdiTrace(t, 200), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Submitted {
		t.Fatalf("Clos run incomplete: %d/%d", res.Completed, res.Submitted)
	}
}

func TestCustomAssignPolicy(t *testing.T) {
	spec := congestionSpec()
	spec.Targets = 2
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Send everything to target 0.
	onlyZero := func(req trace.Request, idx, inis, tgts int) (int, int) { return 0, 0 }
	if _, err := c.Run(vdiTrace(t, 200), onlyZero); err != nil {
		t.Fatal(err)
	}
	if c.Targets[0].T.ReadsServed == 0 {
		t.Fatal("target 0 served nothing")
	}
	if c.Targets[1].T.ReadsServed != 0 || c.Targets[1].T.WritesServed != 0 {
		t.Fatal("target 1 should be idle under custom assignment")
	}
}

func TestDeterministicResults(t *testing.T) {
	run := func() *Result {
		c, err := New(congestionSpec())
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(vdiTrace(t, 400), nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.AggregatedGbps != b.AggregatedGbps || a.TotalCNPs != b.TotalCNPs || a.Duration != b.Duration {
		t.Fatalf("nondeterministic cluster run: %+v vs %+v", a, b)
	}
}

func TestPauseSeriesSpikesUnderCongestion(t *testing.T) {
	c, err := New(congestionSpec())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(vdiTrace(t, 1200), nil)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, p := range res.Pauses {
		total += p
	}
	if total == 0 {
		t.Fatal("pause series empty under congestion")
	}
	if uint64(total) > res.TotalCNPs {
		t.Fatalf("pause series total %v exceeds CNP count %d", total, res.TotalCNPs)
	}
}

func TestMultiInitiatorRelievesCongestion(t *testing.T) {
	// Table IV's 4:4 observation: spreading the same load over more
	// initiators reduces congestion signals.
	tr := vdiTrace(t, 800)
	run := func(inis int) *Result {
		spec := congestionSpec()
		spec.Initiators = inis
		spec.Targets = 2
		c, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	four := run(4)
	if four.TotalCNPs >= one.TotalCNPs {
		t.Fatalf("more initiators should relieve congestion: CNPs %d vs %d", four.TotalCNPs, one.TotalCNPs)
	}
}

// fakeTPM builds a cheap trained TPM for plumbing tests.
func fakeTPM(t *testing.T) *core.TPM {
	t.Helper()
	tpm := &core.TPM{NewRegressor: func() ml.Regressor { return &ml.KNNRegressor{K: 1} }}
	var samples []core.Sample
	for w := 1; w <= 8; w++ {
		ch := make([]float64, core.NumFeatures)
		ch[core.FeatReadFlowSpeed] = 1e9
		samples = append(samples, core.Sample{
			Ch: ch, W: float64(w),
			TputR: 16e9 / float64(w), TputW: 4e9 * float64(w),
		})
	}
	if err := tpm.Train(samples); err != nil {
		t.Fatal(err)
	}
	return tpm
}

func TestSRCPlumbingWithFakeTPM(t *testing.T) {
	spec := congestionSpec()
	spec.Mode = DCQCNSRC
	spec.TPM = fakeTPM(t)
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(vdiTrace(t, 500), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Submitted {
		t.Fatalf("incomplete: %d/%d", res.Completed, res.Submitted)
	}
	for _, tn := range c.Targets {
		if tn.Ctl == nil {
			t.Fatal("SRC controller missing")
		}
	}
}
