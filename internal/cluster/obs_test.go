package cluster

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"srcsim/internal/obs"
	"srcsim/internal/sim"
)

// runSummaryJSON builds a fresh congestion cluster (DCQCN-SRC with the
// fake TPM), runs the standard VDI trace, and returns the Summary JSON.
func runSummaryJSON(t *testing.T, mod func(*Spec)) []byte {
	t.Helper()
	spec := congestionSpec()
	spec.Mode = DCQCNSRC
	spec.TPM = fakeTPM(t)
	if mod != nil {
		mod(&spec)
	}
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(vdiTrace(t, 500), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTracingDoesNotPerturbRuns is the determinism regression: a seeded
// run with tracing and progress reporting enabled must produce a
// byte-identical Result summary to the same run with both disabled.
func TestTracingDoesNotPerturbRuns(t *testing.T) {
	plain := runSummaryJSON(t, nil)
	var progress bytes.Buffer
	traced := runSummaryJSON(t, func(s *Spec) {
		s.Trace = obs.NewTracer(0)
		s.Progress = &progress
		s.ProgressEvery = sim.Millisecond
	})
	if !bytes.Equal(plain, traced) {
		t.Fatalf("tracing perturbed the run:\nplain:  %s\ntraced: %s", plain, traced)
	}
	if progress.Len() == 0 {
		t.Fatal("no progress output")
	}
	if !strings.Contains(progress.String(), "srcsim: [DCQCN-SRC]") {
		t.Fatalf("progress line malformed: %q", progress.String())
	}
}

// TestMetricsSnapshotCoverage checks the acceptance floor: an
// instrumented run produces at least 15 distinct metric series spanning
// the instrumented components, and the snapshot survives Summary JSON.
func TestMetricsSnapshotCoverage(t *testing.T) {
	reg := obs.NewRegistry()
	out := runSummaryJSON(t, func(s *Spec) {
		s.Metrics = reg
	})

	snap := reg.Snapshot()
	if n := snap.NumSeries(); n < 15 {
		t.Fatalf("want >= 15 metric series, got %d", n)
	}
	components := map[string]bool{}
	collect := func(keys ...string) {
		for _, k := range keys {
			if i := strings.IndexByte(k, '/'); i > 0 {
				components[k[:i]] = true
			}
		}
	}
	for k := range snap.Counters {
		collect(k)
	}
	for k := range snap.Gauges {
		collect(k)
	}
	for k := range snap.Histograms {
		collect(k)
	}
	for _, want := range []string{"netsim", "dcqcn", "nvme", "ssd", "nvmeof", "core", "sim"} {
		if !components[want] {
			t.Errorf("no metric series from component %q (have %v)", want, components)
		}
	}

	var summary struct {
		Metrics *obs.Snapshot `json:"metrics"`
	}
	if err := json.Unmarshal(out, &summary); err != nil {
		t.Fatal(err)
	}
	if summary.Metrics == nil || summary.Metrics.NumSeries() != snap.NumSeries() {
		t.Fatal("metrics snapshot missing from Summary JSON")
	}
}

// TestTraceComponentCoverage checks that a traced run emits events from
// at least 4 components and that the Chrome export is valid JSON in
// trace-event format.
func TestTraceComponentCoverage(t *testing.T) {
	tr := obs.NewTracer(0)
	runSummaryJSON(t, func(s *Spec) {
		s.Trace = tr
	})

	tracks := map[string]bool{}
	for _, ev := range tr.Events() {
		tracks[ev.Track] = true
	}
	for _, want := range []string{"netsim", "dcqcn", "ssd", "core"} {
		if !tracks[want] {
			t.Errorf("no trace events on track %q (have %v)", want, tracks)
		}
	}
	if len(tracks) < 4 {
		t.Fatalf("want events from >= 4 components, got %v", tracks)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty chrome trace")
	}
	phases := map[string]bool{}
	var meta int
	for _, ev := range doc.TraceEvents {
		phases[ev.Ph] = true
		if ev.Ph == "M" {
			meta++
		}
	}
	if meta == 0 {
		t.Fatal("no process/thread metadata events")
	}
	for ph := range phases {
		switch ph {
		case "M", "i", "X", "C":
		default:
			t.Fatalf("unexpected trace phase %q", ph)
		}
	}
}
