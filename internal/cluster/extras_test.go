package cluster

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"srcsim/internal/sim"
)

func TestBackgroundTrafficTightensCongestion(t *testing.T) {
	tr := vdiTrace(t, 800)
	run := func(bg []BackgroundFlow) *Result {
		c, err := New(congestionSpec())
		if err != nil {
			t.Fatal(err)
		}
		if bg != nil {
			if err := c.AddBackground(bg); err != nil {
				t.Fatal(err)
			}
		}
		res, err := c.Run(tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	quiet := run(nil)
	// Two background flows from separate hosts into separate sinks: the
	// shared ToR gets busier but storage links keep their capacity.
	loaded := run([]BackgroundFlow{{RateGbps: 4}, {RateGbps: 4}})
	if loaded.Completed != loaded.Submitted {
		t.Fatalf("background run incomplete: %d/%d", loaded.Completed, loaded.Submitted)
	}
	// The fabric carried strictly more traffic; the storage workload
	// still completed. (Congestion counters may or may not rise at this
	// scale, but nothing may be lost.)
	if quiet.Completed != quiet.Submitted {
		t.Fatalf("quiet run incomplete")
	}
}

func TestBackgroundValidation(t *testing.T) {
	c, err := New(congestionSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddBackground([]BackgroundFlow{{RateGbps: 0}}); err == nil {
		t.Fatal("zero-rate background should error")
	}
	spec := congestionSpec()
	spec.UseClos = true
	spec.Clos.LinkRate = 10e9
	cc, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.AddBackground([]BackgroundFlow{{RateGbps: 1}}); err == nil {
		t.Fatal("Clos background should error")
	}
}

func TestClosedLoopRun(t *testing.T) {
	c, err := New(congestionSpec())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunClosedLoop(ClosedLoopSpec{
		QueueDepth: 16,
		Duration:   30 * sim.Millisecond,
		SizeBytes:  16 << 10,
		Seed:       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("closed loop completed nothing")
	}
	if res.ReadGbps <= 0 || res.WriteGbps <= 0 {
		t.Fatalf("throughput %v/%v", res.ReadGbps, res.WriteGbps)
	}
	if res.ReadIOPS <= 0 || res.WriteIOPS <= 0 {
		t.Fatalf("IOPS %v/%v", res.ReadIOPS, res.WriteIOPS)
	}
}

func TestClosedLoopDepthScalesThroughput(t *testing.T) {
	run := func(qd int) float64 {
		c, err := New(congestionSpec())
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.RunClosedLoop(ClosedLoopSpec{
			QueueDepth: qd,
			Duration:   30 * sim.Millisecond,
			SizeBytes:  16 << 10,
			Seed:       9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.ReadGbps + res.WriteGbps
	}
	shallow := run(1)
	deep := run(64)
	if deep <= shallow*1.5 {
		t.Fatalf("deep queue (%.2f) should clearly beat qd=1 (%.2f)", deep, shallow)
	}
}

func TestClosedLoopReadFraction(t *testing.T) {
	c, err := New(congestionSpec())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunClosedLoop(ClosedLoopSpec{
		QueueDepth:   16,
		Duration:     30 * sim.Millisecond,
		ReadFraction: 0.9,
		SizeBytes:    16 << 10,
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadIOPS <= 3*res.WriteIOPS {
		t.Fatalf("90%% read mix not reflected: R %.0f vs W %.0f IOPS", res.ReadIOPS, res.WriteIOPS)
	}
}

func TestResultSummaryJSON(t *testing.T) {
	c, err := New(congestionSpec())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(vdiTrace(t, 300), nil)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary()
	if sum.Mode != "DCQCN-Only" || sum.Completed != res.Completed || sum.AggregatedGbps != res.AggregatedGbps {
		t.Fatalf("summary mismatch: %+v", sum)
	}
	if sum.ReadLatP50Ms <= 0 || sum.ReadLatP99Ms < sum.ReadLatP50Ms {
		t.Fatalf("latency summary %+v", sum)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, sum) {
		t.Fatalf("JSON round trip: %+v vs %+v", back, sum)
	}
}
