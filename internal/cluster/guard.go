package cluster

import (
	"fmt"
	"time"

	"srcsim/internal/guard"
	"srcsim/internal/sim"
	"srcsim/internal/trace"
)

// flightRec is one submitted-but-unfinished request in the guard's
// in-flight ledger (maintained only when the liveness watchdog is
// armed).
type flightRec struct {
	req         trace.Request
	submittedAt sim.Time
}

// AuditInvariants verifies the cluster-level ledger: completions and
// failures never outrun submissions — checked continuously during the
// run, not just at the end.
func (c *Cluster) AuditInvariants() []guard.Violation {
	var vs []guard.Violation
	if c.completed+c.failed > c.total && c.total > 0 {
		vs = append(vs, guard.Violationf("cluster", "ledger-overrun",
			"completed %d + failed %d > submitted %d", c.completed, c.failed, c.total))
	}
	if c.completed < 0 || c.failed < 0 {
		vs = append(vs, guard.Violationf("cluster", "ledger-nonnegative",
			"completed %d failed %d", c.completed, c.failed))
	}
	return vs
}

// auditAll runs every layer's invariant check, tagging violations with
// the owning instance. Strictly read-only.
func (c *Cluster) auditAll() []guard.Violation {
	vs := c.AuditInvariants()
	vs = append(vs, c.Net.AuditInvariants()...)
	if c.plane != nil {
		if pvs := c.plane.AuditInvariants(); len(pvs) > 0 {
			vs = append(vs, guard.Tag(pvs, "ctrlplane")...)
		}
	}
	// Tags are only formatted for non-empty violation lists: the guard
	// polls this on every audit tick, and the clean path must not allocate.
	for i, ini := range c.Initiators {
		if ivs := ini.AuditInvariants(); len(ivs) > 0 {
			vs = append(vs, guard.Tag(ivs, fmt.Sprintf("initiator %d", i))...)
		}
	}
	for ti, tn := range c.Targets {
		if tvs := tn.T.AuditInvariants(); len(tvs) > 0 {
			vs = append(vs, guard.Tag(tvs, fmt.Sprintf("target %d", ti))...)
		}
		for di, dev := range tn.Devs {
			if dvs := dev.AuditInvariants(); len(dvs) > 0 {
				vs = append(vs, guard.Tag(dvs, fmt.Sprintf("target %d dev %d", ti, di))...)
			}
			// Arbiters are audited through the interface so every mode's
			// scheduler that implements the check participates.
			if a, ok := dev.Arbiter().(guard.Auditable); ok {
				if avs := a.AuditInvariants(); len(avs) > 0 {
					vs = append(vs, guard.Tag(avs, fmt.Sprintf("target %d dev %d", ti, di))...)
				}
			}
		}
	}
	return vs
}

// buildDump snapshots the cluster for a watchdog trip. The census walks
// only simulation state, so dumps from deterministic runs are
// byte-identical across repeats.
func (c *Cluster) buildDump() *guard.Dump {
	now := c.Eng.Now()
	d := &guard.Dump{
		SimTime:         now,
		EventsProcessed: c.Eng.Processed,
		PendingEvents:   c.Eng.Pending(),
		Submitted:       c.total,
		Completed:       c.completed,
		Failed:          c.failed,
		InFlightTotal:   len(c.flight),
	}
	if at, ok := c.Eng.NextEventAt(); ok {
		d.NextEventAt = at
	} else {
		d.HeapEmpty = true
	}
	// Oldest-first census, capped; selection is by (age, id) so map
	// iteration order cannot leak into the dump.
	recs := make([]flightRec, 0, len(c.flight))
	for _, r := range c.flight {
		recs = append(recs, r)
	}
	for i := 0; i < len(recs); i++ {
		for j := i + 1; j < len(recs); j++ {
			if recs[j].submittedAt < recs[i].submittedAt ||
				(recs[j].submittedAt == recs[i].submittedAt && recs[j].req.ID < recs[i].req.ID) {
				recs[i], recs[j] = recs[j], recs[i]
			}
		}
		if i >= guard.MaxDumpCommands {
			break
		}
	}
	if len(recs) > 0 {
		d.OldestAge = now - recs[0].submittedAt
	}
	lim := len(recs)
	if lim > guard.MaxDumpCommands {
		lim = guard.MaxDumpCommands
	}
	perIni := make([]int, len(c.Initiators))
	for _, r := range recs {
		perIni[r.req.Initiator]++
	}
	for _, r := range recs[:lim] {
		d.InFlight = append(d.InFlight, guard.CommandInfo{
			ID:          r.req.ID,
			Initiator:   r.req.Initiator,
			Target:      r.req.Target,
			Write:       r.req.Op == trace.Write,
			Bytes:       int64(r.req.Size),
			SubmittedAt: r.submittedAt,
			Age:         now - r.submittedAt,
		})
	}
	for i, ini := range c.Initiators {
		d.Initiators = append(d.Initiators, guard.InitiatorState{
			ID: i, InFlight: perIni[i], RetryPending: ini.PendingCount(),
		})
	}
	for ti, tn := range c.Targets {
		ts := guard.TargetState{
			ID:         ti,
			Inflight:   tn.T.InflightCount(),
			TXQCredit:  tn.T.TXQCredit(),
			TXQCap:     tn.T.TXQCap(),
			TXQWaiting: tn.T.ParkedCompletions(),
		}
		for di, dev := range tn.Devs {
			ts.DevOutstanding += dev.Outstanding()
			ts.DevParked += dev.Parked()
			ts.ArbPending += dev.Arbiter().Pending()
			if ssq := tn.SSQs[di]; ssq != nil {
				r, w := ssq.Tokens()
				pr, pw := ssq.PendingByOp()
				ts.SSQs = append(ts.SSQs, guard.SSQState{
					RTokens: r, WTokens: w, PendingR: pr, PendingW: pw,
				})
			}
		}
		d.Targets = append(d.Targets, ts)
	}
	d.Links = c.Net.LinkStates()
	return d
}

// installGuard arms the configured governance mechanisms around one Run
// call: the liveness watchdog and conservation auditor as sim-clock
// tickers, and cancellation/wall-budget/event-storm checks as an engine
// interrupt hook. It returns a teardown that detaches everything.
//
// All hooks are pure observers until the moment they trip: they read
// state and, on failure, record the verdict and call Eng.Stop(). An
// unarmed mechanism schedules nothing, so a run with the zero
// guard.Config is event-for-event identical to an unguarded one.
func (c *Cluster) installGuard() (teardown func()) {
	cfg := c.Spec.Guard
	if !cfg.Enabled() {
		return func() {}
	}
	var stops []func()

	if cfg.StallHorizon > 0 {
		c.flight = make(map[uint64]flightRec)
		lastDone := -1
		stops = append(stops, c.Eng.Ticker(cfg.CheckEvery, func() {
			if c.guardErr != nil {
				return
			}
			done := c.completed + c.failed
			progressed := done != lastDone
			lastDone = done
			if progressed || len(c.flight) == 0 {
				return
			}
			oldest := sim.MaxTime
			for _, r := range c.flight {
				if r.submittedAt < oldest {
					oldest = r.submittedAt
				}
			}
			if c.Eng.Now()-oldest <= cfg.StallHorizon {
				return
			}
			c.guardErr = &guard.StallError{
				Axis: "sim-time", Horizon: cfg.StallHorizon, Dump: c.buildDump(),
			}
			c.Eng.Stop()
		}))
	}

	if cfg.Audit {
		stops = append(stops, c.Eng.Ticker(cfg.AuditEvery, func() {
			if c.guardErr != nil {
				return
			}
			if vs := c.auditAll(); len(vs) > 0 {
				c.guardErr = &guard.ViolationError{At: c.Eng.Now(), Violations: vs}
				c.Eng.Stop()
			}
		}))
	}

	if cfg.Stop != nil || cfg.WallBudget > 0 || cfg.StallHorizon > 0 {
		wallStart := time.Now()
		var frozenAt sim.Time = -1
		var frozenEvents uint64
		c.Eng.SetInterrupt(cfg.InterruptEvery, func() {
			if c.guardErr != nil || c.truncated {
				return
			}
			if cfg.Stop != nil && cfg.Stop.Stopped() {
				c.truncated = true
				c.truncateReason = cfg.Stop.Reason()
				c.Eng.Stop()
				return
			}
			if cfg.WallBudget > 0 && time.Since(wallStart) > cfg.WallBudget {
				c.truncated = true
				c.truncateReason = fmt.Sprintf("wall budget %v exceeded", cfg.WallBudget)
				c.Eng.Stop()
				return
			}
			if cfg.StallHorizon > 0 {
				// The event-storm axis: events keep processing while the sim
				// clock stays frozen at one instant — a zero-delay livelock
				// no sim-time ticker can ever observe.
				if now := c.Eng.Now(); now != frozenAt {
					frozenAt, frozenEvents = now, 0
					return
				}
				frozenEvents += cfg.InterruptEvery
				if frozenEvents >= cfg.MaxEventsPerInstant {
					c.guardErr = &guard.StallError{
						Axis: "event-storm", Horizon: cfg.StallHorizon, Dump: c.buildDump(),
					}
					c.Eng.Stop()
				}
			}
		})
		stops = append(stops, func() { c.Eng.SetInterrupt(0, nil) })
	}

	return func() {
		for _, s := range stops {
			s()
		}
	}
}
