package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"srcsim/internal/atomicio"
	"srcsim/internal/cluster"
	"srcsim/internal/core"
	"srcsim/internal/devrun"
	"srcsim/internal/guard"
	"srcsim/internal/harness"
	"srcsim/internal/obs"
	"srcsim/internal/obs/live"
	"srcsim/internal/sweep/cache"
	"srcsim/internal/sweep/pool"
)

// jobSchemaVersion is baked into every job cache key; bump it whenever
// Payload's layout or any experiment's output semantics change, so
// stale cache entries miss instead of resurfacing.
const jobSchemaVersion = 1

// Payload is the cacheable part of one job's output: everything that is
// a pure function of (experiment, params, trained model). It carries no
// job ID or campaign context, so identical jobs across campaigns share
// one cache entry.
type Payload struct {
	// Text is the rendered figure/table, byte-identical to the serial
	// CLI's stdout for the same parameters.
	Text string `json:"text"`
	// Data is the experiment's machine-readable output.
	Data json.RawMessage `json:"data,omitempty"`
	// Metrics is the per-job registry snapshot with the wall-clock
	// "sim" profiling component stripped (it would break cache and
	// resume byte-identity).
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// Artifact is one job's on-disk record under <out>/jobs/<id>.json.
type Artifact struct {
	ID         string         `json:"id"`
	Experiment string         `json:"experiment"`
	Seed       uint64         `json:"seed"`
	Params     harness.Params `json:"params"`
	// Key is the job's content-address in the artifact cache.
	Key    string  `json:"key"`
	Output Payload `json:"output"`
}

// Report summarises one Run invocation. Counters describe this
// process's work (resumed jobs were skipped here, done in a previous
// one); the on-disk aggregate always covers the whole campaign.
type Report struct {
	Campaign  string
	SpecHash  string
	Total     int
	Done      int
	Failed    int
	Resumed   int
	CacheHits int
	Executed  int
	Truncated bool
	OutDir    string
}

// Runner executes campaigns. Zero value + Out is usable; all other
// fields are optional.
type Runner struct {
	// Out is the output directory (manifest, jobs/, report).
	Out string
	// Cache is the shared content-addressed artifact cache (nil = no
	// caching; TPM training and job outputs recompute every run).
	Cache *cache.Cache
	// Workers bounds job parallelism; 0 falls back to the campaign
	// spec, then GOMAXPROCS.
	Workers int
	// Stop cancels gracefully: running simulations drain at the next
	// event boundary, their partial output is discarded (the manifest
	// keeps them pending, so resume re-runs them), and the aggregate is
	// rebuilt from the jobs that did finish.
	Stop *guard.Stopper
	// Resume continues a prior run in Out: done jobs with artifacts on
	// disk are skipped, everything else re-runs. The manifest's spec
	// hash must match.
	Resume bool
	// Log receives human progress lines (nil = discarded).
	Log io.Writer
	// Board receives live campaign progress and an incrementally merged
	// metrics snapshot for the -serve inspector (nil = no publishing).
	Board *live.Board
	// ProgressPath overrides the progress.jsonl destination (machine-
	// readable job-transition log, appended atomically per event);
	// "" defaults to <out>/progress.jsonl.
	ProgressPath string
	// TPM overrides shared-model resolution (tests inject pre-trained
	// models); nil trains per the campaign spec, behind Cache.
	TPM func(kind harness.TPMKind) (*core.TPM, error)
}

func (r *Runner) logf(format string, args ...any) {
	if r.Log != nil {
		fmt.Fprintf(r.Log, format+"\n", args...)
	}
}

// tpmMemo resolves each TPMKind at most once per campaign, even with
// many workers requesting models concurrently.
type tpmMemo struct {
	mu     sync.Mutex
	train  func(kind harness.TPMKind) (*core.TPM, error)
	models map[harness.TPMKind]*core.TPM
	errs   map[harness.TPMKind]error
}

func (m *tpmMemo) get(kind harness.TPMKind) (*core.TPM, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if tpm, ok := m.models[kind]; ok {
		return tpm, nil
	}
	if err, ok := m.errs[kind]; ok {
		return nil, err
	}
	tpm, err := m.train(kind)
	if err != nil {
		m.errs[kind] = err
		return nil, err
	}
	m.models[kind] = tpm
	return tpm, nil
}

// SpecHash content-addresses the campaign spec; resume refuses a
// manifest whose hash differs (the job list may have changed).
func SpecHash(spec *CampaignSpec) string {
	return cache.Key("campaign", manifestVersion, spec)
}

// jobKey content-addresses one job's output: schema version, experiment
// name, the fully resolved params, and — for model-dependent
// experiments — the trained model's identity (kind, training inputs,
// feature-vector layout). The job ID is deliberately excluded.
func jobKey(exp *harness.Experiment, job Job, trainCount int, trainSeed uint64) string {
	var tpmPart []any
	if exp.TPM != harness.TPMNone {
		tpmPart = []any{exp.TPM.String(), trainCount, trainSeed, core.NumFeatures}
	}
	return cache.Key("job", jobSchemaVersion, job.Experiment, job.Params, tpmPart)
}

// Run expands and executes the campaign, returning the run report. Job
// failures do not abort the campaign (they are recorded in the manifest
// and counted); infrastructure errors — unreadable spec, unwritable
// output directory — do.
func (r *Runner) Run(spec *CampaignSpec) (*Report, error) {
	jobs, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	specHash := SpecHash(spec)

	if r.Out == "" {
		return nil, fmt.Errorf("sweep: runner needs an output directory")
	}
	jobsDir := filepath.Join(r.Out, "jobs")
	if err := os.MkdirAll(jobsDir, 0o755); err != nil {
		return nil, err
	}
	manifestPath := filepath.Join(r.Out, "manifest.json")

	manifest := &Manifest{
		Version:  manifestVersion,
		Campaign: spec.Name,
		SpecHash: specHash,
		Jobs:     map[string]*JobState{},
	}
	if r.Resume {
		prev, err := LoadManifest(manifestPath)
		if err != nil {
			return nil, err
		}
		if prev != nil {
			if prev.SpecHash != specHash {
				return nil, fmt.Errorf("sweep: cannot resume: campaign spec changed (manifest hash %.12s, spec hash %.12s)",
					prev.SpecHash, specHash)
			}
			manifest = prev
		}
	}

	train := r.TPM
	if train == nil {
		count, seed := spec.trainCount(), spec.trainSeed()
		train = func(kind harness.TPMKind) (*core.TPM, error) {
			r.logf("sweep: training %v TPM (count %d, seed %d)...", kind, count, seed)
			var tpm *core.TPM
			var hit bool
			var err error
			switch kind {
			case harness.TPMFig9:
				tpm, hit, err = devrun.TrainTPMCached(r.Cache, harness.Fig9Config(), count, seed)
			default:
				tpm, hit, err = harness.TrainCongestionTPMCached(r.Cache, count, seed)
			}
			if err == nil && hit {
				r.logf("sweep: reused cached %v TPM", kind)
			}
			return tpm, err
		}
	}
	memo := &tpmMemo{
		train:  train,
		models: map[harness.TPMKind]*core.TPM{},
		errs:   map[harness.TPMKind]error{},
	}

	rep := &Report{
		Campaign: spec.Name,
		SpecHash: specHash,
		Total:    len(jobs),
		OutDir:   r.Out,
	}
	var mu sync.Mutex // guards manifest, rep counters, and manifest writes

	workers := r.Workers
	if workers == 0 {
		workers = spec.Workers
	}
	r.logf("sweep: campaign %s: %d jobs", spec.Name, len(jobs))

	progressPath := r.ProgressPath
	if progressPath == "" {
		progressPath = filepath.Join(r.Out, "progress.jsonl")
	}
	prog, err := newProgressTracker(progressPath, spec.Name, len(jobs), workers, r.Board)
	if err != nil {
		return nil, err
	}
	defer prog.close()

	// liveSnaps feeds the inspector's /metrics an incrementally merged
	// view in completion order; the on-disk metrics.json is rebuilt in
	// job order by aggregate() and stays deterministic.
	var liveSnaps []obs.Snapshot

	p := pool.Pool{Workers: workers, Stop: r.Stop}
	poolErr := p.ForEach(len(jobs), func(i int) error {
		job := jobs[i]
		exp, _ := harness.LookupExperiment(job.Experiment)
		key := jobKey(exp, job, spec.trainCount(), spec.trainSeed())
		artRel := filepath.Join("jobs", job.ID+".json")
		artPath := filepath.Join(jobsDir, job.ID+".json")

		// Resume: a done job whose artifact survived needs no work.
		mu.Lock()
		st := manifest.Jobs[job.ID]
		mu.Unlock()
		if r.Resume && st != nil && st.Status == "done" && st.Key == key {
			if _, err := os.Stat(artPath); err == nil {
				mu.Lock()
				rep.Resumed++
				mu.Unlock()
				prog.jobResumed(job.ID)
				r.logf("sweep: %s resumed (already done)", job.ID)
				return nil
			}
		}

		prog.jobStarted(job.ID)
		jobStart := time.Now()
		payload, hit, runErr := r.runJob(exp, job, key, memo)
		wall := time.Since(jobStart)
		if payload == nil && runErr == nil {
			// Cancelled before or during the run: leave the job pending
			// for resume.
			prog.jobAbandoned(job.ID)
			return nil
		}

		mu.Lock()
		defer mu.Unlock()
		rep.Executed++
		if runErr != nil {
			rep.Failed++
			manifest.Jobs[job.ID] = &JobState{Key: key, Status: "failed", Error: runErr.Error()}
			prog.jobFinished(job.ID, false, false, wall)
			r.logf("sweep: %s FAILED: %v", job.ID, runErr)
			return manifest.write(manifestPath)
		}
		art := Artifact{
			ID:         job.ID,
			Experiment: job.Experiment,
			Seed:       job.Seed,
			Params:     job.Params,
			Key:        key,
			Output:     *payload,
		}
		if err := atomicio.WriteFile(artPath, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(art)
		}); err != nil {
			return err
		}
		rep.Done++
		if hit {
			rep.CacheHits++
			r.logf("sweep: %s done (cache hit)", job.ID)
		} else {
			r.logf("sweep: %s done", job.ID)
		}
		prog.jobFinished(job.ID, true, hit, wall)
		if r.Board != nil && payload.Metrics != nil {
			liveSnaps = append(liveSnaps, *payload.Metrics)
			r.Board.PublishSnapshot(obs.MergeSnapshots(liveSnaps...))
		}
		manifest.Jobs[job.ID] = &JobState{Key: key, Status: "done", Artifact: artRel}
		return manifest.write(manifestPath)
	})
	if poolErr != nil {
		return rep, poolErr
	}

	if r.Stop != nil && r.Stop.Stopped() {
		rep.Truncated = true
	}
	if err := r.aggregate(spec, specHash, jobs, manifest); err != nil {
		return rep, err
	}
	return rep, nil
}

// runJob resolves one job's payload: cache hit, or a live run of the
// registered experiment. A nil payload with nil error means the run was
// cancelled mid-flight and must stay pending.
func (r *Runner) runJob(exp *harness.Experiment, job Job, key string, memo *tpmMemo) (*Payload, bool, error) {
	if b, ok := r.Cache.Get(key); ok {
		var p Payload
		if err := json.Unmarshal(b, &p); err == nil {
			return &p, true, nil
		}
		// Corrupt entry: fall through and recompute (Put overwrites).
	}

	if r.Stop != nil && r.Stop.Stopped() {
		return nil, false, nil
	}

	reg := obs.NewRegistry()
	env := &harness.Env{
		TPM: memo.get,
		Mods: []func(*cluster.Spec){func(s *cluster.Spec) {
			s.Metrics = reg
			if r.Stop != nil {
				s.Guard.Stop = r.Stop
			}
		}},
	}
	out, err := exp.Run(env, job.Params)
	if err != nil {
		return nil, false, err
	}
	if r.Stop != nil && r.Stop.Stopped() {
		// The simulation drained early; its truncated output must not
		// enter the cache or the artifact tree.
		return nil, false, nil
	}

	data, err := json.Marshal(out.Data)
	if err != nil {
		return nil, false, fmt.Errorf("sweep: %s: marshal data: %w", job.ID, err)
	}
	p := &Payload{Text: out.Text, Data: data}
	if snap := reg.Snapshot().WithoutComponent("sim"); snap.NumSeries() > 0 {
		p.Metrics = &snap
	}

	if err := r.Cache.Put(key, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(p)
	}); err != nil {
		return nil, false, err
	}
	return p, false, nil
}

// aggregate rebuilds the campaign-level outputs — report.txt,
// aggregate.json, metrics.json — from the per-job artifact files, in
// job-ID (expansion) order, every run. They carry no timestamps or
// run-local counters, so a resumed campaign reproduces the
// uninterrupted run's bytes exactly.
func (r *Runner) aggregate(spec *CampaignSpec, specHash string, jobs []Job, manifest *Manifest) error {
	var arts []Artifact
	var failed []string
	for _, job := range jobs {
		st := manifest.Jobs[job.ID]
		if st == nil {
			continue
		}
		if st.Status == "failed" {
			failed = append(failed, job.ID)
			continue
		}
		b, err := os.ReadFile(filepath.Join(r.Out, st.Artifact))
		if err != nil {
			return fmt.Errorf("sweep: aggregate: %w", err)
		}
		var art Artifact
		if err := json.Unmarshal(b, &art); err != nil {
			return fmt.Errorf("sweep: aggregate %s: %w", st.Artifact, err)
		}
		arts = append(arts, art)
	}

	// report.txt: every finished job's rendered figure/table.
	var rep strings.Builder
	fmt.Fprintf(&rep, "campaign %s\nspec %s\n", spec.Name, specHash)
	for _, art := range arts {
		fmt.Fprintf(&rep, "\n== %s %s %s\n", art.ID, art.Experiment, formatParams(art.Params))
		rep.WriteString(art.Output.Text)
	}
	for _, id := range failed {
		fmt.Fprintf(&rep, "\n== %s FAILED: %s\n", id, manifest.Jobs[id].Error)
	}
	if err := atomicio.WriteFile(filepath.Join(r.Out, "report.txt"), func(w io.Writer) error {
		_, err := io.WriteString(w, rep.String())
		return err
	}); err != nil {
		return err
	}

	// aggregate.json: the machine-readable campaign record.
	agg := struct {
		Campaign string     `json:"campaign"`
		SpecHash string     `json:"spec_hash"`
		Jobs     []Artifact `json:"jobs"`
		Failed   []string   `json:"failed,omitempty"`
	}{spec.Name, specHash, arts, failed}
	if err := atomicio.WriteFile(filepath.Join(r.Out, "aggregate.json"), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(agg)
	}); err != nil {
		return err
	}

	// metrics.json: cross-job merged registry snapshot, merge in job
	// order (the quantile merge is order-sensitive; see obs).
	var snaps []obs.Snapshot
	for _, art := range arts {
		if art.Output.Metrics != nil {
			snaps = append(snaps, *art.Output.Metrics)
		}
	}
	if len(snaps) > 0 {
		merged := obs.MergeSnapshots(snaps...)
		// The inspector's final /metrics view matches metrics.json
		// exactly (job order), replacing the completion-order estimate.
		r.Board.PublishSnapshot(merged)
		if err := atomicio.WriteFile(filepath.Join(r.Out, "metrics.json"), func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(merged)
		}); err != nil {
			return err
		}
	}
	return nil
}

// formatParams renders a resolved parameter set with sorted keys.
func formatParams(p harness.Params) string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", k, p[k])
	}
	b.WriteByte('}')
	return b.String()
}
