// Package cache is the sweep subsystem's content-addressed artifact
// store. An artifact is any byte blob whose production is a pure
// function of an input description — a trained TPM, a finished
// experiment's result JSON. The key is the SHA-256 of the canonical
// (JSON) encoding of that description, so two runs that would compute
// the same thing resolve to the same file, across processes and across
// the test suite. Writes go through internal/atomicio, so a crash
// mid-store leaves the cache either without the entry or with the
// complete entry — never a torn artifact that a later run would
// half-read.
//
// Cache keys must include everything the computation depends on,
// including a version component for the producing code (bump it when
// the algorithm changes); the store itself never invalidates.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"srcsim/internal/atomicio"
)

// Cache is a directory of content-addressed artifacts. A nil *Cache is
// valid and always misses, so callers can thread an optional cache
// without branching.
type Cache struct {
	dir string
}

// New returns a cache rooted at dir (created lazily on first store).
func New(dir string) *Cache {
	if dir == "" {
		return nil
	}
	return &Cache{dir: dir}
}

// Dir returns the cache root ("" on nil).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// Key derives a content address from the canonical JSON encoding of
// parts. Each part must marshal deterministically (structs, strings,
// numbers, and maps — encoding/json sorts map keys). Unencodable parts
// panic: keys are built from static descriptions, so that is a
// programming error, not a runtime condition.
func Key(parts ...any) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	for _, p := range parts {
		if err := enc.Encode(p); err != nil {
			panic(fmt.Sprintf("cache: unencodable key part %T: %v", p, err))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// path maps a key to its file, sharded by the first byte so one
// directory never accumulates every artifact.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key)
}

// Open returns a reader over the cached artifact, or ok=false on a
// miss (or a nil cache).
func (c *Cache) Open(key string) (io.ReadCloser, bool) {
	if c == nil {
		return nil, false
	}
	f, err := os.Open(c.path(key))
	if err != nil {
		return nil, false
	}
	return f, true
}

// Get reads the whole cached artifact, or ok=false on a miss.
func (c *Cache) Get(key string) ([]byte, bool) {
	r, ok := c.Open(key)
	if !ok {
		return nil, false
	}
	defer r.Close()
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, false
	}
	return b, true
}

// Put stores the artifact produced by write under key, crash-safely.
// On a nil cache it runs write against io.Discard so producers always
// observe one code path.
func (c *Cache) Put(key string, write func(io.Writer) error) error {
	if c == nil {
		return write(io.Discard)
	}
	p := c.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o777); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	return atomicio.WriteFile(p, write)
}

// GetOrCompute returns the artifact under key, computing and storing it
// on a miss. hit reports whether the artifact came from the store.
func (c *Cache) GetOrCompute(key string, compute func(io.Writer) error) (b []byte, hit bool, err error) {
	if b, ok := c.Get(key); ok {
		return b, true, nil
	}
	var buf []byte
	err = c.Put(key, func(w io.Writer) error {
		cw := &captureWriter{w: w}
		if err := compute(cw); err != nil {
			return err
		}
		buf = cw.buf
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	return buf, false, nil
}

// captureWriter tees writes into memory so GetOrCompute can return the
// bytes it just stored without re-reading the file.
type captureWriter struct {
	w   io.Writer
	buf []byte
}

func (cw *captureWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.buf = append(cw.buf, p[:n]...)
	return n, err
}
