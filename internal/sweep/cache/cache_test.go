package cache

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestKeyDeterministicAndSensitive(t *testing.T) {
	type spec struct {
		Name  string
		Count int
	}
	a := Key("v1", spec{"fig7", 100})
	b := Key("v1", spec{"fig7", 100})
	if a != b {
		t.Fatalf("same parts, different keys: %s vs %s", a, b)
	}
	if Key("v1", spec{"fig7", 101}) == a {
		t.Fatal("count change did not change key")
	}
	if Key("v2", spec{"fig7", 100}) == a {
		t.Fatal("version change did not change key")
	}
	// Map keys are sorted by encoding/json, so insertion order is
	// irrelevant.
	m1 := map[string]string{"a": "1", "b": "2"}
	m2 := map[string]string{"b": "2", "a": "1"}
	if Key(m1) != Key(m2) {
		t.Fatal("map insertion order leaked into key")
	}
}

func TestGetOrComputeStoresAndHits(t *testing.T) {
	c := New(t.TempDir())
	key := Key("artifact", 1)
	computes := 0
	compute := func(w io.Writer) error {
		computes++
		_, err := w.Write([]byte("payload"))
		return err
	}
	b, hit, err := c.GetOrCompute(key, compute)
	if err != nil || hit || string(b) != "payload" {
		t.Fatalf("first: b=%q hit=%v err=%v", b, hit, err)
	}
	b, hit, err = c.GetOrCompute(key, compute)
	if err != nil || !hit || string(b) != "payload" {
		t.Fatalf("second: b=%q hit=%v err=%v", b, hit, err)
	}
	if computes != 1 {
		t.Fatalf("computed %d times", computes)
	}
}

func TestComputeErrorStoresNothing(t *testing.T) {
	c := New(t.TempDir())
	key := Key("broken")
	boom := errors.New("boom")
	_, _, err := c.GetOrCompute(key, func(w io.Writer) error {
		w.Write([]byte("partial"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("failed compute left an artifact")
	}
	// The shard dir may exist but must hold no files.
	filepath.WalkDir(c.Dir(), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			t.Fatalf("stray file %s", path)
		}
		return nil
	})
}

func TestNilCacheMissesAndComputes(t *testing.T) {
	var c *Cache
	if _, ok := c.Get("ab"); ok {
		t.Fatal("nil cache hit")
	}
	b, hit, err := c.GetOrCompute(Key("x"), func(w io.Writer) error {
		_, err := w.Write([]byte("fresh"))
		return err
	})
	if err != nil || hit || string(b) != "fresh" {
		t.Fatalf("nil cache: b=%q hit=%v err=%v", b, hit, err)
	}
	if New("") != nil {
		t.Fatal(`New("") should be nil`)
	}
}

func TestPutThenOpenRoundTrip(t *testing.T) {
	c := New(t.TempDir())
	key := Key("roundtrip")
	if err := c.Put(key, func(w io.Writer) error {
		_, err := w.Write([]byte{1, 2, 3})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	r, ok := c.Open(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	defer r.Close()
	b, _ := io.ReadAll(r)
	if !bytes.Equal(b, []byte{1, 2, 3}) {
		t.Fatalf("got %v", b)
	}
}
