package sweep

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"srcsim/internal/core"
	"srcsim/internal/devrun"
	"srcsim/internal/harness"
	"srcsim/internal/obs/live"
)

// readProgress parses every progress.jsonl line, failing on any torn or
// invalid line — the file is appended one whole line at a time.
func readProgress(t *testing.T, dir string) []progressEvent {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, "progress.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var evs []progressEvent
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev progressEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad progress line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return evs
}

// TestProgressLog: a campaign writes progress.jsonl by default — one
// start and one done event per job, monotone counters, and a final
// state accounting for every job — and publishes the same data to the
// live board.
func TestProgressLog(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out")
	board := live.NewBoard()
	r := &Runner{Out: out, Board: board}
	rep, err := r.Run(fastSpec())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed > 0 {
		t.Fatalf("failed jobs: %d", rep.Failed)
	}

	evs := readProgress(t, out)
	starts, dones := map[string]int{}, map[string]int{}
	lastDone := 0
	for _, ev := range evs {
		switch ev.Event {
		case "start":
			starts[ev.Job]++
			if dones[ev.Job] > 0 {
				t.Fatalf("%s started after done", ev.Job)
			}
		case "done":
			dones[ev.Job]++
		default:
			t.Fatalf("unexpected event %q", ev.Event)
		}
		if ev.Done < lastDone {
			t.Fatalf("done counter went backwards: %d -> %d", lastDone, ev.Done)
		}
		lastDone = ev.Done
		if ev.Total != rep.Total {
			t.Fatalf("event total %d, want %d", ev.Total, rep.Total)
		}
	}
	if len(starts) != rep.Total || len(dones) != rep.Total {
		t.Fatalf("saw %d starts / %d dones for %d jobs", len(starts), len(dones), rep.Total)
	}
	for id, n := range dones {
		if n != 1 || starts[id] != 1 {
			t.Fatalf("job %s: %d starts, %d dones", id, starts[id], n)
		}
	}
	last := evs[len(evs)-1]
	if last.Done != rep.Total || last.Pending != 0 || len(last.Running) != 0 {
		t.Fatalf("final state: %+v", last.CampaignProgress)
	}

	// The board carries the same final progress. (fastSpec's analytic
	// jobs produce no metrics snapshots; TestBoardMergedMetrics covers
	// the /metrics path with a cluster experiment.)
	bp, ok := board.Progress()
	if !ok || bp.Done != rep.Total {
		t.Fatalf("board progress: %+v (ok=%v)", bp, ok)
	}
}

// TestBoardMergedMetrics: cluster experiments publish their merged
// registry snapshots to the live board as jobs complete.
func TestBoardMergedMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("trains (or loads) the shared congestion TPM; skipped with -short")
	}
	tpm, _, err := harness.TrainCongestionTPMCached(devrun.TPMCacheFromEnv(), 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	spec := &CampaignSpec{
		Name: "board",
		Experiments: []ExperimentSpec{{
			Experiment: "fig7",
			Params:     map[string]string{"requests": "150", "seed": "7"},
		}},
	}
	board := live.NewBoard()
	r := &Runner{
		Out:   filepath.Join(t.TempDir(), "out"),
		Board: board,
		TPM:   func(kind harness.TPMKind) (*core.TPM, error) { return tpm, nil },
	}
	rep, err := r.Run(spec)
	if err != nil || rep.Done != 1 {
		t.Fatalf("run: %v (done %d)", err, rep.Done)
	}
	snap := board.Snapshot()
	if snap.NumSeries() == 0 {
		t.Fatal("board has no merged metrics snapshot")
	}
	// The published snapshot must match the on-disk metrics.json view:
	// no run-local "sim" profiling component.
	for k := range snap.Counters {
		if strings.HasPrefix(k, "sim/") {
			t.Fatalf("board snapshot leaked profiling series %q", k)
		}
	}
}

// TestProgressResumeEvents: resuming appends to the same file and marks
// previously finished jobs as resumed, with an accurate final state.
func TestProgressResumeEvents(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out")
	r := &Runner{Out: out}
	rep, err := r.Run(fastSpec())
	if err != nil || rep.Failed > 0 {
		t.Fatalf("run: %v (failed %d)", err, rep.Failed)
	}
	firstLines := len(readProgress(t, out))

	r2 := &Runner{Out: out, Resume: true}
	rep2, err := r2.Run(fastSpec())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Resumed != rep.Total {
		t.Fatalf("resumed %d, want %d", rep2.Resumed, rep.Total)
	}

	evs := readProgress(t, out)
	resumed := 0
	for _, ev := range evs[firstLines:] {
		if ev.Event != "resumed" {
			t.Fatalf("unexpected event on resume: %q", ev.Event)
		}
		resumed++
	}
	if resumed != rep.Total {
		t.Fatalf("%d resumed events, want %d", resumed, rep.Total)
	}
	last := evs[len(evs)-1]
	if last.Resumed != rep.Total || last.Pending != 0 {
		t.Fatalf("final resumed state: %+v", last.CampaignProgress)
	}
}

// TestProgressETA: the ETA extrapolates from executed-job wall times;
// it must appear once a non-cached job completes with jobs remaining.
func TestProgressETA(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out")
	r := &Runner{Out: out, Workers: 1}
	if rep, err := r.Run(fastSpec()); err != nil || rep.Failed > 0 {
		t.Fatalf("run: %v", err)
	}
	evs := readProgress(t, out)
	sawEta := false
	for _, ev := range evs {
		if ev.Event == "done" && ev.Pending+len(ev.Running) > 0 && ev.EtaMs > 0 {
			sawEta = true
		}
	}
	if !sawEta {
		t.Fatal("no mid-campaign ETA recorded")
	}
}
