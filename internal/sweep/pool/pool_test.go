package pool

import (
	"errors"
	"sync/atomic"
	"testing"

	"srcsim/internal/guard"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	const n = 100
	var counts [n]int32
	err := Pool{Workers: 7}.ForEach(n, func(i int) error {
		atomic.AddInt32(&counts[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	e3, e7 := errors.New("e3"), errors.New("e7")
	err := Pool{Workers: 4}.ForEach(10, func(i int) error {
		switch i {
		case 3:
			return e3
		case 7:
			return e7
		}
		return nil
	})
	if err != e3 {
		t.Fatalf("got %v, want lowest-index error e3", err)
	}
}

func TestForEachZeroJobs(t *testing.T) {
	if err := (Pool{}).ForEach(0, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachStopSkipsUnstartedJobs(t *testing.T) {
	st := guard.NewStopper()
	var ran int32
	// Single worker: stop after job 2 completes; later indexes drain
	// without running.
	err := Pool{Workers: 1, Stop: st}.ForEach(50, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 2 {
			st.Stop("test")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&ran); got != 3 {
		t.Fatalf("ran %d jobs, want 3 (0..2)", got)
	}
	if !st.Stopped() {
		t.Fatal("stopper should report fired")
	}
}
