// Package pool is the sweep subsystem's worker pool: it schedules
// independent indexed jobs across a bounded set of goroutines. Every
// parallel fan-out in the repo (the Fig. 5 weight sweep, TPM
// training-sample collection, campaign execution) runs through this one
// code path, so cancellation and error semantics are uniform: each job
// stays single-threaded and deterministic — parallelism is only across
// jobs — and results must be written into index-addressed slots so no
// ordering leaks into output.
package pool

import (
	"runtime"
	"sync"

	"srcsim/internal/guard"
)

// Pool runs indexed jobs across bounded workers. The zero value is
// ready to use: GOMAXPROCS workers, no cancellation.
type Pool struct {
	// Workers bounds concurrency; <= 0 uses runtime.GOMAXPROCS(0).
	Workers int
	// Stop, when non-nil, is polled before each job starts: once fired,
	// unstarted jobs are skipped (ForEach still waits for in-flight jobs
	// to finish). Jobs that need finer-grained cancellation should also
	// observe the same Stopper internally (cluster runs do, via
	// Spec.Guard.Stop).
	Stop *guard.Stopper
}

// ForEach runs fn(i) for every i in [0, n), at most Workers at a time,
// and returns the lowest-index error (nil when every executed job
// succeeded). Errors do not cancel other jobs — every index is still
// attempted — so a deterministic job set yields a deterministic error
// regardless of scheduling. Callers using Stop must check
// Stop.Stopped() themselves to learn whether the set was cut short.
func (p Pool) ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if p.Stop != nil && p.Stop.Stopped() {
					continue // drain without running
				}
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
