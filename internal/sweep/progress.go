package sweep

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"time"

	"srcsim/internal/obs/live"
)

// progressEvent is one line of <out>/progress.jsonl: the job transition
// that happened plus the full campaign progress after it. Headless runs
// and the live inspector's /progress endpoint therefore expose the same
// data — the file is the event log, the endpoint the latest line.
//
// progress.jsonl carries wall-clock timings and run-local state, so it
// is deliberately excluded from the campaign's byte-determinism set
// (report.txt, aggregate.json, metrics.json).
type progressEvent struct {
	Event  string  `json:"event"` // start | done | failed | resumed
	Job    string  `json:"job"`
	Cached bool    `json:"cached,omitempty"`
	WallMs float64 `json:"wall_ms,omitempty"`
	live.CampaignProgress
}

// progressTracker folds job transitions into a CampaignProgress,
// appends each transition to progress.jsonl (one Write per line, on an
// O_APPEND descriptor, so concurrent workers never interleave partial
// lines), and publishes the latest state to the live board.
type progressTracker struct {
	mu      sync.Mutex
	f       *os.File // nil = file disabled
	board   *live.Board
	start   time.Time
	total   int
	workers int

	campaign  string
	done      int
	failed    int
	resumed   int
	cacheHits int
	running   map[string]struct{}

	// Mean wall time over jobs executed in this process feeds the ETA;
	// cache hits and resumed jobs are excluded (they cost ~nothing and
	// would collapse the estimate).
	wallSum time.Duration
	wallN   int
}

// newProgressTracker opens path for append (empty path disables the
// file; the board may be nil too, making the tracker a cheap no-op).
func newProgressTracker(path, campaign string, total, workers int, board *live.Board) (*progressTracker, error) {
	var f *os.File
	if path != "" {
		var err error
		f, err = os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &progressTracker{
		f:        f,
		board:    board,
		start:    time.Now(),
		total:    total,
		workers:  workers,
		campaign: campaign,
		running:  map[string]struct{}{},
	}, nil
}

// snapshotLocked builds the current CampaignProgress; callers hold mu.
func (p *progressTracker) snapshotLocked() live.CampaignProgress {
	running := make([]string, 0, len(p.running))
	for id := range p.running {
		running = append(running, id)
	}
	// Sorted for stable JSON; map order is random.
	for i := 1; i < len(running); i++ {
		for j := i; j > 0 && running[j] < running[j-1]; j-- {
			running[j], running[j-1] = running[j-1], running[j]
		}
	}
	pending := p.total - p.done - p.failed - p.resumed - len(running)
	if pending < 0 {
		pending = 0
	}
	cp := live.CampaignProgress{
		Campaign:  p.campaign,
		Total:     p.total,
		Done:      p.done,
		Failed:    p.failed,
		Resumed:   p.resumed,
		CacheHits: p.cacheHits,
		Running:   running,
		Pending:   pending,
		ElapsedMs: float64(time.Since(p.start)) / float64(time.Millisecond),
	}
	if p.wallN > 0 {
		mean := float64(p.wallSum) / float64(p.wallN)
		remaining := float64(pending + len(running))
		cp.EtaMs = mean * remaining / float64(p.workers) / float64(time.Millisecond)
	}
	return cp
}

// emitLocked appends one event line and publishes the board state.
func (p *progressTracker) emitLocked(event, job string, cached bool, wall time.Duration) {
	cp := p.snapshotLocked()
	p.board.PublishProgress(cp)
	if p.f == nil {
		return
	}
	ev := progressEvent{Event: event, Job: job, Cached: cached, CampaignProgress: cp}
	if wall > 0 {
		ev.WallMs = float64(wall) / float64(time.Millisecond)
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return
	}
	// One Write per line on an O_APPEND fd: atomic with respect to other
	// appends, so a tail -f or a crash never sees a torn line.
	p.f.Write(append(line, '\n'))
}

func (p *progressTracker) jobStarted(id string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.running[id] = struct{}{}
	p.emitLocked("start", id, false, 0)
}

func (p *progressTracker) jobResumed(id string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.running, id)
	p.resumed++
	p.emitLocked("resumed", id, false, 0)
}

// jobFinished records a done/failed transition. ok=false means failed;
// cached marks a content-cache hit; wall is the job's execution time
// (0 for cache hits, which are excluded from the ETA estimate).
func (p *progressTracker) jobFinished(id string, ok, cached bool, wall time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.running, id)
	event := "done"
	if ok {
		p.done++
		if cached {
			p.cacheHits++
		}
	} else {
		p.failed++
		event = "failed"
	}
	if !cached {
		p.wallSum += wall
		p.wallN++
	}
	p.emitLocked(event, id, cached, wall)
}

// jobAbandoned reverses jobStarted for a cancelled run that stays
// pending in the manifest (no event line; the job did not transition).
func (p *progressTracker) jobAbandoned(id string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.running, id)
}

// close flushes nothing (every line is already on disk) and releases
// the file.
func (p *progressTracker) close() {
	if p == nil || p.f == nil {
		return
	}
	p.f.Close()
}
