package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"srcsim/internal/atomicio"
)

// manifestVersion guards the on-disk manifest schema.
const manifestVersion = 1

// JobState is one job's entry in the resume manifest. Jobs that were
// still running (or never started) when the process died simply have no
// entry — resume re-runs them.
type JobState struct {
	// Key is the job's content-address in the artifact cache.
	Key string `json:"key"`
	// Status is "done" or "failed".
	Status string `json:"status"`
	// Artifact is the per-job artifact path relative to the output
	// directory (set when Status is "done").
	Artifact string `json:"artifact,omitempty"`
	// Error preserves the failure (set when Status is "failed").
	Error string `json:"error,omitempty"`
}

// Manifest is the crash-safe campaign checkpoint: it is rewritten
// atomically after every job completion, so at any kill point it lists
// exactly the jobs whose artifacts are durably on disk.
type Manifest struct {
	Version  int    `json:"version"`
	Campaign string `json:"campaign"`
	// SpecHash content-addresses the expanded campaign; resume refuses
	// to continue under an edited spec.
	SpecHash string               `json:"spec_hash"`
	Jobs     map[string]*JobState `json:"jobs"`
}

// LoadManifest reads a manifest file; a missing file returns (nil, nil).
func LoadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("sweep: manifest %s: %w", path, err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("sweep: manifest %s: version %d, want %d", path, m.Version, manifestVersion)
	}
	if m.Jobs == nil {
		m.Jobs = map[string]*JobState{}
	}
	return &m, nil
}

// write persists the manifest atomically (temp file + fsync + rename),
// so a crash mid-write leaves the previous checkpoint intact.
func (m *Manifest) write(path string) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}
