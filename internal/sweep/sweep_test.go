package sweep

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"srcsim/internal/core"
	"srcsim/internal/devrun"
	"srcsim/internal/guard"
	"srcsim/internal/harness"
	"srcsim/internal/sweep/cache"
)

// fastSpec is a campaign that needs no TPM training: an analytic fig2
// grid plus two tiny chaos soaks. Used by the orchestration tests,
// where the subject is scheduling/caching/resume, not the simulation.
func fastSpec() *CampaignSpec {
	return &CampaignSpec{
		Name: "fast",
		Seed: 7,
		Experiments: []ExperimentSpec{
			{Experiment: "fig2", Grid: map[string][]string{"cut_factor": {"0.25", "0.5", "0.75"}}},
			{Experiment: "chaos-soak", Params: map[string]string{"requests": "120"},
				Grid: map[string][]string{"seed": {"7", "8"}}},
		},
	}
}

// TestExpandDeterminism: expansion is a pure function of the spec —
// same spec, same job list; the master seed only moves derived seeds.
func TestExpandDeterminism(t *testing.T) {
	a, err := fastSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, err := fastSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("expansion not deterministic:\n%v\n%v", a, b)
	}

	wantIDs := []string{"00-fig2#000", "00-fig2#001", "00-fig2#002", "01-chaos-soak#000", "01-chaos-soak#001"}
	for i, j := range a {
		if j.ID != wantIDs[i] {
			t.Fatalf("job %d ID %s, want %s", i, j.ID, wantIDs[i])
		}
	}

	// Grid-pinned seeds survive untouched.
	if a[3].Seed != 7 || a[4].Seed != 8 {
		t.Fatalf("pinned seeds rewritten: %d %d", a[3].Seed, a[4].Seed)
	}

	// A different master seed re-derives unpinned seeds only.
	spec := fastSpec()
	spec.Experiments[1].Grid = nil // chaos seed now unpinned -> derived
	c1, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	spec2 := fastSpec()
	spec2.Experiments[1].Grid = nil
	spec2.Seed = 8
	c2, err := spec2.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if c1[3].Seed == c2[3].Seed {
		t.Fatalf("derived seed ignored the campaign master seed: %d", c1[3].Seed)
	}
	if c1[3].Seed == 0 || c1[3].Params["seed"] == "" {
		t.Fatalf("derived seed missing: %+v", c1[3])
	}
}

// TestExpandOdometerOrder: axes iterate in sorted-name order with the
// last axis fastest, so grid declaration order cannot change job IDs.
func TestExpandOdometerOrder(t *testing.T) {
	spec := &CampaignSpec{
		Name: "grid",
		Experiments: []ExperimentSpec{{
			Experiment: "fig7",
			Grid: map[string][]string{
				"seed":     {"1", "2"},
				"requests": {"100", "200"},
			},
		}},
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 4 {
		t.Fatalf("jobs %d, want 4", len(jobs))
	}
	// Axes sorted: requests, seed; seed varies fastest.
	want := []struct{ requests, seed string }{
		{"100", "1"}, {"100", "2"}, {"200", "1"}, {"200", "2"},
	}
	for i, w := range want {
		if jobs[i].Params["requests"] != w.requests || jobs[i].Params["seed"] != w.seed {
			t.Fatalf("job %d = %v, want %v", i, jobs[i].Params, w)
		}
	}
}

// TestExpandRejectsBadSpecs: unknown experiments and parameter typos
// fail expansion, before any job runs.
func TestExpandRejectsBadSpecs(t *testing.T) {
	spec := &CampaignSpec{Name: "bad", Experiments: []ExperimentSpec{{Experiment: "fig404"}}}
	if _, err := spec.Expand(); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	spec = &CampaignSpec{Name: "bad", Experiments: []ExperimentSpec{
		{Experiment: "fig2", Params: map[string]string{"cut_facto": "0.5"}}}}
	if _, err := spec.Expand(); err == nil {
		t.Fatal("typo'd parameter accepted")
	}
	spec = &CampaignSpec{Name: "bad", Experiments: []ExperimentSpec{
		{Experiment: "fig2", Grid: map[string][]string{"cut_factor": {}}}}}
	if _, err := spec.Expand(); err == nil {
		t.Fatal("empty grid axis accepted")
	}
}

// TestParseCampaignStrict: unknown spec fields are rejected.
func TestParseCampaignStrict(t *testing.T) {
	_, err := ParseCampaign(strings.NewReader(`{"name":"x","experiments":[{"experiment":"fig2"}],"wokers":4}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseCampaign(strings.NewReader(`{"name":"x"}`)); err == nil {
		t.Fatal("empty campaign accepted")
	}
}

// readOutputs loads the byte-identity-relevant campaign outputs.
func readOutputs(t *testing.T, dir string) (report, aggregate []byte) {
	t.Helper()
	report, err := os.ReadFile(filepath.Join(dir, "report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	aggregate, err = os.ReadFile(filepath.Join(dir, "aggregate.json"))
	if err != nil {
		t.Fatal(err)
	}
	return report, aggregate
}

// TestCacheHitByteIdentity: a second run of the same campaign against a
// shared cache executes every job as a cache hit and reproduces the
// aggregate outputs byte-for-byte in a fresh output directory.
func TestCacheHitByteIdentity(t *testing.T) {
	c := cache.New(filepath.Join(t.TempDir(), "cache"))

	run := func(out string) *Report {
		r := &Runner{Out: out, Cache: c}
		rep, err := r.Run(fastSpec())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed > 0 {
			t.Fatalf("failed jobs: %d", rep.Failed)
		}
		return rep
	}

	out1 := filepath.Join(t.TempDir(), "run1")
	rep1 := run(out1)
	if rep1.CacheHits != 0 {
		t.Fatalf("first run hit the cache: %d", rep1.CacheHits)
	}

	out2 := filepath.Join(t.TempDir(), "run2")
	rep2 := run(out2)
	if rep2.CacheHits != rep2.Total || rep2.Executed != rep2.Total {
		t.Fatalf("second run: hits %d/%d executed %d", rep2.CacheHits, rep2.Total, rep2.Executed)
	}

	r1, a1 := readOutputs(t, out1)
	r2, a2 := readOutputs(t, out2)
	if !bytes.Equal(r1, r2) {
		t.Fatalf("report.txt diverged:\n%s\n---\n%s", r1, r2)
	}
	if !bytes.Equal(a1, a2) {
		t.Fatalf("aggregate.json diverged")
	}
}

// stopAfter fires the stopper once it has seen n job-completion log
// lines; with Workers=1 this deterministically interrupts a campaign
// mid-flight, simulating a kill between two jobs.
type stopAfter struct {
	stop *guard.Stopper
	n    int
	seen int
}

func (s *stopAfter) Write(p []byte) (int, error) {
	if strings.Contains(string(p), " done") {
		s.seen++
		if s.seen == s.n {
			s.stop.Stop("test kill")
		}
	}
	return len(p), nil
}

// TestResumeAfterKillByteIdentity: interrupt a campaign after two jobs,
// resume it, and require (a) the finished jobs are not recomputed and
// (b) the final outputs are byte-identical to an uninterrupted run.
func TestResumeAfterKillByteIdentity(t *testing.T) {
	// Reference: uninterrupted run, separate cache so nothing leaks
	// between the two campaigns.
	refOut := filepath.Join(t.TempDir(), "ref")
	ref := &Runner{Out: refOut, Cache: cache.New(filepath.Join(t.TempDir(), "refcache"))}
	if _, err := ref.Run(fastSpec()); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(t.TempDir(), "out")
	stopper := guard.NewStopper()
	interrupted := &Runner{
		Out:     out,
		Workers: 1,
		Stop:    stopper,
		Log:     &stopAfter{stop: stopper, n: 2},
	}
	rep, err := interrupted.Run(fastSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Fatal("interrupted run not marked truncated")
	}
	if rep.Done >= rep.Total {
		t.Fatalf("interruption did not interrupt: %d/%d done", rep.Done, rep.Total)
	}

	// The checkpointed manifest lists exactly the finished jobs.
	m, err := LoadManifest(filepath.Join(out, "manifest.json"))
	if err != nil || m == nil {
		t.Fatalf("manifest after kill: %v %v", m, err)
	}
	if len(m.Jobs) != rep.Done {
		t.Fatalf("manifest has %d jobs, run reported %d done", len(m.Jobs), rep.Done)
	}

	resumed := &Runner{Out: out, Resume: true}
	rep2, err := resumed.Run(fastSpec())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Resumed != rep.Done {
		t.Fatalf("resumed %d jobs, want %d", rep2.Resumed, rep.Done)
	}
	if rep2.Executed != rep2.Total-rep.Done {
		t.Fatalf("resume recomputed finished work: executed %d, want %d", rep2.Executed, rep2.Total-rep.Done)
	}
	if rep2.Truncated || rep2.Failed > 0 {
		t.Fatalf("resume did not complete: %+v", rep2)
	}

	rRef, aRef := readOutputs(t, refOut)
	rGot, aGot := readOutputs(t, out)
	if !bytes.Equal(rRef, rGot) {
		t.Fatalf("resumed report.txt diverged from uninterrupted run:\n%s\n---\n%s", rRef, rGot)
	}
	if !bytes.Equal(aRef, aGot) {
		t.Fatalf("resumed aggregate.json diverged from uninterrupted run")
	}
}

// TestResumeRefusesEditedSpec: the manifest's spec hash pins the job
// list; resuming under a changed campaign must fail, not mix artifacts.
func TestResumeRefusesEditedSpec(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out")
	r := &Runner{Out: out}
	if _, err := r.Run(fastSpec()); err != nil {
		t.Fatal(err)
	}
	edited := fastSpec()
	edited.Experiments[0].Grid["cut_factor"] = []string{"0.9"}
	r2 := &Runner{Out: out, Resume: true}
	if _, err := r2.Run(edited); err == nil || !strings.Contains(err.Error(), "spec changed") {
		t.Fatalf("resume under edited spec: %v", err)
	}
}

// TestSerialParity: the orchestrator's fig7 artifact carries exactly
// the digests a direct serial harness run produces with the same model
// and parameters — parallel campaign execution is semantically
// invisible.
func TestSerialParity(t *testing.T) {
	if testing.Short() {
		t.Skip("trains (or loads) the shared congestion TPM; skipped with -short")
	}
	tpm, _, err := harness.TrainCongestionTPMCached(devrun.TPMCacheFromEnv(), 1000, 42)
	if err != nil {
		t.Fatal(err)
	}

	spec := &CampaignSpec{
		Name: "parity",
		Experiments: []ExperimentSpec{{
			Experiment: "fig7",
			Params:     map[string]string{"requests": "150", "seed": "7"},
		}},
	}
	out := filepath.Join(t.TempDir(), "out")
	r := &Runner{
		Out: out,
		TPM: func(kind harness.TPMKind) (*core.TPM, error) { return tpm, nil },
	}
	rep, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done != 1 {
		t.Fatalf("done %d", rep.Done)
	}

	b, err := os.ReadFile(filepath.Join(out, "jobs", "00-fig7.json"))
	if err != nil {
		t.Fatal(err)
	}
	var art Artifact
	if err := json.Unmarshal(b, &art); err != nil {
		t.Fatal(err)
	}

	// Direct serial run with identical inputs.
	exp, _ := harness.LookupExperiment("fig7")
	p, err := exp.Resolve(map[string]string{"requests": "150", "seed": "7"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := exp.Run(&harness.Env{TPM: func(harness.TPMKind) (*core.TPM, error) { return tpm, nil }}, p)
	if err != nil {
		t.Fatal(err)
	}
	wantData, err := json.Marshal(want.Data)
	if err != nil {
		t.Fatal(err)
	}

	if art.Output.Text != want.Text {
		t.Fatalf("sweep text diverged from serial run:\n%s\n---\n%s", art.Output.Text, want.Text)
	}
	// The artifact encoder re-indents the raw data; compare canonically.
	var got bytes.Buffer
	if err := json.Compact(&got, art.Output.Data); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), wantData) {
		t.Fatalf("sweep data diverged from serial run:\n%s\n---\n%s", got.Bytes(), wantData)
	}
}
