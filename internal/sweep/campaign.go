// Package sweep is the campaign orchestrator: it expands a declarative
// CampaignSpec (named experiments plus parameter grids) into a
// deterministic job list, runs the jobs on a shared worker pool —
// parallel across jobs, every simulation still single-threaded — and
// persists per-job artifacts, a crash-safe resume manifest, and a
// byte-stable aggregate report.
//
// Determinism contract: expansion is a pure function of the spec, and
// each job's output is a pure function of (experiment, resolved params,
// shared trained model). That is what makes the content-addressed
// artifact cache sound and the aggregate report byte-identical across
// serial runs, parallel runs, cache replays, and crash-resume.
package sweep

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"strconv"

	"srcsim/internal/harness"
)

// ExperimentSpec is one campaign entry: a registered experiment, fixed
// parameter overrides, and an optional grid of swept axes. Every
// combination of grid values becomes one job.
type ExperimentSpec struct {
	// Experiment is a registered experiment name (see srcsim -list).
	Experiment string `json:"experiment"`
	// Params overrides declared defaults for every job of this entry.
	Params map[string]string `json:"params,omitempty"`
	// Grid sweeps parameters: one job per element of the cartesian
	// product, axes iterated in sorted-name order.
	Grid map[string][]string `json:"grid,omitempty"`
}

// CampaignSpec is the declarative description of one campaign.
type CampaignSpec struct {
	// Name labels the campaign in reports and manifests.
	Name string `json:"name"`
	// Seed is the campaign master seed; per-job seeds derive from it
	// and the job ID.
	Seed uint64 `json:"seed"`
	// Workers bounds job parallelism (0 = GOMAXPROCS); the -workers
	// flag overrides.
	Workers int `json:"workers,omitempty"`
	// TrainCount is the per-direction request count for shared TPM
	// training (0 = 1500, the srcsim default).
	TrainCount int `json:"train_count,omitempty"`
	// TrainSeed seeds shared TPM training (0 = Seed^0xbeef, mirroring
	// srcsim's derivation).
	TrainSeed uint64 `json:"train_seed,omitempty"`
	// Experiments run in declaration order.
	Experiments []ExperimentSpec `json:"experiments"`
}

// trainCount returns the effective TPM training request count.
func (c *CampaignSpec) trainCount() int {
	if c.TrainCount > 0 {
		return c.TrainCount
	}
	return 1500
}

// trainSeed returns the effective TPM training seed.
func (c *CampaignSpec) trainSeed() uint64 {
	if c.TrainSeed != 0 {
		return c.TrainSeed
	}
	return c.Seed ^ 0xbeef
}

// ParseCampaign decodes a campaign spec, rejecting unknown fields so a
// typo fails loudly instead of silently running defaults.
func ParseCampaign(r io.Reader) (*CampaignSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec CampaignSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("sweep: parse campaign: %w", err)
	}
	if spec.Name == "" {
		return nil, fmt.Errorf("sweep: campaign has no name")
	}
	if len(spec.Experiments) == 0 {
		return nil, fmt.Errorf("sweep: campaign %s has no experiments", spec.Name)
	}
	return &spec, nil
}

// LoadCampaign reads a campaign spec file.
func LoadCampaign(path string) (*CampaignSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	spec, err := ParseCampaign(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

// Job is one expanded unit of work: a registered experiment with fully
// resolved parameters. The ID is stable across expansions of the same
// spec, which is what resume and artifact naming key on.
type Job struct {
	// ID is "<entry index>-<experiment>" plus "#<cell index>" when the
	// entry has a grid (e.g. "00-fig7#003").
	ID         string `json:"id"`
	Experiment string `json:"experiment"`
	// Params is the fully resolved parameter set (defaults, overrides,
	// grid cell, derived seed).
	Params harness.Params `json:"params"`
	// Seed is the job's workload seed (0 when the experiment declares
	// no seed parameter).
	Seed uint64 `json:"seed"`
}

// deriveSeed mixes the campaign master seed with the job ID: FNV-1a
// over the ID, xor with the master, then a splitmix64 finalizer so
// adjacent IDs land on decorrelated seeds.
func deriveSeed(campaign uint64, jobID string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(jobID))
	x := campaign ^ h.Sum64()
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Expand turns the spec into its deterministic job list: entries in
// declaration order, grid axes in sorted-name order, each axis's values
// in declaration order with the last axis varying fastest. Unknown
// experiments and parameters fail expansion — before any job runs.
func (c *CampaignSpec) Expand() ([]Job, error) {
	var jobs []Job
	for i, es := range c.Experiments {
		exp, ok := harness.LookupExperiment(es.Experiment)
		if !ok {
			return nil, fmt.Errorf("sweep: entry %d: unknown experiment %q (registered: %v)",
				i, es.Experiment, harness.ExperimentNames())
		}

		axes := make([]string, 0, len(es.Grid))
		for name, vals := range es.Grid {
			if len(vals) == 0 {
				return nil, fmt.Errorf("sweep: entry %d (%s): grid axis %q is empty", i, es.Experiment, name)
			}
			axes = append(axes, name)
		}
		sort.Strings(axes)

		cells := 1
		for _, name := range axes {
			cells *= len(es.Grid[name])
		}

		// Odometer over the grid: index cell -> one value per axis,
		// last axis fastest.
		for cell := 0; cell < cells; cell++ {
			id := fmt.Sprintf("%02d-%s", i, es.Experiment)
			if len(axes) > 0 {
				id = fmt.Sprintf("%s#%03d", id, cell)
			}

			overrides := make(map[string]string, len(es.Params)+len(axes))
			for k, v := range es.Params {
				overrides[k] = v
			}
			rem := cell
			for a := len(axes) - 1; a >= 0; a-- {
				vals := es.Grid[axes[a]]
				overrides[axes[a]] = vals[rem%len(vals)]
				rem /= len(vals)
			}

			// The derived per-job seed applies only when the experiment
			// declares a seed parameter that neither the fixed params
			// nor the grid pins.
			_, declaresSeed := exp.Param("seed")
			_, pinned := overrides["seed"]
			if declaresSeed && !pinned {
				overrides["seed"] = strconv.FormatUint(deriveSeed(c.Seed, id), 10)
			}

			p, err := exp.Resolve(overrides)
			if err != nil {
				return nil, fmt.Errorf("sweep: entry %d (%s): %w", i, es.Experiment, err)
			}

			job := Job{ID: id, Experiment: es.Experiment, Params: p}
			if s, ok := p["seed"]; ok {
				seed, err := strconv.ParseUint(s, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("sweep: entry %d (%s): seed %q: %w", i, es.Experiment, s, err)
				}
				job.Seed = seed
			}
			jobs = append(jobs, job)
		}
	}

	ids := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if ids[j.ID] {
			return nil, fmt.Errorf("sweep: duplicate job ID %s", j.ID)
		}
		ids[j.ID] = true
	}
	return jobs, nil
}
