package ccaimd

import (
	"testing"

	"srcsim/internal/obs/timeseries"
	"srcsim/internal/sim"
)

func newTestRP(t *testing.T) (*sim.Engine, *RP) {
	t.Helper()
	eng := sim.NewEngine()
	return eng, NewRP(eng, Config{LineRate: 10e9})
}

func TestMarkedIntervalCutsProportionalToOvershoot(t *testing.T) {
	eng, rp := newTestRP(t)
	// Every ack marked: fraction 1, g ramps toward 1, every tick above
	// target must cut; with all-marked input the rate must fall hard.
	for i := 0; i < 40; i++ {
		rp.OnAckECN(true)
		eng.Run(eng.Now() + rp.cfg.UpdateInterval)
	}
	if rp.Rate() > 0.5*rp.cfg.LineRate {
		t.Fatalf("rate %v after sustained full marking, want a deep cut", rp.Rate())
	}
	if rp.CongestionLevel() < rp.cfg.TargetCongestion {
		t.Fatalf("congestion level %v below target under full marking", rp.CongestionLevel())
	}
}

func TestCleanAcksRecoverToLineRateAndQuiesce(t *testing.T) {
	eng, rp := newTestRP(t)
	for i := 0; i < 10; i++ {
		rp.OnCongestionSignal()
	}
	throttled := rp.Rate()
	if throttled >= rp.cfg.LineRate {
		t.Fatal("signals did not throttle")
	}
	// A stream of unmarked acks, then silence: the additive path must
	// restore line rate and the ticker must idle (RunUntilIdle returns).
	for i := 0; i < 30; i++ {
		rp.OnAckECN(false)
	}
	eng.RunUntilIdle()
	if rp.Rate() != rp.cfg.LineRate {
		t.Fatalf("rate %v did not recover to line rate", rp.Rate())
	}
}

func TestSignalMonotoneNonIncrease(t *testing.T) {
	_, rp := newTestRP(t)
	prev := rp.Rate()
	for i := 0; i < 100; i++ {
		rp.OnCongestionSignal()
		if rp.Rate() > prev {
			t.Fatalf("signal %d increased rate %v -> %v", i, prev, rp.Rate())
		}
		prev = rp.Rate()
	}
	if rp.Rate() >= rp.cfg.LineRate {
		t.Fatal("signals never cut the rate")
	}
}

func TestListenerFiresOnEveryChange(t *testing.T) {
	eng, rp := newTestRP(t)
	last := rp.Rate()
	rp.SetRateListener(func(old, new float64) {
		if old == new {
			t.Fatalf("listener fired with old == new == %v", old)
		}
		if old != last {
			t.Fatalf("listener old %v does not chain from last reported %v", old, last)
		}
		last = new
	})
	for i := 0; i < 20; i++ {
		rp.OnAckECN(i%3 == 0)
		eng.Run(eng.Now() + rp.cfg.UpdateInterval)
		if rp.Rate() != last {
			t.Fatalf("rate %v moved without a listener event (last %v)", rp.Rate(), last)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	for name, cfg := range map[string]Config{
		"min above line":   {LineRate: 1e9, MinRate: 2e9},
		"target above one": {TargetCongestion: 1},
		"gain above one":   {Gain: 1.5},
		"md cuts all":      {TargetCongestion: 0.5, Md: 2.5},
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

func TestSampleSeries(t *testing.T) {
	_, rp := newTestRP(t)
	got := map[string]float64{}
	rp.SampleSeries("net", "flow0", func(track, name string, k timeseries.Kind, v float64) {
		got[name] = v
	})
	if got["flow0_rate_gbps"] != 10 {
		t.Fatalf("rate series %v, want 10", got["flow0_rate_gbps"])
	}
	if _, ok := got["flow0_cong_level"]; !ok {
		t.Fatal("missing cong_level series")
	}
}
