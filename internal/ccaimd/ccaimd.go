// Package ccaimd implements an ECN-fraction AIMD congestion controller
// in the style of the "oversubscribed CC" used by the REPS artifact: on
// a fixed update interval the sender folds the fraction of ECN-marked
// acknowledgements received since the last update into an EWMA
// congestion level g, then decreases multiplicatively in proportion to
// how far g overshoots the target congestion level (rate *=
// 1-(g-target)*Md) or increases additively when the path runs below
// target.
//
// It implements the same reaction-point surface as dcqcn.RP / timely.RP
// (netsim's RateController) plus the per-ack ECN-echo hook the NIC feeds
// when the scheme is selected, so the whole SRC stack runs unchanged on
// top of it.
package ccaimd

import (
	"fmt"

	"srcsim/internal/obs/timeseries"
	"srcsim/internal/sim"
)

// Config holds the AIMD constants. Defaults follow the REPS artifact's
// oversubscribed-CC settings, with the dimensionless rate mapped onto
// the NIC line rate.
type Config struct {
	// LineRate is the NIC line rate in bits/s (default 40 Gbps).
	LineRate float64
	// MinRate is the rate floor (default 40 Mbps).
	MinRate float64
	// UpdateInterval is the decision period (default 18 µs).
	UpdateInterval sim.Time
	// TargetCongestion is the EWMA mark-fraction level the controller
	// regulates to (default 0.3).
	TargetCongestion float64
	// Gain is the EWMA weight of the newest mark-fraction sample
	// (default 0.5).
	Gain float64
	// Ai is the additive increase per interval as a fraction of line
	// rate (default 0.05).
	Ai float64
	// Md scales the multiplicative decrease applied per unit of
	// overshoot above the target (default 0.75).
	Md float64
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.LineRate <= 0 {
		c.LineRate = 40e9
	}
	if c.MinRate <= 0 {
		c.MinRate = 40e6
	}
	if c.UpdateInterval <= 0 {
		c.UpdateInterval = 18 * sim.Microsecond
	}
	if c.TargetCongestion <= 0 {
		c.TargetCongestion = 0.3
	}
	if c.Gain <= 0 {
		c.Gain = 0.5
	}
	if c.Ai <= 0 {
		c.Ai = 0.05
	}
	if c.Md <= 0 {
		c.Md = 0.75
	}
	return c
}

// Validate reports inconsistent settings.
func (c Config) Validate() error {
	c = c.WithDefaults()
	if c.MinRate > c.LineRate {
		return fmt.Errorf("ccaimd: MinRate %v exceeds LineRate %v", c.MinRate, c.LineRate)
	}
	if c.TargetCongestion >= 1 {
		return fmt.Errorf("ccaimd: TargetCongestion %v outside (0,1)", c.TargetCongestion)
	}
	if c.Gain > 1 {
		return fmt.Errorf("ccaimd: Gain %v outside (0,1]", c.Gain)
	}
	// The deepest per-interval cut is (1-target)*Md; it must leave a
	// positive rate for the AIMD loop to recover from.
	if c.Md*(1-c.TargetCongestion) >= 1 {
		return fmt.Errorf("ccaimd: Md %v cuts the whole rate at full marking (target %v)", c.Md, c.TargetCongestion)
	}
	return nil
}

// RP is the per-flow AIMD rate state. It satisfies netsim.RateController
// and netsim.ECNEchoObserver.
type RP struct {
	cfg Config
	eng *sim.Engine

	// OnRate, if set, observes every rate change (old, new in bits/s).
	OnRate func(oldRate, newRate float64)

	rate float64
	g    float64 // EWMA congestion level

	acked, marked       uint64 // running totals fed by OnAckECN
	oldAcked, oldMarked uint64 // totals at the previous tick

	tickEv sim.Handle
	tickFn func()
	active bool

	// Counters.
	Acks          uint64
	Marks         uint64
	RateDecreases uint64
	RateIncreases uint64
}

// NewRP returns an AIMD reaction point starting at line rate. The
// engine drives the fixed update interval.
func NewRP(eng *sim.Engine, cfg Config) *RP {
	cfg = cfg.WithDefaults()
	rp := &RP{cfg: cfg, eng: eng, rate: cfg.LineRate}
	rp.tickFn = rp.tick
	return rp
}

// Rate implements netsim.RateController.
func (rp *RP) Rate() float64 { return rp.rate }

// CongestionLevel returns the EWMA mark-fraction estimate g.
func (rp *RP) CongestionLevel() float64 { return rp.g }

// OnBytesSent implements netsim.RateController (no byte clock).
func (rp *RP) OnBytesSent(int) {}

// OnAck implements netsim.RateController; the ECN echo arrives through
// OnAckECN, which the NIC invokes first.
func (rp *RP) OnAck(sim.Time) {}

// NeedsAck implements netsim.RateController: the mark fraction is
// measured from per-packet acknowledgements echoing the ECN bit.
func (rp *RP) NeedsAck() bool { return true }

// SetRateListener implements netsim.RateController.
func (rp *RP) SetRateListener(fn func(oldRate, newRate float64)) { rp.OnRate = fn }

// OnAckECN implements netsim.ECNEchoObserver: one acknowledgement with
// the receiver-echoed ECN mark state.
func (rp *RP) OnAckECN(markedPkt bool) {
	rp.Acks++
	rp.acked++
	if markedPkt {
		rp.Marks++
		rp.marked++
	}
	rp.arm()
}

// OnCongestionSignal implements netsim.RateController: an explicit
// congestion notification is folded in as a fully marked interval, so
// the scheme stays safe on fabrics that emit CNPs.
func (rp *RP) OnCongestionSignal() {
	rp.g = rp.g*(1-rp.cfg.Gain) + rp.cfg.Gain
	if rp.g > rp.cfg.TargetCongestion {
		rp.setRate(rp.rate * (1 - (rp.g-rp.cfg.TargetCongestion)*rp.cfg.Md))
	}
	rp.arm()
}

// arm starts the update ticker if it is idle.
func (rp *RP) arm() {
	rp.active = true
	if rp.tickEv.Cancelled() {
		rp.tickEv = rp.eng.After(rp.cfg.UpdateInterval, rp.tickFn)
	}
}

// tick runs one AIMD decision over the acks of the elapsed interval,
// then idles itself once the flow is back at line rate with no marks in
// flight (so idle fabrics quiesce).
func (rp *RP) tick() {
	total := rp.acked - rp.oldAcked
	ecn := rp.marked - rp.oldMarked
	rp.oldAcked, rp.oldMarked = rp.acked, rp.marked

	fraction := 0.0
	if total > 0 {
		fraction = float64(ecn) / float64(total)
	}
	rp.g = rp.g*(1-rp.cfg.Gain) + rp.cfg.Gain*fraction

	if rp.g > rp.cfg.TargetCongestion {
		rp.setRate(rp.rate * (1 - (rp.g-rp.cfg.TargetCongestion)*rp.cfg.Md))
	} else {
		rp.setRate(rp.rate + rp.cfg.Ai*rp.cfg.LineRate)
	}

	if total == 0 && rp.rate >= rp.cfg.LineRate && rp.g < 1e-3 {
		rp.active = false
	}
	if rp.active {
		rp.tickEv = rp.eng.After(rp.cfg.UpdateInterval, rp.tickFn)
	}
}

func (rp *RP) setRate(newRate float64) {
	if newRate > rp.cfg.LineRate {
		newRate = rp.cfg.LineRate
	}
	if newRate < rp.cfg.MinRate {
		newRate = rp.cfg.MinRate
	}
	if newRate == rp.rate {
		return
	}
	old := rp.rate
	rp.rate = newRate
	if newRate < old {
		rp.RateDecreases++
	} else {
		rp.RateIncreases++
	}
	if rp.OnRate != nil {
		rp.OnRate(old, newRate)
	}
}

// SampleSeries is the reaction point's flight-recorder probe: the
// current rate and the EWMA congestion level. Read-only.
func (rp *RP) SampleSeries(track, prefix string, emit timeseries.Emit) {
	emit(track, prefix+"_rate_gbps", timeseries.Gauge, rp.rate/1e9)
	emit(track, prefix+"_cong_level", timeseries.Gauge, rp.g)
}
