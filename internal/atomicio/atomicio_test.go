package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileSuccess(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, `{"ok":true}`)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"ok":true}` {
		t.Fatalf("content = %q", got)
	}
	assertNoTempFiles(t, dir)
}

// A mid-write failure must leave no file at the destination and no
// stray temp file in the directory.
func TestWriteFileMidWriteFailureLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	boom := errors.New("disk on fire")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, `{"partial":`) // half a document, then fail
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("destination exists after failed write (stat err %v)", err)
	}
	assertNoTempFiles(t, dir)
}

// A failed rewrite must leave the previous version intact.
func TestWriteFileFailurePreservesPrevious(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "v2-partial")
		return errors.New("interrupted")
	})
	if err == nil {
		t.Fatal("want error")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v1" {
		t.Fatalf("previous version clobbered: %q", got)
	}
	assertNoTempFiles(t, dir)
}

func TestWriteFileBadDir(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no-such-dir", "x"), func(w io.Writer) error {
		return nil
	})
	if err == nil {
		t.Fatal("want error for missing directory")
	}
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if len(e.Name()) > 0 && e.Name()[0] == '.' {
			t.Fatalf("stray temp file %s left behind", e.Name())
		}
	}
}
