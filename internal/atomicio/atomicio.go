// Package atomicio writes artifact files crash-safely: content goes to
// a temp file in the destination directory and is renamed into place
// only after a successful write and fsync. An interrupt, crash, or
// write error mid-way leaves either the previous file or nothing —
// never a truncated artifact that downstream tooling would half-parse.
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile streams write's output to path atomically. The temp file is
// created in path's directory (rename across filesystems is not
// atomic), synced, closed, and renamed over path. On any error the temp
// file is removed and the destination is untouched.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return fmt.Errorf("atomicio: writing %s: %w", path, err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("atomicio: sync %s: %w", tmp, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("atomicio: close %s: %w", tmp, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomicio: %w", err)
	}
	return nil
}
