package hpcc

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzINTHeader drives the codec invariant: any input either decodes to
// a header whose re-encoding is byte-identical to the input (the
// encoding is canonical), or is rejected with a typed *DecodeError.
func FuzzINTHeader(f *testing.F) {
	empty, _ := (&INTHeader{}).Encode()
	one, _ := (&INTHeader{Hops: []INTHop{{Node: 7, Queue: 4096, TxBytes: 1 << 20, TsNs: 5000, RateBps: 10e9}}}).Encode()
	three, _ := (&INTHeader{Hops: []INTHop{
		{Node: 1, Queue: 100, TxBytes: 200, TsNs: 300, RateBps: 40e9},
		{Node: 2, Queue: 0, TxBytes: 1 << 33, TsNs: 1 << 40, RateBps: 100e9},
		{Node: 3, Queue: ^uint64(0), TxBytes: ^uint64(0), TsNs: ^uint64(0), RateBps: ^uint64(0)},
	}}).Encode()
	f.Add(empty)
	f.Add(one)
	f.Add(three)
	f.Add([]byte{})
	f.Add([]byte{WireVersion})
	f.Add([]byte{9, 0})
	f.Add(one[:len(one)-1])
	f.Add(append(append([]byte{}, one...), 0))

	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := Decode(b)
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("rejection %v is not a *DecodeError", err)
			}
			return
		}
		out, err := h.Encode()
		if err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		if !bytes.Equal(out, b) {
			t.Fatalf("encoding not canonical:\nin:  %x\nout: %x", b, out)
		}
		h2, err := Decode(out)
		if err != nil {
			t.Fatalf("decode of re-encoding failed: %v", err)
		}
		if len(h2.Hops) != len(h.Hops) {
			t.Fatalf("hop count changed across round trip: %d != %d", len(h2.Hops), len(h.Hops))
		}
	})
}
