package hpcc

import (
	"errors"
	"reflect"
	"testing"
)

func TestINTRoundTrip(t *testing.T) {
	for _, h := range []*INTHeader{
		{},
		{Hops: []INTHop{{Node: 3, Queue: 4096, TxBytes: 1 << 30, TsNs: 123456789, RateBps: 40e9}}},
		{Hops: []INTHop{
			{Node: 1, Queue: 0, TxBytes: 10, TsNs: 20, RateBps: 10e9},
			{Node: 2, Queue: 1 << 20, TxBytes: 1 << 40, TsNs: 1 << 50, RateBps: 100e9},
			{Node: 0xffffffff, Queue: ^uint64(0), TxBytes: ^uint64(0), TsNs: ^uint64(0), RateBps: ^uint64(0)},
		}},
	} {
		b, err := h.Encode()
		if err != nil {
			t.Fatalf("encode %d hops: %v", len(h.Hops), err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("decode %d hops: %v", len(h.Hops), err)
		}
		if len(got.Hops) != len(h.Hops) || (len(h.Hops) > 0 && !reflect.DeepEqual(got.Hops, h.Hops)) {
			t.Fatalf("round trip mismatch: %+v != %+v", got, h)
		}
		b2, err := got.Encode()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !reflect.DeepEqual(b, b2) {
			t.Fatalf("re-encode not byte-identical:\n%x\n%x", b, b2)
		}
	}
}

func TestINTDecodeRejectsMalformed(t *testing.T) {
	valid, err := (&INTHeader{Hops: []INTHop{{Node: 1, RateBps: 10e9}}}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"one byte":       {WireVersion},
		"bad version":    {9, 0},
		"truncated hops": valid[:len(valid)-1],
		"hop count lies": {WireVersion, 3, 0, 0},
		"trailing bytes": append(append([]byte{}, valid...), 0xaa),
	}
	for name, b := range cases {
		_, err := Decode(b)
		if err == nil {
			t.Errorf("%s: decode accepted %x", name, b)
			continue
		}
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Errorf("%s: error %v is not a *DecodeError", name, err)
		}
	}
}

func TestINTAddHopCapsAtWireCapacity(t *testing.T) {
	h := &INTHeader{}
	for i := 0; i < MaxWireHops+10; i++ {
		h.AddHop(INTHop{Node: uint32(i)})
	}
	if len(h.Hops) != MaxWireHops {
		t.Fatalf("AddHop kept %d hops, want cap %d", len(h.Hops), MaxWireHops)
	}
	if _, err := h.Encode(); err != nil {
		t.Fatalf("encode at cap: %v", err)
	}
	h.Hops = append(h.Hops, INTHop{})
	if _, err := h.Encode(); err == nil {
		t.Fatal("encode accepted a header beyond the wire capacity")
	}
}
