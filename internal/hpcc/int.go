package hpcc

import (
	"encoding/binary"
	"fmt"
)

// The INT header wire format (what a real HPCC NIC would program into
// the INT-MD shim): a 2-byte preamble (version, hop count) followed by
// one fixed-size big-endian record per switch hop. The simulator moves
// INTHeader values by pointer, but the codec is the contract a hardware
// implementation would serialise, so it is fuzzed for round-trip byte
// identity (FuzzINTHeader).
const (
	// WireVersion is the only INT header version this codec accepts.
	WireVersion = 1
	// MaxWireHops bounds the hop count representable on the wire (one
	// byte); AddHop drops hops beyond it rather than failing the packet.
	MaxWireHops = 255

	hopWireSize  = 4 + 8 + 8 + 8 + 8 // Node + Queue + TxBytes + TsNs + RateBps
	preambleSize = 2
)

// INTHop is one switch hop's telemetry record, stamped at the egress
// port the packet was queued to.
type INTHop struct {
	// Node is the stamping switch's node ID.
	Node uint32
	// Queue is the egress queue depth in bytes at enqueue time.
	Queue uint64
	// TxBytes is the egress port's cumulative transmitted byte counter;
	// consecutive samples yield the port's output rate.
	TxBytes uint64
	// TsNs is the stamping timestamp in nanoseconds of sim time.
	TsNs uint64
	// RateBps is the egress port's line rate in bits/s.
	RateBps uint64
}

// INTHeader is the in-network-telemetry metadata a data packet
// accumulates hop by hop and the receiver echoes back on the ack.
type INTHeader struct {
	Hops []INTHop
}

// AddHop appends one hop record, silently dropping hops beyond the wire
// capacity (paths in the simulated fabrics are far shorter).
func (h *INTHeader) AddHop(hop INTHop) {
	if len(h.Hops) >= MaxWireHops {
		return
	}
	h.Hops = append(h.Hops, hop)
}

// Encode serialises the header. The encoding is canonical: Decode of the
// result re-encodes to the identical bytes.
func (h *INTHeader) Encode() ([]byte, error) {
	if len(h.Hops) > MaxWireHops {
		return nil, fmt.Errorf("hpcc: %d hops exceed the %d-hop wire capacity", len(h.Hops), MaxWireHops)
	}
	b := make([]byte, preambleSize+len(h.Hops)*hopWireSize)
	b[0] = WireVersion
	b[1] = byte(len(h.Hops))
	off := preambleSize
	for _, hop := range h.Hops {
		binary.BigEndian.PutUint32(b[off:], hop.Node)
		binary.BigEndian.PutUint64(b[off+4:], hop.Queue)
		binary.BigEndian.PutUint64(b[off+12:], hop.TxBytes)
		binary.BigEndian.PutUint64(b[off+20:], hop.TsNs)
		binary.BigEndian.PutUint64(b[off+28:], hop.RateBps)
		off += hopWireSize
	}
	return b, nil
}

// DecodeError is the typed rejection Decode returns for malformed input.
type DecodeError struct {
	// Offset is the byte position the error was detected at.
	Offset int
	// Reason describes the malformation.
	Reason string
}

// Error implements error.
func (e *DecodeError) Error() string {
	return fmt.Sprintf("hpcc: INT decode at byte %d: %s", e.Offset, e.Reason)
}

// Decode parses an encoded INT header. Truncated input, unknown
// versions, and trailing garbage are all rejected with a *DecodeError.
func Decode(b []byte) (*INTHeader, error) {
	if len(b) < preambleSize {
		return nil, &DecodeError{Offset: len(b), Reason: fmt.Sprintf("truncated preamble: %d of %d bytes", len(b), preambleSize)}
	}
	if b[0] != WireVersion {
		return nil, &DecodeError{Offset: 0, Reason: fmt.Sprintf("unknown version %d", b[0])}
	}
	n := int(b[1])
	want := preambleSize + n*hopWireSize
	if len(b) < want {
		return nil, &DecodeError{Offset: len(b), Reason: fmt.Sprintf("truncated hop records: %d of %d bytes for %d hops", len(b), want, n)}
	}
	if len(b) > want {
		return nil, &DecodeError{Offset: want, Reason: fmt.Sprintf("%d trailing bytes", len(b)-want)}
	}
	h := &INTHeader{}
	if n > 0 {
		h.Hops = make([]INTHop, n)
	}
	off := preambleSize
	for i := range h.Hops {
		h.Hops[i] = INTHop{
			Node:    binary.BigEndian.Uint32(b[off:]),
			Queue:   binary.BigEndian.Uint64(b[off+4:]),
			TxBytes: binary.BigEndian.Uint64(b[off+12:]),
			TsNs:    binary.BigEndian.Uint64(b[off+20:]),
			RateBps: binary.BigEndian.Uint64(b[off+28:]),
		}
		off += hopWireSize
	}
	return h, nil
}
