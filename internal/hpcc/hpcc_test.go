package hpcc

import (
	"testing"

	"srcsim/internal/obs/timeseries"
	"srcsim/internal/sim"
)

func benignHop(txBytes, tsNs uint64) INTHop {
	return INTHop{Node: 1, Queue: 0, TxBytes: txBytes, TsNs: tsNs, RateBps: 10e9}
}

func TestHotPathAlignsTowardEta(t *testing.T) {
	rp := NewRP(Config{LineRate: 10e9})
	// Deep queue at the bottleneck: U >> Eta, the rate must cut
	// multiplicatively by Eta/U on the very first sample.
	rp.OnINTAck(&INTHeader{Hops: []INTHop{{Node: 1, Queue: 1 << 20, TsNs: 1000, RateBps: 10e9}}})
	if rp.Rate() >= 10e9 {
		t.Fatalf("rate %v did not cut on a hot path (U=%v)", rp.Rate(), rp.Utilisation())
	}
	if rp.Utilisation() <= rp.cfg.Eta {
		t.Fatalf("bottleneck utilisation %v should exceed Eta", rp.Utilisation())
	}
}

func TestCoolPathProbesAdditively(t *testing.T) {
	rp := NewRP(Config{LineRate: 10e9})
	rp.setRate(1e9)
	prev := rp.Rate()
	// Idle path (empty queue, no tx progress): additive WaiBps steps.
	for i := 0; i < 3; i++ {
		rp.OnINTAck(&INTHeader{Hops: []INTHop{benignHop(0, uint64(1000*(i+1)))}})
		if rp.Rate() != prev+rp.cfg.WaiBps {
			t.Fatalf("step %d: rate %v, want additive %v", i, rp.Rate(), prev+rp.cfg.WaiBps)
		}
		prev = rp.Rate()
	}
}

func TestTxRateFromConsecutiveSamples(t *testing.T) {
	rp := NewRP(Config{LineRate: 10e9})
	// First sample establishes the hop reference; the second spans 1 µs
	// in which the port moved 1250 bytes = 10 Gbps: U = 1.0 > Eta.
	rp.OnINTAck(&INTHeader{Hops: []INTHop{benignHop(0, 1000)}})
	rp.OnINTAck(&INTHeader{Hops: []INTHop{benignHop(1250, 2000)}})
	if got := rp.Utilisation(); got < 0.99 || got > 1.01 {
		t.Fatalf("derived utilisation %v, want ~1.0", got)
	}
	if rp.Rate() >= 10e9 {
		t.Fatalf("rate %v did not react to a saturated port", rp.Rate())
	}
}

func TestPathChangeResetsHopReference(t *testing.T) {
	rp := NewRP(Config{LineRate: 10e9})
	rp.OnINTAck(&INTHeader{Hops: []INTHop{benignHop(0, 1000)}})
	// Different switch at the same position (ECMP failover): the stale
	// TxBytes delta must not be interpreted as that hop's rate.
	rp.OnINTAck(&INTHeader{Hops: []INTHop{{Node: 9, Queue: 0, TxBytes: 1 << 40, TsNs: 2000, RateBps: 10e9}}})
	if rp.Utilisation() != 0 {
		t.Fatalf("utilisation %v after path change, want 0", rp.Utilisation())
	}
}

func TestCongestionSignalCutsAndFloors(t *testing.T) {
	rp := NewRP(Config{LineRate: 10e9})
	var events int
	rp.SetRateListener(func(old, new float64) {
		if old == new {
			t.Fatalf("listener fired with old == new == %v", old)
		}
		events++
	})
	prev := rp.Rate()
	for i := 0; i < 200; i++ {
		rp.OnCongestionSignal()
		if rp.Rate() > prev {
			t.Fatalf("signal %d increased rate %v -> %v", i, prev, rp.Rate())
		}
		prev = rp.Rate()
	}
	if rp.Rate() != rp.cfg.MinRate {
		t.Fatalf("rate %v did not floor at MinRate %v", rp.Rate(), rp.cfg.MinRate)
	}
	if events == 0 {
		t.Fatal("rate listener never fired")
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	for name, cfg := range map[string]Config{
		"min above line": {LineRate: 1e9, MinRate: 2e9},
		"eta above one":  {Eta: 1.5},
		"beta too big":   {CNPBeta: 1},
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

func TestSampleSeries(t *testing.T) {
	rp := NewRP(Config{LineRate: 10e9})
	got := map[string]float64{}
	rp.SampleSeries("net", "flow0", func(track, name string, k timeseries.Kind, v float64) {
		got[name] = v
	})
	if got["flow0_rate_gbps"] != 10 {
		t.Fatalf("rate series %v, want 10", got["flow0_rate_gbps"])
	}
	if _, ok := got["flow0_util"]; !ok {
		t.Fatal("missing util series")
	}
}

// TestNeedsAckAndNoops pins the RateController surface HPCC does not
// use: acks carry no RTT decision and bytes sent no signal.
func TestNeedsAckAndNoops(t *testing.T) {
	rp := NewRP(Config{LineRate: 10e9})
	if !rp.NeedsAck() {
		t.Fatal("HPCC must request per-packet acks for the INT echo")
	}
	rp.OnBytesSent(4096)
	rp.OnAck(50 * sim.Microsecond)
	if rp.Rate() != 10e9 {
		t.Fatalf("no-op hooks moved the rate to %v", rp.Rate())
	}
}
