// Package hpcc implements an HPCC-style congestion-control algorithm
// (Li et al., SIGCOMM 2019): senders pace from precise in-network
// telemetry (INT) instead of end-to-end signals. Every data packet
// accumulates one INTHop record per switch (egress queue depth, the
// port's cumulative TxBytes counter, a timestamp, and the port rate);
// the receiver echoes the header on the ack, and the sender computes
// each hop's utilisation
//
//	U_i = qlen_i*8/(rate_i*T) + txRate_i/rate_i
//
// from consecutive samples, reacting to the bottleneck max U: a
// multiplicative alignment toward the target utilisation Eta when the
// path runs hot, additive probing (bounded by MaxStage per alignment)
// when it runs cool.
//
// It implements the same reaction-point surface as dcqcn.RP / timely.RP
// (netsim's RateController) plus the INT-ack hook the NIC feeds when the
// scheme is selected, so the whole SRC stack runs unchanged on top of
// it.
package hpcc

import (
	"fmt"

	"srcsim/internal/obs/timeseries"
	"srcsim/internal/sim"
)

// Config holds the HPCC constants.
type Config struct {
	// LineRate is the NIC line rate in bits/s (default 40 Gbps).
	LineRate float64
	// MinRate is the rate floor (default 40 Mbps).
	MinRate float64
	// Eta is the target link utilisation the sender aligns to
	// (default 0.95).
	Eta float64
	// TBase is the base RTT that normalises queue depth into
	// utilisation (default 20 µs).
	TBase sim.Time
	// WaiBps is the additive-increase step per INT sample (default
	// 40 Mbps).
	WaiBps float64
	// MaxStage bounds consecutive additive increases before the sender
	// re-aligns multiplicatively to the measured utilisation (default 5).
	MaxStage int
	// CNPBeta is the multiplicative decrease applied on an explicit
	// congestion signal (a CNP), keeping the scheme safe on fabrics that
	// also emit them (default 0.8).
	CNPBeta float64
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.LineRate <= 0 {
		c.LineRate = 40e9
	}
	if c.MinRate <= 0 {
		c.MinRate = 40e6
	}
	if c.Eta <= 0 {
		c.Eta = 0.95
	}
	if c.TBase <= 0 {
		c.TBase = 20 * sim.Microsecond
	}
	if c.WaiBps <= 0 {
		c.WaiBps = 40e6
	}
	if c.MaxStage <= 0 {
		c.MaxStage = 5
	}
	if c.CNPBeta <= 0 {
		c.CNPBeta = 0.8
	}
	return c
}

// Validate reports inconsistent settings.
func (c Config) Validate() error {
	c = c.WithDefaults()
	if c.MinRate > c.LineRate {
		return fmt.Errorf("hpcc: MinRate %v exceeds LineRate %v", c.MinRate, c.LineRate)
	}
	if c.Eta > 1 {
		return fmt.Errorf("hpcc: Eta %v outside (0,1]", c.Eta)
	}
	if c.CNPBeta >= 1 {
		return fmt.Errorf("hpcc: CNPBeta %v outside (0,1)", c.CNPBeta)
	}
	return nil
}

// hopRef is the previous INT sample of one path hop, kept to derive the
// port's output rate from consecutive TxBytes counters.
type hopRef struct {
	node    uint32
	txBytes uint64
	tsNs    uint64
}

// RP is HPCC's per-flow rate state. It satisfies netsim.RateController
// and netsim.INTObserver.
type RP struct {
	cfg Config

	// OnRate, if set, observes every rate change (old, new in bits/s).
	OnRate func(oldRate, newRate float64)

	rate     float64
	prev     []hopRef
	lastU    float64
	incStage int

	// Counters.
	INTSamples    uint64
	RateDecreases uint64
	RateIncreases uint64
}

// NewRP returns an HPCC reaction point starting at line rate.
func NewRP(cfg Config) *RP {
	cfg = cfg.WithDefaults()
	return &RP{cfg: cfg, rate: cfg.LineRate}
}

// Rate implements netsim.RateController.
func (rp *RP) Rate() float64 { return rp.rate }

// Utilisation returns the bottleneck utilisation of the last INT sample.
func (rp *RP) Utilisation() float64 { return rp.lastU }

// OnBytesSent implements netsim.RateController (HPCC is INT-clocked;
// bytes sent carry no signal).
func (rp *RP) OnBytesSent(int) {}

// OnCongestionSignal implements netsim.RateController: an explicit
// congestion notification is treated as a fixed multiplicative decrease.
func (rp *RP) OnCongestionSignal() {
	rp.setRate(rp.rate * rp.cfg.CNPBeta)
}

// NeedsAck implements netsim.RateController: HPCC needs per-packet acks
// to carry the echoed INT header back.
func (rp *RP) NeedsAck() bool { return true }

// SetRateListener implements netsim.RateController.
func (rp *RP) SetRateListener(fn func(oldRate, newRate float64)) { rp.OnRate = fn }

// OnAck implements netsim.RateController; the decision runs in OnINTAck,
// which the NIC invokes first on INT-carrying acks.
func (rp *RP) OnAck(sim.Time) {}

// OnINTAck implements netsim.INTObserver: one echoed INT header drives
// one HPCC decision against the bottleneck hop.
func (rp *RP) OnINTAck(h *INTHeader) {
	rp.INTSamples++
	tBase := float64(rp.cfg.TBase) / float64(sim.Second)
	u := 0.0
	for i, hop := range h.Hops {
		rateBps := float64(hop.RateBps)
		if rateBps <= 0 {
			continue
		}
		uHop := float64(hop.Queue) * 8 / (rateBps * tBase)
		// The port's output rate from consecutive TxBytes samples; a
		// first sample or a path change (ECMP failover) contributes the
		// queue term only.
		if i < len(rp.prev) {
			if p := rp.prev[i]; p.node == hop.Node && hop.TsNs > p.tsNs && hop.TxBytes >= p.txBytes {
				txRate := float64(hop.TxBytes-p.txBytes) * 8 / (float64(hop.TsNs-p.tsNs) / 1e9)
				uHop += txRate / rateBps
			}
		}
		if uHop > u {
			u = uHop
		}
	}
	if len(h.Hops) <= cap(rp.prev) {
		rp.prev = rp.prev[:len(h.Hops)]
	} else {
		rp.prev = make([]hopRef, len(h.Hops))
	}
	for i, hop := range h.Hops {
		rp.prev[i] = hopRef{node: hop.Node, txBytes: hop.TxBytes, tsNs: hop.TsNs}
	}
	rp.lastU = u

	switch {
	case u >= rp.cfg.Eta:
		// Path hot: align the rate multiplicatively to the target.
		rp.incStage = 0
		rp.setRate(rp.rate * rp.cfg.Eta / u)
	case rp.incStage >= rp.cfg.MaxStage && u > 0:
		// Probed long enough: re-align to the (cool) measurement.
		rp.incStage = 0
		rp.setRate(rp.rate*rp.cfg.Eta/u + rp.cfg.WaiBps)
	default:
		rp.incStage++
		rp.setRate(rp.rate + rp.cfg.WaiBps)
	}
}

func (rp *RP) setRate(newRate float64) {
	if newRate > rp.cfg.LineRate {
		newRate = rp.cfg.LineRate
	}
	if newRate < rp.cfg.MinRate {
		newRate = rp.cfg.MinRate
	}
	if newRate == rp.rate {
		return
	}
	old := rp.rate
	rp.rate = newRate
	if newRate < old {
		rp.RateDecreases++
	} else {
		rp.RateIncreases++
	}
	if rp.OnRate != nil {
		rp.OnRate(old, newRate)
	}
}

// SampleSeries is the reaction point's flight-recorder probe: the
// current rate and the bottleneck utilisation of the last INT sample.
// Read-only.
func (rp *RP) SampleSeries(track, prefix string, emit timeseries.Emit) {
	emit(track, prefix+"_rate_gbps", timeseries.Gauge, rp.rate/1e9)
	emit(track, prefix+"_util", timeseries.Gauge, rp.lastU)
}
