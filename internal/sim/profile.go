package sim

import (
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"time"
)

// profile is the engine's optional self-profiling state. It never
// influences event ordering: everything it records is wall-clock or
// structural, so runs with profiling on and off are identical in
// simulated behaviour.
type profile struct {
	wallStart time.Time
	sites     map[uintptr]*siteStat
}

type siteStat struct {
	count uint64
	wall  time.Duration
}

// SiteStat is the per-callback-site digest: one entry per distinct
// callback function observed while profiling, named via runtime symbol
// resolution (closures read as pkg.(*Type).method.funcN).
type SiteStat struct {
	Name  string
	Count uint64
	Wall  time.Duration
}

// ProfileStats is a snapshot of the engine's self-profiling.
type ProfileStats struct {
	// EventsProcessed counts callbacks executed since construction.
	EventsProcessed uint64
	// HeapHighWater is the largest pending-event count ever reached.
	HeapHighWater int
	// SimTime is the clock at snapshot time.
	SimTime Time
	// Wall is wall-clock time elapsed since EnableProfiling.
	Wall time.Duration
	// WallPerSimSecond is Wall divided by simulated seconds (0 when the
	// clock has not advanced).
	WallPerSimSecond float64
	// Sites is per-callback-site timing, sorted by total wall time
	// descending. Empty unless profiling was enabled.
	Sites []SiteStat
}

// EnableProfiling turns on per-event wall-clock and per-site timing.
// The cost is one time.Now pair and a map upsert per event, so leave it
// off for throughput-sensitive runs; heap high-water and event counts
// are tracked unconditionally either way.
func (e *Engine) EnableProfiling() {
	if e.prof != nil {
		return
	}
	e.prof = &profile{wallStart: time.Now(), sites: make(map[uintptr]*siteStat)}
}

// ProfilingEnabled reports whether EnableProfiling was called.
func (e *Engine) ProfilingEnabled() bool { return e.prof != nil }

// HeapHighWater returns the largest pending-event-queue depth observed.
func (e *Engine) HeapHighWater() int { return e.heapHW }

// ProfileStats snapshots the profiling state. Cheap fields are always
// populated; Wall and Sites require EnableProfiling.
func (e *Engine) ProfileStats() ProfileStats {
	ps := ProfileStats{
		EventsProcessed: e.Processed,
		HeapHighWater:   e.heapHW,
		SimTime:         e.now,
	}
	if e.prof == nil {
		return ps
	}
	ps.Wall = time.Since(e.prof.wallStart)
	if secs := e.now.Seconds(); secs > 0 {
		ps.WallPerSimSecond = ps.Wall.Seconds() / secs
	}
	ps.Sites = make([]SiteStat, 0, len(e.prof.sites))
	for pc, s := range e.prof.sites {
		name := "unknown"
		if fn := runtime.FuncForPC(pc); fn != nil {
			name = fn.Name()
		}
		ps.Sites = append(ps.Sites, SiteStat{Name: name, Count: s.count, Wall: s.wall})
	}
	sort.Slice(ps.Sites, func(i, j int) bool {
		if ps.Sites[i].Wall != ps.Sites[j].Wall {
			return ps.Sites[i].Wall > ps.Sites[j].Wall
		}
		return ps.Sites[i].Name < ps.Sites[j].Name
	})
	return ps
}

// PanicError annotates a panic escaping an event callback with the
// simulated time and the callback site, so a crash deep in a chaos run
// points at when and where instead of a bare value. The engine re-panics
// with it; recover and errors.As / type-assert to inspect.
type PanicError struct {
	// At is the simulated time the panicking event ran at.
	At Time
	// Site is the callback's runtime symbol (pkg.(*Type).method.funcN).
	Site string
	// Value is the original panic value.
	Value any
}

// Error implements error.
func (p *PanicError) Error() string {
	return fmt.Sprintf("sim: panic at t=%v in %s: %v", p.At, p.Site, p.Value)
}

// Unwrap exposes a wrapped error panic value to errors.Is/As chains.
func (p *PanicError) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// site resolves a callback's runtime symbol; only called on the panic
// path, so the reflection cost never touches normal event dispatch. fn is
// either a func() or a func(any).
func site(fn any) string {
	name := "unknown"
	if f := runtime.FuncForPC(reflect.ValueOf(fn).Pointer()); f != nil {
		name = f.Name()
	}
	return name
}

// annotatePanic re-panics a recovered callback panic as a *PanicError
// carrying sim-time and site context. Already-annotated panics (an
// inner engine, a nested exec) pass through unchanged.
func (e *Engine) annotatePanic(fn any) {
	r := recover()
	if r == nil {
		return
	}
	if pe, ok := r.(*PanicError); ok {
		panic(pe)
	}
	panic(&PanicError{At: e.now, Site: site(fn), Value: r})
}

// record accounts one callback's wall time to its site while profiling.
func (e *Engine) record(pc uintptr, dt time.Duration) {
	s := e.prof.sites[pc]
	if s == nil {
		s = &siteStat{}
		e.prof.sites[pc] = s
	}
	s.count++
	s.wall += dt
}

// exec runs one event callback, accounting it to its site when
// profiling. The disabled path costs a single nil check plus the
// deferred panic annotator.
func (e *Engine) exec(fn func()) {
	e.Processed++
	defer e.annotatePanic(fn)
	if e.prof == nil {
		fn()
		return
	}
	pc := reflect.ValueOf(fn).Pointer()
	t0 := time.Now()
	fn()
	e.record(pc, time.Since(t0))
}

// execArg is exec for arg-carrying callbacks.
func (e *Engine) execArg(fn func(any), arg any) {
	e.Processed++
	defer e.annotatePanic(fn)
	if e.prof == nil {
		fn(arg)
		return
	}
	pc := reflect.ValueOf(fn).Pointer()
	t0 := time.Now()
	fn(arg)
	e.record(pc, time.Since(t0))
}
