package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random source
// (xoshiro256**-style splitmix seeding). A dedicated implementation —
// rather than math/rand — pins the exact stream across Go releases, which
// keeps experiment outputs byte-identical for a given seed.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// Avoid the all-zero state (splitmix cannot produce it for all four
	// words simultaneously, but be defensive).
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split derives an independent generator from this one, for handing a
// private stream to a submodel without perturbing the parent's sequence
// ordering guarantees.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64() ^ 0xa0761d6478bd642f) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomises the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Norm returns a normally distributed value (Box–Muller).
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}
