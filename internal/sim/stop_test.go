package sim

import "testing"

// TestStopRunsNoFurtherCallbacks pins the cancellation contract: once a
// callback calls Stop, no later callback runs in that Run invocation —
// not even one scheduled at the very same instant.
func TestStopRunsNoFurtherCallbacks(t *testing.T) {
	e := NewEngine()
	var ran []int
	e.Schedule(10, func() { ran = append(ran, 1); e.Stop() })
	e.Schedule(10, func() { ran = append(ran, 2) }) // same instant, later seq
	e.Schedule(11, func() { ran = append(ran, 3) })
	e.Run(100)
	if len(ran) != 1 || ran[0] != 1 {
		t.Fatalf("callbacks after Stop: ran = %v, want [1]", ran)
	}
	if !e.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

// TestStopLeavesHeapConsistent checks that a stopped engine's heap
// still holds exactly the unexecuted events, in order, and that a
// resumed Run drains them deterministically.
func TestStopLeavesHeapConsistent(t *testing.T) {
	e := NewEngine()
	var ran []Time
	for i := 1; i <= 8; i++ {
		at := Time(i * 10)
		e.Schedule(at, func() {
			ran = append(ran, at)
			if at == 30 {
				e.Stop()
			}
		})
	}
	e.Run(1000)
	if e.Pending() != 5 {
		t.Fatalf("Pending() = %d after stop at t=30, want 5", e.Pending())
	}
	if at, ok := e.NextEventAt(); !ok || at != 40 {
		t.Fatalf("NextEventAt() = %v,%v, want 40,true", at, ok)
	}
	if e.Now() != 30 {
		t.Fatalf("clock at %v after stop, want 30", e.Now())
	}
	e.Run(1000)
	want := []Time{10, 20, 30, 40, 50, 60, 70, 80}
	if len(ran) != len(want) {
		t.Fatalf("resume ran %v, want %v", ran, want)
	}
	for i := range want {
		if ran[i] != want[i] {
			t.Fatalf("resume order %v, want %v", ran, want)
		}
	}
	if e.Stopped() {
		t.Fatal("Stopped() sticky across Run: a fresh Run must clear it")
	}
}

// TestStopRacedWithSameInstantEvent re-runs the same stop-at-an-instant
// schedule repeatedly: the set of executed events must be identical
// every time (the heap tiebreak is (At, seq), so a stop "racing" events
// at its own timestamp resolves deterministically by insertion order).
func TestStopRacedWithSameInstantEvent(t *testing.T) {
	run := func() []int {
		e := NewEngine()
		var ran []int
		for i := 0; i < 20; i++ {
			i := i
			e.Schedule(5, func() {
				ran = append(ran, i)
				if i == 7 {
					e.Stop()
				}
			})
		}
		e.Run(100)
		return ran
	}
	first := run()
	if len(first) != 8 {
		t.Fatalf("executed %d events, want 8 (0..7)", len(first))
	}
	for trial := 0; trial < 10; trial++ {
		got := run()
		if len(got) != len(first) {
			t.Fatalf("trial %d executed %v, first run %v", trial, got, first)
		}
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("trial %d executed %v, first run %v", trial, got, first)
			}
		}
	}
}

// TestNextEventAtEmpty covers the empty-heap branch.
func TestNextEventAtEmpty(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextEventAt(); ok {
		t.Fatal("NextEventAt on empty heap reported an event")
	}
}

// TestSetInterruptCadence verifies the interrupt hook fires every n
// executed events, between callbacks, and can be removed.
func TestSetInterruptCadence(t *testing.T) {
	e := NewEngine()
	hits := 0
	e.SetInterrupt(10, func() { hits++ })
	for i := 0; i < 95; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.RunUntilIdle()
	if hits != 9 {
		t.Fatalf("interrupt fired %d times over 95 events at n=10, want 9", hits)
	}
	e.SetInterrupt(0, nil)
	for i := 100; i < 120; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.RunUntilIdle()
	if hits != 9 {
		t.Fatalf("removed interrupt still fired (hits=%d)", hits)
	}
}

// TestSetInterruptCanStop is the guard wiring contract: an interrupt
// hook may call Stop, and the engine halts before the next callback.
func TestSetInterruptCanStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.SetInterrupt(5, func() { e.Stop() })
	for i := 0; i < 50; i++ {
		e.Schedule(Time(i), func() { ran++ })
	}
	e.Run(1000)
	if ran != 5 {
		t.Fatalf("ran %d events before interrupt-stop, want 5", ran)
	}
	if e.Pending() != 45 {
		t.Fatalf("Pending() = %d, want 45", e.Pending())
	}
}
