package sim

// Property-based tests for the event engine: seeded randomized schedules
// (insert / cancel / reschedule / interrupt mixes) are executed on the
// real 4-ary indexed-heap engine while a naive sorted-slice reference
// model shadows every operation. The engine must dispatch in exactly the
// reference order — time-ascending, FIFO-stable within an instant — and
// the heap must satisfy its structural invariants after every step.
// Pool-safety tests prove a recycled Event is never observable through a
// stale Handle.

import (
	"math/rand"
	"testing"
)

// shadowEv is one entry of the reference model: a plain slice popped by
// linear minimum scan on (at, seq) — trivially correct, no heap logic.
type shadowEv struct {
	at  Time
	seq uint64
	id  int
}

// shadow mirrors every schedule/cancel the test performs on the engine.
type shadow struct {
	events []shadowEv
	seq    uint64 // must advance in lockstep with Engine.seq
}

func (s *shadow) schedule(at Time, id int) {
	s.events = append(s.events, shadowEv{at: at, seq: s.seq, id: id})
	s.seq++
}

// popMin removes and returns the (at, seq)-minimum entry.
func (s *shadow) popMin() shadowEv {
	m := 0
	for i := 1; i < len(s.events); i++ {
		e, best := s.events[i], s.events[m]
		if e.at < best.at || (e.at == best.at && e.seq < best.seq) {
			m = i
		}
	}
	ev := s.events[m]
	s.events = append(s.events[:m], s.events[m+1:]...)
	return ev
}

func (s *shadow) cancel(id int) bool {
	for i, e := range s.events {
		if e.id == id {
			s.events = append(s.events[:i], s.events[i+1:]...)
			return true
		}
	}
	return false
}

// verifyHeap checks the 4-ary heap ordering property and the idx
// back-pointers of every pending event.
func verifyHeap(t *testing.T, e *Engine) {
	t.Helper()
	h := e.events
	for i, ev := range h {
		if int(ev.idx) != i {
			t.Fatalf("heap[%d] has idx %d", i, ev.idx)
		}
		if i == 0 {
			continue
		}
		p := h[(i-1)>>2]
		if ev.at < p.at || (ev.at == p.at && ev.seq < p.seq) {
			t.Fatalf("heap violation: child %d (at=%d seq=%d) < parent (at=%d seq=%d)",
				i, ev.at, ev.seq, p.at, p.seq)
		}
	}
}

// propHarness drives one randomized schedule against engine + shadow.
type propHarness struct {
	t      *testing.T
	e      *Engine
	s      shadow
	rng    *rand.Rand
	live   map[int]Handle // scheduled-but-unfired, by id
	nextID int
	order  []int // dispatch order actually observed
	budget int   // callbacks may keep scheduling until this runs out
}

func (p *propHarness) schedule(at Time) {
	id := p.nextID
	p.nextID++
	// Alternate the two schedule forms so both fn and (fn, arg) events
	// interleave in the same queue.
	if id%2 == 0 {
		p.live[id] = p.e.Schedule(at, func() { p.fired(id) })
	} else {
		p.live[id] = p.e.ScheduleArg(at, func(x any) { p.fired(x.(int)) }, id)
	}
	p.s.schedule(at, id)
}

// fired is every event's callback: check against the reference order,
// then randomly mutate the pending schedule (insert / cancel /
// reschedule), mirroring each mutation in the shadow.
func (p *propHarness) fired(id int) {
	want := p.s.popMin()
	if want.id != id {
		p.t.Fatalf("dispatch #%d: engine ran event %d, reference expects %d (at=%d seq=%d)",
			len(p.order), id, want.id, want.at, want.seq)
	}
	if p.e.Now() != want.at {
		p.t.Fatalf("dispatch #%d: clock %d, reference expects %d", len(p.order), p.e.Now(), want.at)
	}
	delete(p.live, id)
	p.order = append(p.order, id)
	verifyHeap(p.t, p.e)

	for p.budget > 0 && p.rng.Intn(3) == 0 {
		p.budget--
		switch p.rng.Intn(4) {
		case 0: // insert at a future instant
			p.schedule(p.e.Now() + Time(p.rng.Intn(50)+1))
		case 1: // insert at the current instant (same-instant batch growth)
			p.schedule(p.e.Now())
		case 2: // cancel a random live event
			if cid, ok := p.randomLive(); ok {
				p.e.Cancel(p.live[cid])
				if !p.s.cancel(cid) {
					p.t.Fatalf("shadow lost track of live event %d", cid)
				}
				delete(p.live, cid)
				verifyHeap(p.t, p.e)
			}
		case 3: // reschedule: cancel + reinsert later
			if cid, ok := p.randomLive(); ok {
				p.e.Cancel(p.live[cid])
				if !p.s.cancel(cid) {
					p.t.Fatalf("shadow lost track of live event %d", cid)
				}
				delete(p.live, cid)
				p.schedule(p.e.Now() + Time(p.rng.Intn(80)))
			}
		}
	}
}

// randomLive picks a live event id deterministically: ids are drawn by
// scanning upward from a random point, not by map iteration order.
func (p *propHarness) randomLive() (int, bool) {
	if len(p.live) == 0 {
		return 0, false
	}
	start := p.rng.Intn(p.nextID)
	for i := 0; i < p.nextID; i++ {
		if _, ok := p.live[(start+i)%p.nextID]; ok {
			return (start + i) % p.nextID, true
		}
	}
	return 0, false
}

func runProperty(t *testing.T, seed int64, initial, budget int, interruptEvery uint64) []int {
	t.Helper()
	p := &propHarness{
		t:      t,
		e:      NewEngine(),
		rng:    rand.New(rand.NewSource(seed)),
		live:   map[int]Handle{},
		budget: budget,
	}
	if interruptEvery > 0 {
		p.e.SetInterrupt(interruptEvery, func() {})
	}
	for i := 0; i < initial; i++ {
		// Clustered times force plenty of (at, seq) ties.
		p.schedule(Time(p.rng.Intn(initial / 2)))
	}
	p.e.RunUntilIdle()
	if len(p.s.events) != 0 {
		t.Fatalf("engine drained but reference still holds %d events", len(p.s.events))
	}
	if p.e.Pending() != 0 {
		t.Fatalf("engine reports %d pending after drain", p.e.Pending())
	}
	return p.order
}

// TestPropertyDispatchOrder cross-checks randomized insert/cancel/
// reschedule schedules against the sorted-slice reference across many
// seeds, with and without an interrupt hook installed.
func TestPropertyDispatchOrder(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		runProperty(t, seed, 200, 300, 0)
	}
	// The interrupt hook runs between callbacks; it must never perturb
	// dispatch order.
	for seed := int64(100); seed < 110; seed++ {
		with := runProperty(t, seed, 150, 200, 7)
		without := runProperty(t, seed, 150, 200, 0)
		if len(with) != len(without) {
			t.Fatalf("seed %d: interrupt hook changed dispatch count %d vs %d",
				seed, len(with), len(without))
		}
		for i := range with {
			if with[i] != without[i] {
				t.Fatalf("seed %d: interrupt hook changed dispatch order at #%d", seed, i)
			}
		}
	}
}

// TestPropertyPoolOnOffEquivalence proves the Event free list is
// semantically invisible: the same seeded schedule dispatches in the
// same order with recycling on and off.
func TestPropertyPoolOnOffEquivalence(t *testing.T) {
	prev := PoolingEnabled()
	defer SetPooling(prev)
	for seed := int64(0); seed < 10; seed++ {
		SetPooling(true)
		on := runProperty(t, seed, 120, 150, 0)
		SetPooling(false)
		off := runProperty(t, seed, 120, 150, 0)
		if len(on) != len(off) {
			t.Fatalf("seed %d: pooled run dispatched %d events, unpooled %d", seed, len(on), len(off))
		}
		for i := range on {
			if on[i] != off[i] {
				t.Fatalf("seed %d: pooled and unpooled dispatch orders diverge at #%d", seed, i)
			}
		}
	}
}

// TestStaleHandleAfterFire proves a handle goes stale the moment its
// event fires and that cancelling it can never touch the recycled Event,
// even after the Event object is reused for a new schedule.
func TestStaleHandleAfterFire(t *testing.T) {
	e := NewEngine()
	fired := 0
	hA := e.After(5, func() { fired++ })
	e.RunUntilIdle()
	if fired != 1 {
		t.Fatalf("fired %d", fired)
	}
	if !hA.Cancelled() {
		t.Fatal("handle must be stale after its event fires")
	}
	// The pooled Event object is now reused for B. A's stale handle
	// aliases the same *Event but carries the old generation.
	hB := e.After(5, func() { fired++ })
	if hA.ev != nil && hB.ev != nil && hA.ev == hB.ev && hA.gen == hB.gen {
		t.Fatal("recycle must bump the generation")
	}
	e.Cancel(hA) // must be a no-op on the recycled event
	if hB.Cancelled() {
		t.Fatal("cancelling a stale handle revoked an unrelated live event")
	}
	e.RunUntilIdle()
	if fired != 2 {
		t.Fatalf("event B lost: fired %d", fired)
	}
}

// TestStaleHandleAfterCancel proves double-cancel through an aliased
// recycled Event is inert.
func TestStaleHandleAfterCancel(t *testing.T) {
	e := NewEngine()
	fired := 0
	hA := e.After(5, func() { t.Fatal("cancelled event ran") })
	e.Cancel(hA)
	if !hA.Cancelled() {
		t.Fatal("handle must be stale after Cancel")
	}
	e.After(7, func() { fired++ }) // may occupy the recycled Event
	e.Cancel(hA)                   // stale; must not revoke it
	e.RunUntilIdle()
	if fired != 1 {
		t.Fatalf("event B lost to stale double-cancel: fired %d", fired)
	}
}

// TestSelfCancelInCallback: a callback cancelling its own (already
// recycled) handle must not corrupt the queue.
func TestSelfCancelInCallback(t *testing.T) {
	e := NewEngine()
	var h Handle
	next := 0
	h = e.After(1, func() {
		e.Cancel(h) // self-cancel: stale by dispatch time
		next++
	})
	e.After(2, func() { next++ })
	e.RunUntilIdle()
	if next != 2 {
		t.Fatalf("ran %d callbacks, want 2", next)
	}
}

// TestZeroHandleSafe: the zero Handle is inert everywhere.
func TestZeroHandleSafe(t *testing.T) {
	e := NewEngine()
	var h Handle
	if !h.Cancelled() {
		t.Fatal("zero handle must read as cancelled")
	}
	e.Cancel(h)
	e.After(1, func() {})
	e.Cancel(h)
	e.RunUntilIdle()
}

// TestPoolReuseChurn hammers alloc/recycle through a long chain of
// fire-then-schedule cycles and verifies the free list actually bounds
// allocation (every event beyond the first reuses the pooled object).
func TestPoolReuseChurn(t *testing.T) {
	prev := PoolingEnabled()
	defer SetPooling(prev)
	SetPooling(true)
	e := NewEngine()
	seen := map[*Event]struct{}{}
	n := 0
	var step func()
	step = func() {
		if n >= 1000 {
			return
		}
		n++
		h := e.After(1, step)
		seen[h.ev] = struct{}{}
	}
	step()
	e.RunUntilIdle()
	if n != 1000 {
		t.Fatalf("chain ran %d times", n)
	}
	// One event is in flight at a time: the whole chain must ride at most
	// two distinct Event objects (the first plus at most one recycle split).
	if len(seen) > 2 {
		t.Fatalf("chain of 1000 one-shot events used %d Event objects; free list broken", len(seen))
	}
}
