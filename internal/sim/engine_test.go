package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.RunUntilIdle()
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("events at equal time ran out of order: pos %d got %d", i, v)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.RunUntilIdle()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(5, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative After delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	fired := make(map[Time]bool)
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.Schedule(at, func() { fired[at] = true })
	}
	e.Run(10)
	if !fired[5] || !fired[10] {
		t.Fatalf("events at or before boundary should fire: %v", fired)
	}
	if fired[15] || fired[20] {
		t.Fatalf("events after boundary must not fire: %v", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("clock should rest at boundary, got %v", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	e.RunUntilIdle()
	if !fired[15] || !fired[20] {
		t.Fatal("remaining events should fire on resume")
	}
}

func TestRunAdvancesClockToBoundaryWhenIdle(t *testing.T) {
	e := NewEngine()
	e.Run(1000)
	if e.Now() != 1000 {
		t.Fatalf("idle Run should advance clock to boundary, got %v", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.Schedule(10, func() { ran = true })
	e.Cancel(ev)
	e.Cancel(ev) // double cancel is a no-op
	e.Cancel(Handle{})
	e.RunUntilIdle()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	var got []int
	var evs []Handle
	for i := 0; i < 10; i++ {
		i := i
		evs = append(evs, e.Schedule(Time(i), func() { got = append(got, i) }))
	}
	e.Cancel(evs[3])
	e.Cancel(evs[7])
	e.RunUntilIdle()
	if len(got) != 8 {
		t.Fatalf("got %d events, want 8 (%v)", len(got), got)
	}
	for _, v := range got {
		if v == 3 || v == 7 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i), func() {
			count++
			if count == 4 {
				e.Stop()
			}
		})
	}
	e.RunUntilIdle()
	if count != 4 {
		t.Fatalf("count = %d after Stop, want 4", count)
	}
	e.RunUntilIdle()
	if count != 10 {
		t.Fatalf("count = %d after resume, want 10", count)
	}
}

func TestStep(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(1, func() { n++ })
	e.Schedule(2, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("first Step: n=%d", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("second Step: n=%d", n)
	}
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	stop := e.Ticker(10, func() { ticks = append(ticks, e.Now()) })
	e.Schedule(35, func() { stop() })
	e.RunUntilIdle()
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v, want 3 ticks", ticks)
	}
	for i, at := range []Time{10, 20, 30} {
		if ticks[i] != at {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], at)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	e := NewEngine()
	n := 0
	var stop func()
	stop = e.Ticker(5, func() {
		n++
		if n == 2 {
			stop()
		}
	})
	e.RunUntilIdle()
	if n != 2 {
		t.Fatalf("ticker fired %d times after in-callback stop, want 2", n)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.After(1, recurse)
		}
	}
	e.After(0, recurse)
	e.RunUntilIdle()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != 99 {
		t.Fatalf("Now() = %v, want 99", e.Now())
	}
}

func TestTimeConversions(t *testing.T) {
	if Second.Seconds() != 1 {
		t.Fatalf("Second.Seconds() = %v", Second.Seconds())
	}
	if (10 * Millisecond).Millis() != 10 {
		t.Fatalf("Millis conversion wrong")
	}
	if (3 * Microsecond).Micros() != 3 {
		t.Fatalf("Micros conversion wrong")
	}
	if FromSeconds(0.5) != 500*Millisecond {
		t.Fatalf("FromSeconds(0.5) = %v", FromSeconds(0.5))
	}
}

// Property: events always run in nondecreasing time order, regardless of
// insertion order.
func TestPropertyEventOrder(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, off := range offsets {
			at := Time(off)
			e.Schedule(at, func() { fired = append(fired, at) })
		}
		e.RunUntilIdle()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j%97), func() {})
		}
		e.RunUntilIdle()
	}
}

func TestSamplerFiresImmediatelyThenPeriodically(t *testing.T) {
	e := NewEngine()
	e.Schedule(3, func() {}) // advance the clock before the sampler starts
	e.Run(MaxTime)
	var ticks []Time
	stop := e.Sampler(10, func() { ticks = append(ticks, e.Now()) })
	e.Schedule(28, func() { stop() })
	e.RunUntilIdle()
	want := []Time{3, 13, 23}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i, at := range want {
		if ticks[i] != at {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], at)
		}
	}
}

func TestSamplerStopInsideCallback(t *testing.T) {
	e := NewEngine()
	n := 0
	var stop func()
	stop = e.Sampler(5, func() {
		n++
		if n == 3 {
			stop()
		}
	})
	e.RunUntilIdle()
	if n != 3 {
		t.Fatalf("sampler fired %d times after in-callback stop, want 3", n)
	}
}
