package sim

import (
	"errors"
	"strings"
	"testing"
)

// TestPanicAnnotation: a panic escaping an event callback must arrive
// wrapped as *PanicError carrying the sim time and callback site, with
// the original value preserved.
func TestPanicAnnotation(t *testing.T) {
	eng := NewEngine()
	eng.After(5*Microsecond, func() { panic("boom") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("want *PanicError, got %T: %v", r, r)
		}
		if pe.At != 5*Microsecond {
			t.Errorf("At = %v, want 5µs", pe.At)
		}
		if pe.Value != "boom" {
			t.Errorf("Value = %v, want boom", pe.Value)
		}
		if !strings.Contains(pe.Site, "sim.") {
			t.Errorf("Site %q does not name the callback package", pe.Site)
		}
		if msg := pe.Error(); !strings.Contains(msg, "panic at t=5µs") || !strings.Contains(msg, "boom") {
			t.Errorf("Error() = %q, want sim time and value", msg)
		}
	}()
	eng.RunUntilIdle()
}

// TestPanicAnnotationUnwrap: an error panic value stays reachable via
// errors.Is through the PanicError wrapper.
func TestPanicAnnotationUnwrap(t *testing.T) {
	sentinel := errors.New("sentinel failure")
	eng := NewEngine()
	eng.After(Millisecond, func() { panic(sentinel) })
	defer func() {
		pe, ok := recover().(*PanicError)
		if !ok {
			t.Fatal("want *PanicError")
		}
		if !errors.Is(pe, sentinel) {
			t.Error("errors.Is cannot reach the wrapped error")
		}
	}()
	eng.RunUntilIdle()
}

// TestPanicAnnotationNoDoubleWrap: an already-annotated panic crossing
// another exec boundary passes through unchanged.
func TestPanicAnnotationNoDoubleWrap(t *testing.T) {
	eng := NewEngine()
	inner := &PanicError{At: 7, Site: "x", Value: "y"}
	eng.After(0, func() { panic(inner) })
	defer func() {
		if got := recover(); got != inner {
			t.Fatalf("inner PanicError was re-wrapped: %v", got)
		}
	}()
	eng.RunUntilIdle()
}
