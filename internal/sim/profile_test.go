package sim

import (
	"strings"
	"testing"
)

func TestHeapHighWaterTrackedUnconditionally(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i), func() {})
	}
	if e.HeapHighWater() != 10 {
		t.Fatalf("heap high water %d, want 10", e.HeapHighWater())
	}
	e.RunUntilIdle()
	// Draining must not lower the recorded high-water mark.
	if e.HeapHighWater() != 10 {
		t.Fatalf("heap high water after drain %d, want 10", e.HeapHighWater())
	}
	ps := e.ProfileStats()
	if ps.EventsProcessed != 10 || ps.HeapHighWater != 10 {
		t.Fatalf("stats %+v", ps)
	}
	if ps.Sites != nil {
		t.Fatal("sites populated without EnableProfiling")
	}
}

func TestProfilingCollectsSites(t *testing.T) {
	e := NewEngine()
	e.EnableProfiling()
	if !e.ProfilingEnabled() {
		t.Fatal("profiling not enabled")
	}
	tickA := func() {}
	var tickB func()
	n := 0
	tickB = func() {
		n++
		if n < 5 {
			e.After(Millisecond, tickB)
		}
	}
	for i := 0; i < 3; i++ {
		e.Schedule(Time(i)*Microsecond, tickA)
	}
	e.After(Millisecond, tickB)
	e.RunUntilIdle()

	ps := e.ProfileStats()
	if ps.EventsProcessed != 8 {
		t.Fatalf("processed %d, want 8", ps.EventsProcessed)
	}
	if ps.SimTime != 5*Millisecond {
		t.Fatalf("sim time %v, want 5ms", ps.SimTime)
	}
	if len(ps.Sites) != 2 {
		t.Fatalf("got %d sites, want 2: %+v", len(ps.Sites), ps.Sites)
	}
	var counts []uint64
	for _, s := range ps.Sites {
		if !strings.Contains(s.Name, "sim.") {
			t.Fatalf("site name %q lacks package qualifier", s.Name)
		}
		counts = append(counts, s.Count)
	}
	if counts[0]+counts[1] != 8 {
		t.Fatalf("site counts %v do not sum to 8", counts)
	}
	if ps.WallPerSimSecond <= 0 {
		t.Fatalf("wall-per-sim-second %v, want > 0", ps.WallPerSimSecond)
	}
}

func TestProfilingDoesNotPerturbDeterminism(t *testing.T) {
	run := func(profiled bool) []Time {
		e := NewEngine()
		if profiled {
			e.EnableProfiling()
		}
		var order []Time
		rng := NewRNG(42)
		var spawn func()
		spawn = func() {
			order = append(order, e.Now())
			if len(order) < 50 {
				e.After(Time(rng.Intn(100)+1), spawn)
			}
		}
		e.After(1, spawn)
		e.RunUntilIdle()
		return order
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d at %v (plain) vs %v (profiled)", i, a[i], b[i])
		}
	}
}
