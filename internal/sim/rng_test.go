package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[r.Intn(10)]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("Intn(10) bucket %d count %d far from uniform", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := NewRNG(11)
	const mean = 25.0
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("Exp mean = %v, want ~%v", got, mean)
	}
}

func TestExpSCVIsOne(t *testing.T) {
	// The squared coefficient of variation of an exponential is 1; the
	// workload generators rely on this to produce the paper's "micro"
	// traces.
	r := NewRNG(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Exp(10)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	scv := variance / (mean * mean)
	if math.Abs(scv-1) > 0.05 {
		t.Fatalf("exponential SCV = %v, want ~1", scv)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(17)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Norm(5, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-5) > 0.05 || math.Abs(sd-2) > 0.05 {
		t.Fatalf("Norm moments mean=%v sd=%v, want 5, 2", mean, sd)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := NewRNG(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := NewRNG(23)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle changed multiset, sum=%d", sum)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(99)
	child := parent.Split()
	// Child stream should not be identical to the parent's continuation.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream overlaps parent: %d/100", same)
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkRNGExp(b *testing.B) {
	r := NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Exp(10)
	}
}
