// Package sim provides the deterministic discrete-event simulation kernel
// shared by every simulator in this repository: a nanosecond-resolution
// virtual clock, a 4-ary indexed-heap event queue with a stable tiebreak,
// timers, and a seeded random-number source.
//
// The kernel is deliberately single-threaded: all model state is mutated
// only from event callbacks, which the engine runs one at a time in
// (time, insertion) order. Determinism across runs with the same seed is a
// hard invariant relied on by the experiment harness.
//
// Events are pooled: the engine recycles Event objects through a per-engine
// free list once they fire or are cancelled. Callers therefore never hold a
// *Event; Schedule and After return a generation-checked Handle whose
// Cancel degrades to a no-op once the underlying Event has been recycled.
package sim

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation. It is a distinct type to keep wall-clock durations from
// leaking into the models.
type Time int64

// Common time unit constants, usable as multipliers: 5*sim.Microsecond.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// MaxTime is the largest representable simulation time.
const MaxTime Time = math.MaxInt64

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Duration converts t to a time.Duration for formatting.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String renders the time with an adaptive unit, e.g. "12.5ms".
func (t Time) String() string { return t.Duration().String() }

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// pooling is the process-wide default for event free-list recycling,
// captured by each engine at construction. It exists so the determinism
// test matrix can prove pooled and unpooled runs are byte-identical; leave
// it on otherwise.
var pooling atomic.Bool

func init() { pooling.Store(true) }

// SetPooling sets the process-wide default for Event free-list recycling.
// Engines capture the value at NewEngine time; changing it never affects a
// live engine.
func SetPooling(on bool) { pooling.Store(on) }

// PoolingEnabled reports the current process-wide default.
func PoolingEnabled() bool { return pooling.Load() }

// Event is a scheduled callback. Events are ordered by (at, seq) where seq
// is the insertion order, so two events at the same instant run in the
// order they were scheduled. Events are engine-owned and recycled; callers
// interact with them only through Handles.
type Event struct {
	at  Time
	fn  func()
	afn func(any) // arg-carrying callback; set instead of fn by ScheduleArg
	arg any
	seq uint64
	idx int32 // heap index; -1 once popped or cancelled
	gen uint32
}

// Handle identifies one scheduled event. It is a value type: copy it
// freely, compare it to the zero Handle, pass it to Cancel. A Handle goes
// stale the moment its event fires, is cancelled, or is recycled — every
// operation on a stale handle is a safe no-op.
type Handle struct {
	ev  *Event
	gen uint32
}

// Cancelled reports whether the handle no longer identifies a pending
// event: the zero Handle, a fired event, a cancelled event, or an Event
// object since recycled for a different schedule.
func (h Handle) Cancelled() bool { return h.ev == nil || h.ev.gen != h.gen }

// Engine is the discrete-event scheduler. The zero value is not ready;
// use NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  []*Event // 4-ary min-heap on (at, seq)
	free    []*Event // recycled Event objects (pool == true)
	pool    bool
	stopped bool
	heapHW  int
	prof    *profile
	// Processed counts events executed since construction; useful for
	// progress reporting and as a runaway guard in tests.
	Processed uint64

	// interrupt hook: intrFn runs every intrEvery executed events inside
	// Run. It is invoked between callbacks (never re-entrantly), so it
	// may call Stop or inspect engine state safely.
	intrEvery uint64
	intrFn    func()
	intrAcc   uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{pool: pooling.Load()}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled-but-unfired events.
func (e *Engine) Pending() int { return len(e.events) }

// alloc takes an Event from the free list, or heap-allocates one.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &Event{}
}

// recycle retires an Event: the generation bump invalidates every
// outstanding Handle before the object can be handed out again.
func (e *Engine) recycle(ev *Event) {
	ev.gen++
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	if e.pool {
		e.free = append(e.free, ev)
	}
}

// Schedule runs fn at absolute time at. Scheduling in the past panics: it
// always indicates a model bug, and silently clamping would mask it.
// The returned Handle may be passed to Cancel.
func (e *Engine) Schedule(at Time, fn func()) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	ev := e.alloc()
	ev.at = at
	ev.fn = fn
	ev.seq = e.seq
	e.seq++
	e.push(ev)
	return Handle{ev: ev, gen: ev.gen}
}

// ScheduleArg runs fn(arg) at absolute time at. It exists for hot paths:
// a callback that would close over one pointer can instead pass it as arg
// and use a long-lived func(any), avoiding a closure allocation per event
// (a pointer stored in an interface does not allocate).
func (e *Engine) ScheduleArg(at Time, fn func(any), arg any) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	ev := e.alloc()
	ev.at = at
	ev.afn = fn
	ev.arg = arg
	ev.seq = e.seq
	e.seq++
	e.push(ev)
	return Handle{ev: ev, gen: ev.gen}
}

// After runs fn after delay d (d may be zero; negative panics).
func (e *Engine) After(d Time, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.Schedule(e.now+d, fn)
}

// AfterArg runs fn(arg) after delay d (d may be zero; negative panics).
func (e *Engine) AfterArg(d Time, fn func(any), arg any) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.ScheduleArg(e.now+d, fn, arg)
}

// Cancel removes a scheduled event. Cancelling a fired, already cancelled,
// recycled, or zero handle is a no-op, so callers can cancel
// unconditionally.
func (e *Engine) Cancel(h Handle) {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.idx < 0 {
		return
	}
	e.removeAt(int(ev.idx))
	e.recycle(ev)
}

// Stop makes the current Run call return after the in-flight event
// completes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop was called since Run last started.
func (e *Engine) Stopped() bool { return e.stopped }

// NextEventAt returns the time of the earliest pending event; ok is
// false when the queue is empty.
func (e *Engine) NextEventAt() (at Time, ok bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// SetInterrupt installs fn to run every n executed events inside Run,
// between callbacks. The hook is the bridge to wall-clock supervision:
// it may read wall time, poll atomic cancellation flags, and call Stop,
// none of which perturbs event ordering. n == 0 or fn == nil removes
// the hook.
func (e *Engine) SetInterrupt(n uint64, fn func()) {
	if n == 0 || fn == nil {
		e.intrEvery, e.intrFn, e.intrAcc = 0, nil, 0
		return
	}
	e.intrEvery, e.intrFn, e.intrAcc = n, fn, 0
}

// Run executes events until the queue drains, the clock passes until, or
// Stop is called. Events scheduled exactly at until are executed. The
// clock is left at the last executed event (or until, if that is later
// and events remain).
func (e *Engine) Run(until Time) {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		at := e.events[0].at
		if at > until {
			e.now = until
			return
		}
		e.now = at
		// Same-instant batch: drain every event at this timestamp —
		// including ones the callbacks schedule at it — before
		// re-checking the boundary.
		for {
			e.dispatchHead()
			if e.intrFn != nil {
				e.intrAcc++
				if e.intrAcc >= e.intrEvery {
					e.intrAcc = 0
					e.intrFn()
				}
			}
			if e.stopped || len(e.events) == 0 || e.events[0].at != at {
				break
			}
		}
	}
	if len(e.events) == 0 && e.now < until && until != MaxTime {
		e.now = until
	}
}

// RunUntilIdle executes events until none remain or Stop is called.
func (e *Engine) RunUntilIdle() { e.Run(MaxTime) }

// Step executes exactly one event if any is pending, returning true if an
// event ran.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	e.now = e.events[0].at
	e.dispatchHead()
	return true
}

// dispatchHead pops the earliest event, recycles it, and runs its
// callback. The recycle happens before the callback so that a
// self-referential Handle held by the callback is already stale — and so
// the Event object is immediately reusable by anything the callback
// schedules.
func (e *Engine) dispatchHead() {
	ev := e.popHead()
	fn, afn, arg := ev.fn, ev.afn, ev.arg
	e.recycle(ev)
	if afn != nil {
		e.execArg(afn, arg)
	} else {
		e.exec(fn)
	}
}

// Ticker invokes fn every period until cancelled via the returned stop
// function. The first tick fires one period from now. fn runs with the
// engine clock at each tick time.
func (e *Engine) Ticker(period Time, fn func()) (stop func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: ticker period %v must be positive", period))
	}
	var ev Handle
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			ev = e.After(period, tick)
		}
	}
	ev = e.After(period, tick)
	return func() {
		stopped = true
		e.Cancel(ev)
	}
}

// Sampler invokes fn at the current instant and then every period until
// cancelled via the returned stop function — Ticker with an immediate
// first fire. It is the flight recorder's scheduling hook: sampling is
// an ordinary engine event, so a recorded run replays the exact same
// event sequence every time, and the t=0 state is always captured.
// fn runs with the engine clock at each sample time.
func (e *Engine) Sampler(period Time, fn func()) (stop func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: sampler period %v must be positive", period))
	}
	var ev Handle
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			ev = e.After(period, tick)
		}
	}
	ev = e.Schedule(e.now, tick)
	return func() {
		stopped = true
		e.Cancel(ev)
	}
}

// The event queue is a 4-ary indexed min-heap on (at, seq), sifted with
// inlined comparisons: no interface dispatch, no `any` boxing, and half
// the tree depth of the binary heap it replaced. idx tracking makes
// Cancel O(log4 n) instead of a scan.

// push inserts ev and restores the heap property upward.
func (e *Engine) push(ev *Event) {
	i := len(e.events)
	e.events = append(e.events, ev)
	if len(e.events) > e.heapHW {
		e.heapHW = len(e.events)
	}
	h := e.events
	for i > 0 {
		p := (i - 1) >> 2
		pe := h[p]
		if !(ev.at < pe.at || (ev.at == pe.at && ev.seq < pe.seq)) {
			break
		}
		h[i] = pe
		pe.idx = int32(i)
		i = p
	}
	h[i] = ev
	ev.idx = int32(i)
}

// popHead removes and returns the minimum event.
func (e *Engine) popHead() *Event {
	h := e.events
	n := len(h) - 1
	ev := h[0]
	last := h[n]
	h[n] = nil
	e.events = h[:n]
	if n > 0 {
		h[0] = last
		e.siftDown(0)
	}
	ev.idx = -1
	return ev
}

// removeAt deletes the event at heap index i (Cancel's path).
func (e *Engine) removeAt(i int) {
	h := e.events
	n := len(h) - 1
	ev := h[i]
	last := h[n]
	h[n] = nil
	e.events = h[:n]
	if i < n {
		h[i] = last
		last.idx = int32(i)
		e.siftDown(i)
		if e.events[i] == last {
			e.siftUp(i)
		}
	}
	ev.idx = -1
}

func (e *Engine) siftUp(i int) {
	h := e.events
	ev := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		pe := h[p]
		if !(ev.at < pe.at || (ev.at == pe.at && ev.seq < pe.seq)) {
			break
		}
		h[i] = pe
		pe.idx = int32(i)
		i = p
	}
	h[i] = ev
	ev.idx = int32(i)
}

func (e *Engine) siftDown(i int) {
	h := e.events
	n := len(h)
	ev := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		// Minimum of up to four children.
		m, me := c, h[c]
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			je := h[j]
			if je.at < me.at || (je.at == me.at && je.seq < me.seq) {
				m, me = j, je
			}
		}
		if !(me.at < ev.at || (me.at == ev.at && me.seq < ev.seq)) {
			break
		}
		h[i] = me
		me.idx = int32(i)
		i = m
	}
	h[i] = ev
	ev.idx = int32(i)
}
