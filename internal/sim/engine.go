// Package sim provides the deterministic discrete-event simulation kernel
// shared by every simulator in this repository: a nanosecond-resolution
// virtual clock, a binary-heap event queue with a stable tiebreak, timers,
// and a seeded random-number source.
//
// The kernel is deliberately single-threaded: all model state is mutated
// only from event callbacks, which the engine runs one at a time in
// (time, insertion) order. Determinism across runs with the same seed is a
// hard invariant relied on by the experiment harness.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation. It is a distinct type to keep wall-clock durations from
// leaking into the models.
type Time int64

// Common time unit constants, usable as multipliers: 5*sim.Microsecond.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// MaxTime is the largest representable simulation time.
const MaxTime Time = math.MaxInt64

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Duration converts t to a time.Duration for formatting.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String renders the time with an adaptive unit, e.g. "12.5ms".
func (t Time) String() string { return t.Duration().String() }

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// Event is a scheduled callback. Events are ordered by (At, seq) where seq
// is the insertion order, so two events at the same instant run in the
// order they were scheduled.
type Event struct {
	At  Time
	Fn  func()
	seq uint64
	idx int // heap index; -1 once popped or cancelled
}

// Cancelled reports whether the event was cancelled or already fired.
func (e *Event) Cancelled() bool { return e == nil || e.idx < 0 && e.Fn == nil }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Engine is the discrete-event scheduler. The zero value is not ready;
// use NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	heapHW  int
	prof    *profile
	// Processed counts events executed since construction; useful for
	// progress reporting and as a runaway guard in tests.
	Processed uint64

	// interrupt hook: intrFn runs every intrEvery executed events inside
	// Run. It is invoked between callbacks (never re-entrantly), so it
	// may call Stop or inspect engine state safely.
	intrEvery uint64
	intrFn    func()
	intrAcc   uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled-but-unfired events.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn at absolute time at. Scheduling in the past panics: it
// always indicates a model bug, and silently clamping would mask it.
// The returned *Event may be passed to Cancel.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	ev := &Event{At: at, Fn: fn, seq: e.seq}
	e.seq++
	heap.Push(&e.events, ev)
	if len(e.events) > e.heapHW {
		e.heapHW = len(e.events)
	}
	return ev
}

// After runs fn after delay d (d may be zero; negative panics).
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.Schedule(e.now+d, fn)
}

// Cancel removes a scheduled event. Cancelling a fired or already
// cancelled event is a no-op, so callers can cancel unconditionally.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.idx < 0 {
		return
	}
	heap.Remove(&e.events, ev.idx)
	ev.idx = -1
	ev.Fn = nil
}

// Stop makes the current Run call return after the in-flight event
// completes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop was called since Run last started.
func (e *Engine) Stopped() bool { return e.stopped }

// NextEventAt returns the time of the earliest pending event; ok is
// false when the queue is empty.
func (e *Engine) NextEventAt() (at Time, ok bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].At, true
}

// SetInterrupt installs fn to run every n executed events inside Run,
// between callbacks. The hook is the bridge to wall-clock supervision:
// it may read wall time, poll atomic cancellation flags, and call Stop,
// none of which perturbs event ordering. n == 0 or fn == nil removes
// the hook.
func (e *Engine) SetInterrupt(n uint64, fn func()) {
	if n == 0 || fn == nil {
		e.intrEvery, e.intrFn, e.intrAcc = 0, nil, 0
		return
	}
	e.intrEvery, e.intrFn, e.intrAcc = n, fn, 0
}

// Run executes events until the queue drains, the clock passes until, or
// Stop is called. Events scheduled exactly at until are executed. The
// clock is left at the last executed event (or until, if that is later
// and events remain).
func (e *Engine) Run(until Time) {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.At > until {
			e.now = until
			return
		}
		heap.Pop(&e.events)
		e.now = next.At
		fn := next.Fn
		next.Fn = nil
		e.exec(fn)
		if e.intrFn != nil {
			e.intrAcc++
			if e.intrAcc >= e.intrEvery {
				e.intrAcc = 0
				e.intrFn()
			}
		}
	}
	if len(e.events) == 0 && e.now < until && until != MaxTime {
		e.now = until
	}
}

// RunUntilIdle executes events until none remain or Stop is called.
func (e *Engine) RunUntilIdle() { e.Run(MaxTime) }

// Step executes exactly one event if any is pending, returning true if an
// event ran.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	next := heap.Pop(&e.events).(*Event)
	e.now = next.At
	fn := next.Fn
	next.Fn = nil
	e.exec(fn)
	return true
}

// Ticker invokes fn every period until cancelled via the returned stop
// function. The first tick fires one period from now. fn runs with the
// engine clock at each tick time.
func (e *Engine) Ticker(period Time, fn func()) (stop func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: ticker period %v must be positive", period))
	}
	var ev *Event
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			ev = e.After(period, tick)
		}
	}
	ev = e.After(period, tick)
	return func() {
		stopped = true
		e.Cancel(ev)
	}
}
