package harness

import (
	"bytes"
	"strings"
	"testing"

	"srcsim/internal/cluster"
	"srcsim/internal/faults"
	"srcsim/internal/guard"
)

// TestCtrlFailoverArc runs the controller-crash experiment and checks
// the full epoch arc: boot, crash, lease expiries at the agents,
// standby takeover under a bumped epoch, reconvergence, and the fenced
// primary restart. The conservation auditor is armed by CongestionSpec,
// so the channel-accounting and epoch-guard invariants are asserted
// live throughout.
func TestCtrlFailoverArc(t *testing.T) {
	tpmCong, _ := testTPMs(t)
	res, err := CtrlFailover(tpmCong, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FailedOver {
		t.Fatal("standby never took over")
	}
	if !res.Fenced {
		t.Fatal("restarted primary was not fenced")
	}
	if res.ReconvergeMs <= 0 {
		t.Fatalf("no reconvergence after failover (%.2f ms)", res.ReconvergeMs)
	}
	if res.RetainedPct <= 0 {
		t.Fatalf("retained %.1f%% of oracle", res.RetainedPct)
	}
	s := res.Run.Summary
	if s.Completed+s.Failed != s.Submitted {
		t.Fatalf("accounting: %d + %d != %d", s.Completed, s.Failed, s.Submitted)
	}
	led := s.Ctrl
	if led == nil {
		t.Fatal("no control-plane ledger")
	}
	if led.Epoch < 2 {
		t.Fatalf("epoch %d after failover, want >= 2", led.Epoch)
	}
	if led.Sent != led.Delivered+led.Dropped+led.InFlight {
		t.Fatalf("channel conservation: sent %d != delivered %d + dropped %d + in-flight %d",
			led.Sent, led.Delivered, led.Dropped, led.InFlight)
	}
	if led.LeaseExpiries == 0 {
		t.Fatal("crash never expired a lease")
	}
	// Epoch ledger entries must be monotone in epoch and time.
	for i := 1; i < len(res.Epochs); i++ {
		if res.Epochs[i].Epoch < res.Epochs[i-1].Epoch {
			t.Fatalf("epoch ledger not monotone: %+v", res.Epochs)
		}
		if res.Epochs[i].AtMs < res.Epochs[i-1].AtMs {
			t.Fatalf("epoch ledger time-disordered: %+v", res.Epochs)
		}
	}
	var buf bytes.Buffer
	FprintCtrlFailover(&buf, res)
	for _, want := range []string{"failed over: true", "fenced: true", "epoch ledger"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, buf.String())
		}
	}
}

// TestCtrlDegradationMonotone sweeps the loss x delay corners at paper
// scale and checks that a pristine channel retains strictly more
// throughput than the dead corner: sustained heartbeat loss expires
// leases and pins agents at the conservative fallback read cut, so the
// lossy corner must pay in aggregate throughput.
func TestCtrlDegradationMonotone(t *testing.T) {
	tpmCong, _ := testTPMs(t)
	res, err := CtrlDegradation(tpmCong, 1200, 7, []float64{0, 0.99}, []float64{1, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("%d cells, want 4", len(res.Cells))
	}
	var best, worst *CtrlCell
	for i := range res.Cells {
		c := &res.Cells[i]
		if c.Loss == 0 && c.DelayX == 1 {
			best = c
		}
		if c.Loss == 0.99 && c.DelayX == 32 {
			worst = c
		}
		s := c.Run.Summary
		if s.Completed+s.Failed != s.Submitted {
			t.Fatalf("loss=%g delay=%gx accounting: %d + %d != %d",
				c.Loss, c.DelayX, s.Completed, s.Failed, s.Submitted)
		}
		if led := s.Ctrl; led == nil {
			t.Fatalf("loss=%g delay=%gx: no ledger", c.Loss, c.DelayX)
		} else if led.Sent != led.Delivered+led.Dropped+led.InFlight {
			t.Fatalf("loss=%g delay=%gx channel conservation violated", c.Loss, c.DelayX)
		}
	}
	if best == nil || worst == nil {
		t.Fatal("corner cells missing")
	}
	if worst.Run.Summary.Ctrl.Dropped == 0 {
		t.Fatal("lossy corner dropped nothing")
	}
	if worst.Run.Summary.Ctrl.Fallbacks == 0 {
		t.Fatal("dead channel never pinned the fallback weight")
	}
	if best.RetainedPct < worst.RetainedPct {
		t.Fatalf("degradation not monotone: pristine %.1f%% < lossy %.1f%%",
			best.RetainedPct, worst.RetainedPct)
	}
	// The dead corner must pay real throughput, not round to the oracle.
	if best.RetainedPct < 97 {
		t.Fatalf("pristine channel retained only %.1f%%", best.RetainedPct)
	}
	if worst.RetainedPct > 97 {
		t.Fatalf("dead channel retained %.1f%%, expected a visible loss", worst.RetainedPct)
	}
}

// ctrlFaultSpec builds a small in-band DCQCN-SRC run with one
// control-plane fault installed and the auditor armed.
func ctrlFaultRun(t *testing.T, ev faults.Event) *cluster.Result {
	t.Helper()
	tpmCong, _ := testTPMs(t)
	tr, err := VDITrace(7, 150)
	if err != nil {
		t.Fatal(err)
	}
	d := tr.Duration()
	spec := ctrlSpec(d)
	spec.TPM = tpmCong
	spec.Guard = guard.Config{Audit: true}
	if ev.At == 0 {
		ev.At = d / 4
	}
	if ev.Kind == faults.CtrlPartition && ev.Duration == 0 {
		ev.Duration = d / 4
	}
	spec.Faults = &faults.Schedule{Seed: 0xC7F0, Events: []faults.Event{ev}}
	c, err := cluster.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCtrlFaultKindsAccounting drives each new control-plane fault kind
// through a full run with the auditor armed: the workload accounting
// invariant (Completed + Failed == Submitted) and the channel/epoch
// invariants must hold under every kind.
func TestCtrlFaultKindsAccounting(t *testing.T) {
	cases := []struct {
		name string
		ev   faults.Event
	}{
		{"ctrl-drop", faults.Event{Kind: faults.CtrlDrop, Where: "target:0", Probability: 0.8}},
		{"ctrl-delay", faults.Event{Kind: faults.CtrlDelay, Where: "target:1", Factor: 40}},
		{"ctrl-partition", faults.Event{Kind: faults.CtrlPartition, Where: "target:0"}},
		{"controller-crash", faults.Event{Kind: faults.ControllerCrash, Where: "controller:0"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res := ctrlFaultRun(t, tc.ev)
			if res.Completed+res.Failed != res.Submitted {
				t.Fatalf("accounting: %d + %d != %d", res.Completed, res.Failed, res.Submitted)
			}
			if res.FaultsInjected == 0 {
				t.Fatal("fault never fired")
			}
			led := res.Ctrl
			if led == nil {
				t.Fatal("no control-plane ledger")
			}
			if led.Sent != led.Delivered+led.Dropped+led.InFlight {
				t.Fatalf("channel conservation: sent %d != delivered %d + dropped %d + in-flight %d",
					led.Sent, led.Delivered, led.Dropped, led.InFlight)
			}
		})
	}
}

// TestCtrlOffKeepsDirectWiring: the zero Ctrl config must build a
// cluster with no plane — the direct-call wiring — and produce a
// summary with no ctrl ledger, preserving historical JSON shape.
func TestCtrlOffKeepsDirectWiring(t *testing.T) {
	tpmCong, _ := testTPMs(t)
	tr, err := VDITrace(7, 100)
	if err != nil {
		t.Fatal(err)
	}
	spec := CongestionSpec()
	spec.Mode = cluster.DCQCNSRC
	spec.TPM = tpmCong
	c, err := cluster.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ctrl != nil {
		t.Fatal("control-plane ledger present with Ctrl disabled")
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "\"ctrl\"") {
		t.Fatal("summary JSON contains ctrl field with plane disabled")
	}
}
