package harness

// In-band control-plane evaluation (ISSUE 8 tentpole): SRC's telemetry
// and weight directives ride a lossy, delayed, reorderable channel
// (internal/ctrlplane) instead of direct function calls. Two
// experiments probe the consequences:
//
//   - ctrl-degradation sweeps channel loss x delay and measures how
//     much throughput SRC retains versus the direct-call oracle as its
//     control loop starves — the robustness analogue of Fig. 7.
//   - ctrl-failover crashes the primary controller mid-run with a warm
//     standby armed and reports the epoch arc (crash -> lease expiry ->
//     takeover -> reconverged) plus time-to-reconverge.
//
// All timing derives from the same trace-duration quantum as the
// chaos-adaptation scenarios (adaptQuantum), so reduced matrix-scale
// runs keep the full dynamics.

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"srcsim/internal/cluster"
	"srcsim/internal/core"
	"srcsim/internal/ctrlplane"
	"srcsim/internal/faults"
	"srcsim/internal/sim"
	"srcsim/internal/trace"
)

// CtrlConfig returns the control-plane tuning used by both experiments,
// scaled to the trace duration d. The lease ladder (live -> held ->
// fallback) and the standby watchdog all fit inside one run: lease
// expiry at 4q, failover at 6q, static fallback at 12q.
func CtrlConfig(d sim.Time) ctrlplane.Config {
	q := adaptQuantum(d)
	return ctrlplane.Config{
		Enabled:        true,
		BaseDelay:      q / 8,
		TelemetryEvery: q / 2,
		AckTimeout:     q / 2,
		MaxRetries:     5,
		BackoffCap:     4 * q,
		HeartbeatEvery: q,
		LeaseTimeout:   4 * q,
		GraceWindow:    8 * q,
		FailoverAfter:  6 * q,
		ReorderProb:    0.02,
		// The conservative write-protecting fallback the chaos-recovery
		// config uses: an agent cut off from its controller pins a static
		// read cut, so a dead control channel costs real read/aggregate
		// throughput instead of silently coasting at the neutral 1:1.
		FallbackWeight: 8,
	}
}

// ctrlSpec is the shared DCQCN-SRC testbed with the in-band plane
// armed: the congestion testbed plus a denser directive cadence
// (MinEventGap at one quantum) so the channel actually carries steering
// traffic at matrix scale.
func ctrlSpec(d sim.Time) cluster.Spec {
	spec := CongestionSpec()
	spec.Mode = cluster.DCQCNSRC
	spec.Ctrl = CtrlConfig(d)
	spec.SRC.MinEventGap = adaptQuantum(d)
	spec.Horizon = 3*d + 200*sim.Millisecond
	return spec
}

// runCtrlOracle runs the pristine comparison leg: the identical
// testbed and workload with the control plane off (direct calls) and no
// faults — the throughput ceiling in-band control is scored against.
func runCtrlOracle(name string, spec cluster.Spec, tpm *core.TPM, tr *trace.Trace, mods ...func(*cluster.Spec)) (*cluster.Result, error) {
	oracle := spec
	oracle.TPM = tpm
	oracle.Ctrl = ctrlplane.Config{}
	oracle.Faults = nil
	for _, m := range mods {
		m(&oracle)
	}
	co, err := cluster.New(oracle)
	if err != nil {
		return nil, err
	}
	res, err := co.Run(tr, nil)
	if err != nil {
		return nil, fmt.Errorf("harness: %s oracle leg: %w", name, err)
	}
	return res, nil
}

// CtrlCell is one loss x delay sweep point of ctrl-degradation.
type CtrlCell struct {
	// Loss is the per-message drop probability; DelayX multiplies the
	// quantum-scaled base delay.
	Loss   float64 `json:"loss"`
	DelayX float64 `json:"delay_x"`
	// Run is the cell's digest (its Summary.Ctrl ledger carries the
	// drop/retry/fallback counters).
	Run cluster.Digest `json:"run"`
	// RetainedPct is the cell's aggregated (windowed mean) throughput as
	// a percentage of the direct-call oracle's. The degraded channel's
	// cost lands on the read side: lease fallback pins the conservative
	// write-protecting weight, a read cut dynamic SRC would release.
	RetainedPct float64 `json:"retained_pct"`
}

// CtrlDegradationResult is the full sweep outcome.
type CtrlDegradationResult struct {
	Oracle cluster.Digest `json:"oracle"`
	Cells  []CtrlCell     `json:"cells"`
}

// CtrlDegradation sweeps the control channel's loss probability and
// base delay over the VDI congestion workload. Every cell runs the same
// trace on the same testbed; only the channel quality differs, so the
// throughput spread isolates what starving the control loop costs.
// Expect monotone degradation toward the lossy corner: lost heartbeats
// expire leases and pin agents at the conservative fallback read cut,
// lost directives strand stale weights, and delay ages the telemetry
// the controller steers by. The effect needs sustained channel death to
// clear run-to-run noise — at the paper-scale default (1200 requests,
// loss up to 0.99) the dead corner loses ~10% of aggregate throughput.
func CtrlDegradation(tpm *core.TPM, requests int, seed uint64, losses, delayXs []float64, mods ...func(*cluster.Spec)) (*CtrlDegradationResult, error) {
	tr, err := VDITrace(seed, requests)
	if err != nil {
		return nil, err
	}
	d := tr.Duration()
	base := ctrlSpec(d)

	ores, err := runCtrlOracle("ctrl-degradation", base, tpm, tr, mods...)
	if err != nil {
		return nil, err
	}
	out := &CtrlDegradationResult{Oracle: ores.Digest()}

	for _, loss := range losses {
		for _, dx := range delayXs {
			spec := base
			spec.TPM = tpm
			spec.Ctrl.LossProb = loss
			spec.Ctrl.BaseDelay = sim.Time(float64(spec.Ctrl.BaseDelay) * dx)
			for _, m := range mods {
				m(&spec)
			}
			c, err := cluster.New(spec)
			if err != nil {
				return nil, err
			}
			res, err := c.Run(tr, nil)
			if err != nil {
				return nil, fmt.Errorf("harness: ctrl-degradation loss=%g delay=%gx: %w", loss, dx, err)
			}
			cell := CtrlCell{Loss: loss, DelayX: dx, Run: res.Digest()}
			if ores.AggregatedGbps > 0 {
				cell.RetainedPct = res.AggregatedGbps / ores.AggregatedGbps * 100
			}
			out.Cells = append(out.Cells, cell)
		}
	}
	return out, nil
}

// CtrlFailoverResult is the controller-crash experiment's outcome.
type CtrlFailoverResult struct {
	// Run is the faulted in-band leg; Oracle the direct-call pristine
	// leg it is scored against.
	Run    cluster.Digest `json:"run"`
	Oracle cluster.Digest `json:"oracle"`
	// FailedOver: the standby took over (a "failover" epoch step).
	FailedOver bool `json:"failed_over"`
	// Fenced: the dead primary restarted after the takeover and was
	// fenced rather than resuming ("restart-fenced" epoch step).
	Fenced bool `json:"fenced"`
	// Epochs is the run's full epoch ledger (boot -> crash -> failover
	// -> reconverged -> restart-fenced).
	Epochs []ctrlplane.EpochStep `json:"epochs"`
	// ReconvergeMs is the span from the failover takeover to the first
	// directive of the new epoch applied at an agent — how long the
	// data plane steered blind.
	ReconvergeMs float64 `json:"reconverge_ms"`
	// RetainedPct is the faulted leg's aggregated throughput as a
	// percentage of the oracle's.
	RetainedPct float64 `json:"retained_pct"`
}

// CtrlFailover crashes the primary controller a quarter into the VDI
// run with the warm standby armed. The crash silences heartbeats:
// agent leases expire and hold last-known-good weights, the standby's
// watchdog fires and takes over under a bumped epoch with re-seeded
// monitor windows, and the restarted primary (half-way point) comes
// back fenced. The epoch guard keeps any straggler directives from the
// dead primary out of the data plane.
func CtrlFailover(tpm *core.TPM, requests int, seed uint64, mods ...func(*cluster.Spec)) (*CtrlFailoverResult, error) {
	tr, err := VDITrace(seed, requests)
	if err != nil {
		return nil, err
	}
	d := tr.Duration()
	spec := ctrlSpec(d)
	spec.TPM = tpm
	spec.Ctrl.Standby = true
	spec.Faults = &faults.Schedule{
		Seed: 0xC7A5,
		Events: []faults.Event{
			{At: d / 4, Kind: faults.ControllerCrash, Where: "controller:0", Duration: d / 4},
		},
	}

	ores, err := runCtrlOracle("ctrl-failover", spec, tpm, tr, mods...)
	if err != nil {
		return nil, err
	}

	for _, m := range mods {
		m(&spec)
	}
	c, err := cluster.New(spec)
	if err != nil {
		return nil, err
	}
	res, err := c.Run(tr, nil)
	if err != nil {
		return nil, fmt.Errorf("harness: ctrl-failover faulted leg: %w", err)
	}

	out := &CtrlFailoverResult{Run: res.Digest(), Oracle: ores.Digest()}
	if res.Ctrl != nil {
		out.Epochs = res.Ctrl.Epochs
		var failAt float64
		var failEpoch uint64
		for _, st := range res.Ctrl.Epochs {
			switch st.Reason {
			case "failover":
				out.FailedOver = true
				failAt, failEpoch = st.AtMs, st.Epoch
			case "restart-fenced":
				out.Fenced = true
			case "reconverged":
				if out.FailedOver && st.Epoch == failEpoch && out.ReconvergeMs == 0 {
					out.ReconvergeMs = st.AtMs - failAt
				}
			}
		}
	}
	if ores.AggregatedGbps > 0 {
		out.RetainedPct = res.AggregatedGbps / ores.AggregatedGbps * 100
	}
	return out, nil
}

// parseFloats parses a comma-separated float list parameter.
func parseFloats(name, s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("harness: param %s=%q: %w", name, s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// fprintCtrlLedger renders one run's control-plane ledger line.
func fprintCtrlLedger(w io.Writer, led *ctrlplane.Ledger) {
	if led == nil {
		return
	}
	fmt.Fprintf(w, "channel: sent %d | delivered %d | dropped %d | retries %d | abandoned %d\n",
		led.Sent, led.Delivered, led.Dropped, led.DirectiveRetries, led.DirectivesAbandoned)
	fmt.Fprintf(w, "liveness: lease expiries %d | fallbacks %d | recoveries %d | stale rejected %d | dups acked %d\n",
		led.LeaseExpiries, led.Fallbacks, led.LeaseRecoveries, led.StaleRejected, led.DupsAcked)
}

// FprintCtrlDegradation renders the loss x delay sweep table.
func FprintCtrlDegradation(w io.Writer, r *CtrlDegradationResult) {
	fmt.Fprintln(w, "ctrl-degradation: control-channel loss x delay sweep (DCQCN-SRC, in-band)")
	fmt.Fprintf(w, "oracle (direct calls)        read %5.2f | write %5.2f | aggregated %5.2f Gbps\n",
		r.Oracle.Summary.ReadGbps, r.Oracle.Summary.WriteGbps, r.Oracle.Summary.AggregatedGbps)
	for _, c := range r.Cells {
		fmt.Fprintf(w, "loss %4.2f delay %5.1fx  read %5.2f | agg %5.2f Gbps  retained %5.1f%%",
			c.Loss, c.DelayX, c.Run.Summary.ReadGbps, c.Run.Summary.AggregatedGbps, c.RetainedPct)
		if led := c.Run.Summary.Ctrl; led != nil {
			fmt.Fprintf(w, "  (dropped %d, retries %d, fallbacks %d)", led.Dropped, led.DirectiveRetries, led.Fallbacks)
		}
		fmt.Fprintln(w)
	}
}

// FprintCtrlFailover renders the failover arc and verdicts.
func FprintCtrlFailover(w io.Writer, r *CtrlFailoverResult) {
	fmt.Fprintln(w, "ctrl-failover: primary controller crash with warm standby (DCQCN-SRC, in-band)")
	fmt.Fprintf(w, "in-band     read %5.2f Gbps | write %5.2f Gbps | aggregated %5.2f Gbps\n",
		r.Run.Summary.ReadGbps, r.Run.Summary.WriteGbps, r.Run.Summary.AggregatedGbps)
	fmt.Fprintf(w, "oracle      read %5.2f Gbps | write %5.2f Gbps | aggregated %5.2f Gbps\n",
		r.Oracle.Summary.ReadGbps, r.Oracle.Summary.WriteGbps, r.Oracle.Summary.AggregatedGbps)
	fmt.Fprintf(w, "retained %.1f%% of oracle | failed over: %v | primary fenced: %v",
		r.RetainedPct, r.FailedOver, r.Fenced)
	if r.FailedOver {
		fmt.Fprintf(w, " | reconverged in %.2f ms", r.ReconvergeMs)
	}
	fmt.Fprintln(w)
	fprintCtrlLedger(w, r.Run.Summary.Ctrl)
	fmt.Fprintln(w, "epoch ledger:")
	for _, st := range r.Epochs {
		fmt.Fprintf(w, "  %8.2fms epoch %d (%s)\n", st.AtMs, st.Epoch, st.Reason)
	}
}
