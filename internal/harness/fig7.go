package harness

import (
	"fmt"
	"io"

	"srcsim/internal/cluster"
	"srcsim/internal/core"
	"srcsim/internal/netsim"
)

// CongestionResult is a paired DCQCN-only / DCQCN-SRC run (Figs. 7, 8,
// 10 and Table IV all build on it).
type CongestionResult struct {
	Baseline *cluster.Result
	SRC      *cluster.Result
}

// Improvement returns the aggregated-throughput gain of SRC over the
// baseline (e.g. 0.33 for the paper's 2:1 row).
func (c *CongestionResult) Improvement() float64 {
	if c.Baseline.AggregatedGbps == 0 {
		return 0
	}
	return c.SRC.AggregatedGbps/c.Baseline.AggregatedGbps - 1
}

// Fig7Throughput reproduces Figs. 7 and 8: the Sec. IV-D VDI-like
// workload on 1 initiator × 2 SSD-A targets, run under DCQCN-only and
// DCQCN-SRC. The result carries the per-millisecond read/write
// throughput series (Fig. 7) and pause-number series (Fig. 8). perDir is
// the write-request count (reads get 2×).
func Fig7Throughput(tpm *core.TPM, perDir int, seed uint64, mods ...func(*cluster.Spec)) (*CongestionResult, error) {
	return Fig7ThroughputCC(tpm, perDir, seed, netsim.CCDCQCN, mods...)
}

// Fig7ThroughputCC is Fig7Throughput under a chosen congestion-control
// algorithm — SRC consumes only rate events, so the same experiment runs
// unchanged over TIMELY (an extension beyond the paper). Optional mods
// adjust each run's spec (e.g. attach a metrics registry or tracer).
func Fig7ThroughputCC(tpm *core.TPM, perDir int, seed uint64, cc netsim.CCAlg, mods ...func(*cluster.Spec)) (*CongestionResult, error) {
	tr, err := VDITrace(seed, perDir)
	if err != nil {
		return nil, err
	}
	spec := CongestionSpec()
	spec.Net.CC = cc
	base, src, err := cluster.CompareModes(spec, tpm, tr, nil, mods...)
	if err != nil {
		return nil, err
	}
	return &CongestionResult{Baseline: base, SRC: src}, nil
}

// FprintFig7 renders both runtime throughput timelines plus the summary
// aggregates.
func FprintFig7(w io.Writer, res *CongestionResult) {
	fmt.Fprintln(w, "Fig. 7: runtime throughput under DCQCN-only and DCQCN-SRC")
	for _, r := range []struct {
		name string
		res  *cluster.Result
	}{{"DCQCN-only", res.Baseline}, {"DCQCN-SRC", res.SRC}} {
		fmt.Fprintf(w, "-- %s: read %.2f Gbps, write %.2f Gbps, aggregated %.2f Gbps\n",
			r.name, r.res.MeanReadGbps, r.res.MeanWriteGbps, r.res.AggregatedGbps)
		fprintSeries(w, "   read", r.res.ReadGbps)
		fprintSeries(w, "   write", r.res.WriteGbps)
	}
	fmt.Fprintf(w, "SRC aggregated improvement: %+.0f%%\n", res.Improvement()*100)
}

// FprintFig8 renders the pause-number timelines of the same runs.
func FprintFig8(w io.Writer, res *CongestionResult) {
	fmt.Fprintln(w, "Fig. 8: pause number (congestion signals at targets, per ms)")
	fprintSeries(w, "DCQCN-only pauses", res.Baseline.Pauses)
	fprintSeries(w, "DCQCN-SRC pauses", res.SRC.Pauses)
	fmt.Fprintf(w, "totals: DCQCN-only %d CNPs, DCQCN-SRC %d CNPs\n",
		res.Baseline.TotalCNPs, res.SRC.TotalCNPs)
}
