package harness

import (
	"fmt"
	"io"

	"srcsim/internal/devrun"
	"srcsim/internal/sim"
	"srcsim/internal/ssd"
	"srcsim/internal/sweep/pool"
)

// Fig5Cell is one point of the Fig. 5 grid: read/write throughput at one
// (inter-arrival, size, weight-ratio) combination.
type Fig5Cell struct {
	InterArrival sim.Time
	MeanSize     int
	W            int
	ReadGbps     float64
	WriteGbps    float64
}

// Fig5WeightSweep reproduces Fig. 5: the 4×4 workload grid
// (inter-arrival 10-25 µs × size 10-40 KB, identical read and write
// streams) swept over weight ratios. count is the per-direction request
// count per cell. Cells run in parallel.
func Fig5WeightSweep(cfg ssd.Config, ws []int, count int, seed uint64) ([]Fig5Cell, error) {
	if len(ws) == 0 {
		ws = []int{1, 2, 3, 4, 5, 6, 7, 8}
	}
	specs := devrun.DefaultGrid(count, seed)
	type job struct{ si, wi int }
	jobs := make([]job, 0, len(specs)*len(ws))
	for si := range specs {
		for wi := range ws {
			jobs = append(jobs, job{si, wi})
		}
	}
	cells := make([]Fig5Cell, len(jobs))
	err := pool.Pool{}.ForEach(len(jobs), func(ji int) error {
		j := jobs[ji]
		spec := specs[j.si]
		tr, err := spec.Trace()
		if err != nil {
			return err
		}
		res, err := devrun.Run(cfg, tr, ws[j.wi])
		if err != nil {
			return err
		}
		cells[ji] = Fig5Cell{
			InterArrival: spec.InterArrival,
			MeanSize:     spec.MeanSize,
			W:            ws[j.wi],
			ReadGbps:     res.ReadGbps,
			WriteGbps:    res.WriteGbps,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// FprintFig5 renders the sweep as one sub-table per workload cell,
// mirroring the paper's 4×4 panel layout.
func FprintFig5(w io.Writer, cells []Fig5Cell) {
	type key struct {
		ia   sim.Time
		size int
	}
	grouped := map[key][]Fig5Cell{}
	var order []key
	for _, c := range cells {
		k := key{c.InterArrival, c.MeanSize}
		if _, ok := grouped[k]; !ok {
			order = append(order, k)
		}
		grouped[k] = append(grouped[k], c)
	}
	fmt.Fprintln(w, "Fig. 5: I/O throughput across weight ratios (Gbps)")
	for _, k := range order {
		fmt.Fprintf(w, "inter-arrival %v, request size %d KB:\n", k.ia, k.size>>10)
		fmt.Fprintf(w, "  %4s %8s %8s\n", "w", "read", "write")
		for _, c := range grouped[k] {
			fmt.Fprintf(w, "  %4d %8.2f %8.2f\n", c.W, c.ReadGbps, c.WriteGbps)
		}
	}
}
