package harness

import (
	"io"
	"strings"
	"testing"
)

// TestCCMatrixSRCWins is the cc-matrix acceptance property: at the
// congested Fig. 7 operating point, turning SRC on retains strictly
// more aggregate throughput than SRC off for every registered scheme
// in the default sweep — SRC's storage-side scheduling is transport-
// agnostic, so the win must not depend on which CC generates the rate
// events.
func TestCCMatrixSRCWins(t *testing.T) {
	if testing.Short() {
		t.Skip("runs five paired cluster simulations; skipped with -short")
	}
	tpmCong, _ := testTPMs(t)
	schemes := []string{"dcqcn", "timely", "aimd", "hpcc", "pfc"}
	res, err := CCMatrix(tpmCong, 1200, 7, schemes)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(schemes) {
		t.Fatalf("%d rows, want %d", len(res.Rows), len(schemes))
	}
	if res.MaxAggGbps <= 0 {
		t.Fatalf("matrix max aggregate %v", res.MaxAggGbps)
	}
	for _, r := range res.Rows {
		if r.SRCGbps <= r.BaselineGbps {
			t.Errorf("%s: SRC-on %.3f Gbps does not beat SRC-off %.3f Gbps",
				r.Scheme, r.SRCGbps, r.BaselineGbps)
		}
		if r.RetentionOn <= r.RetentionOff {
			t.Errorf("%s: retention on %.3f <= off %.3f", r.Scheme, r.RetentionOn, r.RetentionOff)
		}
		if r.RetentionOn <= 0 || r.RetentionOn > 1 || r.RetentionOff <= 0 || r.RetentionOff > 1 {
			t.Errorf("%s: retention outside (0,1]: off %.3f on %.3f",
				r.Scheme, r.RetentionOff, r.RetentionOn)
		}
	}
	text := render(func(w io.Writer) { FprintCCMatrix(w, res) })
	for _, s := range schemes {
		if !strings.Contains(text, s) {
			t.Errorf("rendered table is missing scheme %s:\n%s", s, text)
		}
	}
}

// TestCCMatrixRejectsUnknownScheme: a typo in the schemes list fails
// the run instead of silently sweeping a default.
func TestCCMatrixRejectsUnknownScheme(t *testing.T) {
	if _, err := CCMatrix(nil, 10, 1, []string{"bbr"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}
