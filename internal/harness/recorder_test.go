package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"srcsim/internal/cluster"
	"srcsim/internal/obs/timeseries"
	"srcsim/internal/sim"
)

// TestFlightRecorderFig7 drives the flight recorder through the paper's
// Fig. 7 congestion scenario at a 10µs sample period and asserts three
// things: (1) attaching a recorder changes no result bytes, (2) the
// recorded timeline actually shows the congestion-onset episode — queue
// build-up at the congested switch port, DCQCN rate cuts, ECN marking —
// and (3) the recorder's CSV export is deterministic across runs.
func TestFlightRecorderFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("runs fig7 three times; skipped with -short")
	}
	tpmCong, _ := testTPMs(t)

	digest := func(r *CongestionResult) []byte {
		b, err := json.Marshal([]cluster.Digest{r.Baseline.Digest(), r.SRC.Digest()})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	plain, err := Fig7Throughput(tpmCong, 250, 7)
	if err != nil {
		t.Fatal(err)
	}

	record := func() (*CongestionResult, *timeseries.Recorder) {
		// One recorder shared across both CompareModes runs: tracks are
		// mode-prefixed, so the two runs' timelines stay distinct.
		rec := timeseries.New(10*sim.Microsecond, 1<<14)
		res, err := Fig7Throughput(tpmCong, 250, 7, func(s *cluster.Spec) {
			s.Recorder = rec
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, rec
	}
	recorded, rec := record()

	if !bytes.Equal(digest(plain), digest(recorded)) {
		t.Fatal("attaching the flight recorder changed run results")
	}

	// The congestion-onset episode: find queue growth, rate cuts below
	// the 10 Gbps line rate, and ECN mark activity in the recorded
	// series. Both modes must be present under their own tracks.
	dump := rec.Dump(0)
	var sawQueue, sawRateCut, sawECN, sawBase, sawSRC bool
	for _, s := range dump {
		if strings.HasPrefix(s.Track, "DCQCN-Only/") {
			sawBase = true
		}
		if strings.HasPrefix(s.Track, "DCQCN-SRC/") {
			sawSRC = true
		}
		switch {
		case s.Name == "switch_queue_bytes_total":
			for _, v := range s.V {
				if v > 64<<10 { // queue beyond one 64 KiB command's worth
					sawQueue = true
				}
			}
		case strings.HasSuffix(s.Name, "_rate_gbps"):
			for _, v := range s.V {
				if v < 9 {
					sawRateCut = true
				}
			}
		case s.Name == "ecn_marks":
			if len(s.V) > 0 {
				sawECN = true
			}
		}
	}
	if !sawBase || !sawSRC {
		t.Fatalf("missing per-mode tracks: base=%v src=%v", sawBase, sawSRC)
	}
	if !sawQueue || !sawRateCut || !sawECN {
		t.Fatalf("congestion onset not captured: queue=%v rateCut=%v ecn=%v",
			sawQueue, sawRateCut, sawECN)
	}

	// CSV export is deterministic: a second recorded run produces the
	// same bytes.
	_, rec2 := record()
	var csv1, csv2 bytes.Buffer
	if err := rec.WriteCSV(&csv1); err != nil {
		t.Fatal(err)
	}
	if err := rec2.WriteCSV(&csv2); err != nil {
		t.Fatal(err)
	}
	if csv1.Len() == 0 {
		t.Fatal("empty recorder CSV")
	}
	if !bytes.Equal(csv1.Bytes(), csv2.Bytes()) {
		t.Fatal("recorder CSV not deterministic across identical runs")
	}
}
