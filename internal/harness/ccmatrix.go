package harness

import (
	"fmt"
	"io"
	"strings"

	"srcsim/internal/cluster"
	"srcsim/internal/core"
)

// CCMatrixRow is one congestion-control scheme's paired SRC-off /
// SRC-on run on the Fig. 7 congested workload. Retention is the run's
// aggregate throughput normalised to the best aggregate seen anywhere
// in the matrix, so schemes are comparable on one scale: how much of
// the achievable fabric throughput each transport retains at the
// congested operating point, with and without SRC on top.
type CCMatrixRow struct {
	Scheme         string  `json:"scheme"`
	BaselineGbps   float64 `json:"baseline_gbps"`
	SRCGbps        float64 `json:"src_gbps"`
	RetentionOff   float64 `json:"retention_off"`
	RetentionOn    float64 `json:"retention_on"`
	ImprovementPct float64 `json:"improvement_pct"`
}

// CCMatrixResult is the full {scheme} x {SRC on/off} matrix.
type CCMatrixResult struct {
	Rows       []CCMatrixRow `json:"rows"`
	MaxAggGbps float64       `json:"max_agg_gbps"`
}

// CCMatrix runs the Fig. 7 VDI workload under every named
// congestion-control scheme, paired SRC-off / SRC-on, on the
// Sec. IV-D testbed. perDir is the write-request count (reads get 2x).
func CCMatrix(tpm *core.TPM, perDir int, seed uint64, schemes []string, mods ...func(*cluster.Spec)) (*CCMatrixResult, error) {
	res := &CCMatrixResult{}
	for _, name := range schemes {
		name = strings.TrimSpace(name)
		cc, err := ParseCC(name)
		if err != nil {
			return nil, err
		}
		pair, err := Fig7ThroughputCC(tpm, perDir, seed, cc, mods...)
		if err != nil {
			return nil, fmt.Errorf("harness: cc-matrix %s: %w", name, err)
		}
		res.Rows = append(res.Rows, CCMatrixRow{
			Scheme:         name,
			BaselineGbps:   pair.Baseline.AggregatedGbps,
			SRCGbps:        pair.SRC.AggregatedGbps,
			ImprovementPct: pair.Improvement() * 100,
		})
		if pair.Baseline.AggregatedGbps > res.MaxAggGbps {
			res.MaxAggGbps = pair.Baseline.AggregatedGbps
		}
		if pair.SRC.AggregatedGbps > res.MaxAggGbps {
			res.MaxAggGbps = pair.SRC.AggregatedGbps
		}
	}
	if res.MaxAggGbps > 0 {
		for i := range res.Rows {
			res.Rows[i].RetentionOff = res.Rows[i].BaselineGbps / res.MaxAggGbps
			res.Rows[i].RetentionOn = res.Rows[i].SRCGbps / res.MaxAggGbps
		}
	}
	return res, nil
}

// FprintCCMatrix renders the matrix as a retention table.
func FprintCCMatrix(w io.Writer, res *CCMatrixResult) {
	fmt.Fprintln(w, "CC matrix: aggregate throughput retention on the Fig. 7 workload, SRC off vs on")
	fmt.Fprintf(w, "%-8s %12s %12s %10s %10s %8s\n",
		"scheme", "off (Gbps)", "on (Gbps)", "ret. off", "ret. on", "gain")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-8s %12.2f %12.2f %9.0f%% %9.0f%% %+6.0f%%\n",
			r.Scheme, r.BaselineGbps, r.SRCGbps,
			r.RetentionOff*100, r.RetentionOn*100, r.ImprovementPct)
	}
	fmt.Fprintf(w, "matrix max aggregate: %.2f Gbps\n", res.MaxAggGbps)
}
