package harness

import (
	"testing"

	"srcsim/internal/devrun"
	"srcsim/internal/sim"
	"srcsim/internal/ssd"
)

// TestWRRShapeAcrossTableIIDevices checks the paper's cross-device claim
// (Sec. IV-A/IV-C): the weight-ratio mechanism behaves consistently on
// all three Table II SSDs — equal R/W throughput at w=1 and a clear
// read-cut/write-boost at high w — even though their latencies, page
// sizes, and queue depths differ widely.
func TestWRRShapeAcrossTableIIDevices(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps every Table II device; skipped with -short")
	}
	for _, cfg := range []ssd.Config{ssd.ConfigA(), ssd.ConfigB(), ssd.ConfigC()} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			// Saturating symmetric workload, scaled to the device's
			// queue depth so WRR-shaped fetches dominate completions.
			count := devrun.MinTrainCount(cfg, 0)
			spec := devrun.WorkloadSpec{
				InterArrival: 8 * sim.Microsecond,
				MeanSize:     32 << 10,
				Count:        count,
				Seed:         7,
			}
			tr, err := spec.Trace()
			if err != nil {
				t.Fatal(err)
			}
			r1, err := devrun.Run(cfg, tr, 1)
			if err != nil {
				t.Fatal(err)
			}
			ratio := r1.WriteGbps / r1.ReadGbps
			if ratio < 0.8 || ratio > 1.25 {
				t.Fatalf("%s w=1: R %.2f vs W %.2f not equal", cfg.Name, r1.ReadGbps, r1.WriteGbps)
			}
			r6, err := devrun.Run(cfg, tr, 6)
			if err != nil {
				t.Fatal(err)
			}
			if r6.ReadGbps >= r1.ReadGbps*0.75 {
				t.Fatalf("%s: read did not fall with w: %.2f -> %.2f", cfg.Name, r1.ReadGbps, r6.ReadGbps)
			}
			if r6.WriteGbps <= r1.WriteGbps {
				t.Fatalf("%s: write did not rise with w: %.2f -> %.2f", cfg.Name, r1.WriteGbps, r6.WriteGbps)
			}
		})
	}
}

// TestTPMAccuracyOnOtherDevices checks the paper's "similar accuracy is
// also obtained for the other two types of SSDs" (Sec. IV-C): the
// random-forest TPM self-validates well on SSD-B and SSD-C samples.
func TestTPMAccuracyOnOtherDevices(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a TPM per device; skipped with -short")
	}
	if testing.Short() {
		t.Skip("cross-device TPM training is slow")
	}
	for _, cfg := range []ssd.Config{ssd.ConfigB(), ssd.ConfigC()} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			tpm, samples, err := devrun.TrainTPM(cfg, 0, 5)
			if err != nil {
				t.Fatal(err)
			}
			if acc := tpm.Accuracy(samples); acc < 0.9 {
				t.Fatalf("%s in-sample accuracy %.2f", cfg.Name, acc)
			}
		})
	}
}
