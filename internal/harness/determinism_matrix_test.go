package harness

// The determinism matrix: every harness experiment, at reduced scale,
// re-run under the four combinations of GOMAXPROCS (1 vs default) and
// event/packet/command pooling (on vs off). The simulation is
// single-threaded by construction and the free lists are supposed to be
// semantically invisible, so all four legs must produce byte-identical
// JSON summaries. Any divergence means scheduling order leaked into
// results (map iteration, goroutine interleaving in the parallel
// sweeps) or a recycled object carried state across uses.

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"srcsim/internal/cluster"
	"srcsim/internal/core"
	"srcsim/internal/devrun"
	"srcsim/internal/ml"
	"srcsim/internal/netsim"
	"srcsim/internal/obs/timeseries"
	"srcsim/internal/scenario"
	"srcsim/internal/sim"
	"srcsim/internal/ssd"
)

// digestRun is the matrix's view of one cluster run: the deterministic
// digest (summary plus raw per-bucket series) shared with the sweep
// orchestrator's per-job artifacts.
func digestRun(r *cluster.Result) cluster.Digest {
	return r.Digest()
}

// matrixSuite runs every experiment at reduced scale and returns each
// one's JSON summary, keyed by experiment name. The TPMs are trained
// once outside the matrix (they are an input, and full training is
// clamped to 2000 requests per run); training determinism is covered by
// the train-probe entry, which collects device samples and fits a fresh
// forest inside the leg, comparing the serialized model bytes.
// record=true attaches a fresh flight recorder to every cluster run;
// the recorder is read-only by design, so all digests must stay
// byte-identical to the recorder-off legs.
func matrixSuite(t *testing.T, tpmCong, tpm9 *core.TPM, record bool) map[string][]byte {
	t.Helper()
	var mods []func(*cluster.Spec)
	if record {
		mods = append(mods, func(s *cluster.Spec) {
			s.Recorder = timeseries.New(10*sim.Microsecond, 4096)
		})
	}
	out := map[string][]byte{}
	put := func(name string, v any) {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		out[name] = b
	}

	put("fig2", Fig2Motivation(DefaultFig2Params()))

	cells, err := Fig5WeightSweep(ssd.ConfigA(), []int{4}, 300, 1)
	if err != nil {
		t.Fatalf("fig5: %v", err)
	}
	put("fig5", cells)

	// Train-probe: tiny spec set (Count below the full-training clamp),
	// parallel sample collection, fresh forest, serialized model bytes.
	// This stands in for the full TableI / TableIII / TPM-training runs,
	// whose per-run request counts are clamped to 2000 and would cost
	// ~20 s per leg: their sample-collection machinery is exactly this
	// code path, and the regressor fits below are pure functions of the
	// samples.
	specs := []devrun.WorkloadSpec{
		{InterArrival: 12 * sim.Microsecond, MeanSize: 24 << 10, Count: 600, Seed: 9},
		{InterArrival: 20 * sim.Microsecond, MeanSize: 36 << 10, Count: 600, Seed: 10},
	}
	samples, err := devrun.CollectSamples(ssd.ConfigA(), specs, []int{1, 4}, 0)
	if err != nil {
		t.Fatalf("train-probe: collect: %v", err)
	}
	probe := &core.TPM{}
	if err := probe.Train(samples); err != nil {
		t.Fatalf("train-probe: train: %v", err)
	}
	var model bytes.Buffer
	if err := probe.Save(&model); err != nil {
		t.Fatalf("train-probe: save: %v", err)
	}
	out["train-probe"] = model.Bytes()

	// Regressor probe: TableI's five estimator families fitted on the
	// leg-local samples; self-accuracy floats must match bitwise.
	factories := []func() ml.Regressor{
		func() ml.Regressor { return &ml.LinearRegression{} },
		func() ml.Regressor { return &ml.PolynomialRegression{} },
		func() ml.Regressor { return &ml.KNNRegressor{K: 5} },
		func() ml.Regressor { return &ml.DecisionTreeRegressor{Seed: 2} },
		func() ml.Regressor { return &ml.RandomForestRegressor{Trees: 20, Seed: 2} },
	}
	var accs []float64
	for _, factory := range factories {
		reg := &core.TPM{NewRegressor: factory}
		if err := reg.Train(samples); err != nil {
			t.Fatalf("regressor-probe: %v", err)
		}
		accs = append(accs, reg.Accuracy(samples))
	}
	put("regressor-probe", accs)

	res7, err := Fig7Throughput(tpmCong, 250, 7, mods...)
	if err != nil {
		t.Fatalf("fig7: %v", err)
	}
	put("fig7", []cluster.Digest{digestRun(res7.Baseline), digestRun(res7.SRC)})

	// Reduced-scale Fig. 7 under each newly registered CC scheme: the
	// registry seam, the ECN-echo and INT ack plumbing, and pooling of
	// INT-carrying packets must all stay byte-deterministic across the
	// matrix.
	for _, cc := range []struct {
		name string
		alg  netsim.CCAlg
	}{{"fig7-aimd", netsim.CCAIMD}, {"fig7-hpcc", netsim.CCHPCC}, {"fig7-pfc", netsim.CCPFC}} {
		resCC, err := Fig7ThroughputCC(tpmCong, 150, 7, cc.alg, mods...)
		if err != nil {
			t.Fatalf("%s: %v", cc.name, err)
		}
		put(cc.name, []cluster.Digest{digestRun(resCC.Baseline), digestRun(resCC.SRC)})
	}

	events := []RateEvent{
		{At: 20 * sim.Millisecond, DemandGbps: 6},
		{At: 40 * sim.Millisecond, DemandGbps: 10},
	}
	res9, err := Fig9DynamicControl(tpm9, events, 60*sim.Millisecond, 5)
	if err != nil {
		t.Fatalf("fig9: %v", err)
	}
	put("fig9", res9)

	rows10, err := Fig10Intensity(tpmCong, 0.02, 13, mods...)
	if err != nil {
		t.Fatalf("fig10: %v", err)
	}
	var dig10 []cluster.Digest
	for _, r := range rows10 {
		dig10 = append(dig10, digestRun(r.Result.Baseline), digestRun(r.Result.SRC))
	}
	put("fig10", dig10)

	rowsIV, err := TableIV(tpmCong, nil, 0.02, 11, mods...)
	if err != nil {
		t.Fatalf("tableIV: %v", err)
	}
	put("tableIV", rowsIV)

	trc, err := VDITrace(7, 200)
	if err != nil {
		t.Fatalf("chaos trace: %v", err)
	}
	resC, err := ChaosSoak(trc)
	if err != nil {
		t.Fatalf("chaos: %v", err)
	}
	put("chaos", digestRun(resC))

	// Adaptive legs: the failover scenario exercises the whole ladder —
	// Static via telemetry staleness, the AIMD rung, retraining-driven
	// recovery — plus the oracle leg, under faults and retries. The
	// second leg pushes RetrainEvery past any horizon, pinning the model
	// at its seed configuration: adaptation must stay byte-deterministic
	// with retraining effectively disabled, and the leg must itself be
	// reproducible across the matrix.
	resA, err := AdaptFailover(tpmCong, 200, 7, mods...)
	if err != nil {
		t.Fatalf("adapt-failover: %v", err)
	}
	put("adapt-failover", resA)

	noRetrain := append(append([]func(*cluster.Spec){}, mods...), func(s *cluster.Spec) {
		s.SRC.Adaptive.RetrainEvery = 3600 * sim.Second
	})
	resA0, err := AdaptFailover(tpmCong, 200, 7, noRetrain...)
	if err != nil {
		t.Fatalf("adapt-failover-noretrain: %v", err)
	}
	put("adapt-failover-noretrain", resA0)

	trh, err := VDITrace(7, 150)
	if err != nil {
		t.Fatalf("hang trace: %v", err)
	}
	resH, err := HangSoak(trh, true)
	if err != nil {
		t.Fatalf("hang-retry: %v", err)
	}
	put("hang-retry", digestRun(resH))

	// Scenario leg: one library scenario end-to-end — the phase merge,
	// per-phase seeded generators, overlay anchoring, stream tagging,
	// and fault-offset rebasing must all reproduce byte-for-byte.
	scVDI, ok := scenario.Lookup("vdi-boot-storm")
	if !ok {
		t.Fatal("scenario leg: vdi-boot-storm missing from library")
	}
	resSC, err := RunScenario(tpmCong, scVDI.Build(7, 60), 7, netsim.CCDCQCN, mods...)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	put("scenario", resSC)

	// In-band control-plane leg: the lossy/reordering control channel,
	// a primary crash, and the standby takeover. The channel RNG is
	// seeded, so the entire message schedule — drops, reorder jitter,
	// retransmissions, the epoch ledger — must reproduce byte-for-byte
	// across the matrix.
	resCF, err := CtrlFailover(tpmCong, 150, 7, mods...)
	if err != nil {
		t.Fatalf("ctrl-failover: %v", err)
	}
	put("ctrl-failover", resCF)

	return out
}

// TestDeterminismMatrix asserts that every experiment's JSON summary is
// byte-identical across the GOMAXPROCS × pooling matrix.
func TestDeterminismMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix re-runs every experiment four times; skipped with -short")
	}
	tpmCong, tpm9 := testTPMs(t)

	defaultProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(defaultProcs)
	prevPool := sim.PoolingEnabled()
	defer sim.SetPooling(prevPool)

	legs := []struct {
		name   string
		procs  int
		pool   bool
		record bool
	}{
		{"procs1-pool", 1, true, false},
		{"procsN-pool", defaultProcs, true, false},
		{"procs1-nopool", 1, false, false},
		{"procsN-nopool", defaultProcs, false, false},
		// Flight-recorder legs: the recorder samples every run but is
		// read-only, so results must match the recorder-off reference.
		{"procs1-pool-record", 1, true, true},
		{"procsN-nopool-record", defaultProcs, false, true},
	}

	var ref map[string][]byte
	for _, leg := range legs {
		runtime.GOMAXPROCS(leg.procs)
		sim.SetPooling(leg.pool)
		got := matrixSuite(t, tpmCong, tpm9, leg.record)
		if ref == nil {
			ref = got
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("%s: %d experiments, reference has %d", leg.name, len(got), len(ref))
		}
		for name, want := range ref {
			if !bytes.Equal(got[name], want) {
				t.Errorf("%s: %s summary diverged from %s leg:\nref: %s\ngot: %s",
					leg.name, name, legs[0].name, clip(want), clip(got[name]))
			}
		}
	}
}

// clip truncates a JSON blob for failure output.
func clip(b []byte) []byte {
	if len(b) > 600 {
		return append(append([]byte{}, b[:600]...), "..."...)
	}
	return b
}
