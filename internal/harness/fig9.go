package harness

import (
	"fmt"
	"io"
	"math"

	"srcsim/internal/core"
	"srcsim/internal/devrun"
	"srcsim/internal/guard"
	"srcsim/internal/nvme"
	"srcsim/internal/sim"
	"srcsim/internal/ssd"
	"srcsim/internal/stats"
	"srcsim/internal/trace"
)

// Fig9Config returns the SSD-B variant used for the dynamic-control
// experiment: a 3-channel array whose read range (~2.5-11 Gbps across
// weight ratios) spans the paper's demanded rates (10 → 6 → 3 → 6 →
// 10 Gbps).
func Fig9Config() ssd.Config {
	cfg := ssd.ConfigB()
	cfg.Channels = 3
	cfg.DiesPerChannel = 4
	return cfg
}

// RateEvent is one synthetic congestion notification: at time At the
// network demands DemandGbps of read data.
type RateEvent struct {
	At         sim.Time
	DemandGbps float64
}

// DefaultFig9Events mirrors the paper's sequence: two pause events
// tightening the demand, then two retrieval events releasing it.
func DefaultFig9Events() []RateEvent {
	return []RateEvent{
		{At: 60 * sim.Millisecond, DemandGbps: 6},
		{At: 100 * sim.Millisecond, DemandGbps: 3},
		{At: 140 * sim.Millisecond, DemandGbps: 6},
		{At: 180 * sim.Millisecond, DemandGbps: 10},
	}
}

// Fig9Event reports how SRC handled one synthetic congestion event.
type Fig9Event struct {
	At            sim.Time
	DemandGbps    float64
	AppliedW      int
	ConvergeDelay sim.Time // -1 if the segment never settled
}

// Fig9Result carries the runtime adjustment timeline.
type Fig9Result struct {
	ReadGbps  []float64 // per ms
	WriteGbps []float64
	Events    []Fig9Event
}

// AverageConvergence returns the mean convergence delay over the events
// that settled (the paper reports ~7.3 ms over a long event trace).
func (r *Fig9Result) AverageConvergence() sim.Time {
	var sum sim.Time
	n := 0
	for _, e := range r.Events {
		if e.ConvergeDelay >= 0 {
			sum += e.ConvergeDelay
			n++
		}
	}
	if n == 0 {
		return -1
	}
	return sum / sim.Time(n)
}

// Fig9DynamicControl reproduces Fig. 9: a saturating workload on the
// Fig9Config device, with synthetic congestion events injected into the
// SRC controller. It measures the per-millisecond read/write throughput
// and, per event, the delay until the read throughput settles within 15%
// of its new steady level. tpm must be trained on the same device config
// (devrun.TrainTPM(Fig9Config(), ...)).
func Fig9DynamicControl(tpm *core.TPM, events []RateEvent, horizon sim.Time, seed uint64) (*Fig9Result, error) {
	if len(events) == 0 {
		events = DefaultFig9Events()
	}
	if horizon <= 0 {
		horizon = events[len(events)-1].At + 60*sim.Millisecond
	}
	cfg := Fig9Config()

	// Saturating symmetric workload for the full horizon.
	count := int(horizon/(8*sim.Microsecond)) + 1
	spec := devrun.WorkloadSpec{
		InterArrival: 8 * sim.Microsecond,
		MeanSize:     32 << 10,
		Count:        count,
		Seed:         seed,
	}
	tr, err := spec.Trace()
	if err != nil {
		return nil, err
	}

	eng := sim.NewEngine()
	ssq := nvme.NewSSQ(1, 1)
	dev, err := ssd.New(eng, cfg, ssq)
	if err != nil {
		return nil, err
	}
	var span uint64
	for _, r := range tr.Requests {
		if r.End() > span {
			span = r.End()
		}
	}
	dev.Precondition(span)

	ctl := core.NewController(core.ControllerConfig{}, tpm, ssq)

	bucket := sim.Millisecond
	readBits := stats.NewTimeSeries(bucket)
	writeBits := stats.NewTimeSeries(bucket)
	dev.OnComplete = func(c *nvme.Command) {
		if c.Op == trace.Read {
			readBits.Add(eng.Now(), float64(c.Size)*8)
		} else {
			writeBits.Add(eng.Now(), float64(c.Size)*8)
		}
	}
	for _, r := range tr.Requests {
		r := r
		eng.Schedule(r.Arrival, func() {
			ssq.Submit(&nvme.Command{ID: r.ID, Op: r.Op, LBA: r.LBA, Size: r.Size, Submitted: r.Arrival})
			dev.Kick()
			ctl.Monitor.Record(trace.Request{Op: r.Op, LBA: r.LBA, Size: r.Size}, eng.Now())
		})
	}
	for _, ev := range events {
		ev := ev
		eng.Schedule(ev.At, func() {
			ctl.OnRateEvent(eng.Now(), ev.DemandGbps*1e9)
		})
	}
	// Conservation auditor on the single-device pipeline: read-only, so
	// the figure is unperturbed; a violation aborts the experiment.
	var auditErr error
	stopAudit := eng.Ticker(sim.Millisecond, func() {
		if auditErr != nil {
			return
		}
		if vs := guard.Audit(ssq, dev); len(vs) > 0 {
			auditErr = &guard.ViolationError{At: eng.Now(), Violations: vs}
			eng.Stop()
		}
	})
	eng.Run(horizon)
	stopAudit()
	if auditErr == nil {
		if vs := guard.Audit(ssq, dev); len(vs) > 0 {
			auditErr = &guard.ViolationError{At: eng.Now(), Violations: vs}
		}
	}
	if auditErr != nil {
		return nil, auditErr
	}

	res := &Fig9Result{}
	toGbps := func(ts *stats.TimeSeries) []float64 {
		rates := ts.Rate()
		out := make([]float64, len(rates))
		for i, r := range rates {
			out[i] = r / 1e9
		}
		return out
	}
	res.ReadGbps = toGbps(readBits)
	res.WriteGbps = toGbps(writeBits)

	// Per-event applied weights from the controller log.
	appliedW := func(at sim.Time) int {
		w := 0
		for _, e := range ctl.Events {
			if e.At == at {
				w = e.WeightRatio
			}
		}
		return w
	}

	for i, ev := range events {
		segEnd := horizon
		if i+1 < len(events) {
			segEnd = events[i+1].At
		}
		res.Events = append(res.Events, Fig9Event{
			At:            ev.At,
			DemandGbps:    ev.DemandGbps,
			AppliedW:      appliedW(ev.At),
			ConvergeDelay: convergence(res.ReadGbps, bucket, ev.At, segEnd),
		})
	}
	return res, nil
}

// convergence finds the delay from segStart until the read series stays
// within 15% of the segment's steady level for two consecutive buckets.
// The steady level is the mean over the last quarter of the segment.
func convergence(series []float64, bucket, segStart, segEnd sim.Time) sim.Time {
	lo := int(segStart / bucket)
	hi := int(segEnd / bucket)
	if hi > len(series) {
		hi = len(series)
	}
	if hi-lo < 4 {
		return -1
	}
	tail := series[lo+(hi-lo)*3/4 : hi]
	steady := stats.Mean(tail)
	band := 0.15 * steady
	if band < 0.2 {
		band = 0.2
	}
	run := 0
	for i := lo; i < hi; i++ {
		if math.Abs(series[i]-steady) <= band {
			run++
			if run >= 2 {
				return sim.Time(i-1)*bucket - segStart
			}
		} else {
			run = 0
		}
	}
	return -1
}

// FprintFig9 renders the dynamic-adjustment timeline and event table.
func FprintFig9(w io.Writer, res *Fig9Result) {
	fmt.Fprintln(w, "Fig. 9: dynamic throughput adjustment under SRC")
	fprintSeries(w, "read", res.ReadGbps)
	fprintSeries(w, "write", res.WriteGbps)
	fmt.Fprintf(w, "%10s %10s %4s %12s\n", "event", "demand", "w", "convergence")
	for _, e := range res.Events {
		conv := "n/a"
		if e.ConvergeDelay >= 0 {
			conv = e.ConvergeDelay.String()
		}
		fmt.Fprintf(w, "%10v %8.1fG %4d %12s\n", e.At, e.DemandGbps, e.AppliedW, conv)
	}
	if avg := res.AverageConvergence(); avg >= 0 {
		fmt.Fprintf(w, "average control delay: %v\n", avg)
	}
}
