package harness

import (
	"srcsim/internal/cluster"
	"srcsim/internal/faults"
	"srcsim/internal/sim"
	"srcsim/internal/trace"
)

// ChaosSchedule is the standard chaos scenario for the congestion
// testbed (Fig. 7's topology): 1% packet drop on the initiator's and
// target 0's links while the workload is in full flight, three link
// flaps on target 1, and a forced PFC pause storm on target 0 — with
// every recovery mechanism armed (retries, credit-leak timer, PFC
// watchdog).
func ChaosSchedule() *faults.Schedule {
	return &faults.Schedule{
		Seed: 0xC0A05,
		Recovery: &faults.Recovery{
			PFCWatchdog: sim.Millisecond,
			Timeout:     50 * sim.Millisecond,
			MaxRetries:  4,
			BackoffBase: 2 * sim.Millisecond,
			BackoffCap:  8 * sim.Millisecond,
		},
		Events: []faults.Event{
			{At: 2 * sim.Millisecond, Kind: faults.Drop, Where: "target:0",
				Probability: 0.01, Duration: 20 * sim.Millisecond},
			{At: 2 * sim.Millisecond, Kind: faults.Drop, Where: "initiator:0",
				Probability: 0.01, Duration: 20 * sim.Millisecond},
			{At: 4 * sim.Millisecond, Kind: faults.LinkFlap, Where: "target:1",
				Count: 3, Period: 3 * sim.Millisecond, Duration: 400 * sim.Microsecond},
			{At: 6 * sim.Millisecond, Kind: faults.PFCStorm, Where: "target:0",
				Duration: 2 * sim.Millisecond},
		},
	}
}

// ChaosSpec is CongestionSpec with ChaosSchedule installed and a horizon
// long enough for the slowest failed op (Timeout x (MaxRetries+1) plus
// backoffs ≈ 270 ms) to finish its accounting after arrivals end.
func ChaosSpec() cluster.Spec {
	spec := CongestionSpec()
	spec.Faults = ChaosSchedule()
	spec.Horizon = sim.Second
	return spec
}

// ChaosSoak runs the chaos scenario end to end under the DCQCN-only
// baseline (no TPM needed) and returns the result; callers assert the
// accounting invariant Completed + Failed == Submitted and the recovery
// counters.
func ChaosSoak(tr *trace.Trace) (*cluster.Result, error) {
	c, err := cluster.New(ChaosSpec())
	if err != nil {
		return nil, err
	}
	return c.Run(tr, nil)
}
