package harness

import (
	"srcsim/internal/cluster"
	"srcsim/internal/faults"
	"srcsim/internal/nvmeof"
	"srcsim/internal/sim"
	"srcsim/internal/trace"
)

// ChaosSchedule is the standard chaos scenario for the congestion
// testbed (Fig. 7's topology): 1% packet drop on the initiator's and
// target 0's links while the workload is in full flight, three link
// flaps on target 1, and a forced PFC pause storm on target 0 — with
// every recovery mechanism armed (retries, credit-leak timer, PFC
// watchdog).
func ChaosSchedule() *faults.Schedule {
	return &faults.Schedule{
		Seed: 0xC0A05,
		Recovery: &faults.Recovery{
			PFCWatchdog: sim.Millisecond,
			Timeout:     50 * sim.Millisecond,
			MaxRetries:  4,
			BackoffBase: 2 * sim.Millisecond,
			BackoffCap:  8 * sim.Millisecond,
		},
		Events: []faults.Event{
			{At: 2 * sim.Millisecond, Kind: faults.Drop, Where: "target:0",
				Probability: 0.01, Duration: 20 * sim.Millisecond},
			{At: 2 * sim.Millisecond, Kind: faults.Drop, Where: "initiator:0",
				Probability: 0.01, Duration: 20 * sim.Millisecond},
			{At: 4 * sim.Millisecond, Kind: faults.LinkFlap, Where: "target:1",
				Count: 3, Period: 3 * sim.Millisecond, Duration: 400 * sim.Microsecond},
			{At: 6 * sim.Millisecond, Kind: faults.PFCStorm, Where: "target:0",
				Duration: 2 * sim.Millisecond},
		},
	}
}

// ChaosSpec is CongestionSpec with ChaosSchedule installed and a horizon
// long enough for the slowest failed op (Timeout x (MaxRetries+1) plus
// backoffs ≈ 270 ms) to finish its accounting after arrivals end.
func ChaosSpec() cluster.Spec {
	spec := CongestionSpec()
	spec.Faults = ChaosSchedule()
	spec.Horizon = sim.Second
	return spec
}

// ChaosSoak runs the chaos scenario end to end under the DCQCN-only
// baseline (no TPM needed) and returns the result; callers assert the
// accounting invariant Completed + Failed == Submitted and the recovery
// counters.
func ChaosSoak(tr *trace.Trace) (*cluster.Result, error) {
	c, err := cluster.New(ChaosSpec())
	if err != nil {
		return nil, err
	}
	return c.Run(tr, nil)
}

// HangStallHorizon is the liveness horizon used by the hang soak. It
// must exceed the worst-case command lifetime under HangRetryPolicy
// (4 attempts × 20 ms plus 2+4+8 ms of backoff ≈ 94 ms) so the
// retry-armed leg finishes cleanly without tripping the watchdog.
const HangStallHorizon = 150 * sim.Millisecond

// HangRetryPolicy is the recovery policy for the hang soak's second
// leg: aggressive enough that every command stuck behind the stall is
// terminally accounted (failed) well inside HangStallHorizon.
func HangRetryPolicy() nvmeof.RetryPolicy {
	return nvmeof.RetryPolicy{
		Timeout:     20 * sim.Millisecond,
		MaxRetries:  3,
		BackoffBase: 2 * sim.Millisecond,
		BackoffCap:  8 * sim.Millisecond,
	}
}

// HangSchedule is the pathological counterpart of ChaosSchedule: both
// targets freeze command fetching 2 ms into the run and stay frozen far
// past the liveness horizon, with no recovery armed. Without retries
// the cluster wedges — every in-flight command ages forever — which is
// exactly what the guard watchdog exists to catch.
func HangSchedule() *faults.Schedule {
	return &faults.Schedule{
		Seed: 0xDEAD,
		Events: []faults.Event{
			{At: 2 * sim.Millisecond, Kind: faults.TargetStall, Where: "target:0",
				Duration: 600 * sim.Millisecond},
			{At: 2 * sim.Millisecond, Kind: faults.TargetStall, Where: "target:1",
				Duration: 600 * sim.Millisecond},
		},
	}
}

// HangSpec is CongestionSpec with HangSchedule installed and the
// liveness watchdog armed (the auditor stays on from CongestionSpec).
func HangSpec() cluster.Spec {
	spec := CongestionSpec()
	spec.Faults = HangSchedule()
	spec.Horizon = sim.Second
	spec.Guard.StallHorizon = HangStallHorizon
	return spec
}

// HangSoak runs the hang scenario under the DCQCN-only baseline. With
// withRetry false the run must wedge and return *guard.StallError whose
// dump names the stuck commands; with withRetry true (HangRetryPolicy
// armed) every stuck command fails over to the retry path and the run
// completes without tripping the watchdog.
func HangSoak(tr *trace.Trace, withRetry bool) (*cluster.Result, error) {
	spec := HangSpec()
	if withRetry {
		spec.Retry = HangRetryPolicy()
	}
	c, err := cluster.New(spec)
	if err != nil {
		return nil, err
	}
	return c.Run(tr, nil)
}
