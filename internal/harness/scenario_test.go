package harness

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"srcsim/internal/netsim"
	"srcsim/internal/scenario"
	"srcsim/internal/trace"
)

func TestRunScenarioDeterministic(t *testing.T) {
	tpmCong, _ := testTPMs(t)
	sc, ok := scenario.Lookup("vdi-boot-storm")
	if !ok {
		t.Fatal("vdi-boot-storm missing from library")
	}
	a, err := RunScenario(tpmCong, sc.Build(7, 80), 7, netsim.CCDCQCN)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(tpmCong, sc.Build(7, 80), 7, netsim.CCDCQCN)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("scenario rerun diverged:\n%s\n%s", ja, jb)
	}
	if a.Requests == 0 || len(a.Phases) != 2 {
		t.Fatalf("unexpected shape: %d requests, %d phases", a.Requests, len(a.Phases))
	}
	for _, ret := range []float64{a.RetentionOff, a.RetentionOn} {
		if ret <= 0 || ret > 1 {
			t.Fatalf("retention out of (0,1]: off=%v on=%v", a.RetentionOff, a.RetentionOn)
		}
	}
	if max := math.Max(a.RetentionOff, a.RetentionOn); max != 1 {
		t.Fatalf("best mode should normalise to 1, got %v", max)
	}

	var buf bytes.Buffer
	FprintScenario(&buf, a)
	out := buf.String()
	for _, want := range []string{"vdi-boot-storm", "steady-desktops", "boot-storm", "overlay", "DCQCN-SRC", "retention"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRunScenarioWithFaults(t *testing.T) {
	tpmCong, _ := testTPMs(t)
	sc, ok := scenario.Lookup("gc-write-flood")
	if !ok {
		t.Fatal("gc-write-flood missing from library")
	}
	res, err := RunScenario(tpmCong, sc.Build(7, 60), 7, netsim.CCDCQCN)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultEvents != 2 {
		t.Fatalf("fault events = %d, want 2", res.FaultEvents)
	}
	if res.Baseline.Summary.AggregatedGbps <= 0 || res.SRC.Summary.AggregatedGbps <= 0 {
		t.Fatalf("zero throughput: %+v / %+v", res.Baseline.Summary, res.SRC.Summary)
	}
}

// TestScenarioJSONLRefitRoundTrip proves the full ingest loop: a
// compiled scenario trace exported as JSONL, read back through the
// strict decoder, refit to a synthetic model via a trace-ref phase, and
// re-run on the testbed. The refit run must carry the spec's request
// budget and produce a throughput within the same order of magnitude
// as the original — refitting replaces the exact arrivals with an
// MMPP/lognormal model, so only coarse agreement is contractual.
func TestScenarioJSONLRefitRoundTrip(t *testing.T) {
	tpmCong, _ := testTPMs(t)
	sc, ok := scenario.Lookup("ai-checkpoint-burst")
	if !ok {
		t.Fatal("ai-checkpoint-burst missing from library")
	}
	spec := sc.Build(7, 80)
	orig, err := RunScenario(tpmCong, spec, 7, netsim.CCDCQCN)
	if err != nil {
		t.Fatal(err)
	}

	comp, err := spec.Compile(7)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "scenario.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJSONL(f, comp.Trace); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Decode back and confirm the export is faithful before refitting.
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := trace.ReadJSONL(rf)
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rt.Len() != comp.Trace.Len() {
		t.Fatalf("round-trip length %d != %d", rt.Len(), comp.Trace.Len())
	}

	refit := &scenario.Spec{
		Name: "refit-replay",
		Seed: 7,
		Phases: []scenario.Phase{{
			Name:  "refit",
			Trace: &scenario.TraceRef{Path: path, Format: "jsonl", Refit: true},
		}},
	}
	res, err := RunScenario(tpmCong, refit, 7, netsim.CCDCQCN)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("refit run produced no requests")
	}
	oa := orig.Baseline.Summary.AggregatedGbps
	ra := res.Baseline.Summary.AggregatedGbps
	if ra <= 0 {
		t.Fatalf("refit throughput %v", ra)
	}
	if ratio := ra / oa; ratio < 0.2 || ratio > 5 {
		t.Fatalf("refit throughput %v Gbps too far from original %v Gbps", ra, oa)
	}
}

func TestScenarioExperimentRegistered(t *testing.T) {
	exp, ok := LookupExperiment("scenario")
	if !ok {
		t.Fatal("scenario experiment not registered")
	}
	if exp.TPM != TPMCongestion {
		t.Fatalf("scenario TPM kind %v", exp.TPM)
	}
	var names []string
	for _, p := range exp.Params {
		names = append(names, p.Name)
	}
	for _, want := range []string{"name", "file", "requests", "seed", "cc"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("scenario experiment missing param %q (have %v)", want, names)
		}
	}
}
