package harness

import (
	"fmt"
	"io"
)

// Fig2Params models the motivating example of Fig. 2: an SSD whose total
// throughput is a fixed IOPS budget shared by reads and writes (the
// paper's demo device does 6 reads + 3 writes, or 3 reads + 6 writes —
// i.e. R + W = 9), an RDMA fabric that can carry NetCap requests per
// time unit, and a congestion event that cuts the network share of reads
// by CutFactor.
type Fig2Params struct {
	SSDTotalIOPS float64 // device budget, reads + writes (9 in Fig. 2)
	BaselineRead float64 // device read rate before congestion (6)
	NetCap       float64 // fabric capacity for read data (6)
	CutFactor    float64 // DCQCN's sending-rate cut (0.5)
}

// DefaultFig2Params reproduces the paper's numbers.
func DefaultFig2Params() Fig2Params {
	return Fig2Params{SSDTotalIOPS: 9, BaselineRead: 6, NetCap: 6, CutFactor: 0.5}
}

// Fig2Row is one scenario of the motivation example.
type Fig2Row struct {
	Scenario  string
	Read      float64 // read requests delivered per time unit
	Write     float64 // write requests completed per time unit
	Aggregate float64
}

// Fig2Motivation computes the three Fig. 2 scenarios analytically.
//
//   - No congestion: the device runs its preferred mix and the network
//     carries all read data.
//   - DCQCN: the network carries only CutFactor of the read data; the
//     device keeps processing reads at full speed, so the surplus is
//     wasted and aggregate throughput drops.
//   - SRC: the device re-prioritises so reads exactly match the reduced
//     network rate and the freed budget goes to writes; aggregate
//     throughput is preserved.
func Fig2Motivation(p Fig2Params) []Fig2Row {
	baselineWrite := p.SSDTotalIOPS - p.BaselineRead
	netRead := p.NetCap
	if p.BaselineRead < netRead {
		netRead = p.BaselineRead
	}

	congestedNet := p.NetCap * p.CutFactor

	// DCQCN-only: device still spends BaselineRead of its budget on
	// reads, but only congestedNet of them reach the initiator.
	dcqcnRead := congestedNet
	if p.BaselineRead < dcqcnRead {
		dcqcnRead = p.BaselineRead
	}
	dcqcnWrite := baselineWrite

	// SRC: device read rate lowered to the network rate; the rest of the
	// IOPS budget shifts to writes.
	srcRead := congestedNet
	if srcRead > p.SSDTotalIOPS {
		srcRead = p.SSDTotalIOPS
	}
	srcWrite := p.SSDTotalIOPS - srcRead

	return []Fig2Row{
		{Scenario: "no congestion", Read: netRead, Write: baselineWrite, Aggregate: netRead + baselineWrite},
		{Scenario: "DCQCN", Read: dcqcnRead, Write: dcqcnWrite, Aggregate: dcqcnRead + dcqcnWrite},
		{Scenario: "SRC", Read: srcRead, Write: srcWrite, Aggregate: srcRead + srcWrite},
	}
}

// FprintFig2 renders the motivation table.
func FprintFig2(w io.Writer, rows []Fig2Row) {
	fmt.Fprintln(w, "Fig. 2 motivation (requests per time unit)")
	fmt.Fprintf(w, "%-14s %6s %6s %10s\n", "scenario", "read", "write", "aggregate")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %6.1f %6.1f %10.1f\n", r.Scenario, r.Read, r.Write, r.Aggregate)
	}
}
