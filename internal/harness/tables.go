package harness

import (
	"fmt"
	"io"
	"math"

	"srcsim/internal/core"
	"srcsim/internal/devrun"
	"srcsim/internal/ml"
	"srcsim/internal/sim"
	"srcsim/internal/ssd"
	"srcsim/internal/trace"
	"srcsim/internal/workload"
)

// TableIRow is one estimator's accuracy (coefficient of determination).
type TableIRow struct {
	Model    string
	Accuracy float64
}

// TableI reproduces Table I: the five regression algorithms trained on
// micro-trace samples from SSD-A (60% train / 40% validation, the
// paper's split) and scored by R² averaged over the read and write
// outputs. count is the per-direction request count per sample run.
func TableI(cfg ssd.Config, count int, seed uint64) ([]TableIRow, error) {
	count = devrun.MinTrainCount(cfg, count)
	// The Fig. 5 grid plus randomly drawn workloads in between: the
	// paper trains on "extensive experiments with various workloads",
	// and instance-based estimators (KNN) need the continuous coverage.
	specs := devrun.DefaultGrid(count, seed)
	specs = append(specs, devrun.RandomSpecs(24, count, seed)...)
	samples, err := devrun.CollectSamples(cfg, specs,
		[]int{1, 2, 3, 4, 5, 6, 8}, 0)
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(seed ^ 0x7ab1e1)
	trainIdx, testIdx := ml.TrainTestSplit(len(samples), 0.6, rng)
	train := gather(samples, trainIdx)
	test := gather(samples, testIdx)

	factories := []func() ml.Regressor{
		func() ml.Regressor { return &ml.LinearRegression{} },
		func() ml.Regressor { return &ml.PolynomialRegression{} },
		func() ml.Regressor { return &ml.KNNRegressor{K: 5} },
		func() ml.Regressor { return &ml.DecisionTreeRegressor{Seed: seed} },
		func() ml.Regressor { return &ml.RandomForestRegressor{Trees: 100, Seed: seed} },
	}
	var rows []TableIRow
	for _, factory := range factories {
		tpm := &core.TPM{NewRegressor: factory}
		if err := tpm.Train(train); err != nil {
			return nil, fmt.Errorf("harness: TableI %s: %w", factory().Name(), err)
		}
		rows = append(rows, TableIRow{
			Model:    factory().Name(),
			Accuracy: tpm.Accuracy(test),
		})
	}
	return rows, nil
}

func gather(samples []core.Sample, idx []int) []core.Sample {
	out := make([]core.Sample, len(idx))
	for i, ix := range idx {
		out[i] = samples[ix]
	}
	return out
}

// FprintTableI renders the regression-accuracy table.
func FprintTableI(w io.Writer, rows []TableIRow) {
	fmt.Fprintln(w, "Table I: regression accuracy (R²)")
	fmt.Fprintf(w, "%-26s %8s\n", "Model", "Accuracy")
	for _, r := range rows {
		fmt.Fprintf(w, "%-26s %8.2f\n", r.Model, r.Accuracy)
	}
}

// TableIIIRow is one workload class's grouped cross-validation accuracy.
type TableIIIRow struct {
	Class    workload.SCVClass
	Accuracy float64
}

// TableIII reproduces Table III: a pool of synthetic (MMPP) workloads
// with continuously varying statistics is classified into the paper's
// four size-SCV × inter-arrival-SCV subsets; for each subset, the random
// forest is trained on all micro samples plus the other subsets'
// synthetic samples and validated on the held-out subset. This follows
// the paper's protocol ("classify the synthetic workloads... according
// to their spatial and temporal statistics"): the pool is a continuum,
// so each held-out class has near neighbours in training. totalTraces is
// the synthetic pool size.
func TableIII(cfg ssd.Config, count, totalTraces int, seed uint64) ([]TableIIIRow, error) {
	count = devrun.MinTrainCount(cfg, count)
	if totalTraces <= 0 {
		totalTraces = 24
	}
	// Micro samples form the training backbone (group 0 = micro).
	micro, err := devrun.CollectSamples(cfg, devrun.DefaultGrid(count, seed),
		[]int{1, 2, 4, 6, 8}, 0)
	if err != nil {
		return nil, err
	}
	all := micro

	// Classification thresholds splitting the continuum into the four
	// Table III subsets.
	const sizeSCVSplit, iaSCVSplit = 1.2, 2.2
	classify := func(sizeSCV, iaSCV float64) workload.SCVClass {
		switch {
		case sizeSCV < sizeSCVSplit && iaSCV < iaSCVSplit:
			return workload.LowSizeLowIA
		case sizeSCV < sizeSCVSplit:
			return workload.LowSizeHighIA
		case iaSCV < iaSCVSplit:
			return workload.HighSizeLowIA
		default:
			return workload.HighSizeHighIA
		}
	}

	rng := sim.NewRNG(seed ^ 0x7ab1e3)
	for t := 0; t < totalTraces; t++ {
		sizeSCV := 0.2 + rng.Float64()*4.0
		iaSCV := 1.0 + rng.Float64()*4.0
		acf := 0.0
		if iaSCV > 1.1 {
			acf = rng.Float64() * 0.3
		}
		meanIA := sim.Time(10+rng.Intn(16)) * sim.Microsecond
		meanSize := (10 + rng.Intn(31)) << 10
		class := classify(sizeSCV, iaSCV)

		tr, err := workload.Synthetic(workload.SyntheticConfig{
			Seed:      seed + uint64(t)*7919,
			ReadCount: count, WriteCount: count,
			ReadInterArrival: meanIA, WriteInterArrival: meanIA,
			ReadInterArrivalSCV: iaSCV, WriteInterArrivalSCV: iaSCV,
			ReadACF1: acf, WriteACF1: acf,
			ReadMeanSize: meanSize, WriteMeanSize: meanSize,
			ReadSizeSCV: sizeSCV, WriteSizeSCV: sizeSCV,
		})
		if err != nil {
			return nil, fmt.Errorf("harness: TableIII trace %d: %w", t, err)
		}
		samples, err := devrun.CollectSamplesFromTraces(cfg, []*trace.Trace{tr},
			[]int{1, 2, 4, 6, 8}, int(class)+1)
		if err != nil {
			return nil, err
		}
		all = append(all, samples...)
	}

	var rows []TableIIIRow
	for ci, class := range workload.SCVClasses {
		group := ci + 1
		var train, test []core.Sample
		for _, s := range all {
			if s.Group == group {
				test = append(test, s)
			} else {
				train = append(train, s)
			}
		}
		if len(test) == 0 {
			rows = append(rows, TableIIIRow{Class: class, Accuracy: math.NaN()})
			continue
		}
		tpm := core.NewTPM()
		if err := tpm.Train(train); err != nil {
			return nil, err
		}
		rows = append(rows, TableIIIRow{Class: class, Accuracy: tpm.Accuracy(test)})
	}
	return rows, nil
}

// FprintTableIII renders the grouped cross-validation table.
func FprintTableIII(w io.Writer, rows []TableIIIRow) {
	fmt.Fprintln(w, "Table III: cross-validation accuracy (Random Forest, R²)")
	fmt.Fprintf(w, "%-42s %8s\n", "Data Subset", "Accuracy")
	for _, r := range rows {
		fmt.Fprintf(w, "%-42s %8.2f\n", r.Class, r.Accuracy)
	}
}

// FeatureImportanceReport returns the TPM's Breiman feature importances
// (Sec. III-B reports arrival flow speed at 0.39).
func FeatureImportanceReport(tpm *core.TPM) (names []string, weights []float64, ok bool) {
	return tpm.FeatureImportances()
}
