package harness

import (
	"io"
	"strings"
	"testing"
)

// TestRegistryListing asserts the registry enumerates every experiment
// the front-ends expose, in stable listing order.
func TestRegistryListing(t *testing.T) {
	want := []string{"fig2", "fig5", "fig7", "fig9", "fig10", "table4", "chaos-soak",
		"adapt-aging", "adapt-phase", "adapt-failover",
		"ctrl-degradation", "ctrl-failover", "cc-matrix", "replay", "scenario"}
	got := ExperimentNames()
	if len(got) != len(want) {
		t.Fatalf("registered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registered %v, want %v", got, want)
		}
	}
	for _, name := range want {
		e, ok := LookupExperiment(name)
		if !ok {
			t.Fatalf("lookup %s failed", name)
		}
		if e.Run == nil {
			t.Fatalf("%s has no Run", name)
		}
		if e.Title == "" {
			t.Fatalf("%s has no title", name)
		}
	}
	if _, ok := LookupExperiment("fig404"); ok {
		t.Fatal("lookup of unregistered name succeeded")
	}

	var b strings.Builder
	FprintExperiments(&b)
	for _, name := range want {
		if !strings.Contains(b.String(), name) {
			t.Fatalf("listing missing %s:\n%s", name, b.String())
		}
	}
}

// TestResolveDefaultsAndOverrides covers default fill-in, override
// overlay, and the unknown-parameter error that catches campaign-grid
// typos at expansion time.
func TestResolveDefaultsAndOverrides(t *testing.T) {
	e, _ := LookupExperiment("fig7")
	p, err := e.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if p["requests"] != "2000" || p["seed"] != "7" || p["cc"] != "dcqcn" {
		t.Fatalf("defaults: %v", p)
	}

	p, err = e.Resolve(map[string]string{"requests": "250"})
	if err != nil {
		t.Fatal(err)
	}
	if p["requests"] != "250" || p["seed"] != "7" {
		t.Fatalf("override: %v", p)
	}

	if _, err := e.Resolve(map[string]string{"requsets": "250"}); err == nil {
		t.Fatal("typo'd parameter name accepted")
	}
}

// TestParamParsers covers the typed accessors' error paths.
func TestParamParsers(t *testing.T) {
	p := Params{"n": "12", "f": "0.5", "s": "7", "ws": "1, 4,8", "bad": "x"}
	if v, err := p.Int("n"); err != nil || v != 12 {
		t.Fatalf("Int: %v %v", v, err)
	}
	if v, err := p.Float("f"); err != nil || v != 0.5 {
		t.Fatalf("Float: %v %v", v, err)
	}
	if v, err := p.Uint64("s"); err != nil || v != 7 {
		t.Fatalf("Uint64: %v %v", v, err)
	}
	ws, err := p.Ints("ws")
	if err != nil || len(ws) != 3 || ws[0] != 1 || ws[1] != 4 || ws[2] != 8 {
		t.Fatalf("Ints: %v %v", ws, err)
	}
	if _, err := p.Int("bad"); err == nil {
		t.Fatal("Int on junk accepted")
	}
	if _, err := p.Ints("bad"); err == nil {
		t.Fatal("Ints on junk accepted")
	}
}

// TestRunFig2 runs the one self-contained analytic experiment through
// the registry and checks Text matches the direct renderer and Data
// carries the rows.
func TestRunFig2(t *testing.T) {
	e, _ := LookupExperiment("fig2")
	p, err := e.Resolve(map[string]string{"cut_factor": "0.25"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	fp := DefaultFig2Params()
	fp.CutFactor = 0.25
	want := render(func(w io.Writer) { FprintFig2(w, Fig2Motivation(fp)) })
	if out.Text != want {
		t.Fatalf("text mismatch:\ngot:\n%s\nwant:\n%s", out.Text, want)
	}
	rows, ok := out.Data.([]Fig2Row)
	if !ok || len(rows) != 3 {
		t.Fatalf("data: %T %v", out.Data, out.Data)
	}
}

// TestRunWithoutTPMFails asserts a model-dependent experiment fails
// cleanly when the environment provides no trainer, instead of
// panicking mid-simulation.
func TestRunWithoutTPMFails(t *testing.T) {
	e, _ := LookupExperiment("fig7")
	p, err := e.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(nil, p); err == nil {
		t.Fatal("fig7 ran without a TPM")
	}
	if _, err := e.Run(&Env{}, p); err == nil {
		t.Fatal("fig7 ran with an empty Env")
	}
}

// TestReplayRequiresFile asserts replay validates its file parameter
// before touching the TPM.
func TestReplayRequiresFile(t *testing.T) {
	e, _ := LookupExperiment("replay")
	p, err := e.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(nil, p); err == nil {
		t.Fatal("replay ran without a file")
	}
}
