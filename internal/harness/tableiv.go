package harness

import (
	"fmt"
	"io"

	"srcsim/internal/cluster"
	"srcsim/internal/core"
	"srcsim/internal/sim"
	"srcsim/internal/workload"
)

// IncastCase is one Table IV configuration: Targets:Initiators.
type IncastCase struct {
	Targets    int
	Initiators int
}

// String renders the paper's "T:I" in-cast label.
func (c IncastCase) String() string { return fmt.Sprintf("%d:%d", c.Targets, c.Initiators) }

// DefaultIncastCases lists Table IV's rows.
func DefaultIncastCases() []IncastCase {
	return []IncastCase{{2, 1}, {3, 1}, {4, 1}, {4, 4}}
}

// TableIVRow is one in-cast ratio's result.
type TableIVRow struct {
	Case        IncastCase
	SRCGbps     float64
	DCQCNGbps   float64
	Improvement float64
}

// TableIV reproduces the in-cast analysis: a fixed total traffic load
// spread over a varying number of targets (and, in the last row, more
// initiators). With fewer targets each one queues more commands, so WRR
// bites and SRC's improvement is largest; spreading the load thins the
// queues until WRR degrades to plain round-robin, and extra initiators
// relieve the congestion entirely. seconds is the trace length.
//
// The fixed total offered read load is 1.4x the link rate — calibrated
// so the 2-target case saturates each device while the 4-target case
// leaves per-target queues thin (the paper's WRR-fade regime).
func TableIV(tpm *core.TPM, cases []IncastCase, seconds float64, seed uint64, mods ...func(*cluster.Spec)) ([]TableIVRow, error) {
	if len(cases) == 0 {
		cases = DefaultIncastCases()
	}
	loadBps := 1.4 * LinkRate
	readIA := sim.Time(float64(44<<10) * 8 / loadBps * float64(sim.Second))
	writeIA := 2 * readIA
	readCount := int(seconds / readIA.Seconds())
	tr, err := workload.Synthetic(workload.SyntheticConfig{
		Seed:      seed,
		ReadCount: readCount, WriteCount: readCount / 2,
		ReadInterArrival: readIA, WriteInterArrival: writeIA,
		ReadInterArrivalSCV: 3.0, WriteInterArrivalSCV: 2.5,
		ReadACF1: 0.2, WriteACF1: 0.15,
		ReadMeanSize: 44 << 10, WriteMeanSize: 23 << 10,
		ReadSizeSCV: 1.8, WriteSizeSCV: 1.4,
	})
	if err != nil {
		return nil, err
	}

	var rows []TableIVRow
	for _, cs := range cases {
		spec := CongestionSpec()
		spec.Targets = cs.Targets
		spec.Initiators = cs.Initiators
		base, src, err := cluster.CompareModes(spec, tpm, tr, nil, mods...)
		if err != nil {
			return nil, fmt.Errorf("harness: TableIV %v: %w", cs, err)
		}
		res := CongestionResult{Baseline: base, SRC: src}
		rows = append(rows, TableIVRow{
			Case:        cs,
			SRCGbps:     src.AggregatedGbps,
			DCQCNGbps:   base.AggregatedGbps,
			Improvement: res.Improvement(),
		})
	}
	return rows, nil
}

// FprintTableIV renders the in-cast table in the paper's layout.
func FprintTableIV(w io.Writer, rows []TableIVRow) {
	fmt.Fprintln(w, "Table IV: in-cast ratio analysis")
	fmt.Fprintf(w, "%-14s %12s %12s %12s\n", "In-cast Ratio", "DCQCN-SRC", "DCQCN-Only", "Improvement")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %9.2f G %9.2f G %11.0f%%\n",
			r.Case, r.SRCGbps, r.DCQCNGbps, r.Improvement*100)
	}
}
