package harness

// Chaos-adaptation evaluation (ISSUE 7 tentpole, part c): three
// scenarios that push the trained TPM out of its regime mid-run —
// stepped SSD aging, an MMPP workload phase switch, and a target
// failover — and measure how the adaptive ladder absorbs each one:
// time-to-recover, throughput retained versus an undisturbed oracle,
// and the full ladder-transition timeline (also visible live through
// the PR 6 flight recorder as src_ladder_state/src_retrains series).
//
// All timing is quantized to the trace duration (q = D/100), so the
// reduced-scale determinism-matrix legs exercise the same dynamics as
// the full-size experiments.

import (
	"fmt"
	"io"

	"srcsim/internal/cluster"
	"srcsim/internal/core"
	"srcsim/internal/devrun"
	"srcsim/internal/faults"
	"srcsim/internal/nvmeof"
	"srcsim/internal/sim"
	"srcsim/internal/trace"
	"srcsim/internal/workload"
)

// adaptQuantum is the scenario time base: 1% of the trace duration,
// floored so tiny matrix-scale traces keep a sane observation cadence.
func adaptQuantum(d sim.Time) sim.Time {
	q := d / 100
	if q < 50*sim.Microsecond {
		q = 50 * sim.Microsecond
	}
	return q
}

// AdaptConfig returns the adaptive-controller tuning used by all three
// chaos-adaptation scenarios, scaled to the trace duration d. The
// thresholds are deliberately aggressive — the scenarios inject
// unambiguous regime breaks, and the evaluation wants the ladder's full
// descent/recovery arc inside one run.
func AdaptConfig(d sim.Time) core.AdaptiveConfig {
	q := adaptQuantum(d)
	return core.AdaptiveConfig{
		Enabled:      true,
		ObserveEvery: q,
		// A deliberately short window: after a regime change the model
		// can only become accurate again once post-change samples
		// dominate the window, so recency beats volume here.
		WindowSamples:     40,
		MinRetrainSamples: 20,
		RetrainEvery:      8 * q,
		RetrainTrees:      20,
		PromoteMargin:     0.02,
		MaxRejects:        3,
		ErrWindow:         5,
		ErrDegrade:        0.40,
		ErrHard:           0.60,
		ErrHealthy:        0.35,
		DwellTime:         3 * q,
		RecoverAfter:      3,
		AIMDStep:          1,
		AIMDBackoff:       1.5,
		Cache:             devrun.TPMCacheFromEnv(),
	}
}

// AdaptResult is one chaos-adaptation scenario's outcome: the adaptive
// run, the undisturbed oracle it is scored against, and the ladder
// verdicts the acceptance criteria check.
type AdaptResult struct {
	Scenario string `json:"scenario"`
	// Adaptive is the faulted run with the ladder armed.
	Adaptive cluster.Digest `json:"adaptive"`
	// Oracle is the same workload on an undisturbed testbed with
	// adaptation off — the throughput ceiling the scenario is scored
	// against.
	Oracle cluster.Digest `json:"oracle"`
	// ReachedModelFree: the ladder descended at least to the AIMD rung.
	ReachedModelFree bool `json:"reached_model_free"`
	// Recovered / TimeToRecoverMs mirror the run's Summary ledger.
	Recovered       bool    `json:"recovered"`
	TimeToRecoverMs float64 `json:"time_to_recover_ms"`
	// RetainedPct is adaptive aggregated throughput as a percentage of
	// the oracle's.
	RetainedPct float64 `json:"retained_pct"`
}

// runAdapt executes one scenario: the adaptive leg on spec as given
// (faults installed, ladder armed), then the oracle leg — identical
// testbed and workload with no faults and no adaptation.
func runAdapt(scenario string, spec cluster.Spec, tpm *core.TPM, tr *trace.Trace, mods ...func(*cluster.Spec)) (*AdaptResult, error) {
	spec.Mode = cluster.DCQCNSRC
	spec.TPM = tpm

	// The oracle leg starts from the pristine spec: no faults, no
	// retries, no adaptation, no staleness watchdog — plain SRC on an
	// undisturbed testbed.
	oracle := spec
	oracle.Faults = nil
	oracle.Retry = nvmeof.RetryPolicy{}
	oracle.SRC.Adaptive = core.AdaptiveConfig{}
	oracle.SRC.StaleAfter = 0

	for _, m := range mods {
		m(&spec)
	}
	ca, err := cluster.New(spec)
	if err != nil {
		return nil, err
	}
	adaptive, err := ca.Run(tr, nil)
	if err != nil {
		return nil, fmt.Errorf("harness: %s adaptive leg: %w", scenario, err)
	}

	for _, m := range mods {
		m(&oracle)
	}
	co, err := cluster.New(oracle)
	if err != nil {
		return nil, err
	}
	ores, err := co.Run(tr, nil)
	if err != nil {
		return nil, fmt.Errorf("harness: %s oracle leg: %w", scenario, err)
	}

	res := &AdaptResult{
		Scenario:        scenario,
		Adaptive:        adaptive.Digest(),
		Oracle:          ores.Digest(),
		Recovered:       adaptive.AdaptRecovered,
		TimeToRecoverMs: adaptive.AdaptRecoverMs,
	}
	for _, st := range adaptive.Ladder {
		if st.To == core.LadderModelFree.String() {
			res.ReachedModelFree = true
			break
		}
	}
	if ores.AggregatedGbps > 0 {
		res.RetainedPct = adaptive.AggregatedGbps / ores.AggregatedGbps * 100
	}
	return res, nil
}

// AdaptAging: stepped SSD aging. Both targets' arrays take an
// escalating ssd-slow staircase (factor 6, then 9) built with
// faults.Repeat, while the VDI workload runs. The TPM — trained on the
// healthy device — overpredicts read throughput by the slow factor, so
// windowed prediction error drives the ladder down; when the last aging
// window expires the incumbent model is accurate again and the ladder
// climbs home.
func AdaptAging(tpm *core.TPM, requests int, seed uint64, mods ...func(*cluster.Spec)) (*AdaptResult, error) {
	tr, err := VDITrace(seed, requests)
	if err != nil {
		return nil, err
	}
	d := tr.Duration()
	spec := CongestionSpec()
	spec.SRC.Adaptive = AdaptConfig(d)
	spec.Horizon = 3*d + 200*sim.Millisecond

	// Two aging windows per target — [d/8, d/4] at factor 6 and
	// [d/8+d/3, d/4+d/3] at factor 9 — leaving a healthy gap between
	// them and the last ~40% of the trace for the final climb home. The
	// factors are chosen to make the slowed device the binding
	// bottleneck: milder slowdowns hide behind the shared network limit
	// and never push prediction error past ErrHard.
	step := faults.Event{
		At: d / 8, Kind: faults.SSDSlow, Duration: d / 8, Factor: 6,
	}
	var evs []faults.Event
	for _, where := range []string{"target:0", "target:1"} {
		s := step
		s.Where = where
		evs = append(evs, faults.Repeat(s, 2, d/3, 1.5)...)
	}
	spec.Faults = &faults.Schedule{Seed: 0xA61A6, Events: evs}
	return runAdapt("adapt-aging", spec, tpm, tr, mods...)
}

// phaseBTrace is the out-of-envelope second phase for AdaptPhase: the
// workload pivots from the VDI mix (read-heavy, 44 KB reads) to a
// write-dominated pattern whose reads are sparse and tiny. Measured
// read throughput collapses below the smallest target the TPM ever
// trained on — a random forest cannot extrapolate beneath its training
// range, so the calibration error is large for ANY model fitted to
// phase A, making the hard descent robust to how the incumbent was
// trained. In-run retraining can still fit phase B's samples, which is
// what wins the ladder back.
func phaseBTrace(seed uint64, perDir int) (*trace.Trace, error) {
	reads := perDir / 4
	if reads < 1 {
		reads = 1
	}
	return workload.Synthetic(workload.SyntheticConfig{
		Seed:      seed,
		ReadCount: reads, WriteCount: 3 * perDir,
		ReadInterArrival: 40 * sim.Microsecond, WriteInterArrival: 4 * sim.Microsecond,
		ReadInterArrivalSCV: 1.2, WriteInterArrivalSCV: 5.0,
		ReadACF1: 0.05, WriteACF1: 0.40,
		ReadMeanSize: 2 << 10, WriteMeanSize: 28 << 10,
		ReadSizeSCV: 0.8, WriteSizeSCV: 2.2,
	})
}

// AdaptPhase: MMPP workload phase switch. Phase A is the VDI trace;
// phase B (appended seamlessly after it) is phaseBTrace's write-heavy
// small-transfer regime. No faults are injected — the disruption is
// that the model's envelope no longer covers the traffic, so recovery
// requires in-run retraining to promote a candidate fitted to phase B's
// samples (there is no healthy regime to "come back" to).
func AdaptPhase(tpm *core.TPM, requests int, seed uint64, mods ...func(*cluster.Spec)) (*AdaptResult, error) {
	a, err := VDITrace(seed, requests)
	if err != nil {
		return nil, err
	}
	b, err := phaseBTrace(seed+1, requests)
	if err != nil {
		return nil, err
	}
	// Shift phase B to start where phase A ends, merge, and re-ID: both
	// synthetic traces number their requests from zero, and request IDs
	// key the cluster's submit/flight/dedup maps.
	shift := a.Duration() + 10*sim.Microsecond
	for i := range b.Requests {
		b.Requests[i].Arrival += shift
	}
	tr := a.Merge(b)
	for i := range tr.Requests {
		tr.Requests[i].ID = uint64(i)
	}

	d := tr.Duration()
	spec := CongestionSpec()
	spec.SRC.Adaptive = AdaptConfig(d)
	// A workload phase switch degrades the model more gently than a
	// hardware fault: the feature window co-varies with the traffic, so
	// calibration error settles into a persistent mid-band rather than
	// blowing out. The scenario arms a tighter hard threshold to
	// classify that sustained miscalibration as model breakdown.
	spec.SRC.Adaptive.ErrHard = 0.45
	spec.Horizon = 3*d + 200*sim.Millisecond
	return runAdapt("adapt-phase", spec, tpm, tr, mods...)
}

// AdaptFailover: target failover. Target 1's host link goes down a
// quarter into the run and stays down for another quarter; retries are
// armed so orphaned commands fail over cleanly, and StaleAfter is armed
// so target 1's controller — whose telemetry feed went silent with the
// link — drops to Static rather than steering on a dead feature window.
// When the link returns, telemetry freshens and the ladder climbs back.
func AdaptFailover(tpm *core.TPM, requests int, seed uint64, mods ...func(*cluster.Spec)) (*AdaptResult, error) {
	tr, err := VDITrace(seed, requests)
	if err != nil {
		return nil, err
	}
	d := tr.Duration()
	q := adaptQuantum(d)
	spec := CongestionSpec()
	spec.SRC.Adaptive = AdaptConfig(d)
	// Wide enough that MMPP burst gaps never trip it, far smaller than
	// the d/6 link outage that should.
	spec.SRC.StaleAfter = 12 * q
	spec.Horizon = 3*d + 400*sim.Millisecond
	// Retry timing in trace quanta so matrix-scale runs keep the same
	// dynamics. The timeout must clear healthy p99 latency by a wide
	// margin (a tight timeout turns ordinary congestion into a retry
	// storm) while still resolving orphaned commands within a few quanta
	// of the link returning, leaving the back half of the trace for the
	// climb home.
	spec.Faults = &faults.Schedule{
		Seed: 0xFA11,
		Recovery: &faults.Recovery{
			Timeout:     40 * q,
			MaxRetries:  5,
			BackoffBase: 4 * q,
			BackoffCap:  16 * q,
		},
		Events: []faults.Event{
			// A short outage: the backlog it creates scales with its
			// length, and the post-outage catch-up (a drifting regime no
			// model predicts well) must finish early enough for the
			// ladder to climb home inside the arrival span.
			{At: d / 6, Kind: faults.LinkDown, Where: "target:1", Duration: d / 8},
		},
	}
	return runAdapt("adapt-failover", spec, tpm, tr, mods...)
}

// FprintAdapt renders one scenario's verdicts and ladder timeline (the
// srcsim text output for the adapt-* experiments).
func FprintAdapt(w io.Writer, r *AdaptResult) {
	fmt.Fprintf(w, "%s: chaos-adaptation scenario\n", r.Scenario)
	fmt.Fprintf(w, "adaptive    read %5.2f Gbps | write %5.2f Gbps | aggregated %5.2f Gbps\n",
		r.Adaptive.Summary.ReadGbps, r.Adaptive.Summary.WriteGbps, r.Adaptive.Summary.AggregatedGbps)
	fmt.Fprintf(w, "oracle      read %5.2f Gbps | write %5.2f Gbps | aggregated %5.2f Gbps\n",
		r.Oracle.Summary.ReadGbps, r.Oracle.Summary.WriteGbps, r.Oracle.Summary.AggregatedGbps)
	fmt.Fprintf(w, "retained %.1f%% of oracle | reached ModelFree: %v | recovered: %v",
		r.RetainedPct, r.ReachedModelFree, r.Recovered)
	if r.Recovered {
		fmt.Fprintf(w, " in %.2f ms", r.TimeToRecoverMs)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "retraining: %d fits, %d promoted, %d rejected\n",
		r.Adaptive.Summary.Retrains, r.Adaptive.Summary.Promotions, r.Adaptive.Summary.Rejections)
	fmt.Fprintln(w, "ladder timeline:")
	for _, st := range r.Adaptive.Summary.Ladder {
		fmt.Fprintf(w, "  %8.2fms t%d %-10s -> %-10s (%s)\n",
			st.AtMs, st.Target, st.From, st.To, st.Reason)
	}
	if r.Adaptive.Summary.Failed > 0 {
		fmt.Fprintf(w, "accounting: completed %d + failed %d of %d submitted\n",
			r.Adaptive.Summary.Completed, r.Adaptive.Summary.Failed, r.Adaptive.Summary.Submitted)
	}
}
