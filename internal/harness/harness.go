// Package harness regenerates every table and figure of the paper's
// evaluation (Sec. IV). Each experiment has one entry point returning
// typed rows/series plus a Fprint helper that renders the same layout
// the paper reports. EXPERIMENTS.md records paper-versus-measured for
// each one.
//
// Calibration note (see DESIGN.md "Substitutions"): the paper's absolute
// scale depends on unpublished NS3/MQSim build details; this harness
// fixes the per-target flash array at 4 channels × 4 dies and the host
// links at 10 Gbps, which reproduces the paper's operating regime —
// reads overload both the device and the initiator downlink while writes
// fit the uplink — at ~1/4 the nominal link rate. All comparisons are
// A/B under identical settings, so shapes and ratios are preserved.
package harness

import (
	"fmt"
	"io"

	"srcsim/internal/cluster"
	"srcsim/internal/core"
	"srcsim/internal/devrun"
	"srcsim/internal/guard"
	"srcsim/internal/sim"
	"srcsim/internal/ssd"
	"srcsim/internal/sweep/cache"
	"srcsim/internal/trace"
	"srcsim/internal/workload"
)

// LinkRate is the calibrated host link speed for congestion experiments.
const LinkRate = 10e9

// TargetArrayConfig sizes a Table II device as one target's flash array
// (4 channels × 4 dies), the calibration used by Figs. 7-10 and
// Table IV.
func TargetArrayConfig(cfg ssd.Config) ssd.Config {
	cfg.Channels = 4
	cfg.DiesPerChannel = 4
	return cfg
}

// CongestionSpec returns the Sec. IV-D testbed: 1 initiator, 2 targets,
// SSD-A arrays, 10 Gbps links. The conservation auditor runs on every
// harness experiment: audits are read-only, so they cannot perturb the
// run, and a violation fails the experiment instead of skewing its
// figures.
func CongestionSpec() cluster.Spec {
	return cluster.Spec{
		Initiators: 1,
		Targets:    2,
		SSD:        TargetArrayConfig(ssd.ConfigA()),
		LinkRate:   LinkRate,
		Guard:      guard.Config{Audit: true},
	}
}

// VDITrace generates the Sec. IV-D workload: a synthetic trace with the
// Fujitsu-VDI statistics the paper reports (read-heavy, 44 KB reads /
// 23 KB writes, ~10 µs read inter-arrival, bursty MMPP arrivals).
// perDir is the write count; reads get twice as many requests.
func VDITrace(seed uint64, perDir int) (*trace.Trace, error) {
	return workload.Synthetic(workload.SyntheticConfig{
		Seed:      seed,
		ReadCount: 2 * perDir, WriteCount: perDir,
		ReadInterArrival: 10 * sim.Microsecond, WriteInterArrival: 20 * sim.Microsecond,
		ReadInterArrivalSCV: 3.0, WriteInterArrivalSCV: 2.5,
		ReadACF1: 0.2, WriteACF1: 0.15,
		ReadMeanSize: 44 << 10, WriteMeanSize: 23 << 10,
		ReadSizeSCV: 1.8, WriteSizeSCV: 1.4,
	})
}

// TrainCongestionTPM trains the TPM used by the congestion experiments
// (on the target-array SSD-A device). count is the per-direction request
// count per training run; 1000-2500 is plenty.
func TrainCongestionTPM(count int, seed uint64) (*core.TPM, []core.Sample, error) {
	return devrun.TrainTPM(TargetArrayConfig(ssd.ConfigA()), count, seed)
}

// TrainCongestionTPMCached is TrainCongestionTPM behind the
// content-addressed artifact cache (see devrun.TrainTPMCached): the
// test suites and the sweep orchestrator share trained models across
// processes instead of re-training identical forests.
func TrainCongestionTPMCached(c *cache.Cache, count int, seed uint64) (*core.TPM, bool, error) {
	return devrun.TrainTPMCached(c, TargetArrayConfig(ssd.ConfigA()), count, seed)
}

// fprintSeries renders a Gbps time series compactly, one row per bucket
// group of ten.
func fprintSeries(w io.Writer, label string, xs []float64) {
	fmt.Fprintf(w, "%s (Gbps per ms):\n", label)
	for i := 0; i < len(xs); i += 10 {
		end := i + 10
		if end > len(xs) {
			end = len(xs)
		}
		fmt.Fprintf(w, "  %4dms:", i)
		for _, v := range xs[i:end] {
			fmt.Fprintf(w, " %6.2f", v)
		}
		fmt.Fprintln(w)
	}
}
