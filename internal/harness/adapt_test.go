package harness

// Chaos-adaptation acceptance and determinism tests (ISSUE 7
// satellites 3 and 6, harness side): each scenario's ladder must reach
// ModelFree and recover to Predictive with a reported time-to-recover;
// request accounting must close exactly across every ladder transition;
// results must be byte-identical across reruns; and the retrain cache
// must be semantically invisible (cold, warm, and cache-off runs all
// byte-identical).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"srcsim/internal/cluster"
	"srcsim/internal/core"
	"srcsim/internal/sweep/cache"
)

// adaptScenarios enumerates the three chaos-adaptation experiments.
var adaptScenarios = []struct {
	name string
	run  func(*core.TPM, int, uint64, ...func(*cluster.Spec)) (*AdaptResult, error)
}{
	{"adapt-aging", AdaptAging},
	{"adapt-phase", AdaptPhase},
	{"adapt-failover", AdaptFailover},
}

// TestAdaptScenarioVerdicts runs every scenario at full scale and
// checks the headline acceptance criteria: the ladder descends at least
// to ModelFree, recovers to Predictive with a positive time-to-recover,
// the adaptive leg retains a sane fraction of the oracle's throughput,
// and request accounting closes exactly.
func TestAdaptScenarioVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale adaptation scenarios; skipped with -short")
	}
	tpm, _ := testTPMs(t)
	for _, sc := range adaptScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			res, err := sc.run(tpm, 600, 7)
			if err != nil {
				t.Fatal(err)
			}
			sum := res.Adaptive.Summary
			if !res.ReachedModelFree {
				t.Errorf("ladder never reached ModelFree:\n%s", ladderDump(sum))
			}
			if !res.Recovered || res.TimeToRecoverMs <= 0 {
				t.Errorf("no recovery to Predictive (recovered=%v, ttr=%.2f ms):\n%s",
					res.Recovered, res.TimeToRecoverMs, ladderDump(sum))
			}
			if res.RetainedPct < 40 || res.RetainedPct > 120 {
				t.Errorf("retained %.1f%% of oracle throughput — outside any plausible band", res.RetainedPct)
			}
			if got := sum.Completed + sum.Failed; got != sum.Submitted {
				t.Errorf("accounting leak: completed %d + failed %d = %d, submitted %d",
					sum.Completed, sum.Failed, got, sum.Submitted)
			}
			if oracle := res.Oracle.Summary; oracle.Completed != oracle.Submitted {
				t.Errorf("oracle leg dropped requests: %d/%d", oracle.Completed, oracle.Submitted)
			}
		})
	}
}

// ladderDump renders a transition timeline for failure messages.
func ladderDump(s cluster.Summary) string {
	var b strings.Builder
	for _, st := range s.Ladder {
		fmt.Fprintf(&b, "%8.2fms t%d %s -> %s (%s)\n", st.AtMs, st.Target, st.From, st.To, st.Reason)
	}
	return b.String()
}

// TestAdaptDeterminismAndCacheIdentity: the failover scenario at
// reduced scale three ways — no retrain cache, cold cache, warm cache
// (same directory re-used) — must produce byte-identical JSON. The
// cache key covers every training input, so a hit is byte-equivalent to
// a fit and the cache can never change results.
func TestAdaptDeterminismAndCacheIdentity(t *testing.T) {
	tpm, _ := testTPMs(t)
	dir := t.TempDir()
	legs := []struct {
		name string
		c    *cache.Cache
	}{
		{"nocache-a", nil},
		{"nocache-b", nil},
		{"cache-cold", cache.New(dir)},
		{"cache-warm", cache.New(dir)},
	}
	var ref []byte
	for _, leg := range legs {
		mod := func(s *cluster.Spec) { s.SRC.Adaptive.Cache = leg.c }
		res, err := AdaptFailover(tpm, 200, 7, mod)
		if err != nil {
			t.Fatalf("%s: %v", leg.name, err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("%s: marshal: %v", leg.name, err)
		}
		if ref == nil {
			ref = b
			continue
		}
		if !bytes.Equal(b, ref) {
			t.Errorf("%s diverged from %s:\nref: %s\ngot: %s", leg.name, legs[0].name, clip(ref), clip(b))
		}
	}
}
