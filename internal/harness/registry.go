package harness

// The experiment registry: every paper experiment is registered as an
// enumerable spec with named, defaulted, string-typed parameters and a
// uniform run signature, so front-ends (cmd/srcsim, cmd/sweep, the
// campaign orchestrator in internal/sweep) can list, validate, and run
// any experiment without a per-experiment switch. Registered Run
// functions must be deterministic functions of (params, shared TPM):
// the sweep cache content-addresses their output by exactly those
// inputs.

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"srcsim/internal/cluster"
	"srcsim/internal/core"
	"srcsim/internal/netsim"
	"srcsim/internal/ssd"
	"srcsim/internal/trace"
)

// TPMKind names a shared trained throughput-prediction model an
// experiment depends on. Front-ends provide models lazily through
// Env.TPM, so experiments that need none never trigger training.
type TPMKind int

const (
	// TPMNone: the experiment runs without a trained model.
	TPMNone TPMKind = iota
	// TPMCongestion is the Sec. IV-D model: the target-array SSD-A
	// device (TrainCongestionTPM).
	TPMCongestion
	// TPMFig9 is the dynamic-control model: the Fig9Config SSD-B array
	// (devrun.TrainTPM(Fig9Config(), ...)).
	TPMFig9
)

// String implements fmt.Stringer.
func (k TPMKind) String() string {
	switch k {
	case TPMNone:
		return "none"
	case TPMCongestion:
		return "congestion"
	case TPMFig9:
		return "fig9"
	default:
		return fmt.Sprintf("TPMKind(%d)", int(k))
	}
}

// Param declares one tunable of a registered experiment.
type Param struct {
	Name    string
	Default string
	Help    string
}

// Params is a fully resolved parameter set: every declared name is
// present (defaults filled in by Experiment.Resolve).
type Params map[string]string

// Int parses the named parameter as an int.
func (p Params) Int(name string) (int, error) {
	v, err := strconv.Atoi(p[name])
	if err != nil {
		return 0, fmt.Errorf("harness: param %s=%q: %w", name, p[name], err)
	}
	return v, nil
}

// Uint64 parses the named parameter as a uint64.
func (p Params) Uint64(name string) (uint64, error) {
	v, err := strconv.ParseUint(p[name], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("harness: param %s=%q: %w", name, p[name], err)
	}
	return v, nil
}

// Float parses the named parameter as a float64.
func (p Params) Float(name string) (float64, error) {
	v, err := strconv.ParseFloat(p[name], 64)
	if err != nil {
		return 0, fmt.Errorf("harness: param %s=%q: %w", name, p[name], err)
	}
	return v, nil
}

// Ints parses the named parameter as a comma-separated int list.
func (p Params) Ints(name string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(p[name], ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("harness: param %s=%q: %w", name, p[name], err)
		}
		out = append(out, v)
	}
	return out, nil
}

// Env carries the shared context a front-end provides to experiment
// runs. The zero value works for experiments that need neither a model
// nor spec hooks.
type Env struct {
	// TPM lazily resolves a shared trained model; nil fails experiments
	// that declare a TPM dependency.
	TPM func(TPMKind) (*core.TPM, error)
	// Mods adjust every cluster run's spec (attach observability,
	// guard/cancellation hooks) without changing the experiment.
	Mods []func(*cluster.Spec)
}

func (e *Env) tpm(kind TPMKind) (*core.TPM, error) {
	if e == nil || e.TPM == nil {
		return nil, fmt.Errorf("harness: experiment needs the %v TPM but the environment provides none", kind)
	}
	return e.TPM(kind)
}

// Output is one experiment run's result: the rendered figure/table
// (exactly what the serial CLI prints) and the typed machine-readable
// data. Data must marshal to deterministic JSON — the sweep cache and
// the determinism matrix compare those bytes.
type Output struct {
	Text string
	Data any
}

// Experiment is one registered, enumerable experiment.
type Experiment struct {
	Name string
	// Title is a one-line synopsis for listings.
	Title string
	// TPM declares the shared model dependency (TPMNone when
	// self-contained).
	TPM TPMKind
	// Params declares the tunables; Resolve fills defaults.
	Params []Param
	// Run executes the experiment with fully resolved params.
	Run func(env *Env, p Params) (*Output, error)
}

// Param looks up a declared parameter by name.
func (e *Experiment) Param(name string) (Param, bool) {
	for _, p := range e.Params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// Resolve overlays overrides on the declared defaults. Unknown override
// names are an error, so a typo in a campaign grid fails expansion
// instead of silently sweeping a default.
func (e *Experiment) Resolve(overrides map[string]string) (Params, error) {
	p := make(Params, len(e.Params))
	for _, d := range e.Params {
		p[d.Name] = d.Default
	}
	names := make([]string, 0, len(overrides))
	for name := range overrides {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, ok := e.Param(name); !ok {
			return nil, fmt.Errorf("harness: experiment %s has no parameter %q", e.Name, name)
		}
		p[name] = overrides[name]
	}
	return p, nil
}

// experiments is the registry, in listing order.
var experiments []*Experiment

// register adds an experiment at package init.
func register(e *Experiment) {
	for _, have := range experiments {
		if have.Name == e.Name {
			panic("harness: duplicate experiment " + e.Name)
		}
	}
	experiments = append(experiments, e)
}

// Experiments returns the registered experiments in listing order. The
// returned slice is shared; do not mutate it.
func Experiments() []*Experiment { return experiments }

// LookupExperiment finds a registered experiment by name.
func LookupExperiment(name string) (*Experiment, bool) {
	for _, e := range experiments {
		if e.Name == name {
			return e, true
		}
	}
	return nil, false
}

// ExperimentNames returns the registered names in listing order.
func ExperimentNames() []string {
	names := make([]string, len(experiments))
	for i, e := range experiments {
		names[i] = e.Name
	}
	return names
}

// FprintExperiments renders the registry: every experiment with its
// model dependency and tunable parameters with defaults (the output of
// `srcsim -list` and `sweep -list`).
func FprintExperiments(w io.Writer) {
	fmt.Fprintln(w, "registered experiments:")
	for _, e := range experiments {
		fmt.Fprintf(w, "  %-11s %s", e.Name, e.Title)
		if e.TPM != TPMNone {
			fmt.Fprintf(w, " (needs %v TPM)", e.TPM)
		}
		fmt.Fprintln(w)
		for _, p := range e.Params {
			fmt.Fprintf(w, "      -%-10s %-8s %s\n", p.Name, "["+p.Default+"]", p.Help)
		}
	}
}

// ParseCC maps a congestion-control name to its algorithm through
// netsim's CC registry, so a newly registered scheme is addressable
// from every experiment's cc parameter without touching the harness.
func ParseCC(name string) (netsim.CCAlg, error) {
	return netsim.ParseCCAlg(name)
}

// ccParamHelp enumerates the registered schemes for cc-param help
// strings.
func ccParamHelp() string {
	return "congestion control: " + strings.Join(netsim.CCNames(), " | ")
}

// ParseSSD maps a Table II device letter to its config.
func ParseSSD(name string) (ssd.Config, error) {
	switch name {
	case "A":
		return ssd.ConfigA(), nil
	case "B":
		return ssd.ConfigB(), nil
	case "C":
		return ssd.ConfigC(), nil
	default:
		return ssd.Config{}, fmt.Errorf("harness: unknown SSD %q (want A, B, or C)", name)
	}
}

// CongestionDigests is the machine-readable form of a paired
// DCQCN-only / DCQCN-SRC run.
type CongestionDigests struct {
	Baseline       cluster.Digest `json:"baseline"`
	SRC            cluster.Digest `json:"src"`
	ImprovementPct float64        `json:"improvement_pct"`
}

func digests(res *CongestionResult) CongestionDigests {
	return CongestionDigests{
		Baseline:       res.Baseline.Digest(),
		SRC:            res.SRC.Digest(),
		ImprovementPct: res.Improvement() * 100,
	}
}

// Fig10Digest is one intensity level's digest pair.
type Fig10Digest struct {
	Level string `json:"level"`
	CongestionDigests
}

// render buffers a Fprint-style renderer into a string.
func render(f func(io.Writer)) string {
	var buf bytes.Buffer
	f(&buf)
	return buf.String()
}

func init() {
	register(&Experiment{
		Name:  "fig2",
		Title: "analytic motivation: aggregate throughput under a congestion cut",
		Params: []Param{
			{Name: "cut_factor", Default: "0.5", Help: "DCQCN sending-rate cut applied to reads"},
		},
		Run: func(env *Env, p Params) (*Output, error) {
			cut, err := p.Float("cut_factor")
			if err != nil {
				return nil, err
			}
			fp := DefaultFig2Params()
			fp.CutFactor = cut
			rows := Fig2Motivation(fp)
			return &Output{Text: render(func(w io.Writer) { FprintFig2(w, rows) }), Data: rows}, nil
		},
	})

	register(&Experiment{
		Name:  "fig5",
		Title: "weight-ratio sweep over the 4x4 micro-workload grid (single device)",
		Params: []Param{
			{Name: "ssd", Default: "A", Help: "Table II device: A, B, or C"},
			{Name: "weights", Default: "1,2,3,4,5,6,7,8", Help: "comma-separated SSQ weight ratios"},
			{Name: "count", Default: "2500", Help: "requests per direction per cell"},
			{Name: "seed", Default: "1", Help: "workload seed"},
		},
		Run: func(env *Env, p Params) (*Output, error) {
			cfg, err := ParseSSD(p["ssd"])
			if err != nil {
				return nil, err
			}
			ws, err := p.Ints("weights")
			if err != nil {
				return nil, err
			}
			count, err := p.Int("count")
			if err != nil {
				return nil, err
			}
			seed, err := p.Uint64("seed")
			if err != nil {
				return nil, err
			}
			cells, err := Fig5WeightSweep(cfg, ws, count, seed)
			if err != nil {
				return nil, err
			}
			return &Output{Text: render(func(w io.Writer) { FprintFig5(w, cells) }), Data: cells}, nil
		},
	})

	register(&Experiment{
		Name:  "fig7",
		Title: "VDI congestion timeline, DCQCN-only vs DCQCN-SRC (Figs. 7+8)",
		TPM:   TPMCongestion,
		Params: []Param{
			{Name: "requests", Default: "2000", Help: "write-request count (reads get 2x)"},
			{Name: "seed", Default: "7", Help: "workload seed"},
			{Name: "cc", Default: "dcqcn", Help: ccParamHelp()},
		},
		Run: func(env *Env, p Params) (*Output, error) {
			requests, err := p.Int("requests")
			if err != nil {
				return nil, err
			}
			seed, err := p.Uint64("seed")
			if err != nil {
				return nil, err
			}
			cc, err := ParseCC(p["cc"])
			if err != nil {
				return nil, err
			}
			tpm, err := env.tpm(TPMCongestion)
			if err != nil {
				return nil, err
			}
			res, err := Fig7ThroughputCC(tpm, requests, seed, cc, env.Mods...)
			if err != nil {
				return nil, err
			}
			text := render(func(w io.Writer) {
				FprintFig7(w, res)
				fmt.Fprintln(w)
				FprintFig8(w, res)
			})
			return &Output{Text: text, Data: digests(res)}, nil
		},
	})

	register(&Experiment{
		Name:  "fig9",
		Title: "dynamic throughput adjustment under synthetic congestion events",
		TPM:   TPMFig9,
		Params: []Param{
			{Name: "seed", Default: "5", Help: "workload seed"},
		},
		Run: func(env *Env, p Params) (*Output, error) {
			seed, err := p.Uint64("seed")
			if err != nil {
				return nil, err
			}
			tpm, err := env.tpm(TPMFig9)
			if err != nil {
				return nil, err
			}
			res, err := Fig9DynamicControl(tpm, nil, 0, seed)
			if err != nil {
				return nil, err
			}
			return &Output{Text: render(func(w io.Writer) { FprintFig9(w, res) }), Data: res}, nil
		},
	})

	register(&Experiment{
		Name:  "fig10",
		Title: "workload-intensity sensitivity (light/moderate/heavy)",
		TPM:   TPMCongestion,
		Params: []Param{
			{Name: "seconds", Default: "0.06", Help: "trace length in seconds"},
			{Name: "seed", Default: "13", Help: "workload seed"},
			{Name: "cc", Default: "dcqcn", Help: ccParamHelp()},
		},
		Run: func(env *Env, p Params) (*Output, error) {
			seconds, err := p.Float("seconds")
			if err != nil {
				return nil, err
			}
			seed, err := p.Uint64("seed")
			if err != nil {
				return nil, err
			}
			cc, err := ParseCC(p["cc"])
			if err != nil {
				return nil, err
			}
			tpm, err := env.tpm(TPMCongestion)
			if err != nil {
				return nil, err
			}
			rows, err := Fig10IntensityCC(tpm, seconds, seed, cc, env.Mods...)
			if err != nil {
				return nil, err
			}
			data := make([]Fig10Digest, len(rows))
			for i, r := range rows {
				data[i] = Fig10Digest{Level: r.Level.String(), CongestionDigests: digests(r.Result)}
			}
			return &Output{Text: render(func(w io.Writer) { FprintFig10(w, rows) }), Data: data}, nil
		},
	})

	register(&Experiment{
		Name:  "table4",
		Title: "in-cast ratio analysis (2:1 .. 4:4)",
		TPM:   TPMCongestion,
		Params: []Param{
			{Name: "seconds", Default: "0.08", Help: "trace length in seconds"},
			{Name: "seed", Default: "11", Help: "workload seed"},
		},
		Run: func(env *Env, p Params) (*Output, error) {
			seconds, err := p.Float("seconds")
			if err != nil {
				return nil, err
			}
			seed, err := p.Uint64("seed")
			if err != nil {
				return nil, err
			}
			tpm, err := env.tpm(TPMCongestion)
			if err != nil {
				return nil, err
			}
			rows, err := TableIV(tpm, nil, seconds, seed, env.Mods...)
			if err != nil {
				return nil, err
			}
			return &Output{Text: render(func(w io.Writer) { FprintTableIV(w, rows) }), Data: rows}, nil
		},
	})

	register(&Experiment{
		Name:  "chaos-soak",
		Title: "fault-injection soak on the congestion testbed (DCQCN-only)",
		Params: []Param{
			{Name: "requests", Default: "400", Help: "write-request count (reads get 2x)"},
			{Name: "seed", Default: "7", Help: "workload seed"},
		},
		Run: func(env *Env, p Params) (*Output, error) {
			requests, err := p.Int("requests")
			if err != nil {
				return nil, err
			}
			seed, err := p.Uint64("seed")
			if err != nil {
				return nil, err
			}
			tr, err := VDITrace(seed, requests)
			if err != nil {
				return nil, err
			}
			res, err := ChaosSoak(tr)
			if err != nil {
				return nil, err
			}
			return &Output{Text: render(func(w io.Writer) { FprintChaos(w, res) }), Data: res.Digest()}, nil
		},
	})

	// The three chaos-adaptation scenarios share a parameterization, a
	// renderer, and the DCQCN-SRC congestion testbed; only the disruption
	// differs.
	for _, sc := range []struct {
		name, title string
		run         func(*core.TPM, int, uint64, ...func(*cluster.Spec)) (*AdaptResult, error)
	}{
		{"adapt-aging", "adaptive SRC vs stepped SSD aging (ladder descent + recovery)", AdaptAging},
		{"adapt-phase", "adaptive SRC vs MMPP workload phase switch (in-run retraining)", AdaptPhase},
		{"adapt-failover", "adaptive SRC vs mid-run link failover (Static rung + AIMD)", AdaptFailover},
	} {
		sc := sc
		register(&Experiment{
			Name:  sc.name,
			Title: sc.title,
			TPM:   TPMCongestion,
			Params: []Param{
				{Name: "requests", Default: "600", Help: "write-request count (reads get 2x)"},
				{Name: "seed", Default: "7", Help: "workload seed"},
			},
			Run: func(env *Env, p Params) (*Output, error) {
				requests, err := p.Int("requests")
				if err != nil {
					return nil, err
				}
				seed, err := p.Uint64("seed")
				if err != nil {
					return nil, err
				}
				tpm, err := env.tpm(TPMCongestion)
				if err != nil {
					return nil, err
				}
				res, err := sc.run(tpm, requests, seed, env.Mods...)
				if err != nil {
					return nil, err
				}
				return &Output{Text: render(func(w io.Writer) { FprintAdapt(w, res) }), Data: res}, nil
			},
		})
	}

	register(&Experiment{
		Name:  "ctrl-degradation",
		Title: "in-band control-channel loss x delay sweep (throughput retained)",
		TPM:   TPMCongestion,
		Params: []Param{
			{Name: "requests", Default: "1200", Help: "write-request count (reads get 2x)"},
			{Name: "seed", Default: "7", Help: "workload seed"},
			{Name: "losses", Default: "0,0.5,0.99", Help: "comma-separated message-loss probabilities"},
			{Name: "delays", Default: "1,32", Help: "comma-separated base-delay multipliers"},
		},
		Run: func(env *Env, p Params) (*Output, error) {
			requests, err := p.Int("requests")
			if err != nil {
				return nil, err
			}
			seed, err := p.Uint64("seed")
			if err != nil {
				return nil, err
			}
			losses, err := parseFloats("losses", p["losses"])
			if err != nil {
				return nil, err
			}
			delays, err := parseFloats("delays", p["delays"])
			if err != nil {
				return nil, err
			}
			tpm, err := env.tpm(TPMCongestion)
			if err != nil {
				return nil, err
			}
			res, err := CtrlDegradation(tpm, requests, seed, losses, delays, env.Mods...)
			if err != nil {
				return nil, err
			}
			return &Output{Text: render(func(w io.Writer) { FprintCtrlDegradation(w, res) }), Data: res}, nil
		},
	})

	register(&Experiment{
		Name:  "ctrl-failover",
		Title: "controller crash + standby takeover (epoch arc, time-to-reconverge)",
		TPM:   TPMCongestion,
		Params: []Param{
			{Name: "requests", Default: "600", Help: "write-request count (reads get 2x)"},
			{Name: "seed", Default: "7", Help: "workload seed"},
		},
		Run: func(env *Env, p Params) (*Output, error) {
			requests, err := p.Int("requests")
			if err != nil {
				return nil, err
			}
			seed, err := p.Uint64("seed")
			if err != nil {
				return nil, err
			}
			tpm, err := env.tpm(TPMCongestion)
			if err != nil {
				return nil, err
			}
			res, err := CtrlFailover(tpm, requests, seed, env.Mods...)
			if err != nil {
				return nil, err
			}
			return &Output{Text: render(func(w io.Writer) { FprintCtrlFailover(w, res) }), Data: res}, nil
		},
	})

	register(&Experiment{
		Name:  "cc-matrix",
		Title: "CC scheme x SRC on/off matrix on the Fig. 7 workload (throughput retention)",
		TPM:   TPMCongestion,
		Params: []Param{
			{Name: "requests", Default: "1200", Help: "write-request count (reads get 2x)"},
			{Name: "seed", Default: "7", Help: "workload seed"},
			{Name: "schemes", Default: "dcqcn,timely,aimd,hpcc,pfc",
				Help: "comma-separated CC schemes to sweep (see -list-cc)"},
		},
		Run: func(env *Env, p Params) (*Output, error) {
			requests, err := p.Int("requests")
			if err != nil {
				return nil, err
			}
			seed, err := p.Uint64("seed")
			if err != nil {
				return nil, err
			}
			tpm, err := env.tpm(TPMCongestion)
			if err != nil {
				return nil, err
			}
			res, err := CCMatrix(tpm, requests, seed, strings.Split(p["schemes"], ","), env.Mods...)
			if err != nil {
				return nil, err
			}
			return &Output{Text: render(func(w io.Writer) { FprintCCMatrix(w, res) }), Data: res}, nil
		},
	})

	register(&Experiment{
		Name:  "replay",
		Title: "replay a trace file under both modes on the Sec. IV-D testbed",
		TPM:   TPMCongestion,
		Params: []Param{
			{Name: "file", Default: "", Help: "trace file path (required)"},
			{Name: "format", Default: "csv", Help: "trace format: csv (tracegen) | msr (MSR Cambridge / SNIA) | jsonl (open trace format)"},
			{Name: "cc", Default: "dcqcn", Help: ccParamHelp()},
		},
		Run: func(env *Env, p Params) (*Output, error) {
			if p["file"] == "" {
				return nil, fmt.Errorf("harness: replay needs a file parameter")
			}
			cc, err := ParseCC(p["cc"])
			if err != nil {
				return nil, err
			}
			tr, err := loadTrace(p["file"], p["format"])
			if err != nil {
				return nil, err
			}
			tpm, err := env.tpm(TPMCongestion)
			if err != nil {
				return nil, err
			}
			spec := CongestionSpec()
			spec.Net.CC = cc
			base, src, err := cluster.CompareModes(spec, tpm, tr, nil, env.Mods...)
			if err != nil {
				return nil, err
			}
			res := &CongestionResult{Baseline: base, SRC: src}
			return &Output{
				Text: render(func(w io.Writer) { FprintReplay(w, base, src) }),
				Data: digests(res),
			}, nil
		},
	})
}

// loadTrace reads a trace file in the named format.
func loadTrace(path, format string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch format {
	case "csv":
		return trace.ReadCSV(f)
	case "msr":
		return trace.ReadMSR(f)
	case "jsonl":
		return trace.ReadJSONL(f)
	default:
		return nil, fmt.Errorf("harness: unknown trace format %q (want csv, msr, or jsonl)", format)
	}
}

// FprintReplay renders the paired replay summary, one line per mode
// (the srcsim -replay text output).
func FprintReplay(w io.Writer, rs ...*cluster.Result) {
	for _, r := range rs {
		fmt.Fprintf(w, "%-11s read %5.2f Gbps | write %5.2f Gbps | aggregated %5.2f Gbps | p50/p99 read lat %.2f/%.2f ms | pauses %d\n",
			r.Mode, r.MeanReadGbps, r.MeanWriteGbps, r.AggregatedGbps,
			r.ReadLatencyP50Ms, r.ReadLatencyP99Ms, r.TotalCNPs)
		if r.Truncated {
			fmt.Fprintf(w, "%-11s (truncated: %s)\n", "", r.TruncateReason)
		}
	}
}

// FprintChaos renders the chaos soak's recovery ledger and steady-state
// aggregates.
func FprintChaos(w io.Writer, r *cluster.Result) {
	fmt.Fprintln(w, "Chaos soak: fault schedule on the congestion testbed")
	fmt.Fprintf(w, "%-11s read %5.2f Gbps | write %5.2f Gbps | aggregated %5.2f Gbps\n",
		r.Mode, r.MeanReadGbps, r.MeanWriteGbps, r.AggregatedGbps)
	fmt.Fprintf(w, "accounting: completed %d + failed %d of %d submitted\n",
		r.Completed, r.Failed, r.Submitted)
	fmt.Fprintf(w, "faults: injected %d | drops %d | corrupt %d | link-downs %d | forced pauses %d\n",
		r.FaultsInjected, r.DroppedPackets, r.CorruptedPackets, r.LinkDowns, r.ForcedPauses)
	fmt.Fprintf(w, "recovery: retries %d | timeouts %d | stale %d | dups dropped %d | watchdog trips %d\n",
		r.Retries, r.Timeouts, r.StaleResponses, r.DupsDropped, r.WatchdogTrips)
}
