package harness

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"

	"srcsim/internal/core"
	"srcsim/internal/devrun"
	"srcsim/internal/sim"
	"srcsim/internal/ssd"
	"srcsim/internal/workload"
)

var (
	tpmOnce sync.Once
	tpmCong *core.TPM
	tpm9    *core.TPM
	tpmErr  error
)

// testTPMs trains the two shared models once for the whole package.
// Training runs behind the content-addressed artifact cache (see
// devrun.TrainTPMCached), so repeated `go test ./...` invocations load
// the stored forests instead of re-training them; set
// SRCSIM_TPM_CACHE=off for a cold run (CI does, on its main test step).
func testTPMs(t *testing.T) (*core.TPM, *core.TPM) {
	t.Helper()
	tpmOnce.Do(func() {
		c := devrun.TPMCacheFromEnv()
		tpmCong, _, tpmErr = TrainCongestionTPMCached(c, 1000, 42)
		if tpmErr != nil {
			return
		}
		tpm9, _, tpmErr = devrun.TrainTPMCached(c, Fig9Config(), 1000, 43)
	})
	if tpmErr != nil {
		t.Fatal(tpmErr)
	}
	return tpmCong, tpm9
}

func TestFig2MatchesPaper(t *testing.T) {
	rows := Fig2Motivation(DefaultFig2Params())
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	want := map[string][3]float64{
		"no congestion": {6, 3, 9},
		"DCQCN":         {3, 3, 6},
		"SRC":           {3, 6, 9},
	}
	for _, r := range rows {
		w, ok := want[r.Scenario]
		if !ok {
			t.Fatalf("unexpected scenario %q", r.Scenario)
		}
		if r.Read != w[0] || r.Write != w[1] || r.Aggregate != w[2] {
			t.Fatalf("%s: got %v/%v/%v want %v", r.Scenario, r.Read, r.Write, r.Aggregate, w)
		}
	}
	var buf bytes.Buffer
	FprintFig2(&buf, rows)
	if !strings.Contains(buf.String(), "DCQCN") {
		t.Fatal("Fig2 print missing rows")
	}
}

func TestFig2CustomParams(t *testing.T) {
	// A milder 25% cut.
	rows := Fig2Motivation(Fig2Params{SSDTotalIOPS: 9, BaselineRead: 6, NetCap: 6, CutFactor: 0.75})
	if rows[1].Aggregate >= rows[0].Aggregate {
		t.Fatal("congestion should reduce DCQCN aggregate")
	}
	if rows[2].Aggregate != rows[0].Aggregate {
		t.Fatal("SRC should preserve the aggregate")
	}
}

func TestFig5SweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig. 5 sweep; skipped with -short")
	}
	cells, err := Fig5WeightSweep(ssd.ConfigA(), []int{1, 4}, 1200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 32 { // 16 workloads x 2 ratios
		t.Fatalf("%d cells", len(cells))
	}
	// Heaviest cell: w effective. Lightest cell: w ineffective.
	find := func(ia sim.Time, size, w int) Fig5Cell {
		for _, c := range cells {
			if c.InterArrival == ia && c.MeanSize == size && c.W == w {
				return c
			}
		}
		t.Fatalf("cell %v/%d/%d missing", ia, size, w)
		return Fig5Cell{}
	}
	h1 := find(10*sim.Microsecond, 40<<10, 1)
	h4 := find(10*sim.Microsecond, 40<<10, 4)
	if h4.ReadGbps >= h1.ReadGbps*0.8 || h4.WriteGbps <= h1.WriteGbps {
		t.Fatalf("heavy cell not shaped by w: %v -> %v", h1, h4)
	}
	l1 := find(25*sim.Microsecond, 10<<10, 1)
	l4 := find(25*sim.Microsecond, 10<<10, 4)
	if math.Abs(l4.ReadGbps-l1.ReadGbps)/l1.ReadGbps > 0.1 {
		t.Fatalf("light cell should be flat: %v vs %v", l1, l4)
	}
	var buf bytes.Buffer
	FprintFig5(&buf, cells)
	if !strings.Contains(buf.String(), "weight ratios") {
		t.Fatal("Fig5 print")
	}
}

func TestTableIRandomForestWins(t *testing.T) {
	if testing.Short() {
		t.Skip("full TableI training; skipped with -short")
	}
	rows, err := TableI(ssd.ConfigA(), 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Model] = r.Accuracy
	}
	rf := byName["Random Forest Regression"]
	if rf < 0.85 {
		t.Fatalf("RF accuracy %v, want >= 0.85 (paper: 0.94)", rf)
	}
	// The paper's qualitative ordering: tree ensembles beat linear.
	if rf <= byName["Linear Regression"] {
		t.Fatalf("RF (%v) should beat linear (%v)", rf, byName["Linear Regression"])
	}
	var buf bytes.Buffer
	FprintTableI(&buf, rows)
	if !strings.Contains(buf.String(), "Random Forest") {
		t.Fatal("TableI print")
	}
}

func TestTableIIIAccuracies(t *testing.T) {
	if testing.Short() {
		t.Skip("full TableIII cross-validation; skipped with -short")
	}
	rows, err := TableIII(ssd.ConfigA(), 800, 24, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if math.IsNaN(r.Accuracy) {
			continue // class drew no traces from the pool at this seed
		}
		if r.Accuracy < 0.7 {
			t.Errorf("%v: accuracy %v below 0.7 (paper: 0.89-0.98)", r.Class, r.Accuracy)
		}
	}
	var buf bytes.Buffer
	FprintTableIII(&buf, rows)
	if !strings.Contains(buf.String(), "low size SCV") {
		t.Fatal("TableIII print")
	}
}

func TestFig7SRCBeatsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale Fig. 7 A/B run; skipped with -short")
	}
	tpm, _ := testTPMs(t)
	res, err := Fig7Throughput(tpm, 1200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.SRC.MeanWriteGbps <= res.Baseline.MeanWriteGbps {
		t.Fatalf("SRC write %.2f should beat baseline %.2f",
			res.SRC.MeanWriteGbps, res.Baseline.MeanWriteGbps)
	}
	if res.Improvement() <= 0 {
		t.Fatalf("SRC aggregate improvement %.2f should be positive", res.Improvement())
	}
	// Fig. 8 companion: congestion produced pause signals in both modes.
	if res.Baseline.TotalCNPs == 0 || res.SRC.TotalCNPs == 0 {
		t.Fatal("no pause signals recorded")
	}
	var buf bytes.Buffer
	FprintFig7(&buf, res)
	FprintFig8(&buf, res)
	out := buf.String()
	if !strings.Contains(out, "aggregated") || !strings.Contains(out, "pause number") {
		t.Fatal("Fig7/Fig8 print")
	}
}

func TestFig9ConvergesWithinPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig. 9 horizon; skipped with -short")
	}
	_, tpm := testTPMs(t)
	res, err := Fig9DynamicControl(tpm, nil, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 4 {
		t.Fatalf("%d events", len(res.Events))
	}
	converged := 0
	for _, e := range res.Events {
		if e.ConvergeDelay >= 0 {
			converged++
			if e.ConvergeDelay > 30*sim.Millisecond {
				t.Errorf("event at %v converged too slowly: %v", e.At, e.ConvergeDelay)
			}
		}
		if e.AppliedW < 1 {
			t.Errorf("event at %v applied no weight", e.At)
		}
	}
	if converged < 3 {
		t.Fatalf("only %d/4 events converged", converged)
	}
	// Paper: average control delay ~7.3 ms; accept the same order.
	if avg := res.AverageConvergence(); avg < 0 || avg > 20*sim.Millisecond {
		t.Fatalf("average convergence %v out of range", avg)
	}
	// Tightening demand must raise w above the relaxed setting.
	if res.Events[1].AppliedW <= res.Events[3].AppliedW {
		t.Fatalf("w at 3G demand (%d) should exceed w at 10G demand (%d)",
			res.Events[1].AppliedW, res.Events[3].AppliedW)
	}
	var buf bytes.Buffer
	FprintFig9(&buf, res)
	if !strings.Contains(buf.String(), "convergence") {
		t.Fatal("Fig9 print")
	}
}

func TestFig10LightIsNeutralHeavyGains(t *testing.T) {
	if testing.Short() {
		t.Skip("three full intensity A/B runs; skipped with -short")
	}
	tpm, _ := testTPMs(t)
	rows, err := Fig10Intensity(tpm, 0.06, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	light := rows[0].Result
	if math.Abs(light.Improvement()) > 0.05 {
		t.Fatalf("light workload should show no visible difference, got %+.2f%%",
			light.Improvement()*100)
	}
	heavy := rows[2].Result
	if heavy.SRC.MeanWriteGbps <= heavy.Baseline.MeanWriteGbps {
		t.Fatalf("heavy: SRC write %.2f should beat baseline %.2f",
			heavy.SRC.MeanWriteGbps, heavy.Baseline.MeanWriteGbps)
	}
	// Reads under SRC should stay aligned with the baseline (within 15%).
	if math.Abs(heavy.SRC.MeanReadGbps-heavy.Baseline.MeanReadGbps) > 0.15*heavy.Baseline.MeanReadGbps {
		t.Fatalf("heavy: SRC read %.2f diverged from baseline %.2f",
			heavy.SRC.MeanReadGbps, heavy.Baseline.MeanReadGbps)
	}
	var buf bytes.Buffer
	FprintFig10(&buf, rows)
	if !strings.Contains(buf.String(), "light") {
		t.Fatal("Fig10 print")
	}
}

func TestTableIVShape(t *testing.T) {
	if testing.Short() {
		t.Skip("four full in-cast A/B runs; skipped with -short")
	}
	tpm, _ := testTPMs(t)
	rows, err := TableIV(tpm, nil, 0.08, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// Paper's shape: improvement fades as the in-cast ratio grows and
	// vanishes with matching initiators.
	if rows[0].Improvement <= 0.03 {
		t.Fatalf("2:1 improvement %.2f should be clearly positive", rows[0].Improvement)
	}
	if rows[0].Improvement < rows[2].Improvement {
		t.Fatalf("2:1 (%.2f) should beat 4:1 (%.2f)", rows[0].Improvement, rows[2].Improvement)
	}
	if math.Abs(rows[3].Improvement) > 0.05 {
		t.Fatalf("4:4 improvement %.2f should be ~0", rows[3].Improvement)
	}
	var buf bytes.Buffer
	FprintTableIV(&buf, rows)
	if !strings.Contains(buf.String(), "In-cast") {
		t.Fatal("TableIV print")
	}
}

func TestFeatureImportanceFlowSpeedDominates(t *testing.T) {
	if testing.Short() {
		t.Skip("needs the shared TPM training; skipped with -short")
	}
	tpm, _ := testTPMs(t)
	names, weights, ok := FeatureImportanceReport(tpm)
	if !ok {
		t.Fatal("importances unavailable")
	}
	var flow, arrivalRelated, scv, total float64
	for i, n := range names {
		total += weights[i]
		switch {
		case strings.Contains(n, "flow_speed"):
			flow += weights[i]
			arrivalRelated += weights[i]
		case strings.Contains(n, "mean_size"), strings.Contains(n, "mean_interarrival"):
			arrivalRelated += weights[i]
		case strings.Contains(n, "scv"):
			scv += weights[i]
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("importances sum to %v", total)
	}
	// The paper attributes 0.39 to arrival flow speed. Our training grid
	// varies size and inter-arrival as independent factors, so the
	// forest splits the same information across flow speed and its
	// constituents; require the arrival-rate family to dominate and the
	// flow-speed features to matter more than the burstiness (SCV) ones.
	// EXPERIMENTS.md records the discrepancy.
	if arrivalRelated < 0.35 {
		t.Fatalf("arrival-rate-related importance %.2f, want >= 0.35", arrivalRelated)
	}
	if flow < 0.05 {
		t.Fatalf("flow-speed importance %.2f negligible", flow)
	}
}

func TestVDITraceStatistics(t *testing.T) {
	tr, err := VDITrace(1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 6000 {
		t.Fatalf("len %d (want 2:1 reads:writes)", tr.Len())
	}
}

func TestFig10TracePanicsOnBadLevel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad level should panic")
		}
	}()
	Fig10Trace(workload.IntensityLevel(99), 0.01, 1) //nolint:errcheck // panics before returning
}
