package harness

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"srcsim/internal/cluster"
	"srcsim/internal/guard"
)

// TestHangSoakTripsWatchdog is the watchdog acceptance demo: both
// targets freeze with no recovery armed, the cluster wedges, and the
// liveness watchdog must convert the hang into a typed StallError whose
// dump names the stuck commands.
func TestHangSoakTripsWatchdog(t *testing.T) {
	tr, err := VDITrace(7, 300)
	if err != nil {
		t.Fatal(err)
	}
	res, err := HangSoak(tr, false)
	if err == nil {
		t.Fatal("hung run returned no error")
	}
	if res != nil {
		t.Fatal("hung run still returned a result")
	}
	var se *guard.StallError
	if !errors.As(err, &se) {
		t.Fatalf("error type %T, want *guard.StallError", err)
	}
	if se.Axis != "sim-time" {
		t.Fatalf("stall axis %q, want sim-time", se.Axis)
	}
	d := se.Dump
	if d == nil {
		t.Fatal("stall error carries no dump")
	}
	if d.InFlightTotal == 0 || len(d.InFlight) == 0 {
		t.Fatalf("dump census empty: total=%d listed=%d", d.InFlightTotal, len(d.InFlight))
	}
	if d.OldestAge <= HangStallHorizon {
		t.Fatalf("oldest age %v should exceed the horizon %v", d.OldestAge, HangStallHorizon)
	}
	// The census names concrete stuck commands, oldest first.
	prev := d.InFlight[0]
	if prev.Age != d.OldestAge {
		t.Fatalf("first census entry age %v != oldest age %v", prev.Age, d.OldestAge)
	}
	for _, ci := range d.InFlight[1:] {
		if ci.SubmittedAt < prev.SubmittedAt {
			t.Fatalf("census not oldest-first: %v before %v", prev.SubmittedAt, ci.SubmittedAt)
		}
		prev = ci
	}
	// The per-target census must reflect the wedge: commands queued at
	// targets with their devices fetching nothing.
	var queued int
	for _, ts := range d.Targets {
		queued += ts.Inflight
	}
	if queued == 0 {
		t.Fatalf("no commands queued at stalled targets:\n%s", d)
	}
}

// TestHangSoakDeterministic requires the watchdog trip itself — error
// text and full diagnostic dump — to be byte-identical across two runs.
func TestHangSoakDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("hang soak; skipped with -short")
	}
	run := func() []byte {
		t.Helper()
		tr, err := VDITrace(7, 300)
		if err != nil {
			t.Fatal(err)
		}
		_, err = HangSoak(tr, false)
		var se *guard.StallError
		if !errors.As(err, &se) {
			t.Fatalf("expected stall error, got %v", err)
		}
		var buf bytes.Buffer
		buf.WriteString(se.Error())
		buf.WriteByte('\n')
		if _, err := se.Dump.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("watchdog trip not deterministic:\nfirst:\n%s\nsecond:\n%s", a, b)
	}
}

// TestHangSoakRecoversWithRetries runs the identical stall schedule
// with the retry policy armed: every wedged command fails over inside
// the stall horizon, so the watchdog never trips and the run completes
// with full accounting.
func TestHangSoakRecoversWithRetries(t *testing.T) {
	tr, err := VDITrace(7, 300)
	if err != nil {
		t.Fatal(err)
	}
	res, err := HangSoak(tr, true)
	if err != nil {
		t.Fatalf("retry-armed hang soak failed: %v", err)
	}
	if res.Truncated {
		t.Fatal("retry-armed run came back truncated")
	}
	if res.Completed+res.Failed != res.Submitted {
		t.Fatalf("accounting broken: completed %d + failed %d != submitted %d",
			res.Completed, res.Failed, res.Submitted)
	}
	if res.Failed == 0 {
		t.Fatal("permanently stalled targets should fail commands over to the retry path")
	}
	if res.Retries == 0 || res.Timeouts == 0 {
		t.Fatalf("recovery never fired: retries=%d timeouts=%d", res.Retries, res.Timeouts)
	}
}

// TestFig7TruncatedEmitsValidJSON interrupts a fig7 run (the
// SIGINT-equivalent pre-fired stopper) and requires both partial
// summaries to parse as JSON with truncated: true and the artifact
// fields intact.
func TestFig7TruncatedEmitsValidJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("truncated full-scale Fig. 7 run; skipped with -short")
	}
	tpm, _ := testTPMs(t)
	st := guard.NewStopper()
	st.Stop("signal: interrupt")
	res, err := Fig7Throughput(tpm, 200, 7, func(s *cluster.Spec) {
		s.Guard.Stop = st
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*cluster.Result{res.Baseline, res.SRC} {
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		var sum struct {
			Truncated      bool   `json:"truncated"`
			TruncateReason string `json:"truncate_reason"`
			Mode           string `json:"mode"`
			Submitted      int    `json:"submitted"`
		}
		if err := json.Unmarshal(buf.Bytes(), &sum); err != nil {
			t.Fatalf("truncated summary is not valid JSON: %v\n%s", err, buf.Bytes())
		}
		if !sum.Truncated {
			t.Fatalf("summary not marked truncated: %s", buf.Bytes())
		}
		if sum.TruncateReason != "signal: interrupt" {
			t.Fatalf("truncate_reason %q", sum.TruncateReason)
		}
		if sum.Mode == "" {
			t.Fatalf("summary lost its fields under truncation: %s", buf.Bytes())
		}
	}
}
