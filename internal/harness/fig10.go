package harness

import (
	"fmt"
	"io"

	"srcsim/internal/cluster"
	"srcsim/internal/core"
	"srcsim/internal/netsim"
	"srcsim/internal/sim"
	"srcsim/internal/trace"
	"srcsim/internal/workload"
)

// Fig10Row is one intensity level's paired result.
type Fig10Row struct {
	Level  workload.IntensityLevel
	Result *CongestionResult
}

// fig10RateScale maps the paper's arrival rates (defined against its
// 40 Gbps testbed) onto the harness's 10 Gbps calibration; see the
// package comment.
const fig10RateScale = 0.35

// Fig10Trace builds one intensity workload: the paper's request sizes
// (22/32/44 KB) at rates scaled to the harness link calibration, equal
// read and write streams. seconds controls the trace length.
func Fig10Trace(level workload.IntensityLevel, seconds float64, seed uint64) (*trace.Trace, error) {
	var size int
	var ratePerMS float64
	switch level {
	case workload.Light:
		size, ratePerMS = 22<<10, 60
	case workload.Moderate:
		size, ratePerMS = 32<<10, 80
	case workload.Heavy:
		size, ratePerMS = 44<<10, 100
	default:
		panic("harness: unknown intensity level")
	}
	ratePerMS *= fig10RateScale
	interArrival := sim.Time(float64(sim.Millisecond) / ratePerMS)
	count := int(seconds * 1000 * ratePerMS)
	return workload.Micro(workload.MicroConfig{
		Seed:      seed,
		ReadCount: count, WriteCount: count,
		ReadInterArrival: interArrival, WriteInterArrival: interArrival,
		ReadMeanSize: size, WriteMeanSize: size,
	})
}

// Fig10Intensity reproduces Fig. 10: DCQCN-only versus DCQCN-SRC across
// light, moderate, and heavy micro workloads on the Sec. IV-D testbed.
// The expected shape: no visible difference under light load (queues are
// empty so WRR cannot act) and a clear SRC write/aggregate win under
// moderate and heavy load.
func Fig10Intensity(tpm *core.TPM, seconds float64, seed uint64, mods ...func(*cluster.Spec)) ([]Fig10Row, error) {
	return Fig10IntensityCC(tpm, seconds, seed, netsim.CCDCQCN, mods...)
}

// Fig10IntensityCC is Fig10Intensity under a chosen congestion-control
// algorithm — like Fig7ThroughputCC, SRC consumes only rate events, so
// the intensity sweep runs unchanged over any registered scheme.
func Fig10IntensityCC(tpm *core.TPM, seconds float64, seed uint64, cc netsim.CCAlg, mods ...func(*cluster.Spec)) ([]Fig10Row, error) {
	var rows []Fig10Row
	for _, level := range []workload.IntensityLevel{workload.Light, workload.Moderate, workload.Heavy} {
		tr, err := Fig10Trace(level, seconds, seed+uint64(level))
		if err != nil {
			return nil, fmt.Errorf("harness: Fig10 %v: %w", level, err)
		}
		spec := CongestionSpec()
		spec.Net.CC = cc
		base, src, err := cluster.CompareModes(spec, tpm, tr, nil, mods...)
		if err != nil {
			return nil, fmt.Errorf("harness: Fig10 %v: %w", level, err)
		}
		rows = append(rows, Fig10Row{Level: level, Result: &CongestionResult{Baseline: base, SRC: src}})
	}
	return rows, nil
}

// FprintFig10 renders the intensity comparison.
func FprintFig10(w io.Writer, rows []Fig10Row) {
	fmt.Fprintln(w, "Fig. 10: workload-intensity sensitivity")
	fmt.Fprintf(w, "%-10s %22s %22s %8s\n", "intensity", "DCQCN-only (R/W/agg)", "DCQCN-SRC (R/W/agg)", "gain")
	for _, r := range rows {
		b, s := r.Result.Baseline, r.Result.SRC
		fmt.Fprintf(w, "%-10s %6.2f/%5.2f/%6.2f  %6.2f/%5.2f/%6.2f  %+6.0f%%\n",
			r.Level, b.MeanReadGbps, b.MeanWriteGbps, b.AggregatedGbps,
			s.MeanReadGbps, s.MeanWriteGbps, s.AggregatedGbps,
			r.Result.Improvement()*100)
	}
}
