package harness

import (
	"bytes"
	"testing"
)

// TestChaosSoakAccounting is the chaos acceptance run: under link flaps,
// 1% drop, and a PFC storm, the run must complete without panic, every
// submitted op must be accounted for, and the recovery machinery must
// demonstrably have fired.
func TestChaosSoakAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak; skipped with -short")
	}
	tr, err := VDITrace(7, 500)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ChaosSoak(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed+res.Failed != res.Submitted {
		t.Fatalf("accounting broken: completed %d + failed %d != submitted %d",
			res.Completed, res.Failed, res.Submitted)
	}
	if res.FaultsInjected == 0 {
		t.Fatal("no faults injected")
	}
	if res.DroppedPackets == 0 {
		t.Fatal("1%% drop schedule dropped nothing")
	}
	if res.Timeouts == 0 || res.Retries == 0 {
		t.Fatalf("recovery never fired: timeouts=%d retries=%d", res.Timeouts, res.Retries)
	}
	if res.LinkDowns != 3 {
		t.Fatalf("link flaps: got %d downs, want 3", res.LinkDowns)
	}
	if res.ForcedPauses == 0 {
		t.Fatal("PFC storm never forced a pause")
	}
	if res.WatchdogTrips == 0 {
		t.Fatal("PFC watchdog never tripped during the storm")
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed under chaos")
	}
}

// TestChaosSoakDeterministic re-runs the identical chaos scenario and
// requires byte-identical summaries: fault injection must be as
// reproducible as the fault-free simulator.
func TestChaosSoakDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak, twice; skipped with -short")
	}
	run := func() []byte {
		t.Helper()
		tr, err := VDITrace(7, 500)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ChaosSoak(tr)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("chaos run not deterministic:\nfirst:  %s\nsecond: %s", a, b)
	}
}
