package harness

// The scenario experiment: runs a composed application scenario
// (internal/scenario) on the Sec. IV-D congestion testbed under both
// modes — DCQCN-only and DCQCN-SRC — and reports per-mode aggregate
// throughput retention, the cc-matrix normalisation applied to the
// application-centric workloads of the scenario library.

import (
	"fmt"
	"io"

	"srcsim/internal/cluster"
	"srcsim/internal/core"
	"srcsim/internal/netsim"
	"srcsim/internal/scenario"
)

// ScenarioResult is one scenario's paired run with retention
// normalisation.
type ScenarioResult struct {
	Name string `json:"name"`
	// Phases are the compiled phase windows (absolute scenario time).
	Phases []scenario.PhaseWindow `json:"phases"`
	// FaultEvents counts the compiled fault schedule's events.
	FaultEvents int `json:"fault_events"`
	// Requests is the merged trace's request count.
	Requests int            `json:"requests"`
	Baseline cluster.Digest `json:"baseline"`
	SRC      cluster.Digest `json:"src"`
	// RetentionOff/On normalise each mode's aggregate throughput to the
	// pair's best aggregate, mirroring CCMatrixRow.
	RetentionOff   float64 `json:"retention_off"`
	RetentionOn    float64 `json:"retention_on"`
	ImprovementPct float64 `json:"improvement_pct"`
}

// RunScenario compiles the spec at the given seed and runs the merged
// trace through cluster.CompareModes on the congestion testbed,
// installing the scenario's compiled fault schedule into both modes.
func RunScenario(tpm *core.TPM, spec *scenario.Spec, seed uint64, cc netsim.CCAlg, mods ...func(*cluster.Spec)) (*ScenarioResult, error) {
	comp, err := spec.Compile(seed)
	if err != nil {
		return nil, err
	}
	cspec := CongestionSpec()
	cspec.Net.CC = cc
	cspec.Faults = comp.Faults
	base, src, err := cluster.CompareModes(cspec, tpm, comp.Trace, nil, mods...)
	if err != nil {
		return nil, fmt.Errorf("harness: scenario %s: %w", spec.Name, err)
	}
	res := &ScenarioResult{
		Name:     spec.Name,
		Phases:   comp.Phases,
		Requests: comp.Trace.Len(),
		Baseline: base.Digest(),
		SRC:      src.Digest(),
	}
	if comp.Faults != nil {
		res.FaultEvents = len(comp.Faults.Events)
	}
	maxAgg := res.Baseline.Summary.AggregatedGbps
	if res.SRC.Summary.AggregatedGbps > maxAgg {
		maxAgg = res.SRC.Summary.AggregatedGbps
	}
	if maxAgg > 0 {
		res.RetentionOff = res.Baseline.Summary.AggregatedGbps / maxAgg
		res.RetentionOn = res.SRC.Summary.AggregatedGbps / maxAgg
		res.ImprovementPct = (res.SRC.Summary.AggregatedGbps/res.Baseline.Summary.AggregatedGbps - 1) * 100
	}
	return res, nil
}

// FprintScenario renders a scenario run: the compiled phase timeline,
// then the paired throughput and retention lines.
func FprintScenario(w io.Writer, r *ScenarioResult) {
	fmt.Fprintf(w, "Scenario %s: %d requests", r.Name, r.Requests)
	if r.FaultEvents > 0 {
		fmt.Fprintf(w, ", %d fault events", r.FaultEvents)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-20s %10s %10s %9s %s\n", "phase", "start_ms", "end_ms", "requests", "mode")
	for _, ph := range r.Phases {
		mode := "sequential"
		if ph.Overlay {
			mode = "overlay"
		}
		fmt.Fprintf(w, "%-20s %10.2f %10.2f %9d %s\n",
			ph.Name, ph.Start.Millis(), ph.End.Millis(), ph.Requests, mode)
	}
	fmt.Fprintf(w, "%-11s read %5.2f Gbps | write %5.2f Gbps | aggregated %5.2f Gbps | retention %5.1f%%\n",
		"DCQCN-only", r.Baseline.Summary.ReadGbps, r.Baseline.Summary.WriteGbps,
		r.Baseline.Summary.AggregatedGbps, r.RetentionOff*100)
	fmt.Fprintf(w, "%-11s read %5.2f Gbps | write %5.2f Gbps | aggregated %5.2f Gbps | retention %5.1f%%\n",
		"DCQCN-SRC", r.SRC.Summary.ReadGbps, r.SRC.Summary.WriteGbps,
		r.SRC.Summary.AggregatedGbps, r.RetentionOn*100)
	fmt.Fprintf(w, "aggregate gain %+.0f%%\n", r.ImprovementPct)
}

func init() {
	register(&Experiment{
		Name:  "scenario",
		Title: "composed application scenario, DCQCN-only vs DCQCN-SRC (retention)",
		TPM:   TPMCongestion,
		Params: []Param{
			{Name: "name", Default: "vdi-boot-storm",
				Help: "library scenario: " + paramJoin(scenario.Names())},
			{Name: "file", Default: "", Help: "scenario spec JSON path (overrides name)"},
			{Name: "requests", Default: "1600", Help: "base per-direction request count (library scenarios); SRC-on vs SRC-off differentiation needs the sustained-contention regime around 1600"},
			{Name: "seed", Default: "7", Help: "scenario seed (0 keeps the spec's own)"},
			{Name: "cc", Default: "dcqcn", Help: ccParamHelp()},
		},
		Run: func(env *Env, p Params) (*Output, error) {
			requests, err := p.Int("requests")
			if err != nil {
				return nil, err
			}
			seed, err := p.Uint64("seed")
			if err != nil {
				return nil, err
			}
			cc, err := ParseCC(p["cc"])
			if err != nil {
				return nil, err
			}
			var spec *scenario.Spec
			if p["file"] != "" {
				spec, err = scenario.LoadSpec(p["file"])
				if err != nil {
					return nil, err
				}
			} else {
				sc, ok := scenario.Lookup(p["name"])
				if !ok {
					return nil, fmt.Errorf("harness: unknown scenario %q (want one of %s)",
						p["name"], paramJoin(scenario.Names()))
				}
				spec = sc.Build(seed, requests)
			}
			tpm, err := env.tpm(TPMCongestion)
			if err != nil {
				return nil, err
			}
			res, err := RunScenario(tpm, spec, seed, cc, env.Mods...)
			if err != nil {
				return nil, err
			}
			return &Output{Text: render(func(w io.Writer) { FprintScenario(w, res) }), Data: res}, nil
		},
	})
}

// paramJoin renders a name list for param help strings.
func paramJoin(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " | "
		}
		out += n
	}
	return out
}
