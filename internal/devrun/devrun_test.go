package devrun

import (
	"math"
	"testing"

	"srcsim/internal/sim"
	"srcsim/internal/ssd"
	"srcsim/internal/trace"
	"srcsim/internal/workload"
)

// heavySpec is an overloaded symmetric workload where WRR is effective.
func heavySpec(seed uint64) WorkloadSpec {
	return WorkloadSpec{
		InterArrival: 10 * sim.Microsecond,
		MeanSize:     40 << 10,
		Count:        2500,
		Seed:         seed,
	}
}

// mustTrace materialises a spec, failing the test on generator error.
func mustTrace(tb testing.TB, ws WorkloadSpec) *trace.Trace {
	tb.Helper()
	tr, err := ws.Trace()
	if err != nil {
		tb.Fatal(err)
	}
	return tr
}

func TestRunBasics(t *testing.T) {
	res, err := Run(ssd.ConfigA(), mustTrace(t, heavySpec(1)), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 5000 {
		t.Fatalf("completed %d", res.Completed)
	}
	if res.ReadGbps <= 0 || res.WriteGbps <= 0 {
		t.Fatalf("throughputs %v/%v", res.ReadGbps, res.WriteGbps)
	}
	// Preconditioned CMT: mapping misses should be rare.
	if res.CMTHitRate < 0.95 {
		t.Fatalf("CMT hit rate %v after preconditioning", res.CMTHitRate)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(ssd.ConfigA(), mustTrace(t, heavySpec(1)), 0); err == nil {
		t.Fatal("w=0 should error")
	}
	if _, err := Run(ssd.ConfigA(), mustTrace(t, heavySpec(1)), -1); err == nil {
		t.Fatal("negative w should error")
	}
	if _, err := Run(ssd.ConfigA(), mustTrace(t, WorkloadSpec{Count: 0, InterArrival: 1, MeanSize: 1}), 1); err == nil {
		t.Fatal("empty trace should error")
	}
}

// TestFig5Shape verifies the three Fig. 5 observations on SSD-A:
// (1) equal read/write throughput at w = 1;
// (2) read falls and write rises as w grows under heavy load;
// (3) the effect fades under light load (WRR degrades to RR).
func TestFig5Shape(t *testing.T) {
	heavy := mustTrace(t, heavySpec(2))
	r1, err := Run(ssd.ConfigA(), heavy, 1)
	if err != nil {
		t.Fatal(err)
	}
	ratio := r1.WriteGbps / r1.ReadGbps
	if ratio < 0.85 || ratio > 1.2 {
		t.Fatalf("w=1 R/W not equal: R=%.2f W=%.2f", r1.ReadGbps, r1.WriteGbps)
	}
	r4, err := Run(ssd.ConfigA(), heavy, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r4.ReadGbps >= r1.ReadGbps*0.8 {
		t.Fatalf("heavy: read did not fall with w: %.2f -> %.2f", r1.ReadGbps, r4.ReadGbps)
	}
	if r4.WriteGbps <= r1.WriteGbps*1.05 {
		t.Fatalf("heavy: write did not rise with w: %.2f -> %.2f", r1.WriteGbps, r4.WriteGbps)
	}

	light := mustTrace(t, WorkloadSpec{
		InterArrival: 25 * sim.Microsecond, MeanSize: 10 << 10, Count: 2500, Seed: 3,
	})
	l1, err := Run(ssd.ConfigA(), light, 1)
	if err != nil {
		t.Fatal(err)
	}
	l8, err := Run(ssd.ConfigA(), light, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l8.ReadGbps-l1.ReadGbps)/l1.ReadGbps > 0.1 {
		t.Fatalf("light: w should be ineffective: %.2f vs %.2f", l1.ReadGbps, l8.ReadGbps)
	}
}

func TestRunDeterminism(t *testing.T) {
	a, err := Run(ssd.ConfigB(), mustTrace(t, heavySpec(5)), 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ssd.ConfigB(), mustTrace(t, heavySpec(5)), 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.ReadGbps != b.ReadGbps || a.WriteGbps != b.WriteGbps || a.Duration != b.Duration {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestWorkloadSpecAsymmetric(t *testing.T) {
	spec := WorkloadSpec{
		InterArrival: 10 * sim.Microsecond, MeanSize: 44 << 10, Count: 1000,
		WriteInterArrival: 20 * sim.Microsecond, WriteMeanSize: 23 << 10, WriteCount: 500,
		Seed: 4,
	}
	tr := mustTrace(t, spec)
	if tr.Len() != 1500 {
		t.Fatalf("trace len %d", tr.Len())
	}
	reads, writes := tr.ByOp()
	if reads.Len() != 1000 || writes.Len() != 500 {
		t.Fatalf("split %d/%d", reads.Len(), writes.Len())
	}
}

func TestDefaultGridCoversPaperSweep(t *testing.T) {
	grid := DefaultGrid(100, 1)
	if len(grid) != 16 {
		t.Fatalf("grid size %d, want 4x4", len(grid))
	}
	seen := map[[2]int64]bool{}
	for _, g := range grid {
		seen[[2]int64{int64(g.InterArrival), int64(g.MeanSize)}] = true
	}
	if len(seen) != 16 {
		t.Fatalf("grid points not unique: %d", len(seen))
	}
}

func TestCollectSamplesParallelDeterministic(t *testing.T) {
	specs := DefaultGrid(400, 7)[:4]
	ws := []int{1, 4}
	a, err := CollectSamples(ssd.ConfigA(), specs, ws, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CollectSamples(ssd.ConfigA(), specs, ws, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("sample counts %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].TputR != b[i].TputR || a[i].TputW != b[i].TputW || a[i].W != b[i].W {
			t.Fatalf("sample %d differs across parallel runs", i)
		}
		if a[i].Group != 3 {
			t.Fatalf("group label lost: %+v", a[i])
		}
		if len(a[i].Ch) == 0 || a[i].TputR <= 0 {
			t.Fatalf("degenerate sample %+v", a[i])
		}
	}
}

func TestCollectSamplesFromTraces(t *testing.T) {
	tr, err := workload.Intensity(workload.Moderate, 1, 800)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := CollectSamplesFromTraces(ssd.ConfigA(), []*trace.Trace{tr}, []int{1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 {
		t.Fatalf("samples %d", len(samples))
	}
	if samples[0].W != 1 || samples[1].W != 2 {
		t.Fatalf("weights %v/%v", samples[0].W, samples[1].W)
	}
}

func TestTrainTPMProducesUsableModel(t *testing.T) {
	tpm, samples, err := TrainTPM(ssd.ConfigA(), 600, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !tpm.Trained() {
		t.Fatal("TPM not trained")
	}
	if len(samples) < 100 {
		t.Fatalf("too few samples: %d", len(samples))
	}
	// Self-accuracy should be high (in-sample random forest).
	if acc := tpm.Accuracy(samples); acc < 0.9 {
		t.Fatalf("in-sample accuracy %v", acc)
	}
	// Prediction must be monotone-ish in w for a heavy workload sample.
	var heavy *float64
	for _, s := range samples {
		if s.W == 1 && s.TputR > 4e9 {
			r1, _ := tpm.Predict(s.Ch, 1)
			r8, _ := tpm.Predict(s.Ch, 8)
			if r8 >= r1 {
				t.Fatalf("predicted read should fall with w: %v -> %v", r1, r8)
			}
			v := r1
			heavy = &v
			break
		}
	}
	if heavy == nil {
		t.Fatal("no heavy w=1 sample found")
	}
}

func BenchmarkDeviceRun(b *testing.B) {
	tr := mustTrace(b, heavySpec(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(ssd.ConfigA(), tr, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRunLatencyHistograms(t *testing.T) {
	res, err := Run(ssd.ConfigA(), mustTrace(t, heavySpec(21)), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadLatency.Count() == 0 || res.WriteLatency.Count() == 0 {
		t.Fatal("latency histograms empty")
	}
	// Overloaded run: p99 must exceed p50, and all quantiles positive.
	if res.ReadLatency.Quantile(0.99) <= res.ReadLatency.Quantile(0.5) {
		t.Fatalf("read p99 %.3f <= p50 %.3f", res.ReadLatency.Quantile(0.99), res.ReadLatency.Quantile(0.5))
	}
	if res.ReadLatency.Quantile(0.5) <= 0 {
		t.Fatal("non-positive median latency")
	}
}

func TestHigherWeightCutsWriteLatency(t *testing.T) {
	// Prioritising writes must reduce their queueing latency under load.
	tr := mustTrace(t, heavySpec(22))
	r1, err := Run(ssd.ConfigA(), tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	r6, err := Run(ssd.ConfigA(), tr, 6)
	if err != nil {
		t.Fatal(err)
	}
	if r6.WriteLatency.Quantile(0.5) >= r1.WriteLatency.Quantile(0.5) {
		t.Fatalf("w=6 write p50 %.2fms should beat w=1 %.2fms",
			r6.WriteLatency.Quantile(0.5), r1.WriteLatency.Quantile(0.5))
	}
	if r6.ReadLatency.Quantile(0.5) <= r1.ReadLatency.Quantile(0.5) {
		t.Fatalf("w=6 read p50 %.2fms should exceed w=1 %.2fms",
			r6.ReadLatency.Quantile(0.5), r1.ReadLatency.Quantile(0.5))
	}
}
