// Package devrun drives a single simulated SSD (no network) with a
// workload trace — the setup behind the paper's Fig. 5 weight-ratio
// sweeps and the training-sample collection for the throughput
// prediction model (Sec. III-B).
package devrun

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"srcsim/internal/core"
	"srcsim/internal/guard"
	"srcsim/internal/nvme"
	"srcsim/internal/sim"
	"srcsim/internal/ssd"
	"srcsim/internal/stats"
	"srcsim/internal/sweep/cache"
	"srcsim/internal/sweep/pool"
	"srcsim/internal/trace"
	"srcsim/internal/workload"
)

// Result reports a device run's steady-state throughput.
type Result struct {
	// ReadGbps and WriteGbps are trimmed steady-state completion rates
	// (first/last 10% of the active period removed).
	ReadGbps, WriteGbps float64
	// IOPS by direction over the whole run.
	ReadIOPS, WriteIOPS float64
	Duration            sim.Time
	Completed           int
	CMTHitRate          float64
	// Per-direction device latency (submission to completion),
	// milliseconds. Under overload this is dominated by SQ queueing.
	ReadLatency, WriteLatency stats.Histogram
}

// Run replays tr open-loop into a fresh device with the SSQ at weight
// ratio (1, w) and measures completion throughput. Throughput is
// measured over the trimmed arrival window ([10%, 90%] of the trace
// span): for overloaded workloads this is the period with both queues
// backlogged (the WRR-effective regime of Fig. 5); the post-arrival
// drain is excluded. The device's CMT is preconditioned for the trace's
// address footprint (MQSim-style preconditioning).
func Run(cfg ssd.Config, tr *trace.Trace, w int) (*Result, error) {
	if w < 1 {
		return nil, fmt.Errorf("devrun: weight ratio %d < 1", w)
	}
	if tr.Len() == 0 {
		return nil, fmt.Errorf("devrun: empty trace")
	}
	eng := sim.NewEngine()
	ssq := nvme.NewSSQ(1, w)
	dev, err := ssd.New(eng, cfg, ssq)
	if err != nil {
		return nil, err
	}
	var span uint64
	for _, r := range tr.Requests {
		if r.End() > span {
			span = r.End()
		}
	}
	dev.Precondition(span)

	bucket := sim.Millisecond
	readBits := stats.NewTimeSeries(bucket)
	writeBits := stats.NewTimeSeries(bucket)
	completed := 0
	res := &Result{}
	dev.OnComplete = func(c *nvme.Command) {
		completed++
		latMs := (eng.Now() - c.Submitted).Millis()
		if c.Op == trace.Read {
			readBits.Add(eng.Now(), float64(c.Size)*8)
			res.ReadLatency.Add(latMs)
		} else {
			writeBits.Add(eng.Now(), float64(c.Size)*8)
			res.WriteLatency.Add(latMs)
		}
	}
	for _, r := range tr.Requests {
		r := r
		eng.Schedule(r.Arrival, func() {
			ssq.Submit(&nvme.Command{ID: r.ID, Op: r.Op, LBA: r.LBA, Size: r.Size, Submitted: r.Arrival})
			dev.Kick()
		})
	}
	// Conservation audit through the engine's interrupt hook (a ticker
	// would keep RunUntilIdle from ever draining). Interrupts run between
	// callbacks and schedule nothing, so the run itself is unperturbed.
	var auditErr error
	eng.SetInterrupt(4096, func() {
		if auditErr != nil {
			return
		}
		if vs := guard.Audit(ssq, dev); len(vs) > 0 {
			auditErr = &guard.ViolationError{At: eng.Now(), Violations: vs}
			eng.Stop()
		}
	})
	eng.RunUntilIdle()
	eng.SetInterrupt(0, nil)
	if auditErr == nil {
		// Drain audit: all queues empty, every page accounted for.
		if vs := guard.Audit(ssq, dev); len(vs) > 0 {
			auditErr = &guard.ViolationError{At: eng.Now(), Violations: vs}
		}
	}
	if auditErr != nil {
		return nil, auditErr
	}

	res.Duration = eng.Now()
	res.Completed = completed
	res.CMTHitRate = dev.CMTHitRate()
	// Rate over the trimmed arrival window.
	span10 := tr.Duration() / 10
	lo := int(span10 / bucket)
	hi := int((tr.Duration() - span10) / bucket)
	mean := func(ts *stats.TimeSeries) float64 {
		rates := ts.Rate()
		if hi > len(rates) {
			hi = len(rates)
		}
		if lo >= hi {
			return stats.Mean(rates) / 1e9
		}
		return stats.Mean(rates[lo:hi]) / 1e9
	}
	res.ReadGbps = mean(readBits)
	res.WriteGbps = mean(writeBits)
	if d := eng.Now().Seconds(); d > 0 {
		res.ReadIOPS = float64(dev.CompletedReads) / d
		res.WriteIOPS = float64(dev.CompletedWrites) / d
	}
	return res, nil
}

// WorkloadSpec is one point of the training grid: a micro workload with
// the given inter-arrival and size means. The write-side fields default
// to the read-side values (the symmetric Fig. 5 sweep); set them for
// asymmetric (VDI-like) grid points.
type WorkloadSpec struct {
	InterArrival sim.Time
	MeanSize     int
	Count        int // requests per direction
	Seed         uint64

	WriteInterArrival sim.Time // 0 = InterArrival
	WriteMeanSize     int      // 0 = MeanSize
	WriteCount        int      // 0 = Count
}

// Trace materialises the spec.
func (ws WorkloadSpec) Trace() (*trace.Trace, error) {
	wia, wsz, wc := ws.WriteInterArrival, ws.WriteMeanSize, ws.WriteCount
	if wia == 0 {
		wia = ws.InterArrival
	}
	if wsz == 0 {
		wsz = ws.MeanSize
	}
	if wc == 0 {
		wc = ws.Count
	}
	return workload.Micro(workload.MicroConfig{
		Seed:      ws.Seed,
		ReadCount: ws.Count, WriteCount: wc,
		ReadInterArrival: ws.InterArrival, WriteInterArrival: wia,
		ReadMeanSize: ws.MeanSize, WriteMeanSize: wsz,
		AddressSpace: 2 << 30,
	})
}

// CollectSamples measures (Ch, w) -> throughput over the workload grid ×
// weight ratios, in parallel across GOMAXPROCS workers. Each sample's
// features come from the realised trace, so the TPM sees exactly what
// the workload monitor would report. group labels every produced sample
// (used for the Table III grouped CV; pass 0 otherwise).
func CollectSamples(cfg ssd.Config, specs []WorkloadSpec, ws []int, group int) ([]core.Sample, error) {
	type job struct{ si, wi int }
	jobs := make([]job, 0, len(specs)*len(ws))
	for si := range specs {
		for wi := range ws {
			jobs = append(jobs, job{si, wi})
		}
	}
	samples := make([]core.Sample, len(jobs))
	err := pool.Pool{}.ForEach(len(jobs), func(ji int) error {
		j := jobs[ji]
		spec := specs[j.si]
		tr, err := spec.Trace()
		if err != nil {
			return err
		}
		res, err := Run(cfg, tr, ws[j.wi])
		if err != nil {
			return err
		}
		ch := core.FeatureVector(trace.Extract(tr))
		samples[ji] = core.Sample{
			Ch: ch, W: float64(ws[j.wi]),
			TputR: res.ReadGbps * 1e9,
			TputW: res.WriteGbps * 1e9,
			Group: group,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return samples, nil
}

// CollectSamplesFromTraces is CollectSamples for pre-generated traces
// (e.g. the MMPP synthetic workloads of Table III).
func CollectSamplesFromTraces(cfg ssd.Config, traces []*trace.Trace, ws []int, group int) ([]core.Sample, error) {
	type job struct{ ti, wi int }
	jobs := make([]job, 0, len(traces)*len(ws))
	for ti := range traces {
		for wi := range ws {
			jobs = append(jobs, job{ti, wi})
		}
	}
	samples := make([]core.Sample, len(jobs))
	err := pool.Pool{}.ForEach(len(jobs), func(ji int) error {
		j := jobs[ji]
		tr := traces[j.ti]
		res, err := Run(cfg, tr, ws[j.wi])
		if err != nil {
			return err
		}
		samples[ji] = core.Sample{
			Ch:    core.FeatureVector(trace.Extract(tr)),
			W:     float64(ws[j.wi]),
			TputR: res.ReadGbps * 1e9,
			TputW: res.WriteGbps * 1e9,
			Group: group,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return samples, nil
}

// DefaultGrid returns the paper's Fig. 5 sweep grid: inter-arrival 10-25
// µs × request size 10-40 KB.
func DefaultGrid(count int, seed uint64) []WorkloadSpec {
	var specs []WorkloadSpec
	for _, ia := range []sim.Time{10 * sim.Microsecond, 15 * sim.Microsecond, 20 * sim.Microsecond, 25 * sim.Microsecond} {
		for _, size := range []int{10 << 10, 20 << 10, 30 << 10, 40 << 10} {
			specs = append(specs, WorkloadSpec{
				InterArrival: ia, MeanSize: size, Count: count,
				Seed: seed ^ uint64(ia)<<8 ^ uint64(size),
			})
		}
	}
	return specs
}

// MinTrainCount returns the per-direction request count needed for a
// meaningful steady-state throughput sample on cfg: the run must
// complete many multiples of the queue-depth window, or the measured mix
// still reflects pre-backlog fetches rather than the WRR ratio.
func MinTrainCount(cfg ssd.Config, count int) int {
	min := 20 * cfg.QueueDepth
	if min < 2000 {
		min = 2000
	}
	if count < min {
		return min
	}
	return count
}

// RandomSpecs draws n workload specs uniformly from the Fig. 5 sweep
// ranges (inter-arrival 8-30 µs, size 8-48 KB), continuously covering
// the space between grid points — the "extensive experiments with
// various workloads" the paper trains on.
func RandomSpecs(n, count int, seed uint64) []WorkloadSpec {
	rng := sim.NewRNG(seed ^ 0xfeed)
	specs := make([]WorkloadSpec, 0, n)
	for i := 0; i < n; i++ {
		specs = append(specs, WorkloadSpec{
			InterArrival: sim.Time(8+rng.Intn(23)) * sim.Microsecond,
			MeanSize:     (8 + rng.Intn(41)) << 10,
			Count:        count,
			Seed:         rng.Uint64(),
		})
	}
	return specs
}

// tpmTrainEpoch versions the whole TPM-training pipeline (grid layout,
// feature extraction, forest hyperparameters, serialized-model layout)
// for cache keys. Bump it whenever a change makes previously trained
// models stale: the content-addressed store never invalidates on its
// own. Epoch 2: serialized forests carry feature importances.
const tpmTrainEpoch = 2

// TPMCacheEnv is the environment knob for the trained-model artifact
// cache used by TrainTPMCached (and through it the test suites):
// unset/empty resolves to a shared directory under os.TempDir();
// "off" or "0" disables caching so every run trains cold (CI's
// cold-run mode); any other value is used as the cache directory.
const TPMCacheEnv = "SRCSIM_TPM_CACHE"

// TPMCacheFromEnv resolves the TPMCacheEnv knob to a cache handle
// (nil when caching is off).
func TPMCacheFromEnv() *cache.Cache {
	switch v := os.Getenv(TPMCacheEnv); v {
	case "":
		return cache.New(filepath.Join(os.TempDir(), "srcsim-cache"))
	case "off", "0":
		return nil
	default:
		return cache.New(v)
	}
}

// tpmKey is the content address of a trained TPM: every input the
// trained model depends on, plus the pipeline epoch and the model
// format version.
func tpmKey(cfg ssd.Config, count int, seed uint64) string {
	return cache.Key("tpm", tpmTrainEpoch, core.NumFeatures, cfg, count, seed)
}

// TrainTPMCached is TrainTPM behind the content-addressed artifact
// cache: a hit deserializes the stored model (training is deterministic,
// so the loaded model predicts identically to a fresh one); a miss
// trains and stores. A nil cache always trains. The training samples
// are not persisted — callers that need them should use TrainTPM.
func TrainTPMCached(c *cache.Cache, cfg ssd.Config, count int, seed uint64) (tpm *core.TPM, hit bool, err error) {
	key := tpmKey(cfg, count, seed)
	if b, ok := c.Get(key); ok {
		if tpm, err := core.LoadTPM(bytes.NewReader(b)); err == nil {
			return tpm, true, nil
		}
		// A corrupt or stale entry falls through to a fresh train, whose
		// Put overwrites it.
	}
	tpm, _, err = TrainTPM(cfg, count, seed)
	if err != nil {
		return nil, false, err
	}
	if err := c.Put(key, tpm.Save); err != nil {
		return nil, false, err
	}
	return tpm, false, nil
}

// TrainTPM collects samples on cfg over the default grid (plus
// asymmetric VDI-like points) and weight ratios 1..8, then fits the
// paper's random-forest TPM. count is raised to MinTrainCount.
func TrainTPM(cfg ssd.Config, count int, seed uint64) (*core.TPM, []core.Sample, error) {
	count = MinTrainCount(cfg, count)
	specs := DefaultGrid(count, seed)
	// Asymmetric grid points cover read-heavy mixes like the VDI trace.
	for _, ia := range []sim.Time{10 * sim.Microsecond, 20 * sim.Microsecond, 30 * sim.Microsecond} {
		specs = append(specs, WorkloadSpec{
			InterArrival: ia, MeanSize: 44 << 10, Count: count,
			WriteInterArrival: 2 * ia, WriteMeanSize: 23 << 10, WriteCount: count / 2,
			Seed: seed ^ 0xa5a5 ^ uint64(ia),
		})
	}
	// Extra-heavy symmetric points extend coverage past the Fig. 5 grid
	// (the dynamic-control experiment drives the device this hard).
	for _, hs := range []WorkloadSpec{
		{InterArrival: 8 * sim.Microsecond, MeanSize: 32 << 10},
		{InterArrival: 6 * sim.Microsecond, MeanSize: 24 << 10},
	} {
		hs.Count = count
		hs.Seed = seed ^ 0x5a5a ^ uint64(hs.InterArrival)
		specs = append(specs, hs)
	}
	samples, err := CollectSamples(cfg, specs, []int{1, 2, 3, 4, 5, 6, 8}, 0)
	if err != nil {
		return nil, nil, err
	}
	tpm := core.NewTPM()
	if err := tpm.Train(samples); err != nil {
		return nil, nil, err
	}
	return tpm, samples, nil
}
