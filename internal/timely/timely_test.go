package timely

import (
	"testing"

	"srcsim/internal/sim"
)

func TestConfigDefaultsAndValidate(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.LineRate != 40e9 || c.Beta != 0.8 || c.Tlow != 30*sim.Microsecond {
		t.Fatalf("defaults: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := c
	bad.Tlow, bad.Thigh = 200*sim.Microsecond, 100*sim.Microsecond
	if err := bad.Validate(); err == nil {
		t.Fatal("Tlow >= Thigh should fail")
	}
	bad = c
	bad.Beta = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("beta >= 1 should fail")
	}
	bad = c
	bad.MinRate = 80e9
	if err := bad.Validate(); err == nil {
		t.Fatal("MinRate > LineRate should fail")
	}
}

func TestStartsAtLineRateAndNeedsAck(t *testing.T) {
	rp := NewRP(Config{LineRate: 10e9})
	if rp.Rate() != 10e9 {
		t.Fatalf("initial rate %v", rp.Rate())
	}
	if !rp.NeedsAck() {
		t.Fatal("TIMELY must request acks")
	}
}

func TestLowRTTIncreases(t *testing.T) {
	rp := NewRP(Config{LineRate: 10e9})
	rp.OnAck(12 * sim.Microsecond) // first sample: warm-up only
	before := rp.Rate()
	// Already at line rate: clamp keeps it there.
	rp.OnAck(12 * sim.Microsecond)
	if rp.Rate() != before {
		t.Fatalf("rate above line: %v", rp.Rate())
	}
	// Knock the rate down, then low RTTs must recover it additively.
	rp.OnCongestionSignal()
	down := rp.Rate()
	if down >= before {
		t.Fatal("congestion signal did not reduce rate")
	}
	for i := 0; i < 5; i++ {
		rp.OnAck(12 * sim.Microsecond)
	}
	if rp.Rate() <= down {
		t.Fatalf("low-RTT acks did not raise rate: %v", rp.Rate())
	}
}

func TestHighRTTDecreasesProportionally(t *testing.T) {
	rp := NewRP(Config{LineRate: 10e9})
	rp.OnAck(50 * sim.Microsecond)
	rp.OnAck(400 * sim.Microsecond) // far above Thigh=150us
	if rp.Rate() >= 10e9 {
		t.Fatalf("high RTT did not decrease rate: %v", rp.Rate())
	}
	// Deeper violation cuts more.
	rp2 := NewRP(Config{LineRate: 10e9})
	rp2.OnAck(50 * sim.Microsecond)
	rp2.OnAck(1000 * sim.Microsecond)
	if rp2.Rate() >= rp.Rate() {
		t.Fatalf("deeper RTT violation should cut more: %v vs %v", rp2.Rate(), rp.Rate())
	}
}

func TestGradientRegionFollowsTrend(t *testing.T) {
	// Rising RTTs inside [Tlow, Thigh] should reduce the rate; falling
	// RTTs should raise it.
	rising := NewRP(Config{LineRate: 10e9})
	for _, us := range []int{60, 70, 80, 90, 100, 110} {
		rising.OnAck(sim.Time(us) * sim.Microsecond)
	}
	if rising.Rate() >= 10e9 {
		t.Fatalf("rising RTT gradient did not cut rate: %v", rising.Rate())
	}

	falling := NewRP(Config{LineRate: 10e9})
	falling.OnCongestionSignal() // below line rate so increases are visible
	start := falling.Rate()
	for _, us := range []int{140, 120, 100, 80, 60, 50} {
		falling.OnAck(sim.Time(us) * sim.Microsecond)
	}
	if falling.Rate() <= start {
		t.Fatalf("falling RTT gradient did not raise rate: %v", falling.Rate())
	}
}

func TestHyperActiveIncreaseKicksIn(t *testing.T) {
	cfg := Config{LineRate: 40e9, AddStep: 10e6, HAIThreshold: 3}
	slow := NewRP(cfg)
	slow.OnCongestionSignal()
	slow.OnCongestionSignal()
	base := slow.Rate()
	// Repeated negative-gradient decisions: after HAIThreshold the step
	// grows 5x, so 8 decisions gain more than 8 plain steps.
	for i := 0; i < 9; i++ {
		slow.OnAck(60 * sim.Microsecond) // flat RTT: gradient <= 0
	}
	gained := slow.Rate() - base
	if gained <= 8*cfg.AddStep {
		t.Fatalf("HAI not engaged: gained %v", gained)
	}
}

func TestRateBounds(t *testing.T) {
	rp := NewRP(Config{LineRate: 10e9, MinRate: 100e6})
	for i := 0; i < 100; i++ {
		rp.OnCongestionSignal()
	}
	if rp.Rate() != 100e6 {
		t.Fatalf("rate floor violated: %v", rp.Rate())
	}
	for i := 0; i < 10000; i++ {
		rp.OnAck(5 * sim.Microsecond)
	}
	if rp.Rate() > 10e9 {
		t.Fatalf("rate ceiling violated: %v", rp.Rate())
	}
}

func TestRateListener(t *testing.T) {
	rp := NewRP(Config{LineRate: 10e9})
	events := 0
	rp.SetRateListener(func(old, new float64) {
		if old == new {
			t.Error("listener fired without change")
		}
		events++
	})
	rp.OnCongestionSignal()
	rp.OnAck(12 * sim.Microsecond)
	rp.OnAck(12 * sim.Microsecond)
	if events == 0 {
		t.Fatal("no rate events")
	}
	if rp.RateDecreases == 0 || rp.RateIncreases == 0 {
		t.Fatalf("counters %d/%d", rp.RateDecreases, rp.RateIncreases)
	}
}

func TestOnBytesSentIsNoop(t *testing.T) {
	rp := NewRP(Config{})
	before := rp.Rate()
	rp.OnBytesSent(1 << 30)
	if rp.Rate() != before {
		t.Fatal("OnBytesSent changed the rate")
	}
}
