// Package timely implements the TIMELY congestion-control algorithm
// (Mittal et al., SIGCOMM 2015), the delay-based alternative to DCQCN
// that the paper's related work cites. TIMELY paces each flow from RTT
// measurements: below Tlow it increases additively, above Thigh it
// decreases multiplicatively, and in between it follows the normalized
// RTT gradient.
//
// It implements the same reaction-point surface as dcqcn.RP (netsim's
// RateController), so the whole SRC stack — including the storage-side
// controller, which only consumes rate-change events — runs unchanged on
// top of it. Unlike DCQCN it needs per-packet acknowledgements; the NIC
// generates them when the controller reports NeedsAck.
package timely

import (
	"fmt"

	"srcsim/internal/obs/timeseries"
	"srcsim/internal/sim"
)

// Config holds the TIMELY constants. Defaults follow the paper's
// recommended settings scaled to microsecond-RTT fabrics.
type Config struct {
	// LineRate is the NIC line rate in bits/s (default 40 Gbps).
	LineRate float64
	// MinRate is the rate floor (default 40 Mbps).
	MinRate float64
	// Tlow: below this RTT the flow increases additively (default 30 µs).
	Tlow sim.Time
	// Thigh: above this RTT the flow decreases multiplicatively
	// (default 150 µs).
	Thigh sim.Time
	// MinRTT normalises the gradient (default 10 µs).
	MinRTT sim.Time
	// AddStep is the additive increase per decision (default 50 Mbps).
	AddStep float64
	// Beta is the multiplicative-decrease factor (default 0.8).
	Beta float64
	// EWMAAlpha smooths the RTT-difference series (default 0.875 means
	// 1/8 new sample weight, as in the paper).
	EWMAAlpha float64
	// HAIThreshold: after this many consecutive gradient-negative
	// decisions, switch to hyper-active increase (default 5).
	HAIThreshold int
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.LineRate <= 0 {
		c.LineRate = 40e9
	}
	if c.MinRate <= 0 {
		c.MinRate = 40e6
	}
	if c.Tlow <= 0 {
		c.Tlow = 30 * sim.Microsecond
	}
	if c.Thigh <= 0 {
		c.Thigh = 150 * sim.Microsecond
	}
	if c.MinRTT <= 0 {
		c.MinRTT = 10 * sim.Microsecond
	}
	if c.AddStep <= 0 {
		c.AddStep = 50e6
	}
	if c.Beta <= 0 {
		c.Beta = 0.8
	}
	if c.EWMAAlpha <= 0 {
		c.EWMAAlpha = 0.875
	}
	if c.HAIThreshold <= 0 {
		c.HAIThreshold = 5
	}
	return c
}

// Validate reports inconsistent settings.
func (c Config) Validate() error {
	c = c.WithDefaults()
	if c.Tlow >= c.Thigh {
		return fmt.Errorf("timely: Tlow %v must be below Thigh %v", c.Tlow, c.Thigh)
	}
	if c.Beta <= 0 || c.Beta >= 1 {
		return fmt.Errorf("timely: beta %v outside (0,1)", c.Beta)
	}
	if c.MinRate > c.LineRate {
		return fmt.Errorf("timely: MinRate %v exceeds LineRate %v", c.MinRate, c.LineRate)
	}
	return nil
}

// RP is TIMELY's per-flow rate state. It satisfies netsim.RateController.
type RP struct {
	cfg Config

	// OnRate, if set, observes every rate change (old, new in bits/s).
	OnRate func(oldRate, newRate float64)

	rate     float64
	prevRTT  sim.Time
	rttDiff  float64 // EWMA of RTT differences, ns
	haiCount int
	havePrev bool

	// Counters.
	Acks          uint64
	RateDecreases uint64
	RateIncreases uint64
}

// NewRP returns a TIMELY reaction point starting at line rate.
func NewRP(cfg Config) *RP {
	cfg = cfg.WithDefaults()
	return &RP{cfg: cfg, rate: cfg.LineRate}
}

// Rate implements netsim.RateController.
func (rp *RP) Rate() float64 { return rp.rate }

// OnBytesSent implements netsim.RateController (TIMELY is ack-clocked;
// bytes sent carry no signal).
func (rp *RP) OnBytesSent(int) {}

// OnCongestionSignal implements netsim.RateController. TIMELY is
// delay-based; an explicit congestion notification (e.g. a CNP from an
// ECN-marked packet) is treated as a Thigh-grade decrease so TIMELY
// remains safe on ECN-enabled fabrics.
func (rp *RP) OnCongestionSignal() {
	rp.setRate(rp.rate * rp.cfg.Beta)
}

// NeedsAck implements netsim.RateController: TIMELY requires per-packet
// RTT samples.
func (rp *RP) NeedsAck() bool { return true }

// SetRateListener implements netsim.RateController.
func (rp *RP) SetRateListener(fn func(oldRate, newRate float64)) { rp.OnRate = fn }

// OnAck implements netsim.RateController: one RTT sample drives one
// TIMELY decision.
func (rp *RP) OnAck(rtt sim.Time) {
	rp.Acks++
	if !rp.havePrev {
		rp.prevRTT = rtt
		rp.havePrev = true
		return
	}
	newDiff := float64(rtt - rp.prevRTT)
	rp.prevRTT = rtt
	a := rp.cfg.EWMAAlpha
	rp.rttDiff = a*rp.rttDiff + (1-a)*newDiff
	gradient := rp.rttDiff / float64(rp.cfg.MinRTT)

	switch {
	case rtt < rp.cfg.Tlow:
		rp.haiCount = 0
		rp.setRate(rp.rate + rp.cfg.AddStep)
	case rtt > rp.cfg.Thigh:
		rp.haiCount = 0
		rp.setRate(rp.rate * (1 - rp.cfg.Beta*(1-float64(rp.cfg.Thigh)/float64(rtt))))
	case gradient <= 0:
		rp.haiCount++
		step := rp.cfg.AddStep
		if rp.haiCount >= rp.cfg.HAIThreshold {
			step *= 5 // hyper-active increase
		}
		rp.setRate(rp.rate + step)
	default:
		rp.haiCount = 0
		if gradient > 1 {
			gradient = 1
		}
		rp.setRate(rp.rate * (1 - rp.cfg.Beta*gradient))
	}
}

// SampleSeries is the reaction point's flight-recorder probe: the
// current rate and the smoothed RTT-difference series driving the
// gradient. Read-only.
func (rp *RP) SampleSeries(track, prefix string, emit timeseries.Emit) {
	emit(track, prefix+"_rate_gbps", timeseries.Gauge, rp.rate/1e9)
	emit(track, prefix+"_rttdiff_us", timeseries.Gauge, rp.rttDiff/1e3)
}

func (rp *RP) setRate(newRate float64) {
	if newRate > rp.cfg.LineRate {
		newRate = rp.cfg.LineRate
	}
	if newRate < rp.cfg.MinRate {
		newRate = rp.cfg.MinRate
	}
	if newRate == rp.rate {
		return
	}
	old := rp.rate
	rp.rate = newRate
	if newRate < old {
		rp.RateDecreases++
	} else {
		rp.RateIncreases++
	}
	if rp.OnRate != nil {
		rp.OnRate(old, newRate)
	}
}
