package ml

import (
	"errors"
	"fmt"
	"math"
)

// LinearRegression is ordinary least squares fit by the normal equations
// with a tiny ridge term for numerical stability. Table I row "Linear
// Regression".
type LinearRegression struct {
	// Ridge is the relative L2 regularisation strength: the diagonal of
	// the normal equations receives Ridge times the mean diagonal
	// magnitude, which keeps the stabiliser meaningful regardless of
	// feature scale (0 gives 1e-10).
	Ridge float64

	// Coef holds the fitted weights; Intercept the bias. Valid after Fit.
	Coef      []float64
	Intercept float64
	fitted    bool
}

// Name implements Regressor.
func (l *LinearRegression) Name() string { return "Linear Regression" }

// Fit implements Regressor.
func (l *LinearRegression) Fit(X [][]float64, y []float64) error {
	n, d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	// Build the augmented design matrix [X | 1] normal equations:
	// (A'A + λI) w = A'y with A n×(d+1).
	m := d + 1
	ata := make([][]float64, m)
	for i := range ata {
		ata[i] = make([]float64, m)
	}
	aty := make([]float64, m)
	for r := 0; r < n; r++ {
		row := X[r]
		for i := 0; i < d; i++ {
			vi := row[i]
			for j := i; j < d; j++ {
				ata[i][j] += vi * row[j]
			}
			ata[i][d] += vi
			aty[i] += vi * y[r]
		}
		ata[d][d]++
		aty[d] += y[r]
	}
	for i := 0; i < m; i++ {
		for j := 0; j < i; j++ {
			ata[i][j] = ata[j][i]
		}
	}
	ridge := l.Ridge
	if ridge <= 0 {
		ridge = 1e-10
	}
	// Jacobi equilibration: rescale to unit diagonal so the ridge term
	// and the singularity threshold are meaningful regardless of the
	// (often wildly mixed) feature scales.
	s := make([]float64, m)
	for i := 0; i < m; i++ {
		s[i] = math.Sqrt(ata[i][i])
		if s[i] == 0 {
			s[i] = 1
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			ata[i][j] /= s[i] * s[j]
		}
		aty[i] /= s[i]
	}
	for i := 0; i < d; i++ { // do not penalise the intercept
		ata[i][i] += ridge
	}
	w, err := solveLinearSystem(ata, aty)
	if err != nil {
		return fmt.Errorf("ml: linear regression solve: %w", err)
	}
	for i := range w {
		w[i] /= s[i]
	}
	l.Coef = w[:d]
	l.Intercept = w[d]
	l.fitted = true
	return nil
}

// Predict implements Regressor.
func (l *LinearRegression) Predict(x []float64) float64 {
	if !l.fitted {
		panic("ml: LinearRegression.Predict before Fit")
	}
	if len(x) != len(l.Coef) {
		panic(fmt.Sprintf("ml: predict with %d features, trained on %d", len(x), len(l.Coef)))
	}
	s := l.Intercept
	for i, c := range l.Coef {
		s += c * x[i]
	}
	return s
}

// solveLinearSystem solves Ax = b by Gaussian elimination with partial
// pivoting. A and b are mutated.
func solveLinearSystem(A [][]float64, b []float64) ([]float64, error) {
	n := len(A)
	// Callers pass equilibrated (unit-diagonal) systems, so an absolute
	// threshold is meaningful.
	const threshold = 1e-12
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(A[pivot][col]) < threshold {
			return nil, errors.New("singular system")
		}
		A[col], A[pivot] = A[pivot], A[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / A[col][col]
		for r := col + 1; r < n; r++ {
			f := A[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				A[r][c] -= f * A[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= A[r][c] * x[c]
		}
		x[r] = s / A[r][r]
	}
	return x, nil
}

// PolynomialRegression fits OLS on a degree-2 polynomial expansion of the
// features (all x_i, all x_i·x_j with i ≤ j). Table I row "Polynomial
// Regression".
type PolynomialRegression struct {
	// Ridge is passed through to the underlying linear solve.
	Ridge float64

	lin    LinearRegression
	d      int
	fitted bool
}

// Name implements Regressor.
func (p *PolynomialRegression) Name() string { return "Polynomial Regression" }

// expand maps x to its degree-2 feature vector.
func expandPoly2(x []float64, out []float64) []float64 {
	out = out[:0]
	out = append(out, x...)
	for i := 0; i < len(x); i++ {
		for j := i; j < len(x); j++ {
			out = append(out, x[i]*x[j])
		}
	}
	return out
}

// Fit implements Regressor.
func (p *PolynomialRegression) Fit(X [][]float64, y []float64) error {
	n, d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	_ = n
	p.d = d
	exp := make([][]float64, len(X))
	for i, row := range X {
		exp[i] = expandPoly2(row, nil)
	}
	p.lin = LinearRegression{Ridge: p.Ridge}
	if p.lin.Ridge <= 0 {
		// Quadratic expansions are much more collinear; use a firmer
		// default stabiliser.
		p.lin.Ridge = 1e-8
	}
	if err := p.lin.Fit(exp, y); err != nil {
		return err
	}
	p.fitted = true
	return nil
}

// Predict implements Regressor.
func (p *PolynomialRegression) Predict(x []float64) float64 {
	if !p.fitted {
		panic("ml: PolynomialRegression.Predict before Fit")
	}
	if len(x) != p.d {
		panic(fmt.Sprintf("ml: predict with %d features, trained on %d", len(x), p.d))
	}
	return p.lin.Predict(expandPoly2(x, nil))
}
