// Package ml is a small, dependency-free statistical learning library
// implementing exactly the estimators the paper compares in Table I:
// linear regression, polynomial regression, k-nearest-neighbour
// regression, decision-tree (CART) regression, and random-forest
// regression, together with R² scoring, k-fold and grouped
// cross-validation, and Breiman impurity-based feature importance.
//
// All estimators implement Regressor. Inputs are dense [][]float64
// feature matrices; rows are samples. Estimators copy what they need, so
// callers may reuse buffers after Fit.
package ml

import (
	"errors"
	"fmt"
	"math"
)

// Regressor is a single-output regression estimator.
type Regressor interface {
	// Fit trains on X (n×d) and y (n). It returns an error for empty or
	// ragged input.
	Fit(X [][]float64, y []float64) error
	// Predict returns the estimate for one feature vector. Calling
	// Predict before a successful Fit panics.
	Predict(x []float64) float64
	// Name returns the estimator's display name (Table I row label).
	Name() string
}

// checkXY validates the common preconditions for Fit.
func checkXY(X [][]float64, y []float64) (n, d int, err error) {
	n = len(X)
	if n == 0 {
		return 0, 0, errors.New("ml: empty training set")
	}
	if len(y) != n {
		return 0, 0, fmt.Errorf("ml: len(y)=%d does not match len(X)=%d", len(y), n)
	}
	d = len(X[0])
	if d == 0 {
		return 0, 0, errors.New("ml: zero-width feature matrix")
	}
	for i, row := range X {
		if len(row) != d {
			return 0, 0, fmt.Errorf("ml: ragged row %d: %d features, want %d", i, len(row), d)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, 0, fmt.Errorf("ml: non-finite feature X[%d][%d]=%v", i, j, v)
			}
		}
	}
	for i, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, 0, fmt.Errorf("ml: non-finite target y[%d]=%v", i, v)
		}
	}
	return n, d, nil
}

// cloneMatrix deep-copies X into one contiguous allocation.
func cloneMatrix(X [][]float64) [][]float64 {
	if len(X) == 0 {
		return nil
	}
	d := len(X[0])
	out := make([][]float64, len(X))
	flat := make([]float64, len(X)*d)
	for i, row := range X {
		copy(flat[i*d:(i+1)*d], row)
		out[i] = flat[i*d : (i+1)*d : (i+1)*d]
	}
	return out
}

// Standardizer rescales features to zero mean and unit variance, the
// usual preprocessing for KNN and for numerically stable linear solves.
type Standardizer struct {
	Mean, Std []float64
}

// FitStandardizer computes per-feature mean and standard deviation.
// Constant features get Std 1 so they map to 0.
func FitStandardizer(X [][]float64) *Standardizer {
	d := len(X[0])
	s := &Standardizer{Mean: make([]float64, d), Std: make([]float64, d)}
	n := float64(len(X))
	for _, row := range X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			dv := v - s.Mean[j]
			s.Std[j] += dv * dv
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] == 0 {
			s.Std[j] = 1
		}
	}
	return s
}

// Transform returns a standardized copy of x.
func (s *Standardizer) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// TransformAll standardizes every row of X into a new matrix.
func (s *Standardizer) TransformAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.Transform(row)
	}
	return out
}
